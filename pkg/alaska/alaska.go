// Package alaska is the public API of this repository's reproduction of
// "Getting a Handle on Unmanaged Memory" (Wanninger et al., ASPLOS '24):
// transparent handle-based memory management with object mobility, a
// defragmenting Anchorage service, a compiler that automates handle
// translation over an LLVM-like IR, and the simulated machine substrate
// everything runs on.
//
// The three layers mirror the paper's architecture:
//
//   - System bundles a simulated address space, the Alaska core runtime
//     (handle table, pin tracking, barriers), and a pluggable service —
//     use it to allocate handles, pin them around accesses, and let the
//     service move objects.
//   - Compile applies the Alaska compiler passes (Algorithm 1 translation
//     insertion with loop hoisting, pin-slot assignment, safepoints,
//     escape handling) to an ir.Module; Run executes it.
//   - The figures sub-harnesses (internal/figures, cmd/*) regenerate the
//     paper's evaluation.
//
// A minimal session:
//
//	sys, _ := alaska.NewSystem(alaska.WithAnchorage(anchorage.DefaultConfig()))
//	defer sys.Close()
//	h, _ := sys.Halloc(64)
//	th := sys.NewThread()
//	addr, unpin, _ := th.Pin(h)
//	_ = sys.Space().WriteU64(addr, 42)
//	unpin()
//	sys.Defrag(th) // objects move; h remains valid
package alaska

import (
	"fmt"

	"alaska/internal/anchorage"
	"alaska/internal/compiler"
	"alaska/internal/handle"
	"alaska/internal/ir"
	"alaska/internal/mallocsim"
	"alaska/internal/mem"
	"alaska/internal/rt"
	"alaska/internal/swap"
	"alaska/internal/vm"
)

// Handle is a 64-bit word that is either a raw pointer or an encoded
// handle (top bit set), per the paper's Figure 4.
type Handle = handle.Handle

// Thread is an application thread with its own stack of pin sets.
type Thread = rt.Thread

// BarrierScope exposes the unified pin set and the relocation primitive
// during a stop-the-world barrier.
type BarrierScope = rt.BarrierScope

// CompileOptions re-exports the compiler's configuration (Hoisting,
// Tracking).
type CompileOptions = compiler.Options

// CompileStats re-exports the transformation statistics.
type CompileStats = compiler.Stats

// System is a complete Alaska instance: simulated address space, core
// runtime, and service.
type System struct {
	space   *mem.Space
	runtime *rt.Runtime
	anchor  *anchorage.Service // nil unless the Anchorage service is used
	ctl     *anchorage.Controller
	swapper *swap.Swapper
	primary *rt.Thread
}

// Option configures NewSystem.
type Option func(*config)

type config struct {
	useAnchorage bool
	anchorageCfg anchorage.Config
	pinMode      rt.PinMode
	swapStore    swap.Store
}

// WithAnchorage attaches the defragmenting Anchorage service (§4.3)
// instead of the default malloc-backed service.
func WithAnchorage(cfg anchorage.Config) Option {
	return func(c *config) {
		c.useAnchorage = true
		c.anchorageCfg = cfg
	}
}

// WithCountedPins selects the naïve atomic pin-count tracking (kept for
// the ablation the paper argues against in §3.4).
func WithCountedPins() Option {
	return func(c *config) { c.pinMode = rt.CountedPins }
}

// WithSwapping enables the §7 handle-fault swapping extension backed by
// the given store (e.g. swap.NewMemStore(true) for a compressed in-memory
// "disk").
func WithSwapping(store swap.Store) Option {
	return func(c *config) { c.swapStore = store }
}

// NewSystem creates a System. By default the runtime uses stack pin sets
// and a non-moving malloc service; pass WithAnchorage for mobility.
func NewSystem(opts ...Option) (*System, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	space := mem.NewSpace()
	var svc rt.Service
	var anchor *anchorage.Service
	if c.useAnchorage {
		anchor = anchorage.NewService(space, c.anchorageCfg)
		svc = anchor
	} else {
		svc = mallocsim.NewService(space)
	}
	sys := &System{space: space, anchor: anchor}
	rtOpts := []rt.Option{rt.WithPinMode(c.pinMode)}
	if c.swapStore != nil {
		rtOpts = append(rtOpts, rt.WithFaultHandler(func(r *rt.Runtime, id uint32) error {
			return sys.swapper.SwapIn(id)
		}))
	}
	r, err := rt.New(space, svc, rtOpts...)
	if err != nil {
		return nil, err
	}
	sys.runtime = r
	if anchor != nil {
		sys.ctl = anchorage.NewController(anchor)
	}
	if c.swapStore != nil {
		sys.swapper = swap.New(r, c.swapStore)
	}
	sys.primary = r.NewThread()
	// The primary thread only initiates barriers; see kv.AnchorageBackend
	// for the same pattern.
	sys.primary.EnterExternal()
	return sys, nil
}

// Close shuts the system down.
func (s *System) Close() error {
	if s.primary != nil {
		s.primary.ExitExternal()
		if err := s.primary.Destroy(); err != nil {
			return err
		}
		s.primary = nil
	}
	return s.runtime.Close()
}

// Space returns the simulated address space (for reads/writes through
// pinned pointers).
func (s *System) Space() *mem.Space { return s.space }

// Runtime returns the underlying core runtime.
func (s *System) Runtime() *rt.Runtime { return s.runtime }

// Swapper returns the swapping extension, or nil if not enabled.
func (s *System) Swapper() *swap.Swapper { return s.swapper }

// Halloc allocates size bytes of handle-managed memory.
func (s *System) Halloc(size uint64) (Handle, error) { return s.runtime.Halloc(size) }

// Hfree releases the object behind h.
func (s *System) Hfree(h Handle) error { return s.runtime.Hfree(h) }

// NewThread registers an application thread.
func (s *System) NewThread() *Thread { return s.runtime.NewThread() }

// Barrier stops the world and runs fn with the unified pin set. initiator
// must be the calling goroutine's registered thread, because that thread
// cannot park at a safepoint while it is busy initiating; pass nil when
// calling from a goroutine with no registered thread (e.g. a controller).
func (s *System) Barrier(initiator *Thread, fn func(*BarrierScope)) {
	if initiator == nil {
		initiator = s.primary
	}
	s.runtime.Barrier(initiator, fn)
}

// Defrag runs Anchorage compaction passes until the heap stops improving,
// returning the bytes moved. initiator follows the Barrier rule. The
// system must have been built with WithAnchorage.
func (s *System) Defrag(initiator *Thread) (uint64, error) {
	if s.anchor == nil {
		return 0, fmt.Errorf("alaska: Defrag requires the Anchorage service")
	}
	var total uint64
	for i := 0; i < 64; i++ {
		var moved uint64
		s.Barrier(initiator, func(scope *BarrierScope) {
			moved = s.anchor.DefragPass(scope, 1<<30)
		})
		total += moved
		if moved == 0 {
			break
		}
	}
	return total, nil
}

// Fragmentation returns the service's extent/active ratio.
func (s *System) Fragmentation() float64 { return s.runtime.Fragmentation() }

// RSS returns the simulated resident set size in bytes.
func (s *System) RSS() uint64 { return s.space.RSS() }

// ActiveBytes returns the live object bytes.
func (s *System) ActiveBytes() uint64 { return s.runtime.Service().ActiveBytes() }

// Compile applies the Alaska compiler pipeline to an IR module in place.
func Compile(m *ir.Module, opts CompileOptions) (CompileStats, error) {
	return compiler.Transform(m, opts)
}

// DefaultCompileOptions is the full Alaska configuration (hoisting and
// tracking enabled).
var DefaultCompileOptions = compiler.DefaultOptions

// RunBaseline executes an untransformed module over a conventional
// allocator and returns (result, cycles).
func RunBaseline(m *ir.Module, fn string, args ...uint64) (uint64, int64, error) {
	machine := vm.NewBaseline(m, vm.DefaultCosts)
	v, err := machine.Run(fn, args...)
	return v, machine.Cycles, err
}

// RunAlaska executes a transformed module against a fresh Alaska runtime
// and returns (result, cycles).
func RunAlaska(m *ir.Module, fn string, args ...uint64) (uint64, int64, error) {
	machine, err := vm.NewAlaska(m, vm.DefaultCosts)
	if err != nil {
		return 0, 0, err
	}
	v, err := machine.Run(fn, args...)
	if err != nil {
		return 0, machine.Cycles, err
	}
	return v, machine.Cycles, machine.Close()
}
