package alaska

import (
	"bytes"
	"testing"

	"alaska/internal/anchorage"
	"alaska/internal/ir"
	"alaska/internal/swap"
)

func TestSystemLifecycle(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Halloc(128)
	if err != nil {
		t.Fatal(err)
	}
	th := sys.NewThread()
	addr, unpin, err := th.Pin(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Space().WriteU64(addr, 42); err != nil {
		t.Fatal(err)
	}
	unpin()
	if err := sys.Hfree(h); err != nil {
		t.Fatal(err)
	}
	if err := th.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDefragRequiresAnchorage(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Defrag(nil); err == nil {
		t.Error("Defrag without Anchorage succeeded")
	}
}

func TestAnchorageDefragEndToEnd(t *testing.T) {
	cfg := anchorage.DefaultConfig()
	cfg.SubHeapSize = 128 * 1024
	sys, err := NewSystem(WithAnchorage(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	var keep []Handle
	var all []Handle
	for i := 0; i < 2048; i++ {
		h, err := sys.Halloc(512)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, h)
	}
	th := sys.NewThread()
	defer th.Destroy()
	for i, h := range all {
		if i%8 == 0 {
			a, _ := th.Translate(h)
			if err := sys.Space().WriteU64(a, uint64(i)); err != nil {
				t.Fatal(err)
			}
			keep = append(keep, h)
			continue
		}
		if err := sys.Hfree(h); err != nil {
			t.Fatal(err)
		}
	}
	fragBefore := sys.Fragmentation()
	moved, err := sys.Defrag(th)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Error("Defrag moved nothing on a fragmented heap")
	}
	if frag := sys.Fragmentation(); frag >= fragBefore {
		t.Errorf("fragmentation %v did not improve from %v", frag, fragBefore)
	}
	for i, h := range keep {
		a, err := th.Translate(h)
		if err != nil {
			t.Fatal(err)
		}
		v, err := sys.Space().ReadU64(a)
		if err != nil || v != uint64(i*8) {
			t.Errorf("object %d corrupted after Defrag: %d, %v", i, v, err)
		}
	}
}

func TestSwappingOption(t *testing.T) {
	sys, err := NewSystem(WithAnchorage(anchorage.DefaultConfig()), WithSwapping(swap.NewMemStore(true)))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	th := sys.NewThread()
	defer th.Destroy()
	h, _ := sys.Halloc(256)
	a, _ := th.Translate(h)
	payload := bytes.Repeat([]byte{7}, 256)
	if err := sys.Space().Write(a, payload); err != nil {
		t.Fatal(err)
	}
	sys.Barrier(th, func(scope *BarrierScope) {
		if err := sys.Swapper().SwapOut(scope, h.ID()); err != nil {
			t.Errorf("SwapOut: %v", err)
		}
	})
	// Faulting access transparently restores.
	a2, err := th.Translate(h)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := sys.Space().Read(a2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted across swap")
	}
}

func TestCompileAndRun(t *testing.T) {
	build := func() *ir.Module {
		f := ir.NewFunc("main", 0)
		b := ir.NewBuilder(f)
		p := b.Alloc(b.Const(8))
		c := b.Const(99)
		b.Store(p, c)
		v := b.Load(p, ir.Int)
		b.Free(p)
		b.Ret(v)
		f.Finish()
		return &ir.Module{Funcs: []*ir.Func{f}}
	}
	bv, bc, err := RunBaseline(build(), "main")
	if err != nil {
		t.Fatal(err)
	}
	m := build()
	st, err := Compile(m, DefaultCompileOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.Translates == 0 {
		t.Error("compile inserted no translations")
	}
	av, ac, err := RunAlaska(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	if bv != 99 || av != 99 {
		t.Errorf("results: %d, %d", bv, av)
	}
	if ac <= bc {
		t.Errorf("alaska cycles %d <= baseline %d", ac, bc)
	}
}
