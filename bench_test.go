// Package repro's root benchmark harness: one testing.B benchmark per
// table/figure of the paper's evaluation (run with `go test -bench=. .`),
// plus microbenchmarks for the design choices DESIGN.md calls out
// (stack pin sets vs. atomic pin counts, translation cost, barrier cost,
// handle-fault swap-in).
//
// Figure-level benchmarks run a scaled version of the full experiment per
// iteration and attach the paper-relevant quantity as a custom metric
// (geomean overhead, RSS saving, latency), so `go test -bench` output
// regenerates the evaluation's headline numbers.
package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/figures"
	"alaska/internal/handle"
	"alaska/internal/locality"
	"alaska/internal/mallocsim"
	"alaska/internal/mem"
	"alaska/internal/mesh"
	"alaska/internal/reloc"
	"alaska/internal/rt"
	"alaska/internal/swap"
	"alaska/internal/vm"
	"alaska/internal/workloads"
	"alaska/pkg/alaska"
)

// BenchmarkFigure7 regenerates the overhead study: all 49 benchmark
// models under baseline and Alaska. Metrics: geomean overhead (%), and
// the geomean excluding the strict-aliasing violators.
func BenchmarkFigure7(b *testing.B) {
	var gm, gmX float64
	for i := 0; i < b.N; i++ {
		res, err := figures.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		gm = figures.Geomean(res, false)
		gmX = figures.Geomean(res, true)
	}
	b.ReportMetric(gm*100, "geomean-overhead-%")
	b.ReportMetric(gmX*100, "geomean-excl-sa-%")
}

// BenchmarkFigure7PerSuite runs each suite separately so per-suite costs
// are visible.
func BenchmarkFigure7PerSuite(b *testing.B) {
	for _, suite := range []string{workloads.SuiteEmbench, workloads.SuiteGAP, workloads.SuiteNAS, workloads.SuiteSPEC} {
		suite := suite
		b.Run(suite, func(b *testing.B) {
			var over float64
			for i := 0; i < b.N; i++ {
				var xs []float64
				res, err := figures.Figure7()
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res {
					if r.Suite == suite {
						xs = append(xs, r.Overhead)
					}
				}
				var sum float64
				for _, x := range xs {
					sum += x
				}
				over = sum / float64(len(xs))
			}
			b.ReportMetric(over*100, "mean-overhead-%")
		})
	}
}

// BenchmarkFigure8 regenerates the ablation study. Metrics: mean overhead
// under each configuration.
func BenchmarkFigure8(b *testing.B) {
	var full, noTrack, noHoist float64
	for i := 0; i < b.N; i++ {
		res, err := figures.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		full, noTrack, noHoist = 0, 0, 0
		for _, r := range res {
			full += r.Alaska
			noTrack += r.NoTracking
			noHoist += r.NoHoisting
		}
		n := float64(len(res))
		full, noTrack, noHoist = full/n, noTrack/n, noHoist/n
	}
	b.ReportMetric(full*100, "alaska-%")
	b.ReportMetric(noTrack*100, "notracking-%")
	b.ReportMetric(noHoist*100, "nohoisting-%")
}

// BenchmarkCodeSize regenerates the Q2 executable-growth numbers.
func BenchmarkCodeSize(b *testing.B) {
	var gm float64
	for i := 0; i < b.N; i++ {
		_, g, err := figures.CodeSize()
		if err != nil {
			b.Fatal(err)
		}
		gm = g
	}
	b.ReportMetric(gm*100, "code-growth-%")
}

// BenchmarkFigure9 regenerates the Redis defragmentation experiment at
// 1/16 scale. Metric: Anchorage's RSS saving vs the baseline (the paper's
// "40% in Redis" headline, Figure 1).
func BenchmarkFigure9(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		res, err := figures.Figure9(figures.DefaultDefragConfig(0.0625))
		if err != nil {
			b.Fatal(err)
		}
		saving = 1 - float64(res["anchorage"].FinalRSS)/float64(res["baseline"].FinalRSS)
	}
	b.ReportMetric(saving*100, "rss-saving-%")
}

// BenchmarkFigure10 regenerates a reduced control-parameter sweep.
// Metric: envelope spread at mid-run (how much the parameters matter).
func BenchmarkFigure10(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		points, err := figures.Figure10(figures.DefaultDefragConfig(0.0625),
			[]float64{1.15, 2.0}, []float64{0.02, 0.2}, []float64{0.05, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := figures.Envelope(points)
		mid := lo.Points[len(lo.Points)/2].T
		spread = (hi.At(mid) - lo.At(mid)) / hi.At(mid)
	}
	b.ReportMetric(spread*100, "envelope-spread-%")
}

// BenchmarkFigure11 regenerates the large-workload experiment at reduced
// scale. Metric: Anchorage's saving vs baseline at the larger scale.
func BenchmarkFigure11(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		res, err := figures.Figure11(0.125)
		if err != nil {
			b.Fatal(err)
		}
		saving = 1 - float64(res["anchorage"].FinalRSS)/float64(res["baseline"].FinalRSS)
	}
	b.ReportMetric(saving*100, "rss-saving-%")
}

// BenchmarkFigure12 regenerates one memcached cell (4 threads, 50 ms
// pauses) against its baseline. Metrics: average latencies in ns.
func BenchmarkFigure12(b *testing.B) {
	var alaskaAvg, baseAvg time.Duration
	for i := 0; i < b.N; i++ {
		cfg := figures.DefaultMemcachedConfig(4, 50*time.Millisecond)
		cfg.Duration = 200 * time.Millisecond
		r, err := figures.RunMemcached(true, cfg)
		if err != nil {
			b.Fatal(err)
		}
		base, err := figures.RunMemcached(false, figures.DefaultMemcachedConfig(4, 0))
		if err != nil {
			b.Fatal(err)
		}
		alaskaAvg, baseAvg = r.AvgLatency, base.AvgLatency
	}
	b.ReportMetric(float64(alaskaAvg.Nanoseconds()), "alaska-avg-ns")
	b.ReportMetric(float64(baseAvg.Nanoseconds()), "baseline-avg-ns")
}

// ---------------------------------------------------------------------------
// Design-choice ablations.

// BenchmarkTranslation measures the raw handle-table translation path
// (Figure 5's six instructions, in simulation).
func BenchmarkTranslation(b *testing.B) {
	tb := handle.NewTable()
	id, err := tb.Alloc(0x10000, 4096)
	if err != nil {
		b.Fatal(err)
	}
	h := handle.Make(id, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Translate(h); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTable is the surface shared by the sharded table and the RWMutex
// ablation baseline, so the parallel benchmarks can run them head-to-head.
type benchTable interface {
	Alloc(backing mem.Addr, size uint64) (uint32, error)
	Free(id uint32) error
	Translate(h handle.Handle) (mem.Addr, error)
}

// BenchmarkTranslateParallel compares handle→address translation across
// cores: the sharded table's lock-free atomic-load path against the seed's
// single-RWMutex design, whose read lock serializes every translation on
// one cache line. Run with -cpu=1,2,4,8 to see the scaling gap; the paper's
// overhead argument needs translation to stay near-free under parallelism.
func BenchmarkTranslateParallel(b *testing.B) {
	for _, impl := range []struct {
		name string
		mk   func() benchTable
	}{
		{"sharded", func() benchTable { return handle.NewTable() }},
		{"rwmutex", func() benchTable { return handle.NewLockedTable() }},
	} {
		impl := impl
		b.Run(impl.name, func(b *testing.B) {
			tb := impl.mk()
			const n = 1024
			hs := make([]handle.Handle, n)
			for i := range hs {
				id, err := tb.Alloc(mem.Addr(0x10000+uint64(i)*4096), 4096)
				if err != nil {
					b.Fatal(err)
				}
				hs[i] = handle.Make(id, 128)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					// b.Fatal is off-limits on RunParallel workers
					// (FailNow must run on the benchmark goroutine).
					if _, err := tb.Translate(hs[i&(n-1)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkAllocFreeParallel compares parallel handle allocation/recycling.
// The sharded table spreads the free lists and bump pointers across shards
// keyed by the ID's low bits, so concurrent allocators mostly touch
// different locks; the RWMutex baseline serializes every Alloc and Free.
func BenchmarkAllocFreeParallel(b *testing.B) {
	for _, impl := range []struct {
		name string
		mk   func() benchTable
	}{
		{"sharded", func() benchTable { return handle.NewTable() }},
		{"rwmutex", func() benchTable { return handle.NewLockedTable() }},
	} {
		impl := impl
		b.Run(impl.name, func(b *testing.B) {
			tb := impl.mk()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					id, err := tb.Alloc(0x10000, 64)
					if err != nil {
						b.Error(err)
						return
					}
					if err := tb.Free(id); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkPinTracking compares the paper's stack pin sets against the
// naïve atomic pin-count design under parallel load — the contention
// argument of §3.4.
func BenchmarkPinTracking(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    rt.PinMode
	}{{"StackPins", rt.StackPins}, {"CountedPins", rt.CountedPins}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			space := mem.NewSpace()
			svc := anchorage.NewService(space, anchorage.DefaultConfig())
			r, err := rt.New(space, svc, rt.WithPinMode(mode.m))
			if err != nil {
				b.Fatal(err)
			}
			h, err := r.Halloc(64)
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				th := r.NewThread()
				defer th.Destroy()
				th.PushFrame(1)
				defer th.PopFrame()
				for pb.Next() {
					if _, err := th.TranslateAndPin(h, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkAllocators compares allocation fast paths: Anchorage's naïve
// bump+freelist vs the conventional size-class allocator, both through
// the full halloc path where applicable.
func BenchmarkAllocators(b *testing.B) {
	b.Run("anchorage-halloc", func(b *testing.B) {
		sys, err := alaska.NewSystem(alaska.WithAnchorage(anchorage.DefaultConfig()))
		if err != nil {
			b.Fatal(err)
		}
		defer sys.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h, err := sys.Halloc(64)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Hfree(h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("malloc-service", func(b *testing.B) {
		sys, err := alaska.NewSystem()
		if err != nil {
			b.Fatal(err)
		}
		defer sys.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h, err := sys.Halloc(64)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Hfree(h); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDefragPass measures a full-heap compaction pass over a
// fragmented 8 MiB heap.
func BenchmarkDefragPass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := alaska.NewSystem(alaska.WithAnchorage(anchorage.DefaultConfig()))
		if err != nil {
			b.Fatal(err)
		}
		var hs []alaska.Handle
		for k := 0; k < 16384; k++ {
			h, err := sys.Halloc(512)
			if err != nil {
				b.Fatal(err)
			}
			hs = append(hs, h)
		}
		for k, h := range hs {
			if k%4 != 0 {
				if err := sys.Hfree(h); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
		if _, err := sys.Defrag(nil); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := sys.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkBarrier measures the stop-the-world rendezvous with idle
// (externally-blocked) threads — the fixed cost of every defrag pass.
func BenchmarkBarrier(b *testing.B) {
	sys, err := alaska.NewSystem(alaska.WithAnchorage(anchorage.DefaultConfig()))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Barrier(nil, func(*alaska.BarrierScope) {})
	}
}

// BenchmarkSwapIn measures the handle-fault path: fault, decompress,
// reallocate, revalidate, retry (the §7 extension).
func BenchmarkSwapIn(b *testing.B) {
	sys, err := alaska.NewSystem(
		alaska.WithAnchorage(anchorage.DefaultConfig()),
		alaska.WithSwapping(swap.NewMemStore(true)),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	th := sys.NewThread()
	defer th.Destroy()
	h, err := sys.Halloc(4096)
	if err != nil {
		b.Fatal(err)
	}
	a, _ := th.Translate(h)
	if err := sys.Space().Write(a, make([]byte, 4096)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Barrier(th, func(scope *alaska.BarrierScope) {
			if err := sys.Swapper().SwapOut(scope, h.ID()); err != nil {
				b.Fatal(err)
			}
		})
		if _, err := th.Translate(h); err != nil { // faults + swaps in
			b.Fatal(err)
		}
	}
}

// BenchmarkVMInterpreter measures raw interpreter throughput on a dense
// kernel, the substrate cost under every Figure 7 number.
func BenchmarkVMInterpreter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := vm.NewBaseline(workloads.BuildGrid(256, 10, 4), vm.DefaultCosts)
		if _, err := m.Run("main"); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(m.DynInstrs) // instructions per "byte" for ns/instr
	}
}

// BenchmarkWorkloadsCompile measures the compiler pipeline over every
// benchmark model (the paper's Q2 compile-time discussion).
func BenchmarkWorkloadsCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, wl := range workloads.All() {
			mod := wl.Build()
			if _, err := alaska.Compile(mod, alaska.DefaultCompileOptions); err != nil {
				b.Fatal(fmt.Errorf("%s: %w", wl.Name, err))
			}
		}
	}
}

// BenchmarkAnchorageAlpha ablates the aggression parameter: small α means
// many small pauses, large α fewer big ones. Metric: total pause time to
// fully compact a fragmented heap.
func BenchmarkAnchorageAlpha(b *testing.B) {
	for _, alpha := range []float64{0.05, 0.25, 1.0} {
		alpha := alpha
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			var passes int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := anchorage.DefaultConfig()
				cfg.Alpha = alpha
				cfg.SubHeapSize = 256 * 1024
				sys, err := alaska.NewSystem(alaska.WithAnchorage(cfg))
				if err != nil {
					b.Fatal(err)
				}
				var hs []alaska.Handle
				for k := 0; k < 8192; k++ {
					h, err := sys.Halloc(512)
					if err != nil {
						b.Fatal(err)
					}
					hs = append(hs, h)
				}
				for k, h := range hs {
					if k%4 != 0 {
						if err := sys.Hfree(h); err != nil {
							b.Fatal(err)
						}
					}
				}
				svc := sys.Runtime().Service().(*anchorage.Service)
				budget := uint64(alpha * float64(svc.HeapExtent()))
				if budget == 0 {
					budget = 1
				}
				b.StartTimer()
				n := 0
				for ; n < 1000; n++ {
					var moved uint64
					sys.Barrier(nil, func(scope *alaska.BarrierScope) {
						moved = svc.DefragPass(scope, budget)
					})
					if moved == 0 {
						break
					}
				}
				b.StopTimer()
				passes = int64(n)
				if err := sys.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(passes), "passes-to-compact")
		})
	}
}

// BenchmarkMeshProbes ablates Mesh's randomized probe budget: more probes
// per round find more meshable pairs but cost more scan time. The sparse
// heap is built once; each iteration times one probing round (later
// rounds find progressively fewer pairs, as in a real Mesh deployment).
func BenchmarkMeshProbes(b *testing.B) {
	for _, probes := range []int{8, 64, 512} {
		probes := probes
		b.Run(fmt.Sprintf("probes=%d", probes), func(b *testing.B) {
			space := mem.NewSpace()
			a := mesh.New(space, 42)
			var ptrs []mem.Addr
			for k := 0; k < 2048; k++ {
				p, err := a.Alloc(512)
				if err != nil {
					b.Fatal(err)
				}
				ptrs = append(ptrs, p)
			}
			for k, p := range ptrs {
				if k%8 != 0 {
					if err := a.Free(p); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Mesh(probes)
			}
			b.ReportMetric(float64(a.MeshCount), "meshes-total")
		})
	}
}

// BenchmarkConcurrentReloc measures the §7 speculative move under mutator
// pressure, reporting the abort rate.
func BenchmarkConcurrentReloc(b *testing.B) {
	space := mem.NewSpace()
	var mover *reloc.Mover
	r, err := rt.New(space, mallocsim.NewService(space), rt.WithFaultHandler(func(r *rt.Runtime, id uint32) error {
		return mover.Handler()(r, id)
	}))
	if err != nil {
		b.Fatal(err)
	}
	arena, err := reloc.NewRegionAllocator(space, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	mover = reloc.NewMover(r, arena)
	const nObjs = 256
	ids := make([]uint32, nObjs)
	for i := range ids {
		h, err := r.Halloc(64)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = h.ID()
	}
	quit := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := r.NewThread()
			defer th.Destroy()
			for i := 0; ; i++ {
				select {
				case <-quit:
					return
				default:
				}
				_, _ = th.Translate(handle.Make(ids[(g*31+i)%nObjs], 0))
				th.Safepoint()
			}
		}(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mover.TryMove(ids[i%nObjs]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(quit)
	wg.Wait()
	total := mover.Commits.Load() + mover.Aborts.Load()
	if total > 0 {
		b.ReportMetric(float64(mover.Aborts.Load())/float64(total)*100, "abort-%")
	}
}

// BenchmarkLocalityOptimize measures the clustering pass, ping-ponging
// objects between two arenas so every timed iteration does a full
// relocation round without per-iteration setup. Reports the locality
// improvement of the first round.
func BenchmarkLocalityOptimize(b *testing.B) {
	space := mem.NewSpace()
	r, err := rt.New(space, anchorage.NewService(space, anchorage.DefaultConfig()))
	if err != nil {
		b.Fatal(err)
	}
	th := r.NewThread()
	const n = 1024
	order := make([]uint32, n)
	hs := make([]handle.Handle, n)
	for k := range hs {
		h, err := r.Halloc(64)
		if err != nil {
			b.Fatal(err)
		}
		hs[k] = h
	}
	for k := range order {
		order[k] = hs[(k*677)%n].ID() // scattered order
	}
	tracker := locality.NewTracker(0)
	for _, id := range order {
		tracker.Touch(id)
	}
	before, err := locality.PageSwitches(r, order)
	if err != nil {
		b.Fatal(err)
	}
	var opts [2]*locality.Optimizer
	for k := range opts {
		o, err := locality.NewOptimizer(r, tracker, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		opts[k] = o
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := opts[i%2]
		o.ResetArena()
		r.Barrier(th, func(scope *rt.BarrierScope) {
			o.Optimize(scope)
		})
	}
	b.StopTimer()
	after, err := locality.PageSwitches(r, order)
	if err != nil {
		b.Fatal(err)
	}
	if after > 0 {
		b.ReportMetric(float64(before)/float64(after), "locality-improvement-x")
	}
}
