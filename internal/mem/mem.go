// Package mem provides a simulated 64-bit virtual address space with
// demand paging and resident-set accounting.
//
// Alaska (ASPLOS '24) measures fragmentation as the divergence between a
// process's resident set size (physical pages the kernel has committed)
// and the bytes its allocator considers live. Reproducing that in Go
// requires a substrate where "virtual address", "page", "RSS", and
// madvise(MADV_DONTNEED) are first-class, observable concepts. This
// package is that substrate: every allocator and runtime component in the
// repository performs its loads and stores against a Space, and the
// experiment harnesses read Space.RSS() exactly where the paper reads
// /proc/self/status.
//
// A Space hands out page-aligned virtual regions (Map), tracks which 4 KiB
// pages have been touched (a page becomes resident on first write or read),
// and supports returning pages to the simulated kernel (DontNeed), which
// zeroes them and removes them from the resident set — precisely the
// semantics Anchorage relies on in §4.3 of the paper.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// PageSize is the simulated hardware page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Addr is a simulated virtual address. Address zero is never mapped, so it
// can serve as the null pointer.
type Addr uint64

// baseStart is the first virtual address handed out by Map. Leaving a guard
// gap below it means small integers can never alias a mapped address.
const baseStart Addr = 0x0000_1000_0000

// A Region is a contiguous page-aligned virtual mapping inside a Space.
type Region struct {
	space    *Space
	base     Addr
	size     uint64 // bytes, multiple of PageSize
	data     []byte
	resident []bool // one entry per page
	nRes     int    // number of resident pages
}

// Space is a simulated process address space. All methods are safe for
// concurrent use.
type Space struct {
	mu       sync.RWMutex
	regions  []*Region // sorted by base
	nextBase Addr
	rssPages int64

	// faults counts demand-paging events (first touch of a page), which is
	// useful for tests asserting that DontNeed actually released pages.
	faults int64
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{nextBase: baseStart}
}

// roundUpPage rounds n up to a multiple of PageSize.
func roundUpPage(n uint64) uint64 {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// Map reserves a new virtual region of at least size bytes (rounded up to a
// page multiple) and returns it. The region's pages are not resident until
// touched, mirroring anonymous mmap.
func (s *Space) Map(size uint64) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("mem: Map of zero bytes")
	}
	size = roundUpPage(size)
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.nextBase
	// Leave a one-page guard gap between regions so out-of-bounds addresses
	// fault instead of silently landing in a neighbour.
	s.nextBase += Addr(size) + PageSize
	r := &Region{
		space:    s,
		base:     base,
		size:     size,
		data:     make([]byte, size),
		resident: make([]bool, size/PageSize),
	}
	s.regions = append(s.regions, r)
	return r, nil
}

// MapAt reserves a region at a caller-chosen base address. Alaska places its
// handle table at a fixed virtual address so translation need not mask the
// top handle bit (§4.2.1); MapAt lets the runtime do the same. The base must
// be page-aligned and must not overlap an existing region.
func (s *Space) MapAt(base Addr, size uint64) (*Region, error) {
	if base == 0 || uint64(base)%PageSize != 0 {
		return nil, fmt.Errorf("mem: MapAt base %#x not page aligned", base)
	}
	if size == 0 {
		return nil, fmt.Errorf("mem: MapAt of zero bytes")
	}
	size = roundUpPage(size)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.regions {
		if base < r.base+Addr(r.size) && r.base < base+Addr(size) {
			return nil, fmt.Errorf("mem: MapAt [%#x,%#x) overlaps region [%#x,%#x)",
				base, base+Addr(size), r.base, r.base+Addr(r.size))
		}
	}
	r := &Region{
		space:    s,
		base:     base,
		size:     size,
		data:     make([]byte, size),
		resident: make([]bool, size/PageSize),
	}
	s.regions = append(s.regions, r)
	sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].base < s.regions[j].base })
	if base+Addr(size) > s.nextBase {
		s.nextBase = base + Addr(size) + PageSize
	}
	return r, nil
}

// Unmap removes a region from the space, releasing its resident pages.
func (s *Space) Unmap(r *Region) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, got := range s.regions {
		if got == r {
			s.rssPages -= int64(r.nRes)
			r.nRes = 0
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			r.space = nil
			return nil
		}
	}
	return fmt.Errorf("mem: Unmap of region not in space")
}

// find returns the region containing addr, or nil. Caller holds s.mu (read).
func (s *Space) find(addr Addr) *Region {
	// Binary search over sorted regions.
	lo, hi := 0, len(s.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		r := s.regions[mid]
		switch {
		case addr < r.base:
			hi = mid
		case addr >= r.base+Addr(r.size):
			lo = mid + 1
		default:
			return r
		}
	}
	return nil
}

// Resolve returns the region containing addr and the byte offset within it.
func (s *Space) Resolve(addr Addr) (*Region, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.find(addr)
	if r == nil {
		return nil, 0, &Fault{Addr: addr, Op: "resolve"}
	}
	return r, uint64(addr - r.base), nil
}

// Fault is the error returned for accesses to unmapped addresses — the
// simulated equivalent of SIGSEGV.
type Fault struct {
	Addr Addr
	Op   string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %s fault at unmapped address %#x", f.Op, f.Addr)
}

// touch marks all pages overlapping [off, off+n) resident.
// Caller holds s.mu (read) — page accounting uses the region's own fields,
// so we upgrade via atomic-free double-check under the space lock by
// requiring callers that mutate residency to hold the write lock. To keep
// the locking simple and correct, all touching methods take the write lock.
func (r *Region) touch(off, n uint64) {
	first := off / PageSize
	last := (off + n - 1) / PageSize
	for p := first; p <= last; p++ {
		if !r.resident[p] {
			r.resident[p] = true
			r.nRes++
			r.space.rssPages++
			r.space.faults++
		}
	}
}

// access validates an n-byte access at addr and returns the region and
// offset with pages made resident. It is the common path for loads/stores.
func (s *Space) access(addr Addr, n uint64, op string) (*Region, uint64, error) {
	if n == 0 {
		return nil, 0, fmt.Errorf("mem: zero-length %s at %#x", op, addr)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.find(addr)
	if r == nil {
		return nil, 0, &Fault{Addr: addr, Op: op}
	}
	off := uint64(addr - r.base)
	if off+n > r.size {
		return nil, 0, &Fault{Addr: addr + Addr(r.size-off), Op: op}
	}
	r.touch(off, n)
	return r, off, nil
}

// Write copies b into the space at addr.
func (s *Space) Write(addr Addr, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	r, off, err := s.access(addr, uint64(len(b)), "write")
	if err != nil {
		return err
	}
	copy(r.data[off:], b)
	return nil
}

// Read copies len(b) bytes from the space at addr into b.
func (s *Space) Read(addr Addr, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	r, off, err := s.access(addr, uint64(len(b)), "read")
	if err != nil {
		return err
	}
	copy(b, r.data[off:])
	return nil
}

// WriteU64 stores a 64-bit little-endian word at addr.
func (s *Space) WriteU64(addr Addr, v uint64) error {
	r, off, err := s.access(addr, 8, "write")
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(r.data[off:], v)
	return nil
}

// ReadU64 loads a 64-bit little-endian word from addr.
func (s *Space) ReadU64(addr Addr) (uint64, error) {
	r, off, err := s.access(addr, 8, "read")
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(r.data[off:]), nil
}

// WriteU32 stores a 32-bit little-endian word at addr.
func (s *Space) WriteU32(addr Addr, v uint32) error {
	r, off, err := s.access(addr, 4, "write")
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(r.data[off:], v)
	return nil
}

// ReadU32 loads a 32-bit little-endian word from addr.
func (s *Space) ReadU32(addr Addr) (uint32, error) {
	r, off, err := s.access(addr, 4, "read")
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(r.data[off:]), nil
}

// WriteU8 stores one byte at addr.
func (s *Space) WriteU8(addr Addr, v uint8) error {
	r, off, err := s.access(addr, 1, "write")
	if err != nil {
		return err
	}
	r.data[off] = v
	return nil
}

// ReadU8 loads one byte from addr.
func (s *Space) ReadU8(addr Addr) (uint8, error) {
	r, off, err := s.access(addr, 1, "read")
	if err != nil {
		return 0, err
	}
	return r.data[off], nil
}

// Copy moves n bytes from src to dst within the space, handling overlap the
// way memmove does. It is the primitive object relocation is built on.
func (s *Space) Copy(dst, src Addr, n uint64) error {
	if n == 0 {
		return nil
	}
	sr, soff, err := s.access(src, n, "read")
	if err != nil {
		return err
	}
	dr, doff, err := s.access(dst, n, "write")
	if err != nil {
		return err
	}
	copy(dr.data[doff:doff+n], sr.data[soff:soff+n])
	return nil
}

// DontNeed releases whole pages fully contained in [addr, addr+n) back to
// the simulated kernel: the pages are zeroed and leave the resident set.
// Partially covered pages at either end are left untouched, matching
// madvise(MADV_DONTNEED) semantics for anonymous memory.
func (s *Space) DontNeed(addr Addr, n uint64) error {
	if n == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.find(addr)
	if r == nil {
		return &Fault{Addr: addr, Op: "madvise"}
	}
	off := uint64(addr - r.base)
	if off+n > r.size {
		return &Fault{Addr: addr + Addr(r.size-off), Op: "madvise"}
	}
	// Round the start up and the end down to page boundaries.
	start := (off + PageSize - 1) &^ (PageSize - 1)
	end := (off + n) &^ (PageSize - 1)
	for p := start; p+PageSize <= end; p += PageSize {
		pi := p / PageSize
		if r.resident[pi] {
			r.resident[pi] = false
			r.nRes--
			s.rssPages--
		}
		clear(r.data[p : p+PageSize])
	}
	return nil
}

// RSS returns the resident set size of the space in bytes.
func (s *Space) RSS() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(s.rssPages) * PageSize
}

// Faults returns the cumulative count of demand-paging events.
func (s *Space) Faults() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.faults
}

// NumRegions returns the number of live mappings.
func (s *Space) NumRegions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.regions)
}

// Base returns the region's base address.
func (r *Region) Base() Addr { return r.base }

// Size returns the region's size in bytes.
func (r *Region) Size() uint64 { return r.size }

// ResidentPages returns how many of the region's pages are resident.
func (r *Region) ResidentPages() int {
	if r.space == nil {
		return 0
	}
	r.space.mu.RLock()
	defer r.space.mu.RUnlock()
	return r.nRes
}

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr Addr) bool {
	return addr >= r.base && addr < r.base+Addr(r.size)
}

// End returns one past the region's last byte.
func (r *Region) End() Addr { return r.base + Addr(r.size) }
