package mem

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func mustMap(t *testing.T, s *Space, size uint64) *Region {
	t.Helper()
	r, err := s.Map(size)
	if err != nil {
		t.Fatalf("Map(%d): %v", size, err)
	}
	return r
}

func TestMapAlignsAndSeparates(t *testing.T) {
	s := NewSpace()
	r1 := mustMap(t, s, 1)
	r2 := mustMap(t, s, PageSize+1)
	if r1.Size() != PageSize {
		t.Errorf("size rounded to %d, want %d", r1.Size(), PageSize)
	}
	if r2.Size() != 2*PageSize {
		t.Errorf("size rounded to %d, want %d", r2.Size(), 2*PageSize)
	}
	if uint64(r1.Base())%PageSize != 0 || uint64(r2.Base())%PageSize != 0 {
		t.Errorf("bases not page aligned: %#x %#x", r1.Base(), r2.Base())
	}
	if r2.Base() < r1.End()+PageSize {
		t.Errorf("no guard gap between regions: r1 end %#x, r2 base %#x", r1.End(), r2.Base())
	}
}

func TestMapZeroFails(t *testing.T) {
	s := NewSpace()
	if _, err := s.Map(0); err == nil {
		t.Fatal("Map(0) succeeded, want error")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := NewSpace()
	r := mustMap(t, s, 2*PageSize)
	msg := []byte("the quick brown fox")
	addr := r.Base() + 100
	if err := s.Write(addr, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := s.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("read %q, want %q", got, msg)
	}
}

func TestWordAccessors(t *testing.T) {
	s := NewSpace()
	r := mustMap(t, s, PageSize)
	a := r.Base()
	if err := s.WriteU64(a, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReadU64(a)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Errorf("ReadU64 = %#x, %v", v, err)
	}
	if err := s.WriteU32(a+8, 0x12345678); err != nil {
		t.Fatal(err)
	}
	v32, err := s.ReadU32(a + 8)
	if err != nil || v32 != 0x12345678 {
		t.Errorf("ReadU32 = %#x, %v", v32, err)
	}
	if err := s.WriteU8(a+12, 0xab); err != nil {
		t.Fatal(err)
	}
	v8, err := s.ReadU8(a + 12)
	if err != nil || v8 != 0xab {
		t.Errorf("ReadU8 = %#x, %v", v8, err)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	s := NewSpace()
	var f *Fault
	if err := s.Write(0x42, []byte{1}); !errors.As(err, &f) {
		t.Errorf("write to unmapped = %v, want Fault", err)
	}
	if _, err := s.ReadU64(0); !errors.As(err, &f) {
		t.Errorf("read of null = %v, want Fault", err)
	}
}

func TestAccessPastEndFaults(t *testing.T) {
	s := NewSpace()
	r := mustMap(t, s, PageSize)
	var f *Fault
	err := s.Write(r.End()-4, []byte{1, 2, 3, 4, 5})
	if !errors.As(err, &f) {
		t.Errorf("straddling write = %v, want Fault", err)
	}
}

func TestGuardGapFaults(t *testing.T) {
	s := NewSpace()
	r1 := mustMap(t, s, PageSize)
	mustMap(t, s, PageSize)
	var f *Fault
	if err := s.WriteU8(r1.End(), 1); !errors.As(err, &f) {
		t.Errorf("write into guard gap = %v, want Fault", err)
	}
}

func TestRSSDemandPaging(t *testing.T) {
	s := NewSpace()
	r := mustMap(t, s, 10*PageSize)
	if s.RSS() != 0 {
		t.Fatalf("RSS after Map = %d, want 0 (demand paged)", s.RSS())
	}
	if err := s.WriteU8(r.Base(), 1); err != nil {
		t.Fatal(err)
	}
	if s.RSS() != PageSize {
		t.Errorf("RSS after one touch = %d, want %d", s.RSS(), PageSize)
	}
	// Touch the same page again: no growth.
	if err := s.WriteU8(r.Base()+1, 2); err != nil {
		t.Fatal(err)
	}
	if s.RSS() != PageSize {
		t.Errorf("RSS after second touch = %d, want %d", s.RSS(), PageSize)
	}
	// A straddling write touches both pages.
	if err := s.WriteU64(r.Base()+PageSize*2-4, 7); err != nil {
		t.Fatal(err)
	}
	if s.RSS() != 3*PageSize {
		t.Errorf("RSS after straddling write = %d, want %d", s.RSS(), 3*PageSize)
	}
}

func TestReadsAlsoPageIn(t *testing.T) {
	s := NewSpace()
	r := mustMap(t, s, PageSize)
	if _, err := s.ReadU64(r.Base()); err != nil {
		t.Fatal(err)
	}
	if s.RSS() != PageSize {
		t.Errorf("RSS after read = %d, want %d", s.RSS(), PageSize)
	}
}

func TestDontNeedReleasesWholePagesOnly(t *testing.T) {
	s := NewSpace()
	r := mustMap(t, s, 4*PageSize)
	for i := uint64(0); i < 4; i++ {
		if err := s.WriteU8(r.Base()+Addr(i*PageSize), byte(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if s.RSS() != 4*PageSize {
		t.Fatalf("RSS = %d, want %d", s.RSS(), 4*PageSize)
	}
	// Release from mid page 0 to mid page 3: only pages 1 and 2 qualify.
	if err := s.DontNeed(r.Base()+PageSize/2, 3*PageSize); err != nil {
		t.Fatal(err)
	}
	if s.RSS() != 2*PageSize {
		t.Errorf("RSS after partial DontNeed = %d, want %d", s.RSS(), 2*PageSize)
	}
	// Released pages read back as zero.
	v, err := s.ReadU8(r.Base() + PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("released page reads %d, want 0", v)
	}
	// Untouched pages retain data.
	v, err = s.ReadU8(r.Base())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("kept page reads %d, want 1", v)
	}
}

func TestDontNeedThenRetouchGrowsRSS(t *testing.T) {
	s := NewSpace()
	r := mustMap(t, s, PageSize)
	if err := s.WriteU8(r.Base(), 9); err != nil {
		t.Fatal(err)
	}
	f0 := s.Faults()
	if err := s.DontNeed(r.Base(), PageSize); err != nil {
		t.Fatal(err)
	}
	if s.RSS() != 0 {
		t.Fatalf("RSS after DontNeed = %d, want 0", s.RSS())
	}
	if err := s.WriteU8(r.Base(), 9); err != nil {
		t.Fatal(err)
	}
	if s.RSS() != PageSize {
		t.Errorf("RSS after retouch = %d, want %d", s.RSS(), PageSize)
	}
	if s.Faults() != f0+1 {
		t.Errorf("faults = %d, want %d (retouch is a new fault)", s.Faults(), f0+1)
	}
}

func TestCopyOverlap(t *testing.T) {
	s := NewSpace()
	r := mustMap(t, s, PageSize)
	if err := s.Write(r.Base(), []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	// Overlapping forward copy, memmove semantics.
	if err := s.Copy(r.Base()+2, r.Base(), 6); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := s.Read(r.Base(), got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ababcdef" {
		t.Errorf("after overlap copy = %q, want %q", got, "ababcdef")
	}
}

func TestUnmapReducesRSS(t *testing.T) {
	s := NewSpace()
	r := mustMap(t, s, 2*PageSize)
	if err := s.Write(r.Base(), make([]byte, 2*PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(r); err != nil {
		t.Fatal(err)
	}
	if s.RSS() != 0 {
		t.Errorf("RSS after Unmap = %d, want 0", s.RSS())
	}
	if s.NumRegions() != 0 {
		t.Errorf("regions after Unmap = %d, want 0", s.NumRegions())
	}
	if err := s.Unmap(r); err == nil {
		t.Error("double Unmap succeeded, want error")
	}
	var f *Fault
	if err := s.WriteU8(r.Base(), 1); !errors.As(err, &f) {
		t.Errorf("write after Unmap = %v, want Fault", err)
	}
}

func TestMapAt(t *testing.T) {
	s := NewSpace()
	const base = Addr(0x7000_0000_0000)
	r, err := s.MapAt(base, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if r.Base() != base {
		t.Errorf("base = %#x, want %#x", r.Base(), base)
	}
	if _, err := s.MapAt(base, PageSize); err == nil {
		t.Error("overlapping MapAt succeeded, want error")
	}
	if _, err := s.MapAt(base+1, PageSize); err == nil {
		t.Error("unaligned MapAt succeeded, want error")
	}
	// Subsequent Map must not collide with the fixed mapping.
	r2 := mustMap(t, s, PageSize)
	if r2.Base() >= base && r2.Base() < base+PageSize {
		t.Errorf("Map collided with MapAt region at %#x", r2.Base())
	}
}

func TestResolve(t *testing.T) {
	s := NewSpace()
	r := mustMap(t, s, 2*PageSize)
	got, off, err := s.Resolve(r.Base() + 123)
	if err != nil || got != r || off != 123 {
		t.Errorf("Resolve = %v, %d, %v", got, off, err)
	}
	if _, _, err := s.Resolve(5); err == nil {
		t.Error("Resolve of unmapped succeeded")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewSpace()
	r := mustMap(t, s, 64*PageSize)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := r.Base() + Addr(g*8*PageSize)
			for i := 0; i < 1000; i++ {
				a := base + Addr(i%int(8*PageSize-8))
				if err := s.WriteU64(a, uint64(i)); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if _, err := s.ReadU64(a); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: RSS always equals PageSize times the number of distinct pages
// ever touched and not released.
func TestRSSInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace()
		r, err := s.Map(64 * PageSize)
		if err != nil {
			return false
		}
		live := make(map[uint64]bool)
		for i := 0; i < 200; i++ {
			page := uint64(rng.Intn(64))
			if rng.Intn(3) == 0 {
				if s.DontNeed(r.Base()+Addr(page*PageSize), PageSize) != nil {
					return false
				}
				delete(live, page)
			} else {
				if s.WriteU8(r.Base()+Addr(page*PageSize+uint64(rng.Intn(PageSize))), 1) != nil {
					return false
				}
				live[page] = true
			}
		}
		return s.RSS() == uint64(len(live))*PageSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Copy is equivalent to read-then-write for non-overlapping ranges.
func TestCopyEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace()
		r, err := s.Map(4 * PageSize)
		if err != nil {
			return false
		}
		n := uint64(1 + rng.Intn(512))
		src := r.Base() + Addr(rng.Intn(1024))
		dst := r.Base() + 2*PageSize + Addr(rng.Intn(1024))
		buf := make([]byte, n)
		rng.Read(buf)
		if s.Write(src, buf) != nil {
			return false
		}
		if s.Copy(dst, src, n) != nil {
			return false
		}
		got := make([]byte, n)
		if s.Read(dst, got) != nil {
			return false
		}
		return bytes.Equal(got, buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
