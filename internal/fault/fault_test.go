package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestParseScriptGrammar(t *testing.T) {
	rules, err := ParseScript("sync:after=40:times=6:err=eio, write:sticky:err=enospc,create:once:delay=5ms")
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(rules))
	}
	r := rules[0]
	if r.Op != OpSync || r.After != 40 || r.Times != 6 || !errors.Is(r.Err, syscall.EIO) {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = rules[1]
	if r.Op != OpWrite || r.Times != 0 || !errors.Is(r.Err, syscall.ENOSPC) {
		t.Fatalf("rule 1 = %+v", r)
	}
	r = rules[2]
	if r.Op != OpCreate || r.Times != 1 || r.Delay != 5*time.Millisecond {
		t.Fatalf("rule 2 = %+v", r)
	}
}

func TestParseScriptErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"chmod",
		"sync:after=x",
		"sync:after=-1",
		"sync:times=nope",
		"sync:err=efault",
		"sync:delay=fast",
		"sync:bogus=1",
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) = nil error, want failure", bad)
		}
	}
}

// newTestFS builds a ScriptFS over the real filesystem in a temp dir and
// returns a helper that opens a file through it.
func newTestFS(t *testing.T, rules ...Rule) (*ScriptFS, string) {
	t.Helper()
	return NewScriptFS(nil, rules...), t.TempDir()
}

func TestFailAfterNAndOnce(t *testing.T) {
	fs, dir := newTestFS(t, Rule{Op: OpSync, After: 2, Times: 1})
	f, err := fs.Create(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d (pre-arm): %v", i, err)
		}
	}
	err = f.Sync()
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync 3 = %v, want EIO", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Op != OpSync {
		t.Fatalf("error not an InjectedError for sync: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after one-shot spent: %v", err)
	}
	if got := fs.Injected(); got != 1 {
		t.Fatalf("Injected() = %d, want 1", got)
	}
}

func TestStickyAndClear(t *testing.T) {
	fs, dir := newTestFS(t, Rule{Op: OpWrite, Times: 0, Err: syscall.ENOSPC})
	f, err := fs.Create(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		n, err := f.Write([]byte("hello"))
		if n != 0 || !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d = (%d, %v), want (0, ENOSPC)", i, n, err)
		}
	}
	fs.Clear()
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
	st, err := os.Stat(filepath.Join(dir, "x"))
	if err != nil || st.Size() != 5 {
		t.Fatalf("file size = %v/%v; injected writes must write nothing", st, err)
	}
}

func TestTimesBudget(t *testing.T) {
	fs, dir := newTestFS(t, Rule{Op: OpRemove, Times: 2})
	path := filepath.Join(dir, "x")
	for i := 0; i < 2; i++ {
		if err := fs.Remove(path); !errors.Is(err, syscall.EIO) {
			t.Fatalf("remove %d = %v, want EIO", i, err)
		}
	}
	if err := fs.Remove(path); err == nil || errors.Is(err, syscall.EIO) {
		// Budget spent: passes through to the real filesystem, which
		// reports ENOENT for the never-created file.
		t.Fatalf("remove 3 = %v, want a real ENOENT", err)
	}
}

func TestDelay(t *testing.T) {
	fs, _ := newTestFS(t, Rule{Op: OpRename, Times: 0, Delay: 30 * time.Millisecond})
	t0 := time.Now()
	_ = fs.Rename("nope", "nope2") // sticky error after the delay
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("rename returned in %v, want >=30ms injected delay", d)
	}
}

func TestOpAnyMatchesEverything(t *testing.T) {
	fs, dir := newTestFS(t, Rule{Op: OpAny, Times: 0})
	if _, err := fs.Create(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.EIO) {
		t.Fatalf("create = %v, want EIO", err)
	}
	if err := fs.Truncate(filepath.Join(dir, "x"), 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("truncate = %v, want EIO", err)
	}
}

func TestPassthroughFS(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := OS.Create(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := OS.Truncate(path, 1); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if err := OS.Rename(path, path+"2"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := OS.Remove(path + "2"); err != nil {
		t.Fatalf("remove: %v", err)
	}
}
