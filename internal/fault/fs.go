// Package fault is alaskad's fault-injection plane: a narrow
// filesystem interface (FS) covering exactly the file operations the
// durability layer performs, a passthrough implementation over the real
// OS, and a scriptable implementation that injects errors and latency
// at any operation — fail-after-N, ENOSPC vs EIO, one-shot vs sticky.
//
// Production code takes an FS and never notices the difference; tests
// and the `alaskad -fault-script` dev flag swap in a ScriptFS to prove
// the degradation paths (retry, degraded mode, recovery, compaction
// heal) against every failure the interface can express — without
// needing a real dying disk.
package fault

import (
	"io"
	"os"
)

// File is the writable-file surface the WAL uses on an open segment.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the file operations of an append-only log directory.
// All paths are absolute or process-cwd-relative, exactly as the os
// package would take them.
type FS interface {
	// Create opens path for writing with the given flags (the caller
	// passes os.O_CREATE|os.O_WRONLY and either O_EXCL or O_TRUNC).
	Create(path string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
}

// osFS is the passthrough production implementation.
type osFS struct{}

// OS is the real filesystem.
var OS FS = osFS{}

func (osFS) Create(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error    { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error  { return os.Truncate(path, size) }
