package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Op names one interceptable file operation.
type Op string

// The operations a script can target. OpAny matches all of them.
const (
	OpCreate   Op = "create"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
	OpAny      Op = "*"
)

var validOps = map[Op]bool{
	OpCreate: true, OpWrite: true, OpSync: true, OpClose: true,
	OpRename: true, OpRemove: true, OpTruncate: true, OpAny: true,
}

// Rule is one fault-injection directive: after After successful
// matching operations, inject Err on the next Times matching calls
// (Times == 0 means sticky — every call fails until Clear), adding
// Delay to every matching call whether or not an error fires.
type Rule struct {
	Op    Op
	After int           // successes before the rule arms
	Times int           // failures to inject once armed; 0 = sticky
	Err   error         // error to return; nil = EIO
	Delay time.Duration // injected latency on every matching call
}

// InjectedError wraps an injected failure so logs can tell scripted
// faults from real ones; errors.Is still matches the underlying errno
// (syscall.EIO, syscall.ENOSPC).
type InjectedError struct {
	Op  Op
	Err error
}

func (e *InjectedError) Error() string { return fmt.Sprintf("fault: injected %s error: %v", e.Op, e.Err) }
func (e *InjectedError) Unwrap() error { return e.Err }

// ParseScript parses the `-fault-script` grammar: comma-separated
// rules, each `op[:attr]...` where op is create|write|sync|close|
// rename|remove|truncate|* and the attributes are
//
//	after=N     arm after N successful calls (default 0: immediately)
//	times=N     fail N matching calls once armed (default 1)
//	once        times=1 (the default, spelled out)
//	sticky      fail every matching call until cleared (times=0)
//	err=eio     error class: eio (default) or enospc
//	delay=DUR   add DUR of latency to every matching call
//
// Example: "sync:after=40:times=6:err=eio,write:sticky:err=enospc".
func ParseScript(s string) ([]Rule, error) {
	var rules []Rule
	for _, spec := range strings.Split(s, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		r := Rule{Op: Op(strings.ToLower(parts[0])), Times: 1}
		if !validOps[r.Op] {
			return nil, fmt.Errorf("fault: unknown op %q in rule %q", parts[0], spec)
		}
		for _, attr := range parts[1:] {
			key, val, hasVal := strings.Cut(attr, "=")
			switch strings.ToLower(key) {
			case "once":
				r.Times = 1
			case "sticky":
				r.Times = 0
			case "after":
				n, err := strconv.Atoi(val)
				if err != nil || !hasVal || n < 0 {
					return nil, fmt.Errorf("fault: bad after=%q in rule %q", val, spec)
				}
				r.After = n
			case "times":
				n, err := strconv.Atoi(val)
				if err != nil || !hasVal || n < 0 {
					return nil, fmt.Errorf("fault: bad times=%q in rule %q", val, spec)
				}
				r.Times = n
			case "err":
				switch strings.ToLower(val) {
				case "eio":
					r.Err = syscall.EIO
				case "enospc":
					r.Err = syscall.ENOSPC
				default:
					return nil, fmt.Errorf("fault: unknown err=%q in rule %q (want eio|enospc)", val, spec)
				}
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || !hasVal || d < 0 {
					return nil, fmt.Errorf("fault: bad delay=%q in rule %q", val, spec)
				}
				r.Delay = d
			default:
				return nil, fmt.Errorf("fault: unknown attribute %q in rule %q", attr, spec)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty script")
	}
	return rules, nil
}

// ruleState tracks one rule's live counters.
type ruleState struct {
	Rule
	seen  int // successful (non-injected) matching calls so far
	fired int // injections delivered
}

// ScriptFS wraps a base FS and applies a script of fault rules to every
// operation. Safe for concurrent use.
type ScriptFS struct {
	base FS

	mu    sync.Mutex
	rules []*ruleState

	injected atomic.Int64
}

// NewScriptFS builds a fault-injecting FS over base (nil = the real
// filesystem) from the given rules.
func NewScriptFS(base FS, rules ...Rule) *ScriptFS {
	if base == nil {
		base = OS
	}
	s := &ScriptFS{base: base}
	for _, r := range rules {
		rs := &ruleState{Rule: r}
		if rs.Err == nil {
			rs.Err = syscall.EIO
		}
		s.rules = append(s.rules, rs)
	}
	return s
}

// Injected reports how many errors the script has delivered.
func (s *ScriptFS) Injected() int64 { return s.injected.Load() }

// Clear disarms every rule: all subsequent operations pass through.
// Tests use it to end a sticky fault and watch recovery.
func (s *ScriptFS) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.rules {
		if r.Times == 0 { // sticky: retire it
			r.Times = -1
		}
		r.fired = r.Times // finite budgets: mark spent
	}
}

// check runs the script for one operation: sleeps any matching delays,
// then returns the first matching rule's injected error, or nil.
func (s *ScriptFS) check(op Op) error {
	var delay time.Duration
	var inject error
	s.mu.Lock()
	for _, r := range s.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		delay += r.Delay
		if inject != nil {
			continue // a rule already claimed this call
		}
		if r.seen < r.After {
			r.seen++
			continue
		}
		switch {
		case r.Times == 0: // sticky
			inject = &InjectedError{Op: op, Err: r.Err}
		case r.fired < r.Times:
			r.fired++
			inject = &InjectedError{Op: op, Err: r.Err}
		default:
			r.seen++
		}
	}
	s.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if inject != nil {
		s.injected.Add(1)
	}
	return inject
}

func (s *ScriptFS) Create(path string, flag int, perm os.FileMode) (File, error) {
	if err := s.check(OpCreate); err != nil {
		return nil, err
	}
	f, err := s.base.Create(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &scriptFile{f: f, fs: s}, nil
}

func (s *ScriptFS) Rename(oldpath, newpath string) error {
	if err := s.check(OpRename); err != nil {
		return err
	}
	return s.base.Rename(oldpath, newpath)
}

func (s *ScriptFS) Remove(path string) error {
	if err := s.check(OpRemove); err != nil {
		return err
	}
	return s.base.Remove(path)
}

func (s *ScriptFS) Truncate(path string, size int64) error {
	if err := s.check(OpTruncate); err != nil {
		return err
	}
	return s.base.Truncate(path, size)
}

// scriptFile routes a file's write/sync/close through the script. An
// injected write error writes nothing — the strictest interpretation,
// matching a kernel that rejected the write outright.
type scriptFile struct {
	f  File
	fs *ScriptFS
}

func (f *scriptFile) Write(p []byte) (int, error) {
	if err := f.fs.check(OpWrite); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f *scriptFile) Sync() error {
	if err := f.fs.check(OpSync); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *scriptFile) Close() error {
	if err := f.fs.check(OpClose); err != nil {
		_ = f.f.Close() // release the fd regardless
		return err
	}
	return f.f.Close()
}
