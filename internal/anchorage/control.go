package anchorage

import (
	"time"

	"alaska/internal/rt"
)

// ControllerState is the control algorithm's state (§4.3).
type ControllerState int

const (
	// Waiting: wake every WakeInterval and compare fragmentation to F_ub.
	Waiting ControllerState = iota
	// Defragmenting: run α-bounded partial passes, sleeping
	// T_defrag/O_ub between them to cap the time fraction spent moving.
	Defragmenting
)

// Controller is the §4.3 control state machine. It is driven by an
// explicit clock (Step) so the RSS-over-time experiments can run on
// simulated time; the memcached experiment drives passes directly on a
// wall-clock ticker instead.
type Controller struct {
	svc *Service
	cfg Config

	state    ControllerState
	nextWake time.Duration

	// PauseTotal accumulates simulated stop-the-world time.
	PauseTotal time.Duration
	// Transitions counts waiting<->defragmenting flips (diagnostics).
	Transitions int64
}

// NewController returns a controller for svc using svc's configuration.
func NewController(svc *Service) *Controller {
	return &Controller{svc: svc, cfg: svc.cfg}
}

// State returns the current controller state.
func (c *Controller) State() ControllerState { return c.state }

// Step advances the controller to simulated time now. If the controller
// decides to defragment, it runs a barrier on rt (with the given initiator
// thread, which may be nil for a detached control context) and returns the
// simulated pause duration; otherwise it returns zero.
func (c *Controller) Step(now time.Duration, r *rt.Runtime, initiator *rt.Thread) time.Duration {
	if now < c.nextWake {
		return 0
	}
	switch c.state {
	case Waiting:
		if c.svc.Fragmentation() > c.cfg.FragHigh {
			c.state = Defragmenting
			c.Transitions++
			return c.defragOnce(now, r, initiator)
		}
		c.nextWake = now + c.cfg.WakeInterval
		return 0
	case Defragmenting:
		return c.defragOnce(now, r, initiator)
	}
	return 0
}

// defragOnce runs one α-bounded partial pass and schedules the next wake
// per the overhead bound: sleep T_defrag / O_ub.
func (c *Controller) defragOnce(now time.Duration, r *rt.Runtime, initiator *rt.Thread) time.Duration {
	budget := uint64(c.cfg.Alpha * float64(c.svc.HeapExtent()))
	if budget == 0 {
		budget = 1 << 20
	}
	var moved uint64
	r.Barrier(initiator, func(scope *rt.BarrierScope) {
		moved = c.svc.DefragPass(scope, budget)
	})
	tDefrag := time.Duration(float64(moved) / c.cfg.MoveBandwidth * float64(time.Second))
	// Even a pass that moves nothing costs a minimum pause for the
	// stop-the-world rendezvous and the scan.
	const minPause = 100 * time.Microsecond
	if tDefrag < minPause {
		tDefrag = minPause
	}
	c.PauseTotal += tDefrag

	frag := c.svc.Fragmentation()
	if moved == 0 || frag < c.cfg.FragLow {
		// Goal reached or out of opportunities: back to waiting.
		c.state = Waiting
		c.Transitions++
		c.nextWake = now + c.cfg.WakeInterval
		return tDefrag
	}
	// Cap the defrag duty cycle at O_ub.
	sleep := time.Duration(float64(tDefrag) / c.cfg.OverheadHigh)
	if sleep < c.cfg.WakeInterval/8 {
		sleep = c.cfg.WakeInterval / 8
	}
	c.nextWake = now + sleep
	return tDefrag
}
