package anchorage

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"alaska/internal/handle"
	"alaska/internal/mem"
	"alaska/internal/rt"
)

func newAnchorageRuntime(t *testing.T, cfg Config) (*rt.Runtime, *Service, *mem.Space) {
	t.Helper()
	space := mem.NewSpace()
	svc := NewService(space, cfg)
	r, err := rt.New(space, svc)
	if err != nil {
		t.Fatal(err)
	}
	return r, svc, space
}

func TestAlignUpAndBins(t *testing.T) {
	cases := map[uint64]uint64{
		0: 16, 1: 16, 15: 16, 16: 16, 17: 32, 100: 112, 500: 512, 513: 528,
	}
	for in, want := range cases {
		if got := alignUp(in); got != want {
			t.Errorf("alignUp(%d) = %d, want %d", in, got, want)
		}
	}
	// Bin k holds sizes in [2^k, 2^(k+1)).
	for _, c := range []struct {
		size uint64
		want int
	}{{16, 4}, {31, 4}, {32, 5}, {100, 6}, {512, 9}, {1000, 9}} {
		if got := bin(c.size); got != c.want {
			t.Errorf("bin(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestExactSizeAllocationLimitsInternalFrag(t *testing.T) {
	// A 600-byte object must consume ~600 bytes of extent, not a 1024
	// power-of-two class — Anchorage bump-allocates exact (aligned) sizes.
	r, svc, _ := newAnchorageRuntime(t, DefaultConfig())
	for i := 0; i < 100; i++ {
		if _, err := r.Halloc(600); err != nil {
			t.Fatal(err)
		}
	}
	extent := svc.HeapExtent()
	if extent > 100*640 {
		t.Errorf("extent %d for 100x600B — internal fragmentation too high", extent)
	}
}

func TestAllocFreeReuse(t *testing.T) {
	r, svc, _ := newAnchorageRuntime(t, DefaultConfig())
	h1, err := r.Halloc(100)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := r.Table.Get(h1.ID())
	if err := r.Hfree(h1); err != nil {
		t.Fatal(err)
	}
	// A same-size allocation reuses the freed block (free list consulted
	// before bumping).
	h2, err := r.Halloc(100)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := r.Table.Get(h2.ID())
	if e1.Backing != e2.Backing {
		t.Errorf("block not reused: %#x then %#x", e1.Backing, e2.Backing)
	}
	if svc.ActiveBytes() != 100 {
		t.Errorf("ActiveBytes = %d, want 100", svc.ActiveBytes())
	}
}

func TestWritesLandInBacking(t *testing.T) {
	r, _, space := newAnchorageRuntime(t, DefaultConfig())
	th := r.NewThread()
	h, _ := r.Halloc(64)
	a, unpin, err := th.Pin(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := space.WriteU64(a, 7); err != nil {
		t.Fatal(err)
	}
	unpin()
	v, _ := space.ReadU64(a)
	if v != 7 {
		t.Errorf("read %d", v)
	}
}

func TestOversizedObjectGetsDedicatedSubHeap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubHeapSize = 64 * 1024
	r, svc, _ := newAnchorageRuntime(t, cfg)
	if _, err := r.Halloc(256 * 1024); err != nil {
		t.Fatal(err)
	}
	if svc.NumSubHeaps() != 1 {
		t.Errorf("sub-heaps = %d, want 1", svc.NumSubHeaps())
	}
	if svc.HeapExtent() < 256*1024 {
		t.Errorf("extent = %d", svc.HeapExtent())
	}
}

// The core defragmentation property: churn a heap into fragmentation,
// compact during a barrier, and observe RSS drop while contents survive.
func TestDefragReducesRSSPreservingContents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubHeapSize = 256 * 1024
	r, svc, space := newAnchorageRuntime(t, cfg)
	th := r.NewThread()

	rng := rand.New(rand.NewSource(42))
	var live []handle.Handle
	payload := func(h handle.Handle) uint64 { return uint64(h) * 2654435761 }

	// Fill ~4 MiB then free 80% at random to scatter holes.
	for i := 0; i < 8192; i++ {
		h, err := r.Halloc(512)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := th.Translate(h)
		if err := space.WriteU64(a, payload(h)); err != nil {
			t.Fatal(err)
		}
		live = append(live, h)
	}
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	for _, h := range live[:len(live)*8/10] {
		if err := r.Hfree(h); err != nil {
			t.Fatal(err)
		}
	}
	live = live[len(live)*8/10:]

	rssBefore := space.RSS()
	fragBefore := svc.Fragmentation()
	if fragBefore < 2 {
		t.Fatalf("setup failed to fragment: frag=%v", fragBefore)
	}

	// Full compaction: repeated passes until quiescent.
	for i := 0; i < 64; i++ {
		var moved uint64
		r.Barrier(th, func(s *rt.BarrierScope) {
			moved = svc.DefragPass(s, 1<<30)
		})
		if moved == 0 {
			break
		}
	}

	if frag := svc.Fragmentation(); frag >= fragBefore {
		t.Errorf("fragmentation did not improve: %v -> %v", fragBefore, frag)
	}
	if rss := space.RSS(); rss >= rssBefore {
		t.Errorf("RSS did not drop: %d -> %d", rssBefore, rss)
	}
	// All surviving objects readable with intact contents through their
	// handles.
	for _, h := range live {
		a, err := th.Translate(h)
		if err != nil {
			t.Fatalf("translate after defrag: %v", err)
		}
		v, err := space.ReadU64(a)
		if err != nil {
			t.Fatal(err)
		}
		if v != payload(h) {
			t.Errorf("object %v corrupted after defrag: %d != %d", h, v, payload(h))
		}
	}
}

func TestDefragRespectsPins(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubHeapSize = 64 * 1024
	r, svc, space := newAnchorageRuntime(t, cfg)
	th := r.NewThread()

	// Two sub-heaps worth of objects; pin one in the top sub-heap.
	var hs []handle.Handle
	for i := 0; i < 200; i++ {
		h, err := r.Halloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	pinTarget := hs[len(hs)-1]
	addr, unpin, err := th.Pin(pinTarget)
	if err != nil {
		t.Fatal(err)
	}
	if err := space.WriteU64(addr, 123); err != nil {
		t.Fatal(err)
	}
	// Free everything else to make the pinned object movable-if-unpinned.
	for _, h := range hs[:len(hs)-1] {
		if err := r.Hfree(h); err != nil {
			t.Fatal(err)
		}
	}
	r.Barrier(th, func(s *rt.BarrierScope) {
		svc.DefragPass(s, 1<<30)
	})
	// The pinned object must not have moved: its raw pointer still works.
	v, err := space.ReadU64(addr)
	if err != nil || v != 123 {
		t.Errorf("pinned object moved or corrupted: %d, %v", v, err)
	}
	after, _ := th.Translate(pinTarget)
	if after != addr {
		t.Errorf("pinned object relocated from %#x to %#x during pin", addr, after)
	}
	unpin()
}

func TestTruncateReturnsPages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubHeapSize = 128 * 1024
	r, svc, space := newAnchorageRuntime(t, cfg)
	th := r.NewThread()
	var hs []handle.Handle
	for i := 0; i < 64; i++ {
		h, _ := r.Halloc(2048)
		a, _ := th.Translate(h)
		if err := space.WriteU64(a, 1); err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	for _, h := range hs[1:] { // keep only the bottom object
		if err := r.Hfree(h); err != nil {
			t.Fatal(err)
		}
	}
	rssBefore := space.RSS()
	r.Barrier(th, func(s *rt.BarrierScope) {
		svc.DefragPass(s, 1<<30)
	})
	if space.RSS() >= rssBefore {
		t.Errorf("truncation did not release pages: %d -> %d", rssBefore, space.RSS())
	}
	if svc.Truncated == 0 {
		t.Error("Truncated counter is zero")
	}
}

func TestControllerTriggersOnHighFragmentation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubHeapSize = 64 * 1024
	cfg.FragHigh = 1.5
	cfg.FragLow = 1.1
	r, svc, _ := newAnchorageRuntime(t, cfg)
	th := r.NewThread()
	ctl := NewController(svc)

	// Build fragmentation ~5x.
	var hs []handle.Handle
	for i := 0; i < 2000; i++ {
		h, err := r.Halloc(512)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	for i, h := range hs {
		if i%5 != 0 {
			if err := r.Hfree(h); err != nil {
				t.Fatal(err)
			}
		}
	}
	if svc.Fragmentation() < cfg.FragHigh {
		t.Fatalf("setup frag %v below trigger", svc.Fragmentation())
	}

	now := time.Duration(0)
	var totalPause time.Duration
	for i := 0; i < 500 && svc.Fragmentation() > cfg.FragLow; i++ {
		totalPause += ctl.Step(now, r, th)
		now += 100 * time.Millisecond
	}
	if svc.Fragmentation() > cfg.FragHigh {
		t.Errorf("controller failed to reduce fragmentation: %v", svc.Fragmentation())
	}
	if ctl.PauseTotal == 0 {
		t.Error("no pauses recorded")
	}
	if svc.Passes == 0 {
		t.Error("no defrag passes ran")
	}
	// Overhead bound: pause fraction must not exceed O_ub by much over
	// the run (allow slack for the first mispredicted pass, §5.5).
	frac := float64(totalPause) / float64(now)
	if frac > cfg.OverheadHigh*3 {
		t.Errorf("pause fraction %.3f grossly exceeds O_ub %.3f", frac, cfg.OverheadHigh)
	}
}

func TestControllerStaysIdleWhenUnfragmented(t *testing.T) {
	r, svc, _ := newAnchorageRuntime(t, DefaultConfig())
	th := r.NewThread()
	ctl := NewController(svc)
	for i := 0; i < 100; i++ {
		h, err := r.Halloc(256)
		if err != nil {
			t.Fatal(err)
		}
		_ = h
	}
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		if p := ctl.Step(now, r, th); p != 0 {
			t.Fatalf("controller paused an unfragmented heap at step %d", i)
		}
		now += cfg500()
	}
	if ctl.State() != Waiting {
		t.Error("controller left waiting state")
	}
	if svc.Passes != 0 {
		t.Error("defrag passes ran on an unfragmented heap")
	}
}

func cfg500() time.Duration { return 500 * time.Millisecond }

// Property: random alloc/free/defrag interleavings never corrupt live
// objects and never let accounting go negative.
func TestDefragIntegrityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.SubHeapSize = 32 * 1024
		space := mem.NewSpace()
		svc := NewService(space, cfg)
		r, err := rt.New(space, svc)
		if err != nil {
			return false
		}
		th := r.NewThread()
		type obj struct {
			h   handle.Handle
			tag uint64
		}
		var live []obj
		for step := 0; step < 300; step++ {
			switch {
			case len(live) > 0 && rng.Intn(10) < 4:
				k := rng.Intn(len(live))
				if r.Hfree(live[k].h) != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			case rng.Intn(20) == 0:
				r.Barrier(th, func(s *rt.BarrierScope) {
					svc.DefragPass(s, uint64(rng.Intn(1<<20)))
				})
			default:
				size := uint64(16 + rng.Intn(2000))
				h, err := r.Halloc(size)
				if err != nil {
					return false
				}
				a, err := th.Translate(h)
				if err != nil {
					return false
				}
				tag := rng.Uint64()
				if space.WriteU64(a, tag) != nil {
					return false
				}
				live = append(live, obj{h, tag})
			}
		}
		for _, o := range live {
			a, err := th.Translate(o.h)
			if err != nil {
				return false
			}
			v, err := space.ReadU64(a)
			if err != nil || v != o.tag {
				return false
			}
		}
		var sum uint64
		for _, o := range live {
			n, err := r.SizeOf(o.h)
			if err != nil {
				return false
			}
			sum += n
		}
		return svc.ActiveBytes() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
