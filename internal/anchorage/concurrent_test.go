package anchorage

// Race-hardened tests for ConcurrentDefragPass: compaction via the handle
// table's §7 speculative-move protocol while reader threads translate the
// same objects, with no stop-the-world barrier. Run under `go test -race`.

import (
	"runtime"
	"sync"
	"testing"

	"alaska/internal/handle"
	"alaska/internal/mem"
	"alaska/internal/rt"
)

// fragment builds a checkerboard heap: n objects of size bytes, every
// object not divisible by keep freed, returning the survivors.
func fragment(t testing.TB, r *rt.Runtime, n int, size uint64, keep int) []handle.Handle {
	t.Helper()
	hs := make([]handle.Handle, 0, n)
	for i := 0; i < n; i++ {
		h, err := r.Halloc(size)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	var live []handle.Handle
	for i, h := range hs {
		if i%keep == 0 {
			live = append(live, h)
			continue
		}
		if err := r.Hfree(h); err != nil {
			t.Fatal(err)
		}
	}
	return live
}

// TestConcurrentDefragPassCompacts verifies the pause-free pass actually
// compacts: after moving and draining, fragmentation must drop, and every
// surviving object must still carry its bytes.
func TestConcurrentDefragPassCompacts(t *testing.T) {
	space := mem.NewSpace()
	cfg := DefaultConfig()
	cfg.SubHeapSize = 256 * 1024
	svc := NewService(space, cfg)
	r, err := rt.New(space, svc, rt.WithFaultHandler(RevalidateFaultHandler()))
	if err != nil {
		t.Fatal(err)
	}
	th := r.NewThread()
	defer th.Destroy()

	live := fragment(t, r, 4096, 512, 4)
	for i, h := range live {
		a, err := th.Translate(h)
		if err != nil {
			t.Fatal(err)
		}
		if err := space.Write(a, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	before := svc.Fragmentation()

	var total uint64
	for pass := 0; pass < 100; pass++ {
		moved := svc.ConcurrentDefragPass(1 << 20)
		total += moved
		th.Safepoint() // advance the grace period so vacated blocks drain
		if moved == 0 {
			break
		}
	}
	if total == 0 {
		t.Fatal("concurrent pass moved nothing on a checkerboard heap")
	}
	th.Safepoint()
	svc.DrainDeferred()
	if svc.DeferredBlocks() != 0 {
		t.Errorf("%d deferred blocks remain after quiescence", svc.DeferredBlocks())
	}
	// One barrier pass to truncate the now-empty tails and release pages
	// (DefragPass only truncates the sub-heaps its move loop visits, so
	// give it a real budget; the concurrent passes left it little to do).
	r.Barrier(th, func(scope *rt.BarrierScope) {
		svc.DefragPass(scope, 1<<20)
	})
	after := svc.Fragmentation()
	if after >= before {
		t.Errorf("fragmentation %.3f -> %.3f, want a decrease", before, after)
	}
	for i, h := range live {
		a, err := th.Translate(h)
		if err != nil {
			t.Fatalf("object %d: %v", i, err)
		}
		buf := make([]byte, 2)
		if err := space.Read(a, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) || buf[1] != byte(i>>8) {
			t.Fatalf("object %d: bytes %v after move, want [%d %d]", i, buf, byte(i), byte(i>>8))
		}
	}
}

// TestConcurrentDefragPassUnderReaders runs the pause-free pass while
// reader threads continuously translate and read the objects being moved.
// Readers never pause; any reader that catches an entry mid-move faults,
// revalidates (aborting that move), and proceeds — the pass must stay
// correct under aborts, and no reader may ever observe wrong bytes.
func TestConcurrentDefragPassUnderReaders(t *testing.T) {
	space := mem.NewSpace()
	cfg := DefaultConfig()
	cfg.SubHeapSize = 256 * 1024
	svc := NewService(space, cfg)
	r, err := rt.New(space, svc, rt.WithFaultHandler(RevalidateFaultHandler()))
	if err != nil {
		t.Fatal(err)
	}
	setup := r.NewThread()
	live := fragment(t, r, 2048, 512, 4)
	for i, h := range live {
		a, err := setup.Translate(h)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 512)
		for k := range buf {
			buf[k] = byte(i)
		}
		if err := space.Write(a, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Destroy(); err != nil {
		t.Fatal(err)
	}

	readers := runtime.GOMAXPROCS(0) - 1
	if readers < 2 {
		readers = 2
	}
	quit := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := r.NewThread()
			defer th.Destroy()
			buf := make([]byte, 8)
			for i := 0; ; i++ {
				select {
				case <-quit:
					return
				default:
				}
				k := (g*37 + i) % len(live)
				a, err := th.Translate(live[k])
				if err != nil {
					t.Error(err)
					return
				}
				if err := space.Read(a, buf); err != nil {
					t.Error(err)
					return
				}
				for _, b := range buf {
					if b != byte(k) {
						t.Errorf("object %d: read %#x, want %#x", k, b, byte(k))
						return
					}
				}
				th.Safepoint()
			}
		}(g)
	}

	var moved uint64
	passes := 50
	if testing.Short() {
		passes = 10
	}
	for p := 0; p < passes; p++ {
		moved += svc.ConcurrentDefragPass(256 * 1024)
	}
	close(quit)
	wg.Wait()
	if moved == 0 {
		t.Error("no bytes moved under reader pressure")
	}
	svc.DrainDeferred()
	t.Logf("moved %d bytes in %d passes with %d readers; %d aborts, %d deferred blocks pending",
		moved, passes, readers, svc.MoveAborts, svc.DeferredBlocks())
}

// TestConcurrentDefragPassUnderChurn races the pause-free pass against
// mutators that allocate, write, read, and free objects throughout — the
// interleavings the pass's per-object locking opens up (an object freed,
// or freed-and-reallocated, while its copy is in flight must be detected
// and its copy discarded). Mutators run in CountedPins mode and pin every
// access via Thread.Pin, making their pins visible to the pass — the §7
// contract for writing mutators outside a barrier (StackPins pin sets are
// invisible to a concurrent mover, so writers there need barriers).
// Run under `go test -race`.
func TestConcurrentDefragPassUnderChurn(t *testing.T) {
	space := mem.NewSpace()
	cfg := DefaultConfig()
	cfg.SubHeapSize = 128 * 1024
	svc := NewService(space, cfg)
	r, err := rt.New(space, svc,
		rt.WithPinMode(rt.CountedPins),
		rt.WithFaultHandler(RevalidateFaultHandler()))
	if err != nil {
		t.Fatal(err)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	ops := 6000
	if testing.Short() {
		ops = 1200
	}
	quit := make(chan struct{})
	var wg sync.WaitGroup
	// Background mover: pause-free passes in a loop the whole time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-quit:
				return
			default:
			}
			svc.ConcurrentDefragPass(128 * 1024)
			svc.DrainDeferred()
		}
	}()

	var mwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		mwg.Add(1)
		go func(w int) {
			defer mwg.Done()
			th := r.NewThread()
			defer th.Destroy()
			type obj struct {
				h   handle.Handle
				tag byte
			}
			var mine []obj
			for op := 0; op < ops; op++ {
				th.Safepoint()
				switch {
				case len(mine) < 16 || op%3 == 0:
					h, err := r.Halloc(256)
					if err != nil {
						t.Error(err)
						return
					}
					tag := byte(w<<4) | byte(op&0xf)
					a, unpin, err := th.Pin(h)
					if err != nil {
						t.Error(err)
						return
					}
					buf := make([]byte, 256)
					for i := range buf {
						buf[i] = tag
					}
					err = space.Write(a, buf)
					unpin()
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, obj{h, tag})
				case op%3 == 1:
					o := mine[op%len(mine)]
					a, unpin, err := th.Pin(o.h)
					if err != nil {
						t.Error(err)
						return
					}
					buf := make([]byte, 256)
					err = space.Read(a, buf)
					unpin()
					if err != nil {
						t.Error(err)
						return
					}
					for i, b := range buf {
						if b != o.tag {
							t.Errorf("worker %d: byte %d = %#x, want %#x", w, i, b, o.tag)
							return
						}
					}
				default:
					k := op % len(mine)
					if err := r.Hfree(mine[k].h); err != nil {
						t.Error(err)
						return
					}
					mine = append(mine[:k], mine[k+1:]...)
				}
			}
			for _, o := range mine {
				if err := r.Hfree(o.h); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	mwg.Wait()
	close(quit)
	wg.Wait()
	if live := r.Table.Live(); live != 0 {
		t.Errorf("Live = %d after teardown, want 0", live)
	}
	if svc.ActiveBytes() != 0 {
		t.Errorf("ActiveBytes = %d after teardown, want 0", svc.ActiveBytes())
	}
	t.Logf("%d workers × %d ops under %d concurrent passes: %d bytes moved, %d aborts",
		workers, ops, svc.ConcurrentPasses, svc.MovedBytes, svc.MoveAborts)
}
