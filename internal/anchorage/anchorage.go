// Package anchorage implements the Anchorage service of §4.3: a
// deliberately simple, movement-first heap allocator plus the control
// algorithm that decides when and how aggressively to defragment.
//
// The allocator is a naïve bump allocator over fixed-size sub-heaps:
// allocations take exactly their (16-byte aligned) size from the bump
// pointer, and freed blocks are recycled through power-of-two-binned free
// lists where only the front of a bin is ever examined (O(1)). It has none
// of the anti-fragmentation machinery of modern allocators — it does not
// need any, because it can move objects: during a runtime barrier it
// copies unpinned objects from the top of a source sub-heap into holes
// lower in the heap, updates each object's HTE (one store), and returns
// the vacated pages to the kernel with the simulated MADV_DONTNEED.
package anchorage

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"alaska/internal/mem"
	"alaska/internal/rt"
)

// Config parameterizes the allocator and control algorithm.
type Config struct {
	// SubHeapSize is the extent of each sub-heap in bytes.
	SubHeapSize uint64
	// FragLow and FragHigh are the paper's [F_lb, F_ub] fragmentation
	// bounds (extent / active).
	FragLow, FragHigh float64
	// OverheadHigh is O_ub: the ceiling on the fraction of time spent
	// defragmenting; after a pass taking T_defrag, the controller sleeps
	// T_defrag/O_ub. OverheadLow (O_lb) bounds hysteresis on re-entry.
	OverheadLow, OverheadHigh float64
	// Alpha caps the fraction of the heap extent moved in a single pass.
	Alpha float64
	// WakeInterval is the waiting-state poll period (paper: 500 ms).
	WakeInterval time.Duration
	// MoveBandwidth converts bytes moved into simulated pause time
	// (bytes per second).
	MoveBandwidth float64
}

// DefaultConfig mirrors the paper's description: 500 ms polling, moderate
// bounds, and a copy bandwidth in the single-digit GiB/s range.
func DefaultConfig() Config {
	return Config{
		SubHeapSize:   2 << 20,
		FragLow:       1.2,
		FragHigh:      1.5,
		OverheadLow:   0.01,
		OverheadHigh:  0.05,
		Alpha:         0.25,
		WakeInterval:  500 * time.Millisecond,
		MoveBandwidth: 4 << 30,
	}
}

const alignment = 16

// alignUp rounds size to the allocator's alignment (minimum one unit).
func alignUp(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	return (size + alignment - 1) &^ (alignment - 1)
}

// bin returns the free-list bin for a block of the given size: bin k holds
// blocks with size in [2^k, 2^(k+1)).
func bin(size uint64) int { return bits.Len64(size) - 1 }

// hole is a free block within a sub-heap.
type hole struct {
	off  uint64
	size uint64
}

// objInfo records where a live object currently sits.
type objInfo struct {
	id    uint32
	heap  int    // sub-heap index
	off   uint64 // offset within the sub-heap
	size  uint64 // requested size
	block uint64 // block (aligned/assigned) size
}

// subHeap is one bump-allocated extent.
type subHeap struct {
	region *mem.Region
	bump   uint64
	// free[k] holds holes of bin k; only the front is checked on the
	// allocation fast path (O(1) policy).
	free [64][]hole
	// objs maps offsets to live objects (for compaction scans).
	objs map[uint64]*objInfo
	live uint64 // live requested bytes
}

// takeFront pops the front hole of binIdx if it fits need, returning the
// whole block (the naïve allocator neither splits nor searches deeper —
// §4.3: "only the front of the list is checked"). The slack between the
// block and the request is internal waste that only compaction recovers.
func (sh *subHeap) takeFront(binIdx int, need uint64) (hole, bool) {
	lst := sh.free[binIdx]
	if len(lst) == 0 {
		return hole{}, false
	}
	h := lst[0]
	if h.size < need {
		return hole{}, false
	}
	sh.free[binIdx] = lst[1:]
	return h, true
}

// pushHole returns a hole to its bin.
func (sh *subHeap) pushHole(h hole) {
	b := bin(h.size)
	sh.free[b] = append(sh.free[b], h)
}

// Service is the Anchorage service.
type Service struct {
	mu    sync.Mutex
	cfg   Config
	rt    *rt.Runtime
	space *mem.Space
	heaps []*subHeap
	byID  map[uint32]*objInfo

	active uint64
	// passMu serializes ConcurrentDefragPass invocations without blocking
	// allocators: with at most one speculative mover in flight, a handle ID
	// recycled mid-copy can never be in the moving state when the stale
	// commit arrives, so the commit safely fails instead of hijacking the
	// new object's entry.
	passMu sync.Mutex
	// deferred holds source blocks vacated by ConcurrentDefragPass that
	// cannot be reused until every thread alive at commit time has crossed
	// a safepoint (a reader that translated just before the commit may
	// still hold a raw pointer into the old copy).
	deferred []deferredBlock
	// Stats.
	Passes     int64
	MovedBytes int64
	Truncated  int64 // bytes returned via DontNeed
	// ShrunkBytes counts internal waste recovered by in-place shrinking.
	ShrunkBytes int64
	// ConcurrentPasses / MoveAborts count pause-free passes and the moves
	// within them that lost the §7 commit race to a concurrent accessor.
	ConcurrentPasses int64
	MoveAborts       int64
}

// Metrics is a consistent snapshot of the service's defragmentation
// counters. The counter fields on Service are written under the service
// lock, so concurrent readers (e.g. alaskad's `stats` command while a
// pass runs) must go through this accessor rather than reading the
// fields directly.
type Metrics struct {
	Passes, ConcurrentPasses, MoveAborts int64
	MovedBytes, Truncated, ShrunkBytes   int64
	DeferredBlocks                       int
}

// MetricsSnapshot returns the counters under the service lock.
func (s *Service) MetricsSnapshot() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		Passes:           s.Passes,
		ConcurrentPasses: s.ConcurrentPasses,
		MoveAborts:       s.MoveAborts,
		MovedBytes:       s.MovedBytes,
		Truncated:        s.Truncated,
		ShrunkBytes:      s.ShrunkBytes,
		DeferredBlocks:   len(s.deferred),
	}
}

// deferredBlock is a vacated source block awaiting grace-period reuse.
type deferredBlock struct {
	heap int
	off  uint64
	size uint64
	snap map[*rt.Thread]uint64
}

var _ rt.Service = (*Service)(nil)

// NewService creates an Anchorage service on space.
func NewService(space *mem.Space, cfg Config) *Service {
	if cfg.SubHeapSize == 0 {
		cfg = DefaultConfig()
	}
	return &Service{cfg: cfg, space: space, byID: make(map[uint32]*objInfo)}
}

// Init implements rt.Service.
func (s *Service) Init(r *rt.Runtime) error {
	s.rt = r
	return nil
}

// Deinit implements rt.Service.
func (s *Service) Deinit() error { return nil }

// Name implements rt.Service.
func (s *Service) Name() string { return "anchorage" }

// newSubHeap maps a fresh sub-heap.
func (s *Service) newSubHeap(minSize uint64) (*subHeap, error) {
	size := s.cfg.SubHeapSize
	if minSize > size {
		size = minSize // oversized objects get a dedicated sub-heap
	}
	r, err := s.space.Map(size)
	if err != nil {
		return nil, err
	}
	sh := &subHeap{region: r, objs: make(map[uint64]*objInfo)}
	s.heaps = append(s.heaps, sh)
	return sh, nil
}

// allocBlock finds a block of at least `need` bytes: free-list fronts
// first (the bin that guarantees a fit, then the bin of need itself whose
// front might fit), then bump space, then a new sub-heap. The returned
// hole may be larger than need (no splitting on the fast path).
func (s *Service) allocBlock(need uint64) (int, hole, error) {
	guarantee := bin(need)
	if need&(need-1) != 0 {
		guarantee++
	}
	for hi, sh := range s.heaps {
		if h, ok := sh.takeFront(guarantee, need); ok {
			return hi, h, nil
		}
		if guarantee != bin(need) {
			if h, ok := sh.takeFront(bin(need), need); ok {
				return hi, h, nil
			}
		}
	}
	for hi, sh := range s.heaps {
		if sh.bump+need <= sh.region.Size() {
			off := sh.bump
			sh.bump += need
			return hi, hole{off: off, size: need}, nil
		}
	}
	sh, err := s.newSubHeap(need)
	if err != nil {
		return 0, hole{}, err
	}
	sh.bump = need
	return len(s.heaps) - 1, hole{off: 0, size: need}, nil
}

// Alloc implements rt.Service.
func (s *Service) Alloc(id uint32, size uint64) (mem.Addr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	need := alignUp(size)
	hi, h, err := s.allocBlock(need)
	if err != nil {
		return 0, err
	}
	info := &objInfo{id: id, heap: hi, off: h.off, size: size, block: h.size}
	s.heaps[hi].objs[h.off] = info
	s.heaps[hi].live += size
	s.byID[id] = info
	s.active += size
	return s.heaps[hi].region.Base() + mem.Addr(h.off), nil
}

// Free implements rt.Service.
func (s *Service) Free(id uint32, _ mem.Addr, _ uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := s.byID[id]
	if info == nil {
		return fmt.Errorf("anchorage: free of unknown handle %d", id)
	}
	sh := s.heaps[info.heap]
	delete(sh.objs, info.off)
	delete(s.byID, id)
	sh.live -= info.size
	s.active -= info.size
	sh.pushHole(hole{off: info.off, size: info.block})
	return nil
}

// UsableSize implements rt.Service.
func (s *Service) UsableSize(addr mem.Addr) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.heaps {
		if sh.region.Contains(addr) {
			if info, ok := sh.objs[uint64(addr-sh.region.Base())]; ok {
				return info.block
			}
		}
	}
	return 0
}

// HeapExtent implements rt.Service: the summed bump extents — the
// numerator of the O(1) fragmentation metric.
func (s *Service) HeapExtent() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.extentLocked()
}

func (s *Service) extentLocked() uint64 {
	var e uint64
	for _, sh := range s.heaps {
		e += sh.bump
	}
	return e
}

// ActiveBytes implements rt.Service.
func (s *Service) ActiveBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Fragmentation returns extent/active (1 when empty).
func (s *Service) Fragmentation() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == 0 {
		return 1
	}
	return float64(s.extentLocked()) / float64(s.active)
}

// allocBlockForMove finds a destination for relocating an object of size
// need that currently sits at (srcHeap, srcOff): holes or bump space in
// lower sub-heaps, else a strictly-lower hole in the source sub-heap.
// Unlike allocBlock it may search whole bins (it runs on the relocation
// slow path — under s.mu from either a barrier DefragPass or a
// ConcurrentDefragPass — where thoroughness beats O(1)) and never maps a
// new sub-heap.
func (s *Service) allocBlockForMove(need uint64, srcHeap int, srcOff uint64) (int, uint64, bool) {
	for hi := 0; hi < srcHeap; hi++ {
		sh := s.heaps[hi]
		for b := bin(need); b < len(sh.free); b++ {
			for k, h := range sh.free[b] {
				if h.size >= need {
					sh.free[b] = append(sh.free[b][:k], sh.free[b][k+1:]...)
					if rem := h.size - need; rem >= alignment {
						sh.pushHole(hole{off: h.off + need, size: rem})
					}
					return hi, h.off, true
				}
			}
		}
		if sh.bump+need <= sh.region.Size() {
			off := sh.bump
			sh.bump += need
			return hi, off, true
		}
	}
	// Intra-heap: only a hole strictly below the object helps compaction.
	src := s.heaps[srcHeap]
	for b := bin(need); b < len(src.free); b++ {
		for k, h := range src.free[b] {
			if h.size >= need && h.off+need <= srcOff {
				src.free[b] = append(src.free[b][:k], src.free[b][k+1:]...)
				if rem := h.size - need; rem >= alignment {
					src.pushHole(hole{off: h.off + need, size: rem})
				}
				return srcHeap, h.off, true
			}
		}
	}
	return 0, 0, false
}

// coalesce merges adjacent holes in a sub-heap so compaction can place
// objects larger than any single fragment. It runs only inside barriers
// (the world is stopped, so O(holes log holes) is acceptable there).
func (sh *subHeap) coalesce() {
	var all []hole
	for b := range sh.free {
		all = append(all, sh.free[b]...)
		sh.free[b] = sh.free[b][:0]
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].off < all[j].off })
	cur := all[0]
	for _, h := range all[1:] {
		if cur.off+cur.size == h.off {
			cur.size += h.size
			continue
		}
		sh.pushHole(cur)
		cur = h
	}
	sh.pushHole(cur)
}

// DefragPass moves up to budget bytes of unpinned objects out of the
// topmost occupied sub-heaps into lower holes, truncates vacated tails,
// and returns the pages with DontNeed. Must be called inside a barrier.
// It returns the number of bytes moved.
//
// It serializes with ConcurrentDefragPass on passMu: the barrier stops
// registered threads but not the (unregistered) mover goroutine, and a
// mid-flight concurrent pass holds state invisible to this one — a
// reserved destination block and vacated-but-not-yet-deferred source
// blocks — that truncate would otherwise reclaim from under it.
func (s *Service) DefragPass(scope *rt.BarrierScope, budget uint64) uint64 {
	s.passMu.Lock()
	defer s.passMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Passes++
	// First recover internal waste: the naïve fast path hands out whole
	// free blocks, so a 64-byte object may own a 1 KiB block. With the
	// world stopped the service can shrink every block to its aligned
	// request size in place (no copy, no reference update — the object
	// does not move) and return the slack to the free lists.
	for _, sh := range s.heaps {
		for _, info := range sh.objs {
			need := alignUp(info.size)
			if info.block > need {
				sh.pushHole(hole{off: info.off + need, size: info.block - need})
				s.ShrunkBytes += int64(info.block - need)
				info.block = need
			}
		}
		sh.coalesce()
	}
	var moved uint64
	// Work from the top sub-heap downward.
	for hi := len(s.heaps) - 1; hi >= 0 && moved < budget; hi-- {
		src := s.heaps[hi]
		if len(src.objs) == 0 {
			s.truncate(src)
			continue
		}
		// Objects sorted by offset descending: vacate the top first.
		offs := make([]uint64, 0, len(src.objs))
		for off := range src.objs {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] > offs[j] })
		for _, off := range offs {
			if moved >= budget {
				break
			}
			info := src.objs[off]
			if scope.Pinned(info.id) {
				continue
			}
			dhi, doff, ok := s.allocBlockForMove(info.block, hi, off)
			if !ok {
				continue // no better placement exists; leave the object
			}
			dst := s.heaps[dhi].region.Base() + mem.Addr(doff)
			if err := scope.Relocate(info.id, dst); err != nil {
				s.heaps[dhi].pushHole(hole{off: doff, size: info.block})
				continue
			}
			delete(src.objs, off)
			src.live -= info.size
			// The vacated slot becomes a hole; truncate drops it again if
			// it ends up above the new bump.
			src.pushHole(hole{off: off, size: info.block})
			info.heap, info.off = dhi, doff
			s.heaps[dhi].objs[doff] = info
			s.heaps[dhi].live += info.size
			moved += info.size
		}
		s.truncate(src)
	}
	s.MovedBytes += int64(moved)
	return moved
}

// truncate shrinks a sub-heap's bump to the end of its highest live
// object, drops now-dead holes above the new bump (trimming holes that
// straddle it), and returns the vacated whole pages to the kernel.
func (s *Service) truncate(sh *subHeap) {
	var high uint64
	for off, info := range sh.objs {
		if end := off + info.block; end > high {
			high = end
		}
	}
	// Blocks vacated by a concurrent pass but still inside their grace
	// period hold their address space: a straggling reader may still be
	// using them, so they pin the bump like live objects until drained.
	for _, d := range s.deferred {
		if s.heaps[d.heap] == sh {
			if end := d.off + d.size; end > high {
				high = end
			}
		}
	}
	if high >= sh.bump {
		return
	}
	old := sh.bump
	sh.bump = high
	var keep []hole
	for b := range sh.free {
		for _, h := range sh.free[b] {
			switch {
			case h.off >= high:
				// entirely above the new bump: gone
			case h.off+h.size > high:
				keep = append(keep, hole{off: h.off, size: high - h.off})
			default:
				keep = append(keep, h)
			}
		}
		sh.free[b] = sh.free[b][:0]
	}
	for _, h := range keep {
		sh.pushHole(h)
	}
	start := sh.region.Base() + mem.Addr(high)
	n := old - high
	if err := s.space.DontNeed(start, n); err == nil {
		s.Truncated += int64(n)
	}
}

// NumSubHeaps reports how many sub-heaps exist (diagnostics).
func (s *Service) NumSubHeaps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.heaps)
}

// RevalidateFaultHandler returns the accessor side of the §7 protocol for
// runtimes that run ConcurrentDefragPass: a translation that faults on a
// moving entry revalidates it in place, aborting the in-flight move, and
// retries at the original address. Install via rt.WithFaultHandler (or
// chain it with a swap handler).
func RevalidateFaultHandler() rt.FaultHandler {
	return func(r *rt.Runtime, id uint32) error {
		_, err := r.Table.Revalidate(id)
		return err
	}
}

// ConcurrentDefragPass moves up to budget bytes of objects out of the
// topmost occupied sub-heaps without stopping the world, using the handle
// table's speculative-move protocol (§7) instead of a barrier: each object
// is CASed into the moving state, copied, and committed; a reader that
// translates it mid-copy faults, revalidates the entry (via
// RevalidateFaultHandler), and thereby aborts that one move — no pause,
// no lost reads. Vacated source blocks are not reused immediately: they
// are parked on a deferred list until every runtime thread registered at
// commit time has crossed a safepoint, since a reader that translated
// just before the commit may legally keep using the old copy until its
// next poll (the same grace-period handshake the reloc package performs).
//
// Contract: like reloc.Mover.TryMove, callers must only run this while no
// thread holds a *pinned* translation across safepoints with intent to
// write — a pinned writer's store to the old copy after the commit wins
// the race and is lost. Objects with a nonzero CountedPins count are
// skipped (rechecked after the moving transition, so a pin that slipped
// in between check and transition aborts the move); StackPins pin sets
// are invisible outside a barrier, so that discipline is the caller's
// (see the concurrency tests). The pass must also be the runtime's only
// relocator: passes and barrier DefragPasses serialize on an internal
// mutex, but mixing in a separate reloc.Mover — or another barrier-time
// relocator such as the locality optimizer — on the same runtime would
// reopen the recycled-ID and SetBacking races the serialization closes.
// The pass never truncates sub-heaps —
// deferred blocks above the high-water mark keep their pages until
// DrainDeferred returns them and a later barrier pass truncates.
//
// The service lock is dropped around each object copy, so concurrent
// Alloc/Free stall for at most one object's bookkeeping, not the whole
// budgeted sweep; an object freed (and even reallocated) mid-copy is
// detected by re-looking up its bookkeeping record before the move is
// recorded, and the copy is discarded.
func (s *Service) ConcurrentDefragPass(budget uint64) uint64 {
	s.passMu.Lock()
	defer s.passMu.Unlock()
	s.mu.Lock()
	s.ConcurrentPasses++
	s.drainDeferredLocked()
	nHeaps := len(s.heaps)
	s.mu.Unlock()

	var moved uint64
	var vacated []deferredBlock
	for hi := nHeaps - 1; hi >= 0 && moved < budget; hi-- {
		s.mu.Lock()
		src := s.heaps[hi]
		offs := make([]uint64, 0, len(src.objs))
		for off := range src.objs {
			offs = append(offs, off)
		}
		s.mu.Unlock()
		sort.Slice(offs, func(i, j int) bool { return offs[i] > offs[j] })
		for _, off := range offs {
			if moved >= budget {
				break
			}
			s.mu.Lock()
			info, live := src.objs[off]
			if !live || s.rt.Table.PinCount(info.id) > 0 {
				s.mu.Unlock()
				continue // freed meanwhile, or demonstrably pinned
			}
			entry, err := s.rt.Table.BeginSpeculativeMove(info.id)
			if err != nil {
				s.mu.Unlock()
				continue // freed or already moving
			}
			// Re-check pins after the moving transition: a pin taken in the
			// window between the check above and the transition translated a
			// still-valid entry and holds a raw address the commit would
			// invalidate. Any pin taken after this point must translate the
			// now-invalid entry, fault, and revalidate — aborting the
			// commit — so the recheck closes the window.
			if s.rt.Table.PinCount(info.id) > 0 {
				_, _ = s.rt.Table.Revalidate(info.id)
				s.mu.Unlock()
				continue
			}
			dhi, doff, ok := s.allocBlockForMove(info.block, hi, off)
			if !ok {
				_, _ = s.rt.Table.Revalidate(info.id)
				s.mu.Unlock()
				continue
			}
			dst := s.heaps[dhi].region.Base() + mem.Addr(doff)
			size, block := info.size, info.block
			s.mu.Unlock()

			// Copy outside the service lock: the destination block is
			// reserved, the entry is in the moving state, and allocators
			// are free to run.
			committed := false
			if err := s.space.Copy(dst, entry.Backing, size); err != nil {
				_, _ = s.rt.Table.Revalidate(info.id)
			} else if s.rt.Table.CommitSpeculativeMove(info.id, dst) {
				committed = true
			}

			s.mu.Lock()
			if !committed {
				// A concurrent accessor revalidated the entry (or it was
				// freed mid-copy): the object stays put; discard the copy.
				s.MoveAborts++
				s.heaps[dhi].pushHole(hole{off: doff, size: block})
				s.mu.Unlock()
				continue
			}
			if cur, ok := src.objs[off]; !ok || cur != info {
				// Freed — and possibly the slot reallocated — during the
				// copy. The freeing Hfree already recycled the source block
				// and the handle entry; drop the unreferenced copy.
				s.heaps[dhi].pushHole(hole{off: doff, size: block})
				s.mu.Unlock()
				continue
			}
			delete(src.objs, off)
			src.live -= size
			vacated = append(vacated, deferredBlock{heap: hi, off: off, size: block})
			info.heap, info.off = dhi, doff
			s.heaps[dhi].objs[doff] = info
			s.heaps[dhi].live += size
			moved += size
			s.mu.Unlock()
		}
	}
	// One snapshot taken after every commit is at least as late — hence at
	// least as conservative — as a per-move snapshot, at a fraction of the
	// cost (EpochSnapshot locks the runtime and allocates per thread).
	snap := s.rt.EpochSnapshot()
	s.mu.Lock()
	for i := range vacated {
		vacated[i].snap = snap
	}
	s.deferred = append(s.deferred, vacated...)
	s.MovedBytes += int64(moved)
	s.mu.Unlock()
	return moved
}

// DrainDeferred returns vacated source blocks whose grace period has
// elapsed to their sub-heaps' free lists and reports how many bytes were
// recovered. ConcurrentDefragPass drains opportunistically; callers may
// also invoke it directly (e.g. before reading fragmentation stats).
func (s *Service) DrainDeferred() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainDeferredLocked()
}

func (s *Service) drainDeferredLocked() uint64 {
	if len(s.deferred) == 0 {
		return 0
	}
	kept := s.deferred[:0]
	var drained uint64
	for _, d := range s.deferred {
		// QuiescentSince counts parked and external threads as safe: a
		// parked thread crossed a safepoint to park (killing its unpinned
		// raw pointers by the Translate contract), and external code
		// performs no translations (§4.1.3) — so an idle barrier-initiator
		// thread, e.g. the kv backend's permanently-external primary, does
		// not postpone reuse forever.
		if !s.rt.QuiescentSince(d.snap) {
			kept = append(kept, d)
			continue
		}
		s.heaps[d.heap].pushHole(hole{off: d.off, size: d.size})
		drained += d.size
	}
	s.deferred = kept
	return drained
}

// DeferredBlocks reports how many vacated blocks await their grace period
// (diagnostics).
func (s *Service) DeferredBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.deferred)
}
