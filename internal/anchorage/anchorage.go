// Package anchorage implements the Anchorage service of §4.3: a
// deliberately simple, movement-first heap allocator plus the control
// algorithm that decides when and how aggressively to defragment.
//
// The allocator is a naïve bump allocator over fixed-size sub-heaps:
// allocations take exactly their (16-byte aligned) size from the bump
// pointer, and freed blocks are recycled through power-of-two-binned free
// lists where only the front of a bin is ever examined (O(1)). It has none
// of the anti-fragmentation machinery of modern allocators — it does not
// need any, because it can move objects: during a runtime barrier it
// copies unpinned objects from the top of a source sub-heap into holes
// lower in the heap, updates each object's HTE (one store), and returns
// the vacated pages to the kernel with the simulated MADV_DONTNEED.
package anchorage

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"alaska/internal/mem"
	"alaska/internal/rt"
)

// Config parameterizes the allocator and control algorithm.
type Config struct {
	// SubHeapSize is the extent of each sub-heap in bytes.
	SubHeapSize uint64
	// FragLow and FragHigh are the paper's [F_lb, F_ub] fragmentation
	// bounds (extent / active).
	FragLow, FragHigh float64
	// OverheadHigh is O_ub: the ceiling on the fraction of time spent
	// defragmenting; after a pass taking T_defrag, the controller sleeps
	// T_defrag/O_ub. OverheadLow (O_lb) bounds hysteresis on re-entry.
	OverheadLow, OverheadHigh float64
	// Alpha caps the fraction of the heap extent moved in a single pass.
	Alpha float64
	// WakeInterval is the waiting-state poll period (paper: 500 ms).
	WakeInterval time.Duration
	// MoveBandwidth converts bytes moved into simulated pause time
	// (bytes per second).
	MoveBandwidth float64
}

// DefaultConfig mirrors the paper's description: 500 ms polling, moderate
// bounds, and a copy bandwidth in the single-digit GiB/s range.
func DefaultConfig() Config {
	return Config{
		SubHeapSize:   2 << 20,
		FragLow:       1.2,
		FragHigh:      1.5,
		OverheadLow:   0.01,
		OverheadHigh:  0.05,
		Alpha:         0.25,
		WakeInterval:  500 * time.Millisecond,
		MoveBandwidth: 4 << 30,
	}
}

const alignment = 16

// alignUp rounds size to the allocator's alignment (minimum one unit).
func alignUp(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	return (size + alignment - 1) &^ (alignment - 1)
}

// bin returns the free-list bin for a block of the given size: bin k holds
// blocks with size in [2^k, 2^(k+1)).
func bin(size uint64) int { return bits.Len64(size) - 1 }

// hole is a free block within a sub-heap.
type hole struct {
	off  uint64
	size uint64
}

// objInfo records where a live object currently sits.
type objInfo struct {
	id    uint32
	heap  int    // sub-heap index
	off   uint64 // offset within the sub-heap
	size  uint64 // requested size
	block uint64 // block (aligned/assigned) size
}

// subHeap is one bump-allocated extent.
type subHeap struct {
	region *mem.Region
	bump   uint64
	// free[k] holds holes of bin k; only the front is checked on the
	// allocation fast path (O(1) policy).
	free [64][]hole
	// objs maps offsets to live objects (for compaction scans).
	objs map[uint64]*objInfo
	live uint64 // live requested bytes
}

// takeFront pops the front hole of binIdx if it fits need, returning the
// whole block (the naïve allocator neither splits nor searches deeper —
// §4.3: "only the front of the list is checked"). The slack between the
// block and the request is internal waste that only compaction recovers.
func (sh *subHeap) takeFront(binIdx int, need uint64) (hole, bool) {
	lst := sh.free[binIdx]
	if len(lst) == 0 {
		return hole{}, false
	}
	h := lst[0]
	if h.size < need {
		return hole{}, false
	}
	sh.free[binIdx] = lst[1:]
	return h, true
}

// pushHole returns a hole to its bin.
func (sh *subHeap) pushHole(h hole) {
	b := bin(h.size)
	sh.free[b] = append(sh.free[b], h)
}

// Service is the Anchorage service.
type Service struct {
	mu    sync.Mutex
	cfg   Config
	rt    *rt.Runtime
	space *mem.Space
	heaps []*subHeap
	byID  map[uint32]*objInfo

	active uint64
	// Stats.
	Passes     int64
	MovedBytes int64
	Truncated  int64 // bytes returned via DontNeed
	// ShrunkBytes counts internal waste recovered by in-place shrinking.
	ShrunkBytes int64
}

var _ rt.Service = (*Service)(nil)

// NewService creates an Anchorage service on space.
func NewService(space *mem.Space, cfg Config) *Service {
	if cfg.SubHeapSize == 0 {
		cfg = DefaultConfig()
	}
	return &Service{cfg: cfg, space: space, byID: make(map[uint32]*objInfo)}
}

// Init implements rt.Service.
func (s *Service) Init(r *rt.Runtime) error {
	s.rt = r
	return nil
}

// Deinit implements rt.Service.
func (s *Service) Deinit() error { return nil }

// Name implements rt.Service.
func (s *Service) Name() string { return "anchorage" }

// newSubHeap maps a fresh sub-heap.
func (s *Service) newSubHeap(minSize uint64) (*subHeap, error) {
	size := s.cfg.SubHeapSize
	if minSize > size {
		size = minSize // oversized objects get a dedicated sub-heap
	}
	r, err := s.space.Map(size)
	if err != nil {
		return nil, err
	}
	sh := &subHeap{region: r, objs: make(map[uint64]*objInfo)}
	s.heaps = append(s.heaps, sh)
	return sh, nil
}

// allocBlock finds a block of at least `need` bytes: free-list fronts
// first (the bin that guarantees a fit, then the bin of need itself whose
// front might fit), then bump space, then a new sub-heap. The returned
// hole may be larger than need (no splitting on the fast path).
func (s *Service) allocBlock(need uint64) (int, hole, error) {
	guarantee := bin(need)
	if need&(need-1) != 0 {
		guarantee++
	}
	for hi, sh := range s.heaps {
		if h, ok := sh.takeFront(guarantee, need); ok {
			return hi, h, nil
		}
		if guarantee != bin(need) {
			if h, ok := sh.takeFront(bin(need), need); ok {
				return hi, h, nil
			}
		}
	}
	for hi, sh := range s.heaps {
		if sh.bump+need <= sh.region.Size() {
			off := sh.bump
			sh.bump += need
			return hi, hole{off: off, size: need}, nil
		}
	}
	sh, err := s.newSubHeap(need)
	if err != nil {
		return 0, hole{}, err
	}
	sh.bump = need
	return len(s.heaps) - 1, hole{off: 0, size: need}, nil
}

// Alloc implements rt.Service.
func (s *Service) Alloc(id uint32, size uint64) (mem.Addr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	need := alignUp(size)
	hi, h, err := s.allocBlock(need)
	if err != nil {
		return 0, err
	}
	info := &objInfo{id: id, heap: hi, off: h.off, size: size, block: h.size}
	s.heaps[hi].objs[h.off] = info
	s.heaps[hi].live += size
	s.byID[id] = info
	s.active += size
	return s.heaps[hi].region.Base() + mem.Addr(h.off), nil
}

// Free implements rt.Service.
func (s *Service) Free(id uint32, _ mem.Addr, _ uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := s.byID[id]
	if info == nil {
		return fmt.Errorf("anchorage: free of unknown handle %d", id)
	}
	sh := s.heaps[info.heap]
	delete(sh.objs, info.off)
	delete(s.byID, id)
	sh.live -= info.size
	s.active -= info.size
	sh.pushHole(hole{off: info.off, size: info.block})
	return nil
}

// UsableSize implements rt.Service.
func (s *Service) UsableSize(addr mem.Addr) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.heaps {
		if sh.region.Contains(addr) {
			if info, ok := sh.objs[uint64(addr-sh.region.Base())]; ok {
				return info.block
			}
		}
	}
	return 0
}

// HeapExtent implements rt.Service: the summed bump extents — the
// numerator of the O(1) fragmentation metric.
func (s *Service) HeapExtent() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.extentLocked()
}

func (s *Service) extentLocked() uint64 {
	var e uint64
	for _, sh := range s.heaps {
		e += sh.bump
	}
	return e
}

// ActiveBytes implements rt.Service.
func (s *Service) ActiveBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Fragmentation returns extent/active (1 when empty).
func (s *Service) Fragmentation() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == 0 {
		return 1
	}
	return float64(s.extentLocked()) / float64(s.active)
}

// allocBlockForMove finds a destination for relocating an object of size
// need that currently sits at (srcHeap, srcOff): holes or bump space in
// lower sub-heaps, else a strictly-lower hole in the source sub-heap.
// Unlike allocBlock it may search whole bins (it runs inside a barrier,
// where thoroughness beats O(1)) and never maps a new sub-heap.
func (s *Service) allocBlockForMove(need uint64, srcHeap int, srcOff uint64) (int, uint64, bool) {
	for hi := 0; hi < srcHeap; hi++ {
		sh := s.heaps[hi]
		for b := bin(need); b < len(sh.free); b++ {
			for k, h := range sh.free[b] {
				if h.size >= need {
					sh.free[b] = append(sh.free[b][:k], sh.free[b][k+1:]...)
					if rem := h.size - need; rem >= alignment {
						sh.pushHole(hole{off: h.off + need, size: rem})
					}
					return hi, h.off, true
				}
			}
		}
		if sh.bump+need <= sh.region.Size() {
			off := sh.bump
			sh.bump += need
			return hi, off, true
		}
	}
	// Intra-heap: only a hole strictly below the object helps compaction.
	src := s.heaps[srcHeap]
	for b := bin(need); b < len(src.free); b++ {
		for k, h := range src.free[b] {
			if h.size >= need && h.off+need <= srcOff {
				src.free[b] = append(src.free[b][:k], src.free[b][k+1:]...)
				if rem := h.size - need; rem >= alignment {
					src.pushHole(hole{off: h.off + need, size: rem})
				}
				return srcHeap, h.off, true
			}
		}
	}
	return 0, 0, false
}

// coalesce merges adjacent holes in a sub-heap so compaction can place
// objects larger than any single fragment. It runs only inside barriers
// (the world is stopped, so O(holes log holes) is acceptable there).
func (sh *subHeap) coalesce() {
	var all []hole
	for b := range sh.free {
		all = append(all, sh.free[b]...)
		sh.free[b] = sh.free[b][:0]
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].off < all[j].off })
	cur := all[0]
	for _, h := range all[1:] {
		if cur.off+cur.size == h.off {
			cur.size += h.size
			continue
		}
		sh.pushHole(cur)
		cur = h
	}
	sh.pushHole(cur)
}

// DefragPass moves up to budget bytes of unpinned objects out of the
// topmost occupied sub-heaps into lower holes, truncates vacated tails,
// and returns the pages with DontNeed. Must be called inside a barrier.
// It returns the number of bytes moved.
func (s *Service) DefragPass(scope *rt.BarrierScope, budget uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Passes++
	// First recover internal waste: the naïve fast path hands out whole
	// free blocks, so a 64-byte object may own a 1 KiB block. With the
	// world stopped the service can shrink every block to its aligned
	// request size in place (no copy, no reference update — the object
	// does not move) and return the slack to the free lists.
	for _, sh := range s.heaps {
		for _, info := range sh.objs {
			need := alignUp(info.size)
			if info.block > need {
				sh.pushHole(hole{off: info.off + need, size: info.block - need})
				s.ShrunkBytes += int64(info.block - need)
				info.block = need
			}
		}
		sh.coalesce()
	}
	var moved uint64
	// Work from the top sub-heap downward.
	for hi := len(s.heaps) - 1; hi >= 0 && moved < budget; hi-- {
		src := s.heaps[hi]
		if len(src.objs) == 0 {
			s.truncate(src)
			continue
		}
		// Objects sorted by offset descending: vacate the top first.
		offs := make([]uint64, 0, len(src.objs))
		for off := range src.objs {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] > offs[j] })
		for _, off := range offs {
			if moved >= budget {
				break
			}
			info := src.objs[off]
			if scope.Pinned(info.id) {
				continue
			}
			dhi, doff, ok := s.allocBlockForMove(info.block, hi, off)
			if !ok {
				continue // no better placement exists; leave the object
			}
			dst := s.heaps[dhi].region.Base() + mem.Addr(doff)
			if err := scope.Relocate(info.id, dst); err != nil {
				s.heaps[dhi].pushHole(hole{off: doff, size: info.block})
				continue
			}
			delete(src.objs, off)
			src.live -= info.size
			// The vacated slot becomes a hole; truncate drops it again if
			// it ends up above the new bump.
			src.pushHole(hole{off: off, size: info.block})
			info.heap, info.off = dhi, doff
			s.heaps[dhi].objs[doff] = info
			s.heaps[dhi].live += info.size
			moved += info.size
		}
		s.truncate(src)
	}
	s.MovedBytes += int64(moved)
	return moved
}

// truncate shrinks a sub-heap's bump to the end of its highest live
// object, drops now-dead holes above the new bump (trimming holes that
// straddle it), and returns the vacated whole pages to the kernel.
func (s *Service) truncate(sh *subHeap) {
	var high uint64
	for off, info := range sh.objs {
		if end := off + info.block; end > high {
			high = end
		}
	}
	if high >= sh.bump {
		return
	}
	old := sh.bump
	sh.bump = high
	var keep []hole
	for b := range sh.free {
		for _, h := range sh.free[b] {
			switch {
			case h.off >= high:
				// entirely above the new bump: gone
			case h.off+h.size > high:
				keep = append(keep, hole{off: h.off, size: high - h.off})
			default:
				keep = append(keep, h)
			}
		}
		sh.free[b] = sh.free[b][:0]
	}
	for _, h := range keep {
		sh.pushHole(h)
	}
	start := sh.region.Base() + mem.Addr(high)
	n := old - high
	if err := s.space.DontNeed(start, n); err == nil {
		s.Truncated += int64(n)
	}
}

// NumSubHeaps reports how many sub-heaps exist (diagnostics).
func (s *Service) NumSubHeaps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.heaps)
}
