package metrics

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"alaska/internal/stats"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	n, err := r.WriteTo(&sb)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(sb.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, sb.Len())
	}
	return sb.String()
}

func TestCounterAndGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	c.Add(41)
	c.Inc()
	r.GaugeFunc("test_items", "Items.", func() float64 { return 7 })
	r.GaugeFunc("test_ratio", "Ratio.", func() float64 { return 1.25 })

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Ops.\n# TYPE test_ops_total counter\ntest_ops_total 42\n",
		"# TYPE test_items gauge\ntest_items 7\n",
		"test_ratio 1.25\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledChildrenSortAndRender(t *testing.T) {
	r := NewRegistry()
	f := r.Family("test_cmds_total", KindCounter, "Commands.")
	f.Counter(`op="set"`).Add(2)
	f.Counter(`op="get"`).Add(5)
	// Re-registering a label set returns the same counter.
	f.Counter(`op="get"`).Add(1)

	out := render(t, r)
	gi := strings.Index(out, `test_cmds_total{op="get"} 6`)
	si := strings.Index(out, `test_cmds_total{op="set"} 2`)
	if gi < 0 || si < 0 {
		t.Fatalf("missing labeled samples:\n%s", out)
	}
	if gi > si {
		t.Fatalf("children not sorted by labels:\n%s", out)
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	rec := stats.NewLatencyRecorder()
	rec.Record(3 * time.Microsecond)
	rec.Record(5 * time.Millisecond)
	rec.Record(time.Hour) // overflow bucket
	r.Histogram("test_latency_seconds", "Latency.", rec)

	out := render(t, r)
	if !strings.Contains(out, "# TYPE test_latency_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `test_latency_seconds_bucket{le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket must be cumulative total:\n%s", out)
	}
	if !strings.Contains(out, "test_latency_seconds_count 3") {
		t.Fatalf("missing _count:\n%s", out)
	}
	if !strings.Contains(out, "test_latency_seconds_sum ") {
		t.Fatalf("missing _sum:\n%s", out)
	}

	// Buckets are cumulative and non-decreasing.
	var prev float64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "test_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("buckets not cumulative at %q (prev %v)", line, prev)
		}
		prev = v
	}
}

func TestOnScrapeRunsOncePerWriteTo(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.OnScrape(func() { calls++ })
	r.GaugeFunc("test_a", "A.", func() float64 { return 1 })
	r.GaugeFunc("test_b", "B.", func() float64 { return 2 })
	render(t, r)
	render(t, r)
	if calls != 2 {
		t.Fatalf("OnScrape ran %d times over 2 scrapes, want 2", calls)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Family("test_x", KindCounter, "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a family with a different kind must panic")
		}
	}()
	r.Family("test_x", KindGauge, "X.")
}

// TestConcurrentRecordDuringScrape proves recording never serializes
// against WriteTo (run under -race).
func TestConcurrentRecordDuringScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hot_total", "Hot.")
	rec := stats.NewLatencyRecorder()
	r.Histogram("test_hot_seconds", "Hot.", rec)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				rec.Record(time.Microsecond)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		render(t, r)
	}
	close(stop)
	wg.Wait()
}
