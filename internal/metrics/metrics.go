// Package metrics is a dependency-free Prometheus text-exposition
// registry for the alaskad observability plane.
//
// The design splits the cost asymmetrically: everything a request path
// touches is a plain atomic (Counter.Add) or an instrument it already
// owns (a stats.LatencyRecorder shared with the histogram family), so
// recording never allocates, never locks, and never serializes behind a
// scrape. All rendering work — label formatting, bucket accumulation,
// float printing — happens in WriteTo on the scrape path, where an
// allocation per line is irrelevant. Families are registered once at
// boot; registration is not safe concurrently with scrapes, recording
// always is.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"alaska/internal/stats"
)

// Kind is a family's Prometheus metric type.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry holds an ordered set of metric families and renders them in
// Prometheus text exposition format.
type Registry struct {
	mu       sync.Mutex
	fams     []*Family
	byName   map[string]*Family
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Family)}
}

// OnScrape registers fn to run at the start of every WriteTo, before any
// family renders — the hook for refreshing a cached snapshot that many
// func-backed children then read, so one scrape costs one snapshot
// instead of one per metric.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// Family registers (or returns the existing) family with the given name,
// kind, and help text. Families render in registration order. Registering
// the same name with a different kind panics — that is a boot-time
// programming error, not a runtime condition.
func (r *Registry) Family(name string, kind Kind, help string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: family %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &Family{name: name, kind: kind, help: help}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// Counter registers an unlabeled counter family with one child and
// returns the counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.Family(name, KindCounter, help).Counter("")
}

// CounterFunc registers an unlabeled counter family rendered from fn at
// scrape time (for counters that already live elsewhere as atomics).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.Family(name, KindCounter, help).Func("", fn)
}

// GaugeFunc registers an unlabeled gauge family rendered from fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.Family(name, KindGauge, help).Func("", fn)
}

// Histogram registers an unlabeled histogram family rendered from rec.
func (r *Registry) Histogram(name, help string, rec *stats.LatencyRecorder) {
	r.Family(name, KindHistogram, help).Histogram("", rec)
}

// WriteTo renders every family in Prometheus text exposition format.
// Scrapes serialize against each other (and against registration), never
// against recording.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.onScrape {
		fn()
	}
	counting := &countingWriter{w: w}
	bw := bufio.NewWriter(counting)
	for _, f := range r.fams {
		if err := f.render(bw); err != nil {
			return counting.n, err
		}
	}
	err := bw.Flush()
	return counting.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Family is one named metric family; its children differ only in label
// sets.
type Family struct {
	name string
	kind Kind
	help string

	mu       sync.Mutex
	children []*child
}

// child is one labeled series of a family, backed by exactly one of an
// owned atomic counter, a scrape-time func, or a latency recorder.
type child struct {
	labels string // pre-rendered `op="get"` (no braces), "" for unlabeled
	ctr    *Counter
	fn     func() float64
	hist   *stats.LatencyRecorder
}

// Counter registers (or returns) the child with the given label set and
// returns its owned atomic counter. labels is the pre-rendered label
// body, e.g. `op="get"`; "" for unlabeled.
func (f *Family) Counter(labels string) *Counter {
	if f.kind != KindCounter {
		panic("metrics: Counter child on a " + string(f.kind) + " family")
	}
	c := f.child(labels)
	if c.ctr == nil {
		c.ctr = &Counter{}
	}
	return c.ctr
}

// Func registers a scrape-time func child (counter or gauge families).
func (f *Family) Func(labels string, fn func() float64) {
	if f.kind == KindHistogram {
		panic("metrics: Func child on a histogram family")
	}
	f.child(labels).fn = fn
}

// Histogram registers rec as the child with the given label set. Every
// recorder shares the stats package's fixed bucket layout, so children
// of one family are always mergeable downstream.
func (f *Family) Histogram(labels string, rec *stats.LatencyRecorder) {
	if f.kind != KindHistogram {
		panic("metrics: Histogram child on a " + string(f.kind) + " family")
	}
	f.child(labels).hist = rec
}

func (f *Family) child(labels string) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.children {
		if c.labels == labels {
			return c
		}
	}
	c := &child{labels: labels}
	f.children = append(f.children, c)
	return c
}

func (f *Family) render(w *bufio.Writer) error {
	f.mu.Lock()
	children := make([]*child, len(f.children))
	copy(children, f.children)
	f.mu.Unlock()
	sort.SliceStable(children, func(i, j int) bool { return children[i].labels < children[j].labels })

	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
		return err
	}
	for _, c := range children {
		switch {
		case c.ctr != nil:
			if err := writeSample(w, f.name, "", c.labels, "", float64(c.ctr.Value())); err != nil {
				return err
			}
		case c.fn != nil:
			if err := writeSample(w, f.name, "", c.labels, "", c.fn()); err != nil {
				return err
			}
		case c.hist != nil:
			if err := renderHistogram(w, f.name, c.labels, c.hist); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderHistogram writes rec as cumulative le-buckets in seconds, plus
// _sum and _count — the standard Prometheus histogram triple.
func renderHistogram(w *bufio.Writer, name, labels string, rec *stats.LatencyRecorder) error {
	var cum int64
	var err error
	rec.ForEachBucket(func(boundNs, count int64) {
		if err != nil {
			return
		}
		cum += count
		le := "+Inf"
		if boundNs != stats.OverflowBound {
			le = strconv.FormatFloat(float64(boundNs)/1e9, 'g', -1, 64)
		}
		err = writeSample(w, name, "_bucket", labels, `le="`+le+`"`, float64(cum))
	})
	if err != nil {
		return err
	}
	if err := writeSample(w, name, "_sum", labels, "", rec.Sum().Seconds()); err != nil {
		return err
	}
	return writeSample(w, name, "_count", labels, "", float64(rec.Count()))
}

// writeSample writes one `name_suffix{labels,extra} value` line.
func writeSample(w *bufio.Writer, name, suffix, labels, extra string, v float64) error {
	if _, err := w.WriteString(name); err != nil {
		return err
	}
	if _, err := w.WriteString(suffix); err != nil {
		return err
	}
	lbl := labels
	if extra != "" {
		if lbl != "" {
			lbl += "," + extra
		} else {
			lbl = extra
		}
	}
	if lbl != "" {
		if _, err := w.WriteString("{" + lbl + "}"); err != nil {
			return err
		}
	}
	if _, err := w.WriteString(" " + formatValue(v) + "\n"); err != nil {
		return err
	}
	return nil
}

// formatValue renders v the way Prometheus expects: integral values
// without an exponent or trailing zeros, everything else shortest-form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing counter. Add and Inc are single
// atomic adds — safe on any hot path.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }
