package figures

import (
	"testing"
	"time"

	"alaska/internal/stats"
	"alaska/internal/workloads"
)

func allForTest() []workloads.Benchmark { return workloads.All() }

func TestSavingMetric(t *testing.T) {
	r := DefragResult{PeakRSS: 100, FinalRSS: 60}
	if got := r.Saving(); got != 0.4 {
		t.Errorf("Saving = %v, want 0.4", got)
	}
	if got := (DefragResult{}).Saving(); got != 0 {
		t.Errorf("empty Saving = %v", got)
	}
}

func TestEnvelopeEmpty(t *testing.T) {
	lo, hi := Envelope(nil)
	if len(lo.Points) != 0 || len(hi.Points) != 0 {
		t.Error("empty sweep produced envelope points")
	}
}

func TestEnvelopeBounds(t *testing.T) {
	mk := func(vals ...float64) SweepPoint {
		s := &stats.Series{}
		for i, v := range vals {
			s.Add(time.Duration(i)*time.Second, v)
		}
		return SweepPoint{Result: DefragResult{Series: s}}
	}
	points := []SweepPoint{mk(10, 20, 30), mk(5, 25, 28), mk(8, 22, 35)}
	lo, hi := Envelope(points)
	// At t=1s: values 20, 25, 22 -> lo 20, hi 25.
	if got := lo.At(time.Second); got != 20 {
		t.Errorf("lo(1s) = %v", got)
	}
	if got := hi.At(time.Second); got != 25 {
		t.Errorf("hi(1s) = %v", got)
	}
	// Envelope ordering invariant everywhere.
	for _, p := range lo.Points {
		if hi.At(p.T) < p.V {
			t.Errorf("envelope inverted at %v", p.T)
		}
	}
}

func TestNewBackendUnknown(t *testing.T) {
	if _, err := newBackend("bogus", DefaultDefragConfig(0.01)); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestDefaultConfigScales(t *testing.T) {
	a := DefaultDefragConfig(1.0)
	b := DefaultDefragConfig(0.5)
	if b.MaxMemory*2 != a.MaxMemory {
		t.Errorf("scaling broken: %d vs %d", a.MaxMemory, b.MaxMemory)
	}
	if a.MaxMemory != 100<<20 {
		t.Errorf("full scale = %d, want the paper's 100 MiB", a.MaxMemory)
	}
}

func TestOptionsRespectStrictAliasing(t *testing.T) {
	for _, b := range []struct {
		name string
		sa   bool
	}{{"perlbench", true}, {"mcf", false}} {
		for _, wl := range allForTest() {
			if wl.Name != b.name {
				continue
			}
			opt := options(wl)
			if opt.Hoisting == b.sa {
				t.Errorf("%s: Hoisting = %v", b.name, opt.Hoisting)
			}
		}
	}
}
