package figures

import (
	"fmt"
	"testing"
	"time"
)

func TestPrintFigure12(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	res, err := Figure12([]int{1, 4}, []time.Duration{50 * time.Millisecond, 400 * time.Millisecond}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		kind := "baseline"
		if r.Alaska {
			kind = fmt.Sprintf("alaska@%v", r.Interval)
		}
		fmt.Printf("threads=%d %-16s ops=%7d avg=%8v p99=%8v maxpause=%v pauses=%d\n",
			r.Threads, kind, r.Ops, r.AvgLatency, r.P99, r.MaxPause, r.Pauses)
	}
}
