// Package figures contains one harness per figure/table of the paper's
// evaluation (§5). Each harness regenerates the corresponding result from
// this repository's substrate: cycle-count overheads for Figures 7 and 8,
// RSS-over-time curves for Figures 9-11, and latency measurements for
// Figure 12. cmd/ binaries and bench_test.go are thin wrappers over these.
package figures

import (
	"fmt"

	"alaska/internal/compiler"
	"alaska/internal/stats"
	"alaska/internal/vm"
	"alaska/internal/workloads"
)

// BenchResult is one bar of Figure 7.
type BenchResult struct {
	Name           string
	Suite          string
	BaselineCycles int64
	AlaskaCycles   int64
	// Overhead is the fractional cycle increase (0.10 = +10%).
	Overhead float64
	// PaperOverhead is the paper's reported percentage for comparison.
	PaperOverhead float64
	// CompileStats are the transformation statistics (Q2 code size).
	CompileStats compiler.Stats
}

// runConfig runs one benchmark under the given compiler options and
// returns (cycles, stats).
func runConfig(b workloads.Benchmark, opt compiler.Options) (int64, compiler.Stats, error) {
	mod := b.Build()
	st, err := compiler.Transform(mod, opt)
	if err != nil {
		return 0, st, fmt.Errorf("%s: transform: %w", b.Name, err)
	}
	costs := vm.DefaultCosts
	costs.Poll = b.PollCost
	m, err := vm.NewAlaska(mod, costs)
	if err != nil {
		return 0, st, err
	}
	if _, err := m.Run("main"); err != nil {
		return 0, st, fmt.Errorf("%s: alaska run: %w", b.Name, err)
	}
	cycles := m.Cycles
	if err := m.Close(); err != nil {
		return 0, st, err
	}
	return cycles, st, nil
}

// runBaseline runs the untransformed program with the plain allocator.
func runBaseline(b workloads.Benchmark) (int64, error) {
	mod := b.Build()
	m := vm.NewBaseline(mod, vm.DefaultCosts)
	if _, err := m.Run("main"); err != nil {
		return 0, fmt.Errorf("%s: baseline run: %w", b.Name, err)
	}
	return m.Cycles, nil
}

// options returns the compiler options for a benchmark under the full
// Alaska configuration, honouring the strict-aliasing carve-out.
func options(b workloads.Benchmark) compiler.Options {
	opt := compiler.DefaultOptions
	if b.StrictAliasingViolation {
		opt.Hoisting = false
	}
	return opt
}

// Figure7 measures the translation+tracking overhead of every modelled
// benchmark, as Figure 7 of the paper.
func Figure7() ([]BenchResult, error) {
	var out []BenchResult
	for _, b := range workloads.All() {
		base, err := runBaseline(b)
		if err != nil {
			return nil, err
		}
		cyc, st, err := runConfig(b, options(b))
		if err != nil {
			return nil, err
		}
		out = append(out, BenchResult{
			Name:           b.Name,
			Suite:          b.Suite,
			BaselineCycles: base,
			AlaskaCycles:   cyc,
			Overhead:       float64(cyc-base) / float64(base),
			PaperOverhead:  b.PaperOverhead,
			CompileStats:   st,
		})
	}
	return out, nil
}

// Geomean aggregates the results the way the paper does. If excludeSA is
// true, the strict-aliasing violators (perlbench, gcc) are dropped,
// matching the paper's 8% figure.
func Geomean(results []BenchResult, excludeSA bool) float64 {
	var xs []float64
	for _, r := range results {
		if excludeSA && (r.Name == "perlbench" || r.Name == "gcc") {
			continue
		}
		xs = append(xs, r.Overhead)
	}
	return stats.Geomean(xs)
}

// AblationResult is one benchmark row of Figure 8.
type AblationResult struct {
	Name string
	// Overheads under the three configurations, as fractions.
	Alaska     float64
	NoTracking float64
	NoHoisting float64
}

// Figure8 runs the ablation study of Figure 8 over the SPEC subset: full
// Alaska, tracking removed, and hoisting removed.
func Figure8() ([]AblationResult, error) {
	var out []AblationResult
	for _, b := range workloads.SPECSubset() {
		base, err := runBaseline(b)
		if err != nil {
			return nil, err
		}
		over := func(opt compiler.Options) (float64, error) {
			cyc, _, err := runConfig(b, opt)
			if err != nil {
				return 0, err
			}
			return float64(cyc-base) / float64(base), nil
		}
		full, err := over(compiler.Options{Hoisting: true, Tracking: true})
		if err != nil {
			return nil, err
		}
		noTrack, err := over(compiler.Options{Hoisting: true, Tracking: false})
		if err != nil {
			return nil, err
		}
		noHoist, err := over(compiler.Options{Hoisting: false, Tracking: true})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Name: b.Name, Alaska: full, NoTracking: noTrack, NoHoisting: noHoist})
	}
	return out, nil
}

// CodeSizeRow reports the static code growth for one benchmark (Q2).
type CodeSizeRow struct {
	Name   string
	Before int
	After  int
	Growth float64
}

// CodeSize computes the static instruction growth of the Alaska
// transformation for every benchmark — the §5.2 executable-size result
// (paper: ~48% geomean, worst case ~2x for xalancbmk, negligible for NAS).
func CodeSize() ([]CodeSizeRow, float64, error) {
	var rows []CodeSizeRow
	var growths []float64
	for _, b := range workloads.All() {
		mod := b.Build()
		st, err := compiler.Transform(mod, options(b))
		if err != nil {
			return nil, 0, err
		}
		g := st.CodeGrowth()
		rows = append(rows, CodeSizeRow{Name: b.Name, Before: st.InstrsBefore, After: st.InstrsAfter, Growth: g})
		growths = append(growths, g-1)
	}
	return rows, stats.Geomean(growths), nil
}
