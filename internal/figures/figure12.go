package figures

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/rt"
	"alaska/internal/stats"
	"alaska/internal/ycsb"
)

// MemcachedConfig parameterizes the Figure 12 experiment: a multithreaded
// memcached-style store under YCSB-A while Anchorage performs fixed-size
// relocation pauses at a configurable interval.
type MemcachedConfig struct {
	Threads int
	// PauseInterval is the time between stop-the-world relocation pauses
	// (the x-axis of Figure 12). Zero disables pauses (the baseline).
	PauseInterval time.Duration
	// Duration is the measured wall-clock run length.
	Duration time.Duration
	// RecordCount and ValueSize define the YCSB dataset.
	RecordCount int
	ValueSize   int
	// MoveBudget is how many bytes each pause relocates (paper: ~1 MiB,
	// keeping average pauses under 2 ms).
	MoveBudget uint64
	// Shards is the store's shard count.
	Shards int
	Seed   int64
}

// DefaultMemcachedConfig mirrors the paper's setup at a test-friendly
// duration.
func DefaultMemcachedConfig(threads int, interval time.Duration) MemcachedConfig {
	return MemcachedConfig{
		Threads:       threads,
		PauseInterval: interval,
		Duration:      400 * time.Millisecond,
		RecordCount:   4000,
		ValueSize:     512,
		MoveBudget:    1 << 20,
		Shards:        16,
		Seed:          7,
	}
}

// MemcachedResult is one cell of Figure 12.
type MemcachedResult struct {
	Threads  int
	Interval time.Duration
	Alaska   bool
	Ops      int64
	// AvgLatency and P99 are measured per-operation wall-clock latencies.
	AvgLatency time.Duration
	P99        time.Duration
	MaxPause   time.Duration
	Pauses     int64
}

// RunMemcached runs one (threads, interval) cell. alaska selects the
// Anchorage backend with relocation pauses; otherwise the baseline
// allocator runs without pauses.
func RunMemcached(alaska bool, cfg MemcachedConfig) (MemcachedResult, error) {
	var backend kv.Backend
	var anch *kv.AnchorageBackend
	if alaska {
		a, err := kv.NewAnchorageBackend(anchorage.DefaultConfig())
		if err != nil {
			return MemcachedResult{}, err
		}
		anch = a
		backend = a
	} else {
		backend = kv.NewMallocBackend()
	}
	store := kv.NewShardedStore(backend, cfg.Shards, 0)

	// Load phase.
	loadSess := store.NewSession()
	gen, err := ycsb.NewGenerator(ycsb.WorkloadA, cfg.RecordCount, cfg.ValueSize, cfg.Seed)
	if err != nil {
		return MemcachedResult{}, err
	}
	val := make([]byte, cfg.ValueSize)
	for _, op := range gen.LoadOps() {
		if err := store.Set(loadSess, op.Key, val); err != nil {
			return MemcachedResult{}, fmt.Errorf("load: %w", err)
		}
	}
	if err := loadSess.Close(); err != nil {
		return MemcachedResult{}, err
	}

	res := MemcachedResult{Threads: cfg.Threads, Interval: cfg.PauseInterval, Alaska: alaska}
	var totalOps atomic.Int64
	var wg sync.WaitGroup
	quit := make(chan struct{})
	// One recorder per worker (uncontended on the hot path), merged for
	// the report — the same instrument alaskad's stats command and the
	// loadgen report use.
	recs := make([]*stats.LatencyRecorder, cfg.Threads)

	for w := 0; w < cfg.Threads; w++ {
		recs[w] = stats.NewLatencyRecorder()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := store.NewSession()
			defer sess.Close()
			g, _ := ycsb.NewGenerator(ycsb.WorkloadA, cfg.RecordCount, cfg.ValueSize, cfg.Seed+int64(w)+1)
			buf := make([]byte, cfg.ValueSize)
			for {
				select {
				case <-quit:
					return
				default:
				}
				op := g.Next()
				start := time.Now()
				var err error
				switch op.Type {
				case ycsb.Read:
					_, err = store.Get(sess, op.Key)
				default:
					err = store.Set(sess, op.Key, buf[:op.ValueSize])
				}
				if err != nil {
					return
				}
				recs[w].Record(time.Since(start))
				totalOps.Add(1)
				sess.Safepoint()
			}
		}(w)
	}

	// Pauser: relocate MoveBudget bytes every PauseInterval.
	var maxPause atomic.Int64
	var pauses atomic.Int64
	if alaska && cfg.PauseInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(cfg.PauseInterval)
			defer ticker.Stop()
			for {
				select {
				case <-quit:
					return
				case <-ticker.C:
					start := time.Now()
					anch.Runtime.Barrier(nil, func(scope *rt.BarrierScope) {
						anch.Svc.DefragPass(scope, cfg.MoveBudget)
					})
					d := time.Since(start)
					pauses.Add(1)
					if d.Nanoseconds() > maxPause.Load() {
						maxPause.Store(d.Nanoseconds())
					}
				}
			}
		}()
	}

	time.Sleep(cfg.Duration)
	close(quit)
	wg.Wait()

	merged := stats.NewLatencyRecorder()
	for _, r := range recs {
		merged.Merge(r)
	}
	res.Ops = totalOps.Load()
	res.AvgLatency = merged.Mean()
	res.P99 = merged.Percentile(99)
	res.MaxPause = time.Duration(maxPause.Load())
	res.Pauses = pauses.Load()
	return res, nil
}

// Figure12 sweeps thread counts and pause intervals, returning Alaska and
// baseline cells.
func Figure12(threads []int, intervals []time.Duration, duration time.Duration) ([]MemcachedResult, error) {
	var out []MemcachedResult
	for _, th := range threads {
		base := DefaultMemcachedConfig(th, 0)
		if duration > 0 {
			base.Duration = duration
		}
		b, err := RunMemcached(false, base)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
		for _, iv := range intervals {
			cfg := DefaultMemcachedConfig(th, iv)
			if duration > 0 {
				cfg.Duration = duration
			}
			r, err := RunMemcached(true, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}
