package figures

import (
	"testing"
	"time"
)

func byName(res []BenchResult) map[string]BenchResult {
	m := make(map[string]BenchResult, len(res))
	for _, r := range res {
		m[r.Name] = r
	}
	return m
}

// Figure 7's load-bearing claims: overall overhead around 10% geomean
// (8% excluding the strict-aliasing violators), dense kernels near zero,
// pointer chasing expensive, perlbench/gcc the outliers.
func TestFigure7Shape(t *testing.T) {
	res, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 49 {
		t.Fatalf("benchmarks = %d, want 49", len(res))
	}
	gm := Geomean(res, false)
	if gm < 0.05 || gm > 0.16 {
		t.Errorf("geomean overhead = %.1f%%, want near the paper's 10%%", gm*100)
	}
	gmX := Geomean(res, true)
	if gmX >= gm {
		t.Errorf("excluding perlbench/gcc should lower the geomean: %.1f%% vs %.1f%%", gmX*100, gm*100)
	}
	m := byName(res)

	// Dense hoistable kernels: near zero.
	for _, name := range []string{"lbm", "bt", "cg", "ft", "lu", "sp", "edn", "st", "ud", "minver"} {
		if o := m[name].Overhead; o > 0.03 {
			t.Errorf("%s overhead = %.1f%%, want ~0 (fully hoisted)", name, o*100)
		}
	}
	// Compute-bound kernels: near zero.
	for _, name := range []string{"aha-mont64", "crc32", "md5sum", "nettle-aes", "primecount", "ep"} {
		if o := m[name].Overhead; o > 0.03 {
			t.Errorf("%s overhead = %.1f%%, want ~0 (compute bound)", name, o*100)
		}
	}
	// Pointer chasers: clearly expensive.
	for _, name := range []string{"sglib", "slre", "qrduino", "xalancbmk", "mcf", "leela"} {
		if o := m[name].Overhead; o < 0.10 {
			t.Errorf("%s overhead = %.1f%%, want > 10%% (unhoistable translations)", name, o*100)
		}
	}
	// The strict-aliasing violators are the worst cases, as in the paper.
	if m["perlbench"].Overhead < 0.45 {
		t.Errorf("perlbench overhead = %.1f%%, want the Figure 7 worst case", m["perlbench"].Overhead*100)
	}
	if m["gcc"].Overhead < 0.30 {
		t.Errorf("gcc overhead = %.1f%%", m["gcc"].Overhead*100)
	}
	// Every benchmark ran to completion with sensible cycle counts.
	for _, r := range res {
		if r.BaselineCycles <= 0 || r.AlaskaCycles <= 0 {
			t.Errorf("%s: empty run (base %d, alaska %d)", r.Name, r.BaselineCycles, r.AlaskaCycles)
		}
		if r.Overhead < -0.05 {
			t.Errorf("%s: negative overhead %.1f%% beyond noise", r.Name, r.Overhead*100)
		}
	}
}

// Figure 8's claims: disabling hoisting roughly doubles overhead where
// hoisting applies; removing tracking only ever helps.
func TestFigure8Shape(t *testing.T) {
	res, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 9 {
		t.Fatalf("SPEC subset = %d rows, want 9", len(res))
	}
	for _, r := range res {
		if r.NoTracking > r.Alaska+0.005 {
			t.Errorf("%s: notracking %.1f%% > alaska %.1f%%", r.Name, r.NoTracking*100, r.Alaska*100)
		}
		if r.NoHoisting < r.Alaska-0.005 {
			t.Errorf("%s: nohoisting %.1f%% < alaska %.1f%%", r.Name, r.NoHoisting*100, r.Alaska*100)
		}
	}
	// The hoisting-sensitive benchmarks see their overhead at least
	// double, like the paper's Figure 8.
	for _, name := range []string{"lbm", "x264", "nab"} {
		for _, r := range res {
			if r.Name != name {
				continue
			}
			if r.NoHoisting < 2*r.Alaska && r.NoHoisting < r.Alaska+0.10 {
				t.Errorf("%s: nohoisting %.1f%% did not substantially exceed alaska %.1f%%",
					name, r.NoHoisting*100, r.Alaska*100)
			}
		}
	}
	// nab's overhead is dominated by tracking (the StackMaps effect).
	for _, r := range res {
		if r.Name == "nab" && r.NoTracking > r.Alaska/2 {
			t.Errorf("nab: tracking should dominate: notracking %.1f%% vs alaska %.1f%%",
				r.NoTracking*100, r.Alaska*100)
		}
	}
}

// Q2: code growth ~48% geomean, worst cases around 2x, NAS negligible.
func TestCodeSizeShape(t *testing.T) {
	rows, gm, err := CodeSize()
	if err != nil {
		t.Fatal(err)
	}
	if gm < 0.02 || gm > 1.0 {
		t.Errorf("code growth geomean = %.1f%%, want moderate", gm*100)
	}
	for _, r := range rows {
		if r.After < r.Before {
			t.Errorf("%s: code shrank (%d -> %d)", r.Name, r.Before, r.After)
		}
		if r.Growth > 2.5 {
			t.Errorf("%s: growth %.2fx exceeds the paper's ~2x worst case", r.Name, r.Growth)
		}
	}
}

func smallDefragConfig() DefragConfig {
	cfg := DefaultDefragConfig(0.0625) // 6.25 MiB maxmemory
	return cfg
}

// Figure 9's claims: the baseline never recovers memory; Anchorage
// recovers a large fraction without application knowledge, comparable to
// activedefrag; Mesh recovers some.
func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow reproduction experiment (~2s); run without -short")
	}
	res, err := Figure9(smallDefragConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := res["baseline"]
	anch := res["anchorage"]
	adf := res["activedefrag"]
	mesh := res["mesh"]

	if base.FinalRSS < base.PeakRSS*95/100 {
		t.Errorf("baseline recovered memory: peak %d, final %d", base.PeakRSS, base.FinalRSS)
	}
	if base.FinalRSS < base.Active*3/2 {
		t.Errorf("baseline insufficiently fragmented: RSS %d vs active %d", base.FinalRSS, base.Active)
	}
	// Headline: Anchorage saves a large fraction vs the baseline (the
	// paper's 40%-in-Redis claim).
	saving := 1 - float64(anch.FinalRSS)/float64(base.FinalRSS)
	if saving < 0.30 {
		t.Errorf("anchorage saving vs baseline = %.1f%%, want >= 30%%", saving*100)
	}
	// Anchorage is at least comparable to the bespoke activedefrag.
	if float64(anch.FinalRSS) > float64(adf.FinalRSS)*1.15 {
		t.Errorf("anchorage final %d not comparable to activedefrag %d", anch.FinalRSS, adf.FinalRSS)
	}
	// Mesh helps, but less.
	if mesh.FinalRSS >= base.FinalRSS {
		t.Errorf("mesh did not reduce RSS: %d vs baseline %d", mesh.FinalRSS, base.FinalRSS)
	}
	if anch.FinalRSS >= mesh.FinalRSS {
		t.Errorf("anchorage %d should beat mesh %d", anch.FinalRSS, mesh.FinalRSS)
	}
	// Anchorage's defragmentation actually ran, respecting pins.
	if anch.Pauses == 0 {
		t.Error("anchorage recorded no pause time")
	}
	// All curves have enough samples to plot.
	for name, r := range res {
		if len(r.Series.Points) < 10 {
			t.Errorf("%s: only %d samples", name, len(r.Series.Points))
		}
	}
}

// Figure 10's claim: the control parameters span a wide envelope while
// respecting their overhead bounds.
func TestFigure10Envelope(t *testing.T) {
	if testing.Short() {
		t.Skip("slow reproduction experiment (~6s); run without -short")
	}
	base := smallDefragConfig()
	points, err := Figure10(base,
		[]float64{1.15, 1.6, 2.6},
		[]float64{0.02, 0.20},
		[]float64{0.05, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 {
		t.Fatalf("sweep points = %d, want 12", len(points))
	}
	lo, hi := Envelope(points)
	// Compare the envelope at a mid-run timestamp: it must be wide (the
	// parameters matter).
	mid := lo.Points[len(lo.Points)/2].T
	spread := (hi.At(mid) - lo.At(mid)) / hi.At(mid)
	if spread < 0.10 {
		t.Errorf("envelope spread at %v = %.1f%%, want a visible envelope of control", mid, spread*100)
	}
	// Pause fractions track O_ub ordering: tight overhead bounds must not
	// produce more pause time than loose ones for the same frag bounds.
	for _, p := range points {
		if p.PauseFraction > p.OverheadHigh*3+0.01 {
			t.Errorf("config O_ub=%.2f alpha=%.2f: pause fraction %.3f grossly above bound",
				p.OverheadHigh, p.Alpha, p.PauseFraction)
		}
	}
}

// Figure 11's claim: at large scale Anchorage still defragments to the
// activedefrag level but takes longer, throttled by its overhead bound.
func TestFigure11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow reproduction experiment (~13s); run without -short")
	}
	res, err := Figure11(0.125)
	if err != nil {
		t.Fatal(err)
	}
	base := res["baseline"]
	anch := res["anchorage"]
	adf := res["activedefrag"]
	if anch.FinalRSS >= base.FinalRSS {
		t.Errorf("anchorage %d did not beat baseline %d", anch.FinalRSS, base.FinalRSS)
	}
	// Similar steady state...
	if float64(anch.FinalRSS) > float64(adf.FinalRSS)*1.3 {
		t.Errorf("anchorage final %d vs activedefrag %d — not a similar steady state", anch.FinalRSS, adf.FinalRSS)
	}
	// ...but reached over a longer time frame: measure when each curve
	// first drops below 1.4x its final active bytes after its peak.
	crossing := func(r DefragResult) time.Duration {
		thresh := float64(r.Active) * 14 / 10
		peaked := false
		for _, p := range r.Series.Points {
			if !peaked && p.V >= float64(r.PeakRSS)*0.98 {
				peaked = true
			}
			if peaked && p.V <= thresh {
				return p.T
			}
		}
		return r.Series.Points[len(r.Series.Points)-1].T
	}
	ta, td := crossing(anch), crossing(adf)
	if ta < td {
		t.Logf("note: anchorage converged at %v vs activedefrag %v (paper has anchorage slower)", ta, td)
	}
}

// Figure 12's claims: pauses stay small (average < 2 ms scale), Alaska
// costs some latency at aggressive pause intervals, and there is no
// systematic blow-up with thread count.
func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	cfgFast := DefaultMemcachedConfig(4, 20*time.Millisecond)
	fast, err := RunMemcached(true, cfgFast)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Pauses == 0 {
		t.Fatal("no pauses happened at a 20ms interval")
	}
	if fast.MaxPause > 50*time.Millisecond {
		t.Errorf("max pause %v is far beyond the paper's ~2ms scale", fast.MaxPause)
	}
	base, err := RunMemcached(false, DefaultMemcachedConfig(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if base.Ops == 0 || fast.Ops == 0 {
		t.Fatal("no operations completed")
	}
	// Throughput under pauses must not collapse (pauses are bounded).
	if fast.Ops < base.Ops/4 {
		t.Errorf("alaska throughput collapsed: %d vs %d", fast.Ops, base.Ops)
	}
	// More threads must still work correctly with concurrent pauses.
	many, err := RunMemcached(true, DefaultMemcachedConfig(8, 30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if many.Ops == 0 {
		t.Error("8-thread run did no work")
	}
}
