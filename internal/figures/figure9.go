package figures

import (
	"fmt"
	"math/rand"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/stats"
)

// DefragConfig parameterizes the Redis defragmentation experiments
// (Figures 9, 10, 11).
type DefragConfig struct {
	// MaxMemory is the store's eviction threshold (paper: 100 MiB for
	// Figure 9, 50 GiB for Figure 11).
	MaxMemory uint64
	// InsertFactor is how many times MaxMemory worth of data is inserted
	// (the paper's "inserts more than that": we default to 3x).
	InsertFactor float64
	// ValueMin/ValueMax bound the first-phase value sizes; the second
	// half of the run drifts to [ValueMin/4, ValueMax/4], preventing
	// free-slot reuse — the allocation churn Redis-as-LRU-cache exhibits.
	ValueMin, ValueMax int
	// HotEvery makes every N-th key long-lived: hot keys are re-read
	// periodically so LRU never evicts them, scattering survivors across
	// the heap exactly like a zipfian working set does.
	HotEvery int
	// OpTime is the simulated duration of one store operation; it sets
	// the experiment's wall-clock axis.
	OpTime time.Duration
	// SampleEvery is the RSS sampling interval.
	SampleEvery time.Duration
	// Anchorage is the Anchorage/controller configuration.
	Anchorage anchorage.Config
	// Seed drives the workload RNG.
	Seed int64
}

// DefaultDefragConfig returns the Figure 9 setup scaled by `scale`
// (1.0 = the paper's 100 MiB experiment).
func DefaultDefragConfig(scale float64) DefragConfig {
	a := anchorage.DefaultConfig()
	a.FragHigh = 1.3
	a.FragLow = 1.08
	a.Alpha = 0.3
	a.OverheadHigh = 0.10
	return DefragConfig{
		MaxMemory:    uint64(100 * (1 << 20) * scale),
		InsertFactor: 3,
		ValueMin:     100,
		ValueMax:     1600,
		HotEvery:     12,
		OpTime:       12 * time.Microsecond,
		SampleEvery:  100 * time.Millisecond,
		Anchorage:    a,
		Seed:         42,
	}
}

// DefragResult holds one backend's RSS-over-time curve plus summary
// numbers.
type DefragResult struct {
	Series    *stats.Series // RSS in bytes over simulated time
	PeakRSS   uint64
	FinalRSS  uint64
	Active    uint64 // live bytes at the end
	Evictions int64
	Pauses    time.Duration // total stop-the-world time
}

// Saving returns the paper's headline metric: how much of the peak RSS was
// recovered by the end (Figure 1: "up to 40% in Redis").
func (r DefragResult) Saving() float64 {
	if r.PeakRSS == 0 {
		return 0
	}
	return 1 - float64(r.FinalRSS)/float64(r.PeakRSS)
}

// newBackend constructs the named backend for a defrag run.
func newBackend(name string, cfg DefragConfig) (kv.Backend, error) {
	switch name {
	case "baseline":
		return kv.NewMallocBackend(), nil
	case "activedefrag":
		return kv.NewActiveDefragBackend(), nil
	case "mesh":
		return kv.NewMeshBackend(cfg.Seed), nil
	case "anchorage":
		return kv.NewAnchorageBackend(cfg.Anchorage)
	}
	return nil, fmt.Errorf("figures: unknown backend %q", name)
}

// Backends lists the Figure 9 curves in plot order.
var Backends = []string{"baseline", "anchorage", "activedefrag", "mesh"}

// RunDefrag drives the Redis-mode store over one backend with the
// over-insert/LRU-evict workload and records RSS over simulated time.
func RunDefrag(name string, cfg DefragConfig) (DefragResult, error) {
	b, err := newBackend(name, cfg)
	if err != nil {
		return DefragResult{}, err
	}
	store := kv.NewStore(b, cfg.MaxMemory)
	rng := rand.New(rand.NewSource(cfg.Seed))

	totalBytes := float64(cfg.MaxMemory) * cfg.InsertFactor
	// The size distribution drifts downward across four phases (see
	// below); the effective average is roughly half the phase-0 mean.
	avgVal := float64(cfg.ValueMin+cfg.ValueMax) / 2
	nOps := int(totalBytes / (avgVal * 0.47))

	res := DefragResult{Series: &stats.Series{Name: name}}
	var now time.Duration
	nextSample := time.Duration(0)
	var hot []string
	val := make([]byte, cfg.ValueMax)

	sample := func() {
		rss := store.RSS()
		res.Series.Add(now, float64(rss))
		if rss > res.PeakRSS {
			res.PeakRSS = rss
		}
	}
	for i := 0; i < nOps; i++ {
		// Four phases of downward size drift: freed slots from earlier
		// phases cannot be reused by later, smaller allocations' classes,
		// which (together with the scattered hot survivors) is what
		// strands memory in a non-moving allocator.
		phase := uint(i * 4 / (nOps + 1))
		lo, hi := cfg.ValueMin>>phase, cfg.ValueMax>>phase
		if lo < 16 {
			lo = 16
		}
		if hi <= lo {
			hi = lo + 1
		}
		size := lo + rng.Intn(hi-lo+1)
		key := fmt.Sprintf("key%09d", i)
		for k := 0; k < size; k++ {
			val[k] = byte(i >> (k % 3 * 8))
		}
		if err := store.Set(key, val[:size]); err != nil {
			return res, fmt.Errorf("%s: set: %w", name, err)
		}
		if cfg.HotEvery > 0 && i%cfg.HotEvery == 0 {
			hot = append(hot, key)
		}
		// Keep the hot set fresh so eviction skips it.
		if len(hot) > 0 && i%257 == 0 {
			for _, k := range hot {
				if _, err := store.Get(k); err != nil {
					return res, err
				}
			}
		}
		now += cfg.OpTime
		res.Pauses += store.Maintain(now)
		if now >= nextSample {
			sample()
			nextSample = now + cfg.SampleEvery
		}
	}
	// Post-workload settling (the paper's curves keep dropping after
	// insertion stops while the controller works).
	settleEnd := now + 4*time.Second
	for now < settleEnd {
		now += cfg.SampleEvery / 4
		res.Pauses += store.Maintain(now)
		if now >= nextSample {
			sample()
			nextSample = now + cfg.SampleEvery
		}
	}
	sample()
	res.FinalRSS = store.RSS()
	res.Active = store.UsedBytes()
	res.Evictions = store.Evictions
	return res, nil
}

// Figure9 runs all four backends and returns their curves keyed by name.
func Figure9(cfg DefragConfig) (map[string]DefragResult, error) {
	out := make(map[string]DefragResult, len(Backends))
	for _, name := range Backends {
		r, err := RunDefrag(name, cfg)
		if err != nil {
			return nil, err
		}
		out[name] = r
	}
	return out, nil
}

// SweepPoint is one parameter set's outcome in the Figure 10 sweep.
type SweepPoint struct {
	FragLow, FragHigh float64
	OverheadHigh      float64
	Alpha             float64
	Result            DefragResult
	// PauseFraction is total pause time over total run time.
	PauseFraction float64
}

// Figure10 sweeps the control parameters [F_lb,F_ub], O_ub, and α over the
// anchorage backend, returning one point per configuration. The envelope
// of the resulting curves is the paper's "envelope of control".
func Figure10(base DefragConfig, fragHighs, overheads, alphas []float64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, fh := range fragHighs {
		for _, ov := range overheads {
			for _, al := range alphas {
				cfg := base
				cfg.Anchorage.FragHigh = fh
				cfg.Anchorage.FragLow = fh * 0.8
				cfg.Anchorage.OverheadHigh = ov
				cfg.Anchorage.Alpha = al
				r, err := RunDefrag("anchorage", cfg)
				if err != nil {
					return nil, err
				}
				last := r.Series.Points[len(r.Series.Points)-1].T
				out = append(out, SweepPoint{
					FragLow: fh * 0.8, FragHigh: fh, OverheadHigh: ov, Alpha: al,
					Result:        r,
					PauseFraction: float64(r.Pauses) / float64(last),
				})
			}
		}
	}
	return out, nil
}

// Envelope returns, at each sampled time, the min and max RSS across the
// sweep — the dashed envelope curves of Figure 10.
func Envelope(points []SweepPoint) (lo, hi *stats.Series) {
	lo = &stats.Series{Name: "envelope_min"}
	hi = &stats.Series{Name: "envelope_max"}
	if len(points) == 0 {
		return lo, hi
	}
	ref := points[0].Result.Series
	for _, p := range ref.Points {
		minV, maxV := -1.0, 0.0
		for _, sp := range points {
			v := sp.Result.Series.At(p.T)
			if v <= 0 {
				continue
			}
			if minV < 0 || v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		if minV < 0 {
			minV = 0
		}
		lo.Add(p.T, minV)
		hi.Add(p.T, maxV)
	}
	return lo, hi
}

// Figure11 is the large-workload variant of Figure 9: the same over-insert
// pattern at `scale` times the Figure 9 size with fixed 500-byte values
// (the paper used a 50 GiB policy with 100 GiB inserted, which needs a
// 200 GiB testbed; the shape — late eviction onset, anchorage converging
// more slowly than activedefrag under its overhead bound — is preserved
// at reduced scale).
func Figure11(scale float64) (map[string]DefragResult, error) {
	cfg := DefaultDefragConfig(scale)
	cfg.ValueMin, cfg.ValueMax = 480, 520 // the paper's "500 bytes at a time"
	cfg.Anchorage.OverheadHigh = 0.05     // the 5% bound §5.5 discusses
	cfg.Anchorage.Alpha = 0.15
	out := make(map[string]DefragResult, len(Backends))
	for _, name := range Backends {
		r, err := RunDefrag(name, cfg)
		if err != nil {
			return nil, err
		}
		out[name] = r
	}
	return out, nil
}
