package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"
)

// On-disk format. A segment file is a 16-byte file header followed by a
// sequence of framed records:
//
//	file header:  "ALSKPACK" | u32 version | u32 reserved
//	record frame: u16 magic | u8 type | u8 reserved | u32 payloadLen | u32 crc | payload
//
// The CRC is CRC-32C (Castagnoli) over [type, reserved, payloadLen LE,
// payload] — everything after the magic — so a bit flip anywhere in the
// frame body or payload fails verification. All integers are little
// endian. Payload layouts by type:
//
//	set:    i64 expireAt unixnano (0 = never) | i64 storedAt unixnano |
//	        u32 keyLen | key | value
//	delete: key
//	touch:  i64 expireAt unixnano | key
//	flush:  i64 epoch unixnano (flush_all; may be in the future)
//
// Every record is absolute post-state (full value, absolute deadline,
// absolute epoch), never a delta — replaying any suffix of
// already-applied history is convergent, which is what lets compaction
// cut a snapshot concurrently with new appends.
const (
	fileMagic     = "ALSKPACK"
	fileVersion   = 1
	fileHeaderLen = 16

	recMagic     = 0xA15A
	recHeaderLen = 12

	recSet    = 1
	recDelete = 2
	recTouch  = 3
	recFlush  = 4

	// maxPayload bounds a single record (a 1 MiB value plus headroom is
	// typical; this is a sanity cap against corrupt length fields, not a
	// policy limit).
	maxPayload = 256 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// fileHeader renders the 16-byte segment header.
func fileHeader() [fileHeaderLen]byte {
	var h [fileHeaderLen]byte
	copy(h[:8], fileMagic)
	binary.LittleEndian.PutUint32(h[8:12], fileVersion)
	return h
}

// checkFileHeader validates a segment header.
func checkFileHeader(h []byte) error {
	if len(h) < fileHeaderLen {
		return fmt.Errorf("wal: short file header (%d bytes)", len(h))
	}
	if string(h[:8]) != fileMagic {
		return fmt.Errorf("wal: bad file magic %q", h[:8])
	}
	if v := binary.LittleEndian.Uint32(h[8:12]); v != fileVersion {
		return fmt.Errorf("wal: unsupported version %d", v)
	}
	return nil
}

// frameCRC computes the record CRC over the frame body (type, reserved,
// length) and up to three payload pieces.
func frameCRC(hdr []byte, pieces ...[]byte) uint32 {
	crc := crc32.Update(0, castagnoli, hdr[2:8])
	for _, p := range pieces {
		crc = crc32.Update(crc, castagnoli, p)
	}
	return crc
}

// putFrameHeader fills hdr with a complete 12-byte frame header for a
// record of the given type and payload pieces, returning the total
// framed size.
func putFrameHeader(hdr []byte, typ byte, pieces ...[]byte) int {
	payload := 0
	for _, p := range pieces {
		payload += len(p)
	}
	binary.LittleEndian.PutUint16(hdr[0:2], recMagic)
	hdr[2] = typ
	hdr[3] = 0
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(payload))
	binary.LittleEndian.PutUint32(hdr[8:12], frameCRC(hdr, pieces...))
	return recHeaderLen + payload
}

// appendRecord appends a fully framed record to dst — the encoding used
// by the compactor's snapshot writer and by tests. The ring producer
// encodes the same layout in place (Log.enqueueLocked).
func appendRecord(dst []byte, typ byte, pieces ...[]byte) []byte {
	var hdr [recHeaderLen]byte
	putFrameHeader(hdr[:], typ, pieces...)
	dst = append(dst, hdr[:]...)
	for _, p := range pieces {
		dst = append(dst, p...)
	}
	return dst
}

// nano flattens a deadline to its on-disk representation: 0 for the
// zero time ("never"), UnixNano otherwise.
func nano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// timeOf is nano's inverse.
func timeOf(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// appendSetRecord frames a set record into dst.
func appendSetRecord(dst []byte, key, value []byte, expireAt, storedAt time.Time) []byte {
	var head [20]byte
	binary.LittleEndian.PutUint64(head[0:8], uint64(nano(expireAt)))
	binary.LittleEndian.PutUint64(head[8:16], uint64(storedAt.UnixNano()))
	binary.LittleEndian.PutUint32(head[16:20], uint32(len(key)))
	return appendRecord(dst, recSet, head[:], key, value)
}

// appendFlushRecord frames a flush-epoch record into dst.
func appendFlushRecord(dst []byte, at time.Time) []byte {
	var head [8]byte
	binary.LittleEndian.PutUint64(head[:], uint64(nano(at)))
	return appendRecord(dst, recFlush, head[:])
}
