package wal

import (
	"os"
	"time"
)

// initialAuditDelay is how soon after Start the first audit pass runs:
// quickly enough that a restart smoke (and an operator who just
// recovered from a crash) gets a verdict on the replayed history
// without waiting a full AuditInterval.
const initialAuditDelay = time.Second

// auditLoop periodically re-reads the sealed segments and verifies
// every record frame and CRC — background integrity checking in the
// spirit of an object store's device audit, so bit rot is a counter on
// /metrics instead of a surprise at the next restart. The active
// segment is skipped (its tail is mid-write by design); everything
// recovered from a previous run is sealed and therefore covered.
func (l *Log) auditLoop() {
	defer close(l.auditDone)
	if l.opt.AuditInterval < 0 {
		return
	}
	delay := initialAuditDelay
	if l.opt.AuditInterval < delay {
		delay = l.opt.AuditInterval
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-t.C:
			l.auditOnce()
			t.Reset(l.opt.AuditInterval)
		}
	}
}

// auditOnce verifies one full pass over the sealed segments.
func (l *Log) auditOnce() {
	l.segMu.Lock()
	segs := append([]segment(nil), l.sealed...)
	l.segMu.Unlock()
	for _, sg := range segs {
		records, _, _, verdict, err := scanSegment(sg.path, nil)
		if err != nil {
			if os.IsNotExist(err) {
				continue // compacted away mid-pass
			}
			l.auditErrors.Add(1)
			l.opt.Logger.Errorf("wal: audit %s: %v", sg.path, err)
			continue
		}
		l.auditRecords.Add(records)
		if verdict != scanClean {
			l.auditErrors.Add(1)
			l.opt.Logger.Errorf("wal: audit %s: invalid record after %d valid", sg.path, records)
		}
	}
	l.auditRuns.Add(1)
}
