// Package wal is alaskad's optional persistence layer: an append-only
// "pack log" of CRC-checked records (set/delete/touch/flush-epoch) that
// makes a kill -9 restart warm instead of cold.
//
// The design keeps durability entirely off the request path. Mutating
// operations append an encoded record to a bounded in-memory ring —
// a fixed buffer, a mutex, no allocation, no syscall — and a dedicated
// writer goroutine drains the ring in batches, appending to the active
// segment file and fsyncing once per batch (at most once per
// FsyncInterval under steady load). The request path therefore stays at
// exactly 0 allocs/op and never blocks on disk; the price is a bounded
// durability window — a hard kill loses at most the appends since the
// last completed fsync batch.
//
// If the ring ever fills (a stalled disk), records are dropped and
// counted rather than blocking the request path; the log is then marked
// for compaction, which rewrites it from the store's authoritative live
// set and restores log/store consistency.
//
// Compaction piggybacks on the server's Maintain loop (MaybeCompact)
// the same way defrag does: when the log grows past CompactFactor times
// the live set, the writer seals the active segment, streams the live
// set into a snapshot segment that slots between the sealed history and
// the new active segment, atomically renames it into place, and deletes
// the superseded files. Because every record is absolute post-state,
// replaying the appends that raced the snapshot on top of it is
// convergent.
//
// A background audit pass re-reads sealed segments on a timer and
// verifies every frame's CRC, so silent corruption is surfaced by a
// counter long before the next restart trips over it.
//
// Disk failure is a mode to operate through, not a log line. All file
// I/O goes through an injectable fault.FS, and the writer runs a
// degradation state machine over it: an I/O error RETAINS the drained
// batch in a pending buffer and retries with capped backoff (ENOSPC
// additionally schedules a compaction to free space); after
// DegradeAfter consecutive failures the log transitions
// healthy → degraded — the bad active segment is abandoned at its last
// frame-clean offset, producers stop enqueuing (counted as
// dropped_degraded), and a recovery probe periodically attempts to open
// a fresh segment. When a probe succeeds the log flips back to healthy,
// logs the durability-gap epoch, flushes the retained pending bytes,
// and schedules a compaction so the gap is healed from the store's
// authoritative live set.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"alaska/internal/fault"
	"alaska/internal/kv"
	"alaska/internal/logx"
	"alaska/internal/stats"
)

// Options configures a Log. Zero values take the documented defaults.
type Options struct {
	// Dir is the log directory (alaskad's -data-dir). Created if absent.
	Dir string
	// FsyncInterval is the batch window: the writer drains the ring and
	// fsyncs at least this often, bounding the data-loss window of a
	// hard kill. Default 100ms.
	FsyncInterval time.Duration
	// RingBytes sizes the in-memory ring between the request path and
	// the writer. At the default 100ms window the ring must absorb one
	// window's worth of encoded mutations; overflow drops records (and
	// forces a compaction) instead of blocking. Default 8 MiB.
	RingBytes int
	// SegmentBytes rotates the active segment past this size. Default 64 MiB.
	SegmentBytes int64
	// AuditInterval is the background CRC-audit period; the first pass
	// runs ~1s after Start. Negative disables the audit. Default 60s.
	AuditInterval time.Duration
	// CompactMinBytes is the log size below which MaybeCompact never
	// triggers (compacting a tiny log is churn for nothing). Default 8 MiB.
	CompactMinBytes int64
	// CompactFactor triggers compaction when on-disk bytes exceed this
	// multiple of the store's live charged bytes. Default 2.0.
	CompactFactor float64
	// FS is the filesystem the log performs all file operations through.
	// Production leaves it nil (the real OS); tests and the alaskad
	// -fault-script flag install a fault.ScriptFS to exercise the
	// degradation paths. Default fault.OS.
	FS fault.FS
	// DegradeAfter is the sticky-failure budget: this many consecutive
	// failed flush attempts transition the log healthy → degraded.
	// Default 4.
	DegradeAfter int
	// ProbeInterval is how often a degraded log probes the disk by
	// attempting to open a fresh segment. Default 1s.
	ProbeInterval time.Duration
	// Logger receives lifecycle and error output; nil = silent.
	Logger *logx.Logger
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.FsyncInterval <= 0 {
		out.FsyncInterval = 100 * time.Millisecond
	}
	if out.RingBytes == 0 {
		out.RingBytes = 8 << 20
	}
	if out.SegmentBytes == 0 {
		out.SegmentBytes = 64 << 20
	}
	if out.AuditInterval == 0 {
		out.AuditInterval = 60 * time.Second
	}
	if out.CompactMinBytes == 0 {
		out.CompactMinBytes = 8 << 20
	}
	if out.CompactFactor == 0 {
		out.CompactFactor = 2.0
	}
	if out.FS == nil {
		out.FS = fault.OS
	}
	if out.DegradeAfter <= 0 {
		out.DegradeAfter = 4
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = time.Second
	}
	return out
}

// Log states. Producers check the state with a single atomic load, so
// the request path stays allocation- and branch-cheap.
const (
	stateHealthy int32 = iota
	stateDegraded
)

// maxIOBackoff caps the writer's retry backoff so a recovered disk is
// picked up promptly even after a long failure streak.
const maxIOBackoff = 2 * time.Second

// segment is one immutable (sealed) log file.
type segment struct {
	seq  uint64
	path string
	size int64
}

// Log is an append-only pack log over a directory of segment files.
// Producers (request goroutines, via the kv.MutationLog hooks) append
// to the ring; one writer goroutine owns all file I/O.
type Log struct {
	opt Options
	fs  fault.FS

	// Ring state, guarded by mu. The staging arrays are fields rather
	// than stack temporaries so the producer path provably never
	// allocates.
	mu    sync.Mutex
	ring  []byte
	rpos  int // next write offset into ring
	rused int
	phead [20]byte
	fhdr  [recHeaderLen]byte

	notify     chan struct{}
	compactReq chan chan struct{}
	quit       chan struct{}
	writerDone chan struct{}
	auditDone  chan struct{}
	closeOnce  sync.Once
	started    bool

	// Writer-goroutine-owned file state. pending holds drained ring
	// bytes that have not yet landed in the file: it is RETAINED across
	// write/fsync failures and retried, so an I/O error never discards
	// acknowledged records. cleanSize is the last frame-boundary offset
	// known to be entirely in the file; fragRemain counts the tail bytes
	// of a partially-written frame still waiting at the head of pending.
	f          fault.File
	seq        uint64
	segSize    int64
	cleanSize  int64
	fragRemain int
	pending    []byte
	needSync   bool
	nextSeq    uint64

	// Degradation state machine (writer-owned except the atomics).
	state         atomic.Int32 // stateHealthy | stateDegraded
	degradedSince atomic.Int64 // unixnano; 0 when healthy
	failStreak    int
	backoff       time.Duration
	nextRetry     time.Time
	nextProbe     time.Time

	// Sealed-segment registry, shared between writer (rotate/compact)
	// and the audit pass.
	segMu  sync.Mutex
	sealed []segment

	// Compaction source: the store whose live set is authoritative, and
	// a dedicated session parked in idle state except during dumps.
	src     *kv.ShardedStore
	srcSess kv.Session

	needCompact atomic.Bool
	lastCompact atomic.Int64 // unixnano of last MaybeCompact trigger

	appendedRecords atomic.Int64
	appendedBytes   atomic.Int64
	droppedRecords  atomic.Int64
	droppedDegraded atomic.Int64
	degradedEntries atomic.Int64
	recoveries      atomic.Int64
	fsyncs          atomic.Int64
	ioErrors        atomic.Int64
	rotations       atomic.Int64
	compactions     atomic.Int64
	snapshotRecords atomic.Int64
	snapshotBytes   atomic.Int64
	activeBytes     atomic.Int64
	sealedBytes     atomic.Int64
	auditRuns       atomic.Int64
	auditRecords    atomic.Int64
	auditErrors     atomic.Int64
	fsyncLat        *stats.LatencyRecorder

	replay ReplayStats // set by Replay, before Start
}

// Open prepares a Log over dir: creates the directory if needed,
// removes stray temp files from an interrupted compaction, and indexes
// the existing segments. No goroutines run and no segment is written
// until Start; call Replay in between to rebuild a store.
func Open(opt Options) (*Log, error) {
	l := &Log{
		opt:        opt.withDefaults(),
		notify:     make(chan struct{}, 1),
		compactReq: make(chan chan struct{}, 1),
		quit:       make(chan struct{}),
		writerDone: make(chan struct{}),
		auditDone:  make(chan struct{}),
		fsyncLat:   stats.NewLatencyRecorder(),
	}
	l.fs = l.opt.FS
	l.ring = make([]byte, l.opt.RingBytes)
	if err := os.MkdirAll(l.opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	names, err := os.ReadDir(l.opt.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		full := filepath.Join(l.opt.Dir, name)
		if strings.HasSuffix(name, ".tmp") {
			// An interrupted compaction's half-written snapshot: the old
			// segments it would have replaced are all still present.
			_ = l.fs.Remove(full)
			continue
		}
		seq, ok := parseSegName(name)
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		l.sealed = append(l.sealed, segment{seq: seq, path: full, size: info.Size()})
	}
	sort.Slice(l.sealed, func(i, j int) bool { return l.sealed[i].seq < l.sealed[j].seq })
	l.nextSeq = 1
	if n := len(l.sealed); n > 0 {
		l.nextSeq = l.sealed[n-1].seq + 1
	}
	l.recountSealed()
	return l, nil
}

func segName(seq uint64) string { return fmt.Sprintf("pack-%08d.log", seq) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "pack-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "pack-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

func (l *Log) segPath(seq uint64) string { return filepath.Join(l.opt.Dir, segName(seq)) }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opt.Dir }

// Start opens a fresh active segment after the replayed history and
// launches the writer and audit goroutines. store (may be nil in
// low-level tests) becomes the compaction source; its live set is what
// a compacted log is rewritten to.
func (l *Log) Start(store *kv.ShardedStore) error {
	l.src = store
	if store != nil {
		l.srcSess = store.NewSession()
		// Parked idle so a defrag barrier never rendezvouses with a
		// session that only wakes to dump; compact exits idle around the
		// dump itself.
		l.srcSess.EnterIdle()
	}
	if err := l.openSegment(); err != nil {
		return err
	}
	l.started = true
	go l.writerLoop()
	go l.auditLoop()
	return nil
}

// openSegment creates the next active segment with a synced header.
// Writer-goroutine (or pre-Start) only. A failed attempt removes the
// partial file so the sequence number can be retried; if a previous
// failure's cleanup was itself faulted away, the stale file is removed
// and the create retried once rather than hitting EEXIST forever.
func (l *Log) openSegment() error {
	seq := l.nextSeq
	path := l.segPath(seq)
	f, err := l.fs.Create(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil && errors.Is(err, os.ErrExist) {
		_ = l.fs.Remove(path)
		f, err = l.fs.Create(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := fileHeader()
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		_ = l.fs.Remove(path)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = l.fs.Remove(path)
		return fmt.Errorf("wal: %w", err)
	}
	l.syncDir()
	l.nextSeq = seq + 1
	l.f, l.seq, l.segSize = f, seq, fileHeaderLen
	l.cleanSize = l.segSize
	l.fragRemain = 0
	l.needSync = false
	l.activeBytes.Store(l.segSize)
	return nil
}

// syncDir fsyncs the log directory so renames/creates/removes are durable.
func (l *Log) syncDir() {
	d, err := os.Open(l.opt.Dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

func (l *Log) recountSealed() {
	var n int64
	for _, sg := range l.sealed {
		n += sg.size
	}
	l.sealedBytes.Store(n)
}

// Close drains the ring, fsyncs, and stops the goroutines. After a
// clean Close the log is byte-complete: a restart replays every
// acknowledged mutation. Safe to call multiple times.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		close(l.quit)
		if l.started {
			<-l.writerDone
			<-l.auditDone
		}
		if l.srcSess != nil {
			l.srcSess.ExitIdle()
			_ = l.srcSess.Close()
		}
	})
	return nil
}

// ---- producer side (request path; kv.MutationLog implementation) ----

// LogSet implements kv.MutationLog.
func (l *Log) LogSet(key, value []byte, expireAt, storedAt time.Time) {
	l.mu.Lock()
	putU64(l.phead[0:8], uint64(nano(expireAt)))
	putU64(l.phead[8:16], uint64(storedAt.UnixNano()))
	putU32(l.phead[16:20], uint32(len(key)))
	l.enqueueLocked(recSet, l.phead[:20], key, value)
	over := l.rused > len(l.ring)/2
	l.mu.Unlock()
	if over {
		l.wake()
	}
}

// LogDelete implements kv.MutationLog.
func (l *Log) LogDelete(key []byte) {
	l.mu.Lock()
	l.enqueueLocked(recDelete, key, nil, nil)
	over := l.rused > len(l.ring)/2
	l.mu.Unlock()
	if over {
		l.wake()
	}
}

// LogTouch implements kv.MutationLog.
func (l *Log) LogTouch(key []byte, expireAt time.Time) {
	l.mu.Lock()
	putU64(l.phead[0:8], uint64(nano(expireAt)))
	l.enqueueLocked(recTouch, l.phead[:8], key, nil)
	over := l.rused > len(l.ring)/2
	l.mu.Unlock()
	if over {
		l.wake()
	}
}

// LogFlushAll implements kv.MutationLog.
func (l *Log) LogFlushAll(at time.Time) {
	l.mu.Lock()
	putU64(l.phead[0:8], uint64(nano(at)))
	l.enqueueLocked(recFlush, l.phead[:8], nil, nil)
	l.mu.Unlock()
	l.wake()
}

// enqueueLocked frames one record directly into the ring. Caller holds
// l.mu. On overflow the record is dropped, counted, and the log marked
// for compaction — the request path never blocks on the disk. In
// degraded mode records are dropped up front (and counted separately):
// the disk is refusing writes, so buffering would only defer the loss
// past the operator's visibility.
func (l *Log) enqueueLocked(typ byte, a, b, c []byte) {
	if l.state.Load() != stateHealthy {
		l.droppedDegraded.Add(1)
		return
	}
	payload := len(a) + len(b) + len(c)
	total := recHeaderLen + payload
	if l.rused+total > len(l.ring) || payload > maxPayload {
		l.droppedRecords.Add(1)
		l.needCompact.Store(true)
		return
	}
	h := l.fhdr[:]
	putU16(h[0:2], recMagic)
	h[2], h[3] = typ, 0
	putU32(h[4:8], uint32(payload))
	crc := crc32.Update(0, castagnoli, h[2:8])
	crc = crc32.Update(crc, castagnoli, a)
	crc = crc32.Update(crc, castagnoli, b)
	crc = crc32.Update(crc, castagnoli, c)
	putU32(h[8:12], crc)
	l.putLocked(h)
	l.putLocked(a)
	l.putLocked(b)
	l.putLocked(c)
	l.appendedRecords.Add(1)
	l.appendedBytes.Add(int64(total))
}

// putLocked copies b into the ring at the write position, wrapping.
// Caller holds l.mu and has verified space.
func (l *Log) putLocked(b []byte) {
	if len(b) == 0 {
		return
	}
	n := copy(l.ring[l.rpos:], b)
	if n < len(b) {
		copy(l.ring, b[n:])
	}
	l.rpos = (l.rpos + len(b)) % len(l.ring)
	l.rused += len(b)
}

func (l *Log) wake() {
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
func putU64(b []byte, v uint64) {
	putU32(b[0:4], uint32(v))
	putU32(b[4:8], uint32(v>>32))
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// ---- writer side ----

func (l *Log) writerLoop() {
	defer close(l.writerDone)
	ticker := time.NewTicker(l.opt.FsyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.quit:
			if !l.degraded() {
				l.nextRetry = time.Time{} // final drain is best-effort, no backoff gate
				l.flushBatch()
			}
			if n := len(l.pending); n > 0 {
				l.opt.Logger.Errorf("wal: closing with %d buffered bytes unpersisted", n)
			}
			if l.f != nil {
				if err := l.f.Sync(); err != nil {
					l.ioErrors.Add(1)
					l.opt.Logger.Errorf("wal: close sync: %v", err)
				}
				_ = l.f.Close()
				l.f = nil
			}
			return
		case <-ticker.C:
			l.tick()
		case <-l.notify:
			l.tick()
		case ack := <-l.compactReq:
			l.compact()
			if ack != nil {
				close(ack)
			}
		}
		if l.f != nil && len(l.pending) == 0 && l.fragRemain == 0 && l.segSize >= l.opt.SegmentBytes {
			l.rotate()
		}
	}
}

// tick is one writer wakeup: flush when healthy, probe when degraded.
func (l *Log) tick() {
	if l.degraded() {
		l.drainRing() // pre-degradation residue still moves to pending
		l.maybeProbe(time.Now())
		return
	}
	l.flushBatch()
}

// drainRing moves ring bytes into the writer's pending buffer. The
// copy-out under l.mu is the only moment producers and the writer touch
// the same bytes. pending is soft-capped at one RingBytes: past that
// the bytes stay in the ring, whose own overflow accounting (drop +
// compact) then applies.
func (l *Log) drainRing() {
	l.mu.Lock()
	n := l.rused
	if n == 0 || len(l.pending) >= l.opt.RingBytes {
		l.mu.Unlock()
		return
	}
	pl := len(l.pending)
	if cap(l.pending) < pl+n {
		np := make([]byte, pl, max(2*(pl+n), 1<<20))
		copy(np, l.pending)
		l.pending = np
	}
	l.pending = l.pending[:pl+n]
	start := l.rpos - l.rused
	if start < 0 {
		start += len(l.ring)
	}
	m := copy(l.pending[pl:], l.ring[start:min(len(l.ring), start+n)])
	if m < n {
		copy(l.pending[pl+m:], l.ring[:n-m])
	}
	l.rused = 0
	l.mu.Unlock()
}

// retryDue reports whether the failure backoff window has passed.
func (l *Log) retryDue() bool {
	return l.nextRetry.IsZero() || !time.Now().Before(l.nextRetry)
}

// flushBatch drains the ring and writes+fsyncs the pending buffer to
// the active segment — one batch, one sync. On failure pending is
// RETAINED and retried after a capped backoff; only bytes actually
// accepted by the file advance the segment size, and the fsync counter
// moves only on a successful sync. Repeated failures trip the
// degradation machine.
func (l *Log) flushBatch() {
	l.drainRing()
	if l.f != nil && len(l.pending) == 0 && !l.needSync {
		return
	}
	if !l.retryDue() {
		return
	}
	if l.f == nil {
		// A failed rotate left no active segment; reopen rather than
		// discard — even with an empty ring, so the failure streak keeps
		// counting toward degradation instead of stalling at one.
		if err := l.openSegment(); err != nil {
			l.ioFailure(fmt.Errorf("reopen segment: %w", err))
			return
		}
	}
	for len(l.pending) > 0 {
		n, err := l.f.Write(l.pending)
		if n > 0 {
			l.consumeWritten(n)
			l.needSync = true
		}
		if err != nil {
			l.ioFailure(fmt.Errorf("append: %w", err))
			return
		}
	}
	if l.needSync {
		t0 := time.Now()
		if err := l.f.Sync(); err != nil {
			l.ioFailure(fmt.Errorf("fsync: %w", err))
			return
		}
		l.fsyncLat.Record(time.Since(t0))
		l.fsyncs.Add(1)
		l.needSync = false
	}
	l.ioSuccess()
}

// consumeWritten advances pending and the frame-alignment cursors past
// n bytes the file accepted. A short write can cut a frame; the cut
// frame's tail stays at the head of pending (a retry into the same file
// completes it), and cleanSize tracks the last whole-frame offset so an
// abandoned segment can be truncated to a frame-clean prefix.
func (l *Log) consumeWritten(n int) {
	off := 0
	if l.fragRemain > 0 {
		k := min(n, l.fragRemain)
		l.fragRemain -= k
		l.segSize += int64(k)
		if l.fragRemain == 0 {
			l.cleanSize = l.segSize
		}
		off = k
	}
	if rem := n - off; rem > 0 {
		b := frameAlignedPrefix(l.pending[off:], rem)
		l.segSize += int64(rem)
		l.cleanSize += int64(b)
		if b < rem {
			frameLen := recHeaderLen + int(leU32(l.pending[off+b+4:off+b+8]))
			l.fragRemain = frameLen - (rem - b)
		}
	}
	l.pending = l.pending[:copy(l.pending, l.pending[n:])]
	l.activeBytes.Store(l.segSize)
}

// frameAlignedPrefix returns the largest frame-boundary offset <= n in
// b, which must itself start at a frame boundary.
func frameAlignedPrefix(b []byte, n int) int {
	off := 0
	for off < n {
		frameLen := recHeaderLen + int(leU32(b[off+4:off+8]))
		if off+frameLen > n {
			break
		}
		off += frameLen
	}
	return off
}

// ioFailure records one failed flush attempt: count it, back off
// (capped), flag compaction on ENOSPC so space is reclaimed from the
// live set, and degrade once the consecutive-failure budget is spent.
func (l *Log) ioFailure(err error) {
	l.ioErrors.Add(1)
	l.failStreak++
	if errors.Is(err, syscall.ENOSPC) {
		l.needCompact.Store(true)
	}
	if l.backoff == 0 {
		l.backoff = l.opt.FsyncInterval
	} else {
		l.backoff *= 2
	}
	if l.backoff > maxIOBackoff {
		l.backoff = maxIOBackoff
	}
	l.nextRetry = time.Now().Add(l.backoff)
	l.opt.Logger.Errorf("wal: %v (failure %d/%d, retry in %v)", err, l.failStreak, l.opt.DegradeAfter, l.backoff)
	if l.failStreak >= l.opt.DegradeAfter && !l.degraded() {
		l.enterDegraded(err)
	}
}

// ioSuccess resets the failure machine after a fully-flushed batch.
func (l *Log) ioSuccess() {
	l.failStreak = 0
	l.backoff = 0
	l.nextRetry = time.Time{}
}

// enterDegraded flips the log into degraded mode: producers stop
// enqueuing (dropped_degraded counts what the cache keeps serving but
// the log no longer covers), the failing active segment is abandoned at
// its last frame-clean offset, and the recovery probe takes over.
func (l *Log) enterDegraded(cause error) {
	l.state.Store(stateDegraded)
	l.degradedSince.Store(time.Now().UnixNano())
	l.degradedEntries.Add(1)
	l.nextProbe = time.Now().Add(l.opt.ProbeInterval)
	l.abandonActive()
	l.opt.Logger.Errorf("wal: DEGRADED after %d consecutive I/O failures (%v); new appends are not persisted until recovery", l.failStreak, cause)
}

// abandonActive gives up on the active segment: best-effort close,
// truncate to the last frame-clean offset, and register the surviving
// prefix as sealed so replay and audit still use it. The registered
// bytes may not all be fsync-durable — the post-recovery compaction
// rewrites the log from the live store and retires this segment. A
// partially-written frame loses its head to the truncate, so its tail
// is dropped from pending and counted.
func (l *Log) abandonActive() {
	if l.f == nil {
		return
	}
	_ = l.f.Close()
	l.f = nil
	if l.fragRemain > 0 {
		l.pending = l.pending[:copy(l.pending, l.pending[l.fragRemain:])]
		l.fragRemain = 0
		l.droppedRecords.Add(1)
	}
	path := l.segPath(l.seq)
	if l.cleanSize <= fileHeaderLen {
		_ = l.fs.Remove(path)
	} else {
		if l.cleanSize < l.segSize {
			_ = l.fs.Truncate(path, l.cleanSize)
		}
		l.segMu.Lock()
		l.sealed = append(l.sealed, segment{seq: l.seq, path: path, size: l.cleanSize})
		l.segMu.Unlock()
		l.sealedBytes.Add(l.cleanSize)
	}
	l.segSize, l.cleanSize = 0, 0
	l.activeBytes.Store(0)
}

// maybeProbe attempts recovery from degraded mode: open a fresh
// segment; if the disk accepts it (create + header write + fsync), flip
// back to healthy, log the durability gap, flush the retained pending
// bytes, and schedule a compaction to close the gap from the store's
// authoritative live set.
func (l *Log) maybeProbe(now time.Time) {
	if now.Before(l.nextProbe) {
		return
	}
	l.nextProbe = now.Add(l.opt.ProbeInterval)
	if err := l.openSegment(); err != nil {
		l.ioErrors.Add(1)
		l.opt.Logger.Errorf("wal: recovery probe: %v", err)
		return
	}
	gapStart := time.Unix(0, l.degradedSince.Load())
	l.state.Store(stateHealthy)
	l.degradedSince.Store(0)
	l.recoveries.Add(1)
	l.ioSuccess()
	l.needCompact.Store(true)
	l.opt.Logger.Errorf("wal: recovered to healthy; durability gap %s → %s (%v); compaction scheduled to close it",
		gapStart.Format(time.RFC3339Nano), now.Format(time.RFC3339Nano), now.Sub(gapStart))
	l.flushBatch()
}

// rotate seals the active segment and opens the next. Writer only. A
// seal or open failure keeps the current state for retry and feeds the
// failure machine — it never leaves batches silently discarded.
func (l *Log) rotate() {
	if l.f == nil {
		return
	}
	if err := l.sealActive(); err != nil {
		l.ioFailure(err)
		return
	}
	l.rotations.Add(1)
	if err := l.openSegment(); err != nil {
		l.ioFailure(fmt.Errorf("rotate: %w", err))
	}
}

// sealActive syncs, closes, and registers the active segment as sealed.
// A Sync failure is propagated WITHOUT sealing: the segment may hold
// un-durable bytes, and registering it would hand audit and replay a
// file known to be suspect — it stays active and the seal is retried. A
// Close failure after a successful Sync cannot lose data (every byte is
// already durable), so it is counted and the seal proceeds.
func (l *Log) sealActive() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("seal sync: %w", err)
	}
	if err := l.f.Close(); err != nil {
		l.ioErrors.Add(1)
		l.opt.Logger.Errorf("wal: seal close: %v", err)
	}
	l.segMu.Lock()
	l.sealed = append(l.sealed, segment{seq: l.seq, path: l.segPath(l.seq), size: l.segSize})
	l.segMu.Unlock()
	l.sealedBytes.Add(l.segSize)
	l.f = nil
	l.activeBytes.Store(0)
	return nil
}

// ---- compaction trigger ----

// compactCooldown rate-limits ratio-triggered compactions: a snapshot
// of a large store is real work, and the ratio stays elevated until the
// snapshot lands.
const compactCooldown = 5 * time.Second

// MaybeCompact asks the writer to compact when the log has outgrown the
// live set (or a dropped record / replay corruption left it
// inconsistent). Called from the server's Maintain loop — cheap enough
// for every tick; the actual work runs on the writer goroutine.
func (l *Log) MaybeCompact() {
	if !l.started || l.src == nil {
		return
	}
	want := l.needCompact.Load()
	if !want {
		disk := l.activeBytes.Load() + l.sealedBytes.Load()
		if disk > l.opt.CompactMinBytes {
			live := int64(l.src.Snapshot().Bytes)
			if float64(disk) > l.opt.CompactFactor*float64(live) {
				want = true
			}
		}
	}
	if !want {
		return
	}
	now := time.Now().UnixNano()
	last := l.lastCompact.Load()
	if now-last < int64(compactCooldown) || !l.lastCompact.CompareAndSwap(last, now) {
		return
	}
	select {
	case l.compactReq <- nil:
	default:
	}
}

// Compact runs a compaction synchronously (blocks until the writer has
// finished it). Test and tooling surface; production uses MaybeCompact.
func (l *Log) Compact() {
	ack := make(chan struct{})
	select {
	case l.compactReq <- ack:
		select {
		case <-ack:
		case <-l.writerDone:
		}
	case <-l.quit:
	}
}

// ---- state accessors ----

func (l *Log) degraded() bool { return l.state.Load() == stateDegraded }

// Degraded reports whether the log is in degraded mode: the disk is
// refusing writes and new mutations are not being persisted.
func (l *Log) Degraded() bool { return l.degraded() }

// StateString returns "healthy" or "degraded" for the stats surface.
func (l *Log) StateString() string {
	if l.degraded() {
		return "degraded"
	}
	return "healthy"
}

// DegradedSince returns when the log entered degraded mode, or the zero
// time when healthy.
func (l *Log) DegradedSince() time.Time {
	n := l.degradedSince.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// ---- stats ----

// ReplayStats describes what a boot-time Replay found.
type ReplayStats struct {
	Segments    int   // segment files scanned
	Records     int64 // valid records applied (or skipped as dead)
	Bytes       int64 // valid record bytes
	Sets        int64
	Deletes     int64
	Touches     int64
	Flushes     int64
	SkippedDead int64 // set records already past deadline/flush epoch
	// TornRecords counts records cut short by EOF in the final segment
	// (the torn tail of a hard kill); CrcErrors counts complete frames
	// that failed CRC or frame validation — corruption, not a tear.
	TornRecords    int64
	CrcErrors      int64
	TruncatedBytes int64 // bytes truncated off the final segment's tail
	FailedRestores int64 // records that did not re-insert (e.g. over ceiling)
}

// Stats is a point-in-time counter snapshot for the stats/metrics surfaces.
type Stats struct {
	AppendedRecords int64
	AppendedBytes   int64
	DroppedRecords  int64
	DroppedDegraded int64
	DegradedEntries int64
	Recoveries      int64
	Fsyncs          int64
	IOErrors        int64
	Rotations       int64
	Compactions     int64
	SnapshotRecords int64
	SnapshotBytes   int64
	Segments        int
	DiskBytes       int64
	AuditRuns       int64
	AuditRecords    int64
	AuditErrors     int64
	State           string
	Replay          ReplayStats
}

// Stats returns the current counters.
func (l *Log) Stats() Stats {
	l.segMu.Lock()
	segs := len(l.sealed)
	l.segMu.Unlock()
	if l.activeBytes.Load() > 0 {
		segs++
	}
	return Stats{
		AppendedRecords: l.appendedRecords.Load(),
		AppendedBytes:   l.appendedBytes.Load(),
		DroppedRecords:  l.droppedRecords.Load(),
		DroppedDegraded: l.droppedDegraded.Load(),
		DegradedEntries: l.degradedEntries.Load(),
		Recoveries:      l.recoveries.Load(),
		Fsyncs:          l.fsyncs.Load(),
		IOErrors:        l.ioErrors.Load(),
		Rotations:       l.rotations.Load(),
		Compactions:     l.compactions.Load(),
		SnapshotRecords: l.snapshotRecords.Load(),
		SnapshotBytes:   l.snapshotBytes.Load(),
		Segments:        segs,
		DiskBytes:       l.activeBytes.Load() + l.sealedBytes.Load(),
		AuditRuns:       l.auditRuns.Load(),
		AuditRecords:    l.auditRecords.Load(),
		AuditErrors:     l.auditErrors.Load(),
		State:           l.StateString(),
		Replay:          l.replay,
	}
}

// FsyncLatency exposes the fsync-duration recorder for /metrics.
func (l *Log) FsyncLatency() *stats.LatencyRecorder { return l.fsyncLat }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
