// Package wal is alaskad's optional persistence layer: an append-only
// "pack log" of CRC-checked records (set/delete/touch/flush-epoch) that
// makes a kill -9 restart warm instead of cold.
//
// The design keeps durability entirely off the request path. Mutating
// operations append an encoded record to a bounded in-memory ring —
// a fixed buffer, a mutex, no allocation, no syscall — and a dedicated
// writer goroutine drains the ring in batches, appending to the active
// segment file and fsyncing once per batch (at most once per
// FsyncInterval under steady load). The request path therefore stays at
// exactly 0 allocs/op and never blocks on disk; the price is a bounded
// durability window — a hard kill loses at most the appends since the
// last completed fsync batch.
//
// If the ring ever fills (a stalled disk), records are dropped and
// counted rather than blocking the request path; the log is then marked
// for compaction, which rewrites it from the store's authoritative live
// set and restores log/store consistency.
//
// Compaction piggybacks on the server's Maintain loop (MaybeCompact)
// the same way defrag does: when the log grows past CompactFactor times
// the live set, the writer seals the active segment, streams the live
// set into a snapshot segment that slots between the sealed history and
// the new active segment, atomically renames it into place, and deletes
// the superseded files. Because every record is absolute post-state,
// replaying the appends that raced the snapshot on top of it is
// convergent.
//
// A background audit pass re-reads sealed segments on a timer and
// verifies every frame's CRC, so silent corruption is surfaced by a
// counter long before the next restart trips over it.
package wal

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alaska/internal/kv"
	"alaska/internal/logx"
	"alaska/internal/stats"
)

// Options configures a Log. Zero values take the documented defaults.
type Options struct {
	// Dir is the log directory (alaskad's -data-dir). Created if absent.
	Dir string
	// FsyncInterval is the batch window: the writer drains the ring and
	// fsyncs at least this often, bounding the data-loss window of a
	// hard kill. Default 100ms.
	FsyncInterval time.Duration
	// RingBytes sizes the in-memory ring between the request path and
	// the writer. At the default 100ms window the ring must absorb one
	// window's worth of encoded mutations; overflow drops records (and
	// forces a compaction) instead of blocking. Default 8 MiB.
	RingBytes int
	// SegmentBytes rotates the active segment past this size. Default 64 MiB.
	SegmentBytes int64
	// AuditInterval is the background CRC-audit period; the first pass
	// runs ~1s after Start. Negative disables the audit. Default 60s.
	AuditInterval time.Duration
	// CompactMinBytes is the log size below which MaybeCompact never
	// triggers (compacting a tiny log is churn for nothing). Default 8 MiB.
	CompactMinBytes int64
	// CompactFactor triggers compaction when on-disk bytes exceed this
	// multiple of the store's live charged bytes. Default 2.0.
	CompactFactor float64
	// Logger receives lifecycle and error output; nil = silent.
	Logger *logx.Logger
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.FsyncInterval <= 0 {
		out.FsyncInterval = 100 * time.Millisecond
	}
	if out.RingBytes == 0 {
		out.RingBytes = 8 << 20
	}
	if out.SegmentBytes == 0 {
		out.SegmentBytes = 64 << 20
	}
	if out.AuditInterval == 0 {
		out.AuditInterval = 60 * time.Second
	}
	if out.CompactMinBytes == 0 {
		out.CompactMinBytes = 8 << 20
	}
	if out.CompactFactor == 0 {
		out.CompactFactor = 2.0
	}
	return out
}

// segment is one immutable (sealed) log file.
type segment struct {
	seq  uint64
	path string
	size int64
}

// Log is an append-only pack log over a directory of segment files.
// Producers (request goroutines, via the kv.MutationLog hooks) append
// to the ring; one writer goroutine owns all file I/O.
type Log struct {
	opt Options

	// Ring state, guarded by mu. The staging arrays are fields rather
	// than stack temporaries so the producer path provably never
	// allocates.
	mu    sync.Mutex
	ring  []byte
	rpos  int // next write offset into ring
	rused int
	phead [20]byte
	fhdr  [recHeaderLen]byte

	notify     chan struct{}
	compactReq chan chan struct{}
	quit       chan struct{}
	writerDone chan struct{}
	auditDone  chan struct{}
	closeOnce  sync.Once
	started    bool

	// Writer-goroutine-owned file state.
	f       *os.File
	seq     uint64
	segSize int64
	drain   []byte
	nextSeq uint64

	// Sealed-segment registry, shared between writer (rotate/compact)
	// and the audit pass.
	segMu  sync.Mutex
	sealed []segment

	// Compaction source: the store whose live set is authoritative, and
	// a dedicated session parked in idle state except during dumps.
	src     *kv.ShardedStore
	srcSess kv.Session

	needCompact atomic.Bool
	lastCompact atomic.Int64 // unixnano of last MaybeCompact trigger

	appendedRecords atomic.Int64
	appendedBytes   atomic.Int64
	droppedRecords  atomic.Int64
	fsyncs          atomic.Int64
	ioErrors        atomic.Int64
	rotations       atomic.Int64
	compactions     atomic.Int64
	snapshotRecords atomic.Int64
	snapshotBytes   atomic.Int64
	activeBytes     atomic.Int64
	sealedBytes     atomic.Int64
	auditRuns       atomic.Int64
	auditRecords    atomic.Int64
	auditErrors     atomic.Int64
	fsyncLat        *stats.LatencyRecorder

	replay ReplayStats // set by Replay, before Start
}

// Open prepares a Log over dir: creates the directory if needed,
// removes stray temp files from an interrupted compaction, and indexes
// the existing segments. No goroutines run and no segment is written
// until Start; call Replay in between to rebuild a store.
func Open(opt Options) (*Log, error) {
	l := &Log{
		opt:        opt.withDefaults(),
		notify:     make(chan struct{}, 1),
		compactReq: make(chan chan struct{}, 1),
		quit:       make(chan struct{}),
		writerDone: make(chan struct{}),
		auditDone:  make(chan struct{}),
		fsyncLat:   stats.NewLatencyRecorder(),
	}
	l.ring = make([]byte, l.opt.RingBytes)
	if err := os.MkdirAll(l.opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	names, err := os.ReadDir(l.opt.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		full := filepath.Join(l.opt.Dir, name)
		if strings.HasSuffix(name, ".tmp") {
			// An interrupted compaction's half-written snapshot: the old
			// segments it would have replaced are all still present.
			_ = os.Remove(full)
			continue
		}
		seq, ok := parseSegName(name)
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		l.sealed = append(l.sealed, segment{seq: seq, path: full, size: info.Size()})
	}
	sort.Slice(l.sealed, func(i, j int) bool { return l.sealed[i].seq < l.sealed[j].seq })
	l.nextSeq = 1
	if n := len(l.sealed); n > 0 {
		l.nextSeq = l.sealed[n-1].seq + 1
	}
	l.recountSealed()
	return l, nil
}

func segName(seq uint64) string { return fmt.Sprintf("pack-%08d.log", seq) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "pack-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "pack-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

func (l *Log) segPath(seq uint64) string { return filepath.Join(l.opt.Dir, segName(seq)) }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opt.Dir }

// Start opens a fresh active segment after the replayed history and
// launches the writer and audit goroutines. store (may be nil in
// low-level tests) becomes the compaction source; its live set is what
// a compacted log is rewritten to.
func (l *Log) Start(store *kv.ShardedStore) error {
	l.src = store
	if store != nil {
		l.srcSess = store.NewSession()
		// Parked idle so a defrag barrier never rendezvouses with a
		// session that only wakes to dump; compact exits idle around the
		// dump itself.
		l.srcSess.EnterIdle()
	}
	if err := l.openSegment(); err != nil {
		return err
	}
	l.started = true
	go l.writerLoop()
	go l.auditLoop()
	return nil
}

// openSegment creates the next active segment with a synced header.
// Writer-goroutine (or pre-Start) only.
func (l *Log) openSegment() error {
	seq := l.nextSeq
	f, err := os.OpenFile(l.segPath(seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := fileHeader()
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.syncDir()
	l.nextSeq = seq + 1
	l.f, l.seq, l.segSize = f, seq, fileHeaderLen
	l.activeBytes.Store(l.segSize)
	return nil
}

// syncDir fsyncs the log directory so renames/creates/removes are durable.
func (l *Log) syncDir() {
	d, err := os.Open(l.opt.Dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

func (l *Log) recountSealed() {
	var n int64
	for _, sg := range l.sealed {
		n += sg.size
	}
	l.sealedBytes.Store(n)
}

// Close drains the ring, fsyncs, and stops the goroutines. After a
// clean Close the log is byte-complete: a restart replays every
// acknowledged mutation. Safe to call multiple times.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		close(l.quit)
		if l.started {
			<-l.writerDone
			<-l.auditDone
		}
		if l.srcSess != nil {
			l.srcSess.ExitIdle()
			_ = l.srcSess.Close()
		}
	})
	return nil
}

// ---- producer side (request path; kv.MutationLog implementation) ----

// LogSet implements kv.MutationLog.
func (l *Log) LogSet(key, value []byte, expireAt, storedAt time.Time) {
	l.mu.Lock()
	putU64(l.phead[0:8], uint64(nano(expireAt)))
	putU64(l.phead[8:16], uint64(storedAt.UnixNano()))
	putU32(l.phead[16:20], uint32(len(key)))
	l.enqueueLocked(recSet, l.phead[:20], key, value)
	over := l.rused > len(l.ring)/2
	l.mu.Unlock()
	if over {
		l.wake()
	}
}

// LogDelete implements kv.MutationLog.
func (l *Log) LogDelete(key []byte) {
	l.mu.Lock()
	l.enqueueLocked(recDelete, key, nil, nil)
	over := l.rused > len(l.ring)/2
	l.mu.Unlock()
	if over {
		l.wake()
	}
}

// LogTouch implements kv.MutationLog.
func (l *Log) LogTouch(key []byte, expireAt time.Time) {
	l.mu.Lock()
	putU64(l.phead[0:8], uint64(nano(expireAt)))
	l.enqueueLocked(recTouch, l.phead[:8], key, nil)
	over := l.rused > len(l.ring)/2
	l.mu.Unlock()
	if over {
		l.wake()
	}
}

// LogFlushAll implements kv.MutationLog.
func (l *Log) LogFlushAll(at time.Time) {
	l.mu.Lock()
	putU64(l.phead[0:8], uint64(nano(at)))
	l.enqueueLocked(recFlush, l.phead[:8], nil, nil)
	l.mu.Unlock()
	l.wake()
}

// enqueueLocked frames one record directly into the ring. Caller holds
// l.mu. On overflow the record is dropped, counted, and the log marked
// for compaction — the request path never blocks on the disk.
func (l *Log) enqueueLocked(typ byte, a, b, c []byte) {
	payload := len(a) + len(b) + len(c)
	total := recHeaderLen + payload
	if l.rused+total > len(l.ring) || payload > maxPayload {
		l.droppedRecords.Add(1)
		l.needCompact.Store(true)
		return
	}
	h := l.fhdr[:]
	putU16(h[0:2], recMagic)
	h[2], h[3] = typ, 0
	putU32(h[4:8], uint32(payload))
	crc := crc32.Update(0, castagnoli, h[2:8])
	crc = crc32.Update(crc, castagnoli, a)
	crc = crc32.Update(crc, castagnoli, b)
	crc = crc32.Update(crc, castagnoli, c)
	putU32(h[8:12], crc)
	l.putLocked(h)
	l.putLocked(a)
	l.putLocked(b)
	l.putLocked(c)
	l.appendedRecords.Add(1)
	l.appendedBytes.Add(int64(total))
}

// putLocked copies b into the ring at the write position, wrapping.
// Caller holds l.mu and has verified space.
func (l *Log) putLocked(b []byte) {
	if len(b) == 0 {
		return
	}
	n := copy(l.ring[l.rpos:], b)
	if n < len(b) {
		copy(l.ring, b[n:])
	}
	l.rpos = (l.rpos + len(b)) % len(l.ring)
	l.rused += len(b)
}

func (l *Log) wake() {
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
func putU64(b []byte, v uint64) {
	putU32(b[0:4], uint32(v))
	putU32(b[4:8], uint32(v>>32))
}

// ---- writer side ----

func (l *Log) writerLoop() {
	defer close(l.writerDone)
	ticker := time.NewTicker(l.opt.FsyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.quit:
			l.flushBatch()
			if l.f != nil {
				_ = l.f.Sync()
				_ = l.f.Close()
				l.f = nil
			}
			return
		case <-ticker.C:
			l.flushBatch()
		case <-l.notify:
			l.flushBatch()
		case ack := <-l.compactReq:
			l.compact()
			if ack != nil {
				close(ack)
			}
		}
		if l.segSize >= l.opt.SegmentBytes {
			l.rotate()
		}
	}
}

// flushBatch drains the ring into the active segment and fsyncs — one
// batch, one sync. The copy-out under l.mu is the only moment producers
// and the writer touch the same bytes.
func (l *Log) flushBatch() {
	l.mu.Lock()
	n := l.rused
	if n == 0 {
		l.mu.Unlock()
		return
	}
	if cap(l.drain) < n {
		l.drain = make([]byte, 0, max(n*2, 1<<20))
	}
	l.drain = l.drain[:n]
	start := l.rpos - l.rused
	if start < 0 {
		start += len(l.ring)
	}
	m := copy(l.drain, l.ring[start:min(len(l.ring), start+n)])
	if m < n {
		copy(l.drain[m:], l.ring[:n-m])
	}
	l.rused = 0
	l.mu.Unlock()

	if l.f == nil {
		return
	}
	if _, err := l.f.Write(l.drain); err != nil {
		l.ioErrors.Add(1)
		l.opt.Logger.Errorf("wal: append: %v", err)
		return
	}
	l.segSize += int64(n)
	l.activeBytes.Store(l.segSize)
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		l.ioErrors.Add(1)
		l.opt.Logger.Errorf("wal: fsync: %v", err)
		return
	}
	l.fsyncLat.Record(time.Since(t0))
	l.fsyncs.Add(1)
}

// rotate seals the active segment and opens the next. Writer only.
func (l *Log) rotate() {
	if l.f == nil {
		return
	}
	l.sealActive()
	l.rotations.Add(1)
	if err := l.openSegment(); err != nil {
		l.ioErrors.Add(1)
		l.opt.Logger.Errorf("wal: rotate: %v", err)
	}
}

// sealActive syncs, closes, and registers the active segment as sealed.
func (l *Log) sealActive() {
	_ = l.f.Sync()
	_ = l.f.Close()
	l.segMu.Lock()
	l.sealed = append(l.sealed, segment{seq: l.seq, path: l.segPath(l.seq), size: l.segSize})
	l.segMu.Unlock()
	l.sealedBytes.Add(l.segSize)
	l.f = nil
	l.activeBytes.Store(0)
}

// ---- compaction trigger ----

// compactCooldown rate-limits ratio-triggered compactions: a snapshot
// of a large store is real work, and the ratio stays elevated until the
// snapshot lands.
const compactCooldown = 5 * time.Second

// MaybeCompact asks the writer to compact when the log has outgrown the
// live set (or a dropped record / replay corruption left it
// inconsistent). Called from the server's Maintain loop — cheap enough
// for every tick; the actual work runs on the writer goroutine.
func (l *Log) MaybeCompact() {
	if !l.started || l.src == nil {
		return
	}
	want := l.needCompact.Load()
	if !want {
		disk := l.activeBytes.Load() + l.sealedBytes.Load()
		if disk > l.opt.CompactMinBytes {
			live := int64(l.src.Snapshot().Bytes)
			if float64(disk) > l.opt.CompactFactor*float64(live) {
				want = true
			}
		}
	}
	if !want {
		return
	}
	now := time.Now().UnixNano()
	last := l.lastCompact.Load()
	if now-last < int64(compactCooldown) || !l.lastCompact.CompareAndSwap(last, now) {
		return
	}
	select {
	case l.compactReq <- nil:
	default:
	}
}

// Compact runs a compaction synchronously (blocks until the writer has
// finished it). Test and tooling surface; production uses MaybeCompact.
func (l *Log) Compact() {
	ack := make(chan struct{})
	select {
	case l.compactReq <- ack:
		select {
		case <-ack:
		case <-l.writerDone:
		}
	case <-l.quit:
	}
}

// ---- stats ----

// ReplayStats describes what a boot-time Replay found.
type ReplayStats struct {
	Segments    int   // segment files scanned
	Records     int64 // valid records applied (or skipped as dead)
	Bytes       int64 // valid record bytes
	Sets        int64
	Deletes     int64
	Touches     int64
	Flushes     int64
	SkippedDead int64 // set records already past deadline/flush epoch
	// TornRecords counts records cut short by EOF in the final segment
	// (the torn tail of a hard kill); CrcErrors counts complete frames
	// that failed CRC or frame validation — corruption, not a tear.
	TornRecords    int64
	CrcErrors      int64
	TruncatedBytes int64 // bytes truncated off the final segment's tail
	FailedRestores int64 // records that did not re-insert (e.g. over ceiling)
}

// Stats is a point-in-time counter snapshot for the stats/metrics surfaces.
type Stats struct {
	AppendedRecords int64
	AppendedBytes   int64
	DroppedRecords  int64
	Fsyncs          int64
	IOErrors        int64
	Rotations       int64
	Compactions     int64
	SnapshotRecords int64
	SnapshotBytes   int64
	Segments        int
	DiskBytes       int64
	AuditRuns       int64
	AuditRecords    int64
	AuditErrors     int64
	Replay          ReplayStats
}

// Stats returns the current counters.
func (l *Log) Stats() Stats {
	l.segMu.Lock()
	segs := len(l.sealed)
	l.segMu.Unlock()
	if l.activeBytes.Load() > 0 {
		segs++
	}
	return Stats{
		AppendedRecords: l.appendedRecords.Load(),
		AppendedBytes:   l.appendedBytes.Load(),
		DroppedRecords:  l.droppedRecords.Load(),
		Fsyncs:          l.fsyncs.Load(),
		IOErrors:        l.ioErrors.Load(),
		Rotations:       l.rotations.Load(),
		Compactions:     l.compactions.Load(),
		SnapshotRecords: l.snapshotRecords.Load(),
		SnapshotBytes:   l.snapshotBytes.Load(),
		Segments:        segs,
		DiskBytes:       l.activeBytes.Load() + l.sealedBytes.Load(),
		AuditRuns:       l.auditRuns.Load(),
		AuditRecords:    l.auditRecords.Load(),
		AuditErrors:     l.auditErrors.Load(),
		Replay:          l.replay,
	}
}

// FsyncLatency exposes the fsync-duration recorder for /metrics.
func (l *Log) FsyncLatency() *stats.LatencyRecorder { return l.fsyncLat }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
