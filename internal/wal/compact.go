package wal

import (
	"bufio"
	"os"
	"time"
)

// compact rewrites the log to the store's live set. Runs on the writer
// goroutine (so it owns all file state). Protocol:
//
//  1. Drain the ring and seal the active segment N. Reserve sequence
//     N+1 for the snapshot and open a new active segment N+2, so
//     appends racing the dump keep landing — on a file that replays
//     AFTER the snapshot.
//  2. Stream the live set (flush epoch first, then every live entry
//     with its original deadline and store timestamp) into
//     pack-(N+1).log.tmp.
//  3. fsync, atomically rename to pack-(N+1).log, fsync the directory.
//  4. Delete every segment with seq <= N: the snapshot covers them.
//
// Correctness rests on records being absolute post-state: any mutation
// that landed in N+2 before the dump read its key is also reflected in
// the snapshot, and re-applying it on top is convergent, not double
// counting. A crash at any point leaves either the old segments intact
// (before the rename) or the snapshot plus the new tail (after) — both
// replay to the same store. The half-written .tmp of a crashed
// compaction is deleted at Open.
//
// A degraded or struggling disk skips the attempt: compaction starts by
// sealing the active segment, and sealing with unflushed pending bytes
// (or a partially-written frame) would freeze a file the retry path
// still needs to complete. MaybeCompact re-triggers once the flush path
// is clean again.
func (l *Log) compact() {
	if l.src == nil || l.f == nil || l.degraded() {
		return
	}
	l.needCompact.Store(false)
	l.flushBatch()
	if len(l.pending) > 0 || l.fragRemain > 0 || l.f == nil {
		l.needCompact.Store(true) // disk is struggling; retry after recovery
		return
	}
	if err := l.sealActive(); err != nil {
		l.needCompact.Store(true)
		l.ioFailure(err)
		return
	}
	snapSeq := l.nextSeq
	l.nextSeq++
	if err := l.openSegment(); err != nil {
		l.ioFailure(err)
		l.opt.Logger.Errorf("wal: compact: open active: %v", err)
		return
	}

	tmpPath := l.segPath(snapSeq) + ".tmp"
	tmp, err := l.fs.Create(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		l.ioErrors.Add(1)
		l.opt.Logger.Errorf("wal: compact: %v", err)
		return
	}
	bw := bufio.NewWriterSize(tmp, 1<<20)
	hdr := fileHeader()
	_, _ = bw.Write(hdr[:])

	var records, bytes int64
	var scratch []byte
	write := func(rec []byte) error {
		n, err := bw.Write(rec)
		records++
		bytes += int64(n)
		return err
	}
	fail := func(err error) {
		l.ioErrors.Add(1)
		l.opt.Logger.Errorf("wal: compact: %v", err)
		_ = tmp.Close()
		_ = l.fs.Remove(tmpPath)
	}

	start := time.Now()
	if fa := l.src.FlushEpoch(); !fa.IsZero() {
		scratch = appendFlushRecord(scratch[:0], fa)
		if err := write(scratch); err != nil {
			fail(err)
			return
		}
	}
	// The dump session leaves idle only for the dump itself; every few
	// hundred entries the ring is drained into the new active segment so
	// a long dump cannot overflow it.
	l.srcSess.ExitIdle()
	err = l.src.Dump(l.srcSess, func(key, value []byte, expireAt, storedAt time.Time) error {
		scratch = appendSetRecord(scratch[:0], key, value, expireAt, storedAt)
		if err := write(scratch); err != nil {
			return err
		}
		if records%512 == 0 {
			l.flushBatch()
		}
		return nil
	})
	l.srcSess.EnterIdle()
	if err != nil {
		fail(err)
		return
	}
	if err := bw.Flush(); err != nil {
		fail(err)
		return
	}
	if err := tmp.Sync(); err != nil {
		fail(err)
		return
	}
	if err := tmp.Close(); err != nil {
		fail(err)
		return
	}
	if err := l.fs.Rename(tmpPath, l.segPath(snapSeq)); err != nil {
		l.ioErrors.Add(1)
		l.opt.Logger.Errorf("wal: compact: rename: %v", err)
		_ = l.fs.Remove(tmpPath)
		return
	}
	l.syncDir()

	// Swap the sealed registry: drop everything the snapshot supersedes.
	snapSize := bytes + fileHeaderLen
	l.segMu.Lock()
	var kept []segment
	var keptBytes int64
	for _, sg := range l.sealed {
		if sg.seq < snapSeq {
			_ = l.fs.Remove(sg.path)
			continue
		}
		kept = append(kept, sg)
		keptBytes += sg.size
	}
	l.sealed = append(kept, segment{seq: snapSeq, path: l.segPath(snapSeq), size: snapSize})
	l.segMu.Unlock()
	l.sealedBytes.Store(keptBytes + snapSize)
	l.syncDir()

	l.compactions.Add(1)
	l.snapshotRecords.Store(records)
	l.snapshotBytes.Store(snapSize)
	l.opt.Logger.Infof("wal: compacted to %d records (%d bytes) in %v", records, snapSize, time.Since(start))
}
