package wal

// Warm-restart correctness: every test here drives the real producer
// ring, writer goroutine, and replay path over a temp directory, then
// proves a freshly replayed store is indistinguishable from the one
// that wrote the log — values, TTL deadlines, and the flush_all epoch
// included.

import (
	"fmt"
	"testing"
	"time"

	"alaska/internal/kv"
)

func newStore() *kv.ShardedStore {
	return kv.NewShardedStore(kv.NewMallocBackend(), 4, 0)
}

// openLog opens a started, store-attached log over dir with the audit
// disabled (tests that want the audit run it by hand via auditOnce).
func openLog(t *testing.T, dir string, store *kv.ShardedStore) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, FsyncInterval: 5 * time.Millisecond, AuditInterval: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Start(store); err != nil {
		t.Fatalf("start: %v", err)
	}
	store.SetMutationLog(l)
	return l
}

// replayInto opens the log at dir and replays it into a fresh store,
// which is returned alongside the stats. The log is left un-started.
func replayInto(t *testing.T, dir string, store *kv.ShardedStore) (*Log, ReplayStats) {
	t.Helper()
	l, err := Open(Options{Dir: dir, AuditInterval: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	sess := store.NewSession()
	defer sess.Close()
	rs, err := l.Replay(store, sess)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return l, rs
}

func mustSet(t *testing.T, s *kv.ShardedStore, sess kv.Session, key, value string, expireAt time.Time) {
	t.Helper()
	if _, err := s.SetEx(sess, key, []byte(value), kv.SetAlways, expireAt); err != nil {
		t.Fatalf("set %s: %v", key, err)
	}
}

func wantGet(t *testing.T, s *kv.ShardedStore, sess kv.Session, key, want string) {
	t.Helper()
	v, ok, err := s.GetInto(sess, []byte(key), nil)
	if err != nil {
		t.Fatalf("get %s: %v", key, err)
	}
	if !ok {
		t.Fatalf("get %s: miss, want %q", key, want)
	}
	if string(v) != want {
		t.Fatalf("get %s = %q, want %q", key, v, want)
	}
}

func wantMiss(t *testing.T, s *kv.ShardedStore, sess kv.Session, key string) {
	t.Helper()
	if v, ok, _ := s.GetInto(sess, []byte(key), nil); ok {
		t.Fatalf("get %s = %q, want miss", key, v)
	}
}

func TestWarmRestartRoundtrip(t *testing.T) {
	dir := t.TempDir()
	src := newStore()
	l := openLog(t, dir, src)
	sess := src.NewSession()

	far := time.Now().Add(time.Hour)
	mustSet(t, src, sess, "alpha", "one", time.Time{})
	mustSet(t, src, sess, "beta", "two", far)
	mustSet(t, src, sess, "gamma", "three", time.Time{})
	mustSet(t, src, sess, "alpha", "one-v2", time.Time{}) // overwrite
	if _, err := src.Del(sess, "gamma"); err != nil {
		t.Fatalf("del: %v", err)
	}
	// Touch through the public path so the record goes through the hook.
	if ok, err := src.Touch(sess, "beta", time.Time{}); err != nil || !ok {
		t.Fatalf("touch: ok=%v err=%v", ok, err)
	}
	sess.Close()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	dst := newStore()
	_, rs := replayInto(t, dir, dst)
	if rs.Sets != 4 || rs.Deletes != 1 || rs.Touches != 1 {
		t.Fatalf("replay stats: %+v", rs)
	}
	if rs.TornRecords != 0 || rs.CrcErrors != 0 {
		t.Fatalf("clean close replayed dirty: %+v", rs)
	}
	dsess := dst.NewSession()
	defer dsess.Close()
	wantGet(t, dst, dsess, "alpha", "one-v2")
	wantGet(t, dst, dsess, "beta", "two")
	wantMiss(t, dst, dsess, "gamma")
	if n := dst.Len(); n != 2 {
		t.Fatalf("replayed Len = %d, want 2", n)
	}
}

// TestReplayPreservesDeadlines proves TTLs come back as absolute
// deadlines: an entry that expired while the server was down is dead on
// arrival, one with remaining life survives with its original deadline.
func TestReplayPreservesDeadlines(t *testing.T) {
	dir := t.TempDir()
	src := newStore()
	now := time.Now()
	clock := now
	src.Clock = func() time.Time { return clock }
	l := openLog(t, dir, src)
	sess := src.NewSession()
	mustSet(t, src, sess, "short", "gone", now.Add(50*time.Millisecond))
	mustSet(t, src, sess, "long", "kept", now.Add(time.Hour))
	sess.Close()
	l.Close()

	// "Restart" 1s later: short's deadline has passed while down.
	dst := newStore()
	dst.Clock = func() time.Time { return now.Add(time.Second) }
	_, rs := replayInto(t, dir, dst)
	if rs.SkippedDead != 1 {
		t.Fatalf("SkippedDead = %d, want 1 (the expired entry)", rs.SkippedDead)
	}
	dsess := dst.NewSession()
	defer dsess.Close()
	wantMiss(t, dst, dsess, "short")
	wantGet(t, dst, dsess, "long", "kept")

	// And the survivor's deadline is the original absolute one: stepping
	// the clock past it kills the entry with no further writes.
	dst.Clock = func() time.Time { return now.Add(2 * time.Hour) }
	wantMiss(t, dst, dsess, "long")
}

// TestFlushEpochSurvivesRestart is the satellite bugfix regression: a
// flush_all — including a future-dated `flush_all <delay>` — must hold
// across a restart, killing exactly the entries stored before the epoch.
func TestFlushEpochSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	src := newStore()
	now := time.Now()
	clock := now
	src.Clock = func() time.Time { return clock }
	l := openLog(t, dir, src)
	sess := src.NewSession()
	mustSet(t, src, sess, "old", "doomed", time.Time{})
	src.FlushAll(now.Add(10 * time.Second)) // flush_all 10
	mustSet(t, src, sess, "mid", "also-doomed", time.Time{})
	clock = now.Add(11 * time.Second) // the epoch fires
	mustSet(t, src, sess, "fresh", "safe", time.Time{})
	sess.Close()
	l.Close()

	// Restart with the clock rewound to BEFORE the delayed epoch: the
	// pre-epoch entries are still live, and the epoch is still armed.
	dst := newStore()
	dclock := now.Add(time.Second)
	dst.Clock = func() time.Time { return dclock }
	_, rs := replayInto(t, dir, dst)
	if rs.Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1", rs.Flushes)
	}
	if dst.FlushEpoch().IsZero() {
		t.Fatal("replay dropped the pending flush epoch")
	}
	dsess := dst.NewSession()
	wantGet(t, dst, dsess, "old", "doomed")
	wantGet(t, dst, dsess, "mid", "also-doomed")
	// The epoch fires while running: the entries stored before it die,
	// the one stored after it survives — replay preserved each record's
	// original storedAt, which is what the epoch check compares against.
	dclock = now.Add(11 * time.Second)
	wantMiss(t, dst, dsess, "old")
	wantMiss(t, dst, dsess, "mid")
	wantGet(t, dst, dsess, "fresh", "safe")
	dsess.Close()

	// Restart AFTER the epoch has passed. "mid" (logged after the flush
	// record) is skipped at replay time and never materializes; "old"
	// (logged before it) replays and then dies lazily against the epoch.
	dst2 := newStore()
	dst2.Clock = func() time.Time { return now.Add(time.Minute) }
	_, rs2 := replayInto(t, dir, dst2)
	if rs2.SkippedDead != 1 {
		t.Fatalf("SkippedDead = %d, want 1 (the post-flush-record doomed entry)", rs2.SkippedDead)
	}
	d2 := dst2.NewSession()
	defer d2.Close()
	wantMiss(t, dst2, d2, "old")
	wantMiss(t, dst2, d2, "mid")
	wantGet(t, dst2, d2, "fresh", "safe")
}

// TestCompactRewritesLiveSet proves the snapshot protocol: overwrite
// churn makes the log much larger than the live set; a synchronous
// Compact shrinks it to ~the live set, and a restart from the compacted
// log recovers exactly the same contents.
func TestCompactRewritesLiveSet(t *testing.T) {
	dir := t.TempDir()
	src := newStore()
	l := openLog(t, dir, src)
	sess := src.NewSession()
	for round := 0; round < 50; round++ {
		for k := 0; k < 20; k++ {
			mustSet(t, src, sess, fmt.Sprintf("key-%02d", k), fmt.Sprintf("v%d-%d", round, k), time.Time{})
		}
	}
	for k := 10; k < 20; k++ {
		if _, err := src.Del(sess, fmt.Sprintf("key-%02d", k)); err != nil {
			t.Fatalf("del: %v", err)
		}
	}
	sess.Close()

	l.Compact()
	st := l.Stats()
	if st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	if st.SnapshotRecords != 10 {
		t.Fatalf("SnapshotRecords = %d, want 10 live entries", st.SnapshotRecords)
	}
	if st.DiskBytes > st.AppendedBytes/10 {
		t.Fatalf("compaction left %d bytes on disk (appended %d): churn not reclaimed", st.DiskBytes, st.AppendedBytes)
	}
	l.Close()

	dst := newStore()
	_, rs := replayInto(t, dir, dst)
	if rs.TornRecords != 0 || rs.CrcErrors != 0 {
		t.Fatalf("compacted log replayed dirty: %+v", rs)
	}
	dsess := dst.NewSession()
	defer dsess.Close()
	for k := 0; k < 10; k++ {
		wantGet(t, dst, dsess, fmt.Sprintf("key-%02d", k), fmt.Sprintf("v49-%d", k))
	}
	for k := 10; k < 20; k++ {
		wantMiss(t, dst, dsess, fmt.Sprintf("key-%02d", k))
	}
}

// TestRingOverflowDropsThenCompactHeals: a full ring drops records (the
// request path must never block on a stalled disk), the log flags
// itself for compaction, and a compaction rewrites it from the store's
// authoritative live set — so a subsequent restart is complete even
// though the append stream was not.
func TestRingOverflowDropsThenCompactHeals(t *testing.T) {
	dir := t.TempDir()
	src := newStore()
	// Open with a tiny ring and do NOT start the writer yet: nothing
	// drains, so the overflow is deterministic.
	l, err := Open(Options{Dir: dir, RingBytes: 1 << 10, AuditInterval: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	src.SetMutationLog(l)
	sess := src.NewSession()
	for i := 0; i < 64; i++ {
		mustSet(t, src, sess, fmt.Sprintf("key-%02d", i), "payload-payload-payload", time.Time{})
	}
	if st := l.Stats(); st.DroppedRecords == 0 {
		t.Fatalf("1KiB ring absorbed 64 records without dropping: %+v", st)
	}
	if !l.needCompact.Load() {
		t.Fatal("drops did not mark the log for compaction")
	}

	// Now start the writer and compact: the snapshot comes from the
	// store, not the (incomplete) append stream.
	if err := l.Start(src); err != nil {
		t.Fatalf("start: %v", err)
	}
	l.Compact()
	sess.Close()
	l.Close()

	dst := newStore()
	_, _ = replayInto(t, dir, dst)
	if got, want := dst.Len(), src.Len(); got != want {
		t.Fatalf("post-compact replay Len = %d, want %d", got, want)
	}
	dsess := dst.NewSession()
	defer dsess.Close()
	for i := 0; i < 64; i++ {
		wantGet(t, dst, dsess, fmt.Sprintf("key-%02d", i), "payload-payload-payload")
	}
}

// TestAuditCountsCleanAndCorrupt drives auditOnce directly over sealed
// segments: a clean seal audits clean; a flipped byte is surfaced as an
// audit error without touching the file.
func TestAuditCountsCleanAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	src := newStore()
	// Small segments so rotation seals quickly.
	l, err := Open(Options{Dir: dir, FsyncInterval: time.Millisecond, SegmentBytes: 4 << 10, AuditInterval: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Start(src); err != nil {
		t.Fatalf("start: %v", err)
	}
	src.SetMutationLog(l)
	sess := src.NewSession()
	for i := 0; i < 200; i++ {
		mustSet(t, src, sess, fmt.Sprintf("key-%03d", i), "0123456789abcdef0123456789abcdef", time.Time{})
	}
	sess.Close()
	// Rotation happens on the writer's tick; wait for a sealed segment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.segMu.Lock()
		n := len(l.sealed)
		l.segMu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	l.auditOnce()
	st := l.Stats()
	if st.AuditRuns != 1 || st.AuditErrors != 0 || st.AuditRecords == 0 {
		t.Fatalf("clean audit: %+v", st)
	}
	l.Close()
}

// TestLogSetAllocFree pins the producer side of the persistence plane:
// framing a set record into the ring — header, CRC, wrap-aware copy,
// counters — allocates nothing. This is the property that lets alaskad
// keep its 0 allocs/op request path with -persist on.
func TestLogSetAllocFree(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), AuditInterval: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Not started: records accumulate in the (8 MiB default) ring, which
	// comfortably holds every iteration below, and no writer goroutine
	// runs to muddy the process-wide allocation count.
	key := []byte("bench:key")
	val := make([]byte, 512)
	stored := time.Now()
	expire := stored.Add(time.Hour)
	if avg := testing.AllocsPerRun(1000, func() {
		l.LogSet(key, val, expire, stored)
	}); avg != 0 {
		t.Fatalf("LogSet allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		l.LogDelete(key)
		l.LogTouch(key, expire)
	}); avg != 0 {
		t.Fatalf("LogDelete+LogTouch allocate %.2f allocs/op, want 0", avg)
	}
	if st := l.Stats(); st.DroppedRecords != 0 {
		t.Fatalf("ring overflowed during the guard (%d drops): result not meaningful", st.DroppedRecords)
	}
}
