package wal

// Disk-failure behavior: every test here drives the real ring, writer
// goroutine, and replay path through a fault.ScriptFS and proves the
// degradation contract — transient errors retry without losing an
// acknowledged record, failure streaks degrade instead of silently
// discarding, a cleared fault recovers, and the audit still passes over
// what survived.

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"alaska/internal/fault"
	"alaska/internal/kv"
)

// openFaultLog opens a started, store-attached log over dir with the
// given fault FS and a fast failure machine (degrade after 2 failures,
// probe every 5ms).
func openFaultLog(t *testing.T, dir string, store *kv.ShardedStore, fs fault.FS, tweak func(*Options)) *Log {
	t.Helper()
	o := Options{
		Dir:           dir,
		FsyncInterval: 2 * time.Millisecond,
		AuditInterval: -1,
		FS:            fs,
		DegradeAfter:  2,
		ProbeInterval: 5 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&o)
	}
	l, err := Open(o)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Start(store); err != nil {
		t.Fatalf("start: %v", err)
	}
	store.SetMutationLog(l)
	return l
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestRetainOnWriteError is the flushBatch regression test: a one-shot
// write error must RETAIN the drained batch and deliver it on the next
// tick — zero acknowledged records lost after replay.
func TestRetainOnWriteError(t *testing.T) {
	dir := t.TempDir()
	sfs := fault.NewScriptFS(nil, fault.Rule{Op: fault.OpWrite, After: 1, Times: 1})
	store := newStore()
	sess := store.NewSession()
	defer sess.Close()
	l := openFaultLog(t, dir, store, sfs, nil)

	for i := 0; i < 50; i++ {
		mustSet(t, store, sess, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%03d", i), time.Time{})
	}
	waitFor(t, "injected write error", func() bool { return l.Stats().IOErrors >= 1 })
	f0 := l.Stats().Fsyncs
	waitFor(t, "post-error flush", func() bool { return l.Stats().Fsyncs > f0 })
	st := l.Stats()
	if st.DroppedRecords != 0 || st.DroppedDegraded != 0 || st.DegradedEntries != 0 {
		t.Fatalf("one-shot write error must not drop or degrade: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := newStore()
	rl, rs := replayInto(t, dir, re)
	defer rl.Close()
	if rs.Sets != 50 {
		t.Fatalf("replayed sets = %d, want 50", rs.Sets)
	}
	rsess := re.NewSession()
	defer rsess.Close()
	for i := 0; i < 50; i++ {
		wantGet(t, re, rsess, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%03d", i))
	}
}

// TestRetainOnFsyncError: a one-shot fsync error keeps needSync armed
// and retries; the fsync counter moves only on success.
func TestRetainOnFsyncError(t *testing.T) {
	dir := t.TempDir()
	// After=1 lets the segment-header sync at Start pass.
	sfs := fault.NewScriptFS(nil, fault.Rule{Op: fault.OpSync, After: 1, Times: 1})
	store := newStore()
	sess := store.NewSession()
	defer sess.Close()
	l := openFaultLog(t, dir, store, sfs, nil)

	for i := 0; i < 20; i++ {
		mustSet(t, store, sess, fmt.Sprintf("k%03d", i), "v", time.Time{})
	}
	waitFor(t, "injected fsync error", func() bool { return l.Stats().IOErrors >= 1 })
	f0 := l.Stats().Fsyncs
	waitFor(t, "post-error fsync", func() bool { return l.Stats().Fsyncs > f0 })
	if st := l.Stats(); st.DegradedEntries != 0 || st.State != "healthy" {
		t.Fatalf("one-shot fsync error must not degrade: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := newStore()
	rl, rs := replayInto(t, dir, re)
	defer rl.Close()
	if rs.Sets != 20 {
		t.Fatalf("replayed sets = %d, want 20", rs.Sets)
	}
}

// TestDegradedEntryExitWriteFault: a sticky write fault trips the
// degradation machine; the retained pending batch survives the outage
// and lands after recovery, while appends made during degraded mode are
// counted as dropped_degraded (distinct from ring-overflow drops).
// The sticky remove fault alongside it forces the recovery probe
// through the EEXIST path (a failed probe's cleanup is itself faulted).
func TestDegradedEntryExitWriteFault(t *testing.T) {
	dir := t.TempDir()
	sfs := fault.NewScriptFS(nil,
		fault.Rule{Op: fault.OpWrite, After: 1, Times: 0},
		fault.Rule{Op: fault.OpRemove, Times: 0},
	)
	store := newStore()
	sess := store.NewSession()
	defer sess.Close()
	l := openFaultLog(t, dir, store, sfs, nil)

	// Acknowledged before the writer can flush: these ride the pending
	// buffer through the whole outage.
	mustSet(t, store, sess, "held1", "v1", time.Time{})
	mustSet(t, store, sess, "held2", "v2", time.Time{})

	waitFor(t, "degraded entry", l.Degraded)
	st := l.Stats()
	if st.DegradedEntries != 1 || st.State != "degraded" {
		t.Fatalf("stats after degrade = %+v", st)
	}
	if l.DegradedSince().IsZero() {
		t.Fatalf("DegradedSince zero while degraded")
	}

	// Appends in degraded mode are rejected up front and counted.
	mustSet(t, store, sess, "lost-in-gap", "x", time.Time{})
	waitFor(t, "dropped_degraded count", func() bool { return l.Stats().DroppedDegraded >= 1 })
	if st := l.Stats(); st.DroppedRecords != 0 {
		t.Fatalf("degraded drops must not hit the ring-overflow counter: %+v", st)
	}

	// Let a few probes fail (each create leaves a stale file the faulted
	// remove can't clean; the next probe must take the EEXIST path).
	time.Sleep(20 * time.Millisecond)

	sfs.Clear()
	waitFor(t, "recovery", func() bool { return !l.Degraded() })
	st = l.Stats()
	if st.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", st.Recoveries)
	}
	if !l.needCompact.Load() {
		t.Fatalf("recovery must schedule a compaction to close the gap")
	}
	if !l.DegradedSince().IsZero() {
		t.Fatalf("DegradedSince must reset on recovery")
	}

	mustSet(t, store, sess, "post", "v3", time.Time{})
	waitFor(t, "post-recovery flush", func() bool { return l.Stats().Fsyncs >= 1 })
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := newStore()
	rl, _ := replayInto(t, dir, re)
	defer rl.Close()
	rsess := re.NewSession()
	defer rsess.Close()
	wantGet(t, re, rsess, "held1", "v1")
	wantGet(t, re, rsess, "held2", "v2")
	wantGet(t, re, rsess, "post", "v3")
	// "lost-in-gap" was dropped by contract; the live store still has it,
	// and the scheduled compaction is what would heal the log copy.
	wantMiss(t, re, rsess, "lost-in-gap")
}

// TestDegradedRecoveryAuditClean: sticky fsync fault → degraded →
// recovery → compaction; the background audit then verifies every
// surviving frame. This is the sync-sided twin of the write-fault test
// (writes land but never become durable) and proves the abandoned
// segment is registered at a frame-clean size.
func TestDegradedRecoveryAuditClean(t *testing.T) {
	dir := t.TempDir()
	sfs := fault.NewScriptFS(nil, fault.Rule{Op: fault.OpSync, After: 2, Times: 0})
	store := newStore()
	sess := store.NewSession()
	defer sess.Close()
	l := openFaultLog(t, dir, store, sfs, nil)

	mustSet(t, store, sess, "pre", "v", time.Time{})
	waitFor(t, "pre-fault fsync", func() bool { return l.Stats().Fsyncs >= 1 })
	mustSet(t, store, sess, "mid1", "v1", time.Time{})
	mustSet(t, store, sess, "mid2", "v2", time.Time{})
	waitFor(t, "degraded entry", l.Degraded)

	sfs.Clear()
	waitFor(t, "recovery", func() bool { return !l.Degraded() })
	mustSet(t, store, sess, "post", "v3", time.Time{})
	l.Compact() // what MaybeCompact would do from the Maintain loop

	l.auditOnce()
	st := l.Stats()
	if st.AuditRuns != 1 || st.AuditErrors != 0 {
		t.Fatalf("audit after recovery = %+v, want 1 clean run", st)
	}
	if st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The compaction rewrote the log from the live store, so even the
	// records that were only ever page-cache resident are now durable.
	re := newStore()
	rl, _ := replayInto(t, dir, re)
	defer rl.Close()
	rsess := re.NewSession()
	defer rsess.Close()
	for _, kv := range [][2]string{{"pre", "v"}, {"mid1", "v1"}, {"mid2", "v2"}, {"post", "v3"}} {
		wantGet(t, re, rsess, kv[0], kv[1])
	}
}

// TestRotateFailureDegrades: a failed openSegment after a rotate used
// to leave l.f == nil and silently discard every future batch. Now it
// routes through the degradation machine: pending is retained, the
// reopen is retried, the failure streak degrades, and a cleared fault
// recovers with nothing acknowledged lost.
func TestRotateFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	sfs := fault.NewScriptFS(nil, fault.Rule{Op: fault.OpCreate, After: 1, Times: 0})
	store := newStore()
	sess := store.NewSession()
	defer sess.Close()
	l := openFaultLog(t, dir, store, sfs, func(o *Options) {
		o.SegmentBytes = 256 // force an early rotate
	})

	var i int
	for ; i < 8; i++ {
		mustSet(t, store, sess, fmt.Sprintf("k%03d", i), "0123456789abcdef0123456789abcdef", time.Time{})
	}
	waitFor(t, "rotate attempt + degrade", l.Degraded)
	st := l.Stats()
	if st.Rotations < 1 {
		t.Fatalf("rotations = %d, want >=1 (seal succeeded, open failed)", st.Rotations)
	}
	if st.DroppedRecords != 0 {
		t.Fatalf("rotate failure dropped records: %+v", st)
	}

	mustSet(t, store, sess, "gap", "x", time.Time{})
	waitFor(t, "dropped_degraded", func() bool { return l.Stats().DroppedDegraded >= 1 })

	sfs.Clear()
	waitFor(t, "recovery", func() bool { return !l.Degraded() })
	mustSet(t, store, sess, "post", "v", time.Time{})
	f0 := l.Stats().Fsyncs
	waitFor(t, "post-recovery flush", func() bool { return l.Stats().Fsyncs > f0 })
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := newStore()
	rl, _ := replayInto(t, dir, re)
	defer rl.Close()
	rsess := re.NewSession()
	defer rsess.Close()
	for j := 0; j < i; j++ {
		wantGet(t, re, rsess, fmt.Sprintf("k%03d", j), "0123456789abcdef0123456789abcdef")
	}
	wantGet(t, re, rsess, "post", "v")
	wantMiss(t, re, rsess, "gap")
}

// TestSealSyncErrorKeepsSegmentActive: sealActive must NOT register a
// segment whose final sync failed — it stays active for retry.
func TestSealSyncErrorKeepsSegmentActive(t *testing.T) {
	dir := t.TempDir()
	sfs := fault.NewScriptFS(nil, fault.Rule{Op: fault.OpSync, After: 1, Times: 0})
	l, err := Open(Options{Dir: dir, AuditInterval: -1, FS: sfs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.openSegment(); err != nil { // header sync passes (After=1)
		t.Fatalf("openSegment: %v", err)
	}
	if err := l.sealActive(); err == nil {
		t.Fatalf("sealActive with failing sync returned nil")
	}
	if l.f == nil {
		t.Fatalf("segment must stay active after a failed seal")
	}
	l.segMu.Lock()
	n := len(l.sealed)
	l.segMu.Unlock()
	if n != 0 {
		t.Fatalf("a segment with a failed sync was registered as sealed")
	}
	sfs.Clear()
	if err := l.sealActive(); err != nil {
		t.Fatalf("sealActive after clear: %v", err)
	}
	l.segMu.Lock()
	n = len(l.sealed)
	l.segMu.Unlock()
	if n != 1 || l.f != nil {
		t.Fatalf("retried seal: sealed=%d f=%v", n, l.f)
	}
}

// TestSealCloseErrorCounted: a close failure after a successful sync
// cannot lose data; the seal proceeds and the error is counted.
func TestSealCloseErrorCounted(t *testing.T) {
	dir := t.TempDir()
	sfs := fault.NewScriptFS(nil, fault.Rule{Op: fault.OpClose, Times: 1})
	store := newStore()
	sess := store.NewSession()
	defer sess.Close()
	l := openFaultLog(t, dir, store, sfs, func(o *Options) {
		o.SegmentBytes = 256
	})
	for i := 0; i < 8; i++ {
		mustSet(t, store, sess, fmt.Sprintf("k%03d", i), "0123456789abcdef0123456789abcdef", time.Time{})
	}
	waitFor(t, "rotation past close error", func() bool { return l.Stats().Rotations >= 1 })
	st := l.Stats()
	if st.IOErrors < 1 {
		t.Fatalf("close error not counted: %+v", st)
	}
	if st.DegradedEntries != 0 {
		t.Fatalf("close-after-sync must not degrade: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re := newStore()
	rl, rs := replayInto(t, dir, re)
	defer rl.Close()
	if rs.Sets != 8 {
		t.Fatalf("replayed sets = %d, want 8", rs.Sets)
	}
}

// TestENOSPCFlagsCompaction: an ENOSPC failure schedules a compaction
// (reclaiming space from the live set) in addition to the retry path.
func TestENOSPCFlagsCompaction(t *testing.T) {
	dir := t.TempDir()
	sfs := fault.NewScriptFS(nil, fault.Rule{Op: fault.OpWrite, After: 1, Times: 1, Err: syscall.ENOSPC})
	store := newStore()
	sess := store.NewSession()
	defer sess.Close()
	l := openFaultLog(t, dir, store, sfs, nil)
	defer l.Close()

	mustSet(t, store, sess, "k", "v", time.Time{})
	waitFor(t, "ENOSPC error", func() bool { return l.Stats().IOErrors >= 1 })
	if !l.needCompact.Load() {
		t.Fatalf("ENOSPC must flag compaction")
	}
}

// TestCompactRenameFault: a faulted snapshot rename fails the
// compaction cleanly — counted, tmp removed, log still healthy — and
// the retry after the fault clears succeeds.
func TestCompactRenameFault(t *testing.T) {
	dir := t.TempDir()
	sfs := fault.NewScriptFS(nil, fault.Rule{Op: fault.OpRename, Times: 1})
	store := newStore()
	sess := store.NewSession()
	defer sess.Close()
	l := openFaultLog(t, dir, store, sfs, nil)
	defer l.Close()

	for i := 0; i < 10; i++ {
		mustSet(t, store, sess, fmt.Sprintf("k%02d", i), "v", time.Time{})
	}
	l.Compact()
	st := l.Stats()
	if st.Compactions != 0 || st.IOErrors < 1 {
		t.Fatalf("faulted compaction = %+v, want 0 compactions and a counted error", st)
	}
	if l.Degraded() {
		t.Fatalf("a failed compaction must not degrade the log")
	}
	l.Compact()
	if st := l.Stats(); st.Compactions != 1 {
		t.Fatalf("retried compaction = %+v, want 1", st)
	}
}

// TestTruncateFaultOnReplay: replay's torn-tail truncation routes
// through the FS; a faulted truncate leaves the tail in place without
// failing the replay (best-effort warm restart).
func TestTruncateFaultOnReplay(t *testing.T) {
	dir := t.TempDir()
	store := newStore()
	sess := store.NewSession()
	l := openLog(t, dir, store)
	mustSet(t, store, sess, "k", "v", time.Time{})
	waitFor(t, "flush", func() bool { return l.Stats().Fsyncs >= 1 })
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	sess.Close()

	// Tear the tail by hand, then replay through a truncate-faulted FS.
	segs, err := filepath.Glob(filepath.Join(dir, "pack-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	tf, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("tear open: %v", err)
	}
	if _, err := tf.Write([]byte{0x5A, 0xA1, 0x01}); err != nil {
		t.Fatalf("tear write: %v", err)
	}
	_ = tf.Close()

	sfs := fault.NewScriptFS(nil, fault.Rule{Op: fault.OpTruncate, Times: 0})
	rl, err := Open(Options{Dir: dir, AuditInterval: -1, FS: sfs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	re := newStore()
	rsess := re.NewSession()
	defer rsess.Close()
	rs, err := rl.Replay(re, rsess)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rs.Sets != 1 || rs.TornRecords != 1 {
		t.Fatalf("replay stats = %+v, want 1 set + 1 torn", rs)
	}
	wantGet(t, re, rsess, "k", "v")
}
