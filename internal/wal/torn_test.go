package wal

// Torn-tail and corruption recovery: the regression surface for the
// replay scanner. A hard kill tears the final record at an arbitrary
// byte; disk rot flips arbitrary bits. Replay must stop at the last
// valid record, never load a corrupt value, never crash, and count what
// it saw — for every possible tear offset and every flipped byte, not
// just a lucky one.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"alaska/internal/kv"
)

// buildFile renders a complete n-record segment in memory: file header
// plus sets key-0..key-(n-1), each with a distinct value. Returns the
// bytes and each record's start offset.
func buildFile(n int) (buf []byte, recStart []int) {
	h := fileHeader()
	buf = append(buf, h[:]...)
	stored := time.Unix(1700000000, 0)
	for i := 0; i < n; i++ {
		recStart = append(recStart, len(buf))
		key := []byte(fmt.Sprintf("key-%d", i))
		val := []byte(fmt.Sprintf("value-%d-0123456789abcdef", i))
		buf = appendSetRecord(buf, key, val, time.Time{}, stored)
	}
	return buf, recStart
}

// replayBytes writes raw as the only segment of a fresh log directory
// and replays it into a fresh store.
func replayBytes(t *testing.T, raw []byte) (*kv.ShardedStore, ReplayStats) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), raw, 0o644); err != nil {
		t.Fatalf("write segment: %v", err)
	}
	store := newStore()
	_, rs := replayInto(t, dir, store)
	return store, rs
}

// TestTornTailEveryOffset truncates the file at every byte inside the
// final record: whatever the cut point — mid-header, mid-length,
// mid-payload — replay recovers exactly the n-1 complete records and
// truncates the tear off the file.
func TestTornTailEveryOffset(t *testing.T) {
	const n = 4
	buf, recStart := buildFile(n)
	lastStart := recStart[n-1]
	for cut := lastStart + 1; cut < len(buf); cut++ {
		store, rs := replayBytes(t, buf[:cut])
		if rs.Records != n-1 {
			t.Fatalf("cut@%d: replayed %d records, want %d", cut, rs.Records, n-1)
		}
		if rs.TornRecords != 1 || rs.CrcErrors != 0 {
			t.Fatalf("cut@%d: torn=%d crc=%d, want exactly one torn record", cut, rs.TornRecords, rs.CrcErrors)
		}
		if want := int64(cut - lastStart); rs.TruncatedBytes != want {
			t.Fatalf("cut@%d: truncated %d bytes, want %d", cut, rs.TruncatedBytes, want)
		}
		sess := store.NewSession()
		for i := 0; i < n-1; i++ {
			wantGet(t, store, sess, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d-0123456789abcdef", i))
		}
		wantMiss(t, store, sess, fmt.Sprintf("key-%d", n-1))
		sess.Close()
	}
}

// TestTornTailTruncatesFileClean: after the recovery truncation, a
// second replay of the same directory is clean — the audit and the next
// boot see a well-formed log ending at the last valid record.
func TestTornTailTruncatesFileClean(t *testing.T) {
	const n = 4
	buf, recStart := buildFile(n)
	dir := t.TempDir()
	path := filepath.Join(dir, segName(1))
	if err := os.WriteFile(path, buf[:recStart[n-1]+5], 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, rs := replayInto(t, dir, newStore())
	if rs.TornRecords != 1 {
		t.Fatalf("first replay: %+v", rs)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if info.Size() != int64(recStart[n-1]) {
		t.Fatalf("file not truncated to last valid record: size=%d want=%d", info.Size(), recStart[n-1])
	}
	_, rs2 := replayInto(t, dir, newStore())
	if rs2.TornRecords != 0 || rs2.CrcErrors != 0 || rs2.Records != n-1 {
		t.Fatalf("re-replay not clean: %+v", rs2)
	}
}

// TestBitFlipEveryOffset flips one bit at every byte of the final
// record. Whatever the bit — magic, type, length, CRC, key, value —
// the corrupt record must never be applied, the prior records must all
// survive, and the damage must be counted as either a CRC error or a
// tear (a flipped length field can claim past EOF, which is
// indistinguishable from a tear).
func TestBitFlipEveryOffset(t *testing.T) {
	const n = 4
	buf, recStart := buildFile(n)
	lastStart := recStart[n-1]
	for off := lastStart; off < len(buf); off++ {
		mut := append([]byte(nil), buf...)
		mut[off] ^= 1 << (off % 8)
		store, rs := replayBytes(t, mut)
		if rs.Records != n-1 {
			t.Fatalf("flip@%d: replayed %d records, want %d", off, rs.Records, n-1)
		}
		if rs.TornRecords+rs.CrcErrors != 1 {
			t.Fatalf("flip@%d: torn=%d crc=%d, want the damage counted once", off, rs.TornRecords, rs.CrcErrors)
		}
		sess := store.NewSession()
		for i := 0; i < n-1; i++ {
			wantGet(t, store, sess, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d-0123456789abcdef", i))
		}
		// The flipped record must not have loaded — under any key, with
		// any value. Cheapest complete check: nothing beyond n-1 entries.
		wantMiss(t, store, sess, fmt.Sprintf("key-%d", n-1))
		if store.Len() != n-1 {
			t.Fatalf("flip@%d: store has %d entries, want %d", off, store.Len(), n-1)
		}
		sess.Close()
	}
}

// TestCorruptSealedHistoryStopsReplay: damage in a non-final segment is
// not a tear — replay keeps the consistent prefix, refuses everything
// after the corrupt segment (later segments may depend on lost
// records), and schedules a compaction to rewrite the log.
func TestCorruptSealedHistoryStopsReplay(t *testing.T) {
	dir := t.TempDir()
	buf1, recStart := buildFile(2) // key-0, key-1
	// Flip a payload byte of the second record in segment 1.
	buf1[recStart[1]+recHeaderLen+25] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, segName(1)), buf1, 0o644); err != nil {
		t.Fatalf("write seg1: %v", err)
	}
	h := fileHeader()
	buf2 := append([]byte(nil), h[:]...)
	buf2 = appendSetRecord(buf2, []byte("seg2-key"), []byte("seg2-value"), time.Time{}, time.Unix(1700000000, 0))
	if err := os.WriteFile(filepath.Join(dir, segName(2)), buf2, 0o644); err != nil {
		t.Fatalf("write seg2: %v", err)
	}

	store := newStore()
	l, rs := replayInto(t, dir, store)
	if rs.Records != 1 || rs.CrcErrors != 1 {
		t.Fatalf("replay: %+v", rs)
	}
	if !l.needCompact.Load() {
		t.Fatal("sealed-history corruption did not schedule compaction")
	}
	sess := store.NewSession()
	defer sess.Close()
	wantGet(t, store, sess, "key-0", "value-0-0123456789abcdef")
	wantMiss(t, store, sess, "key-1")
	wantMiss(t, store, sess, "seg2-key")
}

// FuzzWALReplay feeds arbitrary bytes through Open+Replay as a segment
// file: no input may panic it or corrupt process state. (Values it does
// accept necessarily carried a valid CRC.)
func FuzzWALReplay(f *testing.F) {
	valid, recStart := buildFile(3)
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:recStart[2]+7]...)) // torn tail
	f.Add(append([]byte(nil), valid[:11]...))            // torn file header
	f.Add([]byte("ALSKPACKgarbage-after-the-magic"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), raw, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		l, err := Open(Options{Dir: dir, AuditInterval: -1})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		store := newStore()
		sess := store.NewSession()
		defer sess.Close()
		// An error return is acceptable (a CRC-valid frame with a
		// malformed payload aborts the boot); a panic is not.
		_, _ = l.Replay(store, sess)
	})
}
