package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"alaska/internal/kv"
)

// scanVerdict classifies how a segment scan ended.
type scanVerdict int

const (
	scanClean scanVerdict = iota // EOF exactly at a record boundary
	scanTorn                     // bytes ran out mid-record (torn tail)
	scanCorrupt                  // a complete frame failed validation
)

// scanSegment reads one segment file, invoking apply for every valid
// record in order, and reports where the valid prefix ends. apply may
// be nil (audit mode: CRC verification only). The payload slice passed
// to apply is reused between records.
func scanSegment(path string, apply func(typ byte, payload []byte) error) (records int64, goodEnd int64, size int64, verdict scanVerdict, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, scanClean, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, 0, scanClean, err
	}
	size = info.Size()

	r := bufio.NewReaderSize(f, 1<<20)
	var fh [fileHeaderLen]byte
	if _, err := io.ReadFull(r, fh[:]); err != nil {
		return 0, 0, size, scanTorn, nil
	}
	if err := checkFileHeader(fh[:]); err != nil {
		return 0, 0, size, scanCorrupt, nil
	}
	goodEnd = fileHeaderLen

	var hdr [recHeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:1]); err != nil {
			return records, goodEnd, size, scanClean, nil // clean EOF at boundary
		}
		if _, err := io.ReadFull(r, hdr[1:]); err != nil {
			return records, goodEnd, size, scanTorn, nil
		}
		if binary.LittleEndian.Uint16(hdr[0:2]) != recMagic {
			return records, goodEnd, size, scanCorrupt, nil
		}
		typ := hdr[2]
		if typ < recSet || typ > recFlush {
			return records, goodEnd, size, scanCorrupt, nil
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		if plen > maxPayload || goodEnd+recHeaderLen+plen > size {
			// A corrupt length field is indistinguishable from a tear that
			// truncated the length itself; classify by whether the frame
			// claims more bytes than the file holds.
			if goodEnd+recHeaderLen+plen > size {
				return records, goodEnd, size, scanTorn, nil
			}
			return records, goodEnd, size, scanCorrupt, nil
		}
		if int64(cap(payload)) < plen {
			payload = make([]byte, plen, 2*plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return records, goodEnd, size, scanTorn, nil
		}
		crc := crc32.Update(0, castagnoli, hdr[2:8])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(hdr[8:12]) {
			return records, goodEnd, size, scanCorrupt, nil
		}
		if apply != nil {
			if err := apply(typ, payload); err != nil {
				return records, goodEnd, size, scanClean, err
			}
		}
		records++
		goodEnd += recHeaderLen + plen
	}
}

// Replay rebuilds store from the log's segments, in sequence order,
// through the kv restore entry points — original store timestamps and
// the flush_all epoch included, so TTL and flush semantics are exact
// across the restart. Records already dead at replay time are skipped.
//
// Recovery policy: a torn tail on the FINAL segment (the expected
// residue of a hard kill) is truncated off, so the file ends at the
// last valid record and the next audit pass sees a clean log. A bad
// record anywhere else is corruption: replay stops at the last valid
// record — never applying a record that failed its CRC — and marks the
// log for compaction, which rewrites it from the recovered live set.
//
// Call between Open and Start. The returned error is for I/O-level
// failures only (unreadable directory); corruption is reported in
// ReplayStats, not as an error — a warm restart is best-effort.
func (l *Log) Replay(store *kv.ShardedStore, sess kv.Session) (ReplayStats, error) {
	var rs ReplayStats
	clock := store.Clock
	if clock == nil {
		clock = time.Now
	}
	nowN := clock().UnixNano()
	var faNano int64 // running flush epoch, from flush records

	apply := func(typ byte, payload []byte) error {
		switch typ {
		case recSet:
			if len(payload) < 20 {
				return errors.New("short set payload")
			}
			expN := int64(binary.LittleEndian.Uint64(payload[0:8]))
			storedN := int64(binary.LittleEndian.Uint64(payload[8:16]))
			keyLen := int64(binary.LittleEndian.Uint32(payload[16:20]))
			if keyLen < 0 || 20+keyLen > int64(len(payload)) {
				return errors.New("bad set key length")
			}
			key := payload[20 : 20+keyLen]
			value := payload[20+keyLen:]
			rs.Sets++
			if (expN != 0 && expN <= nowN) || (faNano != 0 && nowN >= faNano && storedN < faNano) {
				rs.SkippedDead++
				return nil
			}
			if err := store.RestoreBytes(sess, key, value, timeOf(expN), timeOf(storedN)); err != nil {
				rs.FailedRestores++
			}
		case recDelete:
			rs.Deletes++
			store.RestoreDeleteBytes(payload)
		case recTouch:
			if len(payload) < 8 {
				return errors.New("short touch payload")
			}
			rs.Touches++
			store.RestoreTouchBytes(payload[8:], timeOf(int64(binary.LittleEndian.Uint64(payload[0:8]))))
		case recFlush:
			if len(payload) < 8 {
				return errors.New("short flush payload")
			}
			rs.Flushes++
			faNano = int64(binary.LittleEndian.Uint64(payload[0:8]))
			store.RestoreFlushEpoch(timeOf(faNano))
		}
		return nil
	}

	l.segMu.Lock()
	segs := append([]segment(nil), l.sealed...)
	l.segMu.Unlock()

	for i := range segs {
		sg := &segs[i]
		last := i == len(segs)-1
		records, goodEnd, size, verdict, err := scanSegment(sg.path, apply)
		if err != nil {
			return rs, fmt.Errorf("wal: replay %s: %w", sg.path, err)
		}
		rs.Segments++
		rs.Records += records
		rs.Bytes += goodEnd
		switch verdict {
		case scanClean:
		case scanTorn:
			rs.TornRecords++
		case scanCorrupt:
			rs.CrcErrors++
		}
		if verdict == scanClean {
			continue
		}
		if last {
			// The expected residue of a hard kill: cut the tail at the
			// last valid record so the segment is clean for the audit. A
			// file whose header itself is unreadable is removed outright.
			rs.TruncatedBytes += size - goodEnd
			if goodEnd < fileHeaderLen {
				_ = l.fs.Remove(sg.path)
				l.dropSealed(sg.seq)
			} else if goodEnd < size {
				if terr := l.fs.Truncate(sg.path, goodEnd); terr == nil {
					l.resizeSealed(sg.seq, goodEnd)
				}
			}
		} else {
			// Corruption inside sealed history: everything after it is of
			// unknown provenance. Stop — the recovered prefix is
			// consistent — and let compaction rewrite the log from it.
			l.opt.Logger.Errorf("wal: replay: %s corrupt at offset %d; recovering prefix and scheduling compaction", sg.path, goodEnd)
			l.needCompact.Store(true)
			break
		}
	}
	l.replay = rs
	return rs, nil
}

func (l *Log) dropSealed(seq uint64) {
	l.segMu.Lock()
	defer l.segMu.Unlock()
	var n int64
	for i := 0; i < len(l.sealed); i++ {
		if l.sealed[i].seq == seq {
			l.sealed = append(l.sealed[:i], l.sealed[i+1:]...)
			i--
			continue
		}
		n += l.sealed[i].size
	}
	l.sealedBytes.Store(n)
}

func (l *Log) resizeSealed(seq uint64, size int64) {
	l.segMu.Lock()
	defer l.segMu.Unlock()
	var n int64
	for i := range l.sealed {
		if l.sealed[i].seq == seq {
			l.sealed[i].size = size
		}
		n += l.sealed[i].size
	}
	l.sealedBytes.Store(n)
}
