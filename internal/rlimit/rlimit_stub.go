//go:build !unix

package rlimit

import "errors"

var errUnsupported = errors.New("rlimit: NOFILE not adjustable on this platform")

// RaiseNOFILE is a no-op where RLIMIT_NOFILE does not exist.
func RaiseNOFILE() (uint64, error) { return 0, errUnsupported }
