//go:build unix

package rlimit

import "syscall"

// RaiseNOFILE lifts the soft RLIMIT_NOFILE to the hard limit and
// returns the resulting soft ceiling. A nil error with an unchanged
// value means the process was already at its hard limit; callers that
// need more than the returned count must ask the operator for a higher
// hard limit (ulimit -Hn / LimitNOFILE=) — nothing an unprivileged
// process can do will get past it.
func RaiseNOFILE() (uint64, error) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0, err
	}
	if lim.Cur >= lim.Max {
		return lim.Cur, nil
	}
	lim.Cur = lim.Max
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		// Report the still-effective old ceiling alongside the error so
		// callers can print both.
		var cur syscall.Rlimit
		if syscall.Getrlimit(syscall.RLIMIT_NOFILE, &cur) == nil {
			return cur.Cur, err
		}
		return 0, err
	}
	return lim.Cur, nil
}
