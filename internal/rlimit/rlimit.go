// Package rlimit raises the process file-descriptor ceiling so the
// event-driven connection core (and the load generator's -hold mode)
// can actually open the hundred-thousand-socket populations they are
// built for, instead of dying at a distribution's default soft limit
// of 1024.
package rlimit
