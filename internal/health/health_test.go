package health

import "testing"

func TestBootPhases(t *testing.T) {
	r := New()
	if rep := r.Report(); rep.Status != Booting || rep.Ready() {
		t.Fatalf("new registry = %v, want booting/not-ready", rep.Status)
	}
	r.StartReplay()
	if rep := r.Report(); rep.Status != Replaying {
		t.Fatalf("after StartReplay = %v, want replaying", rep.Status)
	}
	r.Ready()
	if rep := r.Report(); rep.Status != OK || !rep.Ready() {
		t.Fatalf("after Ready = %v, want ok/ready", rep.Status)
	}
}

func TestWorstSubsystemWins(t *testing.T) {
	r := NewReady()
	walState := OK
	r.Register("wal", func() (Status, string) { return walState, "detail" })
	r.Register("accept-gate", func() (Status, string) { return OK, "" })

	rep := r.Report()
	if rep.Status != OK || len(rep.Subs) != 2 {
		t.Fatalf("report = %+v, want ok with 2 subs", rep)
	}
	walState = Degraded
	rep = r.Report()
	if rep.Status != Degraded || rep.Ready() {
		t.Fatalf("report = %v, want degraded/not-ready", rep.Status)
	}
	if rep.Subs[0].Name != "wal" || rep.Subs[0].State != "degraded" || rep.Subs[0].Detail != "detail" {
		t.Fatalf("wal sub = %+v", rep.Subs[0])
	}
	walState = OK
	if rep := r.Report(); rep.Status != OK {
		t.Fatalf("recovered report = %v, want ok", rep.Status)
	}
}

func TestDegradedOutranksBootPhase(t *testing.T) {
	r := New() // still booting
	r.Register("wal", func() (Status, string) { return Degraded, "" })
	if rep := r.Report(); rep.Status != Degraded {
		t.Fatalf("report = %v, want degraded (worse than booting)", rep.Status)
	}
}

func TestNotReadySubsystemHoldsBelowOK(t *testing.T) {
	r := NewReady()
	r.Register("replay", func() (Status, string) { return Replaying, "" })
	if rep := r.Report(); rep.Status != Replaying || rep.Ready() {
		t.Fatalf("report = %v, want replaying", rep.Status)
	}
}

func TestStatusStrings(t *testing.T) {
	want := map[Status]string{Booting: "booting", Replaying: "replaying", OK: "ok", Degraded: "degraded", Status(99): "unknown"}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}
