// Package health is alaskad's readiness registry: a tiny, dependency-
// free aggregation point that turns per-subsystem checks (WAL state,
// replay progress, accept-gate saturation) into the one answer a load
// balancer or orchestrator wants from /readyz — serve this node, or
// drain it.
//
// Liveness and readiness are deliberately different questions:
// /healthz stays "is the process up" (always ok while serving), while
// /readyz reports booting|replaying|ok|degraded and answers 503 for
// every state but ok. A degraded node keeps serving traffic it already
// has — degradation is a mode to operate through, not a crash — but
// tells the balancer to prefer healthy peers.
package health

import (
	"sync"
	"sync/atomic"
)

// Status is one subsystem's (or the whole node's) readiness verdict.
type Status int32

const (
	// Booting: the process is initializing; not ready.
	Booting Status = iota
	// Replaying: boot-time recovery (WAL replay) is running; not ready.
	Replaying
	// OK: serving and fully functional.
	OK
	// Degraded: serving, but a subsystem is operating in a reduced mode
	// (e.g. the WAL stopped persisting); not ready, prefer other nodes.
	Degraded
)

// String returns the wire form reported by /readyz.
func (s Status) String() string {
	switch s {
	case Booting:
		return "booting"
	case Replaying:
		return "replaying"
	case OK:
		return "ok"
	case Degraded:
		return "degraded"
	}
	return "unknown"
}

// Check reports one subsystem's current status plus a human-readable
// detail line. Checks run on every Report call (a /readyz probe), never
// on the request path, so they may format strings freely — but they
// must be safe to call concurrently.
type Check func() (Status, string)

// Sub is one subsystem's evaluated state within a Report.
type Sub struct {
	Name   string `json:"name"`
	Status Status `json:"-"`
	State  string `json:"state"`
	Detail string `json:"detail,omitempty"`
}

// Report is a point-in-time readiness evaluation.
type Report struct {
	Status Status
	Subs   []Sub
}

// Ready reports whether the node should receive new traffic.
func (r Report) Ready() bool { return r.Status == OK }

// Registry aggregates subsystem checks under a boot phase. The phase
// dominates until Ready() is called (a node mid-replay is not ready no
// matter what its subsystems say); afterwards the worst subsystem
// status wins, with Degraded outranking everything.
type Registry struct {
	phase atomic.Int32 // Booting → Replaying → OK

	mu   sync.Mutex
	subs []struct {
		name  string
		check Check
	}
}

// New returns a registry in the Booting phase.
func New() *Registry { return &Registry{} }

// NewReady returns a registry already past boot — for servers built
// without a boot sequence (tests, embedded use).
func NewReady() *Registry {
	r := New()
	r.Ready()
	return r
}

// StartReplay marks the boot phase as replaying persisted state.
func (r *Registry) StartReplay() { r.phase.Store(int32(Replaying)) }

// Ready marks boot complete; readiness now follows the subsystem checks.
func (r *Registry) Ready() { r.phase.Store(int32(OK)) }

// Phase returns the current boot phase.
func (r *Registry) Phase() Status { return Status(r.phase.Load()) }

// Register adds a named subsystem check. Typically called once per
// subsystem at construction; safe concurrently with Report.
func (r *Registry) Register(name string, check Check) {
	r.mu.Lock()
	r.subs = append(r.subs, struct {
		name  string
		check Check
	}{name, check})
	r.mu.Unlock()
}

// Report evaluates every check and aggregates. The boot phase caps the
// overall status below OK until Ready; a Degraded subsystem forces
// Degraded overall even mid-boot (the probe sees the worst truth).
func (r *Registry) Report() Report {
	r.mu.Lock()
	subs := make([]struct {
		name  string
		check Check
	}, len(r.subs))
	copy(subs, r.subs)
	r.mu.Unlock()

	rep := Report{Status: r.Phase(), Subs: make([]Sub, 0, len(subs))}
	for _, s := range subs {
		st, detail := s.check()
		rep.Subs = append(rep.Subs, Sub{Name: s.name, Status: st, State: st.String(), Detail: detail})
		if st == Degraded {
			rep.Status = Degraded
		} else if st != OK && rep.Status == OK {
			// A not-ready (booting/replaying) subsystem holds the node
			// below ready, unless something worse already has.
			rep.Status = st
		}
	}
	return rep
}
