// Package locality implements the cache-locality service sketched in §7
// of the paper ("object mobility can be used to dynamically enhance cache
// locality", citing Chilimbi/Larus-style online reorganization): it
// records the order in which handles are accessed, and during a runtime
// barrier repacks frequently co-accessed objects next to each other so a
// traversal touches far fewer pages/cache lines.
//
// The mechanism is nothing beyond what handles already provide — observe,
// then Relocate — which is exactly the paper's argument for why such
// services become trivial on top of Alaska.
package locality

import (
	"sync"

	"alaska/internal/mem"
	"alaska/internal/rt"
)

// Tracker records handle access order and computes a placement that
// clusters objects by temporal affinity.
type Tracker struct {
	mu sync.Mutex
	// trace is the bounded access-order ring.
	trace []uint32
	limit int
	// seen de-duplicates the trace into first-touch order.
	counts map[uint32]int64
}

// NewTracker returns a tracker keeping at most limit trace entries.
func NewTracker(limit int) *Tracker {
	if limit <= 0 {
		limit = 1 << 16
	}
	return &Tracker{limit: limit, counts: make(map[uint32]int64)}
}

// Touch records an access to handle id. Call it from the application's
// read/write paths (the compiler could equally emit it after each
// translation; the KV store calls it from Get).
func (t *Tracker) Touch(id uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.trace) < t.limit {
		t.trace = append(t.trace, id)
	}
	t.counts[id]++
}

// Reset clears the trace between optimization rounds.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trace = t.trace[:0]
	t.counts = make(map[uint32]int64)
}

// plan returns the object IDs in first-touch trace order — the classic
// online layout heuristic: objects accessed together end up adjacent.
func (t *Tracker) plan() []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[uint32]bool, len(t.counts))
	var order []uint32
	for _, id := range t.trace {
		if !seen[id] {
			seen[id] = true
			order = append(order, id)
		}
	}
	return order
}

// Optimizer repacks traced objects into a dedicated arena in trace order.
type Optimizer struct {
	rt      *rt.Runtime
	tracker *Tracker
	arena   *mem.Region
	off     uint64

	// Moved counts relocated objects.
	Moved int64
}

// NewOptimizer maps an arena of arenaSize bytes for clustered placement.
func NewOptimizer(r *rt.Runtime, tracker *Tracker, arenaSize uint64) (*Optimizer, error) {
	arena, err := r.Space.Map(arenaSize)
	if err != nil {
		return nil, err
	}
	return &Optimizer{rt: r, tracker: tracker, arena: arena}, nil
}

// ResetArena rewinds the arena's bump pointer. Safe once every object has
// been moved elsewhere (e.g. when ping-ponging between two optimizers in a
// repeated-optimization loop).
func (o *Optimizer) ResetArena() { o.off = 0 }

// Optimize must be called inside a barrier: it walks the trace plan and
// relocates each unpinned object to the next slot in the arena, so the
// traced access order becomes sequential in memory.
func (o *Optimizer) Optimize(scope *rt.BarrierScope) int {
	moved := 0
	for _, id := range o.tracker.plan() {
		if scope.Pinned(id) {
			continue
		}
		e, err := o.rt.Table.Get(id)
		if err != nil {
			continue // freed since traced
		}
		aligned := (e.Size + 15) &^ 15
		if o.off+aligned > o.arena.Size() {
			break
		}
		dst := o.arena.Base() + mem.Addr(o.off)
		if e.Backing == dst {
			o.off += aligned
			continue
		}
		if err := scope.Relocate(id, dst); err != nil {
			continue
		}
		o.off += aligned
		moved++
	}
	o.Moved += int64(moved)
	return moved
}

// PageSwitches measures the locality of an access sequence: how many times
// consecutive accesses land on different simulated pages. Lower is better;
// it is the simulator's stand-in for TLB/cache-line behaviour.
func PageSwitches(r *rt.Runtime, ids []uint32) (int, error) {
	switches := 0
	var lastPage mem.Addr = ^mem.Addr(0)
	for _, id := range ids {
		e, err := r.Table.Get(id)
		if err != nil {
			return 0, err
		}
		page := e.Backing >> 12
		if page != lastPage {
			switches++
			lastPage = page
		}
	}
	return switches, nil
}
