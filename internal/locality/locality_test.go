package locality

import (
	"math/rand"
	"testing"

	"alaska/internal/anchorage"
	"alaska/internal/handle"
	"alaska/internal/mem"
	"alaska/internal/rt"
)

func newLocalityRuntime(t *testing.T) (*rt.Runtime, *mem.Space) {
	t.Helper()
	space := mem.NewSpace()
	r, err := rt.New(space, anchorage.NewService(space, anchorage.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	return r, space
}

func TestTrackerPlanFirstTouchOrder(t *testing.T) {
	tr := NewTracker(100)
	for _, id := range []uint32{5, 3, 5, 9, 3, 5} {
		tr.Touch(id)
	}
	plan := tr.plan()
	want := []uint32{5, 3, 9}
	if len(plan) != len(want) {
		t.Fatalf("plan = %v", plan)
	}
	for i := range want {
		if plan[i] != want[i] {
			t.Errorf("plan[%d] = %d, want %d", i, plan[i], want[i])
		}
	}
	tr.Reset()
	if len(tr.plan()) != 0 {
		t.Error("plan nonempty after Reset")
	}
}

func TestTrackerBounded(t *testing.T) {
	tr := NewTracker(10)
	for i := 0; i < 100; i++ {
		tr.Touch(uint32(i))
	}
	if got := len(tr.plan()); got > 10 {
		t.Errorf("trace grew to %d despite limit 10", got)
	}
}

// The headline behaviour: a traversal that ping-pongs across the heap
// becomes (near-)sequential after optimization, with page switches
// dropping dramatically, while contents survive.
func TestOptimizeImprovesLocality(t *testing.T) {
	r, space := newLocalityRuntime(t)
	th := r.NewThread()

	// Allocate many objects, then build a traversal order that jumps all
	// over the heap (reversed + strided).
	const n = 512
	hs := make([]handle.Handle, n)
	for i := range hs {
		h, err := r.Halloc(64)
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
		a, _ := th.Translate(h)
		if err := space.WriteU64(a, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(4))
	order := make([]uint32, n)
	for i, k := range rng.Perm(n) {
		order[i] = hs[k].ID()
	}

	before, err := PageSwitches(r, order)
	if err != nil {
		t.Fatal(err)
	}

	tracker := NewTracker(0)
	for _, id := range order {
		tracker.Touch(id)
	}
	opt, err := NewOptimizer(r, tracker, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var moved int
	r.Barrier(th, func(scope *rt.BarrierScope) {
		moved = opt.Optimize(scope)
	})
	if moved == 0 {
		t.Fatal("optimizer moved nothing")
	}

	after, err := PageSwitches(r, order)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before/4 {
		t.Errorf("page switches %d -> %d; want a large locality win", before, after)
	}
	// Contents intact, traversal order unchanged semantically.
	for i, h := range hs {
		a, err := th.Translate(h)
		if err != nil {
			t.Fatal(err)
		}
		v, err := space.ReadU64(a)
		if err != nil || v != uint64(i) {
			t.Errorf("object %d corrupted after clustering: %d, %v", i, v, err)
		}
	}
}

func TestOptimizeRespectsPins(t *testing.T) {
	r, space := newLocalityRuntime(t)
	th := r.NewThread()
	h, _ := r.Halloc(64)
	addr, unpin, err := th.Pin(h)
	if err != nil {
		t.Fatal(err)
	}
	defer unpin()
	if err := space.WriteU64(addr, 11); err != nil {
		t.Fatal(err)
	}
	tracker := NewTracker(0)
	tracker.Touch(h.ID())
	opt, err := NewOptimizer(r, tracker, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	r.Barrier(th, func(scope *rt.BarrierScope) {
		opt.Optimize(scope)
	})
	// The pinned object must not have moved.
	v, err := space.ReadU64(addr)
	if err != nil || v != 11 {
		t.Errorf("pinned object moved: %d, %v", v, err)
	}
}

func TestOptimizeSkipsFreedObjects(t *testing.T) {
	r, _ := newLocalityRuntime(t)
	th := r.NewThread()
	h, _ := r.Halloc(64)
	tracker := NewTracker(0)
	tracker.Touch(h.ID())
	if err := r.Hfree(h); err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimizer(r, tracker, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	r.Barrier(th, func(scope *rt.BarrierScope) {
		if got := opt.Optimize(scope); got != 0 {
			t.Errorf("moved %d freed objects", got)
		}
	})
}

func TestArenaCapacityRespected(t *testing.T) {
	r, _ := newLocalityRuntime(t)
	th := r.NewThread()
	tracker := NewTracker(0)
	var hs []handle.Handle
	for i := 0; i < 16; i++ {
		h, _ := r.Halloc(1024)
		hs = append(hs, h)
		tracker.Touch(h.ID())
	}
	// Arena fits only a few objects.
	opt, err := NewOptimizer(r, tracker, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var moved int
	r.Barrier(th, func(scope *rt.BarrierScope) {
		moved = opt.Optimize(scope)
	})
	if moved > 4 {
		t.Errorf("moved %d objects into a 4-object arena", moved)
	}
	for _, h := range hs {
		if _, err := th.Translate(h); err != nil {
			t.Errorf("object unreachable after partial optimize: %v", err)
		}
	}
}
