package server

import (
	"sync/atomic"
	"time"
)

// The slow-op ring is alaskad's flight recorder: every command slower
// than Config.SlowOpThreshold is recorded into a fixed, preallocated
// ring so "what was slow just now?" is answerable after the fact —
// `stats slow` on the wire, /debug/slowops on the admin port — without
// keeping a log or allocating on the request path.
//
// The record path is lock-free and allocation-free: a slot is claimed
// with one atomic add on the cursor, and the entry is filled under a
// per-entry seqlock (sequence odd while writing, even when stable) so
// a reader that races a writer detects the torn entry and skips it
// instead of reporting garbage. The key is truncated into a fixed
// array — the ring never references request memory.

const (
	// slowRingSize is the ring capacity; a power of two so the cursor
	// wraps with a mask.
	slowRingSize = 256
	// slowOpKeyLen is the recorded key prefix. 32 bytes is enough to
	// identify a key family; full keys would bloat the entries for the
	// rare 250-byte tail.
	slowOpKeyLen = 32
)

// slowEntry is one recorded operation. Fields are plain (not atomic):
// the seqlock orders them — a writer publishes with seq even, a reader
// rejects any entry whose seq was odd or changed across the copy.
type slowEntry struct {
	seq      atomic.Uint64
	whenNs   int64 // wall clock, unixnano
	latNs    int64
	connID   uint64
	cmd      cmdCode
	keyLen   uint8
	key      [slowOpKeyLen]byte
	truncKey bool // key was longer than the recorded prefix
}

// slowRing is the fixed-size lock-free ring.
type slowRing struct {
	cur     atomic.Uint64 // total records ever; next slot is cur & mask
	entries [slowRingSize]slowEntry
}

func newSlowRing() *slowRing { return &slowRing{} }

// record claims the next slot and fills it. Allocation-free; safe from
// any number of goroutines. An op recorded while slowRingSize newer ops
// arrive is overwritten — the ring keeps the newest window, which is
// the one an operator debugging a latency spike wants.
func (r *slowRing) record(cmd cmdCode, key []byte, lat time.Duration, connID uint64, now time.Time) {
	e := &r.entries[r.cur.Add(1)&(slowRingSize-1)]
	seq := e.seq.Add(1) // odd: writing
	e.whenNs = now.UnixNano()
	e.latNs = lat.Nanoseconds()
	e.connID = connID
	e.cmd = cmd
	e.keyLen = uint8(copy(e.key[:], key))
	e.truncKey = len(key) > slowOpKeyLen
	e.seq.Store(seq + 1) // even: stable
}

// SlowOp is one captured slow operation, decoded for the reporting
// surfaces.
type SlowOp struct {
	Cmd     string        `json:"cmd"`
	Key     string        `json:"key"` // recorded prefix; "..." appended if truncated
	Latency time.Duration `json:"latency_ns"`
	ConnID  uint64        `json:"conn"`
	When    time.Time     `json:"when"`
}

// snapshot copies the stable entries out, newest first. Reporting path
// only — it allocates freely.
func (r *slowRing) snapshot() []SlowOp {
	out := make([]SlowOp, 0, slowRingSize)
	cur := r.cur.Load()
	n := cur
	if n > slowRingSize {
		n = slowRingSize
	}
	for i := uint64(0); i < n; i++ {
		e := &r.entries[(cur-i)&(slowRingSize-1)]
		s1 := e.seq.Load()
		if s1&1 != 0 {
			continue // mid-write
		}
		op := SlowOp{
			Cmd:     cmdNames[e.cmd],
			Latency: time.Duration(e.latNs),
			ConnID:  e.connID,
			When:    time.Unix(0, e.whenNs),
		}
		key := string(e.key[:e.keyLen])
		if e.truncKey {
			key += "..."
		}
		op.Key = key
		if e.seq.Load() != s1 {
			continue // torn: a writer overtook the copy
		}
		out = append(out, op)
	}
	return out
}
