package server

// Space-padded decr compatibility mode: memcached's classic decr updated
// the item in place, so a result with fewer digits was right-padded with
// spaces to the old length — the reply carries the bare number, but a
// subsequent get exposes the padding, and further arithmetic must parse
// straight through it. Clients that frame fixed-width counters depend on
// it; alaskad reproduces it behind -space-padded-decr (Config.
// SpacePaddedDecr), off by default.

import "testing"

func TestSpacePaddedDecrConformance(t *testing.T) {
	forEachBackend(t, Config{Addr: "127.0.0.1:0", SpacePaddedDecr: true}, func(t *testing.T, srv *Server) {
		runTranscript(t, srv.Addr(), []step{
			{"set n 0 0 4\r\n1000\r\n", "STORED\r\n"},
			// The reply is the bare number...
			{"decr n 1\r\n", "999\r\n"},
			// ...but the stored value keeps the old length, space-padded.
			{"get n\r\n", "VALUE n 0 4\r\n999 \r\nEND\r\n"},
			// Arithmetic parses through existing padding, and the pad
			// target stays the current (already padded) length.
			{"decr n 900\r\n", "99\r\n"},
			{"get n\r\n", "VALUE n 0 4\r\n99  \r\nEND\r\n"},
			// incr never pads: a growing value is simply rewritten.
			{"incr n 1\r\n", "100\r\n"},
			{"get n\r\n", "VALUE n 0 3\r\n100\r\nEND\r\n"},
			// A decr that does not shrink the digit count needs no pad.
			{"decr n 1\r\n", "99\r\n"},
			{"get n\r\n", "VALUE n 0 3\r\n99 \r\nEND\r\n"},
			// Underflow clamps at 0 and pads to the old width.
			{"decr n 500 \r\n", "0\r\n"},
			{"get n\r\n", "VALUE n 0 3\r\n0  \r\nEND\r\n"},
			// noreply decr still pads silently.
			{"set m 0 0 2\r\n10\r\ndecr m 9 noreply\r\nget m\r\n", "STORED\r\nVALUE m 0 2\r\n1 \r\nEND\r\n"},
		})
	})
}

func TestDecrUnpaddedByDefault(t *testing.T) {
	forEachBackend(t, Config{Addr: "127.0.0.1:0"}, func(t *testing.T, srv *Server) {
		runTranscript(t, srv.Addr(), []step{
			{"set n 0 0 4\r\n1000\r\n", "STORED\r\n"},
			{"decr n 1\r\n", "999\r\n"},
			// Default mode: the value shrinks with the number.
			{"get n\r\n", "VALUE n 0 3\r\n999\r\nEND\r\n"},
		})
	})
}
