package server

// Race-hardened end-to-end test: loadgen-style clients hammer an
// anchorage-backed alaskad over real loopback sockets while the
// maintenance loop runs both the §4.3 stop-the-world control loop and
// the §7 pause-free ConcurrentDefragPass. Every get must return the
// exact bytes last set on that key. Run under `go test -race -short`.

import (
	"bytes"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/rt"
)

func TestServerDefragUnderTrafficRace(t *testing.T) {
	acfg := anchorage.DefaultConfig()
	acfg.SubHeapSize = 256 * 1024
	acfg.FragHigh = 1.2 // enter the defrag state eagerly
	acfg.FragLow = 1.1
	acfg.WakeInterval = 5 * time.Millisecond
	backend, err := kv.NewAnchorageBackend(acfg, rt.WithPinMode(rt.CountedPins))
	if err != nil {
		t.Fatal(err)
	}
	store := kv.NewShardedStore(backend, 8, 0)
	srv := New(store, Config{
		Addr:             "127.0.0.1:0",
		MaintainInterval: 2 * time.Millisecond,
		DefragFragHigh:   1.1, // run pause-free passes almost continuously
		DefragBudget:     256 * 1024,
	})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	defer srv.Shutdown(5 * time.Second)

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	ops := 2500
	if testing.Short() {
		ops = 600
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			// Private key range per worker, so a get must return exactly
			// this worker's last set. Varying value sizes churn the heap
			// into fragmentation so both defrag paths have work.
			want := make(map[string][]byte)
			for op := 0; op < ops; op++ {
				key := "w" + strconv.Itoa(w) + "-k" + strconv.Itoa(rng.Intn(48))
				v, r := want[key], rng.Intn(10)
				switch {
				case v != nil && r < 5:
					got, _, ok, err := cl.Get(key)
					if err != nil {
						t.Errorf("worker %d get %s: %v", w, key, err)
						return
					}
					if !ok {
						t.Errorf("worker %d get %s: miss, want %d bytes", w, key, len(v))
						return
					}
					if !bytes.Equal(got, v) {
						t.Errorf("worker %d get %s: %d bytes %x..., want %d bytes %x...",
							w, key, len(got), got[:4], len(v), v[:4])
						return
					}
				case v != nil && r < 6:
					if _, err := cl.Delete(key); err != nil {
						t.Errorf("worker %d delete %s: %v", w, key, err)
						return
					}
					delete(want, key)
				default:
					size := 32 + rng.Intn(993)
					val := make([]byte, size)
					fill := byte(w<<4) | byte(op&0xf)
					for i := range val {
						val[i] = fill ^ byte(i)
					}
					if err := cl.Set(key, uint32(op), val); err != nil {
						t.Errorf("worker %d set %s: %v", w, key, err)
						return
					}
					want[key] = val
				}
			}
		}(w)
	}
	wg.Wait()

	// The test is only meaningful if defragmentation actually ran under
	// the traffic: check both mechanisms fired via the stats surface.
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	conc, _ := strconv.ParseInt(st["defrag_concurrent_passes"], 10, 64)
	barr, _ := strconv.ParseInt(st["defrag_barrier_passes"], 10, 64)
	moved, _ := strconv.ParseInt(st["defrag_moved_bytes"], 10, 64)
	if conc == 0 {
		t.Error("no pause-free concurrent defrag passes ran under traffic")
	}
	if barr == 0 {
		t.Error("no barrier defrag passes ran under traffic")
	}
	if moved == 0 {
		t.Error("defrag moved zero bytes under traffic")
	}
	if st["protocol_errors"] != "0" {
		t.Errorf("protocol_errors = %s, want 0", st["protocol_errors"])
	}
	t.Logf("defrag under traffic: %d concurrent passes, %d barrier passes, %d bytes moved, aborts=%s, frag=%s",
		conc, barr, moved, st["defrag_move_aborts"], st["heap_fragmentation"])
}
