//go:build !race

package server

// Allocation guards for the event engine: the worker-pool path must
// uphold the same 0-allocs/op steady-state contract as the blocking
// engine. These drive a detached eventIO (fd < 0, so flushes accumulate
// in the worker buffer exactly as replies do before a writev) through
// process() — framing scan, storage prescan, dispatch, reply append,
// recordOp — and pin GET-hit, SET, and a pipelined batch at exactly 0
// allocs/op. (Excluded under -race: the detector's instrumentation
// allocates.)

import (
	"bytes"
	"testing"

	"alaska/internal/kv"
)

// eventGuardEngine builds a detached event engine over a fresh
// malloc-backed store. ConnModel "goroutine" keeps New from opening a
// real epoll instance — the engine under test is driven directly.
func eventGuardEngine() *eventIO {
	store := kv.NewShardedStore(kv.NewMallocBackend(), 8, 0)
	srv := New(store, Config{Version: "guard", MaxReplyBacklog: -1, ConnModel: "goroutine"})
	h := &connHandler{srv: srv, sess: store.NewSession()}
	e := &eventIO{h: h}
	h.ev = e
	pc := &pollConn{fd: -1, id: 1}
	pc.sched.Store(schedScheduled)
	e.begin(pc)
	return e
}

// runEventBatch feeds one pre-built request buffer through process() as
// a single readiness burst and resets the reply buffer, exactly as a
// worker would between bursts (minus the writev).
func runEventBatch(tb testing.TB, e *eventIO, req []byte, want int) {
	e.in = append(e.in[:0], req...)
	e.rpos = 0
	cmds := 0
	if st := e.process(&cmds); st != evNeedInput {
		tb.Fatalf("process status = %d, want evNeedInput", st)
	}
	if cmds != want {
		tb.Fatalf("process dispatched %d commands, want %d", cmds, want)
	}
	e.out = e.out[:0]
	e.outOff = 0
}

func TestEventAllocFreeGetHit(t *testing.T) {
	e := eventGuardEngine()
	set := []byte("set bench:key 7 0 512\r\n" + string(bytes.Repeat([]byte{'v'}, 512)) + "\r\n")
	get := []byte("get bench:key\r\n")
	runEventBatch(t, e, set, 1)
	for i := 0; i < 8; i++ {
		runEventBatch(t, e, get, 1)
	}
	avg := testing.AllocsPerRun(200, func() {
		runEventBatch(t, e, get, 1)
	})
	if avg != 0 {
		t.Fatalf("event-engine GET hit allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

func TestEventAllocFreeSetSteadyState(t *testing.T) {
	e := eventGuardEngine()
	set := []byte("set bench:key 7 0 512\r\n" + string(bytes.Repeat([]byte{'v'}, 512)) + "\r\n")
	for i := 0; i < 8; i++ {
		runEventBatch(t, e, set, 1)
	}
	avg := testing.AllocsPerRun(200, func() {
		runEventBatch(t, e, set, 1)
	})
	if avg != 0 {
		t.Fatalf("event-engine steady-state SET allocates %.2f allocs/op, want 0", avg)
	}
}

// TestEventAllocFreePipelinedMixed covers the burst path proper: five
// commands framed, prescanned, and dispatched out of one input buffer,
// as a pipelining client would deliver them in a single readiness event.
func TestEventAllocFreePipelinedMixed(t *testing.T) {
	e := eventGuardEngine()
	val := string(bytes.Repeat([]byte{'x'}, 64))
	batch := []byte(
		"set a 1 0 64\r\n" + val + "\r\n" +
			"set b 2 0 64\r\n" + val + "\r\n" +
			"get a b\r\n" +
			"delete nosuch\r\n" +
			"gets a\r\n")
	for i := 0; i < 8; i++ {
		runEventBatch(t, e, batch, 5)
	}
	avg := testing.AllocsPerRun(100, func() {
		runEventBatch(t, e, batch, 5)
	})
	if avg != 0 {
		t.Fatalf("event-engine pipelined batch allocates %.2f allocs/batch in steady state, want 0", avg)
	}
}

// TestEventParkReleasesMemory is the satellite guarantee in unit form: a
// connection parked with no residue sheds its spill buffers entirely —
// the memory cost of a parked idle connection is the bare pollConn.
func TestEventParkReleasesMemory(t *testing.T) {
	e := eventGuardEngine()
	pc := e.pc
	// A burst that leaves residue: partial command in the input buffer,
	// undrained reply bytes (fd < 0 means tryFlush drains nothing).
	e.in = append(e.in[:0], "get half-a-comm"...)
	e.rpos = 0
	cmds := 0
	if st := e.process(&cmds); st != evNeedInput {
		t.Fatalf("process status = %d, want evNeedInput", st)
	}
	e.out = append(e.out[:0], "VALUE residue 0 1\r\nx\r\nEND\r\n"...)
	e.park()
	if string(pc.inSpill) != "get half-a-comm" {
		t.Fatalf("inSpill = %q after park, want the partial command", pc.inSpill)
	}
	if len(pc.outSpill) == 0 {
		t.Fatal("outSpill empty after park despite undrained replies")
	}

	// Wake, let it drain (consume everything), park again: both spills
	// must be released — an idle parked connection holds no buffers.
	e.begin(pc)
	e.rpos = len(e.in) // consume the partial line
	e.spillOff = len(e.spill)
	e.park()
	if pc.inSpill != nil && cap(pc.inSpill) > connSpillRetain {
		t.Fatalf("idle park kept %d bytes of inSpill capacity", cap(pc.inSpill))
	}
	if pc.outSpill != nil && cap(pc.outSpill) > connSpillRetain {
		t.Fatalf("idle park kept %d bytes of outSpill capacity", cap(pc.outSpill))
	}
	if len(pc.inSpill) != 0 || len(pc.outSpill) != 0 {
		t.Fatalf("idle park left residue: in=%d out=%d", len(pc.inSpill), len(pc.outSpill))
	}
}
