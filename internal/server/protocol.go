// Package server implements alaskad: a network-facing memcached-protocol
// server over the Alaska heap. It speaks the memcached ASCII protocol
// (get/gets/gat/gats, set/add/replace/cas/append/prepend, incr/decr,
// delete/touch, stats/version/quit) on TCP, runs each connection on a
// worker goroutine that owns an rt.Thread-backed kv.Session, and — on the
// Anchorage backend — defragments the heap under live traffic: a
// background maintenance goroutine drives the §4.3 control loop
// (stop-the-world barrier passes) and the §7 pause-free
// ConcurrentDefragPass off live RSS/used-bytes while connections keep
// serving requests between safepoint polls.
package server

// The request path no longer runs the string-based parsers below — the
// zero-allocation tokenizer and byte parsers in parse.go do — but they
// are kept, unchanged, as the reference implementations the differential
// fuzzer (FuzzTokenizeDifferential) holds the byte path to: same fields,
// same verdicts, same CLIENT_ERROR classification. Shared protocol
// constants, response lines, deadline normalization, and the stored
// value codec also live here.

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Protocol response lines (memcached ASCII, without the CRLF).
const (
	respStored      = "STORED"
	respNotStored   = "NOT_STORED"
	respExists      = "EXISTS"
	respDeleted     = "DELETED"
	respNotFound    = "NOT_FOUND"
	respTouched     = "TOUCHED"
	respEnd         = "END"
	respOK          = "OK"
	respReset       = "RESET"
	respError       = "ERROR"
	respBadFormat   = "CLIENT_ERROR bad command line format"
	respLineTooLong = "CLIENT_ERROR line too long"
	respBadChunk    = "CLIENT_ERROR bad data chunk"
	respNonNumeric  = "CLIENT_ERROR cannot increment or decrement non-numeric value"
	respBadDelta    = "CLIENT_ERROR invalid numeric delta argument"
	respTooLarge    = "SERVER_ERROR object too large for cache"
	respOutOfMemory = "SERVER_ERROR out of memory storing object"
)

const (
	crlf      = "\r\n"
	maxKeyLen = 250
	// valueHeaderLen is the per-value metadata the server prepends to the
	// stored bytes: flags (uint32) and the cas unique (uint64). Keeping
	// the metadata inside the stored value keeps the kv layer generic and
	// makes flags+cas+data one atomic unit under the shard lock.
	valueHeaderLen = 12
	// maxRelativeExptime is memcached's 30-day threshold: wire exptimes
	// up to it are relative seconds-from-now; anything larger is an
	// absolute unix timestamp.
	maxRelativeExptime = 60 * 60 * 24 * 30
	// maxNumericLen is the longest decimal a uint64 can need (20
	// digits); anything longer after zero-stripping overflows, which
	// memcached's strtoull reports as non-numeric (ERANGE).
	maxNumericLen = 20
)

// storageArgs are the parsed arguments of set/add/replace/cas and
// append/prepend: <key> <flags> <exptime> <bytes> [<cas unique>] [noreply].
type storageArgs struct {
	key       string
	flags     uint32
	exptime   int64
	nbytes    int
	casUnique uint64 // cas only
	noreply   bool
}

// errBadLine marks a malformed command line (CLIENT_ERROR bad command
// line format); errBadDelta marks an incr/decr delta that is not a
// 64-bit unsigned decimal (a distinct CLIENT_ERROR in memcached).
var (
	errBadLine  = fmt.Errorf("bad command line format")
	errBadDelta = fmt.Errorf("invalid numeric delta argument")
)

// validKey reports whether key is a legal memcached key: 1..250 bytes,
// no whitespace or control characters.
func validKey(key string) bool {
	if len(key) == 0 || len(key) > maxKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return false
		}
	}
	return true
}

// parseStorage parses the arguments of a storage command; withCAS adds
// the trailing <cas unique> of `cas`.
func parseStorage(args []string, withCAS bool) (storageArgs, error) {
	var sa storageArgs
	want := 4
	if withCAS {
		want = 5
	}
	if len(args) == want+1 && args[want] == "noreply" {
		sa.noreply = true
		args = args[:want]
	}
	if len(args) != want {
		return sa, errBadLine
	}
	sa.key = args[0]
	if !validKey(sa.key) {
		return sa, errBadLine
	}
	flags, err := strconv.ParseUint(args[1], 10, 32)
	if err != nil {
		return sa, errBadLine
	}
	sa.flags = uint32(flags)
	sa.exptime, err = strconv.ParseInt(args[2], 10, 64)
	if err != nil {
		return sa, errBadLine
	}
	n, err := strconv.ParseUint(args[3], 10, 31)
	if err != nil {
		return sa, errBadLine
	}
	sa.nbytes = int(n)
	if withCAS {
		sa.casUnique, err = strconv.ParseUint(args[4], 10, 64)
		if err != nil {
			return sa, errBadLine
		}
	}
	return sa, nil
}

// parseDelete parses `delete <key> [noreply]`.
func parseDelete(args []string) (key string, noreply bool, err error) {
	if len(args) == 2 && args[1] == "noreply" {
		noreply = true
		args = args[:1]
	}
	if len(args) != 1 || !validKey(args[0]) {
		return "", false, errBadLine
	}
	return args[0], noreply, nil
}

// parseIncrDecr parses `incr|decr <key> <delta> [noreply]`. A structurally
// sound line whose delta is not a uint64 decimal yields errBadDelta — a
// different CLIENT_ERROR than a malformed line, matching memcached.
func parseIncrDecr(args []string) (key string, delta uint64, noreply bool, err error) {
	if len(args) == 3 && args[2] == "noreply" {
		noreply = true
		args = args[:2]
	}
	if len(args) != 2 || !validKey(args[0]) {
		return "", 0, false, errBadLine
	}
	delta, derr := strconv.ParseUint(args[1], 10, 64)
	if derr != nil {
		return args[0], 0, noreply, errBadDelta
	}
	return args[0], delta, noreply, nil
}

// parseTouch parses `touch <key> <exptime> [noreply]`.
func parseTouch(args []string) (key string, exptime int64, noreply bool, err error) {
	if len(args) == 3 && args[2] == "noreply" {
		noreply = true
		args = args[:2]
	}
	if len(args) != 2 || !validKey(args[0]) {
		return "", 0, false, errBadLine
	}
	exptime, err = strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return "", 0, false, errBadLine
	}
	return args[0], exptime, noreply, nil
}

// parseFlushAll parses `flush_all [delay] [noreply]`. The delay must be
// a non-negative int64 (memcached's unsigned rexpirtime); omitting it
// means flush immediately.
func parseFlushAll(args []string) (delay int64, noreply bool, err error) {
	if n := len(args); n > 0 && args[n-1] == "noreply" {
		noreply = true
		args = args[:n-1]
	}
	switch len(args) {
	case 0:
		return 0, noreply, nil
	case 1:
		delay, err = strconv.ParseInt(args[0], 10, 64)
		if err != nil || delay < 0 {
			return 0, noreply, errBadLine
		}
		return delay, noreply, nil
	default:
		return 0, noreply, errBadLine
	}
}

// parseVerbosity parses `verbosity <level> [noreply]`.
func parseVerbosity(args []string) (level uint64, noreply bool, err error) {
	if len(args) == 2 && args[1] == "noreply" {
		noreply = true
		args = args[:1]
	}
	if len(args) != 1 {
		return 0, noreply, errBadLine
	}
	level, err = strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return 0, noreply, errBadLine
	}
	return level, noreply, nil
}

// parseGat parses `gat|gats <exptime> <key>+`.
func parseGat(args []string) (exptime int64, keys []string, err error) {
	if len(args) < 2 {
		return 0, nil, errBadLine
	}
	exptime, err = strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return 0, nil, errBadLine
	}
	keys = args[1:]
	for _, k := range keys {
		if !validKey(k) {
			return 0, nil, errBadLine
		}
	}
	return exptime, keys, nil
}

// deadlineFor converts a wire exptime into an absolute deadline under
// memcached's rules: 0 never expires; a negative value is immediately
// expired; values up to 30 days are seconds relative to now; anything
// larger is an absolute unix timestamp (which may itself be in the past).
func deadlineFor(exptime int64, now time.Time) time.Time {
	switch {
	case exptime == 0:
		return time.Time{}
	case exptime < 0:
		// Any deadline at-or-before now reads as already expired; using
		// now itself keeps this exact under a frozen test clock.
		return now
	case exptime <= maxRelativeExptime:
		return now.Add(time.Duration(exptime) * time.Second)
	default:
		return time.Unix(exptime, 0)
	}
}

// parseNumericValue parses a stored value as the 64-bit unsigned decimal
// incr/decr operate on: plain ASCII digits, no sign, no space padding
// (we never space-pad, unlike some memcached versions). Leading zeros
// are accepted, like memcached's strtoull; a value that overflows a
// uint64 after zero-stripping is non-numeric.
func parseNumericValue(data []byte) (uint64, bool) {
	if len(data) == 0 {
		return 0, false
	}
	for _, c := range data {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	trimmed := data
	for len(trimmed) > 1 && trimmed[0] == '0' {
		trimmed = trimmed[1:]
	}
	if len(trimmed) > maxNumericLen {
		return 0, false
	}
	v, err := strconv.ParseUint(string(trimmed), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// encodeValue packs flags+cas+data into the stored representation. A
// zero-length data body packs to exactly the 12-byte header and must
// round-trip back to empty data with the same flags and cas.
func encodeValue(flags uint32, cas uint64, data []byte) []byte {
	buf := make([]byte, valueHeaderLen+len(data))
	binary.BigEndian.PutUint32(buf[0:4], flags)
	binary.BigEndian.PutUint64(buf[4:12], cas)
	copy(buf[valueHeaderLen:], data)
	return buf
}

// decodeValue splits a stored representation back into flags, cas, data.
func decodeValue(stored []byte) (flags uint32, cas uint64, data []byte, err error) {
	if len(stored) < valueHeaderLen {
		return 0, 0, nil, fmt.Errorf("server: stored value shorter than header (%d bytes)", len(stored))
	}
	return binary.BigEndian.Uint32(stored[0:4]),
		binary.BigEndian.Uint64(stored[4:12]),
		stored[valueHeaderLen:], nil
}

// splitCommand tokenizes a command line on single spaces, memcached
// style. An empty line yields no fields.
func splitCommand(line string) []string {
	return strings.Fields(line)
}
