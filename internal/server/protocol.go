// Package server implements alaskad: a network-facing memcached-protocol
// server over the Alaska heap. It speaks the memcached ASCII protocol
// (get/gets/set/add/replace/delete/stats/version/quit) on TCP, runs each
// connection on a worker goroutine that owns an rt.Thread-backed
// kv.Session, and — on the Anchorage backend — defragments the heap under
// live traffic: a background maintenance goroutine drives the §4.3
// control loop (stop-the-world barrier passes) and the §7 pause-free
// ConcurrentDefragPass off live RSS/used-bytes while connections keep
// serving requests between safepoint polls.
package server

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Protocol response lines (memcached ASCII, without the CRLF).
const (
	respStored      = "STORED"
	respNotStored   = "NOT_STORED"
	respDeleted     = "DELETED"
	respNotFound    = "NOT_FOUND"
	respEnd         = "END"
	respError       = "ERROR"
	respBadFormat   = "CLIENT_ERROR bad command line format"
	respBadChunk    = "CLIENT_ERROR bad data chunk"
	respTooLarge    = "SERVER_ERROR object too large for cache"
	respOutOfMemory = "SERVER_ERROR out of memory storing object"
)

const (
	crlf      = "\r\n"
	maxKeyLen = 250
	// valueHeaderLen is the per-value metadata the server prepends to the
	// stored bytes: flags (uint32) and the cas unique (uint64). Keeping
	// the metadata inside the stored value keeps the kv layer generic and
	// makes flags+cas+data one atomic unit under the shard lock.
	valueHeaderLen = 12
)

// storageArgs are the parsed arguments of set/add/replace:
// <key> <flags> <exptime> <bytes> [noreply].
type storageArgs struct {
	key     string
	flags   uint32
	exptime int64
	nbytes  int
	noreply bool
}

// errBadLine marks a malformed command line (CLIENT_ERROR bad command
// line format).
var errBadLine = fmt.Errorf("bad command line format")

// validKey reports whether key is a legal memcached key: 1..250 bytes,
// no whitespace or control characters.
func validKey(key string) bool {
	if len(key) == 0 || len(key) > maxKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return false
		}
	}
	return true
}

// parseStorage parses the arguments of a storage command.
func parseStorage(args []string) (storageArgs, error) {
	var sa storageArgs
	if len(args) == 5 && args[4] == "noreply" {
		sa.noreply = true
		args = args[:4]
	}
	if len(args) != 4 {
		return sa, errBadLine
	}
	sa.key = args[0]
	if !validKey(sa.key) {
		return sa, errBadLine
	}
	flags, err := strconv.ParseUint(args[1], 10, 32)
	if err != nil {
		return sa, errBadLine
	}
	sa.flags = uint32(flags)
	// Expiration is accepted for wire compatibility but not yet enforced
	// (see ROADMAP: TTL/expiry).
	sa.exptime, err = strconv.ParseInt(args[2], 10, 64)
	if err != nil {
		return sa, errBadLine
	}
	n, err := strconv.ParseUint(args[3], 10, 31)
	if err != nil {
		return sa, errBadLine
	}
	sa.nbytes = int(n)
	return sa, nil
}

// parseDelete parses `delete <key> [noreply]`.
func parseDelete(args []string) (key string, noreply bool, err error) {
	if len(args) == 2 && args[1] == "noreply" {
		noreply = true
		args = args[:1]
	}
	if len(args) != 1 || !validKey(args[0]) {
		return "", false, errBadLine
	}
	return args[0], noreply, nil
}

// encodeValue packs flags+cas+data into the stored representation.
func encodeValue(flags uint32, cas uint64, data []byte) []byte {
	buf := make([]byte, valueHeaderLen+len(data))
	binary.BigEndian.PutUint32(buf[0:4], flags)
	binary.BigEndian.PutUint64(buf[4:12], cas)
	copy(buf[valueHeaderLen:], data)
	return buf
}

// decodeValue splits a stored representation back into flags, cas, data.
func decodeValue(stored []byte) (flags uint32, cas uint64, data []byte, err error) {
	if len(stored) < valueHeaderLen {
		return 0, 0, nil, fmt.Errorf("server: stored value shorter than header (%d bytes)", len(stored))
	}
	return binary.BigEndian.Uint32(stored[0:4]),
		binary.BigEndian.Uint64(stored[4:12]),
		stored[valueHeaderLen:], nil
}

// splitCommand tokenizes a command line on single spaces, memcached
// style. An empty line yields no fields.
func splitCommand(line string) []string {
	return strings.Fields(line)
}
