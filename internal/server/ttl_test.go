package server

// Deterministic TTL tests: the server is built with a manual clock
// (Config.Clock threads it through exptime normalization AND the
// store's expiry checks), so elapsed-time behavior — relative exptimes,
// absolute unix timestamps, touch extensions, the background sweep — is
// asserted exactly, with no sleeps standing in for time.

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// testClock is a settable wall clock safe for use from the connection
// goroutines and the maintenance loop.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock {
	// A fixed modern epoch, far above the 30-day relative/absolute
	// threshold, so absolute-exptime arithmetic is realistic.
	return &testClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func (c *testClock) Unix() int64 { return c.Now().Unix() }

func TestTTLLifecycleMockClock(t *testing.T) {
	clk := newTestClock()
	forEachBackend(t, Config{Addr: "127.0.0.1:0", Clock: clk.Now}, func(t *testing.T, srv *Server) {
		cl, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.SetEx("k", 1, 5, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, _, ok, err := cl.Get("k"); err != nil || !ok {
			t.Fatalf("get before deadline: ok=%v err=%v", ok, err)
		}
		clk.Advance(4 * time.Second)
		if _, _, ok, err := cl.Get("k"); err != nil || !ok {
			t.Fatalf("get at +4s of a 5s TTL: ok=%v err=%v", ok, err)
		}
		clk.Advance(time.Second) // exactly the deadline: dead
		if _, _, ok, err := cl.Get("k"); err != nil || ok {
			t.Fatalf("get at deadline: ok=%v err=%v, want miss", ok, err)
		}
		st, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if exp, _ := strconv.Atoi(st["expired"]); exp < 1 {
			t.Errorf("expired = %s, want >= 1", st["expired"])
		}
	})
}

func TestAbsoluteExptimeMockClock(t *testing.T) {
	clk := newTestClock()
	forEachBackend(t, Config{Addr: "127.0.0.1:0", Clock: clk.Now}, func(t *testing.T, srv *Server) {
		cl, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		// An absolute unix deadline 100 s out (far above the 30-day
		// threshold, so it is not read as relative).
		deadline := clk.Unix() + 100
		if err := cl.SetEx("abs", 0, deadline, []byte("v")); err != nil {
			t.Fatal(err)
		}
		clk.Advance(99 * time.Second)
		if _, _, ok, err := cl.Get("abs"); err != nil || !ok {
			t.Fatalf("get before absolute deadline: ok=%v err=%v", ok, err)
		}
		clk.Advance(time.Second)
		if _, _, ok, err := cl.Get("abs"); err != nil || ok {
			t.Fatalf("get at absolute deadline: ok=%v err=%v, want miss", ok, err)
		}
		// An absolute deadline already in the past: born dead.
		if err := cl.SetEx("past", 0, clk.Unix()-10, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, _, ok, err := cl.Get("past"); err != nil || ok {
			t.Fatalf("get of past-deadline value: ok=%v err=%v, want miss", ok, err)
		}
	})
}

func TestTouchAndGatExtendMockClock(t *testing.T) {
	clk := newTestClock()
	forEachBackend(t, Config{Addr: "127.0.0.1:0", Clock: clk.Now}, func(t *testing.T, srv *Server) {
		cl, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		// touch rewrites the deadline: 5s TTL, +3s, touch 10 → dies at +13.
		if err := cl.SetEx("k", 0, 5, []byte("v")); err != nil {
			t.Fatal(err)
		}
		clk.Advance(3 * time.Second)
		if ok, err := cl.Touch("k", 10); err != nil || !ok {
			t.Fatalf("touch: ok=%v err=%v", ok, err)
		}
		clk.Advance(7 * time.Second) // +10: past the original deadline
		if _, _, ok, err := cl.Get("k"); err != nil || !ok {
			t.Fatalf("touched key died on the old deadline: ok=%v err=%v", ok, err)
		}
		clk.Advance(3 * time.Second) // +13: past the touched deadline
		if _, _, ok, err := cl.Get("k"); err != nil || ok {
			t.Fatalf("touched key outlived the new deadline: ok=%v err=%v", ok, err)
		}
		// gat retrieves and extends in one step.
		if err := cl.SetEx("g", 0, 5, []byte("w")); err != nil {
			t.Fatal(err)
		}
		clk.Advance(3 * time.Second)
		if v, _, ok, err := cl.Gat(10, "g"); err != nil || !ok || string(v) != "w" {
			t.Fatalf("gat: %q ok=%v err=%v", v, ok, err)
		}
		clk.Advance(7 * time.Second)
		if _, _, ok, err := cl.Get("g"); err != nil || !ok {
			t.Fatalf("gat did not extend the deadline: ok=%v err=%v", ok, err)
		}
		// touch 0 makes it immortal.
		if ok, err := cl.Touch("g", 0); err != nil || !ok {
			t.Fatalf("touch 0: ok=%v err=%v", ok, err)
		}
		clk.Advance(1000 * time.Hour)
		if _, _, ok, err := cl.Get("g"); err != nil || !ok {
			t.Fatalf("touch 0 did not clear the deadline: ok=%v err=%v", ok, err)
		}
	})
}

// TestFlushAllDelayMockClock: the delayed flush_all form is an epoch in
// the future — everything stored before the epoch (including values
// stored *after the command* but before the epoch) dies exactly when the
// clock reaches it; values stored after the epoch passes are untouched.
func TestFlushAllDelayMockClock(t *testing.T) {
	clk := newTestClock()
	forEachBackend(t, Config{Addr: "127.0.0.1:0", Clock: clk.Now}, func(t *testing.T, srv *Server) {
		cl, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Set("old", 0, []byte("v")); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
		if err := cl.FlushAll(5); err != nil { // epoch = now+5s
			t.Fatal(err)
		}
		// Pending flush: nothing dies yet.
		if _, _, ok, err := cl.Get("old"); err != nil || !ok {
			t.Fatalf("get before the flush epoch: ok=%v err=%v", ok, err)
		}
		clk.Advance(time.Second)
		if err := cl.Set("mid", 0, []byte("w")); err != nil { // before the epoch: doomed too
			t.Fatal(err)
		}
		clk.Advance(4 * time.Second) // the epoch arrives
		if _, _, ok, err := cl.Get("old"); err != nil || ok {
			t.Fatalf("old survived the flush epoch: ok=%v err=%v", ok, err)
		}
		if _, _, ok, err := cl.Get("mid"); err != nil || ok {
			t.Fatalf("mid (stored before the epoch) survived: ok=%v err=%v", ok, err)
		}
		if err := cl.Set("new", 0, []byte("x")); err != nil { // after the epoch: safe
			t.Fatal(err)
		}
		clk.Advance(time.Hour)
		if v, _, ok, err := cl.Get("new"); err != nil || !ok || string(v) != "x" {
			t.Fatalf("new damaged by the flush: %q ok=%v err=%v", v, ok, err)
		}
		// An immediate flush now kills it (the clock has moved since the
		// store, so it sits strictly before the new epoch).
		if err := cl.FlushAll(0); err != nil {
			t.Fatal(err)
		}
		if _, _, ok, err := cl.Get("new"); err != nil || ok {
			t.Fatalf("new survived an immediate flush: ok=%v err=%v", ok, err)
		}
	})
}

// TestExpirySweepServerSide proves dead values are reclaimed by the
// background maintenance sweep alone — no client ever touches them
// again after storing.
func TestExpirySweepServerSide(t *testing.T) {
	clk := newTestClock()
	srv := startAnchorageServer(t, Config{
		Addr:             "127.0.0.1:0",
		Clock:            clk.Now,
		MaintainInterval: 2 * time.Millisecond,
	})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const n = 120
	for i := 0; i < n; i++ {
		if err := cl.SetEx(fmt.Sprintf("dying%03d", i), 0, 1, []byte("xxxxxxxxxxxxxxxx")); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Set("keeper", 0, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	// Wait for the maintenance loop's bounded sweeps to reap everything.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		expired, _ := strconv.Atoi(st["expired"])
		items, _ := strconv.Atoi(st["curr_items"])
		sweeps, _ := strconv.Atoi(st["expiry_sweeps"])
		if expired >= n && items == 1 {
			if sweeps < 1 {
				t.Errorf("expiry_sweeps = %d, want >= 1", sweeps)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep incomplete: expired=%d curr_items=%d sweeps=%d", expired, items, sweeps)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v, _, ok, err := cl.Get("keeper"); err != nil || !ok || string(v) != "alive" {
		t.Fatalf("keeper damaged by sweep: %q ok=%v err=%v", v, ok, err)
	}
}
