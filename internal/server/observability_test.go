package server

// Observability-plane tests: `stats reset` / `stats slow` wire
// conformance across every backend, the slow-op ring's capture and
// wraparound behavior, the per-opcode histograms, and the admin HTTP
// surface (/metrics, /healthz, /debug/pprof, /debug/slowops).

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"alaska/internal/kv"
	"alaska/internal/logx"
)

func TestStatsResetConformance(t *testing.T) {
	forEachBackend(t, Config{Addr: "127.0.0.1:0"}, func(t *testing.T, srv *Server) {
		runTranscript(t, srv.Addr(), []step{
			{"set k 0 0 3\r\nabc\r\n", "STORED\r\n"},
			{"get k\r\n", "VALUE k 0 3\r\nabc\r\nEND\r\n"},
			{"get missing\r\n", "END\r\n"},
			{"stats reset\r\n", "RESET\r\n"},
			// State survives the reset: the item is still there...
			{"get k\r\n", "VALUE k 0 3\r\nabc\r\nEND\r\n"},
		})
		snap := srv.store.Snapshot()
		// ...but only the post-reset get is counted.
		if snap.Sets != 0 || snap.Gets != 1 || snap.Hits != 1 || snap.Misses != 0 {
			t.Fatalf("post-reset counters: sets=%d gets=%d hits=%d misses=%d, want 0/1/1/0",
				snap.Sets, snap.Gets, snap.Hits, snap.Misses)
		}
		if snap.Keys != 1 {
			t.Fatalf("reset must not touch the live-key gauge: keys=%d, want 1", snap.Keys)
		}
		if n := srv.totalConns.Load(); n != 0 {
			t.Fatalf("post-reset total_connections=%d, want 0", n)
		}
	})
}

func TestStatsResetZeroesLatencyAndBytes(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{Addr: "127.0.0.1:0"})
	runTranscript(t, srv.Addr(), []step{
		{"set k 0 0 3\r\nabc\r\n", "STORED\r\n"},
		{"stats reset\r\n", "RESET\r\n"},
	})
	// The `stats reset` command itself is recorded after dispatch
	// returns, so at most that one op may appear; the set must be gone.
	if srv.lat.Count() > 1 {
		t.Fatalf("post-reset latency count=%d, want <=1", srv.lat.Count())
	}
	if got := srv.OpLatency("set").Count(); got != 0 {
		t.Fatalf("post-reset per-op set count=%d, want 0", got)
	}
}

// TestStatsSlowWire drives a server with an aggressive threshold so
// every command is captured, then checks the `stats slow` row format.
func TestStatsSlowWire(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{
		Addr:            "127.0.0.1:0",
		SlowOpThreshold: time.Nanosecond,
	})
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)
	send := func(s string) {
		t.Helper()
		if _, err := c.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	readUntilEnd := func() []string {
		t.Helper()
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		var lines []string
		for {
			l, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("reading stats slow: %v (got %q)", err, lines)
			}
			l = strings.TrimRight(l, "\r\n")
			if l == "END" {
				return lines
			}
			lines = append(lines, l)
		}
	}
	send("set slowkey 0 0 3\r\nabc\r\n")
	if l, _ := br.ReadString('\n'); l != "STORED\r\n" {
		t.Fatalf("set: %q", l)
	}
	send("get slowkey\r\n")
	for i := 0; i < 3; i++ { // VALUE, data, END
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
	}
	send("stats slow\r\n")
	lines := readUntilEnd()
	if len(lines) == 0 {
		t.Fatal("stats slow returned no rows despite 1ns threshold")
	}
	// Newest first: row 0 is the get (the stats command itself is
	// recorded only after its reply is generated).
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "slow:0:cmd get") {
		t.Fatalf("stats slow missing newest-first get row:\n%s", joined)
	}
	if !strings.Contains(joined, "slow:0:key slowkey") {
		t.Fatalf("stats slow missing key row:\n%s", joined)
	}
	for _, want := range []string{"latency_us", "conn", "age_s"} {
		if !strings.Contains(joined, "slow:0:"+want) {
			t.Fatalf("stats slow missing %s row:\n%s", want, joined)
		}
	}
	// Unknown sub-commands still answer ERROR.
	send("stats bogus\r\n")
	if l, _ := br.ReadString('\n'); l != "ERROR\r\n" {
		t.Fatalf("stats bogus: %q", l)
	}
}

func TestSlowRingWraparoundAndTruncation(t *testing.T) {
	r := newSlowRing()
	long := strings.Repeat("k", slowOpKeyLen+10)
	for i := 0; i < slowRingSize+17; i++ {
		r.record(cmdGet, []byte(long), time.Duration(i+1)*time.Microsecond, uint64(i), time.Unix(1000, 0))
	}
	ops := r.snapshot()
	if len(ops) != slowRingSize {
		t.Fatalf("snapshot after overflow: %d entries, want %d", len(ops), slowRingSize)
	}
	// Newest first.
	if ops[0].ConnID != uint64(slowRingSize+16) {
		t.Fatalf("newest entry conn=%d, want %d", ops[0].ConnID, slowRingSize+16)
	}
	if ops[0].Latency <= ops[len(ops)-1].Latency {
		t.Fatalf("entries not newest-first: head=%v tail=%v", ops[0].Latency, ops[len(ops)-1].Latency)
	}
	wantKey := long[:slowOpKeyLen] + "..."
	if ops[0].Key != wantKey {
		t.Fatalf("truncated key = %q, want %q", ops[0].Key, wantKey)
	}
}

// TestSlowRingConcurrent hammers record from many goroutines while a
// reader snapshots — under -race this proves the seqlock keeps readers
// and writers apart without locks.
func TestSlowRingConcurrent(t *testing.T) {
	r := newSlowRing()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := []byte("writer-key")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.record(cmdSet, key, time.Duration(i)*time.Microsecond, uint64(g), time.Unix(int64(i), 0))
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		for _, op := range r.snapshot() {
			if op.Cmd != "set" || op.Key != "writer-key" {
				t.Errorf("torn entry surfaced: %+v", op)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestPerOpHistograms(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{Addr: "127.0.0.1:0"})
	runTranscript(t, srv.Addr(), []step{
		{"set k 0 0 3\r\nabc\r\n", "STORED\r\n"},
		{"get k\r\n", "VALUE k 0 3\r\nabc\r\nEND\r\n"},
		{"get k\r\n", "VALUE k 0 3\r\nabc\r\nEND\r\n"},
		{"delete k\r\n", "DELETED\r\n"},
		{"incr nosuch 1\r\n", "NOT_FOUND\r\n"},
	})
	want := map[string]int64{"get": 2, "set": 1, "delete": 1, "incr": 1, "cas": 0}
	for op, n := range want {
		rec := srv.OpLatency(op)
		if rec == nil {
			t.Fatalf("OpLatency(%q) = nil", op)
		}
		if got := rec.Count(); got != n {
			t.Errorf("per-op %s count = %d, want %d", op, got, n)
		}
	}
	if srv.OpLatency("nonsense") != nil {
		t.Fatal("OpLatency must return nil for unknown opcodes")
	}
	if srv.bytesRead.Load() == 0 || srv.bytesWritten.Load() == 0 {
		t.Fatalf("byte counters not advancing: read=%d written=%d",
			srv.bytesRead.Load(), srv.bytesWritten.Load())
	}
}

// TestDisableInstrumentation proves the bench A/B switch: no per-op
// recorders, no slow ring, no byte counting — but the aggregate stats
// surface still works.
func TestDisableInstrumentation(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{
		Addr:                   "127.0.0.1:0",
		DisableInstrumentation: true,
		SlowOpThreshold:        time.Nanosecond,
	})
	runTranscript(t, srv.Addr(), []step{
		{"set k 0 0 3\r\nabc\r\n", "STORED\r\n"},
		{"get k\r\n", "VALUE k 0 3\r\nabc\r\nEND\r\n"},
	})
	if srv.OpLatency("get") != nil {
		t.Fatal("per-op recorders must be nil when instrumentation is disabled")
	}
	if got := srv.SlowOps(); got != nil {
		t.Fatalf("slow ring must be off: %+v", got)
	}
	if srv.lat.Count() == 0 {
		t.Fatal("aggregate latency recorder must stay on")
	}
	if srv.bytesRead.Load() != 0 {
		t.Fatal("byte counters must be off when instrumentation is disabled")
	}
}

func TestAdminHandler(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{
		Addr:            "127.0.0.1:0",
		SlowOpThreshold: time.Nanosecond,
		Version:         "admintest",
	})
	runTranscript(t, srv.Addr(), []step{
		{"set k 0 0 3\r\nabc\r\n", "STORED\r\n"},
		{"get k\r\n", "VALUE k 0 3\r\nabc\r\nEND\r\n"},
	})
	ts := httptest.NewServer(NewAdminHandler(srv))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		`alaskad_op_latency_seconds_count{op="get"} 1`,
		`alaskad_op_latency_seconds_bucket{op="set",le="+Inf"} 1`,
		"# TYPE alaskad_op_latency_seconds histogram",
		"alaskad_defrag_pass_duration_seconds_count",
		"alaskad_safepoint_wait_seconds_count",
		`alaskad_store_ops_total{op="get",outcome="hit"} 1`,
		`version="admintest"`,
		"alaskad_bytes_read_total",
		"alaskad_items 1",
		"alaskad_slow_ops_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get("/debug/slowops")
	if code != 200 {
		t.Fatalf("/debug/slowops: status %d", code)
	}
	var ops []SlowOp
	if err := json.Unmarshal([]byte(body), &ops); err != nil {
		t.Fatalf("/debug/slowops not JSON: %v\n%s", err, body)
	}
	if len(ops) == 0 {
		t.Fatal("/debug/slowops empty despite 1ns threshold")
	}

	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "profiles") {
		t.Fatalf("/debug/pprof/ index: %d", code)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
}

// TestVerbosityMovesLogLevel proves the wire command drives the leveled
// logger.
func TestVerbosityMovesLogLevel(t *testing.T) {
	logger := logx.New(&nopWriter{}, "t: ", logx.LevelError)
	srv := startServer(t, kv.NewMallocBackend(), Config{
		Addr:   "127.0.0.1:0",
		Logger: logger,
	})
	runTranscript(t, srv.Addr(), []step{
		{"verbosity 2\r\n", "OK\r\n"},
	})
	if got := logger.GetLevel(); got != logx.LevelDebug {
		t.Fatalf("after `verbosity 2`: level=%v, want debug", got)
	}
	runTranscript(t, srv.Addr(), []step{
		{"verbosity 0 noreply\r\nversion\r\n", "VERSION " + srv.cfg.Version + "\r\n"},
	})
	if got := logger.GetLevel(); got != logx.LevelError {
		t.Fatalf("after `verbosity 0`: level=%v, want error", got)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
