package server

// Connection-limits and backpressure battery: the -max-conns accept
// gate (exact listen_disabled_num accounting and post-disconnect
// recovery), mock-clock idle reaping of slow-loris sockets, the bounded
// command-line read (one hostile newline-free stream must not grow
// memory), slow-client write budgets (reply backlog cap and per-write
// deadlines), transient-accept-error retry, and the Shutdown-vs-reaper
// close race.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/rt"
)

// dialRaw opens a plain TCP connection to the server.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// expectRead asserts the next len(want) response bytes.
func expectRead(t *testing.T, c net.Conn, want string) {
	t.Helper()
	buf := make([]byte, len(want))
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v (got %q so far)", err, buf)
	}
	if string(buf) != want {
		t.Fatalf("got %q, want %q", buf, want)
	}
}

// expectNoData asserts the connection stays silent for the window — the
// accept gate is holding it in the backlog.
func expectNoData(t *testing.T, c net.Conn, window time.Duration) {
	t.Helper()
	_ = c.SetReadDeadline(time.Now().Add(window))
	buf := make([]byte, 1)
	n, err := c.Read(buf)
	if n > 0 {
		t.Fatalf("expected silence, got %q", buf[:n])
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("expected read timeout, got %v", err)
	}
	_ = c.SetReadDeadline(time.Time{})
}

// statsVia fetches the stats map over a fresh connection.
func statsVia(t *testing.T, addr string) map[string]string {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAcceptGateConformance is the -max-conns acceptance criterion: with
// the cap at N, N+K concurrent connections produce exactly K deferred
// accepts in listen_disabled_num, and the server recovers the full
// accept rate once connections disconnect.
func TestAcceptGateConformance(t *testing.T) {
	const maxConns, extra = 2, 3
	srv := startServer(t, kv.NewMallocBackend(), Config{
		Addr:     "127.0.0.1:0",
		MaxConns: maxConns,
		Version:  "gatetest",
	})

	// Fill the cap: these round-trip immediately.
	var served []net.Conn
	for i := 0; i < maxConns; i++ {
		c := dialRaw(t, srv.Addr())
		defer c.Close()
		if _, err := c.Write([]byte("version\r\n")); err != nil {
			t.Fatal(err)
		}
		expectRead(t, c, "VERSION gatetest\r\n")
		served = append(served, c)
	}

	// K more: the TCP handshake completes via the kernel backlog, but the
	// gate must not serve them — each sends version+quit up front so that
	// once accepted it is answered and its slot cascades to the next.
	var pending []net.Conn
	for i := 0; i < extra; i++ {
		c := dialRaw(t, srv.Addr())
		defer c.Close()
		if _, err := c.Write([]byte("version\r\nquit\r\n")); err != nil {
			t.Fatal(err)
		}
		pending = append(pending, c)
	}
	for _, c := range pending {
		expectNoData(t, c, 150*time.Millisecond)
	}

	// One disconnect opens the gate; the quit-cascade then serves all K
	// pending connections, each a deferred accept.
	_ = served[0].Close()
	for _, c := range pending {
		expectRead(t, c, "VERSION gatetest\r\n")
	}
	_ = served[1].Close()
	// Let the slot churn settle so the accept loop is parked in a plain
	// accept again before the fresh connection arrives.
	time.Sleep(200 * time.Millisecond)

	// Recovery: a fresh connection is served promptly — and, having never
	// waited in the backlog behind a full gate, it must NOT count as a
	// deferred accept.
	st := statsVia(t, srv.Addr())
	if got := st["listen_disabled_num"]; got != strconv.Itoa(extra) {
		t.Errorf("listen_disabled_num = %s, want %d", got, extra)
	}
	if got := st["max_connections"]; got != strconv.Itoa(maxConns) {
		t.Errorf("max_connections = %s, want %d", got, maxConns)
	}
}

// TestIdleReapMockClock drives the idle reaper with a manual clock: a
// connection that completed a command and went quiet, and a slow-loris
// connection stuck mid-command-line, are both reaped once the clock
// passes IdleTimeout — partial bytes are not activity — while a
// connection whose last command is recent survives.
func TestIdleReapMockClock(t *testing.T) {
	clk := newTestClock()
	srv := startServer(t, kv.NewMallocBackend(), Config{
		Addr:             "127.0.0.1:0",
		Clock:            clk.Now,
		IdleTimeout:      10 * time.Second,
		MaintainInterval: 2 * time.Millisecond,
		Version:          "idletest",
	})

	quiet := dialRaw(t, srv.Addr())
	defer quiet.Close()
	if _, err := quiet.Write([]byte("version\r\n")); err != nil {
		t.Fatal(err)
	}
	expectRead(t, quiet, "VERSION idletest\r\n")

	loris := dialRaw(t, srv.Addr())
	defer loris.Close()
	if _, err := loris.Write([]byte("get half-a-comm")); err != nil { // no newline
		t.Fatal(err)
	}
	// Give the server a beat to register both connections' activity at
	// the current (frozen) clock.
	time.Sleep(50 * time.Millisecond)

	clk.Advance(11 * time.Second)

	// Both connections must be closed by the reaper (observed as EOF /
	// reset) within real milliseconds — the reaper polls every tick even
	// though its idleness arithmetic runs on the mock clock.
	for name, c := range map[string]net.Conn{"quiet": quiet, "loris": loris} {
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatalf("%s connection still alive past the idle deadline", name)
		}
	}

	// A fresh connection's activity stamp is taken at the advanced clock,
	// so it survives to read the stats.
	st := statsVia(t, srv.Addr())
	if kicks, _ := strconv.Atoi(st["idle_kicks"]); kicks != 2 {
		t.Errorf("idle_kicks = %s, want 2", st["idle_kicks"])
	}
}

// TestLineTooLongRegression is the unbounded-ReadString regression test:
// a client streaming 64 MiB without a newline gets CLIENT_ERROR line too
// long while the server's memory stays bounded (the line is never
// buffered), and the stream resyncs at the next newline.
func TestLineTooLongRegression(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{Addr: "127.0.0.1:0", Version: "linetest"})
	c := dialRaw(t, srv.Addr())
	defer c.Close()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	chunk := []byte(strings.Repeat("a", 64<<10))
	const total = 64 << 20
	for sent := 0; sent < total; sent += len(chunk) {
		if _, err := c.Write(chunk); err != nil {
			t.Fatalf("write after %d bytes: %v", sent, err)
		}
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	// The server discards the stream through a fixed 16 KiB bufio window;
	// 64 MiB in flight must not show up on the heap. (The client-side
	// chunk and test overhead stay far under the bound too.)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 8<<20 {
		t.Errorf("heap grew %d bytes while streaming a 64 MiB line; want bounded", grew)
	}

	// The error was answered as soon as the cap was hit, and the next
	// newline resyncs the stream: a follow-up command parses normally.
	if _, err := c.Write([]byte("\r\nversion\r\n")); err != nil {
		t.Fatal(err)
	}
	expectRead(t, c, "CLIENT_ERROR line too long\r\nVERSION linetest\r\n")
}

// TestReplyBacklogKick: a client that pipelines retrievals without ever
// reading the responses is forced to drain at every MaxReplyBacklog
// boundary; since it isn't reading, the forced flush runs into the
// write deadline and the client is disconnected (slow_client_kicks)
// after at most ~budget + kernel-buffer bytes — never streamed at from
// an unbounded queue.
func TestReplyBacklogKick(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{
		Addr:            "127.0.0.1:0",
		MaxReplyBacklog: 32 << 10,
		WriteTimeout:    200 * time.Millisecond,
	})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Set("big", 0, []byte(strings.Repeat("x", 16<<10))); err != nil {
		t.Fatal(err)
	}

	c := dialRaw(t, srv.Addr())
	defer c.Close()
	// 400 pipelined gets of a 16 KiB value = ~6.4 MiB of replies against
	// a 32 KiB budget; the client reads nothing.
	if _, err := c.Write([]byte(strings.Repeat("get big\r\n", 400))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := statsVia(t, srv.Addr())
		if kicks, _ := strconv.Atoi(st["slow_client_kicks"]); kicks >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("non-reading pipelined client never kicked")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The cut stream ends in EOF/reset once drained.
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.Copy(io.Discard, c); err == io.EOF {
		t.Fatal("io.Copy cannot return EOF") // Copy maps EOF to nil
	}
}

// TestReplyBacklogHonestClient is the false-positive regression: a
// client whose pipelined burst far exceeds MaxReplyBacklog but who IS
// reading its responses absorbs the forced flushes and is never kicked.
func TestReplyBacklogHonestClient(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{
		Addr:            "127.0.0.1:0",
		MaxReplyBacklog: 32 << 10,
		WriteTimeout:    time.Second,
	})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const valSize = 16 << 10
	if err := cl.Set("big", 0, []byte(strings.Repeat("x", valSize))); err != nil {
		t.Fatal(err)
	}

	c := dialRaw(t, srv.Addr())
	defer c.Close()
	const gets = 100
	if _, err := c.Write([]byte(strings.Repeat("get big\r\n", gets))); err != nil {
		t.Fatal(err)
	}
	// Read every byte of the ~1.6 MiB reply stream promptly.
	perReply := len("VALUE big 0 16384\r\n") + valSize + len("\r\n") + len("END\r\n")
	_ = c.SetReadDeadline(time.Now().Add(30 * time.Second))
	if _, err := io.ReadFull(c, make([]byte, gets*perReply)); err != nil {
		t.Fatalf("reading the burst: %v", err)
	}
	// Still alive, and never counted slow.
	if _, err := c.Write([]byte("version\r\n")); err != nil {
		t.Fatal(err)
	}
	expectRead(t, c, "VERSION ")
	st := statsVia(t, srv.Addr())
	if st["slow_client_kicks"] != "0" {
		t.Errorf("slow_client_kicks = %s for a promptly-reading client, want 0", st["slow_client_kicks"])
	}
}

// TestLargeMaxLineLen: a MaxLineLen above the default 16 KiB read window
// must actually be honored — the reader is sized to fit it.
func TestLargeMaxLineLen(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{
		Addr:       "127.0.0.1:0",
		MaxLineLen: 32 << 10,
	})
	c := dialRaw(t, srv.Addr())
	defer c.Close()
	if err := writeAll(c, "set k 0 0 1\r\nv\r\n"); err != nil {
		t.Fatal(err)
	}
	expectRead(t, c, "STORED\r\n")
	// A 20 KiB multi-get line: within the configured cap, over the old
	// window size. Every key resolves to the same stored value.
	line := "get" + strings.Repeat(" k", 10<<10) + "\r\n"
	if err := writeAll(c, line); err != nil {
		t.Fatal(err)
	}
	want := strings.Repeat("VALUE k 0 1\r\nv\r\n", 10<<10) + "END\r\n"
	expectRead(t, c, want)
}

func writeAll(c net.Conn, s string) error {
	_, err := c.Write([]byte(s))
	return err
}

// TestSlowWriterDeadlineKick: with the backlog cap off, a client that
// stops reading entirely still cannot wedge the handler — each socket
// write carries a deadline, and the first one to miss it disconnects the
// client.
func TestSlowWriterDeadlineKick(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{
		Addr:            "127.0.0.1:0",
		WriteTimeout:    200 * time.Millisecond,
		MaxReplyBacklog: -1,
	})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Set("big", 0, []byte(strings.Repeat("x", 256<<10))); err != nil {
		t.Fatal(err)
	}

	c := dialRaw(t, srv.Addr())
	defer c.Close()
	// 64 pipelined gets of 256 KiB = 16 MiB: far beyond what the kernel
	// socket buffers can absorb, so a server write must block on this
	// never-reading client and trip the deadline.
	if _, err := c.Write([]byte(strings.Repeat("get big\r\n", 64))); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := statsVia(t, srv.Addr())
		if kicks, _ := strconv.Atoi(st["slow_client_kicks"]); kicks >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow client never kicked by the write deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("kick took %v; the 200ms write deadline should fire far sooner", waited)
	}
}

// flakyListener injects transient accept errors (EMFILE-style) before
// handing out real connections.
type flakyListener struct {
	net.Listener
	fails atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.fails.Add(-1) >= 0 {
		return nil, &net.OpError{Op: "accept", Net: "tcp", Err: errors.New("too many open files")}
	}
	return l.Listener.Accept()
}

// TestAcceptErrorRetry: transient accept errors must not kill the
// server — Serve retries with backoff, counts them in accept_errors, and
// keeps serving.
func TestAcceptErrorRetry(t *testing.T) {
	store := kv.NewShardedStore(kv.NewMallocBackend(), 8, 0)
	srv := New(store, Config{Addr: "127.0.0.1:0", Version: "flaketest"})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: srv.ln}
	fl.fails.Store(3)
	srv.ln = fl
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { _ = srv.Shutdown(2 * time.Second) })

	// The three injected failures burn ~5+10+20ms of backoff; the dial
	// must still be served.
	c := dialRaw(t, srv.Addr())
	defer c.Close()
	if _, err := c.Write([]byte("version\r\n")); err != nil {
		t.Fatal(err)
	}
	expectRead(t, c, "VERSION flaketest\r\n")

	st := statsVia(t, srv.Addr())
	if got := st["accept_errors"]; got != "3" {
		t.Errorf("accept_errors = %s, want 3", got)
	}
}

// TestShutdownReapRace hammers the three closers of a connection —
// handler exit, idle reaper, Shutdown's force-close — against each
// other. Run under -race: the pass criterion is no race, no double-close
// panic, and Shutdown returning.
func TestShutdownReapRace(t *testing.T) {
	for round := 0; round < 5; round++ {
		store := kv.NewShardedStore(kv.NewMallocBackend(), 8, 0)
		srv := New(store, Config{
			Addr:             "127.0.0.1:0",
			IdleTimeout:      5 * time.Millisecond,
			MaintainInterval: time.Millisecond,
		})
		if err := srv.Listen(); err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve() }()

		var wg sync.WaitGroup
		conns := make([]net.Conn, 0, 8)
		for i := 0; i < 8; i++ {
			c, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			conns = append(conns, c)
			if i%2 == 0 {
				fmt.Fprintf(c, "set k%d 0 0 3\r\nabc\r\n", i)
			} // odd conns idle immediately and get reaped
		}
		// Let the reaper start kicking, then race Shutdown against it and
		// against client-side closes.
		time.Sleep(8 * time.Millisecond)
		wg.Add(2)
		go func() { defer wg.Done(); _ = srv.Shutdown(20 * time.Millisecond) }()
		go func() {
			defer wg.Done()
			for _, c := range conns {
				_ = c.Close()
			}
		}()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Shutdown deadlocked against the idle reaper")
		}
	}
}

// TestSlowLorisDefragRace is the acceptance criterion tying the reaper
// to the paper's machinery: a slow-loris connection (half a command,
// then silence) is reaped within the idle timeout while the §7
// pause-free defrag passes keep completing under live traffic — a dead
// client never blocks defrag progress.
func TestSlowLorisDefragRace(t *testing.T) {
	acfg := anchorage.DefaultConfig()
	acfg.SubHeapSize = 256 * 1024
	acfg.FragHigh = 1.2
	acfg.FragLow = 1.1
	acfg.WakeInterval = 5 * time.Millisecond
	backend, err := kv.NewAnchorageBackend(acfg, rt.WithPinMode(rt.CountedPins))
	if err != nil {
		t.Fatal(err)
	}
	store := kv.NewShardedStore(backend, 8, 0)
	srv := New(store, Config{
		Addr:             "127.0.0.1:0",
		MaintainInterval: 2 * time.Millisecond,
		DefragFragHigh:   1.1,
		DefragBudget:     256 * 1024,
		IdleTimeout:      300 * time.Millisecond,
	})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	defer srv.Shutdown(5 * time.Second)

	// Fragmenting traffic on 4 workers for the whole test.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			val := make([]byte, 1024)
			for op := 0; ; op++ {
				select {
				case <-stop:
					return
				default:
				}
				key := "w" + strconv.Itoa(w) + "-k" + strconv.Itoa(op%64)
				if err := cl.Set(key, 0, val[:32+(op*37)%992]); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Let traffic build fragmentation, then snapshot defrag progress.
	time.Sleep(300 * time.Millisecond)
	before := statsVia(t, srv.Addr())
	passesBefore, _ := strconv.ParseInt(before["defrag_concurrent_passes"], 10, 64)

	// The loris: half a command, then silence. It holds a kv.Session (an
	// rt.Thread) while it stalls.
	loris := dialRaw(t, srv.Addr())
	defer loris.Close()
	if _, err := loris.Write([]byte("set hostage 0 0 5\r\nhel")); err != nil { // stalls mid-body
		t.Fatal(err)
	}
	lorisStart := time.Now()
	_ = loris.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := loris.Read(make([]byte, 1)); err == nil {
		t.Fatal("loris connection unexpectedly got data")
	}
	reapedAfter := time.Since(lorisStart)
	if reapedAfter > 5*time.Second {
		t.Errorf("loris reaped after %v; idle timeout is 300ms", reapedAfter)
	}

	close(stop)
	wg.Wait()

	st := statsVia(t, srv.Addr())
	passesAfter, _ := strconv.ParseInt(st["defrag_concurrent_passes"], 10, 64)
	if passesAfter <= passesBefore {
		t.Errorf("defrag made no progress while the loris stalled: %d -> %d passes",
			passesBefore, passesAfter)
	}
	if kicks, _ := strconv.Atoi(st["idle_kicks"]); kicks < 1 {
		t.Errorf("idle_kicks = %s, want >= 1", st["idle_kicks"])
	}
	if st["protocol_errors"] != "0" {
		t.Errorf("protocol_errors = %s, want 0", st["protocol_errors"])
	}
	t.Logf("loris reaped in %v; defrag passes %d -> %d", reapedAfter, passesBefore, passesAfter)
}
