package server

// Zero-allocation command parsing: the request path tokenizes each
// command line in place — fields are []byte slices into the connection's
// read buffer — and parses numbers with inline decimal loops, so parsing
// a command performs no heap allocation at all. The string-based parsers
// in protocol.go are retained as the reference implementations the
// differential fuzzer (FuzzTokenizeDifferential) holds this file to.

// isASCIISpace mirrors strings.Fields' notion of a separator for ASCII
// input (space, tab, and the ASCII control whitespace). Bytes >= 0x80
// are never separators here: the byte tokenizer deliberately does not
// decode UTF-8 — memcached splits command lines on ASCII whitespace
// only, so a key containing multi-byte sequences passes through intact.
func isASCIISpace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// tokenize splits line into whitespace-separated fields, appending the
// sub-slices to fields (pass fields[:0] to reuse the backing array). The
// returned slices alias line and are valid only as long as line is.
func tokenize(line []byte, fields [][]byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && isASCIISpace(line[i]) {
			i++
		}
		if i == len(line) {
			break
		}
		start := i
		for i < len(line) && !isASCIISpace(line[i]) {
			i++
		}
		fields = append(fields, line[start:i])
	}
	return fields
}

// validKeyB reports whether key is a legal memcached key: 1..250 bytes,
// no whitespace or control characters.
func validKeyB(key []byte) bool {
	if len(key) == 0 || len(key) > maxKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return false
		}
	}
	return true
}

// parseUintB parses a base-10 unsigned integer of at most bits bits,
// with strconv.ParseUint's verdicts (no signs, digits only, overflow is
// an error) and no allocation.
func parseUintB(b []byte, bits uint) (uint64, error) {
	if len(b) == 0 {
		return 0, errBadLine
	}
	max := uint64(1)<<bits - 1
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, errBadLine
		}
		d := uint64(c - '0')
		if n > (max-d)/10 {
			return 0, errBadLine
		}
		n = n*10 + d
	}
	return n, nil
}

// parseIntB parses a base-10 signed integer of at most bits bits, with
// strconv.ParseInt's verdicts (optional leading + or -) and no
// allocation.
func parseIntB(b []byte, bits uint) (int64, error) {
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, errBadLine
	}
	max := uint64(1) << (bits - 1) // |min| when negative
	if !neg {
		max--
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, errBadLine
		}
		d := uint64(c - '0')
		if n > (max-d)/10 {
			return 0, errBadLine
		}
		n = n*10 + d
	}
	if neg {
		return -int64(n), nil
	}
	return int64(n), nil
}

// isNoreply matches the trailing noreply token without conversion.
func isNoreply(b []byte) bool { return string(b) == "noreply" }

// storageArgsB are the parsed arguments of set/add/replace/cas and
// append/prepend. key aliases the tokenized line; callers that go on to
// read the data block must copy it first (the body read may slide the
// read buffer under it).
type storageArgsB struct {
	key       []byte
	flags     uint32
	exptime   int64
	nbytes    int
	casUnique uint64 // cas only
	noreply   bool
}

// parseStorageB parses the arguments of a storage command; withCAS adds
// the trailing <cas unique> of `cas`.
func parseStorageB(args [][]byte, withCAS bool) (storageArgsB, error) {
	var sa storageArgsB
	want := 4
	if withCAS {
		want = 5
	}
	if len(args) == want+1 && isNoreply(args[want]) {
		sa.noreply = true
		args = args[:want]
	}
	if len(args) != want {
		return sa, errBadLine
	}
	sa.key = args[0]
	if !validKeyB(sa.key) {
		return sa, errBadLine
	}
	flags, err := parseUintB(args[1], 32)
	if err != nil {
		return sa, errBadLine
	}
	sa.flags = uint32(flags)
	sa.exptime, err = parseIntB(args[2], 64)
	if err != nil {
		return sa, errBadLine
	}
	n, err := parseUintB(args[3], 31)
	if err != nil {
		return sa, errBadLine
	}
	sa.nbytes = int(n)
	if withCAS {
		sa.casUnique, err = parseUintB(args[4], 64)
		if err != nil {
			return sa, errBadLine
		}
	}
	return sa, nil
}

// parseDeleteB parses `delete <key> [noreply]`.
func parseDeleteB(args [][]byte) (key []byte, noreply bool, err error) {
	if len(args) == 2 && isNoreply(args[1]) {
		noreply = true
		args = args[:1]
	}
	if len(args) != 1 || !validKeyB(args[0]) {
		return nil, false, errBadLine
	}
	return args[0], noreply, nil
}

// parseIncrDecrB parses `incr|decr <key> <delta> [noreply]`. A
// structurally sound line whose delta is not a uint64 decimal yields
// errBadDelta — a different CLIENT_ERROR than a malformed line.
func parseIncrDecrB(args [][]byte) (key []byte, delta uint64, noreply bool, err error) {
	if len(args) == 3 && isNoreply(args[2]) {
		noreply = true
		args = args[:2]
	}
	if len(args) != 2 || !validKeyB(args[0]) {
		return nil, 0, false, errBadLine
	}
	delta, derr := parseUintB(args[1], 64)
	if derr != nil {
		return args[0], 0, noreply, errBadDelta
	}
	return args[0], delta, noreply, nil
}

// parseTouchB parses `touch <key> <exptime> [noreply]`.
func parseTouchB(args [][]byte) (key []byte, exptime int64, noreply bool, err error) {
	if len(args) == 3 && isNoreply(args[2]) {
		noreply = true
		args = args[:2]
	}
	if len(args) != 2 || !validKeyB(args[0]) {
		return nil, 0, false, errBadLine
	}
	exptime, err = parseIntB(args[1], 64)
	if err != nil {
		return nil, 0, false, errBadLine
	}
	return args[0], exptime, noreply, nil
}

// parseGatB parses `gat|gats <exptime> <key>+`.
func parseGatB(args [][]byte) (exptime int64, keys [][]byte, err error) {
	if len(args) < 2 {
		return 0, nil, errBadLine
	}
	exptime, err = parseIntB(args[0], 64)
	if err != nil {
		return 0, nil, errBadLine
	}
	keys = args[1:]
	for _, k := range keys {
		if !validKeyB(k) {
			return 0, nil, errBadLine
		}
	}
	return exptime, keys, nil
}

// parseFlushAllB parses `flush_all [delay] [noreply]`.
func parseFlushAllB(args [][]byte) (delay int64, noreply bool, err error) {
	if n := len(args); n > 0 && isNoreply(args[n-1]) {
		noreply = true
		args = args[:n-1]
	}
	switch len(args) {
	case 0:
		return 0, noreply, nil
	case 1:
		delay, err = parseIntB(args[0], 64)
		if err != nil || delay < 0 {
			return 0, noreply, errBadLine
		}
		return delay, noreply, nil
	default:
		return 0, noreply, errBadLine
	}
}

// parseVerbosityB parses `verbosity <level> [noreply]`.
func parseVerbosityB(args [][]byte) (level uint64, noreply bool, err error) {
	if len(args) == 2 && isNoreply(args[1]) {
		noreply = true
		args = args[:1]
	}
	if len(args) != 1 {
		return 0, noreply, errBadLine
	}
	level, err = parseUintB(args[0], 64)
	if err != nil {
		return 0, noreply, errBadLine
	}
	return level, noreply, nil
}

// parseNumericValueB parses a stored value as the 64-bit unsigned
// decimal incr/decr operate on: ASCII digits optionally followed by
// trailing spaces (the space-padded decr compatibility mode stores
// those, and memcached's strtoull ignores them). Leading zeros are
// accepted; a digit string that overflows a uint64 after zero-stripping
// is non-numeric.
func parseNumericValueB(data []byte) (uint64, bool) {
	// Strip the trailing space padding a compat-mode decr may have left.
	for len(data) > 0 && data[len(data)-1] == ' ' {
		data = data[:len(data)-1]
	}
	if len(data) == 0 {
		return 0, false
	}
	for _, c := range data {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	trimmed := data
	for len(trimmed) > 1 && trimmed[0] == '0' {
		trimmed = trimmed[1:]
	}
	if len(trimmed) > maxNumericLen {
		return 0, false
	}
	v, err := parseUintB(trimmed, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// appendValue packs flags+cas+data onto buf in the stored
// representation — the allocation-free form of encodeValue.
func appendValue(buf []byte, flags uint32, cas uint64, data []byte) []byte {
	buf = append(buf,
		byte(flags>>24), byte(flags>>16), byte(flags>>8), byte(flags),
		byte(cas>>56), byte(cas>>48), byte(cas>>40), byte(cas>>32),
		byte(cas>>24), byte(cas>>16), byte(cas>>8), byte(cas))
	return append(buf, data...)
}
