package server

// Event-core battery: the properties the readiness-poller architecture
// exists for. A parked connection must be reapable without ever being
// assigned a worker (it is just an fd — no goroutine to unblock), and a
// thousand parked connections must not slow the defrag machinery down,
// because parked connections hold no rt.Thread and stop-the-world
// barriers only rendezvous with the bounded worker set.

import (
	"net"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/rt"
)

// requireEventModel skips on platforms without the epoll poller.
func requireEventModel(t *testing.T, srv *Server) {
	t.Helper()
	if runtime.GOOS != "linux" {
		t.Skip("event poller is linux-only")
	}
	if srv.ConnModel() != "event" {
		t.Fatalf("conn model = %s, want event on linux", srv.ConnModel())
	}
}

// TestParkedIdleReapNoWorker: a connection that connects and never sends
// a byte is parked straight from accept and never becomes ready — so the
// idle reaper must close it directly from the sweep, without the
// connection ever being assigned a worker. This is the structural win
// over the goroutine model, where reaping always meant unblocking a
// reader goroutine.
func TestParkedIdleReapNoWorker(t *testing.T) {
	clk := newTestClock()
	srv := startServer(t, kv.NewMallocBackend(), Config{
		Addr:             "127.0.0.1:0",
		Clock:            clk.Now,
		IdleTimeout:      10 * time.Second,
		MaintainInterval: 2 * time.Millisecond,
		Version:          "parktest",
	})
	requireEventModel(t, srv)

	c := dialRaw(t, srv.Addr())
	defer c.Close()

	// Wait for registration: the connection shows up in the parked gauge
	// without any worker activity.
	deadline := time.Now().Add(5 * time.Second)
	for {
		parked, _, _ := srv.pollerGauges()
		if parked == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("connection never parked (parked gauge %d)", parked)
		}
		time.Sleep(time.Millisecond)
	}

	clk.Advance(11 * time.Second)

	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("parked connection still alive past the idle deadline")
	}

	// The whole lifetime — park, reap, close — must have happened with
	// zero worker bursts: nothing was ever readable, so nothing was ever
	// scheduled. (Checked via internals before any stats connection can
	// generate bursts of its own.)
	if bursts := srv.poller.burstCount(); bursts != 0 {
		t.Errorf("reaping a parked connection consumed %d worker bursts, want 0", bursts)
	}
	if kicks := srv.idleKicks.Load(); kicks != 1 {
		t.Errorf("idle_kicks = %d, want 1", kicks)
	}
}

// TestDefragBarrierWithParkedHorde: with 1000 parked idle connections
// and live churn traffic, the pause-free defrag passes must keep
// completing — parked connections hold no rt.Thread, so safepoint
// rendezvous waits on the bounded worker set, not on the horde. Run
// under -race this also hammers register/park/sweep against the worker
// pool.
func TestDefragBarrierWithParkedHorde(t *testing.T) {
	acfg := anchorage.DefaultConfig()
	acfg.SubHeapSize = 256 * 1024
	acfg.FragHigh = 1.2
	acfg.FragLow = 1.1
	acfg.WakeInterval = 5 * time.Millisecond
	backend, err := kv.NewAnchorageBackend(acfg, rt.WithPinMode(rt.CountedPins))
	if err != nil {
		t.Fatal(err)
	}
	store := kv.NewShardedStore(backend, 8, 0)
	srv := New(store, Config{
		Addr:             "127.0.0.1:0",
		MaintainInterval: 2 * time.Millisecond,
		DefragFragHigh:   1.1,
		DefragBudget:     256 * 1024,
	})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	defer srv.Shutdown(5 * time.Second)
	requireEventModel(t, srv)

	// The horde: 1000 connections that never send a byte, parked as bare
	// fds in the poller.
	const horde = 1000
	conns := make([]net.Conn, 0, horde)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	for i := 0; i < horde; i++ {
		c, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
		if err != nil {
			t.Fatalf("horde dial %d: %v", i, err)
		}
		conns = append(conns, c)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		parked, _, _ := srv.pollerGauges()
		if parked >= horde {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d connections parked", parked, horde)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fragmenting churn on 4 workers while the horde sits parked.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			val := make([]byte, 1024)
			for op := 0; ; op++ {
				select {
				case <-stop:
					return
				default:
				}
				key := "w" + strconv.Itoa(w) + "-k" + strconv.Itoa(op%64)
				if err := cl.Set(key, 0, val[:32+(op*37)%992]); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	time.Sleep(300 * time.Millisecond)
	before := statsVia(t, srv.Addr())
	passesBefore, _ := strconv.ParseInt(before["defrag_concurrent_passes"], 10, 64)

	// The measured window: defrag barriers must keep completing at full
	// cadence with 1000 parked fds.
	time.Sleep(500 * time.Millisecond)

	// A fresh connection must round-trip promptly — no barrier is stuck
	// waiting on the horde.
	rtStart := time.Now()
	after := statsVia(t, srv.Addr())
	if rtt := time.Since(rtStart); rtt > 2*time.Second {
		t.Errorf("stats round-trip took %v with the horde parked", rtt)
	}
	passesAfter, _ := strconv.ParseInt(after["defrag_concurrent_passes"], 10, 64)
	if passesAfter <= passesBefore {
		t.Errorf("defrag made no progress with %d parked connections: %d -> %d passes",
			horde, passesBefore, passesAfter)
	}
	if after["protocol_errors"] != "0" {
		t.Errorf("protocol_errors = %s, want 0", after["protocol_errors"])
	}

	close(stop)
	wg.Wait()
	t.Logf("defrag passes %d -> %d with %d parked connections", passesBefore, passesAfter, horde)
}

// TestEventStatsGauges: the new stat rows exist and track the parked
// population.
func TestEventStatsGauges(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{Addr: "127.0.0.1:0", Version: "gaugetest"})
	requireEventModel(t, srv)

	idle := dialRaw(t, srv.Addr())
	defer idle.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if parked, _, _ := srv.pollerGauges(); parked >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection never parked")
		}
		time.Sleep(time.Millisecond)
	}

	st := statsVia(t, srv.Addr())
	if st["conn_model"] != "event" {
		t.Errorf("conn_model = %q, want event", st["conn_model"])
	}
	if parked, _ := strconv.Atoi(st["conns_parked"]); parked < 1 {
		t.Errorf("conns_parked = %s, want >= 1", st["conns_parked"])
	}
	if _, ok := st["conns_active"]; !ok {
		t.Error("conns_active stat missing")
	}
	if _, ok := st["worker_queue_depth"]; !ok {
		t.Error("worker_queue_depth stat missing")
	}
}
