package server

// Client resilience: per-op deadlines and reconnect-with-backoff. The
// load generator leans on both to keep driving traffic through a fault
// window — a hung or dropped connection must fail the one op quickly
// and leave the client usable, not wedge a worker forever.

import (
	"net"
	"testing"
	"time"

	"alaska/internal/kv"
)

// TestClientOpTimeout points the client at a listener that accepts and
// then never answers: the op must fail within the deadline instead of
// blocking forever.
func TestClientOpTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the connection open, read nothing, answer nothing.
			defer c.Close()
		}
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.c.Close()
	cl.SetOpTimeout(100 * time.Millisecond)

	start := time.Now()
	_, _, _, err = cl.Get("k")
	if err == nil {
		t.Fatal("get against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("op took %v to fail, deadline was 100ms", elapsed)
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("err = %v, want a net timeout", err)
	}
}

// TestClientReconnectAfterDrop severs the connection under the client
// mid-session against a real server: the in-flight op fails (its
// protocol position is unknown — it must not be replayed), and the next
// op succeeds on a transparently redialed connection.
func TestClientReconnectAfterDrop(t *testing.T) {
	store := kv.NewShardedStore(kv.NewMallocBackend(), 4, 0)
	srv := New(store, Config{Addr: "127.0.0.1:0", Version: "reconnect-test"})
	if err := srv.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Shutdown(time.Second)

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	cl.SetOpTimeout(2 * time.Second)
	cl.EnableReconnect(10, 10*time.Millisecond, 100*time.Millisecond)

	if err := cl.Set("survivor", 0, []byte("v1")); err != nil {
		t.Fatalf("set: %v", err)
	}

	// Kill the socket under the client. The next op must error — not
	// hang, not silently succeed — and the one after must land on a
	// fresh connection.
	_ = cl.c.Close()
	if err := cl.Set("mid-drop", 0, []byte("x")); err == nil {
		t.Fatal("op on a severed connection reported success")
	}

	if err := cl.Set("after", 0, []byte("v2")); err != nil {
		t.Fatalf("set after reconnect: %v", err)
	}
	v, _, ok, err := cl.Get("survivor")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get survivor after reconnect = %q ok=%v err=%v", v, ok, err)
	}
}

// TestClientNoReconnectStaysBroken: without EnableReconnect a transport
// error is terminal — later ops fail fast with errBroken instead of
// writing into a dead socket.
func TestClientNoReconnectStaysBroken(t *testing.T) {
	store := kv.NewShardedStore(kv.NewMallocBackend(), 4, 0)
	srv := New(store, Config{Addr: "127.0.0.1:0", Version: "broken-test"})
	if err := srv.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Shutdown(time.Second)

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	_ = cl.c.Close()
	if err := cl.Set("a", 0, []byte("v")); err == nil {
		t.Fatal("op on a severed connection reported success")
	}
	if err := cl.Set("b", 0, []byte("v")); err != errBroken {
		t.Fatalf("second op err = %v, want errBroken", err)
	}
}

// TestClientReconnectGivesUp: with the server gone for good, redial
// exhausts its attempt budget and ops keep failing rather than spinning.
func TestClientReconnectGivesUp(t *testing.T) {
	store := kv.NewShardedStore(kv.NewMallocBackend(), 4, 0)
	srv := New(store, Config{Addr: "127.0.0.1:0", Version: "giveup-test"})
	if err := srv.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve() }()

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cl.EnableReconnect(2, time.Millisecond, 5*time.Millisecond)

	// Take the whole server down so every redial is refused.
	_ = srv.Shutdown(time.Second)
	_ = cl.c.Close()

	if err := cl.Set("a", 0, []byte("v")); err == nil {
		t.Fatal("op against a dead server reported success")
	}
	if err := cl.Set("b", 0, []byte("v")); err == nil {
		t.Fatal("op after failed redials reported success")
	}
}
