//go:build !linux

package server

// Platforms without the epoll shim fall back to the goroutine-per-
// connection model: newPoller reports unsupported and Server.New keeps
// s.poller nil. The portable event engine (event.go) still compiles and
// is exercised by the buffer-level tests, so the protocol state machine
// stays covered everywhere.

import "errors"

var errPollerUnsupported = errors.New("server: readiness poller unsupported on this platform")

func newPoller(*Server) (connPoller, error) { return nil, errPollerUnsupported }

// Raw fd I/O stubs for the detached event engine (tests run it with
// fd < 0, which short-circuits before these are reached).
func readRawFd(int, []byte) (int, bool, error)     { return 0, false, errPollerUnsupported }
func writevRawFd(int, []byte, []byte) (int, bool, error) {
	return 0, false, errPollerUnsupported
}
