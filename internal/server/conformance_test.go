package server

// Protocol conformance suite: golden request/response transcripts over a
// loopback connection, including the error paths (ERROR, CLIENT_ERROR
// bad data chunk, oversized values, NOT_FOUND, noreply) plus pipelined
// and split-write framing.

import (
	"bytes"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/rt"
)

// startServer boots a server on a loopback port over the given backend.
func startServer(t *testing.T, backend kv.Backend, cfg Config) *Server {
	t.Helper()
	store := kv.NewShardedStore(backend, 8, 0)
	srv := New(store, cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { _ = srv.Shutdown(2 * time.Second) })
	return srv
}

func startAnchorageServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	// CountedPins: the pin-visibility mode required when writers run
	// concurrently with the pause-free defrag pass (§7 contract).
	backend, err := kv.NewAnchorageBackend(anchorage.DefaultConfig(), rt.WithPinMode(rt.CountedPins))
	if err != nil {
		t.Fatal(err)
	}
	return startServer(t, backend, cfg)
}

// forEachBackend runs fn against a fresh server on each of the three
// network-facing backends, so every transcript is proven
// backend-independent (the protocol layer must behave identically over
// raw addresses, meshed pages, and Alaska handles).
func forEachBackend(t *testing.T, cfg Config, fn func(t *testing.T, srv *Server)) {
	t.Run("malloc", func(t *testing.T) {
		fn(t, startServer(t, kv.NewMallocBackend(), cfg))
	})
	t.Run("mesh", func(t *testing.T) {
		fn(t, startServer(t, kv.NewMeshBackend(1), cfg))
	})
	t.Run("anchorage", func(t *testing.T) {
		fn(t, startAnchorageServer(t, cfg))
	})
}

// step is one send/expect exchange of a transcript.
type step struct {
	send string
	want string
}

// runTranscript drives a raw connection through the steps, comparing
// exact bytes.
func runTranscript(t *testing.T, addr string, steps []step) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, st := range steps {
		if st.send != "" {
			if _, err := c.Write([]byte(st.send)); err != nil {
				t.Fatalf("step %d: write: %v", i, err)
			}
		}
		if st.want == "" {
			continue
		}
		buf := make([]byte, len(st.want))
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Fatalf("step %d: after sending %q, read: %v (got %q so far)", i, st.send, err, buf)
		}
		if string(buf) != st.want {
			t.Fatalf("step %d: sent %q\n got  %q\n want %q", i, st.send, buf, st.want)
		}
	}
	// The transcript must account for every response byte.
	_ = c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	extra := make([]byte, 256)
	if n, _ := c.Read(extra); n > 0 {
		t.Fatalf("unconsumed response bytes: %q", extra[:n])
	}
}

func TestProtocolConformance(t *testing.T) {
	srv := startAnchorageServer(t, Config{Addr: "127.0.0.1:0", Version: "conftest", MaxValueSize: 1024})
	runTranscript(t, srv.Addr(), []step{
		// Basic storage and retrieval; flags round-trip.
		{"set foo 42 0 5\r\nhello\r\n", "STORED\r\n"},
		{"get foo\r\n", "VALUE foo 42 5\r\nhello\r\nEND\r\n"},
		// gets returns the cas unique (first store on this server: 1).
		{"gets foo\r\n", "VALUE foo 42 5 1\r\nhello\r\nEND\r\n"},
		// Miss: key simply omitted.
		{"get nosuch\r\n", "END\r\n"},
		// Multi-key get: hits in request order, misses omitted.
		{"set bar 0 0 3\r\nxyz\r\n", "STORED\r\n"},
		{"get foo nosuch bar\r\n", "VALUE foo 42 5\r\nhello\r\nVALUE bar 0 3\r\nxyz\r\nEND\r\n"},
		// add/replace conditional semantics.
		{"add foo 0 0 3\r\nnew\r\n", "NOT_STORED\r\n"},
		{"add fresh 7 0 2\r\nhi\r\n", "STORED\r\n"},
		{"replace nosuch 0 0 2\r\nhi\r\n", "NOT_STORED\r\n"},
		{"replace fresh 8 0 3\r\nbye\r\n", "STORED\r\n"},
		{"get fresh\r\n", "VALUE fresh 8 3\r\nbye\r\nEND\r\n"},
		// delete: hit then miss.
		{"delete fresh\r\n", "DELETED\r\n"},
		{"delete fresh\r\n", "NOT_FOUND\r\n"},
		{"get fresh\r\n", "END\r\n"},
		// noreply set is silent; the following get observes the value.
		{"set quiet 0 0 2 noreply\r\nok\r\nget quiet\r\n", "VALUE quiet 0 2\r\nok\r\nEND\r\n"},
		// noreply delete is silent too.
		{"delete quiet noreply\r\nget quiet\r\n", "END\r\n"},
		// Unknown command and empty line.
		{"bogus\r\n", "ERROR\r\n"},
		{"\r\n", "ERROR\r\n"},
		// Malformed storage line: the would-be data block is parsed as a
		// (garbage) command.
		{"set k notanum 0 5\r\nhello\r\n", "CLIENT_ERROR bad command line format\r\nERROR\r\n"},
		// Over-long key.
		{"get " + strings.Repeat("k", 251) + "\r\n", "CLIENT_ERROR bad command line format\r\n"},
		{"delete foo extra args\r\n", "CLIENT_ERROR bad command line format\r\n"},
		// Bad data chunk: terminator is not CRLF; server reports and
		// resyncs at the next newline, so the following command parses.
		{"set k 0 0 5\r\nhelloXX\r\nversion\r\n", "CLIENT_ERROR bad data chunk\r\nVERSION conftest\r\n"},
		// Oversized value: body swallowed, stream stays in sync.
		{"set big 0 0 2000\r\n" + strings.Repeat("x", 2000) + "\r\nget big\r\n",
			"SERVER_ERROR object too large for cache\r\nEND\r\n"},
		{"version\r\n", "VERSION conftest\r\n"},
	})
}

// TestCasConformance: compare-and-swap wire semantics. Every storage
// execution consumes one cas unique from the server-wide counter, so on
// a fresh server with one connection the uniques in the transcript are
// exact.
func TestCasConformance(t *testing.T) {
	forEachBackend(t, Config{Addr: "127.0.0.1:0"}, func(t *testing.T, srv *Server) {
		runTranscript(t, srv.Addr(), []step{
			{"set n 1 0 1\r\n5\r\n", "STORED\r\n"},
			{"gets n\r\n", "VALUE n 1 1 1\r\n5\r\nEND\r\n"},
			// Matching unique: swap wins, unique advances.
			{"cas n 1 0 1 1\r\n7\r\n", "STORED\r\n"},
			{"gets n\r\n", "VALUE n 1 1 2\r\n7\r\nEND\r\n"},
			// Stale unique: EXISTS, value untouched.
			{"cas n 1 0 1 1\r\n9\r\n", "EXISTS\r\n"},
			{"get n\r\n", "VALUE n 1 1\r\n7\r\nEND\r\n"},
			// Absent key: NOT_FOUND.
			{"cas miss 0 0 1 5\r\nx\r\n", "NOT_FOUND\r\n"},
			// noreply cas is silent; the following get observes the swap.
			{"cas n 0 0 1 2 noreply\r\n8\r\nget n\r\n", "VALUE n 0 1\r\n8\r\nEND\r\n"},
			// Missing unique token: malformed (no body follows).
			{"cas n 0 0 1\r\n", "CLIENT_ERROR bad command line format\r\n"},
		})
	})
}

// TestIncrDecrConformance: 64-bit unsigned arithmetic, wrap on incr,
// clamp-at-zero on decr, and both CLIENT_ERROR variants.
func TestIncrDecrConformance(t *testing.T) {
	forEachBackend(t, Config{Addr: "127.0.0.1:0"}, func(t *testing.T, srv *Server) {
		runTranscript(t, srv.Addr(), []step{
			{"set n 0 0 2\r\n10\r\n", "STORED\r\n"},
			{"incr n 5\r\n", "15\r\n"},
			{"decr n 6\r\n", "9\r\n"},
			// Underflow clamps at 0 (memcached's decr rule).
			{"decr n 100\r\n", "0\r\n"},
			// Incr wraps modulo 2^64.
			{"incr n 18446744073709551615\r\n", "18446744073709551615\r\n"},
			{"incr n 3\r\n", "2\r\n"},
			{"incr miss 1\r\n", "NOT_FOUND\r\n"},
			{"decr miss 1\r\n", "NOT_FOUND\r\n"},
			// Non-numeric stored value.
			{"set s 0 0 3\r\nabc\r\n", "STORED\r\n"},
			{"incr s 1\r\n", "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n"},
			{"decr s 1\r\n", "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n"},
			// Bad delta: a *different* CLIENT_ERROR, and no state change.
			{"incr n xyz\r\n", "CLIENT_ERROR invalid numeric delta argument\r\n"},
			{"incr n -5\r\n", "CLIENT_ERROR invalid numeric delta argument\r\n"},
			// noreply incr is silent.
			{"incr n 1 noreply\r\nget n\r\n", "VALUE n 0 1\r\n3\r\nEND\r\n"},
			// Malformed lines.
			{"incr n\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"incr n 1 2\r\n", "CLIENT_ERROR bad command line format\r\n"},
			// incr preserves flags and refreshes the cas unique. Counter
			// audit: 12 uniques consumed above (set/incr/decr hits, misses,
			// and non-numeric attempts; bad-delta and malformed lines
			// consume none), so the set below takes 13 and the incr 14.
			{"set f 42 0 1\r\n7\r\n", "STORED\r\n"},
			{"incr f 1\r\n", "8\r\n"},
			{"gets f\r\n", "VALUE f 42 1 14\r\n8\r\nEND\r\n"},
			// Zero-padded values are numeric (memcached's strtoull), even
			// past 20 digits; all-digit overflow is not.
			{"set zp 0 0 22\r\n0000000000000000000005\r\n", "STORED\r\n"},
			{"incr zp 1\r\n", "6\r\n"},
			{"set ov 0 0 21\r\n999999999999999999999\r\n", "STORED\r\n"},
			{"incr ov 1\r\n", "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n"},
		})
	})
}

// TestAppendPrependConformance: concatenation keeps the original flags
// and issues a fresh cas unique; the zero-length-body battery proves the
// flags+cas header survives empty data bodies in both directions.
func TestAppendPrependConformance(t *testing.T) {
	forEachBackend(t, Config{Addr: "127.0.0.1:0"}, func(t *testing.T, srv *Server) {
		runTranscript(t, srv.Addr(), []step{
			{"set s 9 0 3\r\nabc\r\n", "STORED\r\n"},
			{"append s 0 0 2\r\nde\r\n", "STORED\r\n"},
			// Flags stay 9: append's flags argument is ignored.
			{"get s\r\n", "VALUE s 9 5\r\nabcde\r\nEND\r\n"},
			{"prepend s 7 100 2\r\nZY\r\n", "STORED\r\n"},
			{"get s\r\n", "VALUE s 9 7\r\nZYabcde\r\nEND\r\n"},
			// The prepend was the 3rd unique consumed.
			{"gets s\r\n", "VALUE s 9 7 3\r\nZYabcde\r\nEND\r\n"},
			{"append miss 0 0 1\r\nx\r\n", "NOT_STORED\r\n"},
			{"prepend miss 0 0 1\r\nx\r\n", "NOT_STORED\r\n"},
			// --- zero-length bodies ---
			// A set with bytes=0 stores exactly the 12-byte header; flags
			// and cas must round-trip unfabricated.
			{"set z 5 0 0\r\n\r\n", "STORED\r\n"},
			{"get z\r\n", "VALUE z 5 0\r\n\r\nEND\r\n"},
			{"gets z\r\n", "VALUE z 5 0 6\r\n\r\nEND\r\n"},
			// Append onto an empty body: data appears, flags still 5.
			{"append z 0 0 1\r\nA\r\n", "STORED\r\n"},
			{"get z\r\n", "VALUE z 5 1\r\nA\r\nEND\r\n"},
			// Zero-length append/prepend onto a non-empty body: no-ops
			// that still refresh the unique.
			{"append z 0 0 0\r\n\r\n", "STORED\r\n"},
			{"gets z\r\n", "VALUE z 5 1 8\r\nA\r\nEND\r\n"},
			{"prepend z 0 0 0\r\n\r\n", "STORED\r\n"},
			{"get z\r\n", "VALUE z 5 1\r\nA\r\nEND\r\n"},
			// An empty body is not a number.
			{"set e 0 0 0\r\n\r\n", "STORED\r\n"},
			{"incr e 1\r\n", "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n"},
		})
	})
}

// TestAppendSizeCap: each append body may fit individually, but the
// *merged* value must still respect MaxValueSize — otherwise repeated
// appends grow an item without bound.
func TestAppendSizeCap(t *testing.T) {
	forEachBackend(t, Config{Addr: "127.0.0.1:0", MaxValueSize: 16}, func(t *testing.T, srv *Server) {
		runTranscript(t, srv.Addr(), []step{
			{"set s 0 0 10\r\n0123456789\r\n", "STORED\r\n"},
			{"append s 0 0 6\r\nabcdef\r\n", "STORED\r\n"},
			// 16 + 1 > cap: rejected, value untouched.
			{"append s 0 0 1\r\nX\r\n", "SERVER_ERROR object too large for cache\r\n"},
			{"prepend s 0 0 1\r\nX\r\n", "SERVER_ERROR object too large for cache\r\n"},
			{"get s\r\n", "VALUE s 0 16\r\n0123456789abcdef\r\nEND\r\n"},
		})
	})
}

// TestTouchGatConformance: deadline updates with and without retrieval.
// Only instant transitions (negative exptime = immediately expired) are
// asserted here; elapsed-time behavior is covered deterministically by
// the mock-clock tests in ttl_test.go.
func TestTouchGatConformance(t *testing.T) {
	forEachBackend(t, Config{Addr: "127.0.0.1:0"}, func(t *testing.T, srv *Server) {
		runTranscript(t, srv.Addr(), []step{
			{"touch miss 100\r\n", "NOT_FOUND\r\n"},
			{"set k 3 0 2\r\nhi\r\n", "STORED\r\n"},
			{"touch k 100\r\n", "TOUCHED\r\n"},
			{"get k\r\n", "VALUE k 3 2\r\nhi\r\nEND\r\n"},
			// touch 0 clears the deadline; touch -1 kills instantly.
			{"touch k 0\r\n", "TOUCHED\r\n"},
			{"touch k -1\r\n", "TOUCHED\r\n"},
			{"get k\r\n", "END\r\n"},
			{"set g1 2 0 2\r\naa\r\n", "STORED\r\n"},
			{"set g2 0 0 2\r\nbb\r\n", "STORED\r\n"},
			// gat: multi-key, misses omitted, deadline updated per hit.
			{"gat 100 g1 miss g2\r\n", "VALUE g1 2 2\r\naa\r\nVALUE g2 0 2\r\nbb\r\nEND\r\n"},
			// gats adds the unique (g1 was the 2nd consumed).
			{"gats 100 g1\r\n", "VALUE g1 2 2 2\r\naa\r\nEND\r\n"},
			// gat -1 returns the value one last time, then it is gone.
			{"gat -1 g1\r\n", "VALUE g1 2 2\r\naa\r\nEND\r\n"},
			{"get g1\r\n", "END\r\n"},
			// touch noreply is silent.
			{"set k2 0 0 1\r\nx\r\n", "STORED\r\n"},
			{"touch k2 -1 noreply\r\nget k2\r\n", "END\r\n"},
			// Malformed lines.
			{"touch k\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"touch k abc\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"gat 100\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"gat abc k\r\n", "CLIENT_ERROR bad command line format\r\n"},
		})
	})
}

// TestExptimeConformance: the wire-format exptime rules that are
// deterministic under a real clock — negative means already dead,
// >30 days means an absolute unix timestamp, and dead entries are
// invisible to replace/delete but fair game for add.
func TestExptimeConformance(t *testing.T) {
	forEachBackend(t, Config{Addr: "127.0.0.1:0"}, func(t *testing.T, srv *Server) {
		runTranscript(t, srv.Addr(), []step{
			// Negative exptime: stored, but born dead.
			{"set neg 0 -1 2\r\nxx\r\n", "STORED\r\n"},
			{"get neg\r\n", "END\r\n"},
			// add succeeds over an expired key...
			{"add neg 4 0 2\r\nyy\r\n", "STORED\r\n"},
			{"get neg\r\n", "VALUE neg 4 2\r\nyy\r\nEND\r\n"},
			// ...but replace does not revive one, and delete misses it.
			{"set dead 0 -1 1\r\nx\r\n", "STORED\r\n"},
			{"replace dead 0 0 1\r\ny\r\n", "NOT_STORED\r\n"},
			{"delete dead\r\n", "NOT_FOUND\r\n"},
			// 2592001 > 30 days: an absolute unix timestamp in 1970.
			{"set old 0 2592001 1\r\nx\r\n", "STORED\r\n"},
			{"get old\r\n", "END\r\n"},
			// Exactly 30 days is still relative: alive now.
			{"set fut 0 2592000 1\r\nx\r\n", "STORED\r\n"},
			{"get fut\r\n", "VALUE fut 0 1\r\nx\r\nEND\r\n"},
			// A far-future absolute timestamp (2100-01-01): alive.
			{"set fut2 0 4102444800 1\r\ny\r\n", "STORED\r\n"},
			{"get fut2\r\n", "VALUE fut2 0 1\r\ny\r\nEND\r\n"},
			// Exptime overflowing int64: malformed line; the body is then
			// parsed as a (garbage) command.
			{"set k 0 99999999999999999999 1\r\nx\r\n", "CLIENT_ERROR bad command line format\r\nERROR\r\n"},
		})
	})
}

// TestFlushAllVerbosityConformance: flush_all as a store-wide expiry
// epoch (O(1), honored lazily) and the verbosity no-op, on all three
// backends. Only instant flushes run here; the delayed form is asserted
// deterministically under the mock clock in ttl_test.go.
func TestFlushAllVerbosityConformance(t *testing.T) {
	forEachBackend(t, Config{Addr: "127.0.0.1:0", Version: "conftest"}, func(t *testing.T, srv *Server) {
		runTranscript(t, srv.Addr(), []step{
			{"verbosity 1\r\n", "OK\r\n"},
			// noreply verbosity is silent.
			{"verbosity 2 noreply\r\nversion\r\n", "VERSION conftest\r\n"},
			{"verbosity\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"verbosity abc\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"set a 1 0 2\r\naa\r\n", "STORED\r\n"},
			{"set b 0 0 2\r\nbb\r\n", "STORED\r\n"},
			// Everything stored before the flush dies at once...
			{"flush_all\r\n", "OK\r\n"},
			{"get a b\r\n", "END\r\n"},
			// ...and is invisible to delete, like any expired item.
			{"delete a\r\n", "NOT_FOUND\r\n"},
			// Values stored after the flush are untouched.
			{"set c 0 0 2\r\ncc\r\n", "STORED\r\n"},
			{"get c\r\n", "VALUE c 0 2\r\ncc\r\nEND\r\n"},
			// noreply flush is silent and still flushes.
			{"flush_all noreply\r\nget c\r\n", "END\r\n"},
			// Malformed forms.
			{"flush_all -1\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"flush_all 10 20\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"flush_all abc\r\n", "CLIENT_ERROR bad command line format\r\n"},
		})
		// The flushes surface in cmd_flush; the casualties in expired.
		cl, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		st, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st["cmd_flush"] != "2" {
			t.Errorf("cmd_flush = %s, want 2", st["cmd_flush"])
		}
		if exp, _ := strconv.Atoi(st["expired"]); exp < 3 {
			t.Errorf("expired = %s, want >= 3 (a, b, c)", st["expired"])
		}
	})
}

// TestRMWStatsSurface checks the new stats counters through a full
// cas/incr/decr/touch/expiry flow.
func TestRMWStatsSurface(t *testing.T) {
	srv := startAnchorageServer(t, Config{Addr: "127.0.0.1:0"})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Set("n", 0, []byte("1")); err != nil {
		t.Fatal(err)
	}
	_, _, casID, _, err := cl.Gets("n")
	if err != nil {
		t.Fatal(err)
	}
	if st, err := cl.Cas("n", 0, 0, casID, []byte("2")); err != nil || st != CasStored {
		t.Fatalf("cas: %v %v", st, err)
	}
	if st, err := cl.Cas("n", 0, 0, casID, []byte("3")); err != nil || st != CasExists {
		t.Fatalf("stale cas: %v %v", st, err)
	}
	if st, err := cl.Cas("miss", 0, 0, 1, []byte("x")); err != nil || st != CasNotFound {
		t.Fatalf("cas miss: %v %v", st, err)
	}
	if v, found, err := cl.Incr("n", 5); err != nil || !found || v != 7 {
		t.Fatalf("incr: %d %v %v", v, found, err)
	}
	if _, found, err := cl.Incr("miss", 1); err != nil || found {
		t.Fatalf("incr miss: %v %v", found, err)
	}
	if v, found, err := cl.Decr("n", 2); err != nil || !found || v != 5 {
		t.Fatalf("decr: %d %v %v", v, found, err)
	}
	if ok, err := cl.Touch("n", 100); err != nil || !ok {
		t.Fatalf("touch: %v %v", ok, err)
	}
	if ok, err := cl.Touch("miss", 100); err != nil || ok {
		t.Fatalf("touch miss: %v %v", ok, err)
	}
	if err := cl.SetEx("dying", 0, -1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := cl.Get("dying"); err != nil || ok {
		t.Fatalf("expired get: ok=%v err=%v", ok, err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{
		"cas_hits":     "1",
		"cas_badval":   "1",
		"cas_misses":   "1",
		"incr_hits":    "1",
		"incr_misses":  "1",
		"decr_hits":    "1",
		"decr_misses":  "0",
		"touch_hits":   "1",
		"touch_misses": "1",
		"expired":      "1",
	} {
		if st[k] != want {
			t.Errorf("stats[%s] = %q, want %q", k, st[k], want)
		}
	}
	if _, ok := st["expiry_sweeps"]; !ok {
		t.Error("stats missing expiry_sweeps")
	}
}

// TestProtocolPipelined sends a burst of commands in a single write and
// expects all responses in order.
func TestProtocolPipelined(t *testing.T) {
	srv := startAnchorageServer(t, Config{Addr: "127.0.0.1:0", Version: "conftest"})
	runTranscript(t, srv.Addr(), []step{
		{"set p 0 0 1\r\nA\r\nget p\r\ngets p\r\ndelete p\r\nget p\r\n",
			"STORED\r\nVALUE p 0 1\r\nA\r\nEND\r\nVALUE p 0 1 1\r\nA\r\nEND\r\nDELETED\r\nEND\r\n"},
	})
}

// TestProtocolSplitWrites delivers a single command in several TCP
// writes — including a split mid-data-block — and expects normal
// processing.
func TestProtocolSplitWrites(t *testing.T) {
	srv := startAnchorageServer(t, Config{Addr: "127.0.0.1:0", Version: "conftest"})
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	chunks := []string{"se", "t s 0 0 8\r\nab", "cdef", "gh\r", "\nget s\r\n"}
	for _, ch := range chunks {
		if _, err := c.Write([]byte(ch)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond) // force separate segments
	}
	want := "STORED\r\nVALUE s 0 8\r\nabcdefgh\r\nEND\r\n"
	buf := make([]byte, len(want))
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v (got %q)", err, buf)
	}
	if string(buf) != want {
		t.Fatalf("got %q, want %q", buf, want)
	}
}

// TestLargeValueRoundTrip stores a value much larger than the server's
// 16 KiB response buffer, exercising the mid-write flush path (which
// must idle the session — see writeFull).
func TestLargeValueRoundTrip(t *testing.T) {
	srv := startAnchorageServer(t, Config{Addr: "127.0.0.1:0"})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	val := make([]byte, 64<<10)
	for i := range val {
		val[i] = byte(i * 31)
	}
	if err := cl.Set("big", 9, val); err != nil {
		t.Fatal(err)
	}
	got, flags, ok, err := cl.Get("big")
	if err != nil || !ok || flags != 9 {
		t.Fatalf("get big: ok=%v flags=%d err=%v", ok, flags, err)
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("large value corrupted: %d bytes, want %d", len(got), len(val))
	}
}

// TestQuitClosesConnection verifies quit ends the session server-side.
func TestQuitClosesConnection(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{Addr: "127.0.0.1:0"})
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("quit\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := c.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("after quit: read %d bytes, err %v; want EOF", n, err)
	}
}

// TestStatsSurface checks the stats command through the Client and that
// the store counters show through.
func TestStatsSurface(t *testing.T) {
	srv := startAnchorageServer(t, Config{Addr: "127.0.0.1:0", Version: "conftest"})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Set("a", 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := cl.Get("a"); err != nil || !ok {
		t.Fatalf("get a: ok=%v err=%v", ok, err)
	}
	if _, _, ok, err := cl.Get("b"); err != nil || ok {
		t.Fatalf("get b: ok=%v err=%v", ok, err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{
		"version":    "conftest",
		"backend":    "anchorage",
		"cmd_set":    "1",
		"cmd_get":    "2",
		"get_hits":   "1",
		"get_misses": "1",
		"curr_items": "1",
	} {
		if st[k] != want {
			t.Errorf("stats[%s] = %q, want %q", k, st[k], want)
		}
	}
	for _, k := range []string{
		"bytes", "rss_bytes", "defrag_concurrent_passes", "defrag_barrier_passes",
		"latency_p99_us", "curr_connections",
		// The connection-limits surface: present (and zero) even on a
		// server with no limits configured.
		"max_connections", "listen_disabled_num", "accept_errors",
		"idle_kicks", "slow_client_kicks", "cmd_flush",
	} {
		if _, ok := st[k]; !ok {
			t.Errorf("stats missing %s", k)
		}
	}
	for _, k := range []string{"listen_disabled_num", "accept_errors", "idle_kicks", "slow_client_kicks"} {
		if st[k] != "0" {
			t.Errorf("stats[%s] = %q on an unconstrained healthy server, want 0", k, st[k])
		}
	}
}

// TestClientRoundTrip exercises the Client-level API against a malloc
// backend (backend-independence of the protocol layer).
func TestClientRoundTrip(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{Addr: "127.0.0.1:0"})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if stored, err := cl.Add("k", 3, []byte("v0")); err != nil || !stored {
		t.Fatalf("add: %v %v", stored, err)
	}
	if stored, err := cl.Add("k", 3, []byte("v1")); err != nil || stored {
		t.Fatalf("re-add: %v %v", stored, err)
	}
	v, flags, cas1, ok, err := cl.Gets("k")
	if err != nil || !ok || string(v) != "v0" || flags != 3 {
		t.Fatalf("gets: %q %d %v %v", v, flags, ok, err)
	}
	if stored, err := cl.Replace("k", 4, []byte("v2")); err != nil || !stored {
		t.Fatalf("replace: %v %v", stored, err)
	}
	_, _, cas2, _, err := cl.Gets("k")
	if err != nil {
		t.Fatal(err)
	}
	if cas2 == cas1 {
		t.Errorf("cas did not change across replace: %d", cas2)
	}
	if existed, err := cl.Delete("k"); err != nil || !existed {
		t.Fatalf("delete: %v %v", existed, err)
	}
	if v, err := cl.Version(); err != nil || v == "" {
		t.Fatalf("version: %q %v", v, err)
	}
}
