package server

// Protocol conformance suite: golden request/response transcripts over a
// loopback connection, including the error paths (ERROR, CLIENT_ERROR
// bad data chunk, oversized values, NOT_FOUND, noreply) plus pipelined
// and split-write framing.

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/rt"
)

// startServer boots a server on a loopback port over the given backend.
func startServer(t *testing.T, backend kv.Backend, cfg Config) *Server {
	t.Helper()
	store := kv.NewShardedStore(backend, 8, 0)
	srv := New(store, cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { _ = srv.Shutdown(2 * time.Second) })
	return srv
}

func startAnchorageServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	// CountedPins: the pin-visibility mode required when writers run
	// concurrently with the pause-free defrag pass (§7 contract).
	backend, err := kv.NewAnchorageBackend(anchorage.DefaultConfig(), rt.WithPinMode(rt.CountedPins))
	if err != nil {
		t.Fatal(err)
	}
	return startServer(t, backend, cfg)
}

// step is one send/expect exchange of a transcript.
type step struct {
	send string
	want string
}

// runTranscript drives a raw connection through the steps, comparing
// exact bytes.
func runTranscript(t *testing.T, addr string, steps []step) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, st := range steps {
		if st.send != "" {
			if _, err := c.Write([]byte(st.send)); err != nil {
				t.Fatalf("step %d: write: %v", i, err)
			}
		}
		if st.want == "" {
			continue
		}
		buf := make([]byte, len(st.want))
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Fatalf("step %d: after sending %q, read: %v (got %q so far)", i, st.send, err, buf)
		}
		if string(buf) != st.want {
			t.Fatalf("step %d: sent %q\n got  %q\n want %q", i, st.send, buf, st.want)
		}
	}
	// The transcript must account for every response byte.
	_ = c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	extra := make([]byte, 256)
	if n, _ := c.Read(extra); n > 0 {
		t.Fatalf("unconsumed response bytes: %q", extra[:n])
	}
}

func TestProtocolConformance(t *testing.T) {
	srv := startAnchorageServer(t, Config{Addr: "127.0.0.1:0", Version: "conftest", MaxValueSize: 1024})
	runTranscript(t, srv.Addr(), []step{
		// Basic storage and retrieval; flags round-trip.
		{"set foo 42 0 5\r\nhello\r\n", "STORED\r\n"},
		{"get foo\r\n", "VALUE foo 42 5\r\nhello\r\nEND\r\n"},
		// gets returns the cas unique (first store on this server: 1).
		{"gets foo\r\n", "VALUE foo 42 5 1\r\nhello\r\nEND\r\n"},
		// Miss: key simply omitted.
		{"get nosuch\r\n", "END\r\n"},
		// Multi-key get: hits in request order, misses omitted.
		{"set bar 0 0 3\r\nxyz\r\n", "STORED\r\n"},
		{"get foo nosuch bar\r\n", "VALUE foo 42 5\r\nhello\r\nVALUE bar 0 3\r\nxyz\r\nEND\r\n"},
		// add/replace conditional semantics.
		{"add foo 0 0 3\r\nnew\r\n", "NOT_STORED\r\n"},
		{"add fresh 7 0 2\r\nhi\r\n", "STORED\r\n"},
		{"replace nosuch 0 0 2\r\nhi\r\n", "NOT_STORED\r\n"},
		{"replace fresh 8 0 3\r\nbye\r\n", "STORED\r\n"},
		{"get fresh\r\n", "VALUE fresh 8 3\r\nbye\r\nEND\r\n"},
		// delete: hit then miss.
		{"delete fresh\r\n", "DELETED\r\n"},
		{"delete fresh\r\n", "NOT_FOUND\r\n"},
		{"get fresh\r\n", "END\r\n"},
		// noreply set is silent; the following get observes the value.
		{"set quiet 0 0 2 noreply\r\nok\r\nget quiet\r\n", "VALUE quiet 0 2\r\nok\r\nEND\r\n"},
		// noreply delete is silent too.
		{"delete quiet noreply\r\nget quiet\r\n", "END\r\n"},
		// Unknown command and empty line.
		{"bogus\r\n", "ERROR\r\n"},
		{"\r\n", "ERROR\r\n"},
		// Malformed storage line: the would-be data block is parsed as a
		// (garbage) command.
		{"set k notanum 0 5\r\nhello\r\n", "CLIENT_ERROR bad command line format\r\nERROR\r\n"},
		// Over-long key.
		{"get " + strings.Repeat("k", 251) + "\r\n", "CLIENT_ERROR bad command line format\r\n"},
		{"delete foo extra args\r\n", "CLIENT_ERROR bad command line format\r\n"},
		// Bad data chunk: terminator is not CRLF; server reports and
		// resyncs at the next newline, so the following command parses.
		{"set k 0 0 5\r\nhelloXX\r\nversion\r\n", "CLIENT_ERROR bad data chunk\r\nVERSION conftest\r\n"},
		// Oversized value: body swallowed, stream stays in sync.
		{"set big 0 0 2000\r\n" + strings.Repeat("x", 2000) + "\r\nget big\r\n",
			"SERVER_ERROR object too large for cache\r\nEND\r\n"},
		{"version\r\n", "VERSION conftest\r\n"},
	})
}

// TestProtocolPipelined sends a burst of commands in a single write and
// expects all responses in order.
func TestProtocolPipelined(t *testing.T) {
	srv := startAnchorageServer(t, Config{Addr: "127.0.0.1:0", Version: "conftest"})
	runTranscript(t, srv.Addr(), []step{
		{"set p 0 0 1\r\nA\r\nget p\r\ngets p\r\ndelete p\r\nget p\r\n",
			"STORED\r\nVALUE p 0 1\r\nA\r\nEND\r\nVALUE p 0 1 1\r\nA\r\nEND\r\nDELETED\r\nEND\r\n"},
	})
}

// TestProtocolSplitWrites delivers a single command in several TCP
// writes — including a split mid-data-block — and expects normal
// processing.
func TestProtocolSplitWrites(t *testing.T) {
	srv := startAnchorageServer(t, Config{Addr: "127.0.0.1:0", Version: "conftest"})
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	chunks := []string{"se", "t s 0 0 8\r\nab", "cdef", "gh\r", "\nget s\r\n"}
	for _, ch := range chunks {
		if _, err := c.Write([]byte(ch)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond) // force separate segments
	}
	want := "STORED\r\nVALUE s 0 8\r\nabcdefgh\r\nEND\r\n"
	buf := make([]byte, len(want))
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v (got %q)", err, buf)
	}
	if string(buf) != want {
		t.Fatalf("got %q, want %q", buf, want)
	}
}

// TestLargeValueRoundTrip stores a value much larger than the server's
// 16 KiB response buffer, exercising the mid-write flush path (which
// must idle the session — see writeFull).
func TestLargeValueRoundTrip(t *testing.T) {
	srv := startAnchorageServer(t, Config{Addr: "127.0.0.1:0"})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	val := make([]byte, 64<<10)
	for i := range val {
		val[i] = byte(i * 31)
	}
	if err := cl.Set("big", 9, val); err != nil {
		t.Fatal(err)
	}
	got, flags, ok, err := cl.Get("big")
	if err != nil || !ok || flags != 9 {
		t.Fatalf("get big: ok=%v flags=%d err=%v", ok, flags, err)
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("large value corrupted: %d bytes, want %d", len(got), len(val))
	}
}

// TestQuitClosesConnection verifies quit ends the session server-side.
func TestQuitClosesConnection(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{Addr: "127.0.0.1:0"})
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("quit\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := c.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("after quit: read %d bytes, err %v; want EOF", n, err)
	}
}

// TestStatsSurface checks the stats command through the Client and that
// the store counters show through.
func TestStatsSurface(t *testing.T) {
	srv := startAnchorageServer(t, Config{Addr: "127.0.0.1:0", Version: "conftest"})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Set("a", 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := cl.Get("a"); err != nil || !ok {
		t.Fatalf("get a: ok=%v err=%v", ok, err)
	}
	if _, _, ok, err := cl.Get("b"); err != nil || ok {
		t.Fatalf("get b: ok=%v err=%v", ok, err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{
		"version":    "conftest",
		"backend":    "anchorage",
		"cmd_set":    "1",
		"cmd_get":    "2",
		"get_hits":   "1",
		"get_misses": "1",
		"curr_items": "1",
	} {
		if st[k] != want {
			t.Errorf("stats[%s] = %q, want %q", k, st[k], want)
		}
	}
	for _, k := range []string{"bytes", "rss_bytes", "defrag_concurrent_passes", "defrag_barrier_passes", "latency_p99_us", "curr_connections"} {
		if _, ok := st[k]; !ok {
			t.Errorf("stats missing %s", k)
		}
	}
}

// TestClientRoundTrip exercises the Client-level API against a malloc
// backend (backend-independence of the protocol layer).
func TestClientRoundTrip(t *testing.T) {
	srv := startServer(t, kv.NewMallocBackend(), Config{Addr: "127.0.0.1:0"})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if stored, err := cl.Add("k", 3, []byte("v0")); err != nil || !stored {
		t.Fatalf("add: %v %v", stored, err)
	}
	if stored, err := cl.Add("k", 3, []byte("v1")); err != nil || stored {
		t.Fatalf("re-add: %v %v", stored, err)
	}
	v, flags, cas1, ok, err := cl.Gets("k")
	if err != nil || !ok || string(v) != "v0" || flags != 3 {
		t.Fatalf("gets: %q %d %v %v", v, flags, ok, err)
	}
	if stored, err := cl.Replace("k", 4, []byte("v2")); err != nil || !stored {
		t.Fatalf("replace: %v %v", stored, err)
	}
	_, _, cas2, _, err := cl.Gets("k")
	if err != nil {
		t.Fatal(err)
	}
	if cas2 == cas1 {
		t.Errorf("cas did not change across replace: %d", cas2)
	}
	if existed, err := cl.Delete("k"); err != nil || !existed {
		t.Fatalf("delete: %v %v", existed, err)
	}
	if v, err := cl.Version(); err != nil || v == "" {
		t.Fatalf("version: %q %v", v, err)
	}
}
