package server

// Event-driven connection core: the protocol engine over in-memory
// buffers, shared by every platform. A parked connection is nothing but
// a registered fd plus the pollConn below (~200 B and usually-nil spill
// slices — no goroutine stack, no bufio pair, no rt.Thread). When the
// readiness poller reports the fd, a fixed worker pool runs the same
// dispatch/command code the goroutine model uses, against a per-worker
// eventIO whose buffers are grow-only and reused across every
// connection the worker serves — so the PR 5 zero-alloc contract holds
// in steady state. The platform-specific half (epoll registration,
// readiness loop, worker scheduling) lives in poller_linux.go.

import (
	"bytes"
	"errors"
	"net"
	"sync/atomic"
	"time"
)

const (
	// burstCmdBudget bounds commands served in one scheduling quantum: a
	// connection pipelining an endless stream is requeued behind other
	// ready connections instead of monopolizing its worker.
	burstCmdBudget = 128
	// eventReadChunk is the minimum socket read size per readiness.
	eventReadChunk = 16 << 10
	// eventFlushHighWater forces a (non-blocking) writev once this many
	// reply bytes are pending, so pipelined bursts stream to the kernel
	// instead of accumulating a whole burst's output in user memory.
	eventFlushHighWater = 32 << 10
	// connSpillRetain caps the per-connection spill capacity kept across
	// parks: a connection that once parked mid-command keeps a small
	// buffer for next time, but large one-off spills are released so an
	// idle connection's cost returns to the bare struct.
	connSpillRetain = 4 << 10
	// workerBufRetain caps the per-worker working buffers retained
	// between bursts; a pathological burst (one huge multi-get) doesn't
	// pin its peak memory on the worker forever.
	workerBufRetain = 1 << 20
)

// scheduling states of pollConn.sched. The token protocol: exactly one
// thread "owns" a connection (may touch its fd or spill buffers) at a
// time — the worker serving it, the registering accept loop, or a
// sweeper that won the CAS from schedParked. Epoll readiness and kill
// requests never touch the fd themselves; they hand the connection to
// an owner via wake().
const (
	schedParked    = 0 // owned by nobody; fd armed in epoll
	schedScheduled = 1 // owned: queued or being served
	schedRewake    = 2 // owned, and readiness arrived meanwhile
)

// pollConn is the entire per-connection state of a parked connection.
type pollConn struct {
	fd  int
	id  uint64 // slow-op / debug-log attribution, same space as conn.id
	gen uint32 // registration generation; stale epoll events are dropped
	// armed is the epoll interest mask currently registered for fd,
	// owned (like the spill buffers) by whoever holds the sched token.
	// With edge-triggered registration the mask only changes when a park
	// must also watch writability, so comparing against it lets the
	// common park skip the EPOLL_CTL_MOD syscall entirely.
	armed uint32

	sched  atomic.Int32
	killed atomic.Bool
	slow   atomic.Bool
	// lastActive is the Config.Clock unixnano of the last completed
	// command or write progress — the idle reaper's input. Partial
	// request bytes never touch it (memcached's last_cmd_time rule).
	lastActive atomic.Int64
	// writeStall is the Config.Clock unixnano since which reply bytes
	// have been pending with no write progress (0 = none pending): the
	// event-mode form of the per-write deadline. The sweep kicks the
	// connection once now-writeStall exceeds WriteTimeout.
	writeStall atomic.Int64

	// Spill buffers, owned by whoever holds the sched token. Nil on a
	// connection idling between commands — only a park mid-command (or
	// with undrained replies) pays for them.
	inSpill  []byte
	outSpill []byte

	// Persistent framing state surviving parks.
	resync      bool    // dropping input until the next newline
	discardLeft int     // >0: dropping an oversized value body (incl. CRLF)
	discardTail [2]byte // rolling last-2-bytes window for the CRLF check
	discardCmd  cmdCode // opcode to attribute the discard's reply to
}

// touch stamps activity (completed command / write progress).
func (pc *pollConn) touch(nowNano int64) { pc.lastActive.Store(nowNano) }

// evStatus is process()'s verdict on why it stopped consuming input.
type evStatus int

const (
	evNeedInput    evStatus = iota // buffered input exhausted mid-frame
	evYield                        // burst budget spent with input remaining
	evBackpressure                 // reply backlog over cap; wait for writability
	evQuit                         // client sent quit
	evFatal                        // I/O or framing failure: drop the connection
)

// errEventShortBody guards the prescan invariant: dispatch only runs
// once the full data block is buffered, so the in-buffer body reads can
// never come up short. Hitting it is a framing bug; the connection is
// dropped rather than desynced.
var errEventShortBody = errors.New("server: event engine dispatched with incomplete body")

// eventIO is a worker's reusable protocol engine. Its buffers are
// grow-only and recycled across every connection the worker serves; a
// connection's own residue lives in pollConn spill slices only while
// parked mid-command. It implements the same I/O surface the blocking
// bufio engine gives connHandler (readBody/discardBody/resyncLine/
// flush/writeFull/writeString), so dispatch and every do* handler run
// unchanged.
type eventIO struct {
	h  *connHandler
	pc *pollConn

	in       []byte // unconsumed input is in[rpos:]
	rpos     int
	needHint int // bytes still missing for the pending command's body

	spill    []byte // pc.outSpill loaded at begin; [spillOff:] undrained
	spillOff int
	out      []byte // replies generated this burst; [outOff:] undrained
	outOff   int
}

// begin attaches the engine to a woken connection, loading its spill.
func (e *eventIO) begin(pc *pollConn) {
	e.pc = pc
	if len(pc.inSpill) > 0 {
		e.in = append(e.in[:0], pc.inSpill...)
	} else {
		e.in = e.in[:0]
	}
	e.rpos = 0
	e.needHint = 0
	e.spill = pc.outSpill
	e.spillOff = 0
	e.out = e.out[:0]
	e.outOff = 0
}

// park writes unconsumed input and undrained output back to the
// connection's spill slices and detaches. Empty residue releases the
// spill entirely (capacity above connSpillRetain is dropped), so an
// idle parked connection holds no buffer memory at all.
func (e *eventIO) park() {
	pc := e.pc
	left := e.in[e.rpos:]
	if len(left) == 0 {
		pc.inSpill = shedSpill(pc.inSpill)
	} else {
		pc.inSpill = append(pc.inSpill[:0], left...)
	}
	a := e.spill[e.spillOff:]
	b := e.out[e.outOff:]
	if len(a) == 0 && len(b) == 0 {
		pc.outSpill = shedSpill(pc.outSpill)
	} else {
		// e.spill aliases pc.outSpill: compact the remainder in place,
		// then append this burst's residue (append reallocates only on
		// growth).
		if e.spillOff > 0 && len(a) > 0 {
			copy(e.spill, a)
		}
		pc.outSpill = append(e.spill[:len(a)], b...)
	}
	e.in = trimWorkerBuf(e.in)
	e.rpos = 0
	e.out = trimWorkerBuf(e.out)
	e.outOff = 0
	e.spill = nil
	e.spillOff = 0
	e.pc = nil
}

func shedSpill(b []byte) []byte {
	if cap(b) > connSpillRetain {
		return nil
	}
	return b[:0]
}

func trimWorkerBuf(b []byte) []byte {
	if cap(b) > workerBufRetain {
		return nil
	}
	return b[:0]
}

// readBuf compacts consumed input and returns free space (at least
// eventReadChunk, or whatever the pending command's body still needs)
// for the next socket read; extend commits n read bytes.
func (e *eventIO) readBuf() []byte {
	if e.rpos > 0 {
		n := copy(e.in, e.in[e.rpos:])
		e.in = e.in[:n]
		e.rpos = 0
	}
	need := eventReadChunk
	if e.needHint > need {
		need = e.needHint
	}
	if cap(e.in)-len(e.in) < need {
		grown := make([]byte, len(e.in), len(e.in)+need)
		copy(grown, e.in)
		e.in = grown
	}
	return e.in[len(e.in):cap(e.in)]
}

func (e *eventIO) extend(n int) { e.in = e.in[:len(e.in)+n] }

// pendingOut is the undrained reply byte count (the event-mode reply
// backlog).
func (e *eventIO) pendingOut() int {
	return (len(e.spill) - e.spillOff) + (len(e.out) - e.outOff)
}

// tryFlush writevs [spill remainder, burst output] to the socket until
// it would block or everything drained. EAGAIN is not an error — the
// residue parks with the connection and EPOLLOUT finishes the job.
// Write progress counts as activity; pending bytes with no progress
// start the write-stall clock the sweeper enforces WriteTimeout with.
func (e *eventIO) tryFlush() error {
	pc := e.pc
	if pc.fd < 0 {
		return nil // detached engine (tests): output accumulates in e.out
	}
	srv := e.h.srv
	for {
		a := e.spill[e.spillOff:]
		b := e.out[e.outOff:]
		if len(a)+len(b) == 0 {
			pc.writeStall.Store(0)
			return nil
		}
		n, again, err := writevRawFd(pc.fd, a, b)
		if n > 0 {
			if srv.instr {
				srv.bytesWritten.Add(int64(n))
			}
			if n >= len(a) {
				e.spillOff = len(e.spill)
				e.outOff += n - len(a)
			} else {
				e.spillOff += n
			}
			now := srv.cfg.Clock().UnixNano()
			pc.touch(now)
			if e.pendingOut() == 0 {
				pc.writeStall.Store(0)
				return nil
			}
			pc.writeStall.Store(now) // progress resets the stall deadline
		}
		if err != nil {
			return err
		}
		if again {
			if pc.writeStall.Load() == 0 {
				pc.writeStall.Store(srv.cfg.Clock().UnixNano())
			}
			return nil
		}
	}
}

// errEventBacklog drops a connection whose single command produced more
// than the whole reply-backlog budget while the socket absorbed none of
// it — the in-command analogue of the blocking engine's deadline-bounded
// forced flush. (Between commands the engine parks for EPOLLOUT instead;
// this fires only when one command alone overruns the entire cap.)
var errEventBacklog = errors.New("server: reply backlog exceeded mid-command")

func (e *eventIO) maybeFlush() error {
	if e.pendingOut() < eventFlushHighWater {
		return nil
	}
	if err := e.tryFlush(); err != nil {
		return err
	}
	if cap := e.h.srv.cfg.MaxReplyBacklog; cap > 0 && e.pendingOut() > cap {
		e.pc.slow.Store(true)
		return errEventBacklog
	}
	return nil
}

// writeFull/writeString/flush are the event-mode halves of connHandler's
// I/O methods (connHandler branches here when ev is attached).

func (e *eventIO) writeFull(p []byte) error {
	e.out = append(e.out, p...)
	return e.maybeFlush()
}

func (e *eventIO) writeString(s string) error {
	e.out = append(e.out, s...)
	return e.maybeFlush()
}

func (e *eventIO) flush() error { return e.tryFlush() }

// readBody returns a storage command's data block straight out of the
// input buffer — the prescan guaranteed it is fully buffered before
// dispatch ran, so this never blocks and never copies.
func (e *eventIO) readBody(n int) ([]byte, bool, error) {
	buf := e.in[e.rpos:]
	if len(buf) < n+2 {
		return nil, false, errEventShortBody
	}
	data := buf[:n]
	ok := buf[n] == '\r' && buf[n+1] == '\n'
	e.rpos += n + 2
	if !ok {
		return nil, false, nil
	}
	return data, true, nil
}

// discardBody consumes an already-buffered data block. The oversized
// path proper never gets here (the prescan intercepts it into the
// discardLeft framing state before dispatch); a short buffer therefore
// indicates a framing bug and drops the connection.
func (e *eventIO) discardBody(n int) (bool, error) {
	buf := e.in[e.rpos:]
	if len(buf) < n+2 {
		return false, errEventShortBody
	}
	ok := buf[n] == '\r' && buf[n+1] == '\n'
	e.rpos += n + 2
	return ok, nil
}

// resyncLine flags the framing layer to drop input through the next
// newline; the discard itself happens incrementally across readiness
// events, in bounded memory.
func (e *eventIO) resyncLine() error {
	e.pc.resync = true
	return nil
}

// maybeStorageCmd cheaply gates the storage prescan on the command's
// first byte (set/add/replace/cas/append/prepend); gets skip it with one
// compare.
func maybeStorageCmd(c byte) bool {
	switch c {
	case 's', 'a', 'r', 'c', 'p':
		return true
	}
	return false
}

// prescanStorage tokenizes a candidate storage line and parses its
// arguments so the framing layer learns the data-block length before
// dispatch. ok is false for anything dispatch should handle normally
// (non-storage commands, malformed storage lines — those reply
// CLIENT_ERROR without a body read, exactly like the blocking engine).
func prescanStorage(h *connHandler, line []byte) (code cmdCode, sa storageArgsB, ok bool) {
	f := tokenize(line, h.fields[:0])
	h.fields = f // keep the grown backing array
	if len(f) == 0 {
		return 0, sa, false
	}
	withCAS := false
	switch string(f[0]) {
	case "set":
		code = cmdSet
	case "add":
		code = cmdAdd
	case "replace":
		code = cmdReplace
	case "cas":
		code, withCAS = cmdCas, true
	case "append":
		code = cmdAppend
	case "prepend":
		code = cmdPrepend
	default:
		return 0, sa, false
	}
	sa, err := parseStorageB(f[1:], withCAS)
	if err != nil {
		return 0, sa, false
	}
	return code, sa, true
}

// updateTail slides the rolling 2-byte terminator window over a
// discarded chunk.
func updateTail(tail *[2]byte, chunk []byte) {
	switch n := len(chunk); {
	case n >= 2:
		tail[0], tail[1] = chunk[n-2], chunk[n-1]
	case n == 1:
		tail[0], tail[1] = tail[1], chunk[0]
	}
}

// process consumes buffered input: completes persistent framing states
// (resync, oversized-body discard), then dispatches every fully
// buffered command. It only ever dispatches a command whose complete
// line — and, for storage commands, complete data block — is already in
// memory, so the shared dispatch code never blocks mid-command and the
// "resumable state machine" lives entirely in this framing layer.
func (e *eventIO) process(cmds *int) evStatus {
	h := e.h
	srv := h.srv
	maxLine := srv.cfg.MaxLineLen
	for {
		if *cmds >= burstCmdBudget && e.rpos < len(e.in) {
			return evYield
		}
		// Reply-backlog gate at command boundaries: a client that
		// pipelines retrievals without draining them parks for EPOLLOUT
		// (and, past WriteTimeout with no progress, is kicked by the
		// sweep) instead of growing an unbounded queue.
		if cap := srv.cfg.MaxReplyBacklog; cap > 0 && e.pendingOut() > cap {
			if err := e.tryFlush(); err != nil {
				return evFatal
			}
			if e.pendingOut() > cap {
				return evBackpressure
			}
		}
		pc := e.pc
		if pc.resync {
			buf := e.in[e.rpos:]
			i := bytes.IndexByte(buf, '\n')
			if i < 0 {
				e.rpos = len(e.in)
				return evNeedInput
			}
			e.rpos += i + 1
			pc.resync = false
			continue
		}
		if pc.discardLeft > 0 {
			buf := e.in[e.rpos:]
			n := len(buf)
			if n > pc.discardLeft {
				n = pc.discardLeft
			}
			updateTail(&pc.discardTail, buf[:n])
			e.rpos += n
			pc.discardLeft -= n
			if pc.discardLeft > 0 {
				return evNeedInput
			}
			// Discard complete: same replies and accounting as the
			// blocking oversized path (replyError even under noreply).
			resp := respTooLarge
			if pc.discardTail != [2]byte{'\r', '\n'} {
				resp = respBadChunk
			}
			if h.replyError(resp) != nil {
				return evFatal
			}
			h.lastCmd = pc.discardCmd
			srv.recordOp(h, pc.id, 0)
			pc.touch(srv.cfg.Clock().UnixNano())
			*cmds++
			continue
		}
		buf := e.in[e.rpos:]
		if len(buf) == 0 {
			return evNeedInput
		}
		i := bytes.IndexByte(buf, '\n')
		if i < 0 {
			if len(buf) > maxLine+1 {
				if h.replyError(respLineTooLong) != nil {
					return evFatal
				}
				e.rpos = len(e.in)
				pc.resync = true
				continue
			}
			e.needHint = 0
			return evNeedInput
		}
		if i > maxLine+1 {
			// The newline is already buffered: report and resume right
			// after it (the resync is instantaneous).
			if h.replyError(respLineTooLong) != nil {
				return evFatal
			}
			e.rpos += i + 1
			continue
		}
		line := buf[:i]
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) > 0 && maybeStorageCmd(line[0]) {
			if code, sa, isStore := prescanStorage(h, line); isStore {
				if sa.nbytes > srv.cfg.MaxValueSize {
					// Oversized value: consume the line now and drop the
					// body as a framing state — it may dribble in across
					// many readiness events and must never be buffered.
					h.noteOp(code, sa.key)
					e.rpos += i + 1
					pc.discardLeft = sa.nbytes + 2
					pc.discardTail = [2]byte{}
					pc.discardCmd = code
					continue
				}
				if total := i + 1 + sa.nbytes + 2; len(buf) < total {
					e.needHint = total - len(buf)
					return evNeedInput
				}
			}
		}
		e.rpos += i + 1
		start := time.Now()
		quit, err := h.dispatch(line)
		if err != nil {
			if quit {
				// unreachable; keep the compiler honest about both returns
				return evQuit
			}
			return evFatal
		}
		srv.recordOp(h, pc.id, time.Since(start))
		pc.touch(srv.cfg.Clock().UnixNano())
		h.sess.Safepoint()
		*cmds++
		if quit {
			return evQuit
		}
	}
}

// connPoller is what Server sees of the event-driven core; the epoll
// implementation lives in poller_linux.go, and newPoller on platforms
// without one reports unsupported (the server then falls back to the
// goroutine-per-connection model).
type connPoller interface {
	start()
	// register transfers ownership of an accepted connection to the
	// poller (dup + park). On error the caller still owns c and falls
	// back to a goroutine handler.
	register(c net.Conn, id uint64) error
	sweep()
	killAll()
	drained() bool
	stop()
	gauges() (parked, active, queued int64)
	burstCount() int64
}
