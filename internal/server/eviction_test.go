package server

// Eviction-semantics battery over the wire, on all three backends: the
// store runs under a small global memory ceiling and the transcripts
// prove memcached `-m` behavior end to end — LRU order respected across
// get/gat/RMW touches, overwrites discounting the replaced entry's
// bytes, oversized values rejected with SERVER_ERROR and zero
// evictions, and the charged `bytes` total never exceeding
// `limit_maxbytes` after any op.

import (
	"bufio"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/rt"
)

// startServerWithCap is startServer with a store-wide memory ceiling.
func startServerWithCap(t *testing.T, backend kv.Backend, cfg Config, maxMemory uint64) *Server {
	t.Helper()
	store := kv.NewShardedStore(backend, 8, maxMemory)
	srv := New(store, cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { _ = srv.Shutdown(2 * time.Second) })
	return srv
}

// forEachBackendWithCap runs fn against a ceiling-capped server on each
// of the three network-facing backends.
func forEachBackendWithCap(t *testing.T, cfg Config, maxMemory uint64, fn func(t *testing.T, srv *Server)) {
	t.Run("malloc", func(t *testing.T) {
		fn(t, startServerWithCap(t, kv.NewMallocBackend(), cfg, maxMemory))
	})
	t.Run("mesh", func(t *testing.T) {
		fn(t, startServerWithCap(t, kv.NewMeshBackend(1), cfg, maxMemory))
	})
	t.Run("anchorage", func(t *testing.T) {
		backend, err := kv.NewAnchorageBackend(anchorage.DefaultConfig(), rt.WithPinMode(rt.CountedPins))
		if err != nil {
			t.Fatal(err)
		}
		fn(t, startServerWithCap(t, backend, cfg, maxMemory))
	})
}

// sameShardKeys returns n keys of equal length that all hash to one
// shard (the store's FNV-1a placement), so transcript-level eviction
// order is the plain LRU order with no cross-shard spill involved.
func sameShardKeys(t *testing.T, n, shards int) []string {
	t.Helper()
	const (
		fnvOffset32 = 2166136261
		fnvPrime32  = 16777619
	)
	shardOf := func(key string) int {
		h := uint32(fnvOffset32)
		for i := 0; i < len(key); i++ {
			h ^= uint32(key[i])
			h *= fnvPrime32
		}
		return int(h % uint32(shards))
	}
	var keys []string
	for i := 0; len(keys) < n && i < 100000; i++ {
		k := "ev" + string([]byte{byte('a' + i/26 % 26), byte('a' + i%26)}) + string([]byte{byte('0' + i/676 % 10)})
		if shardOf(k) == 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("could not find %d same-shard keys", n)
	}
	return keys
}

// storedCost is the charged kv-level cost of one server-stored value:
// the wire body plus the 12-byte flags+cas header the server prepends,
// the key, and the per-entry overhead.
func storedCost(keyLen, bodyLen int) uint64 {
	return uint64(keyLen) + uint64(valueHeaderLen+bodyLen) + kv.EntryOverhead
}

// checkCeiling asserts bytes <= limit_maxbytes on the live store.
func checkCeiling(t *testing.T, srv *Server, when string) {
	t.Helper()
	snap := srv.store.Snapshot()
	if snap.Bytes > snap.LimitMaxbytes {
		t.Fatalf("%s: bytes %d exceeds limit_maxbytes %d", when, snap.Bytes, snap.LimitMaxbytes)
	}
}

const evBody = "0123456789012345678901234567890123456789" // 40 bytes

func evSet(key string) step {
	return step{"set " + key + " 0 0 40\r\n" + evBody + "\r\n", "STORED\r\n"}
}

func evHit(key string) step {
	return step{"get " + key + "\r\n", "VALUE " + key + " 0 40\r\n" + evBody + "\r\nEND\r\n"}
}

func evMiss(key string) step {
	return step{"get " + key + "\r\n", "END\r\n"}
}

func TestEvictionLRUOrderOverWire(t *testing.T) {
	keys := sameShardKeys(t, 5, 8)
	k0, k1, k2, k3, k4 := keys[0], keys[1], keys[2], keys[3], keys[4]
	ceiling := 3 * storedCost(len(k0), len(evBody))
	cfg := Config{Addr: "127.0.0.1:0", Version: "evtest", MaxValueSize: 64 << 10}
	forEachBackendWithCap(t, cfg, ceiling, func(t *testing.T, srv *Server) {
		addr := srv.Addr()
		runTranscript(t, addr, []step{evSet(k0), evSet(k1), evSet(k2)})
		checkCeiling(t, srv, "after fill")
		// Refresh k0 (get) then k1 (gat): k2 becomes the LRU victim.
		runTranscript(t, addr, []step{
			evHit(k0),
			{"gat 0 " + k1 + "\r\n", "VALUE " + k1 + " 0 40\r\n" + evBody + "\r\nEND\r\n"},
			evSet(k3),
			evMiss(k2),
		})
		checkCeiling(t, srv, "after first eviction")
		// Verify survivors; these gets also reorder recency to k3 > k1 > k0.
		runTranscript(t, addr, []step{evHit(k0), evHit(k1), evHit(k3)})
		// An RMW (append) refreshes k0, so the next eviction takes k1.
		runTranscript(t, addr, []step{
			{"append " + k0 + " 0 0 0\r\n\r\n", "STORED\r\n"},
			evSet(k4),
			evMiss(k1),
			evHit(k0),
			evHit(k3),
			evHit(k4),
		})
		checkCeiling(t, srv, "after second eviction")
		snap := srv.store.Snapshot()
		if snap.Evictions != 2 {
			t.Errorf("evictions = %d, want exactly 2 (k2 then k1)", snap.Evictions)
		}
		if snap.Keys != 3 {
			t.Errorf("curr_items = %d, want 3", snap.Keys)
		}
	})
}

// TestOversizedValueOverWire: a full store must survive an oversized
// set untouched — SERVER_ERROR on the wire, zero evictions, every
// previously stored value still readable.
func TestOversizedValueOverWire(t *testing.T) {
	keys := sameShardKeys(t, 3, 8)
	ceiling := 3 * storedCost(len(keys[0]), len(evBody))
	cfg := Config{Addr: "127.0.0.1:0", Version: "evtest", MaxValueSize: 64 << 10}
	forEachBackendWithCap(t, cfg, ceiling, func(t *testing.T, srv *Server) {
		big := strings.Repeat("x", int(ceiling))
		runTranscript(t, srv.Addr(), []step{
			evSet(keys[0]), evSet(keys[1]), evSet(keys[2]),
			// Larger than the whole ceiling (but under -max-value-size):
			// rejected up front, for set and the conditional stores alike.
			{"set huge 0 0 " + strconv.Itoa(len(big)) + "\r\n" + big + "\r\n",
				"SERVER_ERROR object too large for cache\r\n"},
			{"add huge2 0 0 " + strconv.Itoa(len(big)) + "\r\n" + big + "\r\n",
				"SERVER_ERROR object too large for cache\r\n"},
			evHit(keys[0]), evHit(keys[1]), evHit(keys[2]),
		})
		snap := srv.store.Snapshot()
		if snap.Evictions != 0 || snap.Reclaimed != 0 {
			t.Errorf("oversized set evicted: evictions=%d reclaimed=%d, want 0",
				snap.Evictions, snap.Reclaimed)
		}
		checkCeiling(t, srv, "after oversized rejects")
	})
}

// TestOverwriteDiscountOverWire: same-size overwrites of a full store
// need no net room and must evict nothing.
func TestOverwriteDiscountOverWire(t *testing.T) {
	keys := sameShardKeys(t, 3, 8)
	ceiling := 3 * storedCost(len(keys[0]), len(evBody))
	cfg := Config{Addr: "127.0.0.1:0", Version: "evtest", MaxValueSize: 64 << 10}
	forEachBackendWithCap(t, cfg, ceiling, func(t *testing.T, srv *Server) {
		steps := []step{evSet(keys[0]), evSet(keys[1]), evSet(keys[2])}
		for i := 0; i < 6; i++ {
			steps = append(steps, evSet(keys[i%3]))
		}
		steps = append(steps, evHit(keys[0]), evHit(keys[1]), evHit(keys[2]))
		runTranscript(t, srv.Addr(), steps)
		snap := srv.store.Snapshot()
		if snap.Evictions != 0 {
			t.Errorf("evictions = %d across same-size overwrites, want 0", snap.Evictions)
		}
		if snap.Bytes != ceiling {
			t.Errorf("bytes = %d, want the full ceiling %d", snap.Bytes, ceiling)
		}
	})
}

// TestStatsCeilingRows: the stats reply carries the new accounting rows
// and `stats items` emits per-shard rows; an unknown sub-command errors.
func TestStatsCeilingRows(t *testing.T) {
	keys := sameShardKeys(t, 4, 8)
	ceiling := 3 * storedCost(len(keys[0]), len(evBody))
	cfg := Config{Addr: "127.0.0.1:0", Version: "evtest", MaxValueSize: 64 << 10}
	srv := startServerWithCap(t, kv.NewMallocBackend(), cfg, ceiling)
	runTranscript(t, srv.Addr(), []step{
		evSet(keys[0]), evSet(keys[1]), evSet(keys[2]),
		evHit(keys[0]),
		evSet(keys[3]), // evicts keys[1] (never fetched)
	})

	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReader(c)
	readStats := func(cmd string) map[string]string {
		t.Helper()
		if _, err := c.Write([]byte(cmd + "\r\n")); err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("%s: %v", cmd, err)
			}
			line = strings.TrimRight(line, "\r\n")
			if line == "END" {
				return out
			}
			f := strings.Fields(line)
			if len(f) != 3 || f[0] != "STAT" {
				t.Fatalf("%s: bad line %q", cmd, line)
			}
			out[f[1]] = f[2]
		}
	}

	st := readStats("stats")
	if st["limit_maxbytes"] != strconv.Itoa(int(ceiling)) {
		t.Errorf("limit_maxbytes = %s, want %d", st["limit_maxbytes"], ceiling)
	}
	if st["bytes"] != strconv.Itoa(int(ceiling)) { // 3 live entries = full ceiling
		t.Errorf("bytes = %s, want %d", st["bytes"], ceiling)
	}
	if st["evictions"] != "1" || st["evicted_unfetched"] != "1" {
		t.Errorf("evictions/evicted_unfetched = %s/%s, want 1/1",
			st["evictions"], st["evicted_unfetched"])
	}
	if _, ok := st["reclaimed"]; !ok {
		t.Error("stats reply missing reclaimed row")
	}
	if _, ok := st["used_bytes"]; !ok {
		t.Error("stats reply missing used_bytes row")
	}

	items := readStats("stats items")
	if items["items:0:number"] != "3" {
		t.Errorf("items:0:number = %s, want 3 (all battery keys hash to shard 0)", items["items:0:number"])
	}
	if items["items:0:evicted"] != "1" {
		t.Errorf("items:0:evicted = %s, want 1", items["items:0:evicted"])
	}
	for i := 1; i < 8; i++ {
		if items["items:"+strconv.Itoa(i)+":number"] != "0" {
			t.Errorf("items:%d:number = %s, want 0", i, items["items:"+strconv.Itoa(i)+":number"])
		}
	}

	runTranscript(t, srv.Addr(), []step{
		{"stats nosuch\r\n", "ERROR\r\n"},
	})
}
