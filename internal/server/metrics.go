package server

import (
	"math"
	"sync/atomic"

	"alaska/internal/kv"
	"alaska/internal/metrics"
	"alaska/internal/wal"
)

// sampledFloat decodes a gauge stored as math.Float64bits in an atomic.
func sampledFloat(v *atomic.Uint64) float64 {
	return math.Float64frombits(v.Load())
}

// registryState is the server's lazily-built metrics registry plus the
// per-scrape store snapshot the func-backed series read: the OnScrape
// hook refreshes it once, so one /metrics scrape costs one Snapshot
// walk no matter how many series render from it.
type registryState struct {
	reg  *metrics.Registry
	snap kv.StatsSnapshot
}

// MetricsRegistry returns the server's Prometheus registry, building it
// on first use. Registration happens exactly once; afterwards the only
// shared work is at scrape time — the request path never sees the
// registry at all (it records into the same atomics and latency
// recorders the registry renders from).
func (s *Server) MetricsRegistry() *metrics.Registry {
	s.registryOnce.Do(func() {
		s.registry = s.buildRegistry()
	})
	return s.registry.reg
}

func (s *Server) buildRegistry() *registryState {
	st := &registryState{reg: metrics.NewRegistry()}
	r := st.reg
	r.OnScrape(func() { st.snap = s.store.Snapshot() })

	// Identity and lifetime.
	r.Family("alaskad_info", metrics.KindGauge,
		"Build/runtime identity; value is always 1.").
		Func(`version="`+s.cfg.Version+`",backend="`+s.store.Backend().Name()+`"`,
			func() float64 { return 1 })
	r.GaugeFunc("alaskad_uptime_seconds", "Seconds since the server started serving.",
		func() float64 { return s.cfg.Clock().Sub(s.start).Seconds() })

	// Per-opcode command latency: the tentpole histogram family. The
	// children are the same recorders the hot path writes, so exposing
	// them costs nothing per request.
	if s.instr {
		f := r.Family("alaskad_op_latency_seconds", metrics.KindHistogram,
			"Command latency by opcode, measured from dispatch to reply generation.")
		for i, rec := range s.perOp {
			f.Histogram(`op="`+cmdNames[i]+`"`, rec)
		}
	}
	r.Histogram("alaskad_command_latency_seconds",
		"Command latency across all opcodes.", s.lat)

	// Socket byte totals (counted in the conn read/write wrappers).
	r.CounterFunc("alaskad_bytes_read_total", "Bytes read from client sockets.",
		func() float64 { return float64(s.bytesRead.Load()) })
	r.CounterFunc("alaskad_bytes_written_total", "Bytes written to client sockets.",
		func() float64 { return float64(s.bytesWritten.Load()) })

	// Store operation counters, from the per-scrape snapshot.
	ops := r.Family("alaskad_store_ops_total", metrics.KindCounter,
		"Store operations by opcode and outcome.")
	snapCtr := func(labels string, get func(*kv.StatsSnapshot) int64) {
		ops.Func(labels, func() float64 { return float64(get(&st.snap)) })
	}
	snapCtr(`op="get",outcome="hit"`, func(sn *kv.StatsSnapshot) int64 { return sn.Hits })
	snapCtr(`op="get",outcome="miss"`, func(sn *kv.StatsSnapshot) int64 { return sn.Misses })
	snapCtr(`op="set",outcome="stored"`, func(sn *kv.StatsSnapshot) int64 { return sn.Sets })
	snapCtr(`op="delete",outcome="hit"`, func(sn *kv.StatsSnapshot) int64 { return sn.DeleteHits })
	snapCtr(`op="delete",outcome="miss"`, func(sn *kv.StatsSnapshot) int64 { return sn.DeleteMisses })
	snapCtr(`op="cas",outcome="hit"`, func(sn *kv.StatsSnapshot) int64 { return sn.CasHits })
	snapCtr(`op="cas",outcome="badval"`, func(sn *kv.StatsSnapshot) int64 { return sn.CasBadval })
	snapCtr(`op="cas",outcome="miss"`, func(sn *kv.StatsSnapshot) int64 { return sn.CasMisses })
	snapCtr(`op="incr",outcome="hit"`, func(sn *kv.StatsSnapshot) int64 { return sn.IncrHits })
	snapCtr(`op="incr",outcome="miss"`, func(sn *kv.StatsSnapshot) int64 { return sn.IncrMisses })
	snapCtr(`op="decr",outcome="hit"`, func(sn *kv.StatsSnapshot) int64 { return sn.DecrHits })
	snapCtr(`op="decr",outcome="miss"`, func(sn *kv.StatsSnapshot) int64 { return sn.DecrMisses })
	snapCtr(`op="touch",outcome="hit"`, func(sn *kv.StatsSnapshot) int64 { return sn.TouchHits })
	snapCtr(`op="touch",outcome="miss"`, func(sn *kv.StatsSnapshot) int64 { return sn.TouchMisses })

	// Item lifecycle pressure.
	r.CounterFunc("alaskad_evictions_total", "Live entries evicted under memory pressure.",
		func() float64 { return float64(st.snap.Evictions) })
	r.CounterFunc("alaskad_evicted_unfetched_total", "Evicted entries never fetched after storing.",
		func() float64 { return float64(st.snap.EvictedUnfetched) })
	r.CounterFunc("alaskad_expired_total", "Entries reclaimed past their deadline.",
		func() float64 { return float64(st.snap.Expired) })
	r.CounterFunc("alaskad_reclaimed_total", "Dead entries removed by the eviction walk.",
		func() float64 { return float64(st.snap.Reclaimed) })
	r.CounterFunc("alaskad_expiry_sweeps_total", "Maintenance expiry-sweep rounds.",
		func() float64 { return float64(st.snap.ExpirySweeps) })

	// Memory gauges. RSS/fragmentation are the maintenance-tick samples,
	// so a scrape storm cannot add store traffic.
	r.GaugeFunc("alaskad_items", "Live items.",
		func() float64 { return float64(st.snap.Keys) })
	r.GaugeFunc("alaskad_item_bytes", "Charged item bytes (value + key + overhead).",
		func() float64 { return float64(st.snap.Bytes) })
	r.GaugeFunc("alaskad_limit_bytes", "Configured memory ceiling (0 = unlimited).",
		func() float64 { return float64(st.snap.LimitMaxbytes) })
	r.GaugeFunc("alaskad_used_bytes", "Allocator-level live bytes.",
		func() float64 { return float64(st.snap.Used) })
	r.GaugeFunc("alaskad_rss_bytes", "Sampled resident set of the value heap.",
		func() float64 { return float64(s.sampledRSS.Load()) })
	r.GaugeFunc("alaskad_heap_fragmentation", "Sampled heap fragmentation ratio.",
		func() float64 { return sampledFloat(&s.sampledFrag) })

	// Connection plane.
	r.GaugeFunc("alaskad_connections", "Currently open client connections.",
		func() float64 { return float64(s.currConns.Load()) })
	r.CounterFunc("alaskad_connections_total", "Client connections ever accepted.",
		func() float64 { return float64(s.totalConns.Load()) })
	r.CounterFunc("alaskad_listen_disabled_total", "Accepts deferred at the -max-conns cap.",
		func() float64 { return float64(s.listenDisabled.Load()) })
	r.CounterFunc("alaskad_accept_errors_total", "Transient accept failures.",
		func() float64 { return float64(s.acceptErrors.Load()) })
	r.CounterFunc("alaskad_idle_kicks_total", "Connections reaped for idling past -idle-timeout.",
		func() float64 { return float64(s.idleKicks.Load()) })
	r.CounterFunc("alaskad_slow_client_kicks_total", "Connections dropped for not draining replies.",
		func() float64 { return float64(s.slowKicks.Load()) })
	r.CounterFunc("alaskad_protocol_errors_total", "Commands answered with a protocol error.",
		func() float64 { return float64(s.protocolErrors.Load()) })
	r.CounterFunc("alaskad_slow_ops_total", "Commands slower than -slow-op-threshold.",
		func() float64 { return float64(s.slowOpTotal()) })
	r.GaugeFunc("alaskad_conns_parked", "Connections parked in the readiness poller (event model).",
		func() float64 { parked, _, _ := s.pollerGauges(); return float64(parked) })
	r.GaugeFunc("alaskad_conns_active", "Connections queued for or running on a worker (event model).",
		func() float64 { _, active, _ := s.pollerGauges(); return float64(active) })
	r.GaugeFunc("alaskad_worker_queue_depth", "Ready connections awaiting a free worker (event model).",
		func() float64 { _, _, queued := s.pollerGauges(); return float64(queued) })

	// Defragmentation / runtime telemetry (meaningful on the Anchorage
	// backend; the histograms exist — empty — on every backend so
	// dashboards need no backend-conditional queries).
	r.Histogram("alaskad_defrag_pass_duration_seconds",
		"Duration of pause-free concurrent defrag passes.", s.passLat)
	r.Histogram("alaskad_defrag_pause_seconds",
		"Stop-the-world pause per maintenance barrier pass.", s.pauseLat)
	r.Histogram("alaskad_safepoint_wait_seconds",
		"Barrier initiator wait for safepoint rendezvous.", s.safepointLat)
	r.CounterFunc("alaskad_defrag_drained_bytes_total",
		"Vacated bytes returned after their grace period.",
		func() float64 { return float64(s.drainedBytes.Load()) })
	if s.anch != nil {
		defragCtr := func(name, help string, get func() int64) {
			r.CounterFunc(name, help, func() float64 { return float64(get()) })
		}
		defragCtr("alaskad_defrag_concurrent_passes_total",
			"Pause-free concurrent defrag passes run.",
			func() int64 { return int64(s.anch.Svc.MetricsSnapshot().ConcurrentPasses) })
		defragCtr("alaskad_defrag_barrier_passes_total",
			"Stop-the-world defrag barrier passes run.",
			func() int64 { return int64(s.anch.Svc.MetricsSnapshot().Passes) })
		defragCtr("alaskad_defrag_moved_bytes_total",
			"Object bytes relocated by defragmentation.",
			func() int64 { return int64(s.anch.Svc.MetricsSnapshot().MovedBytes) })
		defragCtr("alaskad_defrag_move_aborts_total",
			"Speculative moves aborted by a racing pin or write.",
			func() int64 { return int64(s.anch.Svc.MetricsSnapshot().MoveAborts) })
		defragCtr("alaskad_defrag_truncated_bytes_total",
			"Sub-heap tail bytes returned to the OS.",
			func() int64 { return int64(s.anch.Svc.MetricsSnapshot().Truncated) })
	}

	// Persistence (pack log). The counter closures read the same atomics
	// the writer goroutine bumps; the fsync histogram is the recorder the
	// writer records into — a scrape costs no I/O and takes no locks the
	// append path contends on.
	if w := s.cfg.WAL; w != nil {
		walCtr := func(name, help string, get func(wal.Stats) int64) {
			r.CounterFunc(name, help, func() float64 { return float64(get(w.Stats())) })
		}
		walCtr("alaskad_wal_appended_records_total", "Records appended to the pack-log ring.",
			func(ws wal.Stats) int64 { return ws.AppendedRecords })
		walCtr("alaskad_wal_appended_bytes_total", "Framed record bytes appended to the ring.",
			func(ws wal.Stats) int64 { return ws.AppendedBytes })
		walCtr("alaskad_wal_dropped_records_total", "Records dropped because the ring was full (forces compaction).",
			func(ws wal.Stats) int64 { return ws.DroppedRecords })
		walCtr("alaskad_wal_fsyncs_total", "Batch fsyncs completed by the writer goroutine.",
			func(ws wal.Stats) int64 { return ws.Fsyncs })
		walCtr("alaskad_wal_io_errors_total", "Append/fsync/compaction I/O failures.",
			func(ws wal.Stats) int64 { return ws.IOErrors })
		walCtr("alaskad_wal_compactions_total", "Live-set compactions completed.",
			func(ws wal.Stats) int64 { return ws.Compactions })
		walCtr("alaskad_wal_replay_records_total", "Records applied by the boot-time replay.",
			func(ws wal.Stats) int64 { return ws.Replay.Records })
		walCtr("alaskad_wal_replay_torn_records_total", "Torn-tail records truncated at replay.",
			func(ws wal.Stats) int64 { return ws.Replay.TornRecords })
		walCtr("alaskad_wal_replay_crc_errors_total", "Records rejected by CRC/frame validation at replay.",
			func(ws wal.Stats) int64 { return ws.Replay.CrcErrors })
		walCtr("alaskad_wal_audit_errors_total", "Invalid records found by the background CRC audit.",
			func(ws wal.Stats) int64 { return ws.AuditErrors })
		walCtr("alaskad_wal_dropped_degraded_total", "Records dropped because the log was degraded (disk refusing writes).",
			func(ws wal.Stats) int64 { return ws.DroppedDegraded })
		walCtr("alaskad_wal_degraded_entries_total", "Transitions into degraded mode.",
			func(ws wal.Stats) int64 { return ws.DegradedEntries })
		walCtr("alaskad_wal_recoveries_total", "Recoveries from degraded back to healthy.",
			func(ws wal.Stats) int64 { return ws.Recoveries })
		r.GaugeFunc("alaskad_wal_degraded", "1 while the pack log is degraded (appends not persisted), else 0.",
			func() float64 {
				if w.Degraded() {
					return 1
				}
				return 0
			})
		r.GaugeFunc("alaskad_wal_disk_bytes", "Total on-disk pack-log bytes (active + sealed segments).",
			func() float64 { return float64(w.Stats().DiskBytes) })
		r.GaugeFunc("alaskad_wal_segments", "Pack-log segment files on disk.",
			func() float64 { return float64(w.Stats().Segments) })
		r.Histogram("alaskad_wal_fsync_seconds",
			"Duration of pack-log batch fsyncs.", w.FsyncLatency())
	}
	return st
}
