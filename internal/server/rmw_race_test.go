package server

// Race-hardened RMW tests: the read-modify-write commands are exactly
// the operations a concurrent mover can corrupt — they read a block,
// compute, and write back while ConcurrentDefragPass relocates it. These
// tests hammer incr and cas over real loopback sockets while both
// defrag mechanisms run, and assert *exact* arithmetic: a single lost or
// doubled update fails the test. Run under `go test -race -short`.

import (
	"bytes"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/rt"
)

// startDefragStressServer boots an anchorage server tuned so both the
// barrier control loop and the pause-free concurrent pass run nearly
// continuously under traffic.
func startDefragStressServer(t *testing.T) *Server {
	t.Helper()
	acfg := anchorage.DefaultConfig()
	acfg.SubHeapSize = 256 * 1024
	acfg.FragHigh = 1.2
	acfg.FragLow = 1.1
	acfg.WakeInterval = 5 * time.Millisecond
	backend, err := kv.NewAnchorageBackend(acfg, rt.WithPinMode(rt.CountedPins))
	if err != nil {
		t.Fatal(err)
	}
	store := kv.NewShardedStore(backend, 8, 0)
	srv := New(store, Config{
		Addr:             "127.0.0.1:0",
		MaintainInterval: 2 * time.Millisecond,
		DefragFragHigh:   1.1,
		DefragBudget:     256 * 1024,
	})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { _ = srv.Shutdown(5 * time.Second) })
	return srv
}

// churn runs jittered sets on its own key range until stop closes,
// fragmenting the heap so the defrag machinery has continuous work.
func churn(t *testing.T, addr string, id int, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	cl, err := Dial(addr)
	if err != nil {
		t.Error(err)
		return
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(int64(id)))
	for op := 0; ; op++ {
		select {
		case <-stop:
			return
		default:
		}
		key := "churn" + strconv.Itoa(id) + "-" + strconv.Itoa(rng.Intn(64))
		val := bytes.Repeat([]byte{byte(op)}, 32+rng.Intn(993))
		if err := cl.Set(key, 0, val); err != nil {
			t.Errorf("churn %d: %v", id, err)
			return
		}
	}
}

// TestConcurrentIncrUnderDefragRace: N goroutines incr one counter over
// real sockets while barrier and concurrent defrag passes run; the final
// value must equal exactly the number of successful replies — ≥100
// pause-free passes must relocate under the arithmetic without losing a
// single update.
func TestConcurrentIncrUnderDefragRace(t *testing.T) {
	srv := startDefragStressServer(t)

	setup, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Set("ctr", 0, []byte("0")); err != nil {
		t.Fatal(err)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const passTarget = 100
	stop := make(chan struct{})
	var stopOnce sync.Once

	// Monitor: end the run once enough pause-free passes have landed (or
	// a generous cap elapses — the pass count is asserted below either
	// way).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(30 * time.Second)
		for {
			time.Sleep(50 * time.Millisecond)
			st, err := setup.Stats()
			if err != nil {
				t.Error(err)
				stopOnce.Do(func() { close(stop) })
				return
			}
			passes, _ := strconv.Atoi(st["defrag_concurrent_passes"])
			if passes >= passTarget || time.Now().After(deadline) {
				stopOnce.Do(func() { close(stop) })
				return
			}
		}
	}()

	// Churn workers keep the heap fragmenting so passes have work.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go churn(t, srv.Addr(), c, stop, &wg)
	}

	// Incr workers: every successful (numeric) reply is one unit that
	// must survive into the final value.
	var succeeded atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, found, err := cl.Incr("ctr", 1); err != nil {
					t.Errorf("incr worker %d: %v", w, err)
					return
				} else if !found {
					t.Errorf("incr worker %d: counter vanished", w)
					return
				}
				succeeded.Add(1)
			}
		}(w)
	}
	wg.Wait()

	want := succeeded.Load()
	v, _, ok, err := setup.Get("ctr")
	if err != nil || !ok {
		t.Fatalf("final get: ok=%v err=%v", ok, err)
	}
	got, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		t.Fatalf("final counter %q is not numeric: %v", v, err)
	}
	if got != want {
		t.Errorf("counter = %d, want %d successful incrs (lost %d updates)", got, want, want-got)
	}

	st, err := setup.Stats()
	if err != nil {
		t.Fatal(err)
	}
	passes, _ := strconv.Atoi(st["defrag_concurrent_passes"])
	barriers, _ := strconv.Atoi(st["defrag_barrier_passes"])
	if passes < passTarget {
		t.Errorf("only %d concurrent defrag passes ran, want >= %d", passes, passTarget)
	}
	if st["protocol_errors"] != "0" {
		t.Errorf("protocol_errors = %s, want 0", st["protocol_errors"])
	}
	setup.Close()
	t.Logf("incr atomicity: %d incrs across %d workers, %d concurrent + %d barrier passes, moved=%s",
		want, workers, passes, barriers, st["defrag_moved_bytes"])
}

// TestCasContentionExactlyOneWinner: workers race gets+cas on one key;
// each generation of the value must admit exactly one STORED. The final
// counter equals the total number of STORED replies — a double-winner
// would fork a generation and leave the counter short.
func TestCasContentionExactlyOneWinner(t *testing.T) {
	srv := startDefragStressServer(t)

	setup, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if err := setup.Set("gen", 0, []byte("0")); err != nil {
		t.Fatal(err)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	attempts := 300
	if testing.Short() {
		attempts = 120
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Background churn keeps defrag busy during the contention loop.
	wg.Add(1)
	go churn(t, srv.Addr(), 99, stop, &wg)

	var stored atomic.Int64
	var cwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cwg.Add(1)
		go func(w int) {
			defer cwg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < attempts; i++ {
				v, _, casID, ok, err := cl.Gets("gen")
				if err != nil || !ok {
					t.Errorf("cas worker %d: gets: ok=%v err=%v", w, ok, err)
					return
				}
				n, err := strconv.ParseInt(string(v), 10, 64)
				if err != nil {
					t.Errorf("cas worker %d: value %q not numeric", w, v)
					return
				}
				status, err := cl.Cas("gen", 0, 0, casID, []byte(strconv.FormatInt(n+1, 10)))
				if err != nil {
					t.Errorf("cas worker %d: %v", w, err)
					return
				}
				switch status {
				case CasStored:
					stored.Add(1)
				case CasExists:
					// lost the race: retry next attempt from a fresh gets
				case CasNotFound:
					t.Errorf("cas worker %d: key vanished", w)
					return
				}
			}
		}(w)
	}
	cwg.Wait()
	close(stop)
	wg.Wait()

	v, _, ok, err := setup.Get("gen")
	if err != nil || !ok {
		t.Fatalf("final get: ok=%v err=%v", ok, err)
	}
	got, _ := strconv.ParseInt(string(v), 10, 64)
	if got != stored.Load() {
		t.Errorf("counter = %d, want %d STORED replies: some generation had 0 or 2 winners", got, stored.Load())
	}
	if stored.Load() == 0 {
		t.Error("no cas ever won")
	}
	t.Logf("cas contention: %d/%d attempts won across %d workers, final=%d",
		stored.Load(), int64(workers)*int64(attempts), workers, got)
}
