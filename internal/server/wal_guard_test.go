//go:build !race

package server

// Persistence alloc guards: attaching the pack log must not cost the
// request path a single allocation. These mirror the alloc_guard_test
// shapes with a live WAL — producer framing into the ring included —
// and with the writer goroutine running, so a batch flush landing
// mid-measurement would be caught too (the accounting is process-wide).

import (
	"bufio"
	"bytes"
	"io"
	"testing"
	"time"

	"alaska/internal/kv"
	"alaska/internal/wal"
)

// guardHandlerWAL is guardHandler with a started, store-attached pack
// log. The audit is disabled (its scan buffers would show up in the
// process-wide numbers); the writer runs on a short interval so fsync
// batches interleave with the measurement.
func guardHandlerWAL(t *testing.T) (*connHandler, *bytes.Reader) {
	t.Helper()
	wlog, err := wal.Open(wal.Options{
		Dir:           t.TempDir(),
		FsyncInterval: 5 * time.Millisecond,
		AuditInterval: -1,
	})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	store := kv.NewShardedStore(kv.NewMallocBackend(), 8, 0)
	if err := wlog.Start(store); err != nil {
		t.Fatalf("wal start: %v", err)
	}
	store.SetMutationLog(wlog)
	t.Cleanup(func() { _ = wlog.Close() })
	srv := New(store, Config{Version: "guard", MaxReplyBacklog: -1, WAL: wlog})
	src := bytes.NewReader(nil)
	h := &connHandler{
		srv:  srv,
		c:    &conn{clock: srv.cfg.Clock},
		sess: store.NewSession(),
		r:    bufio.NewReaderSize(src, 16<<10),
		w:    bufio.NewWriterSize(io.Discard, 64<<10),
	}
	return h, src
}

// warmWAL runs the mutation through once and sleeps past a flush window
// so the writer's one-time drain buffer is allocated before measuring.
func warmWAL(t *testing.T, h *connHandler, src *bytes.Reader, reqs ...[]byte) {
	t.Helper()
	for i := 0; i < 8; i++ {
		for _, req := range reqs {
			runCommand(t, h, src, req)
		}
	}
	time.Sleep(25 * time.Millisecond)
}

func TestAllocFreeSetWithPersistence(t *testing.T) {
	h, src := guardHandlerWAL(t)
	set := []byte("set bench:key 7 0 512\r\n" + string(bytes.Repeat([]byte{'v'}, 512)) + "\r\n")
	warmWAL(t, h, src, set)
	avg := testing.AllocsPerRun(200, func() {
		runCommand(t, h, src, set)
	})
	if avg != 0 {
		t.Fatalf("SET with -persist allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

func TestAllocFreeGetHitWithPersistence(t *testing.T) {
	h, src := guardHandlerWAL(t)
	set := []byte("set bench:key 7 0 512\r\n" + string(bytes.Repeat([]byte{'v'}, 512)) + "\r\n")
	get := []byte("get bench:key\r\n")
	runCommand(t, h, src, set)
	warmWAL(t, h, src, get)
	avg := testing.AllocsPerRun(200, func() {
		runCommand(t, h, src, get)
	})
	if avg != 0 {
		t.Fatalf("GET hit with -persist allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestAllocFreePipelinedMixedWithPersistence covers the full logged
// surface in one batch: set (LogSet), touch (LogTouch), delete
// (LogDelete), plus reads that must not log at all.
func TestAllocFreePipelinedMixedWithPersistence(t *testing.T) {
	h, src := guardHandlerWAL(t)
	val := string(bytes.Repeat([]byte{'x'}, 64))
	batch := []byte(
		"set a 1 0 64\r\n" + val + "\r\n" +
			"set b 2 0 64\r\n" + val + "\r\n" +
			"touch a 3600\r\n" +
			"get a b\r\n" +
			"delete b\r\n")
	runBatch := func() {
		src.Reset(batch)
		h.r.Reset(src)
		for cmds := 0; cmds < 5; cmds++ {
			line, err := h.readLine()
			if err != nil {
				t.Fatalf("readLine: %v", err)
			}
			if _, err := h.dispatch(line); err != nil {
				t.Fatalf("dispatch: %v", err)
			}
		}
		h.w.Reset(io.Discard)
		h.backlog = 0
	}
	for i := 0; i < 8; i++ {
		runBatch()
	}
	time.Sleep(25 * time.Millisecond)
	avg := testing.AllocsPerRun(100, runBatch)
	if avg != 0 {
		t.Fatalf("pipelined mixed batch with -persist allocates %.2f allocs/batch, want 0", avg)
	}
}
