package server

// Loopback hot-path benchmarks: GET hits, SET steady state, and
// pipelined GET bursts over a real TCP connection on the malloc backend
// (so the numbers isolate the request path from defrag machinery). All
// benchmarks ReportAllocs — together with the AllocsPerRun guards in
// alloc_guard_test.go these are the tracked evidence that the request
// path stays allocation-free per op. cmd/alaskad-bench re-runs the same
// shapes and emits BENCH_alaskad.json for the recorded trajectory.

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"alaska/internal/kv"
)

// benchServer boots a malloc-backed loopback server tuned for
// measurement: maintenance slowed to a crawl so the background goroutine
// doesn't perturb per-op numbers.
func benchServer(b *testing.B) *Server {
	b.Helper()
	store := kv.NewShardedStore(kv.NewMallocBackend(), 8, 0)
	srv := New(store, Config{
		Addr:             "127.0.0.1:0",
		Version:          "bench",
		MaintainInterval: time.Hour,
	})
	if err := srv.Listen(); err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	b.Cleanup(func() { _ = srv.Shutdown(2 * time.Second) })
	return srv
}

func benchValue(n int) []byte {
	val := make([]byte, n)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	return val
}

func BenchmarkLoopbackGetHit(b *testing.B) {
	srv := benchServer(b)
	cl, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	val := benchValue(512)
	if err := cl.Set("bench:key", 7, val); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, ok, err := cl.Get("bench:key")
		if err != nil {
			b.Fatal(err)
		}
		if !ok || len(v) != len(val) {
			b.Fatalf("get: ok=%v len=%d", ok, len(v))
		}
	}
}

func BenchmarkLoopbackSet(b *testing.B) {
	srv := benchServer(b)
	cl, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	val := benchValue(512)
	b.ReportAllocs()
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Set("bench:key", 7, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopbackGetPipelined issues bursts of 32 pipelined gets per
// round trip — the framing the server answers with one flush, and the
// shape where per-op allocation hurts most (no socket wait to hide it).
func BenchmarkLoopbackGetPipelined(b *testing.B) {
	const burst = 32
	srv := benchServer(b)
	cl, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	val := benchValue(512)
	if err := cl.Set("bench:key", 7, val); err != nil {
		b.Fatal(err)
	}
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReaderSize(c, 64<<10)
	w := bufio.NewWriterSize(c, 64<<10)
	req := bytes.Repeat([]byte("get bench:key\r\n"), burst)
	// One response: VALUE header + 512 bytes + CRLF + END.
	respLen := len(fmt.Sprintf("VALUE bench:key 7 %d\r\n", len(val))) + len(val) + 2 + len("END\r\n")
	resp := make([]byte, respLen*burst)
	b.ReportAllocs()
	b.SetBytes(int64(len(val) * burst))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Write(req); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		for off := 0; off < len(resp); {
			n, err := r.Read(resp[off:])
			if err != nil {
				b.Fatal(err)
			}
			off += n
		}
	}
	b.StopTimer()
	if !bytes.HasSuffix(resp, []byte("END\r\n")) {
		b.Fatalf("unexpected trailing response: %q", resp[len(resp)-32:])
	}
}

// BenchmarkLoopbackSetGet alternates SET and GET on one key — the
// steady-state overwrite cycle whose kv-side entry churn the in-place
// update path is meant to eliminate.
func BenchmarkLoopbackSetGet(b *testing.B) {
	srv := benchServer(b)
	cl, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	val := benchValue(512)
	if err := cl.Set("bench:key", 7, val); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(2 * len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Set("bench:key", 7, val); err != nil {
			b.Fatal(err)
		}
		if _, _, ok, err := cl.Get("bench:key"); err != nil || !ok {
			b.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
}
