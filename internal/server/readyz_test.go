package server

// Readiness-plane tests: /readyz must track the boot sequence
// (booting → replaying → ok) and flip to 503 degraded — then back —
// when the WAL loses and regains its disk. /healthz stays a bare
// liveness "ok" throughout; the split is the contract load balancers
// rely on.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"alaska/internal/fault"
	"alaska/internal/health"
	"alaska/internal/kv"
	"alaska/internal/wal"
)

// readyzGet fetches /readyz and returns (status code, body).
func readyzGet(t *testing.T, adminAddr string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + adminAddr + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

func TestReadyzBootPhases(t *testing.T) {
	reg := health.New() // Booting
	store := kv.NewShardedStore(kv.NewMallocBackend(), 4, 0)
	srv := New(store, Config{Addr: "127.0.0.1:0", Version: "readyz-test", Health: reg})
	if err := srv.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve() }()
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("admin listen: %v", err)
	}
	srv.AttachAdmin(aln)
	defer srv.Shutdown(time.Second)
	addr := aln.Addr().String()

	if code, body := readyzGet(t, addr); code != http.StatusServiceUnavailable || !strings.HasPrefix(body, "booting") {
		t.Fatalf("booting phase: readyz = %d %q, want 503 booting", code, body)
	}
	reg.StartReplay()
	if code, body := readyzGet(t, addr); code != http.StatusServiceUnavailable || !strings.HasPrefix(body, "replaying") {
		t.Fatalf("replay phase: readyz = %d %q, want 503 replaying", code, body)
	}
	reg.Ready()
	if code, body := readyzGet(t, addr); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("ready: readyz = %d %q, want 200 ok", code, body)
	}

	// Liveness never wavered.
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 regardless of readiness", resp.StatusCode)
	}
}

// TestReadyzFlipsDegradedAndBack runs the whole loop an operator would
// see: scripted sticky fsync failures push the WAL into degraded,
// /readyz answers 503 with a "wal: degraded" detail line, the fault
// clears, the recovery probe lands, and /readyz returns to 200 ok.
func TestReadyzFlipsDegradedAndBack(t *testing.T) {
	rules, err := fault.ParseScript("sync:after=1:sticky:err=eio")
	if err != nil {
		t.Fatalf("parse script: %v", err)
	}
	fs := fault.NewScriptFS(nil, rules...)
	wlog, err := wal.Open(wal.Options{
		Dir:           t.TempDir(),
		FsyncInterval: 2 * time.Millisecond,
		AuditInterval: -1,
		DegradeAfter:  2,
		ProbeInterval: 5 * time.Millisecond,
		FS:            fs,
	})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	store := kv.NewShardedStore(kv.NewMallocBackend(), 4, 0)
	if err := wlog.Start(store); err != nil {
		t.Fatalf("wal start: %v", err)
	}
	store.SetMutationLog(wlog)
	srv := New(store, Config{Addr: "127.0.0.1:0", Version: "readyz-test", WAL: wlog})
	if err := srv.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve() }()
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("admin listen: %v", err)
	}
	srv.AttachAdmin(aln)
	defer srv.Shutdown(time.Second)
	addr := aln.Addr().String()

	// Healthy WAL: ready, with a per-subsystem detail line.
	if code, body := readyzGet(t, addr); code != http.StatusOK || !strings.Contains(body, "wal: ok") {
		t.Fatalf("healthy: readyz = %d %q, want 200 with wal: ok", code, body)
	}

	// Drive sets through the data plane until the sticky fsync failures
	// burn the degradation budget.
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; !wlog.Degraded(); i++ {
		if time.Now().After(deadline) {
			t.Fatal("WAL never degraded under sticky fsync faults")
		}
		if err := cl.Set(fmt.Sprintf("k%04d", i), 0, []byte("v")); err != nil {
			t.Fatalf("set: %v", err)
		}
		time.Sleep(time.Millisecond)
	}

	code, body := readyzGet(t, addr)
	if code != http.StatusServiceUnavailable || !strings.HasPrefix(body, "degraded") || !strings.Contains(body, "wal: degraded") {
		t.Fatalf("degraded: readyz = %d %q, want 503 degraded with wal detail", code, body)
	}

	// Disk comes back: the probe opens a fresh segment and readiness
	// recovers without a restart.
	fs.Clear()
	for deadline = time.Now().Add(5 * time.Second); wlog.Degraded(); {
		if time.Now().After(deadline) {
			t.Fatal("WAL never recovered after faults cleared")
		}
		time.Sleep(time.Millisecond)
	}
	if code, body := readyzGet(t, addr); code != http.StatusOK || !strings.Contains(body, "wal: ok") {
		t.Fatalf("recovered: readyz = %d %q, want 200 with wal: ok", code, body)
	}
	ws := wlog.Stats()
	if ws.DegradedEntries < 1 || ws.Recoveries < 1 {
		t.Fatalf("stats: degraded_entries=%d recoveries=%d, want ≥1 each", ws.DegradedEntries, ws.Recoveries)
	}
}
