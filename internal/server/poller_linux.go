//go:build linux

package server

// The Linux readiness poller: a raw-syscall epoll shim (the module is
// dependency-free, so no golang.org/x/sys — the stdlib syscall package
// provides everything epoll needs) plus the fixed worker pool that
// serves ready connections.
//
// Ownership protocol (see pollConn.sched in event.go): the accepted
// socket's fd is dup'd out of the Go runtime's netpoller and registered
// edge-triggered, armed once at registration — readiness edges hand the
// connection to the run queue via wake(), and edges arriving while an
// owner holds it are absorbed into the rewake flag, so no wakeup is
// ever lost and the steady-state burst needs zero epoll syscalls (the
// interest mask only changes — one EPOLL_CTL_MOD — when a park must
// also watch writability). The ET contract is upheld structurally: the
// burst loop reads until EAGAIN before parking, and tryFlush writevs
// until EAGAIN. All fd syscalls — read, writev, EPOLL_CTL_MOD/DEL,
// close — happen only while holding the sched token; the polling
// leader and the maintenance sweep communicate through claim()/wake()
// and the killed flag, never by touching the fd. Stale events after an
// fd is closed and reused are dropped by the per-slot generation
// counter carried in EpollEvent.Pad.

import (
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

const (
	epollIn    = uint32(syscall.EPOLLIN)
	epollOut   = uint32(syscall.EPOLLOUT)
	epollRDHup = uint32(syscall.EPOLLRDHUP)
	// syscall.EPOLLET is a negative untyped constant; spell the bit out.
	epollET = uint32(1) << 31
)

// fdSlot maps an fd to its live pollConn. Entries are allocated once
// and never replaced, so a reader may hold the *fdSlot across the
// RWMutex that only guards growth of the table itself.
type fdSlot struct {
	pc  atomic.Pointer[pollConn]
	gen atomic.Uint32
}

type epollPoller struct {
	srv  *Server
	epfd int
	// The epoll fd wrapped as a pollable file and registered with the
	// Go runtime's netpoller (nested epoll — an epoll fd reports
	// readable while its ready list is non-empty). The polling leader
	// parks on epWait.Read instead of a blocking raw epoll_wait: a raw
	// blocking syscall holds its P hostage until sysmon retakes it
	// (hundreds of µs of added latency at GOMAXPROCS=1), while a
	// netpoller park releases the P through the scheduler like any
	// blocked goroutine. Events are then reaped with epoll_wait(0).
	epFile *os.File
	epWait syscall.RawConn
	// Self-pipe for waking the polling leader at shutdown.
	wakeR, wakeW int
	stopFlag     atomic.Bool

	mu       sync.Mutex
	cond     *sync.Cond
	runq     []*pollConn
	runqHead int
	stopped  bool
	// polling marks that one worker (the leader) is parked in
	// epoll_wait; other idle workers follow on the cond instead of
	// stacking up in the kernel.
	polling bool

	slotMu sync.RWMutex
	slots  []*fdSlot

	parked atomic.Int64
	live   atomic.Int64
	active atomic.Int64
	bursts atomic.Int64

	startOnce sync.Once
	wg        sync.WaitGroup
}

// newPoller builds the epoll instance and wake pipe; workers start in
// start() (from Serve), so a Server that never serves starts nothing.
func newPoller(s *Server) (connPoller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pipeFds [2]int
	if err := syscall.Pipe2(pipeFds[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		_ = syscall.Close(epfd)
		return nil, err
	}
	p := &epollPoller{srv: s, epfd: epfd, wakeR: pipeFds[0], wakeW: pipeFds[1]}
	p.cond = sync.NewCond(&p.mu)
	// The wake pipe is identified by gen 0 (connection gens start at 1).
	ev := syscall.EpollEvent{Events: epollIn, Fd: int32(p.wakeR), Pad: 0}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p.wakeR, &ev); err != nil {
		_ = syscall.Close(epfd)
		_ = syscall.Close(pipeFds[0])
		_ = syscall.Close(pipeFds[1])
		return nil, err
	}
	// Hand the epoll fd to the runtime netpoller. The O_NONBLOCK flag is
	// meaningless to epoll itself but tells os.NewFile to register the
	// fd for polling; epFile owns epfd from here (closed in stop).
	_ = syscall.SetNonblock(epfd, true)
	p.epFile = os.NewFile(uintptr(epfd), "epoll")
	rc, err := p.epFile.SyscallConn()
	if err != nil {
		_ = p.epFile.Close()
		_ = syscall.Close(pipeFds[0])
		_ = syscall.Close(pipeFds[1])
		return nil, err
	}
	p.epWait = rc
	return p, nil
}

func (p *epollPoller) start() {
	p.startOnce.Do(func() {
		for i := 0; i < p.srv.cfg.Workers; i++ {
			p.wg.Add(1)
			go p.worker()
		}
	})
}

// slot returns fd's slot, nil when the table never grew that far.
func (p *epollPoller) slot(fd int) *fdSlot {
	p.slotMu.RLock()
	var s *fdSlot
	if fd >= 0 && fd < len(p.slots) {
		s = p.slots[fd]
	}
	p.slotMu.RUnlock()
	return s
}

// slotFor returns fd's slot, growing the table as needed. Every entry
// of a published table is non-nil and the backing array is never
// written again after publication — growth copies into a fresh array
// and pre-fills the new tail — so sweep/killAll may walk a snapshot
// taken under RLock without holding the lock.
func (p *epollPoller) slotFor(fd int) *fdSlot {
	if s := p.slot(fd); s != nil {
		return s
	}
	p.slotMu.Lock()
	if fd >= len(p.slots) {
		grown := make([]*fdSlot, fd+64)
		n := copy(grown, p.slots)
		for i := n; i < len(grown); i++ {
			grown[i] = &fdSlot{}
		}
		p.slots = grown
	}
	s := p.slots[fd]
	p.slotMu.Unlock()
	return s
}

func dupCloexec(fd int) (int, error) {
	nfd, _, errno := syscall.Syscall(syscall.SYS_FCNTL, uintptr(fd), syscall.F_DUPFD_CLOEXEC, 0)
	if errno != 0 {
		return -1, errno
	}
	return int(nfd), nil
}

// register dups the accepted socket's fd out of the runtime netpoller,
// parks it in epoll, and closes the original net.Conn. On any error the
// original connection is untouched and the caller falls back to the
// goroutine model.
func (p *epollPoller) register(nc net.Conn, id uint64) error {
	sc, ok := nc.(syscall.Conn)
	if !ok {
		return syscall.ENOTSUP
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return err
	}
	fd := -1
	var derr error
	if cerr := rc.Control(func(ufd uintptr) { fd, derr = dupCloexec(int(ufd)) }); cerr != nil {
		return cerr
	}
	if derr != nil {
		return derr
	}
	// Go sockets are already O_NONBLOCK (the flag rides the shared file
	// description); assert it anyway for listeners that aren't.
	_ = syscall.SetNonblock(fd, true)
	pc := &pollConn{fd: fd, id: id}
	pc.touch(p.srv.cfg.Clock().UnixNano())
	// Hold the sched token through registration so a racing sweep or
	// shutdown can't close the fd mid-arm; release() below parks it.
	pc.sched.Store(schedScheduled)
	slot := p.slotFor(fd)
	gen := slot.gen.Add(1)
	if gen == 0 {
		gen = slot.gen.Add(1) // 0 is the wake-pipe sentinel
	}
	pc.gen = gen
	slot.pc.Store(pc)
	p.live.Add(1)
	// Edge-triggered, armed once: readable edges (and a possible
	// already-readable edge delivered at ADD) drive the connection's
	// whole lifetime with no per-burst re-arm. EPOLLOUT joins the mask
	// only while replies are backed up.
	pc.armed = epollIn | epollRDHup | epollET
	ev := syscall.EpollEvent{
		Events: pc.armed,
		Fd:     int32(fd),
		Pad:    int32(gen),
	}
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		slot.pc.CompareAndSwap(pc, nil)
		p.live.Add(-1)
		_ = syscall.Close(fd)
		return err
	}
	_ = nc.Close() // our dup keeps the socket's file description alive
	p.release(pc)
	return nil
}

// claim moves a ready connection parked→scheduled, or flags a rewake if
// an owner already holds it. Lost-wakeup-free: arm-then-release parking
// (release below) rechecks the rewake flag after every failed CAS. True
// only when this call took the sched token — the caller must then serve
// or enqueue the connection.
func (p *epollPoller) claim(pc *pollConn) bool {
	for {
		switch pc.sched.Load() {
		case schedParked:
			if pc.sched.CompareAndSwap(schedParked, schedScheduled) {
				p.parked.Add(-1)
				return true
			}
		case schedScheduled:
			if pc.sched.CompareAndSwap(schedScheduled, schedRewake) {
				return false
			}
		default:
			return false // already rewake-flagged
		}
	}
}

// wake claims a ready connection and hands it to the run queue.
func (p *epollPoller) wake(pc *pollConn) {
	if p.claim(pc) {
		p.enqueue(pc)
	}
}

func (p *epollPoller) enqueue(pc *pollConn) {
	p.mu.Lock()
	p.runq = append(p.runq, pc)
	p.mu.Unlock()
	p.cond.Signal()
}

// next blocks for the next ready connection; nil means the poller is
// stopping. Callers wrap it in the session's idle state so waiting
// workers never delay a defrag barrier.
//
// There is no dedicated poll thread: idle workers run a leader/follower
// rotation. One worker at a time (the leader) parks in epoll_wait and
// claims the first connection it wakes for itself, so the common path
// from kernel readiness to burst runs on a single thread with no
// handoff; surplus events are enqueued and followers signalled. A
// worker leaving with work signals a follower into the vacant poll
// seat, so whenever any worker is idle, someone is watching the epoll
// fd. Events that fire while every worker is mid-burst simply pend in
// the kernel until the next worker comes back around.
func (p *epollPoller) next(r *epollReaper) *pollConn {
	p.mu.Lock()
	for {
		if p.runqHead < len(p.runq) {
			pc := p.runq[p.runqHead]
			p.runq[p.runqHead] = nil
			p.runqHead++
			if p.runqHead == len(p.runq) {
				p.runq = p.runq[:0]
				p.runqHead = 0
			}
			if !p.polling {
				p.cond.Signal() // hand the poll seat to an idle follower
			}
			p.mu.Unlock()
			return pc
		}
		if p.stopped {
			p.mu.Unlock()
			return nil
		}
		if !p.polling {
			p.polling = true
			p.mu.Unlock()
			direct, ok := p.pollOnce(r)
			p.mu.Lock()
			p.polling = false
			if !ok {
				// Shutdown (or a dead epoll fd): cascade the exit so no
				// follower is left waiting on a seat nobody fills.
				p.cond.Broadcast()
				p.mu.Unlock()
				return nil
			}
			if direct != nil {
				p.cond.Signal()
				p.mu.Unlock()
				return direct
			}
			continue
		}
		p.cond.Wait()
	}
}

// release gives up the sched token after (re-)arming epoll: park if
// nothing happened meanwhile, requeue on a rewake, close on a kill. The
// post-park killed recheck closes the race where a sweeper sets killed
// between our check and the CAS to parked.
func (p *epollPoller) release(pc *pollConn) {
	for {
		if pc.killed.Load() {
			p.closeConn(pc)
			return
		}
		if pc.sched.Load() == schedRewake {
			pc.sched.Store(schedScheduled)
			p.enqueue(pc)
			return
		}
		if pc.sched.CompareAndSwap(schedScheduled, schedParked) {
			p.parked.Add(1)
			if pc.killed.Load() && pc.sched.CompareAndSwap(schedParked, schedScheduled) {
				p.parked.Add(-1)
				p.closeConn(pc)
			}
			return
		}
	}
}

// closeConn tears a connection down. Caller must hold the sched token
// (worker, registering thread, or a sweeper that won the parked CAS);
// sched intentionally stays scheduled afterwards so late wakes are
// inert no-ops.
func (p *epollPoller) closeConn(pc *pollConn) {
	if slot := p.slot(pc.fd); slot != nil {
		slot.pc.CompareAndSwap(pc, nil)
	}
	_ = syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, pc.fd, nil)
	_ = syscall.Close(pc.fd)
	pc.inSpill, pc.outSpill = nil, nil
	p.live.Add(-1)
	s := p.srv
	s.currConns.Add(-1)
	if pc.slow.Load() {
		s.slowKicks.Add(1)
		s.cfg.Logger.Debugf("conn %d: kicked (slow client)", pc.id)
	} else {
		s.cfg.Logger.Debugf("conn %d: closed", pc.id)
	}
	s.releaseConnSlot()
}

// kill requests a close. Reports whether this call won the close intent
// (so each reap is counted exactly once); the close itself happens here
// if the connection was parked, or on its current owner's next check.
func (p *epollPoller) kill(pc *pollConn, slow bool) bool {
	if !pc.killed.CompareAndSwap(false, true) {
		return false
	}
	if slow {
		pc.slow.Store(true)
	}
	if pc.sched.CompareAndSwap(schedParked, schedScheduled) {
		p.parked.Add(-1)
		p.closeConn(pc)
	}
	return true
}

// pollOnce runs one epoll_wait batch as the leader: validate each event
// against the slot table's generation, claim the first ready connection
// directly for the calling worker (no queue round-trip), enqueue the
// rest. ok=false means shutdown was signalled (or the epoll fd died).
//
// The wait itself is delegated to the runtime netpoller via epWait: the
// reaper callback runs epoll_wait with a zero timeout and returns false
// to park the goroutine until the epoll fd signals readable.
// RawConn.Read always invokes the callback once before parking, so a
// backlog left by a previous full batch is drained without waiting for
// a new edge.
func (p *epollPoller) pollOnce(r *epollReaper) (direct *pollConn, ok bool) {
	for {
		err := p.epWait.Read(r.fn)
		if err != nil || r.n < 0 {
			return nil, false // epoll fd closed or dead: shutting down
		}
		n, evs := r.n, r.evs[:]
		for i := 0; i < n; i++ {
			fd := int(evs[i].Fd)
			if fd == p.wakeR && evs[i].Pad == 0 {
				if p.stopFlag.Load() {
					if direct != nil {
						p.enqueue(direct) // stop() drains the queue
					}
					return nil, false
				}
				var buf [64]byte
				_, _ = syscall.Read(p.wakeR, buf[:])
				continue
			}
			slot := p.slot(fd)
			if slot == nil {
				continue
			}
			pc := slot.pc.Load()
			if pc == nil || pc.gen != uint32(evs[i].Pad) {
				continue // stale event for a closed/reused fd
			}
			if direct == nil && p.claim(pc) {
				direct = pc
				continue
			}
			p.wake(pc)
		}
		if direct != nil || n > 0 {
			return direct, true
		}
	}
}

// worker serves ready connections with one persistent kv.Session and
// one reusable protocol engine. The session idles while the worker
// waits for work, so a defrag barrier only ever rendezvouses with
// workers mid-burst — a bounded set, however many connections park.
func (p *epollPoller) worker() {
	defer p.wg.Done()
	sess := p.srv.store.NewSession()
	defer sess.Close()
	h := &connHandler{srv: p.srv, sess: sess}
	e := &eventIO{h: h}
	h.ev = e
	r := newEpollReaper()
	for {
		sess.EnterIdle()
		pc := p.next(r)
		sess.ExitIdle()
		if pc == nil {
			return
		}
		p.active.Add(1)
		p.bursts.Add(1)
		p.serve(e, pc)
		p.active.Add(-1)
	}
}

// epollReaper is a worker's reusable epoll_wait(0) callback. The bound
// method value is built once so parking in the netpoller is
// allocation-free — a literal closure here would put one (plus its
// captures) on the heap for every burst.
type epollReaper struct {
	evs [128]syscall.EpollEvent
	n   int
	fn  func(uintptr) bool
}

func newEpollReaper() *epollReaper {
	r := &epollReaper{}
	r.fn = r.reap
	return r
}

func (r *epollReaper) reap(fd uintptr) bool {
	n, err := syscall.EpollWait(int(fd), r.evs[:], 0)
	if err == syscall.EINTR || (err == nil && n == 0) {
		return false // nothing ready: park in the netpoller
	}
	if err != nil {
		n = -1
	}
	r.n = n
	return true
}

type burstResult int

const (
	brClosed burstResult = iota
	brYield
	brPark      // wait for readability (plus writability if replies pend)
	brParkWrite // backpressured: wait for writability only
)

func (p *epollPoller) serve(e *eventIO, pc *pollConn) {
	if pc.killed.Load() {
		p.closeConn(pc)
		return
	}
	e.begin(pc)
	st := p.runBurst(e, pc)
	if st == brClosed {
		return
	}
	hasOut := e.pendingOut() > 0
	e.park()
	if st == brYield {
		if pc.sched.Load() == schedRewake {
			pc.sched.Store(schedScheduled)
		}
		p.enqueue(pc)
		return
	}
	events := epollRDHup | epollET
	if st == brParkWrite {
		events |= epollOut // backpressured: don't take input edges until drained
	} else {
		events |= epollIn
		if hasOut {
			events |= epollOut
		}
	}
	// Edge-triggered: the steady-state mask never changes, and an
	// unchanged registration needs no re-arm — future readiness
	// transitions still fire. When the mask does change, EPOLL_CTL_MOD
	// re-checks current readiness too, so a socket that became ready
	// while unwatched delivers its edge immediately.
	if events != pc.armed {
		ev := syscall.EpollEvent{Events: events, Fd: int32(pc.fd), Pad: int32(pc.gen)}
		if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, pc.fd, &ev); err != nil {
			pc.killed.Store(true)
			p.closeConn(pc)
			return
		}
		pc.armed = events
	}
	p.release(pc)
}

// runBurst drains buffered output, processes buffered commands, and
// reads more input until the socket would block, the burst budget is
// spent, or the connection ends.
func (p *epollPoller) runBurst(e *eventIO, pc *pollConn) burstResult {
	srv := p.srv
	cmds := 0
	for {
		if pc.killed.Load() {
			p.closeConn(pc)
			return brClosed
		}
		switch st := e.process(&cmds); st {
		case evQuit, evFatal:
			if st == evQuit {
				_ = e.tryFlush()
			}
			pc.killed.Store(true)
			p.closeConn(pc)
			return brClosed
		case evYield:
			if err := e.tryFlush(); err != nil {
				pc.killed.Store(true)
				p.closeConn(pc)
				return brClosed
			}
			return brYield
		case evBackpressure:
			return brParkWrite
		case evNeedInput:
			// Batch the pipelined burst's replies into one writev before
			// (possibly) blocking for more input.
			if err := e.tryFlush(); err != nil {
				pc.killed.Store(true)
				p.closeConn(pc)
				return brClosed
			}
			if cmds >= burstCmdBudget {
				return brYield // fairness: requeue before reading more
			}
			buf := e.readBuf()
			n, again, _ := readRawFd(pc.fd, buf)
			if n > 0 {
				e.extend(n)
				if srv.instr {
					srv.bytesRead.Add(int64(n))
				}
				continue
			}
			if again {
				return brPark
			}
			// EOF or hard error: flush what we can, then tear down.
			_ = e.tryFlush()
			pc.killed.Store(true)
			p.closeConn(pc)
			return brClosed
		}
	}
}

// sweep enforces IdleTimeout and WriteTimeout over the parked
// population, on the maintenance tick and the configured clock (so the
// mock-clock reaper tests drive it deterministically).
func (p *epollPoller) sweep() {
	srv := p.srv
	idle, wto := srv.cfg.IdleTimeout, srv.cfg.WriteTimeout
	if idle <= 0 && wto <= 0 {
		return
	}
	now := srv.cfg.Clock().UnixNano()
	p.slotMu.RLock()
	slots := p.slots
	p.slotMu.RUnlock()
	for _, slot := range slots {
		if slot == nil {
			continue
		}
		pc := slot.pc.Load()
		if pc == nil {
			continue
		}
		if idle > 0 && now-pc.lastActive.Load() > int64(idle) {
			if p.kill(pc, false) {
				srv.idleKicks.Add(1)
			}
			continue
		}
		if wto > 0 {
			if ws := pc.writeStall.Load(); ws != 0 && now-ws > int64(wto) {
				p.kill(pc, true) // slow_client_kicks counted at close
			}
		}
	}
}

func (p *epollPoller) killAll() {
	p.slotMu.RLock()
	slots := p.slots
	p.slotMu.RUnlock()
	for _, slot := range slots {
		if slot == nil {
			continue
		}
		if pc := slot.pc.Load(); pc != nil {
			p.kill(pc, false)
		}
	}
}

func (p *epollPoller) drained() bool { return p.live.Load() == 0 }

// stop shuts the worker pool and poll loop down. All connections must
// already be closed (killAll + drained); queued stragglers are still
// drained here so no fd leaks.
func (p *epollPoller) stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.stopFlag.Store(true)
	_, _ = syscall.Write(p.wakeW, []byte{1})
	p.wg.Wait()
	// Close any connections still sitting in the run queue (their owner
	// token is the queue itself; workers are gone).
	for _, pc := range p.runq[p.runqHead:] {
		if pc != nil {
			pc.killed.Store(true)
			p.closeConn(pc)
		}
	}
	_ = p.epFile.Close() // owns epfd
	_ = syscall.Close(p.wakeR)
	_ = syscall.Close(p.wakeW)
}

func (p *epollPoller) gauges() (parked, active, queued int64) {
	parked = p.parked.Load()
	active = p.live.Load() - parked
	p.mu.Lock()
	queued = int64(len(p.runq) - p.runqHead)
	p.mu.Unlock()
	return parked, active, queued
}

func (p *epollPoller) burstCount() int64 { return p.bursts.Load() }

// --- raw nonblocking fd I/O -------------------------------------------

// readRawFd reads into p; again reports EAGAIN/EWOULDBLOCK. n==0 with
// again==false and err==nil is EOF.
func readRawFd(fd int, p []byte) (n int, again bool, err error) {
	for {
		n, err = syscall.Read(fd, p)
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN {
			return 0, true, nil
		}
		if n < 0 {
			n = 0
		}
		return n, false, err
	}
}

// writevRawFd gather-writes [a, b] in one syscall; again reports
// EAGAIN. Zero-length members are skipped (writev with an empty iovec
// is legal but pointless).
func writevRawFd(fd int, a, b []byte) (n int, again bool, err error) {
	var iov [2]syscall.Iovec
	cnt := 0
	if len(a) > 0 {
		iov[cnt].Base = &a[0]
		iov[cnt].SetLen(len(a))
		cnt++
	}
	if len(b) > 0 {
		iov[cnt].Base = &b[0]
		iov[cnt].SetLen(len(b))
		cnt++
	}
	if cnt == 0 {
		return 0, false, nil
	}
	for {
		r, _, errno := syscall.Syscall(syscall.SYS_WRITEV, uintptr(fd),
			uintptr(unsafe.Pointer(&iov[0])), uintptr(cnt))
		if errno == syscall.EINTR {
			continue
		}
		if errno == syscall.EAGAIN {
			return 0, true, nil
		}
		if errno != 0 {
			return 0, false, errno
		}
		return int(r), false, nil
	}
}
