package server

// Pooled-buffer aliasing stress: every connection handler owns scratch
// buffers (key/body/value/header) that the allocation-free request path
// reuses for every command. This test proves those buffers never alias
// across connections — pipelined clients hammer both private and shared
// keys while both defrag mechanisms run, and every reply must be (a) the
// exact bytes this client last wrote (read-your-writes on private keys)
// and (b) an untorn, single-writer value on the shared keys. A scratch
// buffer leaking between connections, or a kv copy-out escaping its
// critical section, shows up as a mixed-tag value here (and as a data
// race under `go test -race`).

import (
	"bytes"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/rt"
)

func TestPooledBuffersNoCrossConnectionAliasing(t *testing.T) {
	acfg := anchorage.DefaultConfig()
	acfg.SubHeapSize = 256 * 1024
	acfg.FragHigh = 1.2
	acfg.FragLow = 1.1
	acfg.WakeInterval = 5 * time.Millisecond
	backend, err := kv.NewAnchorageBackend(acfg, rt.WithPinMode(rt.CountedPins))
	if err != nil {
		t.Fatal(err)
	}
	store := kv.NewShardedStore(backend, 8, 0)
	srv := New(store, Config{
		Addr:             "127.0.0.1:0",
		MaintainInterval: 2 * time.Millisecond,
		DefragFragHigh:   1.1,
		DefragBudget:     256 * 1024,
	})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	defer srv.Shutdown(5 * time.Second)

	const workers = 4
	rounds := 1500
	if testing.Short() {
		rounds = 400
	}

	// fill builds a value whose every byte carries the writer's tag, so a
	// reply assembled from two connections' scratch memory is detectable
	// byte-by-byte.
	fill := func(tag byte, size int) []byte {
		v := make([]byte, size)
		for i := range v {
			v[i] = tag
		}
		return v
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(w) + 77))
			tag := byte(0x40 + w) // private tag; shared writes use 0xA0|w
			priv := "priv" + strconv.Itoa(w)
			var lastPriv []byte
			for op := 0; op < rounds; op++ {
				// Pipelined burst: two noreply sets (one private, one
				// shared — same key for all workers every third round,
				// distinct shared keys otherwise) followed by a get that
				// flushes the pipeline.
				privVal := fill(tag, 32+rng.Intn(993))
				if err := cl.SetNoreply(priv, 0, privVal); err != nil {
					t.Errorf("worker %d set %s: %v", w, priv, err)
					return
				}
				lastPriv = privVal
				shared := "shared" + strconv.Itoa(op%3)
				sharedVal := fill(0xA0|byte(w), 32+rng.Intn(993))
				if err := cl.SetNoreply(shared, 0, sharedVal); err != nil {
					t.Errorf("worker %d set %s: %v", w, shared, err)
					return
				}
				// Read-your-writes on the private key: exact bytes, exact
				// length, no other writer exists.
				got, _, ok, err := cl.Get(priv)
				if err != nil || !ok {
					t.Errorf("worker %d get %s: ok=%v err=%v", w, priv, ok, err)
					return
				}
				if !bytes.Equal(got, lastPriv) {
					t.Errorf("worker %d read-your-writes violated on %s: got %d bytes (first=%#x), want %d bytes (tag %#x)",
						w, priv, len(got), got[0], len(lastPriv), tag)
					return
				}
				// The shared key may have been overwritten by any worker,
				// but the reply must be one writer's complete value: every
				// byte the same shared-range tag.
				sgot, _, ok, err := cl.Get(shared)
				if err != nil || !ok {
					t.Errorf("worker %d get %s: ok=%v err=%v", w, shared, ok, err)
					return
				}
				first := sgot[0]
				if first&0xF8 != 0xA0 {
					t.Errorf("worker %d get %s: first byte %#x is not a shared-writer tag", w, shared, first)
					return
				}
				for i, b := range sgot {
					if b != first {
						t.Errorf("worker %d get %s: torn value — byte %d is %#x, byte 0 is %#x (len %d)",
							w, shared, i, b, first, len(sgot))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["protocol_errors"] != "0" {
		t.Errorf("protocol_errors = %s, want 0", st["protocol_errors"])
	}
	conc, _ := strconv.ParseInt(st["defrag_concurrent_passes"], 10, 64)
	barr, _ := strconv.ParseInt(st["defrag_barrier_passes"], 10, 64)
	if conc+barr == 0 {
		t.Error("no defrag passes ran under the pipelined traffic; the aliasing test proved nothing")
	}
	t.Logf("pooled-buffer aliasing stress: %d concurrent + %d barrier passes, moved=%s bytes",
		conc, barr, st["defrag_moved_bytes"])
}
