//go:build !race

package server

// Allocation guards: the request path must be allocation-free per op in
// steady state on the malloc backend. These tests drive the real
// handler — bounded line reader, zero-alloc tokenizer, byte parsers,
// kv read-into/in-place-store, response serialization, and the lock-free
// latency recorder — over an in-memory reader/writer, and pin GET-hit
// and SET steady state at exactly 0 allocs/op with testing.AllocsPerRun.
// (Excluded under -race: the detector's instrumentation allocates.)
//
// CI note: a regression here fails `go test ./internal/server`, and the
// nightly bench job additionally fails if cmd/alaskad-bench measures a
// nonzero steady-state GET allocation rate over real sockets.

import (
	"bufio"
	"bytes"
	"io"
	"testing"
	"time"

	"alaska/internal/kv"
)

// guardHandler builds a connHandler over in-memory I/O on a fresh
// malloc-backed store — the full dispatch path with no socket. The
// default config leaves instrumentation fully enabled, so every guard
// proves the 0-alloc contract with the per-opcode histograms live.
func guardHandler() (*connHandler, *bytes.Reader) {
	return guardHandlerCfg(Config{Version: "guard", MaxReplyBacklog: -1})
}

func guardHandlerCfg(cfg Config) (*connHandler, *bytes.Reader) {
	store := kv.NewShardedStore(kv.NewMallocBackend(), 8, 0)
	srv := New(store, cfg)
	src := bytes.NewReader(nil)
	h := &connHandler{
		srv:  srv,
		c:    &conn{clock: srv.cfg.Clock},
		sess: store.NewSession(),
		r:    bufio.NewReaderSize(src, 16<<10),
		w:    bufio.NewWriterSize(io.Discard, 64<<10),
	}
	return h, src
}

// runCommand feeds one pre-built request through the handler exactly as
// the serve loop would: reset the source, read the line, dispatch, and
// record into the full observability plane (aggregate + per-opcode
// histograms + slow-op sampling). The write buffer is reset instead of
// flushed so the measurement covers the server path, not io.Discard.
func runCommand(tb testing.TB, h *connHandler, src *bytes.Reader, req []byte) {
	src.Reset(req)
	h.r.Reset(src)
	start := time.Now()
	line, err := h.readLine()
	if err != nil {
		tb.Fatalf("readLine: %v", err)
	}
	if _, err := h.dispatch(line); err != nil {
		tb.Fatalf("dispatch: %v", err)
	}
	h.srv.recordOp(h, h.c.id, time.Since(start))
	h.w.Reset(io.Discard)
	h.backlog = 0
}

func TestAllocFreeGetHit(t *testing.T) {
	h, src := guardHandler()
	set := []byte("set bench:key 7 0 512\r\n" + string(bytes.Repeat([]byte{'v'}, 512)) + "\r\n")
	get := []byte("get bench:key\r\n")
	runCommand(t, h, src, set)
	// Warm the connection-owned scratch buffers to steady state.
	for i := 0; i < 8; i++ {
		runCommand(t, h, src, get)
	}
	avg := testing.AllocsPerRun(200, func() {
		runCommand(t, h, src, get)
	})
	if avg != 0 {
		t.Fatalf("GET hit allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

func TestAllocFreeSetSteadyState(t *testing.T) {
	h, src := guardHandler()
	set := []byte("set bench:key 7 0 512\r\n" + string(bytes.Repeat([]byte{'v'}, 512)) + "\r\n")
	for i := 0; i < 8; i++ {
		runCommand(t, h, src, set)
	}
	avg := testing.AllocsPerRun(200, func() {
		runCommand(t, h, src, set)
	})
	if avg != 0 {
		t.Fatalf("steady-state SET allocates %.2f allocs/op, want 0", avg)
	}
}

// TestAllocFreeSlowOpCapture pins the slow-op recording path itself: a
// 1ns threshold makes every command a "slow op", so each iteration
// claims a ring slot, runs the seqlock write, and copies the key prefix
// — all of which must stay allocation-free.
func TestAllocFreeSlowOpCapture(t *testing.T) {
	h, src := guardHandlerCfg(Config{
		Version:         "guard",
		MaxReplyBacklog: -1,
		SlowOpThreshold: time.Nanosecond,
	})
	set := []byte("set bench:key 7 0 512\r\n" + string(bytes.Repeat([]byte{'v'}, 512)) + "\r\n")
	get := []byte("get bench:key\r\n")
	runCommand(t, h, src, set)
	for i := 0; i < 8; i++ {
		runCommand(t, h, src, get)
	}
	avg := testing.AllocsPerRun(200, func() {
		runCommand(t, h, src, get)
	})
	if avg != 0 {
		t.Fatalf("GET hit with slow-op capture allocates %.2f allocs/op, want 0", avg)
	}
	if got := h.srv.slowOpTotal(); got == 0 {
		t.Fatalf("slow-op ring recorded nothing despite 1ns threshold")
	}
	ops := h.srv.SlowOps()
	if len(ops) == 0 || ops[0].Cmd != "get" || ops[0].Key != "bench:key" {
		t.Fatalf("unexpected slow-op snapshot head: %+v", ops[:min(len(ops), 1)])
	}
}

// TestAllocFreeGetMiss pins the miss path too: a keyspace scan of cold
// keys must not churn the allocator either.
func TestAllocFreeGetMiss(t *testing.T) {
	h, src := guardHandler()
	get := []byte("get no:such:key\r\n")
	for i := 0; i < 8; i++ {
		runCommand(t, h, src, get)
	}
	avg := testing.AllocsPerRun(200, func() {
		runCommand(t, h, src, get)
	})
	if avg != 0 {
		t.Fatalf("GET miss allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestAllocFreePipelinedMixed runs the realistic interleaving — set,
// get, delete-miss, multi-key get — as one pipelined batch per
// iteration, covering the tokenizer's multi-command reuse.
func TestAllocFreePipelinedMixed(t *testing.T) {
	h, src := guardHandler()
	val := string(bytes.Repeat([]byte{'x'}, 64))
	batch := []byte(
		"set a 1 0 64\r\n" + val + "\r\n" +
			"set b 2 0 64\r\n" + val + "\r\n" +
			"get a b\r\n" +
			"delete nosuch\r\n" +
			"gets a\r\n")
	runBatch := func() {
		src.Reset(batch)
		h.r.Reset(src)
		for cmds := 0; cmds < 5; cmds++ {
			line, err := h.readLine()
			if err != nil {
				t.Fatalf("readLine: %v", err)
			}
			if _, err := h.dispatch(line); err != nil {
				t.Fatalf("dispatch: %v", err)
			}
		}
		h.w.Reset(io.Discard)
		h.backlog = 0
	}
	for i := 0; i < 8; i++ {
		runBatch()
	}
	avg := testing.AllocsPerRun(100, runBatch)
	if avg != 0 {
		t.Fatalf("pipelined mixed batch allocates %.2f allocs/batch in steady state, want 0", avg)
	}
}
