package server

// Admin-plane lifecycle: the regression tests for the leaked -admin-addr
// listener. Before AttachAdmin, alaskad served the admin mux with a bare
// http.Serve goroutine that nothing ever stopped — SIGTERM left the
// port held and any in-flight scrape severed. Shutdown must now drain
// the admin server: in-flight requests complete, then the port is free.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"alaska/internal/kv"
	"alaska/internal/wal"
)

func newAdminTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	store := kv.NewShardedStore(kv.NewMallocBackend(), 4, 0)
	srv := New(store, Config{Addr: "127.0.0.1:0", Version: "admin-test"})
	if err := srv.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve() }()
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("admin listen: %v", err)
	}
	srv.AttachAdmin(aln)
	return srv, aln.Addr().String()
}

func TestAdminShutdownReleasesPortAndDrainsInflight(t *testing.T) {
	srv, adminAddr := newAdminTestServer(t)

	// The plane is up.
	resp, err := http.Get("http://" + adminAddr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	// Park a genuinely in-flight scrape: the trace endpoint holds its
	// handler for a full second, so Shutdown begins while it runs.
	type scrape struct {
		status int
		n      int
		err    error
	}
	inflight := make(chan scrape, 1)
	go func() {
		r, err := http.Get("http://" + adminAddr + "/debug/pprof/trace?seconds=1")
		if err != nil {
			inflight <- scrape{err: err}
			return
		}
		defer r.Body.Close()
		b, err := io.ReadAll(r.Body)
		inflight <- scrape{status: r.StatusCode, n: len(b), err: err}
	}()
	time.Sleep(300 * time.Millisecond) // the handler is now mid-trace

	if err := srv.Shutdown(3 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The in-flight scrape completed across the shutdown instead of
	// being severed.
	select {
	case got := <-inflight:
		if got.err != nil || got.status != 200 {
			t.Fatalf("in-flight scrape severed by shutdown: status=%d n=%d err=%v", got.status, got.n, got.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight scrape never completed")
	}

	// The port is actually released — the old code path leaked the
	// listener here and this re-listen failed with EADDRINUSE.
	ln, err := net.Listen("tcp", adminAddr)
	if err != nil {
		t.Fatalf("admin port still held after shutdown: %v", err)
	}
	ln.Close()

	// And the admin server is gone, not just unbound: a fresh scrape
	// finds nobody listening.
	if _, err := (&http.Client{Timeout: time.Second}).Get("http://" + adminAddr + "/healthz"); err == nil {
		t.Fatal("admin plane still serving after shutdown")
	}
}

// TestAdminServesMetricsWithWALStats spot-checks that the wal_* rows
// reach both stats surfaces when persistence is on — the CI smoke test
// greps them from `stats`, operators scrape them from /metrics.
func TestAdminServesMetricsWithWALStats(t *testing.T) {
	wlog, err := wal.Open(wal.Options{Dir: t.TempDir(), AuditInterval: -1})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	store := kv.NewShardedStore(kv.NewMallocBackend(), 4, 0)
	if err := wlog.Start(store); err != nil {
		t.Fatalf("wal start: %v", err)
	}
	store.SetMutationLog(wlog)
	srv := New(store, Config{Addr: "127.0.0.1:0", Version: "admin-test", WAL: wlog})
	if err := srv.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve() }()
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("admin listen: %v", err)
	}
	srv.AttachAdmin(aln)
	defer srv.Shutdown(time.Second)

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", aln.Addr()))
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte("alaskad_wal_appended_records_total")) {
		t.Fatalf("metrics = %d, missing wal series in %d bytes", resp.StatusCode, len(body))
	}

	found := false
	for _, l := range srv.StatsSnapshot() {
		if l.Name == "wal_appended_records" {
			found = true
		}
	}
	if !found {
		t.Fatal("StatsSnapshot has no wal_appended_records row with WAL attached")
	}
}
