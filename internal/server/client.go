package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is a minimal memcached-ASCII-protocol client for alaskad: the
// load generator, the smoke tests, and the conformance suite all drive
// the server through it. One Client owns one connection and is not safe
// for concurrent use — open one per worker, like a real cache client
// pool does.
type Client struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, r: bufio.NewReaderSize(c, 16<<10), w: bufio.NewWriterSize(c, 16<<10)}, nil
}

// Close sends quit and closes the connection.
func (cl *Client) Close() error {
	_, _ = cl.w.WriteString("quit\r\n")
	_ = cl.w.Flush()
	return cl.c.Close()
}

func (cl *Client) line() (string, error) {
	s, err := cl.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSuffix(strings.TrimSuffix(s, "\n"), "\r"), nil
}

// store issues one storage command and decodes the reply.
func (cl *Client) store(cmd, key string, flags uint32, value []byte) (bool, error) {
	fmt.Fprintf(cl.w, "%s %s %d 0 %d\r\n", cmd, key, flags, len(value))
	cl.w.Write(value)
	cl.w.WriteString("\r\n")
	if err := cl.w.Flush(); err != nil {
		return false, err
	}
	resp, err := cl.line()
	if err != nil {
		return false, err
	}
	switch resp {
	case respStored:
		return true, nil
	case respNotStored:
		return false, nil
	}
	return false, fmt.Errorf("server: %s %q: %s", cmd, key, resp)
}

// Set stores key=value unconditionally.
func (cl *Client) Set(key string, flags uint32, value []byte) error {
	_, err := cl.store("set", key, flags, value)
	return err
}

// SetNoreply stores without waiting for a response (pipelined writes).
func (cl *Client) SetNoreply(key string, flags uint32, value []byte) error {
	fmt.Fprintf(cl.w, "set %s %d 0 %d noreply\r\n", key, flags, len(value))
	cl.w.Write(value)
	_, err := cl.w.WriteString("\r\n")
	return err
}

// Add stores only if absent; reports whether it stored.
func (cl *Client) Add(key string, flags uint32, value []byte) (bool, error) {
	return cl.store("add", key, flags, value)
}

// Replace stores only if present; reports whether it stored.
func (cl *Client) Replace(key string, flags uint32, value []byte) (bool, error) {
	return cl.store("replace", key, flags, value)
}

// Get fetches one key; ok is false on a miss.
func (cl *Client) Get(key string) (value []byte, flags uint32, ok bool, err error) {
	v, f, _, ok, err := cl.retrieve("get", key)
	return v, f, ok, err
}

// Gets fetches one key with its cas unique.
func (cl *Client) Gets(key string) (value []byte, flags uint32, cas uint64, ok bool, err error) {
	return cl.retrieve("gets", key)
}

func (cl *Client) retrieve(cmd, key string) (value []byte, flags uint32, cas uint64, ok bool, err error) {
	fmt.Fprintf(cl.w, "%s %s\r\n", cmd, key)
	if err = cl.w.Flush(); err != nil {
		return
	}
	for {
		var resp string
		if resp, err = cl.line(); err != nil {
			return
		}
		if resp == respEnd {
			return
		}
		fields := strings.Fields(resp)
		if len(fields) < 4 || fields[0] != "VALUE" {
			err = fmt.Errorf("server: %s %q: %s", cmd, key, resp)
			return
		}
		var n uint64
		if n, err = strconv.ParseUint(fields[3], 10, 31); err != nil {
			return
		}
		f64, _ := strconv.ParseUint(fields[2], 10, 32)
		if len(fields) >= 5 {
			cas, _ = strconv.ParseUint(fields[4], 10, 64)
		}
		buf := make([]byte, n+2)
		if _, err = io.ReadFull(cl.r, buf); err != nil {
			return
		}
		value, flags, ok = buf[:n], uint32(f64), true
	}
}

// Delete removes key; reports whether it existed.
func (cl *Client) Delete(key string) (bool, error) {
	fmt.Fprintf(cl.w, "delete %s\r\n", key)
	if err := cl.w.Flush(); err != nil {
		return false, err
	}
	resp, err := cl.line()
	if err != nil {
		return false, err
	}
	switch resp {
	case respDeleted:
		return true, nil
	case respNotFound:
		return false, nil
	}
	return false, fmt.Errorf("server: delete %q: %s", key, resp)
}

// Stats returns the server's stats as a name→value map.
func (cl *Client) Stats() (map[string]string, error) {
	if _, err := cl.w.WriteString("stats\r\n"); err != nil {
		return nil, err
	}
	if err := cl.w.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		resp, err := cl.line()
		if err != nil {
			return nil, err
		}
		if resp == respEnd {
			return out, nil
		}
		fields := strings.SplitN(resp, " ", 3)
		if len(fields) != 3 || fields[0] != "STAT" {
			return nil, fmt.Errorf("server: stats: %s", resp)
		}
		out[fields[1]] = fields[2]
	}
}

// Version returns the server's version string.
func (cl *Client) Version() (string, error) {
	if _, err := cl.w.WriteString("version\r\n"); err != nil {
		return "", err
	}
	if err := cl.w.Flush(); err != nil {
		return "", err
	}
	resp, err := cl.line()
	if err != nil {
		return "", err
	}
	v, ok := strings.CutPrefix(resp, "VERSION ")
	if !ok {
		return "", fmt.Errorf("server: version: %s", resp)
	}
	return v, nil
}

// Flush drains any buffered noreply writes to the socket.
func (cl *Client) Flush() error { return cl.w.Flush() }
