package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is a minimal memcached-ASCII-protocol client for alaskad: the
// load generator, the smoke tests, and the conformance suite all drive
// the server through it. One Client owns one connection and is not safe
// for concurrent use — open one per worker, like a real cache client
// pool does.
//
// The request path is allocation-free in steady state: requests are
// assembled with WriteString/AppendUint (no fmt), responses are parsed
// as byte slices out of the read buffer, and retrieved values land in a
// grow-only scratch buffer — so a loadgen built on this client measures
// the server, not its own allocator. The price is an aliasing contract:
// a value returned by Get/Gets/Gat/Gats is valid only until the next
// retrieval on the same Client; callers that keep it must copy.
type Client struct {
	c    net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	addr string

	// val receives retrieved value bodies (grow-only scratch).
	val []byte
	// num formats request integers.
	num []byte
	// lineBuf accumulates a response line longer than the read buffer
	// (stats surfaces, pathological servers) — never the data block.
	lineBuf []byte
	// fields holds tokenized response-header slices.
	fields [][]byte

	// Resilience knobs (see SetOpTimeout / EnableReconnect). opTimeout
	// deadline-bounds each op; a transport error marks the connection
	// broken — its protocol position is unknown, so it is torn down —
	// and, with reconnect enabled, redialed with jittered exponential
	// backoff. The failing op's error still surfaces (the request cannot
	// be replayed safely); the NEXT op runs on the fresh connection.
	opTimeout     time.Duration
	reconnect     bool
	reconAttempts int
	reconMin      time.Duration
	reconMax      time.Duration
	broken        bool
}

// errBroken reports an op issued on a connection that failed earlier
// and has not been re-established.
var errBroken = errors.New("client: connection broken")

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, r: bufio.NewReaderSize(c, 16<<10), w: bufio.NewWriterSize(c, 16<<10), addr: addr}, nil
}

// SetOpTimeout bounds every subsequent op with a read+write deadline: a
// server that accepts the request but never answers fails the op within
// d instead of hanging the caller forever. 0 disables (the default).
func (cl *Client) SetOpTimeout(d time.Duration) { cl.opTimeout = d }

// EnableReconnect makes a transport error redial the server: up to
// attempts tries with exponential backoff from min to max, each sleep
// jittered ±50% so a fleet of clients does not reconnect in lockstep.
// The op that hit the error still fails — its request cannot be
// replayed without risking duplication — but subsequent ops proceed on
// the fresh connection.
func (cl *Client) EnableReconnect(attempts int, min, max time.Duration) {
	if attempts <= 0 {
		attempts = 5
	}
	if min <= 0 {
		min = 50 * time.Millisecond
	}
	if max < min {
		max = min
	}
	cl.reconnect = true
	cl.reconAttempts = attempts
	cl.reconMin = min
	cl.reconMax = max
}

// fail handles a transport error: the connection's protocol position is
// unknown (half-written request, unread response), so it is closed and
// — with reconnect enabled — redialed so the next op finds a fresh
// connection. Returns err for the caller to surface.
func (cl *Client) fail(err error) error {
	_ = cl.c.Close()
	cl.broken = true
	if cl.reconnect && cl.redial() == nil {
		cl.broken = false
	}
	return err
}

// redial re-establishes the connection with jittered exponential
// backoff, resetting the buffered reader/writer onto the new socket
// (which discards any half-assembled request — by design: it belonged
// to the op that already failed).
func (cl *Client) redial() error {
	var err error
	backoff := cl.reconMin
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	attempts := cl.reconAttempts
	if attempts <= 0 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		if i > 0 {
			// ±50% jitter: sleep in [backoff/2, backoff*3/2).
			time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff))))
			if backoff *= 2; cl.reconMax > 0 && backoff > cl.reconMax {
				backoff = cl.reconMax
			}
		}
		var c net.Conn
		if c, err = net.DialTimeout("tcp", cl.addr, 5*time.Second); err == nil {
			cl.c = c
			cl.r.Reset(c)
			cl.w.Reset(c)
			return nil
		}
	}
	return err
}

// flush starts an op on the wire: arm the per-op deadline (one deadline
// at flush time covers the whole op — every op is write-then-read) and
// drain the request buffer. A broken connection fails the op up front
// (its request bytes were assembled against the dead socket) but
// re-attempts the redial so a later op can succeed.
func (cl *Client) flush() error {
	if cl.broken {
		if cl.reconnect && cl.redial() == nil {
			cl.broken = false
		}
		return errBroken
	}
	if cl.opTimeout > 0 {
		_ = cl.c.SetDeadline(time.Now().Add(cl.opTimeout))
	}
	if err := cl.w.Flush(); err != nil {
		return cl.fail(err)
	}
	return nil
}

// Close sends quit and closes the connection.
func (cl *Client) Close() error {
	_, _ = cl.w.WriteString("quit\r\n")
	_ = cl.w.Flush()
	return cl.c.Close()
}

// lineBytes reads one response line without allocating: the returned
// slice aliases the read buffer (or lineBuf for over-length lines) and
// is valid only until the next read on the connection.
func (cl *Client) lineBytes() ([]byte, error) {
	s, err := cl.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		cl.lineBuf = append(cl.lineBuf[:0], s...)
		for err == bufio.ErrBufferFull {
			s, err = cl.r.ReadSlice('\n')
			cl.lineBuf = append(cl.lineBuf, s...)
		}
		s = cl.lineBuf
	}
	if err != nil {
		return nil, cl.fail(err)
	}
	s = s[:len(s)-1] // \n
	if len(s) > 0 && s[len(s)-1] == '\r' {
		s = s[:len(s)-1]
	}
	return s, nil
}

func (cl *Client) line() (string, error) {
	b, err := cl.lineBytes()
	return string(b), err
}

// writeUint appends a base-10 integer to the request without fmt.
func (cl *Client) writeUint(v uint64) {
	cl.num = strconv.AppendUint(cl.num[:0], v, 10)
	_, _ = cl.w.Write(cl.num)
}

func (cl *Client) writeInt(v int64) {
	cl.num = strconv.AppendInt(cl.num[:0], v, 10)
	_, _ = cl.w.Write(cl.num)
}

// writeStorageHeader assembles `<cmd> <key> <flags> <exptime> <bytes>`.
func (cl *Client) writeStorageHeader(cmd, key string, flags uint32, exptime int64, n int) {
	_, _ = cl.w.WriteString(cmd)
	_ = cl.w.WriteByte(' ')
	_, _ = cl.w.WriteString(key)
	_ = cl.w.WriteByte(' ')
	cl.writeUint(uint64(flags))
	_ = cl.w.WriteByte(' ')
	cl.writeInt(exptime)
	_ = cl.w.WriteByte(' ')
	cl.writeUint(uint64(n))
}

// store issues one storage command and decodes the reply.
func (cl *Client) store(cmd, key string, flags uint32, exptime int64, value []byte) (bool, error) {
	cl.writeStorageHeader(cmd, key, flags, exptime, len(value))
	_, _ = cl.w.WriteString(crlf)
	_, _ = cl.w.Write(value)
	_, _ = cl.w.WriteString(crlf)
	if err := cl.flush(); err != nil {
		return false, err
	}
	resp, err := cl.lineBytes()
	if err != nil {
		return false, err
	}
	switch string(resp) {
	case respStored:
		return true, nil
	case respNotStored:
		return false, nil
	}
	return false, fmt.Errorf("server: %s %q: %s", cmd, key, resp)
}

// Set stores key=value unconditionally, with no expiry.
func (cl *Client) Set(key string, flags uint32, value []byte) error {
	_, err := cl.store("set", key, flags, 0, value)
	return err
}

// SetEx stores key=value with a wire exptime (relative seconds up to 30
// days, absolute unix timestamp beyond, negative = already expired).
func (cl *Client) SetEx(key string, flags uint32, exptime int64, value []byte) error {
	_, err := cl.store("set", key, flags, exptime, value)
	return err
}

// SetNoreply stores without waiting for a response (pipelined writes).
func (cl *Client) SetNoreply(key string, flags uint32, value []byte) error {
	cl.writeStorageHeader("set", key, flags, 0, len(value))
	_, _ = cl.w.WriteString(" noreply\r\n")
	_, _ = cl.w.Write(value)
	_, err := cl.w.WriteString(crlf)
	return err
}

// Add stores only if absent; reports whether it stored.
func (cl *Client) Add(key string, flags uint32, value []byte) (bool, error) {
	return cl.store("add", key, flags, 0, value)
}

// Replace stores only if present; reports whether it stored.
func (cl *Client) Replace(key string, flags uint32, value []byte) (bool, error) {
	return cl.store("replace", key, flags, 0, value)
}

// Append concatenates value after key's current data; reports whether it
// stored (false = key absent).
func (cl *Client) Append(key string, value []byte) (bool, error) {
	return cl.store("append", key, 0, 0, value)
}

// Prepend concatenates value before key's current data.
func (cl *Client) Prepend(key string, value []byte) (bool, error) {
	return cl.store("prepend", key, 0, 0, value)
}

// CasStatus is the outcome of a compare-and-swap.
type CasStatus int

const (
	// CasStored means the swap won.
	CasStored CasStatus = iota
	// CasExists means the unique was stale (someone stored in between).
	CasExists
	// CasNotFound means the key vanished.
	CasNotFound
)

// Cas stores key=value only if the server-side cas unique still equals
// cas (from a previous Gets).
func (cl *Client) Cas(key string, flags uint32, exptime int64, cas uint64, value []byte) (CasStatus, error) {
	cl.writeStorageHeader("cas", key, flags, exptime, len(value))
	_ = cl.w.WriteByte(' ')
	cl.writeUint(cas)
	_, _ = cl.w.WriteString(crlf)
	_, _ = cl.w.Write(value)
	_, _ = cl.w.WriteString(crlf)
	if err := cl.flush(); err != nil {
		return 0, err
	}
	resp, err := cl.lineBytes()
	if err != nil {
		return 0, err
	}
	switch string(resp) {
	case respStored:
		return CasStored, nil
	case respExists:
		return CasExists, nil
	case respNotFound:
		return CasNotFound, nil
	}
	return 0, fmt.Errorf("server: cas %q: %s", key, resp)
}

// Incr adds delta to key's numeric value, returning the new value; found
// is false when the key is absent.
func (cl *Client) Incr(key string, delta uint64) (val uint64, found bool, err error) {
	return cl.arith("incr", key, delta)
}

// Decr subtracts delta (clamping at 0), returning the new value.
func (cl *Client) Decr(key string, delta uint64) (val uint64, found bool, err error) {
	return cl.arith("decr", key, delta)
}

func (cl *Client) arith(cmd, key string, delta uint64) (uint64, bool, error) {
	_, _ = cl.w.WriteString(cmd)
	_ = cl.w.WriteByte(' ')
	_, _ = cl.w.WriteString(key)
	_ = cl.w.WriteByte(' ')
	cl.writeUint(delta)
	_, _ = cl.w.WriteString(crlf)
	if err := cl.flush(); err != nil {
		return 0, false, err
	}
	resp, err := cl.lineBytes()
	if err != nil {
		return 0, false, err
	}
	if string(resp) == respNotFound {
		return 0, false, nil
	}
	// A space-padded-decr server right-pads shrinking results; the
	// number is the digit prefix either way.
	v, ok := parseNumericValueB(resp)
	if !ok {
		return 0, false, fmt.Errorf("server: %s %q: %s", cmd, key, resp)
	}
	return v, true, nil
}

// Touch updates key's expiry without fetching it; reports whether the
// key was present.
func (cl *Client) Touch(key string, exptime int64) (bool, error) {
	_, _ = cl.w.WriteString("touch ")
	_, _ = cl.w.WriteString(key)
	_ = cl.w.WriteByte(' ')
	cl.writeInt(exptime)
	_, _ = cl.w.WriteString(crlf)
	if err := cl.flush(); err != nil {
		return false, err
	}
	resp, err := cl.lineBytes()
	if err != nil {
		return false, err
	}
	switch string(resp) {
	case respTouched:
		return true, nil
	case respNotFound:
		return false, nil
	}
	return false, fmt.Errorf("server: touch %q: %s", key, resp)
}

// Gat fetches key and updates its expiry in one command.
func (cl *Client) Gat(exptime int64, key string) (value []byte, flags uint32, ok bool, err error) {
	v, f, _, ok, err := cl.retrieve("gat", key, exptime, true)
	return v, f, ok, err
}

// Gats is Gat returning the cas unique too.
func (cl *Client) Gats(exptime int64, key string) (value []byte, flags uint32, cas uint64, ok bool, err error) {
	return cl.retrieve("gats", key, exptime, true)
}

// Get fetches one key; ok is false on a miss. The returned value is
// backed by the client's scratch buffer and valid until the next
// retrieval.
func (cl *Client) Get(key string) (value []byte, flags uint32, ok bool, err error) {
	v, f, _, ok, err := cl.retrieve("get", key, 0, false)
	return v, f, ok, err
}

// Gets fetches one key with its cas unique.
func (cl *Client) Gets(key string) (value []byte, flags uint32, cas uint64, ok bool, err error) {
	return cl.retrieve("gets", key, 0, false)
}

func (cl *Client) retrieve(cmd, key string, exptime int64, withExp bool) (value []byte, flags uint32, cas uint64, ok bool, err error) {
	_, _ = cl.w.WriteString(cmd)
	if withExp {
		_ = cl.w.WriteByte(' ')
		cl.writeInt(exptime)
	}
	_ = cl.w.WriteByte(' ')
	_, _ = cl.w.WriteString(key)
	_, _ = cl.w.WriteString(crlf)
	if err = cl.flush(); err != nil {
		return
	}
	for {
		var resp []byte
		if resp, err = cl.lineBytes(); err != nil {
			return
		}
		if string(resp) == respEnd {
			return
		}
		// Header fields are parsed to scalars before the body read slides
		// the read buffer under them.
		cl.fields = tokenize(resp, cl.fields[:0])
		if len(cl.fields) < 4 || string(cl.fields[0]) != "VALUE" {
			err = fmt.Errorf("server: %s %q: %s", cmd, key, resp)
			return
		}
		var n uint64
		if n, err = parseUintB(cl.fields[3], 31); err != nil {
			err = fmt.Errorf("server: %s %q: bad byte count %q", cmd, key, cl.fields[3])
			return
		}
		f64, _ := parseUintB(cl.fields[2], 32)
		if len(cl.fields) >= 5 {
			cas, _ = parseUintB(cl.fields[4], 64)
		}
		if cap(cl.val) < int(n)+2 {
			cl.val = make([]byte, n+2)
		}
		buf := cl.val[:n+2]
		if _, err = io.ReadFull(cl.r, buf); err != nil {
			err = cl.fail(err)
			return
		}
		value, flags, ok = buf[:n], uint32(f64), true
	}
}

// Delete removes key; reports whether it existed.
func (cl *Client) Delete(key string) (bool, error) {
	_, _ = cl.w.WriteString("delete ")
	_, _ = cl.w.WriteString(key)
	_, _ = cl.w.WriteString(crlf)
	if err := cl.flush(); err != nil {
		return false, err
	}
	resp, err := cl.lineBytes()
	if err != nil {
		return false, err
	}
	switch string(resp) {
	case respDeleted:
		return true, nil
	case respNotFound:
		return false, nil
	}
	return false, fmt.Errorf("server: delete %q: %s", key, resp)
}

// FlushAll marks every currently stored value expired delay seconds
// from now (0 = immediately).
func (cl *Client) FlushAll(delay int64) error {
	if delay > 0 {
		fmt.Fprintf(cl.w, "flush_all %d\r\n", delay)
	} else {
		cl.w.WriteString("flush_all\r\n")
	}
	if err := cl.flush(); err != nil {
		return err
	}
	resp, err := cl.line()
	if err != nil {
		return err
	}
	if resp != respOK {
		return fmt.Errorf("server: flush_all: %s", resp)
	}
	return nil
}

// Verbosity sets the server's logging verbosity (accepted and ignored
// by alaskad, like most deployments treat it).
func (cl *Client) Verbosity(level uint64) error {
	fmt.Fprintf(cl.w, "verbosity %d\r\n", level)
	if err := cl.flush(); err != nil {
		return err
	}
	resp, err := cl.line()
	if err != nil {
		return err
	}
	if resp != respOK {
		return fmt.Errorf("server: verbosity: %s", resp)
	}
	return nil
}

// Stats returns the server's stats as a name→value map.
func (cl *Client) Stats() (map[string]string, error) {
	if _, err := cl.w.WriteString("stats\r\n"); err != nil {
		return nil, err
	}
	if err := cl.flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		resp, err := cl.line()
		if err != nil {
			return nil, err
		}
		if resp == respEnd {
			return out, nil
		}
		fields := strings.SplitN(resp, " ", 3)
		if len(fields) != 3 || fields[0] != "STAT" {
			return nil, fmt.Errorf("server: stats: %s", resp)
		}
		out[fields[1]] = fields[2]
	}
}

// Version returns the server's version string.
func (cl *Client) Version() (string, error) {
	if _, err := cl.w.WriteString("version\r\n"); err != nil {
		return "", err
	}
	if err := cl.flush(); err != nil {
		return "", err
	}
	resp, err := cl.line()
	if err != nil {
		return "", err
	}
	v, ok := strings.CutPrefix(resp, "VERSION ")
	if !ok {
		return "", fmt.Errorf("server: version: %s", resp)
	}
	return v, nil
}

// Flush drains any buffered noreply writes to the socket.
func (cl *Client) Flush() error { return cl.flush() }
