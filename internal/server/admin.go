package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewAdminHandler returns the admin-plane HTTP handler alaskad serves on
// -admin-addr — a separate socket from the memcached port, so operators
// can firewall it independently and a scrape storm can never occupy
// data-plane connection slots. Endpoints:
//
//	/metrics        Prometheus text exposition (see MetricsRegistry)
//	/healthz        liveness probe ("ok" while the process serves)
//	/readyz         readiness: booting|replaying|ok|degraded, 503 on
//	                everything but ok, one detail line per subsystem
//	/debug/vars     expvar (Go runtime memstats and cmdline)
//	/debug/pprof/   the standard pprof index, profiles, and traces
//	/debug/slowops  the slow-op ring as JSON, newest first
//
// Liveness and readiness are deliberately split: a degraded node is
// alive (keep it, it is still serving its connections) but not ready
// (stop routing new traffic to it) — exactly the distinction
// orchestrator restart policies and load-balancer health checks need
// to be told apart.
func NewAdminHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = s.MetricsRegistry().WriteTo(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		rep := s.cfg.Health.Report()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !rep.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		var b bytes.Buffer
		b.WriteString(rep.Status.String())
		b.WriteByte('\n')
		for _, sub := range rep.Subs {
			b.WriteString(sub.Name)
			b.WriteString(": ")
			b.WriteString(sub.State)
			if sub.Detail != "" {
				b.WriteString(" (")
				b.WriteString(sub.Detail)
				b.WriteString(")")
			}
			b.WriteByte('\n')
		}
		_, _ = w.Write(b.Bytes())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// net/http/pprof registers on http.DefaultServeMux at init; route the
	// handlers explicitly so the admin mux works standalone (and nothing
	// else that touched DefaultServeMux leaks onto the admin port).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/slowops", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ops := s.SlowOps()
		if ops == nil {
			ops = []SlowOp{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ops)
	})
	return mux
}

// AttachAdmin serves the admin plane on ln under the server's
// lifecycle: Server.Shutdown drains it via http.Server.Shutdown, so
// in-flight scrapes complete and the port is released — the previous
// bare http.Serve leaked the listener (and whatever scrape it was
// serving) on SIGTERM. Call before Serve.
func (s *Server) AttachAdmin(ln net.Listener) {
	srv := &http.Server{Handler: NewAdminHandler(s)}
	s.admin = srv
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.cfg.Logger.Errorf("admin serve: %v", err)
		}
	}()
}
