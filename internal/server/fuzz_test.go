package server

// FuzzParseCommand fuzzes the zero-alloc ASCII command parsers with
// arbitrary lines — torn commands, huge integers, embedded CR/LF,
// over-long keys — seeded from the golden conformance transcripts. The
// invariants: no parser panics, and no parser ever *accepts* an illegal
// key (the 250-byte/no-whitespace/no-control rule), a negative byte
// count, or an exptime the deadline converter can't normalize.
//
// FuzzTokenizeDifferential holds the zero-alloc tokenizer and byte
// parsers to the legacy strings.Fields/strconv reference path in
// protocol.go: same fields, same parse verdicts, same CLIENT_ERROR
// classification, over the same seed corpus.

import (
	"bufio"
	"strings"
	"testing"
	"time"
)

// parserFuzzSeeds is the shared corpus of both fuzzers: golden
// transcript lines plus torn/adversarial shapes.
var parserFuzzSeeds = []string{
	"set foo 42 0 5",
	"set quiet 0 0 2 noreply",
	"add fresh 7 0 2",
	"replace nosuch 0 0 2",
	"cas n 1 0 1 1",
	"cas n 0 0 1 2 noreply",
	"append s 0 0 2",
	"prepend s 7 100 2",
	"incr n 18446744073709551615",
	"incr n xyz",
	"decr miss 1 noreply",
	"delete foo",
	"delete quiet noreply",
	"touch k -1",
	"touch k2 -1 noreply",
	"gat 100 g1 miss g2",
	"gats 100 g1",
	"get " + strings.Repeat("k", 250),
	"get " + strings.Repeat("k", 251),
	"set k 0 99999999999999999999 1",
	"set k 0 -9223372036854775808 1",
	"set k 0 2592001 4294967295",
	"set k +0 0 1",
	"set k 0 +30 1",
	"incr k -5",
	"incr k +5",
	"touch k 9223372036854775807",
	"gat -1",
	"cas k 1 2 3",
	"set",
	"",
	"set k\r\n0 0 5",
	"set k\x00 0 0 5",
	"incr \x7f 1",
	"flush_all",
	"flush_all 100",
	"flush_all 0 noreply",
	"flush_all 2592001",
	"flush_all -1",
	"flush_all 9223372036854775808",
	"verbosity 1",
	"verbosity 2 noreply",
	"verbosity",
	"verbosity abc",
	// Over-length lines: the bounded reader must reject these without
	// buffering, and the parsers must stay panic-free on what slips
	// through as fields.
	"get " + strings.Repeat("a", 4096),
	"set " + strings.Repeat("b", 3000) + " 0 0 5",
	strings.Repeat("c", 5000),
}

func FuzzParseCommand(f *testing.F) {
	for _, s := range parserFuzzSeeds {
		f.Add(s)
	}
	now := time.Unix(1_700_000_000, 0)
	f.Fuzz(func(t *testing.T, line string) {
		// The bounded line reader must either reject an over-length line
		// or hand back one at most max bytes long — never buffer past the
		// cap (a tiny bufio window forces the multi-fragment path).
		const maxLine = 64
		r := bufio.NewReaderSize(strings.NewReader(line+"\n"), maxLine+2)
		if s, err := readLineDirect(r, maxLine); err == nil && len(s) > maxLine+1 {
			t.Errorf("readLineDirect returned %d bytes past the %d cap from %q", len(s), maxLine, line)
		}
		fields := tokenize([]byte(line), nil)
		if len(fields) == 0 {
			return
		}
		mustBeValid := func(key []byte) {
			if !validKeyB(key) {
				t.Errorf("parser accepted illegal key %q from line %q", key, line)
			}
		}
		cmd, args := fields[0], fields[1:]
		switch string(cmd) {
		case "set", "add", "replace", "append", "prepend", "cas":
			sa, err := parseStorageB(args, string(cmd) == "cas")
			if err == nil {
				mustBeValid(sa.key)
				if sa.nbytes < 0 {
					t.Errorf("parser accepted negative byte count %d from %q", sa.nbytes, line)
				}
				deadlineFor(sa.exptime, now) // must not panic
			}
		case "incr", "decr":
			key, _, _, err := parseIncrDecrB(args)
			// errBadDelta still carries a validated key (the command line
			// itself was well-formed).
			if err == nil || err == errBadDelta {
				mustBeValid(key)
			}
		case "delete":
			key, _, err := parseDeleteB(args)
			if err == nil {
				mustBeValid(key)
			}
		case "touch":
			key, exptime, _, err := parseTouchB(args)
			if err == nil {
				mustBeValid(key)
				deadlineFor(exptime, now)
			}
		case "gat", "gats":
			exptime, keys, err := parseGatB(args)
			if err == nil {
				if len(keys) == 0 {
					t.Errorf("parseGatB accepted a keyless line %q", line)
				}
				for _, k := range keys {
					mustBeValid(k)
				}
				deadlineFor(exptime, now)
			}
		case "flush_all":
			delay, _, err := parseFlushAllB(args)
			if err == nil {
				if delay < 0 {
					t.Errorf("parseFlushAllB accepted negative delay %d from %q", delay, line)
				}
				deadlineFor(delay, now)
			}
		case "verbosity":
			_, _, _ = parseVerbosityB(args) // must not panic
		case "get", "gets":
			// Retrieval keys are validated in the handler, not a parser;
			// exercise the validator directly.
			for _, k := range args {
				validKeyB(k)
			}
		}
	})
}

// isASCIIBytes reports whether every byte is < 0x80. The byte tokenizer
// intentionally diverges from strings.Fields on multi-byte UTF-8
// whitespace (memcached splits on ASCII whitespace only), so the
// differential holds only over ASCII input.
func isASCIIBytes(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// FuzzTokenizeDifferential proves the zero-alloc tokenizer and byte
// parsers agree with the legacy string path on every ASCII input: same
// fields, and for every command the same accept/reject verdict, the
// same CLIENT_ERROR classification (bad-format vs bad-delta), and the
// same parsed scalars.
func FuzzTokenizeDifferential(f *testing.F) {
	for _, s := range parserFuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		if !isASCIIBytes(line) {
			return
		}
		ref := splitCommand(line)
		got := tokenize([]byte(line), nil)
		if len(ref) != len(got) {
			t.Fatalf("tokenize: %d fields, strings.Fields: %d, from %q", len(got), len(ref), line)
		}
		for i := range ref {
			if ref[i] != string(got[i]) {
				t.Fatalf("field %d: tokenize %q, strings.Fields %q, from %q", i, got[i], ref[i], line)
			}
		}
		if len(ref) == 0 {
			return
		}
		cmd, refArgs, gotArgs := ref[0], ref[1:], got[1:]
		switch cmd {
		case "set", "add", "replace", "append", "prepend", "cas":
			rsa, rerr := parseStorage(refArgs, cmd == "cas")
			gsa, gerr := parseStorageB(gotArgs, cmd == "cas")
			if (rerr == nil) != (gerr == nil) {
				t.Fatalf("storage verdict: ref err=%v, byte err=%v, from %q", rerr, gerr, line)
			}
			if rerr == nil {
				if rsa.key != string(gsa.key) || rsa.flags != gsa.flags ||
					rsa.exptime != gsa.exptime || rsa.nbytes != gsa.nbytes ||
					rsa.casUnique != gsa.casUnique || rsa.noreply != gsa.noreply {
					t.Fatalf("storage args diverge: ref %+v, byte %+v, from %q", rsa, gsa, line)
				}
			}
		case "incr", "decr":
			rkey, rdelta, rnr, rerr := parseIncrDecr(refArgs)
			gkey, gdelta, gnr, gerr := parseIncrDecrB(gotArgs)
			if rerr != gerr { // errBadLine vs errBadDelta classification must match exactly
				t.Fatalf("incr verdict: ref %v, byte %v, from %q", rerr, gerr, line)
			}
			if rerr == nil && (rkey != string(gkey) || rdelta != gdelta || rnr != gnr) {
				t.Fatalf("incr args diverge from %q", line)
			}
		case "delete":
			rkey, rnr, rerr := parseDelete(refArgs)
			gkey, gnr, gerr := parseDeleteB(gotArgs)
			if (rerr == nil) != (gerr == nil) || (rerr == nil && (rkey != string(gkey) || rnr != gnr)) {
				t.Fatalf("delete diverges: ref (%q,%v,%v) byte (%q,%v,%v) from %q", rkey, rnr, rerr, gkey, gnr, gerr, line)
			}
		case "touch":
			rkey, rexp, rnr, rerr := parseTouch(refArgs)
			gkey, gexp, gnr, gerr := parseTouchB(gotArgs)
			if (rerr == nil) != (gerr == nil) || (rerr == nil && (rkey != string(gkey) || rexp != gexp || rnr != gnr)) {
				t.Fatalf("touch diverges from %q", line)
			}
		case "gat", "gats":
			rexp, rkeys, rerr := parseGat(refArgs)
			gexp, gkeys, gerr := parseGatB(gotArgs)
			if (rerr == nil) != (gerr == nil) {
				t.Fatalf("gat verdict: ref %v, byte %v, from %q", rerr, gerr, line)
			}
			if rerr == nil {
				if rexp != gexp || len(rkeys) != len(gkeys) {
					t.Fatalf("gat diverges from %q", line)
				}
				for i := range rkeys {
					if rkeys[i] != string(gkeys[i]) {
						t.Fatalf("gat key %d diverges from %q", i, line)
					}
				}
			}
		case "flush_all":
			rdelay, rnr, rerr := parseFlushAll(refArgs)
			gdelay, gnr, gerr := parseFlushAllB(gotArgs)
			if (rerr == nil) != (gerr == nil) || (rerr == nil && (rdelay != gdelay || rnr != gnr)) {
				t.Fatalf("flush_all diverges from %q", line)
			}
		case "verbosity":
			rlvl, rnr, rerr := parseVerbosity(refArgs)
			glvl, gnr, gerr := parseVerbosityB(gotArgs)
			if (rerr == nil) != (gerr == nil) || (rerr == nil && (rlvl != glvl || rnr != gnr)) {
				t.Fatalf("verbosity diverges from %q", line)
			}
		}
		// Key validity must agree field-by-field regardless of command.
		for i := range refArgs {
			if validKey(refArgs[i]) != validKeyB(gotArgs[i]) {
				t.Fatalf("validKey diverges on %q from %q", refArgs[i], line)
			}
		}
		// The numeric-value parsers agree on space-free input (the byte
		// variant additionally strips compat-mode trailing padding).
		if !strings.HasSuffix(line, " ") {
			rv, rok := parseNumericValue([]byte(line))
			gv, gok := parseNumericValueB([]byte(line))
			if rok != gok || (rok && rv != gv) {
				t.Fatalf("numeric parse diverges on %q: ref (%d,%v) byte (%d,%v)", line, rv, rok, gv, gok)
			}
		}
	})
}
