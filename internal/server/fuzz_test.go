package server

// FuzzParseCommand fuzzes the ASCII command parsers with arbitrary
// lines — torn commands, huge integers, embedded CR/LF, over-long keys —
// seeded from the golden conformance transcripts. The invariants: no
// parser panics, and no parser ever *accepts* an illegal key (the
// 250-byte/no-whitespace/no-control rule), a negative byte count, or an
// exptime the deadline converter can't normalize.

import (
	"bufio"
	"strings"
	"testing"
	"time"
)

func FuzzParseCommand(f *testing.F) {
	// Seeds from the golden transcripts, plus torn/adversarial shapes.
	for _, s := range []string{
		"set foo 42 0 5",
		"set quiet 0 0 2 noreply",
		"add fresh 7 0 2",
		"replace nosuch 0 0 2",
		"cas n 1 0 1 1",
		"cas n 0 0 1 2 noreply",
		"append s 0 0 2",
		"prepend s 7 100 2",
		"incr n 18446744073709551615",
		"incr n xyz",
		"decr miss 1 noreply",
		"delete foo",
		"delete quiet noreply",
		"touch k -1",
		"touch k2 -1 noreply",
		"gat 100 g1 miss g2",
		"gats 100 g1",
		"get " + strings.Repeat("k", 250),
		"get " + strings.Repeat("k", 251),
		"set k 0 99999999999999999999 1",
		"set k 0 -9223372036854775808 1",
		"set k 0 2592001 4294967295",
		"incr k -5",
		"touch k 9223372036854775807",
		"gat -1",
		"cas k 1 2 3",
		"set",
		"",
		"set k\r\n0 0 5",
		"set k\x00 0 0 5",
		"incr \x7f 1",
		"flush_all",
		"flush_all 100",
		"flush_all 0 noreply",
		"flush_all 2592001",
		"flush_all -1",
		"flush_all 9223372036854775808",
		"verbosity 1",
		"verbosity 2 noreply",
		"verbosity",
		"verbosity abc",
		// Over-length lines: the bounded reader must reject these without
		// buffering, and the parsers must stay panic-free on what slips
		// through as fields.
		"get " + strings.Repeat("a", 4096),
		"set " + strings.Repeat("b", 3000) + " 0 0 5",
		strings.Repeat("c", 5000),
	} {
		f.Add(s)
	}
	now := time.Unix(1_700_000_000, 0)
	f.Fuzz(func(t *testing.T, line string) {
		// The bounded line reader must either reject an over-length line
		// or hand back one at most max bytes long — never buffer past the
		// cap (a tiny bufio window forces the multi-fragment path).
		const maxLine = 64
		r := bufio.NewReaderSize(strings.NewReader(line+"\n"), maxLine+2)
		if s, err := readLineDirect(r, maxLine); err == nil && len(s) > maxLine+1 {
			t.Errorf("readLineDirect returned %d bytes past the %d cap from %q", len(s), maxLine, line)
		}
		fields := splitCommand(line)
		if len(fields) == 0 {
			return
		}
		mustBeValid := func(key string) {
			if !validKey(key) {
				t.Errorf("parser accepted illegal key %q from line %q", key, line)
			}
		}
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "set", "add", "replace", "append", "prepend", "cas":
			sa, err := parseStorage(args, cmd == "cas")
			if err == nil {
				mustBeValid(sa.key)
				if sa.nbytes < 0 {
					t.Errorf("parser accepted negative byte count %d from %q", sa.nbytes, line)
				}
				deadlineFor(sa.exptime, now) // must not panic
			}
		case "incr", "decr":
			key, _, _, err := parseIncrDecr(args)
			// errBadDelta still carries a validated key (the command line
			// itself was well-formed).
			if err == nil || err == errBadDelta {
				mustBeValid(key)
			}
		case "delete":
			key, _, err := parseDelete(args)
			if err == nil {
				mustBeValid(key)
			}
		case "touch":
			key, exptime, _, err := parseTouch(args)
			if err == nil {
				mustBeValid(key)
				deadlineFor(exptime, now)
			}
		case "gat", "gats":
			exptime, keys, err := parseGat(args)
			if err == nil {
				if len(keys) == 0 {
					t.Errorf("parseGat accepted a keyless line %q", line)
				}
				for _, k := range keys {
					mustBeValid(k)
				}
				deadlineFor(exptime, now)
			}
		case "flush_all":
			delay, _, err := parseFlushAll(args)
			if err == nil {
				if delay < 0 {
					t.Errorf("parseFlushAll accepted negative delay %d from %q", delay, line)
				}
				deadlineFor(delay, now)
			}
		case "verbosity":
			_, _, _ = parseVerbosity(args) // must not panic
		case "get", "gets":
			// Retrieval keys are validated in the handler, not a parser;
			// exercise the validator directly.
			for _, k := range args {
				validKey(k)
			}
		}
	})
}
