package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alaska/internal/kv"
	"alaska/internal/stats"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the TCP listen address (e.g. ":11211").
	Addr string
	// MaxValueSize rejects larger set payloads with SERVER_ERROR
	// (memcached's -I limit). Default 1 MiB.
	MaxValueSize int
	// MaintainInterval is the background maintenance goroutine's tick.
	// Default 50 ms.
	MaintainInterval time.Duration
	// DefragFragHigh triggers a pause-free ConcurrentDefragPass when the
	// Anchorage heap's fragmentation (extent/active) exceeds it. Default
	// 1.3. Ignored on non-Anchorage backends.
	DefragFragHigh float64
	// DefragBudget bounds bytes moved per concurrent pass. Default 1 MiB.
	DefragBudget uint64
	// Version is reported by the `version` command and `stats`.
	Version string
	// Clock supplies the wall-clock time used for TTL decisions — exptime
	// normalization here and expiry checks in the store (the server
	// installs it as the store's Clock). Default time.Now; swap in a fake
	// to make expiry deterministically testable.
	Clock func() time.Time
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxValueSize == 0 {
		out.MaxValueSize = 1 << 20
	}
	if out.MaintainInterval == 0 {
		out.MaintainInterval = 50 * time.Millisecond
	}
	if out.DefragFragHigh == 0 {
		out.DefragFragHigh = 1.3
	}
	if out.DefragBudget == 0 {
		out.DefragBudget = 1 << 20
	}
	if out.Version == "" {
		out.Version = "0.3.0-alaska"
	}
	if out.Clock == nil {
		out.Clock = time.Now
	}
	return out
}

// Server is a memcached-ASCII-protocol server over a kv.ShardedStore.
type Server struct {
	cfg   Config
	store *kv.ShardedStore
	// anch is non-nil when the store runs on the Anchorage backend; the
	// maintenance loop then drives defragmentation under live traffic.
	anch *kv.AnchorageBackend

	ln    net.Listener
	quit  chan struct{}
	wg    sync.WaitGroup // maintenance + accept loop
	connW sync.WaitGroup // one per live connection

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	start time.Time

	// Counters surfaced by `stats`.
	currConns      atomic.Int64
	totalConns     atomic.Int64
	protocolErrors atomic.Int64
	casCounter     atomic.Uint64
	barrierPauseNs atomic.Int64
	lat            *stats.LatencyRecorder

	closeOnce sync.Once
}

// New builds a server over the store. The store's backend decides the
// maintenance behavior: on Anchorage, the §4.3 control loop plus
// pause-free concurrent passes; on other backends, whatever Maintain
// does (meshing rounds, nothing for malloc).
func New(store *kv.ShardedStore, cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		store: store,
		quit:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
		lat:   stats.NewLatencyRecorder(),
	}
	if ab, ok := store.Backend().(*kv.AnchorageBackend); ok {
		s.anch = ab
	}
	// One clock for exptime normalization and the store's expiry checks:
	// a value stored "for 5 seconds" dies exactly when both agree it does.
	store.Clock = s.cfg.Clock
	return s
}

// Listen binds the configured address. Addr() reports the bound address
// afterwards (useful with ":0").
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve runs the accept loop until Shutdown. Listen must have been
// called. It always returns nil after a clean shutdown.
func (s *Server) Serve() error {
	s.start = time.Now()
	s.wg.Add(1)
	go s.maintainLoop()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.totalConns.Add(1)
		s.currConns.Add(1)
		s.connW.Add(1)
		go s.handleConn(c)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown stops accepting, waits up to drain for in-flight connections
// to finish their current commands and disconnect, then force-closes the
// stragglers. Safe to call multiple times.
func (s *Server) Shutdown(drain time.Duration) error {
	s.closeOnce.Do(func() {
		close(s.quit)
		if s.ln != nil {
			_ = s.ln.Close()
		}
		done := make(chan struct{})
		go func() {
			s.connW.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(drain):
			// Connections idling in a read only notice via conn close.
			s.mu.Lock()
			for c := range s.conns {
				_ = c.Close()
			}
			s.mu.Unlock()
			<-done
		}
		s.wg.Wait()
	})
	return nil
}

// maintainLoop is the background maintenance goroutine: it drives the
// backend's §4.3 control loop on wall-clock time (barrier passes,
// sub-heap truncation, deferred-block drain) and, on the Anchorage
// backend, additionally runs the §7 pause-free ConcurrentDefragPass
// whenever live fragmentation exceeds DefragFragHigh — compaction under
// traffic with no stop-the-world.
func (s *Server) maintainLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.MaintainInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
			// Store-level Maintain: the backend's control loop plus one
			// expiry-sweep increment, so dead values release heap (and
			// un-hostage their sub-heaps for truncation) even if never
			// touched again.
			if pause := s.store.Maintain(time.Since(s.start)); pause > 0 {
				s.barrierPauseNs.Add(int64(pause))
			}
			if s.anch != nil {
				if s.anch.Svc.Fragmentation() > s.cfg.DefragFragHigh {
					s.anch.Svc.ConcurrentDefragPass(s.cfg.DefragBudget)
				}
				// Return vacated blocks whose grace period has elapsed.
				s.anch.Svc.DrainDeferred()
			}
		}
	}
}

// connHandler is the per-connection state: its own kv.Session (an
// rt.Thread under Alaska), buffered reader/writer, and the blocked-read
// discipline — socket waits happen in the thread's external state so a
// barrier never waits on an idle connection, and a safepoint is polled
// between commands so barriers make progress under load.
type connHandler struct {
	srv  *Server
	c    net.Conn
	sess kv.Session
	r    *bufio.Reader
	w    *bufio.Writer
}

func (s *Server) handleConn(c net.Conn) {
	defer s.connW.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.currConns.Add(-1)
		_ = c.Close()
	}()
	h := &connHandler{
		srv:  s,
		c:    c,
		sess: s.store.NewSession(),
		r:    bufio.NewReaderSize(c, 16<<10),
		w:    bufio.NewWriterSize(c, 16<<10),
	}
	defer h.sess.Close()
	for {
		line, err := h.readLine()
		if err != nil {
			return // EOF or connection failure
		}
		start := time.Now()
		quit, err := h.dispatch(line)
		if err != nil {
			return // I/O failure mid-command
		}
		s.lat.Record(time.Since(start))
		// Flush unless a complete pipelined command is already buffered,
		// so a burst of pipelined requests is answered in one write. (A
		// *partial* line must not gate the flush: its sender may be
		// waiting on this response before finishing it.)
		if !h.commandPending() {
			if err := h.flush(); err != nil {
				return
			}
		}
		// Safepoint between commands: this is where barrier rendezvous
		// happens for busy connections.
		h.sess.Safepoint()
		if quit {
			_ = h.flush()
			return
		}
	}
}

// commandPending reports whether a complete command line is already
// sitting in the read buffer.
func (h *connHandler) commandPending() bool {
	n := h.r.Buffered()
	if n == 0 {
		return false
	}
	peek, err := h.r.Peek(n)
	return err == nil && bytes.IndexByte(peek, '\n') >= 0
}

// readLine reads one CRLF-terminated command line. If the line is not
// already buffered, the wait happens in the session's idle (external)
// state so stop-the-world barriers don't wait for this connection.
func (h *connHandler) readLine() (string, error) {
	if h.commandPending() {
		return readLineDirect(h.r)
	}
	h.sess.EnterIdle()
	defer h.sess.ExitIdle()
	return readLineDirect(h.r)
}

func readLineDirect(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSuffix(strings.TrimSuffix(line, "\n"), "\r"), nil
}

// readBody reads a storage command's n-byte data block plus its CRLF
// terminator, idling the session if the bytes aren't buffered yet.
// It returns the data and whether the terminator was well-formed.
func (h *connHandler) readBody(n int) ([]byte, bool, error) {
	buf := make([]byte, n+2)
	if h.r.Buffered() < len(buf) {
		h.sess.EnterIdle()
		_, err := io.ReadFull(h.r, buf)
		h.sess.ExitIdle()
		if err != nil {
			return nil, false, err
		}
	} else if _, err := io.ReadFull(h.r, buf); err != nil {
		return nil, false, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, false, nil
	}
	return buf[:n], true, nil
}

// discardBody consumes an n-byte data block plus terminator without
// holding it in memory (the oversized-value path, where n is
// client-controlled and may be huge). Returns whether the terminator was
// well-formed.
func (h *connHandler) discardBody(n int) (bool, error) {
	h.sess.EnterIdle()
	defer h.sess.ExitIdle()
	if _, err := io.CopyN(io.Discard, h.r, int64(n)); err != nil {
		return false, err
	}
	var term [2]byte
	if _, err := io.ReadFull(h.r, term[:]); err != nil {
		return false, err
	}
	return term[0] == '\r' && term[1] == '\n', nil
}

// flush drains the write buffer; a stalled client's backpressure is
// absorbed in the idle state.
func (h *connHandler) flush() error {
	if h.w.Buffered() == 0 {
		return nil
	}
	h.sess.EnterIdle()
	defer h.sess.ExitIdle()
	return h.w.Flush()
}

// writeFull writes p to the response buffer. When p does not fit in the
// buffer's free space, bufio flushes to the socket mid-Write; that flush
// can block on a slow-reading client, so it must happen in the idle
// state or a pending barrier would wait on this thread forever.
func (h *connHandler) writeFull(p []byte) error {
	if h.w.Available() >= len(p) {
		_, err := h.w.Write(p)
		return err
	}
	h.sess.EnterIdle()
	defer h.sess.ExitIdle()
	_, err := h.w.Write(p)
	return err
}

func (h *connHandler) reply(line string) error {
	return h.writeFull([]byte(line + crlf))
}

// replyError counts a protocol error and sends the error line.
func (h *connHandler) replyError(line string) error {
	h.srv.protocolErrors.Add(1)
	return h.reply(line)
}

// dispatch executes one command line. The returned error is an I/O
// failure (drop the connection); protocol errors are answered in-band.
func (h *connHandler) dispatch(line string) (quit bool, err error) {
	fields := splitCommand(line)
	if len(fields) == 0 {
		return false, h.replyError(respError)
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "get", "gets":
		return false, h.doGet(args, cmd == "gets")
	case "gat", "gats":
		return false, h.doGat(args, cmd == "gats")
	case "set", "add", "replace", "cas", "append", "prepend":
		return false, h.doStore(cmd, args)
	case "incr", "decr":
		return false, h.doIncrDecr(args, cmd == "incr")
	case "delete":
		return false, h.doDelete(args)
	case "touch":
		return false, h.doTouch(args)
	case "stats":
		return false, h.doStats()
	case "version":
		return false, h.reply("VERSION " + h.srv.cfg.Version)
	case "quit":
		return true, nil
	default:
		return false, h.replyError(respError)
	}
}

// emitValue writes one VALUE line (+ data block) for a stored
// representation, decoding the flags/cas header. ok is false when the
// header failed to decode: the SERVER_ERROR line has already been sent
// and the caller must abort the retrieval (no further VALUEs, no END) —
// interleaving an error line between VALUE blocks would be unframeable.
func (h *connHandler) emitValue(key string, stored []byte, withCAS bool) (ok bool, err error) {
	flags, cas, data, derr := decodeValue(stored)
	if derr != nil {
		return false, h.replyError("SERVER_ERROR " + derr.Error())
	}
	var hdr string
	if withCAS {
		hdr = fmt.Sprintf("VALUE %s %d %d %d", key, flags, len(data), cas)
	} else {
		hdr = fmt.Sprintf("VALUE %s %d %d", key, flags, len(data))
	}
	if err := h.reply(hdr); err != nil {
		return false, err
	}
	if err := h.writeFull(data); err != nil {
		return false, err
	}
	return true, h.writeFull([]byte(crlf))
}

func (h *connHandler) doGet(keys []string, withCAS bool) error {
	if len(keys) == 0 {
		return h.replyError(respBadFormat)
	}
	for _, key := range keys {
		if !validKey(key) {
			return h.replyError(respBadFormat)
		}
		stored, err := h.srv.store.Get(h.sess, key)
		if err != nil {
			return h.replyError("SERVER_ERROR " + err.Error())
		}
		if stored == nil {
			continue // miss: omitted from the response
		}
		ok, err := h.emitValue(key, stored, withCAS)
		if err != nil || !ok {
			return err
		}
	}
	return h.reply(respEnd)
}

// doGat is get-and-touch: retrieval that also moves each hit key's expiry
// deadline, as one critical section per key.
func (h *connHandler) doGat(args []string, withCAS bool) error {
	exptime, keys, perr := parseGat(args)
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	deadline := deadlineFor(exptime, h.srv.cfg.Clock())
	for _, key := range keys {
		stored, err := h.srv.store.GetAndTouch(h.sess, key, deadline)
		if err != nil {
			return h.replyError("SERVER_ERROR " + err.Error())
		}
		if stored == nil {
			continue
		}
		ok, err := h.emitValue(key, stored, withCAS)
		if err != nil || !ok {
			return err
		}
	}
	return h.reply(respEnd)
}

func (h *connHandler) doStore(cmd string, args []string) error {
	sa, perr := parseStorage(args, cmd == "cas")
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	if sa.nbytes > h.srv.cfg.MaxValueSize {
		// Consume and discard the oversized body — without buffering it —
		// to stay in sync, then report.
		ok, err := h.discardBody(sa.nbytes)
		if err != nil {
			return err
		}
		if !ok {
			return h.replyError(respBadChunk)
		}
		return h.replyError(respTooLarge)
	}
	data, ok, err := h.readBody(sa.nbytes)
	if err != nil {
		return err
	}
	if !ok {
		// The data block wasn't CRLF-terminated: the stream is desynced.
		// Report and resync at the next newline, memcached-style. The
		// error is flushed first and the resync read idles the session:
		// a client that goes quiet here must neither wait on an
		// unflushed reply nor stall stop-the-world barriers.
		if err := h.replyError(respBadChunk); err != nil {
			return err
		}
		if err := h.flush(); err != nil {
			return err
		}
		if _, err := h.readLine(); err != nil {
			return err
		}
		return nil
	}
	resp, errLine, err := h.executeStore(cmd, sa, data)
	if err != nil {
		if sa.noreply {
			h.srv.protocolErrors.Add(1)
			return nil
		}
		// Plain stores fail on allocation (memcached's canonical line);
		// an RMW failure may equally be a read fault mid-Apply, so
		// surface the real error there.
		if cmd == "set" || cmd == "add" || cmd == "replace" {
			return h.replyError(respOutOfMemory)
		}
		return h.replyError("SERVER_ERROR " + err.Error())
	}
	if sa.noreply {
		if errLine {
			h.srv.protocolErrors.Add(1)
		}
		return nil
	}
	if errLine {
		return h.replyError(resp)
	}
	return h.reply(resp)
}

// executeStore runs a parsed storage command against the store and
// returns the response line; errLine marks an in-band error reply
// (oversized concatenation, header decode failure) that must be counted
// in protocol_errors. Every variant consumes a fresh cas unique: any
// successful store makes previously handed-out uniques stale, which is
// exactly the cas contract.
func (h *connHandler) executeStore(cmd string, sa storageArgs, data []byte) (resp string, errLine bool, err error) {
	newCas := h.srv.casCounter.Add(1)
	deadline := deadlineFor(sa.exptime, h.srv.cfg.Clock())
	switch cmd {
	case "set", "add", "replace":
		mode := kv.SetAlways
		switch cmd {
		case "add":
			mode = kv.SetAdd
		case "replace":
			mode = kv.SetReplace
		}
		stored, serr := h.srv.store.SetEx(h.sess, sa.key, encodeValue(sa.flags, newCas, data), mode, deadline)
		if serr != nil {
			return "", false, serr
		}
		if stored {
			return respStored, false, nil
		}
		return respNotStored, false, nil
	case "cas":
		// Compare the stored unique and swap under the shard lock: the
		// read, the comparison, and the write-back are one critical
		// section, so exactly one of N racing cas commands with the same
		// unique can win.
		resp = respStored
		err = h.srv.store.Apply(h.sess, sa.key, func(old []byte, found bool) kv.ApplyOp {
			if !found {
				resp = respNotFound
				return kv.ApplyOp{Stat: kv.StatCasMiss}
			}
			_, oldCas, _, derr := decodeValue(old)
			if derr != nil {
				resp, errLine = "SERVER_ERROR "+derr.Error(), true
				return kv.ApplyOp{}
			}
			if oldCas != sa.casUnique {
				resp = respExists
				return kv.ApplyOp{Stat: kv.StatCasBadval}
			}
			return kv.ApplyOp{
				Verdict: kv.ApplyStore,
				Value:   encodeValue(sa.flags, newCas, data),
				Expire:  deadline,
				Stat:    kv.StatCasHit,
			}
		})
		return resp, errLine, err
	case "append", "prepend":
		// Concatenation keeps the original flags and TTL (memcached
		// ignores the flags/exptime arguments of append/prepend) but
		// issues a new cas unique.
		resp = respStored
		err = h.srv.store.Apply(h.sess, sa.key, func(old []byte, found bool) kv.ApplyOp {
			if !found {
				resp = respNotStored
				return kv.ApplyOp{}
			}
			oldFlags, _, oldData, derr := decodeValue(old)
			if derr != nil {
				resp, errLine = "SERVER_ERROR "+derr.Error(), true
				return kv.ApplyOp{}
			}
			// The merged body must respect the item size cap too: each
			// append individually fitting must not let an item grow
			// without bound (memcached rejects the concatenation the
			// same way).
			if len(oldData)+len(data) > h.srv.cfg.MaxValueSize {
				resp, errLine = respTooLarge, true
				return kv.ApplyOp{}
			}
			merged := make([]byte, 0, len(oldData)+len(data))
			if cmd == "append" {
				merged = append(append(merged, oldData...), data...)
			} else {
				merged = append(append(merged, data...), oldData...)
			}
			return kv.ApplyOp{
				Verdict:    kv.ApplyStore,
				Value:      encodeValue(oldFlags, newCas, merged),
				KeepExpire: true,
			}
		})
		return resp, errLine, err
	}
	return "", false, fmt.Errorf("server: unreachable storage command %q", cmd)
}

// doIncrDecr implements incr/decr: 64-bit unsigned arithmetic on the
// decimal value, read-modify-write as one critical section. incr wraps at
// 2^64; decr clamps at 0 (memcached's underflow rule). The new value
// keeps the item's flags and TTL but gets a fresh cas unique.
func (h *connHandler) doIncrDecr(args []string, incr bool) error {
	key, delta, noreply, perr := parseIncrDecr(args)
	if perr == errBadDelta {
		if noreply {
			h.srv.protocolErrors.Add(1)
			return nil
		}
		return h.replyError(respBadDelta)
	}
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	newCas := h.srv.casCounter.Add(1)
	hitStat, missStat := kv.StatIncrHit, kv.StatIncrMiss
	if !incr {
		hitStat, missStat = kv.StatDecrHit, kv.StatDecrMiss
	}
	var resp string
	errReply := false
	err := h.srv.store.Apply(h.sess, key, func(old []byte, found bool) kv.ApplyOp {
		if !found {
			resp = respNotFound
			return kv.ApplyOp{Stat: missStat}
		}
		flags, _, data, derr := decodeValue(old)
		if derr != nil {
			resp, errReply = "SERVER_ERROR "+derr.Error(), true
			return kv.ApplyOp{}
		}
		val, ok := parseNumericValue(data)
		if !ok {
			resp, errReply = respNonNumeric, true
			return kv.ApplyOp{}
		}
		var next uint64
		if incr {
			next = val + delta // wraps modulo 2^64, like memcached
		} else if delta > val {
			next = 0 // underflow clamps
		} else {
			next = val - delta
		}
		resp = strconv.FormatUint(next, 10)
		return kv.ApplyOp{
			Verdict:    kv.ApplyStore,
			Value:      encodeValue(flags, newCas, []byte(resp)),
			KeepExpire: true,
			Stat:       hitStat,
		}
	})
	if err != nil {
		// An Apply failure here is a read or write-back fault, not
		// necessarily memory pressure: surface the real error.
		if noreply {
			h.srv.protocolErrors.Add(1)
			return nil
		}
		return h.replyError("SERVER_ERROR " + err.Error())
	}
	if noreply {
		if errReply {
			h.srv.protocolErrors.Add(1)
		}
		return nil
	}
	if errReply {
		return h.replyError(resp)
	}
	return h.reply(resp)
}

// doTouch updates a key's expiry deadline without touching its value.
func (h *connHandler) doTouch(args []string) error {
	key, exptime, noreply, perr := parseTouch(args)
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	deadline := deadlineFor(exptime, h.srv.cfg.Clock())
	found, err := h.srv.store.Touch(h.sess, key, deadline)
	if err != nil {
		return h.replyError("SERVER_ERROR " + err.Error())
	}
	if noreply {
		return nil
	}
	if found {
		return h.reply(respTouched)
	}
	return h.reply(respNotFound)
}

func (h *connHandler) doDelete(args []string) error {
	key, noreply, perr := parseDelete(args)
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	existed, err := h.srv.store.Del(h.sess, key)
	if err != nil {
		return h.replyError("SERVER_ERROR " + err.Error())
	}
	if noreply {
		return nil
	}
	if existed {
		return h.reply(respDeleted)
	}
	return h.reply(respNotFound)
}

// statLine is one `STAT name value` row.
type statLine struct {
	name  string
	value string
}

// StatsSnapshot assembles the server's full stats view: store counters,
// memory metrics, connection counts, command latency percentiles, and —
// on Anchorage — the defragmentation counters that show the heap being
// compacted under traffic.
func (s *Server) StatsSnapshot() []struct{ Name, Value string } {
	lines := s.statLines()
	out := make([]struct{ Name, Value string }, len(lines))
	for i, l := range lines {
		out[i] = struct{ Name, Value string }{l.name, l.value}
	}
	return out
}

func (s *Server) statLines() []statLine {
	snap := s.store.Snapshot()
	uptime := time.Since(s.start)
	lines := []statLine{
		{"version", s.cfg.Version},
		{"backend", s.store.Backend().Name()},
		{"uptime_s", fmt.Sprintf("%.1f", uptime.Seconds())},
		{"curr_connections", fmt.Sprintf("%d", s.currConns.Load())},
		{"total_connections", fmt.Sprintf("%d", s.totalConns.Load())},
		{"cmd_get", fmt.Sprintf("%d", snap.Gets)},
		{"cmd_set", fmt.Sprintf("%d", snap.Sets)},
		{"get_hits", fmt.Sprintf("%d", snap.Hits)},
		{"get_misses", fmt.Sprintf("%d", snap.Misses)},
		{"delete_hits", fmt.Sprintf("%d", snap.DeleteHits)},
		{"delete_misses", fmt.Sprintf("%d", snap.DeleteMisses)},
		{"cas_hits", fmt.Sprintf("%d", snap.CasHits)},
		{"cas_badval", fmt.Sprintf("%d", snap.CasBadval)},
		{"cas_misses", fmt.Sprintf("%d", snap.CasMisses)},
		{"incr_hits", fmt.Sprintf("%d", snap.IncrHits)},
		{"incr_misses", fmt.Sprintf("%d", snap.IncrMisses)},
		{"decr_hits", fmt.Sprintf("%d", snap.DecrHits)},
		{"decr_misses", fmt.Sprintf("%d", snap.DecrMisses)},
		{"touch_hits", fmt.Sprintf("%d", snap.TouchHits)},
		{"touch_misses", fmt.Sprintf("%d", snap.TouchMisses)},
		{"expired", fmt.Sprintf("%d", snap.Expired)},
		{"expiry_sweeps", fmt.Sprintf("%d", snap.ExpirySweeps)},
		{"evictions", fmt.Sprintf("%d", snap.Evictions)},
		{"curr_items", fmt.Sprintf("%d", snap.Keys)},
		{"bytes", fmt.Sprintf("%d", snap.Used)},
		{"rss_bytes", fmt.Sprintf("%d", snap.RSS)},
		{"protocol_errors", fmt.Sprintf("%d", s.protocolErrors.Load())},
		{"latency_mean_us", fmt.Sprintf("%.1f", float64(s.lat.Mean().Nanoseconds())/1e3)},
		{"latency_p50_us", fmt.Sprintf("%.1f", float64(s.lat.Percentile(50).Nanoseconds())/1e3)},
		{"latency_p99_us", fmt.Sprintf("%.1f", float64(s.lat.Percentile(99).Nanoseconds())/1e3)},
		{"latency_p999_us", fmt.Sprintf("%.1f", float64(s.lat.Percentile(99.9).Nanoseconds())/1e3)},
	}
	if snap.Used > 0 {
		lines = append(lines, statLine{"fragmentation", fmt.Sprintf("%.3f", float64(snap.RSS)/float64(snap.Used))})
	}
	if s.anch != nil {
		m := s.anch.Svc.MetricsSnapshot()
		lines = append(lines,
			statLine{"defrag_concurrent_passes", fmt.Sprintf("%d", m.ConcurrentPasses)},
			statLine{"defrag_barrier_passes", fmt.Sprintf("%d", m.Passes)},
			statLine{"defrag_barrier_pause_us", fmt.Sprintf("%.1f", float64(s.barrierPauseNs.Load())/1e3)},
			statLine{"defrag_moved_bytes", fmt.Sprintf("%d", m.MovedBytes)},
			statLine{"defrag_move_aborts", fmt.Sprintf("%d", m.MoveAborts)},
			statLine{"defrag_truncated_bytes", fmt.Sprintf("%d", m.Truncated)},
			statLine{"defrag_deferred_blocks", fmt.Sprintf("%d", m.DeferredBlocks)},
			statLine{"heap_fragmentation", fmt.Sprintf("%.3f", s.anch.Svc.Fragmentation())},
		)
	}
	return lines
}

func (h *connHandler) doStats() error {
	for _, l := range h.srv.statLines() {
		if err := h.reply("STAT " + l.name + " " + l.value); err != nil {
			return err
		}
	}
	return h.reply(respEnd)
}
