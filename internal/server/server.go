package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"alaska/internal/health"
	"alaska/internal/kv"
	"alaska/internal/logx"
	"alaska/internal/stats"
	"alaska/internal/wal"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the TCP listen address (e.g. ":11211").
	Addr string
	// MaxValueSize rejects larger set payloads with SERVER_ERROR
	// (memcached's -I limit). Default 1 MiB.
	MaxValueSize int
	// MaintainInterval is the background maintenance goroutine's tick.
	// Default 50 ms.
	MaintainInterval time.Duration
	// DefragFragHigh triggers a pause-free ConcurrentDefragPass when the
	// Anchorage heap's fragmentation (extent/active) exceeds it. Default
	// 1.3. Ignored on non-Anchorage backends.
	DefragFragHigh float64
	// DefragBudget bounds bytes moved per concurrent pass. Default 1 MiB.
	DefragBudget uint64
	// Version is reported by the `version` command and `stats`.
	Version string
	// Clock supplies the wall-clock time used for TTL decisions — exptime
	// normalization here and expiry checks in the store (the server
	// installs it as the store's Clock). It also drives the idle reaper's
	// notion of "now". Default time.Now; swap in a fake to make expiry and
	// idle reaping deterministically testable.
	Clock func() time.Time

	// MaxConns caps concurrent connections (memcached's -c): at the cap
	// the accept loop simply stops accepting — connections queue in the
	// kernel's listen backlog — and resumes when a slot frees. Deferred
	// accepts are counted in listen_disabled_num. 0 = unlimited.
	MaxConns int
	// IdleTimeout reaps a connection that has not completed a command
	// line (or made write progress) for this long — a slow-loris socket
	// is closed instead of pinning its kv.Session and connection slot
	// forever. Counted in idle_kicks. 0 = never reap.
	IdleTimeout time.Duration
	// WriteTimeout is the deadline applied to every socket write (each
	// bufio flush and write-through): a client that stops reading its
	// own responses is disconnected once the kernel buffers fill and a
	// write misses the deadline. Counted in slow_client_kicks. 0 = no
	// deadline.
	WriteTimeout time.Duration
	// MaxReplyBacklog caps reply bytes produced between successful
	// drains: past the budget the handler stops generating and forces a
	// (deadline-bounded) flush, so a client that pipelines retrievals
	// without reading them is made to drain — or disconnect — every
	// budget's worth of bytes instead of being streamed at from an
	// unbounded queue. A client that is reading absorbs the forced flush
	// and is unaffected. Default 64 MiB; -1 disables the cap.
	MaxReplyBacklog int
	// MaxLineLen bounds one command line (memcached caps these at 2 KiB);
	// an over-length line is answered with CLIENT_ERROR line too long and
	// the stream resynced at the next newline, instead of growing the
	// read buffer without bound. Default 2048.
	MaxLineLen int
	// SlowOpThreshold records any command slower than this into the
	// slow-op ring (`stats slow`, /debug/slowops on the admin port).
	// Default 10ms; negative disables capture entirely.
	SlowOpThreshold time.Duration
	// DisableInstrumentation turns off the per-opcode latency
	// histograms, byte counters, and slow-op capture (the aggregate
	// latency recorder behind `stats` stays on). Exists so
	// alaskad-bench can measure the instrumented-vs-bare hot-path
	// delta; production servers leave it false.
	DisableInstrumentation bool
	// Logger receives the server's leveled log output: errors always,
	// connection churn at debug (the wire `verbosity` command moves the
	// level at runtime). nil = silent.
	Logger *logx.Logger
	// WAL, when non-nil, is the persistence layer (already opened,
	// replayed, started, and attached to the store via SetMutationLog —
	// see cmd/alaskad). The server owns its remaining lifecycle: the
	// Maintain loop drives compaction next to defrag, `stats` and
	// /metrics surface its counters, and Shutdown closes it after the
	// last connection drains, so a clean stop loses nothing.
	WAL *wal.Log
	// Health is the readiness registry behind the admin /readyz endpoint.
	// cmd/alaskad passes one that tracked the boot sequence (booting →
	// replaying → ready); New registers the server's own subsystem checks
	// (WAL degradation, accept-gate saturation) on it. nil = a registry
	// that is already past boot, so embedded/test servers report ok.
	Health *health.Registry
	// ConnModel selects the connection architecture: "auto" (default)
	// uses the event-driven readiness poller where the platform supports
	// it (epoll on Linux) and falls back to goroutine-per-connection
	// elsewhere; "epoll" insists on the poller (still falling back, with
	// an error logged, if unsupported); "goroutine" forces the classic
	// model. Under the poller, idle connections are parked as bare fds —
	// no goroutine stack, no bufio buffers, no rt.Thread — and a fixed
	// worker pool serves the ready ones, so the defrag barrier only ever
	// waits on the worker set.
	ConnModel string
	// Workers sizes the event-model worker pool. Default GOMAXPROCS×2.
	Workers int
	// SpacePaddedDecr enables memcached's classic decr compatibility
	// behavior: a decrement whose result has fewer digits than the stored
	// value is right-padded with spaces to the old length (so the item
	// never shrinks in place). Off by default — modern clients expect the
	// bare number — but available for clients that parse fixed-width
	// counters (alaskad -space-padded-decr).
	SpacePaddedDecr bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxValueSize == 0 {
		out.MaxValueSize = 1 << 20
	}
	if out.MaintainInterval == 0 {
		out.MaintainInterval = 50 * time.Millisecond
	}
	if out.DefragFragHigh == 0 {
		out.DefragFragHigh = 1.3
	}
	if out.DefragBudget == 0 {
		out.DefragBudget = 1 << 20
	}
	if out.Version == "" {
		out.Version = "0.3.0-alaska"
	}
	if out.Clock == nil {
		out.Clock = time.Now
	}
	if out.MaxReplyBacklog == 0 {
		out.MaxReplyBacklog = 64 << 20
	}
	if out.MaxLineLen == 0 {
		out.MaxLineLen = 2048
	}
	if out.SlowOpThreshold == 0 {
		out.SlowOpThreshold = 10 * time.Millisecond
	}
	if out.ConnModel == "" {
		out.ConnModel = "auto"
	}
	if out.Workers <= 0 {
		out.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	return out
}

// Accept-error backoff bounds: transient failures (EMFILE under fd
// pressure, ECONNABORTED) are retried with capped exponential backoff
// instead of killing the server.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = time.Second
)

// Server is a memcached-ASCII-protocol server over a kv.ShardedStore.
type Server struct {
	cfg   Config
	store *kv.ShardedStore
	// anch is non-nil when the store runs on the Anchorage backend; the
	// maintenance loop then drives defragmentation under live traffic.
	anch *kv.AnchorageBackend

	ln    net.Listener
	quit  chan struct{}
	wg    sync.WaitGroup // maintenance + accept loop
	connW sync.WaitGroup // one per live connection
	// connSem is the -max-conns accept gate (nil = unlimited): the accept
	// loop acquires a slot before accepting and the handler releases it on
	// exit, so at the cap the loop blocks — listen disabled — until a
	// disconnect.
	connSem chan struct{}

	mu    sync.Mutex
	conns map[*conn]struct{}
	start time.Time

	// poller is the event-driven connection core (nil when the platform
	// has none or ConnModel forces goroutines). Accepted connections are
	// registered as parked fds instead of getting a goroutine; a fixed
	// worker pool serves the ready ones.
	poller connPoller

	// Counters surfaced by `stats`.
	currConns      atomic.Int64
	totalConns     atomic.Int64
	protocolErrors atomic.Int64
	listenDisabled atomic.Int64
	acceptErrors   atomic.Int64
	idleKicks      atomic.Int64
	slowKicks      atomic.Int64
	cmdFlush       atomic.Int64
	casCounter     atomic.Uint64
	barrierPauseNs atomic.Int64
	bytesRead      atomic.Int64
	bytesWritten   atomic.Int64
	lat            *stats.LatencyRecorder

	// Observability plane. perOp splits command latency by opcode (the
	// per-op recorders behind /metrics); slowOps is the slow-command
	// flight recorder. instr/slowThreshNs are the precomputed hot-path
	// gates. connIDs labels connections for slow-op attribution — it is
	// separate from totalConns so `stats reset` never reuses an id.
	instr        bool
	slowThreshNs int64
	perOp        [cmdCount]*stats.LatencyRecorder
	slowOps      *slowRing
	connIDs      atomic.Uint64

	// Defragmentation telemetry, fed by the maintenance loop: pass
	// duration and stop-the-world pause histograms, the barrier
	// safepoint-rendezvous wait (via rt.SetBarrierWaitObserver),
	// grace-period bytes returned by DrainDeferred, and the sampled
	// RSS/fragmentation gauges the metrics endpoint reports.
	passLat      *stats.LatencyRecorder
	pauseLat     *stats.LatencyRecorder
	safepointLat *stats.LatencyRecorder
	drainedBytes atomic.Uint64
	sampledRSS   atomic.Uint64
	sampledFrag  atomic.Uint64 // math.Float64bits

	registryOnce sync.Once
	registry     *registryState

	// admin is the -admin-addr HTTP server once AttachAdmin has run;
	// Shutdown drains it (in-flight scrapes complete, then the port is
	// released) instead of leaking the listener.
	admin *http.Server

	closeOnce sync.Once
}

// conn wraps an accepted socket with the reaping bookkeeping: an
// idempotent close (the handler's exit path, the idle reaper, and
// Shutdown may each try to close it — whoever gets there first wins and
// the rest are no-ops), a last-activity stamp for the idle reaper, and a
// per-write deadline so a stalled client cannot wedge a flush forever.
type conn struct {
	net.Conn
	writeTimeout time.Duration
	clock        func() time.Time
	closeOnce    sync.Once
	closeErr     error
	// id attributes slow-op records to a connection. Never reused (see
	// Server.connIDs).
	id uint64
	// nr/nw, when non-nil, receive socket byte counts (the server's
	// bytes_read/bytes_written). Pointers so a bare test conn — and an
	// uninstrumented server — skips the accounting without branching on
	// config.
	nr *atomic.Int64
	nw *atomic.Int64
	// lastActive is the Config.Clock unixnano of the last completed
	// command line or write progress. Partial bytes from a slow-loris
	// client do not count as activity (memcached's last_cmd_time rule).
	lastActive atomic.Int64
	// slow is tripped when a write misses its deadline or the reply
	// backlog cap, so the handler's exit path counts the disconnect in
	// slow_client_kicks.
	slow atomic.Bool
}

// Write applies the per-flush write deadline. bufio's mid-Write flushes
// land here too, so every socket write a slow client can stall is
// deadline-bounded. A successful write is client-side drain progress and
// counts as activity for the idle reaper — a client reading a large
// reply slowly but steadily is making progress, not idling.
func (c *conn) Write(p []byte) (int, error) {
	if c.writeTimeout > 0 {
		_ = c.Conn.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	n, err := c.Conn.Write(p)
	if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		c.slow.Store(true)
	}
	if n > 0 {
		if c.nw != nil {
			c.nw.Add(int64(n))
		}
		c.touch(c.clock())
	}
	return n, err
}

// Read counts socket bytes into the server's bytes_read (bufio's fills
// land here, so every byte the client sends is accounted once).
func (c *conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.nr != nil {
		c.nr.Add(int64(n))
	}
	return n, err
}

// kill closes the socket exactly once, reporting whether this call was
// the one that performed the close (so each reap is counted once even
// when the reaper, Shutdown, and the handler race).
func (c *conn) kill() bool {
	killed := false
	c.closeOnce.Do(func() {
		c.closeErr = c.Conn.Close()
		killed = true
	})
	return killed
}

// Close makes the wrapper itself idempotent for every other closer.
func (c *conn) Close() error {
	c.kill()
	return c.closeErr
}

func (c *conn) touch(now time.Time) { c.lastActive.Store(now.UnixNano()) }

// New builds a server over the store. The store's backend decides the
// maintenance behavior: on Anchorage, the §4.3 control loop plus
// pause-free concurrent passes; on other backends, whatever Maintain
// does (meshing rounds, nothing for malloc).
func New(store *kv.ShardedStore, cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		store: store,
		quit:  make(chan struct{}),
		conns: make(map[*conn]struct{}),
		lat:   stats.NewLatencyRecorder(),
		// Stamped at construction, not in Serve: the admin plane (and
		// its uptime gauge) can be serving scrapes before the accept
		// loop starts, and a late overwrite would race them.
		start: time.Now(),
	}
	s.instr = !s.cfg.DisableInstrumentation
	if s.instr {
		for i := range s.perOp {
			s.perOp[i] = stats.NewLatencyRecorder()
		}
		s.slowOps = newSlowRing()
		if s.cfg.SlowOpThreshold > 0 {
			s.slowThreshNs = s.cfg.SlowOpThreshold.Nanoseconds()
		}
	}
	s.passLat = stats.NewLatencyRecorder()
	s.pauseLat = stats.NewLatencyRecorder()
	s.safepointLat = stats.NewLatencyRecorder()
	if s.cfg.MaxConns > 0 {
		s.connSem = make(chan struct{}, s.cfg.MaxConns)
	}
	if ab, ok := store.Backend().(*kv.AnchorageBackend); ok {
		s.anch = ab
		// Every stop-the-world barrier reports how long the initiator
		// waited for the safepoint rendezvous — the pause component the
		// paper's claims are about, as a histogram instead of a single
		// accumulated counter.
		ab.Runtime.SetBarrierWaitObserver(func(wait time.Duration) {
			s.safepointLat.Record(wait)
		})
	}
	if s.cfg.Health == nil {
		s.cfg.Health = health.NewReady()
	}
	if w := s.cfg.WAL; w != nil {
		s.cfg.Health.Register("wal", func() (health.Status, string) {
			if w.Degraded() {
				ws := w.Stats()
				return health.Degraded, fmt.Sprintf("degraded since %s; %d appends dropped",
					w.DegradedSince().Format(time.RFC3339), ws.DroppedDegraded)
			}
			return health.OK, "persisting"
		})
	}
	if s.connSem != nil {
		s.cfg.Health.Register("accept-gate", func() (health.Status, string) {
			used, limit := len(s.connSem), cap(s.connSem)
			if used >= limit {
				return health.Degraded, fmt.Sprintf("saturated: %d/%d conns; accepts deferred", used, limit)
			}
			return health.OK, fmt.Sprintf("%d/%d conns", used, limit)
		})
	}
	// One clock for exptime normalization and the store's expiry checks:
	// a value stored "for 5 seconds" dies exactly when both agree it does.
	store.Clock = s.cfg.Clock
	switch s.cfg.ConnModel {
	case "goroutine":
	case "auto", "epoll", "event":
		p, err := newPoller(s)
		if err != nil {
			if s.cfg.ConnModel != "auto" {
				s.cfg.Logger.Errorf("conn model %q unavailable (%v); falling back to goroutine-per-connection", s.cfg.ConnModel, err)
			}
		} else {
			s.poller = p
		}
	default:
		s.cfg.Logger.Errorf("unknown ConnModel %q; using goroutine-per-connection", s.cfg.ConnModel)
	}
	return s
}

// ConnModel reports the connection architecture actually in effect.
func (s *Server) ConnModel() string {
	if s.poller != nil {
		return "event"
	}
	return "goroutine"
}

// pollerGauges reports the event core's instantaneous population:
// parked fds, connections on a worker (queued-or-running), and the
// ready-queue depth. All zero under the goroutine model, where every
// connection is "active" by construction.
func (s *Server) pollerGauges() (parked, active, queued int64) {
	if s.poller == nil {
		return 0, 0, 0
	}
	return s.poller.gauges()
}

// Listen binds the configured address. Addr() reports the bound address
// afterwards (useful with ":0").
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.cfg.Logger.Infof("listening on %s (backend %s)", ln.Addr(), s.store.Backend().Name())
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve runs the accept loop until Shutdown. Listen must have been
// called. Transient accept errors (EMFILE under fd pressure,
// ECONNABORTED) are retried with capped exponential backoff — only
// Shutdown or a closed listener terminate the loop — so one bad accept
// never kills a server holding thousands of live connections. It always
// returns nil after a clean shutdown.
func (s *Server) Serve() error {
	s.wg.Add(1)
	go s.maintainLoop()
	if s.poller != nil {
		s.poller.start()
	}
	backoff := acceptBackoffMin
	for {
		waited, ok := s.acquireConnSlot()
		if !ok {
			return nil
		}
		var c net.Conn
		var err error
		deferred := false
		if waited {
			// The gate was closed: a connection accepted *right now* was
			// sitting in the listen backlog while we were at capacity —
			// that is a deferred accept. One that arrives later was not.
			c, err = s.pollPendingAccept()
			deferred = c != nil
		}
		if c == nil && err == nil {
			c, err = s.ln.Accept()
		}
		if err != nil {
			s.releaseConnSlot()
			select {
			case <-s.quit:
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			s.acceptErrors.Add(1)
			s.cfg.Logger.Errorf("accept: %v (retrying in %v)", err, backoff)
			select {
			case <-time.After(backoff):
			case <-s.quit:
				return nil
			}
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffMin
		if deferred {
			s.listenDisabled.Add(1)
		}
		id := s.connIDs.Add(1)
		s.cfg.Logger.Debugf("conn %d: accepted %s", id, c.RemoteAddr())
		s.totalConns.Add(1)
		s.currConns.Add(1)
		if s.poller != nil {
			// Event model: the connection becomes a parked fd in the
			// poller — no goroutine, no session, no buffers until it
			// turns readable. On registration failure (non-syscall conn,
			// fd-table pressure) the original connection is untouched and
			// serves through the goroutine path below.
			if err := s.poller.register(c, id); err == nil {
				continue
			} else {
				s.cfg.Logger.Debugf("conn %d: poller register failed (%v); using goroutine handler", id, err)
			}
		}
		wc := &conn{
			Conn:         c,
			writeTimeout: s.cfg.WriteTimeout,
			clock:        s.cfg.Clock,
			id:           id,
		}
		if s.instr {
			wc.nr, wc.nw = &s.bytesRead, &s.bytesWritten
		}
		wc.touch(s.cfg.Clock())
		s.mu.Lock()
		s.conns[wc] = struct{}{}
		s.mu.Unlock()
		s.connW.Add(1)
		go s.handleConn(wc)
	}
}

// acquireConnSlot blocks while the server sits at -max-conns, reporting
// whether it had to wait (the accept that follows is a deferred one) and
// whether the server is still running.
func (s *Server) acquireConnSlot() (waited, ok bool) {
	if s.connSem == nil {
		return false, true
	}
	select {
	case s.connSem <- struct{}{}:
		return false, true
	default:
	}
	select {
	case s.connSem <- struct{}{}:
		return true, true
	case <-s.quit:
		return false, false
	}
}

func (s *Server) releaseConnSlot() {
	if s.connSem != nil {
		<-s.connSem
	}
}

// pollPendingAccept checks — via a near-immediate accept deadline —
// whether a connection is already queued in the listen backlog, and
// accepts it if so. (nil, nil) means nothing was waiting. On listeners
// without deadlines, the first accept after a wait is simply treated as
// deferred.
func (s *Server) pollPendingAccept() (net.Conn, error) {
	d, ok := s.ln.(interface{ SetDeadline(time.Time) error })
	if !ok {
		return s.ln.Accept()
	}
	_ = d.SetDeadline(time.Now().Add(time.Millisecond))
	c, err := s.ln.Accept()
	_ = d.SetDeadline(time.Time{})
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return nil, nil
		}
		return nil, err
	}
	return c, nil
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown stops accepting, waits up to drain for in-flight connections
// to finish their current commands and disconnect, then force-closes the
// stragglers. Safe to call multiple times.
func (s *Server) Shutdown(drain time.Duration) error {
	s.closeOnce.Do(func() {
		close(s.quit)
		if s.ln != nil {
			_ = s.ln.Close()
		}
		done := make(chan struct{})
		go func() {
			s.connW.Wait()
			// Poller-owned connections count too: wait for clients to
			// disconnect voluntarily during the drain window (killAll
			// below unblocks this after the deadline).
			if s.poller != nil {
				for !s.poller.drained() {
					time.Sleep(time.Millisecond)
				}
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(drain):
			// Connections idling in a read only notice via conn close. The
			// close is idempotent, so racing the idle reaper or a handler's
			// own exit path is harmless.
			s.mu.Lock()
			for c := range s.conns {
				_ = c.Close()
			}
			s.mu.Unlock()
			if s.poller != nil {
				s.poller.killAll()
			}
			<-done
		}
		if s.poller != nil {
			s.poller.stop()
		}
		s.wg.Wait()
		// The admin plane stays up while the data plane drains (operators
		// can watch the drain on /metrics), then shuts down gracefully:
		// http.Server.Shutdown releases the port immediately and waits for
		// in-flight scrapes to complete, bounded by the same drain budget.
		if s.admin != nil {
			ctx, cancel := context.WithTimeout(context.Background(), maxDur(drain, time.Second))
			if err := s.admin.Shutdown(ctx); err != nil {
				_ = s.admin.Close()
			}
			cancel()
		}
		// The WAL closes last — every connection and the maintain loop
		// have stopped, so the final ring drain + fsync makes a clean
		// shutdown byte-complete on disk.
		if s.cfg.WAL != nil {
			_ = s.cfg.WAL.Close()
		}
	})
	return nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// maintainLoop is the background maintenance goroutine: it drives the
// backend's §4.3 control loop on wall-clock time (barrier passes,
// sub-heap truncation, deferred-block drain) and, on the Anchorage
// backend, additionally runs the §7 pause-free ConcurrentDefragPass
// whenever live fragmentation exceeds DefragFragHigh — compaction under
// traffic with no stop-the-world.
func (s *Server) maintainLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.MaintainInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
			// Store-level Maintain: the backend's control loop plus one
			// expiry-sweep increment, so dead values release heap (and
			// un-hostage their sub-heaps for truncation) even if never
			// touched again.
			if pause := s.store.Maintain(time.Since(s.start)); pause > 0 {
				s.barrierPauseNs.Add(int64(pause))
				// Each stop-the-world pause lands in the histogram too,
				// so /metrics exposes the distribution the single
				// accumulated counter hides.
				s.pauseLat.Record(pause)
			}
			if s.anch != nil {
				if s.anch.Svc.Fragmentation() > s.cfg.DefragFragHigh {
					passStart := time.Now()
					moved := s.anch.Svc.ConcurrentDefragPass(s.cfg.DefragBudget)
					d := time.Since(passStart)
					s.passLat.Record(d)
					s.cfg.Logger.Debugf("defrag: concurrent pass moved %d bytes in %v", moved, d)
				}
				// Return vacated blocks whose grace period has elapsed.
				if drained := s.anch.Svc.DrainDeferred(); drained > 0 {
					s.drainedBytes.Add(drained)
				}
			}
			// Log compaction rides the same tick as defrag: the check is
			// a couple of atomic loads; the rewrite itself runs on the
			// WAL's writer goroutine.
			if s.cfg.WAL != nil {
				s.cfg.WAL.MaybeCompact()
			}
			s.sampleGauges()
			s.reapIdle()
			// Poller-side hardening rides the same tick: the sweep
			// enforces IdleTimeout and WriteTimeout over the parked
			// population with the same clock and counters.
			if s.poller != nil {
				s.poller.sweep()
			}
		}
	}
}

// sampleGauges refreshes the sampled RSS/fragmentation gauges at the
// maintenance tick. /metrics reports the sampled values instead of
// walking the store per scrape, so a scrape storm cannot add store
// traffic and the gauges line up in time with the defrag telemetry
// captured on the same tick.
func (s *Server) sampleGauges() {
	snap := s.store.Snapshot()
	s.sampledRSS.Store(uint64(snap.RSS))
	frag := 0.0
	if s.anch != nil {
		frag = s.anch.Svc.Fragmentation()
	} else if snap.Used > 0 {
		frag = float64(snap.RSS) / float64(snap.Used)
	}
	s.sampledFrag.Store(math.Float64bits(frag))
}

// reapIdle closes connections that have not completed a command within
// IdleTimeout. The blocked read errors out and the handler exits through
// its normal cleanup path; because the wait was spent in the session's
// idle (external) state, no barrier ever waited on the dead client — the
// reap just returns its slot and handle pins to the system.
func (s *Server) reapIdle() {
	if s.cfg.IdleTimeout <= 0 {
		return
	}
	now := s.cfg.Clock().UnixNano()
	s.mu.Lock()
	for c := range s.conns {
		if now-c.lastActive.Load() > int64(s.cfg.IdleTimeout) {
			if c.kill() {
				s.idleKicks.Add(1)
			}
		}
	}
	s.mu.Unlock()
}

// connHandler is the per-connection state: its own kv.Session (an
// rt.Thread under Alaska), buffered reader/writer, and the blocked-read
// discipline — socket waits happen in the thread's external state so a
// barrier never waits on an idle connection, and a safepoint is polled
// between commands so barriers make progress under load.
type connHandler struct {
	srv  *Server
	c    *conn
	sess kv.Session
	r    *bufio.Reader
	w    *bufio.Writer
	// ev, when non-nil, routes the I/O surface below (readBody,
	// discardBody, resyncLine, flush, writeFull, writeString) to the
	// event engine's buffers instead of the blocking bufio pair — the
	// split that lets dispatch and every do* handler serve both
	// connection models unchanged. A worker's handler has ev set once at
	// construction; goroutine handlers leave it nil.
	ev *eventIO
	// backlog counts reply bytes accepted into the write path since the
	// last successful drain — the MaxReplyBacklog budget.
	backlog int

	// Pooled per-connection scratch memory: every buffer below is owned
	// by this connection's goroutine, grows to the workload's steady
	// state, and is reused for every subsequent command — the request
	// path performs no per-op allocation once warm. None of them may be
	// shared across connections (pool_race_test.go proves they never
	// alias).
	fields [][]byte // tokenized command fields (slices into the read buffer)
	keyBuf []byte   // storage-command key, copied out before the body read
	body   []byte   // data-block read buffer (value + CRLF)
	val    []byte   // kv copy-out / RMW old-value scratch
	val2   []byte   // encoded write-back value scratch (may not alias val)
	hdr    []byte   // response header / numeric reply scratch

	// Per-command observability capture, written by dispatch before any
	// body read slides the read buffer (the key token aliases it): the
	// opcode for the per-op histograms and a fixed-array key prefix for
	// the slow-op ring. Fixed storage — recording stays allocation-free.
	lastCmd  cmdCode
	opKey    [slowOpKeyLen]byte
	opKeyLen uint8
}

func (s *Server) handleConn(c *conn) {
	defer s.connW.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.currConns.Add(-1)
		if c.slow.Load() {
			s.slowKicks.Add(1)
			s.cfg.Logger.Debugf("conn %d: kicked (slow client)", c.id)
		} else {
			s.cfg.Logger.Debugf("conn %d: closed", c.id)
		}
		_ = c.Close()
		s.releaseConnSlot()
	}()
	// The read buffer must fit a full legal command line plus CRLF, or
	// readLineDirect's window-full guard would reject lines the
	// configured cap allows.
	rsize := 16 << 10
	if s.cfg.MaxLineLen+2 > rsize {
		rsize = s.cfg.MaxLineLen + 2
	}
	h := &connHandler{
		srv:  s,
		c:    c,
		sess: s.store.NewSession(),
		r:    bufio.NewReaderSize(c, rsize),
		w:    bufio.NewWriterSize(c, 16<<10),
	}
	defer h.sess.Close()
	for {
		line, err := h.readLine()
		if err == errLineTooLong {
			// Report, then discard through the next newline with bounded
			// memory, memcached-style — one hostile newline-free stream
			// must not grow the buffer, and the conversation can resume
			// at the next line.
			if h.replyError(respLineTooLong) != nil || h.flush() != nil {
				return
			}
			if h.resyncLine() != nil {
				return
			}
			continue
		}
		if err != nil {
			return // EOF, reap, or connection failure
		}
		// A completed command line is activity for the idle reaper;
		// partial bytes never are.
		c.touch(s.cfg.Clock())
		start := time.Now()
		quit, err := h.dispatch(line)
		if err != nil {
			return // I/O failure mid-command
		}
		s.recordOp(h, c.id, time.Since(start))
		// Flush unless a complete pipelined command is already buffered,
		// so a burst of pipelined requests is answered in one write. (A
		// *partial* line must not gate the flush: its sender may be
		// waiting on this response before finishing it.)
		if !h.commandPending() {
			if err := h.flush(); err != nil {
				return
			}
		}
		// Safepoint between commands: this is where barrier rendezvous
		// happens for busy connections.
		h.sess.Safepoint()
		if quit {
			_ = h.flush()
			return
		}
	}
}

// recordOp folds one completed command into the aggregate and
// per-opcode latency recorders and, past the slow threshold, the
// slow-op ring. Atomics and fixed arrays only — the allocation guards
// run this exact path with instrumentation fully enabled.
func (s *Server) recordOp(h *connHandler, connID uint64, d time.Duration) {
	s.lat.Record(d)
	if s.instr {
		s.perOp[h.lastCmd].Record(d)
		if s.slowThreshNs > 0 && d.Nanoseconds() >= s.slowThreshNs {
			s.slowOps.record(h.lastCmd, h.opKey[:h.opKeyLen], d, connID, s.cfg.Clock())
		}
	}
}

// commandPending reports whether a complete command line is already
// sitting in the read buffer.
func (h *connHandler) commandPending() bool {
	n := h.r.Buffered()
	if n == 0 {
		return false
	}
	peek, err := h.r.Peek(n)
	return err == nil && bytes.IndexByte(peek, '\n') >= 0
}

// errLineTooLong marks a command line exceeding MaxLineLen. The handler
// answers CLIENT_ERROR line too long and resyncs instead of dropping the
// connection — and, critically, instead of buffering the line.
var errLineTooLong = errors.New("server: command line too long")

// readLine reads one CRLF-terminated command line of at most MaxLineLen
// bytes. If the line is not already buffered, the wait happens in the
// session's idle (external) state so stop-the-world barriers don't wait
// for this connection. The returned slice aliases the read buffer and is
// valid only until the next read on h.r (dispatch parses it — and copies
// anything that must survive a body read — before touching the reader).
func (h *connHandler) readLine() ([]byte, error) {
	if h.commandPending() {
		return readLineDirect(h.r, h.srv.cfg.MaxLineLen)
	}
	h.sess.EnterIdle()
	defer h.sess.ExitIdle()
	return readLineDirect(h.r, h.srv.cfg.MaxLineLen)
}

// readLineDirect reads one line in bounded memory by scanning the
// buffered window as bytes arrive: the moment more than max bytes (plus
// the CRLF terminator) are present with no newline, the line is rejected
// — however much, or however slowly, a hostile client streams. The line
// is returned as a slice into the reader's buffer — no copy, no
// allocation — valid until the next read on r.
func readLineDirect(r *bufio.Reader, max int) ([]byte, error) {
	want := 1
	for {
		if _, err := r.Peek(want); r.Buffered() < want {
			return nil, err // EOF / reap / connection failure mid-line
		}
		n := r.Buffered()
		window, _ := r.Peek(n)
		if i := bytes.IndexByte(window, '\n'); i >= 0 {
			if i > max+1 { // line content + optional \r
				return nil, errLineTooLong
			}
			line := window[:i]
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			_, _ = r.Discard(i + 1)
			return line, nil
		}
		if n > max+1 {
			return nil, errLineTooLong
		}
		if want = n + 1; want > r.Size() {
			// The whole bufio window filled without a newline: over any
			// sane cap (the resync path discards from here).
			return nil, errLineTooLong
		}
	}
}

// resyncLine discards input through the next newline in bounded memory,
// idling the session while it waits (the bytes may dribble in from a
// hostile client arbitrarily slowly). Used to recover stream framing
// after an over-length line or a bad data chunk.
func (h *connHandler) resyncLine() error {
	if h.ev != nil {
		return h.ev.resyncLine()
	}
	h.sess.EnterIdle()
	defer h.sess.ExitIdle()
	for {
		_, err := h.r.ReadSlice('\n')
		if err == nil {
			return nil
		}
		if err != bufio.ErrBufferFull {
			return err
		}
	}
}

// readBody reads a storage command's n-byte data block plus its CRLF
// terminator into the connection's grow-only body scratch, idling the
// session if the bytes aren't buffered yet. It returns the data (valid
// until the next readBody) and whether the terminator was well-formed.
func (h *connHandler) readBody(n int) ([]byte, bool, error) {
	if h.ev != nil {
		return h.ev.readBody(n)
	}
	if cap(h.body) < n+2 {
		h.body = make([]byte, n+2)
	}
	buf := h.body[:n+2]
	if h.r.Buffered() < len(buf) {
		h.sess.EnterIdle()
		_, err := io.ReadFull(h.r, buf)
		h.sess.ExitIdle()
		if err != nil {
			return nil, false, err
		}
	} else if _, err := io.ReadFull(h.r, buf); err != nil {
		return nil, false, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, false, nil
	}
	return buf[:n], true, nil
}

// discardBody consumes an n-byte data block plus terminator without
// holding it in memory (the oversized-value path, where n is
// client-controlled and may be huge). Returns whether the terminator was
// well-formed.
func (h *connHandler) discardBody(n int) (bool, error) {
	if h.ev != nil {
		return h.ev.discardBody(n)
	}
	h.sess.EnterIdle()
	defer h.sess.ExitIdle()
	if _, err := io.CopyN(io.Discard, h.r, int64(n)); err != nil {
		return false, err
	}
	var term [2]byte
	if _, err := io.ReadFull(h.r, term[:]); err != nil {
		return false, err
	}
	return term[0] == '\r' && term[1] == '\n', nil
}

// flush drains the write buffer; a stalled client's backpressure is
// absorbed in the idle state (and bounded by the per-write deadline). A
// full drain resets the reply-backlog budget and counts as activity for
// the idle reaper.
func (h *connHandler) flush() error {
	if h.ev != nil {
		return h.ev.flush()
	}
	if h.w.Buffered() == 0 {
		h.backlog = 0
		return nil
	}
	h.sess.EnterIdle()
	defer h.sess.ExitIdle()
	if err := h.w.Flush(); err != nil {
		return err
	}
	h.backlog = 0
	h.c.touch(h.srv.cfg.Clock())
	return nil
}

// prepareWrite is the shared preamble of writeFull/writeString: it
// charges the reply-backlog budget for n reply bytes — past the budget
// the handler stops producing and forces a flush, so a reading client
// drains and resets the budget while one that stopped reading blocks
// the flush into its write deadline and is disconnected — and reports
// whether the write must happen in the session's idle state: when n
// does not fit in the buffer's free space, bufio flushes to the socket
// mid-write, and that flush can block on a slow-reading client, so it
// must not stall a pending barrier (the per-write deadline bounds the
// block). Keeping the policy here means the []byte and string write
// paths can never diverge.
func (h *connHandler) prepareWrite(n int) (idle bool, err error) {
	if h.srv.cfg.MaxReplyBacklog > 0 && h.backlog+n > h.srv.cfg.MaxReplyBacklog {
		if err := h.flush(); err != nil {
			return false, err
		}
	}
	h.backlog += n
	return h.w.Available() < n, nil
}

// writeFull writes p to the response buffer under the backpressure
// policy above.
func (h *connHandler) writeFull(p []byte) error {
	if h.ev != nil {
		return h.ev.writeFull(p)
	}
	idle, err := h.prepareWrite(len(p))
	if err != nil {
		return err
	}
	if idle {
		h.sess.EnterIdle()
		defer h.sess.ExitIdle()
	}
	_, err = h.w.Write(p)
	return err
}

// writeString is writeFull for string data (response literals), using
// bufio's WriteString so no []byte conversion is allocated.
func (h *connHandler) writeString(s string) error {
	if h.ev != nil {
		return h.ev.writeString(s)
	}
	idle, err := h.prepareWrite(len(s))
	if err != nil {
		return err
	}
	if idle {
		h.sess.EnterIdle()
		defer h.sess.ExitIdle()
	}
	_, err = h.w.WriteString(s)
	return err
}

func (h *connHandler) reply(line string) error {
	if err := h.writeString(line); err != nil {
		return err
	}
	return h.writeString(crlf)
}

// replyError counts a protocol error and sends the error line.
func (h *connHandler) replyError(line string) error {
	h.srv.protocolErrors.Add(1)
	return h.reply(line)
}

// storeOp names a storage command for the post-parse paths, so the
// command token (a slice into the read buffer) need not survive the
// body read.
type storeOp int

const (
	opSet storeOp = iota
	opAdd
	opReplace
	opCas
	opAppend
	opPrepend
)

func (op storeOp) String() string {
	switch op {
	case opSet:
		return "set"
	case opAdd:
		return "add"
	case opReplace:
		return "replace"
	case opCas:
		return "cas"
	case opAppend:
		return "append"
	case opPrepend:
		return "prepend"
	}
	return "?"
}

// cmdCode labels a command for the per-opcode latency histograms and
// the slow-op ring. It is distinct from storeOp (which only names the
// storage family for the post-parse paths).
type cmdCode uint8

const (
	cmdGet cmdCode = iota
	cmdGat
	cmdSet
	cmdAdd
	cmdReplace
	cmdCas
	cmdAppend
	cmdPrepend
	cmdIncr
	cmdDecr
	cmdDelete
	cmdTouch
	cmdFlushAll
	cmdStats
	cmdOther // version, verbosity, quit, protocol errors
	cmdCount
)

// cmdNames are the wire/metric labels, indexed by cmdCode.
var cmdNames = [cmdCount]string{
	"get", "gat", "set", "add", "replace", "cas", "append", "prepend",
	"incr", "decr", "delete", "touch", "flush_all", "stats", "other",
}

// noteOp records the dispatched opcode and a fixed-size key prefix for
// the observability plane. Must run before any body read: key aliases
// the read buffer, and the copy into the handler-owned array is what
// lets the slow-op ring reference it later without holding (or
// allocating) request memory.
func (h *connHandler) noteOp(code cmdCode, key []byte) {
	h.lastCmd = code
	h.opKeyLen = uint8(copy(h.opKey[:], key))
}

// firstKey returns the leading argument (the key for single- and
// multi-key commands alike), or nil for a bare command.
func firstKey(args [][]byte) []byte {
	if len(args) > 0 {
		return args[0]
	}
	return nil
}

// dispatch executes one command line. The returned error is an I/O
// failure (drop the connection); protocol errors are answered in-band.
// line aliases the read buffer; it is tokenized in place (no per-command
// string materializes) and anything that must survive a body read is
// copied into connection-owned scratch first.
func (h *connHandler) dispatch(line []byte) (quit bool, err error) {
	h.fields = tokenize(line, h.fields[:0])
	if len(h.fields) == 0 {
		h.noteOp(cmdOther, nil)
		return false, h.replyError(respError)
	}
	cmd, args := h.fields[0], h.fields[1:]
	switch string(cmd) { // compiles to allocation-free comparisons
	case "get", "gets":
		h.noteOp(cmdGet, firstKey(args))
		return false, h.doGet(args, len(cmd) == 4)
	case "gat", "gats":
		// args[0] is the exptime; the first key follows it.
		h.noteOp(cmdGat, firstKey(args[min(len(args), 1):]))
		return false, h.doGat(args, len(cmd) == 4)
	case "set":
		h.noteOp(cmdSet, firstKey(args))
		return false, h.doStore(opSet, args)
	case "add":
		h.noteOp(cmdAdd, firstKey(args))
		return false, h.doStore(opAdd, args)
	case "replace":
		h.noteOp(cmdReplace, firstKey(args))
		return false, h.doStore(opReplace, args)
	case "cas":
		h.noteOp(cmdCas, firstKey(args))
		return false, h.doStore(opCas, args)
	case "append":
		h.noteOp(cmdAppend, firstKey(args))
		return false, h.doStore(opAppend, args)
	case "prepend":
		h.noteOp(cmdPrepend, firstKey(args))
		return false, h.doStore(opPrepend, args)
	case "incr", "decr":
		if cmd[0] == 'i' {
			h.noteOp(cmdIncr, firstKey(args))
		} else {
			h.noteOp(cmdDecr, firstKey(args))
		}
		return false, h.doIncrDecr(args, cmd[0] == 'i')
	case "delete":
		h.noteOp(cmdDelete, firstKey(args))
		return false, h.doDelete(args)
	case "touch":
		h.noteOp(cmdTouch, firstKey(args))
		return false, h.doTouch(args)
	case "flush_all":
		h.noteOp(cmdFlushAll, nil)
		return false, h.doFlushAll(args)
	case "verbosity":
		h.noteOp(cmdOther, nil)
		return false, h.doVerbosity(args)
	case "stats":
		h.noteOp(cmdStats, nil)
		return false, h.doStats(args)
	case "version":
		h.noteOp(cmdOther, nil)
		return false, h.reply("VERSION " + h.srv.cfg.Version)
	case "quit":
		h.noteOp(cmdOther, nil)
		return true, nil
	default:
		h.noteOp(cmdOther, nil)
		return false, h.replyError(respError)
	}
}

// emitValue writes one VALUE line (+ data block) for a stored
// representation, decoding the flags/cas header. The header line is
// assembled in the connection's hdr scratch and the data region is
// handed straight to the buffered writer — a hit serializes with zero
// allocation. ok is false when the header failed to decode: the
// SERVER_ERROR line has already been sent and the caller must abort the
// retrieval (no further VALUEs, no END) — interleaving an error line
// between VALUE blocks would be unframeable.
func (h *connHandler) emitValue(key []byte, stored []byte, withCAS bool) (ok bool, err error) {
	flags, cas, data, derr := decodeValue(stored)
	if derr != nil {
		return false, h.replyError("SERVER_ERROR " + derr.Error())
	}
	hdr := append(h.hdr[:0], "VALUE "...)
	hdr = append(hdr, key...)
	hdr = append(hdr, ' ')
	hdr = strconv.AppendUint(hdr, uint64(flags), 10)
	hdr = append(hdr, ' ')
	hdr = strconv.AppendUint(hdr, uint64(len(data)), 10)
	if withCAS {
		hdr = append(hdr, ' ')
		hdr = strconv.AppendUint(hdr, cas, 10)
	}
	hdr = append(hdr, crlf...)
	h.hdr = hdr
	if err := h.writeFull(hdr); err != nil {
		return false, err
	}
	if err := h.writeFull(data); err != nil {
		return false, err
	}
	return true, h.writeString(crlf)
}

func (h *connHandler) doGet(keys [][]byte, withCAS bool) error {
	if len(keys) == 0 {
		return h.replyError(respBadFormat)
	}
	for _, key := range keys {
		if !validKeyB(key) {
			return h.replyError(respBadFormat)
		}
		stored, hit, err := h.srv.store.GetInto(h.sess, key, h.val[:0])
		if cap(stored) > cap(h.val) {
			h.val = stored // keep the grown scratch for the next hit
		}
		if err != nil {
			return h.replyError("SERVER_ERROR " + err.Error())
		}
		if !hit {
			continue // miss: omitted from the response
		}
		ok, err := h.emitValue(key, stored, withCAS)
		if err != nil || !ok {
			return err
		}
	}
	return h.reply(respEnd)
}

// doGat is get-and-touch: retrieval that also moves each hit key's expiry
// deadline, as one critical section per key.
func (h *connHandler) doGat(args [][]byte, withCAS bool) error {
	exptime, keys, perr := parseGatB(args)
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	deadline := deadlineFor(exptime, h.srv.cfg.Clock())
	for _, key := range keys {
		stored, hit, err := h.srv.store.GetAndTouchInto(h.sess, key, deadline, h.val[:0])
		if cap(stored) > cap(h.val) {
			h.val = stored
		}
		if err != nil {
			return h.replyError("SERVER_ERROR " + err.Error())
		}
		if !hit {
			continue
		}
		ok, err := h.emitValue(key, stored, withCAS)
		if err != nil || !ok {
			return err
		}
	}
	return h.reply(respEnd)
}

func (h *connHandler) doStore(op storeOp, args [][]byte) error {
	sa, perr := parseStorageB(args, op == opCas)
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	// The key currently points into the read buffer, which the body read
	// is about to slide; copy it into connection-owned scratch.
	h.keyBuf = append(h.keyBuf[:0], sa.key...)
	sa.key = h.keyBuf
	if sa.nbytes > h.srv.cfg.MaxValueSize {
		// Consume and discard the oversized body — without buffering it —
		// to stay in sync, then report.
		ok, err := h.discardBody(sa.nbytes)
		if err != nil {
			return err
		}
		if !ok {
			return h.replyError(respBadChunk)
		}
		return h.replyError(respTooLarge)
	}
	data, ok, err := h.readBody(sa.nbytes)
	if err != nil {
		return err
	}
	if !ok {
		// The data block wasn't CRLF-terminated: the stream is desynced.
		// Report and resync at the next newline, memcached-style. The
		// error is flushed first and the resync read idles the session:
		// a client that goes quiet here must neither wait on an
		// unflushed reply nor stall stop-the-world barriers. The resync
		// discards rather than buffers — the desynced remainder is
		// client-controlled and may be huge.
		if err := h.replyError(respBadChunk); err != nil {
			return err
		}
		if err := h.flush(); err != nil {
			return err
		}
		return h.resyncLine()
	}
	resp, errLine, err := h.executeStore(op, sa, data)
	if err != nil {
		if sa.noreply {
			h.srv.protocolErrors.Add(1)
			return nil
		}
		// A value that cannot fit under the memory ceiling at all is
		// its own canonical line, whatever the command.
		if errors.Is(err, kv.ErrTooLarge) {
			return h.replyError(respTooLarge)
		}
		// Plain stores fail on allocation (memcached's canonical line);
		// an RMW failure may equally be a read fault mid-Apply, so
		// surface the real error there.
		if op == opSet || op == opAdd || op == opReplace {
			return h.replyError(respOutOfMemory)
		}
		return h.replyError("SERVER_ERROR " + err.Error())
	}
	if sa.noreply {
		if errLine {
			h.srv.protocolErrors.Add(1)
		}
		return nil
	}
	if errLine {
		return h.replyError(resp)
	}
	return h.reply(resp)
}

// executeStore runs a parsed storage command against the store and
// returns the response line; errLine marks an in-band error reply
// (oversized concatenation, header decode failure) that must be counted
// in protocol_errors. Every variant consumes a fresh cas unique: any
// successful store makes previously handed-out uniques stale, which is
// exactly the cas contract.
//
// Write-back values are encoded into the connection's val2 scratch (the
// RMW old value lives in val), so the whole family — plain stores, cas,
// append/prepend — stores without allocating.
func (h *connHandler) executeStore(op storeOp, sa storageArgsB, data []byte) (resp string, errLine bool, err error) {
	newCas := h.srv.casCounter.Add(1)
	deadline := deadlineFor(sa.exptime, h.srv.cfg.Clock())
	switch op {
	case opSet, opAdd, opReplace:
		mode := kv.SetAlways
		switch op {
		case opAdd:
			mode = kv.SetAdd
		case opReplace:
			mode = kv.SetReplace
		}
		h.val2 = appendValue(h.val2[:0], sa.flags, newCas, data)
		stored, serr := h.srv.store.SetExBytes(h.sess, sa.key, h.val2, mode, deadline)
		if serr != nil {
			return "", false, serr
		}
		if stored {
			return respStored, false, nil
		}
		return respNotStored, false, nil
	case opCas:
		// Compare the stored unique and swap under the shard lock: the
		// read, the comparison, and the write-back are one critical
		// section, so exactly one of N racing cas commands with the same
		// unique can win.
		resp = respStored
		h.val, err = h.srv.store.ApplyInto(h.sess, sa.key, h.val, func(old []byte, found bool) kv.ApplyOp {
			if !found {
				resp = respNotFound
				return kv.ApplyOp{Stat: kv.StatCasMiss}
			}
			_, oldCas, _, derr := decodeValue(old)
			if derr != nil {
				resp, errLine = "SERVER_ERROR "+derr.Error(), true
				return kv.ApplyOp{}
			}
			if oldCas != sa.casUnique {
				resp = respExists
				return kv.ApplyOp{Stat: kv.StatCasBadval}
			}
			h.val2 = appendValue(h.val2[:0], sa.flags, newCas, data)
			return kv.ApplyOp{
				Verdict: kv.ApplyStore,
				Value:   h.val2,
				Expire:  deadline,
				Stat:    kv.StatCasHit,
			}
		})
		return resp, errLine, err
	case opAppend, opPrepend:
		// Concatenation keeps the original flags and TTL (memcached
		// ignores the flags/exptime arguments of append/prepend) but
		// issues a new cas unique.
		resp = respStored
		h.val, err = h.srv.store.ApplyInto(h.sess, sa.key, h.val, func(old []byte, found bool) kv.ApplyOp {
			if !found {
				resp = respNotStored
				return kv.ApplyOp{}
			}
			oldFlags, _, oldData, derr := decodeValue(old)
			if derr != nil {
				resp, errLine = "SERVER_ERROR "+derr.Error(), true
				return kv.ApplyOp{}
			}
			// The merged body must respect the item size cap too: each
			// append individually fitting must not let an item grow
			// without bound (memcached rejects the concatenation the
			// same way).
			if len(oldData)+len(data) > h.srv.cfg.MaxValueSize {
				resp, errLine = respTooLarge, true
				return kv.ApplyOp{}
			}
			h.val2 = appendValue(h.val2[:0], oldFlags, newCas, nil)
			if op == opAppend {
				h.val2 = append(append(h.val2, oldData...), data...)
			} else {
				h.val2 = append(append(h.val2, data...), oldData...)
			}
			return kv.ApplyOp{
				Verdict:    kv.ApplyStore,
				Value:      h.val2,
				KeepExpire: true,
			}
		})
		return resp, errLine, err
	}
	return "", false, fmt.Errorf("server: unreachable storage command %q", op)
}

// doIncrDecr implements incr/decr: 64-bit unsigned arithmetic on the
// decimal value, read-modify-write as one critical section. incr wraps at
// 2^64; decr clamps at 0 (memcached's underflow rule). The new value
// keeps the item's flags and TTL but gets a fresh cas unique. The result
// digits are formatted once into the hdr scratch and serve as both the
// write-back body and the reply — no allocation on a hit. With
// SpacePaddedDecr, a shrinking decr result is stored right-padded with
// spaces to the old value's length (memcached's classic in-place-update
// artifact, visible to a subsequent get) while the reply stays the bare
// number, exactly like memcached's out_string path.
func (h *connHandler) doIncrDecr(args [][]byte, incr bool) error {
	key, delta, noreply, perr := parseIncrDecrB(args)
	if perr == errBadDelta {
		if noreply {
			h.srv.protocolErrors.Add(1)
			return nil
		}
		return h.replyError(respBadDelta)
	}
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	newCas := h.srv.casCounter.Add(1)
	hitStat, missStat := kv.StatIncrHit, kv.StatIncrMiss
	if !incr {
		hitStat, missStat = kv.StatDecrHit, kv.StatDecrMiss
	}
	var errResp string // in-band error line ("" = h.hdr carries the reply)
	found := true
	var err error
	h.val, err = h.srv.store.ApplyInto(h.sess, key, h.val, func(old []byte, ok bool) kv.ApplyOp {
		if !ok {
			found = false
			return kv.ApplyOp{Stat: missStat}
		}
		flags, _, data, derr := decodeValue(old)
		if derr != nil {
			errResp = "SERVER_ERROR " + derr.Error()
			return kv.ApplyOp{}
		}
		val, numeric := parseNumericValueB(data)
		if !numeric {
			errResp = respNonNumeric
			return kv.ApplyOp{}
		}
		var next uint64
		if incr {
			next = val + delta // wraps modulo 2^64, like memcached
		} else if delta > val {
			next = 0 // underflow clamps
		} else {
			next = val - delta
		}
		h.hdr = strconv.AppendUint(h.hdr[:0], next, 10)
		h.val2 = appendValue(h.val2[:0], flags, newCas, h.hdr)
		if !incr && h.srv.cfg.SpacePaddedDecr {
			// memcached-classic: the stored value keeps the old length,
			// right-padded with spaces (the in-place-update artifact a
			// subsequent get exposes); the reply is the bare number.
			for len(h.val2)-valueHeaderLen < len(data) {
				h.val2 = append(h.val2, ' ')
			}
		}
		return kv.ApplyOp{
			Verdict:    kv.ApplyStore,
			Value:      h.val2,
			KeepExpire: true,
			Stat:       hitStat,
		}
	})
	if err != nil {
		// An Apply failure here is a read or write-back fault, not
		// necessarily memory pressure: surface the real error.
		if noreply {
			h.srv.protocolErrors.Add(1)
			return nil
		}
		return h.replyError("SERVER_ERROR " + err.Error())
	}
	if noreply {
		if errResp != "" {
			h.srv.protocolErrors.Add(1)
		}
		return nil
	}
	if errResp != "" {
		return h.replyError(errResp)
	}
	if !found {
		return h.reply(respNotFound)
	}
	if werr := h.writeFull(h.hdr); werr != nil {
		return werr
	}
	return h.writeString(crlf)
}

// doTouch updates a key's expiry deadline without touching its value.
func (h *connHandler) doTouch(args [][]byte) error {
	key, exptime, noreply, perr := parseTouchB(args)
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	deadline := deadlineFor(exptime, h.srv.cfg.Clock())
	found, err := h.srv.store.TouchBytes(h.sess, key, deadline)
	if err != nil {
		return h.replyError("SERVER_ERROR " + err.Error())
	}
	if noreply {
		return nil
	}
	if found {
		return h.reply(respTouched)
	}
	return h.reply(respNotFound)
}

func (h *connHandler) doDelete(args [][]byte) error {
	key, noreply, perr := parseDeleteB(args)
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	existed, err := h.srv.store.DelBytes(h.sess, key)
	if err != nil {
		return h.replyError("SERVER_ERROR " + err.Error())
	}
	if noreply {
		return nil
	}
	if existed {
		return h.reply(respDeleted)
	}
	return h.reply(respNotFound)
}

// doFlushAll implements `flush_all [delay] [noreply]`: a store-wide
// expiry epoch. Every value stored before now+delay is dead once the
// clock reaches that moment, honored by the same lazy-expiry paths as
// per-entry TTLs (plus one reclamation sweep by Maintain after the epoch
// passes), so the command is O(1) regardless of item count.
func (h *connHandler) doFlushAll(args [][]byte) error {
	delay, noreply, perr := parseFlushAllB(args)
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	now := h.srv.cfg.Clock()
	at := now
	if delay > 0 {
		// The delay follows the exptime rules: relative seconds up to 30
		// days, an absolute unix timestamp beyond.
		at = deadlineFor(delay, now)
	}
	h.srv.store.FlushAll(at)
	h.srv.cmdFlush.Add(1)
	if noreply {
		return nil
	}
	return h.reply(respOK)
}

// doVerbosity implements `verbosity <level> [noreply]`, wired to the
// server's leveled logger: 0 = errors only, 1 = info, 2+ = per-connection
// debug. With no logger configured the level is parsed for conformance
// and dropped, which is how most memcached deployments treat the
// command anyway.
func (h *connHandler) doVerbosity(args [][]byte) error {
	level, noreply, perr := parseVerbosityB(args)
	if perr != nil {
		return h.replyError(respBadFormat)
	}
	switch {
	case level == 0:
		h.srv.cfg.Logger.SetLevel(logx.LevelError)
	case level == 1:
		h.srv.cfg.Logger.SetLevel(logx.LevelInfo)
	default:
		h.srv.cfg.Logger.SetLevel(logx.LevelDebug)
	}
	if noreply {
		return nil
	}
	return h.reply(respOK)
}

// statLine is one `STAT name value` row.
type statLine struct {
	name  string
	value string
}

// StatsSnapshot assembles the server's full stats view: store counters,
// memory metrics, connection counts, command latency percentiles, and —
// on Anchorage — the defragmentation counters that show the heap being
// compacted under traffic.
func (s *Server) StatsSnapshot() []struct{ Name, Value string } {
	lines := s.statLines()
	out := make([]struct{ Name, Value string }, len(lines))
	for i, l := range lines {
		out[i] = struct{ Name, Value string }{l.name, l.value}
	}
	return out
}

func (s *Server) statLines() []statLine {
	snap := s.store.Snapshot()
	uptime := time.Since(s.start)
	parked, active, queued := s.pollerGauges()
	lines := []statLine{
		{"version", s.cfg.Version},
		{"backend", s.store.Backend().Name()},
		{"uptime_s", fmt.Sprintf("%.1f", uptime.Seconds())},
		{"curr_connections", fmt.Sprintf("%d", s.currConns.Load())},
		{"total_connections", fmt.Sprintf("%d", s.totalConns.Load())},
		{"max_connections", fmt.Sprintf("%d", s.cfg.MaxConns)},
		{"listen_disabled_num", fmt.Sprintf("%d", s.listenDisabled.Load())},
		{"accept_errors", fmt.Sprintf("%d", s.acceptErrors.Load())},
		{"idle_kicks", fmt.Sprintf("%d", s.idleKicks.Load())},
		{"slow_client_kicks", fmt.Sprintf("%d", s.slowKicks.Load())},
		{"conn_model", s.ConnModel()},
		{"conns_parked", fmt.Sprintf("%d", parked)},
		{"conns_active", fmt.Sprintf("%d", active)},
		{"worker_queue_depth", fmt.Sprintf("%d", queued)},
		{"cmd_flush", fmt.Sprintf("%d", s.cmdFlush.Load())},
		{"cmd_get", fmt.Sprintf("%d", snap.Gets)},
		{"cmd_set", fmt.Sprintf("%d", snap.Sets)},
		{"get_hits", fmt.Sprintf("%d", snap.Hits)},
		{"get_misses", fmt.Sprintf("%d", snap.Misses)},
		{"delete_hits", fmt.Sprintf("%d", snap.DeleteHits)},
		{"delete_misses", fmt.Sprintf("%d", snap.DeleteMisses)},
		{"cas_hits", fmt.Sprintf("%d", snap.CasHits)},
		{"cas_badval", fmt.Sprintf("%d", snap.CasBadval)},
		{"cas_misses", fmt.Sprintf("%d", snap.CasMisses)},
		{"incr_hits", fmt.Sprintf("%d", snap.IncrHits)},
		{"incr_misses", fmt.Sprintf("%d", snap.IncrMisses)},
		{"decr_hits", fmt.Sprintf("%d", snap.DecrHits)},
		{"decr_misses", fmt.Sprintf("%d", snap.DecrMisses)},
		{"touch_hits", fmt.Sprintf("%d", snap.TouchHits)},
		{"touch_misses", fmt.Sprintf("%d", snap.TouchMisses)},
		{"expired", fmt.Sprintf("%d", snap.Expired)},
		{"expiry_sweeps", fmt.Sprintf("%d", snap.ExpirySweeps)},
		{"evictions", fmt.Sprintf("%d", snap.Evictions)},
		{"reclaimed", fmt.Sprintf("%d", snap.Reclaimed)},
		{"evicted_unfetched", fmt.Sprintf("%d", snap.EvictedUnfetched)},
		{"curr_items", fmt.Sprintf("%d", snap.Keys)},
		// bytes is memcached's charged item total (value + key + per-item
		// overhead) — what limit_maxbytes caps; used_bytes is the
		// allocator-level live-byte count underneath it.
		{"bytes", fmt.Sprintf("%d", snap.Bytes)},
		{"limit_maxbytes", fmt.Sprintf("%d", snap.LimitMaxbytes)},
		{"used_bytes", fmt.Sprintf("%d", snap.Used)},
		{"rss_bytes", fmt.Sprintf("%d", snap.RSS)},
		{"protocol_errors", fmt.Sprintf("%d", s.protocolErrors.Load())},
		{"bytes_read", fmt.Sprintf("%d", s.bytesRead.Load())},
		{"bytes_written", fmt.Sprintf("%d", s.bytesWritten.Load())},
		{"slow_ops", fmt.Sprintf("%d", s.slowOpTotal())},
		{"latency_mean_us", fmt.Sprintf("%.1f", float64(s.lat.Mean().Nanoseconds())/1e3)},
		{"latency_p50_us", fmt.Sprintf("%.1f", float64(s.lat.Percentile(50).Nanoseconds())/1e3)},
		{"latency_p99_us", fmt.Sprintf("%.1f", float64(s.lat.Percentile(99).Nanoseconds())/1e3)},
		{"latency_p999_us", fmt.Sprintf("%.1f", float64(s.lat.Percentile(99.9).Nanoseconds())/1e3)},
	}
	if snap.Used > 0 {
		lines = append(lines, statLine{"fragmentation", fmt.Sprintf("%.3f", float64(snap.RSS)/float64(snap.Used))})
	}
	if s.anch != nil {
		m := s.anch.Svc.MetricsSnapshot()
		lines = append(lines,
			statLine{"defrag_concurrent_passes", fmt.Sprintf("%d", m.ConcurrentPasses)},
			statLine{"defrag_barrier_passes", fmt.Sprintf("%d", m.Passes)},
			statLine{"defrag_barrier_pause_us", fmt.Sprintf("%.1f", float64(s.barrierPauseNs.Load())/1e3)},
			statLine{"defrag_moved_bytes", fmt.Sprintf("%d", m.MovedBytes)},
			statLine{"defrag_move_aborts", fmt.Sprintf("%d", m.MoveAborts)},
			statLine{"defrag_truncated_bytes", fmt.Sprintf("%d", m.Truncated)},
			statLine{"defrag_deferred_blocks", fmt.Sprintf("%d", m.DeferredBlocks)},
			statLine{"defrag_drained_bytes", fmt.Sprintf("%d", s.drainedBytes.Load())},
			statLine{"defrag_pass_p99_us", fmt.Sprintf("%.1f", float64(s.passLat.Percentile(99).Nanoseconds())/1e3)},
			statLine{"defrag_pause_p99_us", fmt.Sprintf("%.1f", float64(s.pauseLat.Percentile(99).Nanoseconds())/1e3)},
			statLine{"safepoint_wait_p99_us", fmt.Sprintf("%.1f", float64(s.safepointLat.Percentile(99).Nanoseconds())/1e3)},
			statLine{"heap_fragmentation", fmt.Sprintf("%.3f", s.anch.Svc.Fragmentation())},
		)
	}
	if w := s.cfg.WAL; w != nil {
		ws := w.Stats()
		lines = append(lines,
			statLine{"wal_appended_records", fmt.Sprintf("%d", ws.AppendedRecords)},
			statLine{"wal_appended_bytes", fmt.Sprintf("%d", ws.AppendedBytes)},
			statLine{"wal_dropped_records", fmt.Sprintf("%d", ws.DroppedRecords)},
			statLine{"wal_state", ws.State},
			statLine{"wal_dropped_degraded", fmt.Sprintf("%d", ws.DroppedDegraded)},
			statLine{"wal_degraded_entries", fmt.Sprintf("%d", ws.DegradedEntries)},
			statLine{"wal_recoveries", fmt.Sprintf("%d", ws.Recoveries)},
			statLine{"wal_fsyncs", fmt.Sprintf("%d", ws.Fsyncs)},
			statLine{"wal_fsync_p99_us", fmt.Sprintf("%.1f", float64(w.FsyncLatency().Percentile(99).Nanoseconds())/1e3)},
			statLine{"wal_io_errors", fmt.Sprintf("%d", ws.IOErrors)},
			statLine{"wal_disk_bytes", fmt.Sprintf("%d", ws.DiskBytes)},
			statLine{"wal_segments", fmt.Sprintf("%d", ws.Segments)},
			statLine{"wal_rotations", fmt.Sprintf("%d", ws.Rotations)},
			statLine{"wal_compactions", fmt.Sprintf("%d", ws.Compactions)},
			statLine{"wal_snapshot_records", fmt.Sprintf("%d", ws.SnapshotRecords)},
			statLine{"wal_replay_records", fmt.Sprintf("%d", ws.Replay.Records)},
			statLine{"wal_replay_bytes", fmt.Sprintf("%d", ws.Replay.Bytes)},
			statLine{"wal_replay_skipped_dead", fmt.Sprintf("%d", ws.Replay.SkippedDead)},
			statLine{"wal_replay_torn_records", fmt.Sprintf("%d", ws.Replay.TornRecords)},
			statLine{"wal_replay_crc_errors", fmt.Sprintf("%d", ws.Replay.CrcErrors)},
			statLine{"wal_audit_runs", fmt.Sprintf("%d", ws.AuditRuns)},
			statLine{"wal_audit_records", fmt.Sprintf("%d", ws.AuditRecords)},
			statLine{"wal_audit_errors", fmt.Sprintf("%d", ws.AuditErrors)},
		)
	}
	return lines
}

// ResetStats implements `stats reset`: the statistics counters — op
// counts, hit/miss tallies, byte totals, latency histograms — go back
// to zero, while state gauges (live connections, items, memory, the
// ceiling) and protocol invariants (the cas unique counter, connection
// ids) are untouched, memcached's split exactly.
func (s *Server) ResetStats() {
	s.store.ResetStats()
	s.totalConns.Store(0)
	s.protocolErrors.Store(0)
	s.listenDisabled.Store(0)
	s.acceptErrors.Store(0)
	s.idleKicks.Store(0)
	s.slowKicks.Store(0)
	s.cmdFlush.Store(0)
	s.barrierPauseNs.Store(0)
	s.bytesRead.Store(0)
	s.bytesWritten.Store(0)
	s.drainedBytes.Store(0)
	s.lat.Reset()
	if s.instr {
		for _, r := range s.perOp {
			r.Reset()
		}
	}
	s.passLat.Reset()
	s.pauseLat.Reset()
	s.safepointLat.Reset()
}

// SlowOps returns the slow-op ring's current contents, newest first
// (empty when instrumentation is disabled). Reporting surfaces only.
func (s *Server) SlowOps() []SlowOp {
	if s.slowOps == nil {
		return nil
	}
	return s.slowOps.snapshot()
}

// slowOpTotal counts slow ops ever recorded (not just those still in
// the ring).
func (s *Server) slowOpTotal() uint64 {
	if s.slowOps == nil {
		return 0
	}
	return s.slowOps.cur.Load()
}

// OpLatency returns the latency recorder for one opcode label (e.g.
// "get"), or nil when unknown or instrumentation is disabled. The
// metrics registry and tests read histograms through this.
func (s *Server) OpLatency(op string) *stats.LatencyRecorder {
	if !s.instr {
		return nil
	}
	for i, name := range cmdNames {
		if name == op {
			return s.perOp[i]
		}
	}
	return nil
}

func (h *connHandler) doStats(args [][]byte) error {
	if len(args) > 0 {
		if len(args) == 1 {
			switch string(args[0]) {
			case "items":
				return h.doStatsItems()
			case "reset":
				h.srv.ResetStats()
				return h.reply(respReset)
			case "slow":
				return h.doStatsSlow()
			}
		}
		// Unknown stats sub-command: memcached answers ERROR.
		return h.replyError(respError)
	}
	for _, l := range h.srv.statLines() {
		if err := h.reply("STAT " + l.name + " " + l.value); err != nil {
			return err
		}
	}
	return h.reply(respEnd)
}

// doStatsSlow renders the slow-op ring, newest first: one row set per
// captured op with its command, key prefix, latency, connection id,
// and age. The reporting path allocates freely — only recording is on
// the hot path.
func (h *connHandler) doStatsSlow() error {
	now := h.srv.cfg.Clock()
	for i, op := range h.srv.SlowOps() {
		p := fmt.Sprintf("STAT slow:%d:", i)
		lines := []string{
			p + "cmd " + op.Cmd,
			p + "key " + op.Key,
			fmt.Sprintf("%slatency_us %.1f", p, float64(op.Latency.Nanoseconds())/1e3),
			fmt.Sprintf("%sconn %d", p, op.ConnID),
			fmt.Sprintf("%sage_s %.1f", p, now.Sub(op.When).Seconds()),
		}
		for _, l := range lines {
			if err := h.reply(l); err != nil {
				return err
			}
		}
	}
	return h.reply(respEnd)
}

// doStatsItems emits `stats items`-style per-shard accounting: one row
// set per shard (the closest analogue of memcached's per-slab-class
// item stats), covering live counts, charged bytes, LRU-tail age, and
// the pressure counters.
func (h *connHandler) doStatsItems() error {
	for i, row := range h.srv.store.ItemsSnapshot() {
		p := fmt.Sprintf("STAT items:%d:", i)
		lines := []string{
			fmt.Sprintf("%snumber %d", p, row.Number),
			fmt.Sprintf("%sbytes %d", p, row.Bytes),
			fmt.Sprintf("%sage %.0f", p, row.AgeSeconds),
			fmt.Sprintf("%snumber_with_ttl %d", p, row.NumberWithTTL),
			fmt.Sprintf("%snumber_fetched %d", p, row.NumberFetched),
			fmt.Sprintf("%sevicted %d", p, row.Evictions),
			fmt.Sprintf("%sevicted_unfetched %d", p, row.EvictedUnfetched),
			fmt.Sprintf("%sreclaimed %d", p, row.Reclaimed),
			fmt.Sprintf("%sexpired %d", p, row.Expired),
		}
		for _, l := range lines {
			if err := h.reply(l); err != nil {
				return err
			}
		}
	}
	return h.reply(respEnd)
}
