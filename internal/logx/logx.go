// Package logx is the small leveled logger shared by alaskad and
// internal/server: errors always, operational milestones at info,
// connection churn only at debug. It replaces the ad-hoc log.Printf
// calls that either spammed production logs or hid real failures.
//
// A nil *Logger is valid and silent, so library code can log
// unconditionally without nil checks at every call site. The level is an
// atomic so the wire `verbosity` command can flip it while connections
// are logging.
package logx

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities. Messages at or below the logger's level
// are emitted.
type Level int32

const (
	// LevelError: failures that need operator attention. Always emitted.
	LevelError Level = iota
	// LevelInfo: lifecycle milestones (listen, shutdown, config).
	LevelInfo
	// LevelDebug: per-connection churn (accepts, closes, kicks).
	LevelDebug
)

// String returns the level's log tag.
func (l Level) String() string {
	switch l {
	case LevelError:
		return "ERROR"
	case LevelInfo:
		return "INFO"
	case LevelDebug:
		return "DEBUG"
	}
	return fmt.Sprintf("LEVEL(%d)", int32(l))
}

// Logger writes leveled, timestamped lines to one writer. All methods
// are safe for concurrent use and safe on a nil receiver (no-ops).
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	level  atomic.Int32
	// Now supplies timestamps; nil means time.Now (swap in a fake for
	// deterministic test output).
	Now func() time.Time
}

// New returns a logger writing to w at the given level with an optional
// "name: " prefix.
func New(w io.Writer, prefix string, level Level) *Logger {
	l := &Logger{w: w, prefix: prefix}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the emission threshold (the `verbosity` command's
// hook). Safe concurrently with logging.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(level))
}

// GetLevel returns the current emission threshold.
func (l *Logger) GetLevel() Level {
	if l == nil {
		return LevelError
	}
	return Level(l.level.Load())
}

// Enabled reports whether a message at level would be emitted — the
// guard for callers that want to skip argument construction entirely.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) <= l.level.Load()
}

// Errorf logs a failure. Emitted at every level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

// Infof logs a lifecycle milestone.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Debugf logs connection-level churn.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	now := time.Now
	if l.Now != nil {
		now = l.Now
	}
	line := fmt.Sprintf("%s %s %s%s\n",
		now().Format("2006-01-02T15:04:05.000Z07:00"), level, l.prefix,
		fmt.Sprintf(format, args...))
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = io.WriteString(l.w, line)
}
