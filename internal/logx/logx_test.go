package logx

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2024, 3, 1, 12, 0, 0, 500e6, time.UTC)
}

func TestLevelFiltering(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, "t: ", LevelInfo)
	l.Now = fixedClock
	l.Errorf("err %d", 1)
	l.Infof("info %d", 2)
	l.Debugf("debug %d", 3)
	out := sb.String()
	if !strings.Contains(out, "ERROR t: err 1") {
		t.Errorf("missing error line:\n%s", out)
	}
	if !strings.Contains(out, "INFO t: info 2") {
		t.Errorf("missing info line:\n%s", out)
	}
	if strings.Contains(out, "debug 3") {
		t.Errorf("debug leaked at info level:\n%s", out)
	}
	if !strings.HasPrefix(out, "2024-03-01T12:00:00.500Z ") {
		t.Errorf("timestamp format: %q", out[:strings.IndexByte(out, ' ')])
	}
}

func TestSetLevelAtRuntime(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, "", LevelError)
	l.Debugf("hidden")
	l.SetLevel(LevelDebug)
	l.Debugf("shown")
	out := sb.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("SetLevel not honored:\n%s", out)
	}
	if got := l.GetLevel(); got != LevelDebug {
		t.Fatalf("GetLevel = %v, want debug", got)
	}
}

func TestNilLoggerIsSilentAndSafe(t *testing.T) {
	var l *Logger
	l.Errorf("x")
	l.Infof("x")
	l.Debugf("x")
	l.SetLevel(LevelDebug)
	if l.GetLevel() != LevelError {
		t.Fatal("nil logger must report the quietest level")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger must report nothing enabled")
	}
}

func TestEnabledGuard(t *testing.T) {
	l := New(&strings.Builder{}, "", LevelInfo)
	if !l.Enabled(LevelError) || !l.Enabled(LevelInfo) || l.Enabled(LevelDebug) {
		t.Fatal("Enabled thresholds wrong at info level")
	}
}

// TestConcurrentLogging exercises logging racing SetLevel (run with
// -race); lines must come out whole.
func TestConcurrentLogging(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		lines = append(lines, string(p))
		mu.Unlock()
		return len(p), nil
	})
	l := New(w, "c: ", LevelDebug)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Infof("msg %d-%d", g, i)
				l.SetLevel(LevelDebug)
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 200 {
		t.Fatalf("got %d lines, want 200", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasSuffix(ln, "\n") || !strings.Contains(ln, "INFO c: msg ") {
			t.Fatalf("torn or malformed line: %q", ln)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
