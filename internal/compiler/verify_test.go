package compiler

import (
	"testing"

	"alaska/internal/ir"
)

func TestVerifyTranslatedAcceptsTransformed(t *testing.T) {
	for _, opt := range []Options{
		{Hoisting: true, Tracking: true},
		{Hoisting: false, Tracking: true},
		{Hoisting: true, Tracking: false},
	} {
		m := gridProgram(8)
		if _, err := Transform(m, opt); err != nil {
			t.Fatal(err)
		}
		if err := VerifyTranslated(m, opt); err != nil {
			t.Errorf("opt %+v: %v", opt, err)
		}
		m2 := listProgram()
		if _, err := Transform(m2, opt); err != nil {
			t.Fatal(err)
		}
		if err := VerifyTranslated(m2, opt); err != nil {
			t.Errorf("list, opt %+v: %v", opt, err)
		}
	}
}

func TestVerifyTranslatedRejectsRawHallocAccess(t *testing.T) {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(b.Const(8))
	v := b.Load(p, ir.Int)
	b.Ret(v)
	f.Finish()
	m := &ir.Module{Funcs: []*ir.Func{f}}
	// Mark as halloc without inserting translations.
	for _, blk := range f.Blocks {
		for _, i := range blk.Instrs {
			if i.Op == ir.OpAlloc {
				i.Sub = 1
			}
		}
	}
	if err := VerifyTranslated(m, DefaultOptions); err == nil {
		t.Error("untranslated halloc access accepted")
	}
}

func TestVerifyTranslatedRejectsMissingSlot(t *testing.T) {
	m := gridProgram(4)
	if _, err := Transform(m, DefaultOptions); err != nil {
		t.Fatal(err)
	}
	// Break a slot.
	for _, f := range m.Funcs {
		for _, blk := range f.Blocks {
			for _, i := range blk.Instrs {
				if i.Op == ir.OpTranslate {
					i.Slot = -1
				}
			}
		}
	}
	if err := VerifyTranslated(m, DefaultOptions); err == nil {
		t.Error("translate without slot accepted under tracking")
	}
}

func TestVerifyTranslatedRejectsEscapingHandle(t *testing.T) {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(b.Const(8))
	b.Call("ext_sink", ir.Int, p)
	b.Ret(nil)
	f.Finish()
	m := &ir.Module{Funcs: []*ir.Func{f}}
	// No escape handling was run; p is a Ptr arg to an external call.
	if err := VerifyTranslated(m, Options{Hoisting: true, Tracking: false}); err == nil {
		t.Error("escaping handle accepted")
	}
}
