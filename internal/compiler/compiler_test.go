package compiler

import (
	"strings"
	"testing"

	"alaska/internal/ir"
)

// gridProgram models the hoistable case: one big allocation accessed in a
// nested loop with the base defined outside all loops (619.lbm's shape).
func gridProgram(n int64) *ir.Module {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	size := b.Const(n * n * 8)
	base := b.Alloc(size)
	zero := b.Const(0)
	end := b.Const(n)
	one := b.Const(1)
	eight := b.Const(8)
	outer := b.Loop("i", zero, end, one)
	inner := b.Loop("j", zero, end, one)
	row := b.Mul(outer.IndVar, end)
	idx := b.Add(row, inner.IndVar)
	off := b.Mul(idx, eight)
	addr := b.GEP(base, off)
	v := b.Load(addr, ir.Int)
	v2 := b.Add(v, one)
	b.Store(addr, v2)
	b.Close(inner)
	b.Close(outer)
	b.Free(base)
	b.Ret(nil)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}

// listProgram models the unhoistable case: pointer chasing through loaded
// pointers (sglib/xalancbmk's shape). Builds no real list — the IR shape
// is what matters for the pass; the VM tests run real ones.
func listProgram() *ir.Module {
	f := ir.NewFunc("walk", 1)
	b := ir.NewBuilder(f)
	head := b.Param(0, ir.Ptr)
	zero := b.Const(0)

	loop := b.NewBlock("loop")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(loop)

	b.SetBlock(loop)
	cur := b.Phi(ir.Ptr, head, nil)
	notNull := b.Cmp(ir.CmpNE, cur, zero)
	b.CondBr(notNull, body, exit)

	b.SetBlock(body)
	eight := b.Const(8)
	valAddr := b.GEP(cur, eight)
	_ = b.Load(valAddr, ir.Int)
	next := b.Load(cur, ir.Ptr) // next pointer at offset 0
	b.Br(loop)
	cur.Args[1] = next

	b.SetBlock(exit)
	b.Ret(nil)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}

func countOps(m *ir.Module, op ir.Op) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, i := range b.Instrs {
				if i.Op == op {
					n++
				}
			}
		}
	}
	return n
}

func TestTransformGridHoistsToOutermost(t *testing.T) {
	m := gridProgram(16)
	st, err := Transform(m, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.Translates != 1 {
		t.Errorf("Translates = %d, want 1 (single hoisted translation)", st.Translates)
	}
	if st.Hoisted != 1 {
		t.Errorf("Hoisted = %d, want 1", st.Hoisted)
	}
	// The translation must sit in the outermost loop's preheader — i.e. a
	// block outside both loops.
	f := m.Funcs[0]
	lf, _ := ir.BuildLoopForest(f)
	var tr *ir.Instr
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpTranslate {
				tr = i
			}
		}
	}
	if tr == nil {
		t.Fatal("no translate instruction found")
	}
	for _, l := range lf.Top {
		if l.ContainsInstr(tr) {
			t.Error("translation was not hoisted out of the outermost loop")
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTransformGridNoHoisting(t *testing.T) {
	m := gridProgram(16)
	st, err := Transform(m, Options{Hoisting: false, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Hoisted != 0 {
		t.Errorf("Hoisted = %d, want 0 with hoisting disabled", st.Hoisted)
	}
	// Load and store share one dominating translation inside the body; at
	// least one translation must exist and it must be inside the loop.
	f := m.Funcs[0]
	lf, _ := ir.BuildLoopForest(f)
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpTranslate {
				in := false
				for _, l := range lf.Top {
					if l.ContainsInstr(i) {
						in = true
					}
				}
				if !in {
					t.Error("translation outside loops despite nohoisting")
				}
			}
		}
	}
}

func TestTransformListTranslatesPerHop(t *testing.T) {
	m := listProgram()
	st, err := Transform(m, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	// The phi root is loop-carried: its translation cannot be hoisted.
	if st.Hoisted != 0 {
		t.Errorf("Hoisted = %d, want 0 for pointer chasing", st.Hoisted)
	}
	if st.Translates == 0 {
		t.Fatal("no translations inserted")
	}
	f := m.Funcs[0]
	lf, _ := ir.BuildLoopForest(f)
	if len(lf.Top) == 0 {
		t.Fatal("loop lost during transformation")
	}
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpTranslate && i.Args[0].Op == ir.OpPhi {
				if !lf.Top[0].ContainsInstr(i) {
					t.Error("phi translation hoisted out of the loop — unsound")
				}
			}
		}
	}
}

func TestAllocationsReplaced(t *testing.T) {
	m := gridProgram(4)
	st, err := Transform(m, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.AllocsReplaced != 1 {
		t.Errorf("AllocsReplaced = %d, want 1", st.AllocsReplaced)
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, i := range b.Instrs {
				if (i.Op == ir.OpAlloc || i.Op == ir.OpFree) && i.Sub != 1 {
					t.Error("allocation not converted to halloc/hfree")
				}
			}
		}
	}
}

func TestPinSlotsAssigned(t *testing.T) {
	m := gridProgram(8)
	_, err := Transform(m, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Funcs[0]
	if f.PinSetSize < 1 {
		t.Errorf("PinSetSize = %d, want >= 1", f.PinSetSize)
	}
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpTranslate && i.Slot < 0 {
				t.Error("translate without an assigned pin slot")
			}
			if i.Op == ir.OpTranslate && i.Slot >= f.PinSetSize {
				t.Errorf("slot %d out of pin set of %d", i.Slot, f.PinSetSize)
			}
		}
	}
}

func TestPinSlotsReusedWhenDisjoint(t *testing.T) {
	// Two sequential loops over two different allocations: live ranges are
	// disjoint, so the two translations must share slot 0.
	f := ir.NewFunc("seq", 0)
	b := ir.NewBuilder(f)
	size := b.Const(256)
	a1 := b.Alloc(size)
	a2 := b.Alloc(size)
	zero := b.Const(0)
	n := b.Const(8)
	one := b.Const(1)
	eight := b.Const(8)

	l1 := b.Loop("l1", zero, n, one)
	off1 := b.Mul(l1.IndVar, eight)
	ad1 := b.GEP(a1, off1)
	b.Store(ad1, l1.IndVar)
	b.Close(l1)

	l2 := b.Loop("l2", zero, n, one)
	off2 := b.Mul(l2.IndVar, eight)
	ad2 := b.GEP(a2, off2)
	b.Store(ad2, l2.IndVar)
	b.Close(l2)
	b.Ret(nil)
	f.Finish()
	m := &ir.Module{Funcs: []*ir.Func{f}}

	st, err := Transform(m, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.Translates != 2 {
		t.Fatalf("Translates = %d, want 2", st.Translates)
	}
	if f.PinSetSize != 1 {
		t.Errorf("PinSetSize = %d, want 1 (disjoint ranges share a slot)", f.PinSetSize)
	}
}

func TestPinSlotsDistinctWhenOverlapping(t *testing.T) {
	// Copy loop: src and dst both live across the loop — two slots needed.
	f := ir.NewFunc("copy", 0)
	b := ir.NewBuilder(f)
	size := b.Const(256)
	src := b.Alloc(size)
	dst := b.Alloc(size)
	zero := b.Const(0)
	n := b.Const(8)
	one := b.Const(1)
	eight := b.Const(8)
	l := b.Loop("l", zero, n, one)
	off := b.Mul(l.IndVar, eight)
	sa := b.GEP(src, off)
	da := b.GEP(dst, off)
	v := b.Load(sa, ir.Int)
	b.Store(da, v)
	b.Close(l)
	b.Ret(nil)
	f.Finish()
	m := &ir.Module{Funcs: []*ir.Func{f}}

	_, err := Transform(m, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if f.PinSetSize != 2 {
		t.Errorf("PinSetSize = %d, want 2 (overlapping pins)", f.PinSetSize)
	}
	var slots []int
	for _, blk := range f.Blocks {
		for _, i := range blk.Instrs {
			if i.Op == ir.OpTranslate {
				slots = append(slots, i.Slot)
			}
		}
	}
	if len(slots) == 2 && slots[0] == slots[1] {
		t.Error("overlapping translations share a pin slot")
	}
}

func TestSafepointsOnBackEdgesAndEntry(t *testing.T) {
	m := gridProgram(4)
	st, err := Transform(m, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.Safepoints < 3 { // entry + 2 loop latches
		t.Errorf("Safepoints = %d, want >= 3", st.Safepoints)
	}
	f := m.Funcs[0]
	if f.Entry().Instrs[0].Op != ir.OpSafepoint {
		t.Error("no safepoint at function entry")
	}
	lf, _ := ir.BuildLoopForest(f)
	var check func(l *ir.Loop)
	check = func(l *ir.Loop) {
		for _, latch := range l.Latches {
			found := false
			for _, i := range latch.Instrs {
				if i.Op == ir.OpSafepoint {
					found = true
				}
			}
			if !found {
				t.Errorf("no safepoint on back edge of loop %s", l.Header.Name)
			}
		}
		for _, c := range l.Children {
			check(c)
		}
	}
	for _, l := range lf.Top {
		check(l)
	}
}

func TestNoTrackingSkipsSafepointsAndSlots(t *testing.T) {
	m := gridProgram(4)
	st, err := Transform(m, Options{Hoisting: true, Tracking: false})
	if err != nil {
		t.Fatal(err)
	}
	if st.Safepoints != 0 {
		t.Errorf("Safepoints = %d, want 0 in notracking mode", st.Safepoints)
	}
	if m.Funcs[0].PinSetSize != 0 {
		t.Errorf("PinSetSize = %d, want 0", m.Funcs[0].PinSetSize)
	}
	if countOps(m, ir.OpSafepoint) != 0 {
		t.Error("safepoint instructions present in notracking mode")
	}
}

func TestEscapeHandlingPinsExternalArgs(t *testing.T) {
	f := ir.NewFunc("caller", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(b.Const(64))
	n := b.Const(64)
	b.Call("ext_write", ir.Int, p, n)
	b.Ret(nil)
	f.Finish()
	m := &ir.Module{Funcs: []*ir.Func{f}}

	st, err := Transform(m, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.EscapesPinned != 1 {
		t.Errorf("EscapesPinned = %d, want 1", st.EscapesPinned)
	}
	// The call's pointer arg must now be a translation result.
	for _, blk := range m.Funcs[0].Blocks {
		for _, i := range blk.Instrs {
			if i.Op == ir.OpCall && i.Callee == "ext_write" {
				if i.Args[0].Op != ir.OpTranslate {
					t.Errorf("external call arg is %v, want translate", i.Args[0].Op)
				}
			}
		}
	}
	// A safepoint must precede the external call.
	if st.Safepoints < 1 {
		t.Error("no safepoint before external call")
	}
}

func TestInternalCallsPassHandlesUnpinned(t *testing.T) {
	callee := ir.NewFunc("callee", 1)
	cb := ir.NewBuilder(callee)
	arg := cb.Param(0, ir.Ptr)
	v := cb.Load(arg, ir.Int)
	cb.Ret(v)
	callee.Finish()

	caller := ir.NewFunc("caller", 0)
	b := ir.NewBuilder(caller)
	p := b.Alloc(b.Const(8))
	b.Call("callee", ir.Int, p)
	b.Ret(nil)
	caller.Finish()
	m := &ir.Module{Funcs: []*ir.Func{caller, callee}}

	st, err := Transform(m, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.EscapesPinned != 0 {
		t.Errorf("EscapesPinned = %d, want 0 for internal call", st.EscapesPinned)
	}
	// The callee translates its pointer parameter before loading.
	for _, blk := range callee.Blocks {
		for _, i := range blk.Instrs {
			if i.Op == ir.OpLoad && i.Args[0].Op != ir.OpTranslate && i.Args[0].Op != ir.OpGEP {
				t.Errorf("callee load address is %v, want translated", i.Args[0])
			}
		}
	}
}

func TestReleasesRemovedFromOutput(t *testing.T) {
	m := gridProgram(4)
	st, err := Transform(m, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReleasesPlaced == 0 {
		t.Error("no releases were ever placed")
	}
	if countOps(m, ir.OpRelease) != 0 {
		t.Error("release instructions remain in final program")
	}
}

func TestCodeGrowthReported(t *testing.T) {
	m := gridProgram(8)
	st, err := Transform(m, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.CodeGrowth() <= 1.0 {
		t.Errorf("CodeGrowth = %v, want > 1", st.CodeGrowth())
	}
	if st.InstrsAfter <= st.InstrsBefore {
		t.Error("instruction count did not grow")
	}
}

func TestTransformRejectsInvalidModule(t *testing.T) {
	f := ir.NewFunc("broken", 0)
	ir.NewBuilder(f).Const(1) // unterminated
	m := &ir.Module{Funcs: []*ir.Func{f}}
	if _, err := Transform(m, DefaultOptions); err == nil {
		t.Error("invalid module accepted")
	}
}

func TestTransformIdempotentVerify(t *testing.T) {
	// Output of a transform must verify and print cleanly.
	m := listProgram()
	if _, err := Transform(m, DefaultOptions); err != nil {
		t.Fatal(err)
	}
	s := m.Funcs[0].String()
	if !strings.Contains(s, "translate") {
		t.Error("printed output missing translate")
	}
}
