package compiler

import (
	"fmt"

	"alaska/internal/ir"
)

// VerifyTranslated checks the output invariant of the Alaska
// transformation: every load and store address must be raw at run time —
// i.e. derive (through GEPs) from a translation result or from a value
// that can never hold a handle. It also checks that, when tracking is
// enabled, every translation has a pin slot within its function's pin set,
// and that handle-typed values never reach memory-access address positions
// untranslated.
//
// This is the property the paper's correctness rests on ("each memory
// access to a handle will operate on the translated pointer", §4.1.2);
// the test suite runs it over every workload under every configuration.
func VerifyTranslated(m *ir.Module, opt Options) error {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, i := range b.Instrs {
				switch i.Op {
				case ir.OpLoad, ir.OpStore:
					if err := addrIsRaw(i.Args[0]); err != nil {
						return fmt.Errorf("compiler: %s: %v: %w", f.Name, i, err)
					}
				case ir.OpTranslate:
					if opt.Tracking {
						if i.Slot < 0 {
							return fmt.Errorf("compiler: %s: %v has no pin slot", f.Name, i)
						}
						if i.Slot >= f.PinSetSize {
							return fmt.Errorf("compiler: %s: %v slot %d outside pin set %d",
								f.Name, i, i.Slot, f.PinSetSize)
						}
					}
				case ir.OpRelease:
					return fmt.Errorf("compiler: %s: release instruction survived the pipeline", f.Name)
				}
			}
		}
		// Calls to external functions must not pass handle-typed values.
		for _, b := range f.Blocks {
			for _, i := range b.Instrs {
				if i.Op != ir.OpCall || m.Lookup(i.Callee) != nil {
					continue
				}
				for _, a := range i.Args {
					if a.Ty == ir.Ptr && a.Op != ir.OpTranslate {
						return fmt.Errorf("compiler: %s: handle-typed arg %v escapes to external @%s",
							f.Name, a, i.Callee)
					}
				}
			}
		}
	}
	return nil
}

// addrIsRaw walks an address chain and confirms it bottoms out at a
// translation (or at a value that cannot be a handle).
func addrIsRaw(v *ir.Instr) error {
	for v.Op == ir.OpGEP {
		v = v.Args[0]
	}
	switch v.Op {
	case ir.OpTranslate:
		return nil
	case ir.OpConst, ir.OpBin, ir.OpCmp:
		// Integer arithmetic producing an address: cannot be a live
		// handle under the §3.2 assumptions (no bit-level pointer forging
		// beyond what GEP models).
		return nil
	case ir.OpAlloc:
		if v.Sub == 0 {
			return nil // plain malloc pointer (untransformed module)
		}
		return fmt.Errorf("address derives from untranslated halloc result v%d", v.ID)
	case ir.OpLoad, ir.OpParam, ir.OpCall, ir.OpPhi:
		if v.Ty == ir.Ptr {
			return fmt.Errorf("address derives from untranslated pointer source v%d (%v)", v.ID, v.Op)
		}
		return nil
	}
	return nil
}
