// Package compiler implements the Alaska compiler passes (§4.1 of the
// paper): allocation replacement, translation insertion with loop hoisting
// (Algorithm 1), release insertion from liveness, pin-slot assignment by
// interference-graph colouring, safepoint insertion, and escape handling
// for external calls.
//
// The passes operate on the ir package's CFG form and produce a program
// the vm package executes against the Alaska runtime. The two compiler
// options the paper ablates in Figure 8 are exposed directly: Hoisting
// (the loop-invariant translation motion of §4.1.2 — disabled for
// programs that violate strict aliasing, like perlbench and gcc) and
// Tracking (pin sets + safepoints, §4.1.3).
package compiler

import (
	"fmt"
	"sort"

	"alaska/internal/ir"
)

// Options configure the transformation.
type Options struct {
	// Hoisting enables lifting translations out of loops when the base
	// pointer is loop-invariant. Disabling it models -fno-strict-aliasing
	// (each access translates individually).
	Hoisting bool
	// Tracking enables pin-set tracking and safepoint polls. Disabling it
	// is the paper's "notracking" ablation.
	Tracking bool
}

// DefaultOptions is the full Alaska configuration.
var DefaultOptions = Options{Hoisting: true, Tracking: true}

// Stats reports what the transformation did; the code-size numbers feed
// the paper's Q2 (executable growth) discussion.
type Stats struct {
	InstrsBefore    int
	InstrsAfter     int
	AllocsReplaced  int
	Translates      int // translations inserted
	Hoisted         int // of which placed in loop preheaders
	ReleasesPlaced  int
	Safepoints      int
	EscapesPinned   int
	PinSlotsTotal   int // sum of per-function pin-set sizes
	MaxPinSetSize   int
	FuncsProcessed  int
	ReusedDominated int // accesses served by an already-dominating translation
}

// CodeGrowth returns the static code-size growth factor.
func (s Stats) CodeGrowth() float64 {
	if s.InstrsBefore == 0 {
		return 1
	}
	return float64(s.InstrsAfter) / float64(s.InstrsBefore)
}

// Transform applies the Alaska pipeline to the module in place and returns
// statistics. The module must verify before and will verify after.
func Transform(m *ir.Module, opt Options) (Stats, error) {
	var st Stats
	if err := m.Verify(); err != nil {
		return st, fmt.Errorf("compiler: input module invalid: %w", err)
	}
	st.InstrsBefore = m.NumInstrs()
	for _, f := range m.Funcs {
		st.FuncsProcessed++
		replaceAllocations(f, &st)
		if err := escapeHandling(m, f, &st); err != nil {
			return st, err
		}
		if err := insertTranslations(f, opt, &st); err != nil {
			return st, err
		}
		insertReleases(f, &st)
		if opt.Tracking {
			assignPinSlots(f, &st)
			insertSafepoints(m, f, &st)
		}
		removeReleases(f)
	}
	st.InstrsAfter = m.NumInstrs()
	if err := m.Verify(); err != nil {
		return st, fmt.Errorf("compiler: output module invalid: %w", err)
	}
	return st, nil
}

// replaceAllocations converts malloc/free to their handle counterparts
// (§4.1.1). In this IR the conversion is a mode bit on the instruction
// (Sub=1 means halloc/hfree) that the VM dispatches on.
func replaceAllocations(f *ir.Func, st *Stats) {
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if (i.Op == ir.OpAlloc || i.Op == ir.OpFree) && i.Sub == 0 {
				i.Sub = 1
				if i.Op == ir.OpAlloc {
					st.AllocsReplaced++
				}
			}
		}
	}
}

// isRoot reports whether v originates pointer-ness: it produces a value
// that may be a handle and is not derived from another pointer by a
// transient operation. These are the roots of the paper's pointer-flow
// graph trees — each gets its own translation.
//
// Phi nodes over pointers are roots: a loaded or merged pointer may be a
// different handle on every arrival, which is exactly why pointer-chasing
// code cannot be hoisted (§5.4).
func isRoot(v *ir.Instr) bool {
	switch v.Op {
	case ir.OpAlloc:
		return true
	case ir.OpLoad, ir.OpParam, ir.OpCall, ir.OpPhi:
		return v.Ty == ir.Ptr
	}
	return false
}

// rootOf walks the address operand back through GEPs (the only transient
// op whose result we rewrite) to the pointer-flow root.
func rootOf(v *ir.Instr) *ir.Instr {
	for v.Op == ir.OpGEP {
		v = v.Args[0]
	}
	return v
}

// addressOnly reports whether every transitive use of the GEP g is a
// memory-access address (or another address-only GEP). Only such chains
// may be rebased onto a translated (raw) pointer; a GEP whose value
// escapes into a phi, store value, or call must keep handle arithmetic.
func addressOnly(g *ir.Instr, f *ir.Func) bool {
	users := collectUsers(f)
	var check func(v *ir.Instr) bool
	check = func(v *ir.Instr) bool {
		for _, u := range users[v] {
			switch u.Op {
			case ir.OpLoad:
				// address position only (Args[0]); loads have one arg.
			case ir.OpStore:
				if u.Args[0] != v {
					return false // stored as a value
				}
			case ir.OpGEP:
				if u.Args[0] != v || !check(u) {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	return check(g)
}

// collectUsers builds the def-use map for a function.
func collectUsers(f *ir.Func) map[*ir.Instr][]*ir.Instr {
	users := make(map[*ir.Instr][]*ir.Instr)
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			for _, a := range i.Args {
				users[a] = append(users[a], i)
			}
		}
	}
	return users
}

// insertTranslations is the reproduction of Algorithm 1. For every memory
// access whose address derives from a handle root, it guarantees a
// dominating translate of that root, hoisted to the preheader of the
// outermost loop that contains the access but not the root's definition
// (FindNestingLoop), and rebases the access's address computation onto the
// translated pointer.
func insertTranslations(f *ir.Func, opt Options, st *Stats) error {
	lf, dt := ir.BuildLoopForest(f)

	// Gather memory accesses in dominator-tree preorder so translations
	// inserted for earlier accesses can be reused by dominated ones.
	type access struct {
		instr *ir.Instr // OpLoad or OpStore
		root  *ir.Instr
	}
	var accesses []access
	order := domPreorder(f, dt)
	for _, b := range order {
		for _, i := range b.Instrs {
			switch i.Op {
			case ir.OpLoad, ir.OpStore:
				r := rootOf(i.Args[0])
				if isRoot(r) {
					accesses = append(accesses, access{i, r})
				}
			}
		}
	}

	// Per-root list of inserted translations, for dominance reuse.
	translations := make(map[*ir.Instr][]*ir.Instr)
	// GEP rebasing: a GEP chain is rewritten at most once.
	rebasedGEP := make(map[*ir.Instr]bool)

	// insertPrivate translates the full (handle-valued) address right
	// before the access — the per-access fallback, and the only mode when
	// hoisting is disabled ("translating handles before each load and
	// store", §5.2).
	insertPrivate := func(a access) {
		priv := newTranslate(f, a.instr.Args[0])
		a.instr.Block.InsertBefore(priv, a.instr)
		a.instr.Args[0] = priv
		st.Translates++
	}

	// getTranslation returns a translation of root that dominates `need`,
	// inserting one if no existing translation qualifies.
	getTranslation := func(a access, need *ir.Instr) *ir.Instr {
		for _, cand := range translations[a.root] {
			if dt.InstrDominates(cand, need) {
				st.ReusedDominated++
				return cand
			}
		}
		pos, hoisted := hoistPosition(a.instr, a.root, lf, dt, opt)
		// The chosen position must dominate the needing instruction; the
		// root-adjacent or preheader positions always do, because the
		// root dominates every instruction deriving from it.
		l := newTranslate(f, a.root)
		pos.block.InsertBefore(l, pos.before)
		if hoisted {
			st.Hoisted++
		}
		st.Translates++
		translations[a.root] = append(translations[a.root], l)
		// Inserting within existing blocks does not change the CFG, so dt
		// remains valid; intra-block ordering is re-scanned by
		// InstrDominates.
		return l
	}

	for _, a := range accesses {
		if !opt.Hoisting {
			insertPrivate(a)
			continue
		}
		addr := a.instr.Args[0]
		if addr == a.root {
			// Direct access through the root.
			a.instr.Args[0] = getTranslation(a, a.instr)
			continue
		}
		if addr.Op == ir.OpTranslate {
			continue // already raw (escape pass output)
		}
		// Walk the GEP chain.
		end := addr
		for end.Op == ir.OpGEP {
			end = end.Args[0]
		}
		if end.Op == ir.OpTranslate {
			continue // chain already rebased by an earlier access
		}
		g := addr
		for g.Op == ir.OpGEP && g.Args[0] != a.root {
			g = g.Args[0]
		}
		if g.Op == ir.OpGEP && g.Args[0] == a.root && !rebasedGEP[g] && addressOnly(g, f) {
			l := getTranslation(a, g)
			g.Args[0] = l
			rebasedGEP[g] = true
			continue
		}
		insertPrivate(a)
	}
	return nil
}

// insertPos is a position before a specific instruction in a block.
type insertPos struct {
	block  *ir.Block
	before *ir.Instr
}

// hoistPosition implements Translate/FindNestingLoop from Algorithm 1: it
// climbs the loop nesting tree from the innermost loop containing the
// access while the loop still contains the access but not the root's
// definition, and returns the preheader terminator of the outermost such
// loop. With hoisting disabled — or when no loop qualifies — the position
// is immediately before the access itself.
func hoistPosition(acc, root *ir.Instr, lf *ir.LoopForest, dt *ir.DomTree, opt Options) (insertPos, bool) {
	l := lf.InnermostContaining(acc.Block)
	var best *ir.Loop
	for l != nil {
		if l.ContainsInstr(acc) && !l.ContainsInstr(root) && rootAvailableAt(root, l.Preheader, dt) {
			best = l
			l = l.Parent
			continue
		}
		break
	}
	if best == nil || best.Preheader == nil {
		return afterDef(root), false
	}
	term := best.Preheader.Instrs[len(best.Preheader.Instrs)-1]
	return insertPos{best.Preheader, term}, true
}

// afterDef returns the position immediately after the root's definition
// (after the whole phi group when the root is a phi), which dominates
// every instruction that can use the root.
func afterDef(root *ir.Instr) insertPos {
	b := root.Block
	idx := -1
	for k, i := range b.Instrs {
		if i == root {
			idx = k
			break
		}
	}
	if idx < 0 {
		panic("compiler: root not found in its block")
	}
	k := idx + 1
	if root.Op == ir.OpPhi {
		for k < len(b.Instrs) && b.Instrs[k].Op == ir.OpPhi {
			k++
		}
	}
	// Every verified block ends with a terminator, so k is in range.
	return insertPos{b, b.Instrs[k]}
}

// rootAvailableAt reports whether the root's definition is available at
// the end of block b (i.e. a translation inserted there would have its
// operand defined). Roots defined in b itself are available because
// insertion is before the terminator.
func rootAvailableAt(root *ir.Instr, b *ir.Block, dt *ir.DomTree) bool {
	if b == nil {
		return false
	}
	if root.Block == b {
		return true
	}
	return dt.Dominates(root.Block, b)
}

// newTranslate creates a translate instruction for root. ID assignment
// goes through the function to stay dense.
func newTranslate(f *ir.Func, root *ir.Instr) *ir.Instr {
	l := f.NewRawInstr(ir.OpTranslate)
	l.Ty = ir.Ptr
	l.Args = []*ir.Instr{root}
	return l
}

// domPreorder returns blocks in dominator-tree preorder (entry first).
func domPreorder(f *ir.Func, dt *ir.DomTree) []*ir.Block {
	children := make(map[*ir.Block][]*ir.Block)
	for _, b := range f.Blocks {
		if b.Index == 0 {
			continue
		}
		id := dt.IDom(b)
		if id != nil {
			children[id] = append(children[id], b)
		}
	}
	var out []*ir.Block
	var rec func(b *ir.Block)
	rec = func(b *ir.Block) {
		out = append(out, b)
		kids := children[b]
		sort.Slice(kids, func(i, j int) bool { return kids[i].Index < kids[j].Index })
		for _, k := range kids {
			rec(k)
		}
	}
	rec(f.Entry())
	return out
}
