package compiler

import (
	"alaska/internal/ir"
)

// This file implements the tracking half of the Alaska compiler (§4.1.3):
// release insertion from liveness, pin-set slot assignment by greedy
// interference-graph colouring (the register-allocation-like algorithm the
// paper describes), safepoint insertion, and the escape pass for external
// calls (§4.1.4).

// groupsOf maps every value that carries a translated pointer back to the
// translate instruction it derives from (through rebased GEP chains). The
// live range of a pin is the union of its group's members' live ranges:
// the object must stay pinned while any derived raw pointer is usable.
func groupsOf(f *ir.Func) map[*ir.Instr]*ir.Instr {
	g := make(map[*ir.Instr]*ir.Instr)
	// Iterate in program order; GEPs always appear after their base
	// definition in builder-generated code, but loop until fixpoint to be
	// safe with arbitrary block layouts.
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, i := range b.Instrs {
				switch i.Op {
				case ir.OpTranslate:
					if g[i] != i {
						g[i] = i
						changed = true
					}
				case ir.OpGEP:
					if base := g[i.Args[0]]; base != nil && g[i] != base {
						g[i] = base
						changed = true
					}
				}
			}
		}
	}
	return g
}

// insertReleases places an OpRelease after the last use of each
// translation's pin group, per the liveness analysis (§4.1.2: "for each
// ptr = translate(handle), release(handle) calls are inserted immediately
// at the end of ptr's lifetime"). Releases are informational — they
// delimit live ranges for slot assignment and are removed before the
// program runs.
func insertReleases(f *ir.Func, st *Stats) {
	groups := groupsOf(f)
	lv := ir.BuildLiveness(f)

	for _, b := range f.Blocks {
		// Groups with a member live out of this block die elsewhere.
		liveOut := make(map[*ir.Instr]bool)
		for vid := range lv.LiveOut[b.Index] {
			if tr := groupByID(groups, f, vid); tr != nil {
				liveOut[tr] = true
			}
		}
		// Walk backward; the first (last in program order) use of a group
		// that is not live-out gets a release after it.
		released := make(map[*ir.Instr]bool)
		var toInsert []struct{ after, rel *ir.Instr }
		for k := len(b.Instrs) - 1; k >= 0; k-- {
			i := b.Instrs[k]
			if i.Op == ir.OpRelease {
				continue
			}
			for _, a := range i.Args {
				tr := groups[a]
				if tr == nil || liveOut[tr] || released[tr] {
					continue
				}
				released[tr] = true
				rel := f.NewRawInstr(ir.OpRelease)
				rel.Args = []*ir.Instr{tr}
				toInsert = append(toInsert, struct{ after, rel *ir.Instr }{i, rel})
			}
		}
		for _, ins := range toInsert {
			// Never insert after a terminator.
			if t := b.Term(); t == ins.after {
				b.InsertBefore(ins.rel, t)
			} else {
				b.InsertAfter(ins.rel, ins.after)
			}
			st.ReleasesPlaced++
		}
	}

	// Second pass: groups that die on a control-flow edge (live out of a
	// predecessor, not live into the successor) — the loop-exit case —
	// get their release at the top of the successor block.
	for _, b := range f.Blocks {
		liveIn := make(map[*ir.Instr]bool)
		for vid := range lv.LiveIn[b.Index] {
			if tr := groupByID(groups, f, vid); tr != nil {
				liveIn[tr] = true
			}
		}
		placed := make(map[*ir.Instr]bool)
		for _, p := range b.Preds {
			for vid := range lv.LiveOut[p.Index] {
				tr := groupByID(groups, f, vid)
				if tr == nil || liveIn[tr] || placed[tr] {
					continue
				}
				placed[tr] = true
				rel := f.NewRawInstr(ir.OpRelease)
				rel.Args = []*ir.Instr{tr}
				// Releases go after any phis at the block head.
				pos := 0
				for pos < len(b.Instrs) && b.Instrs[pos].Op == ir.OpPhi {
					pos++
				}
				if pos < len(b.Instrs) {
					b.InsertBefore(rel, b.Instrs[pos])
				}
				st.ReleasesPlaced++
			}
		}
	}
}

// groupByID finds the translate owning the value with the given ID.
func groupByID(groups map[*ir.Instr]*ir.Instr, f *ir.Func, id int) *ir.Instr {
	for v, tr := range groups {
		if v.ID == id {
			return tr
		}
	}
	return nil
}

// removeReleases strips all OpRelease markers (§4.1.2: removed before the
// program is run).
func removeReleases(f *ir.Func) {
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, i := range b.Instrs {
			if i.Op != ir.OpRelease {
				kept = append(kept, i)
			}
		}
		b.Instrs = kept
	}
}

// assignPinSlots gives each static translation a slot in its function's
// pin set using greedy colouring of the pin-group interference graph —
// "a greedy interference graph-based allocation strategy similar to a
// register allocation algorithm" (§4.1.3). The pin set is sized to the
// chromatic number found.
func assignPinSlots(f *ir.Func, st *Stats) {
	groups := groupsOf(f)
	lv := ir.BuildLiveness(f)

	// Collect translations in deterministic order.
	var translates []*ir.Instr
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpTranslate {
				translates = append(translates, i)
			}
		}
	}
	if len(translates) == 0 {
		f.PinSetSize = 0
		return
	}

	// Interference: recorded at each translation's definition against all
	// groups live at that point (backward per-block scan).
	interf := make(map[*ir.Instr]map[*ir.Instr]bool)
	addEdge := func(a, b *ir.Instr) {
		if a == b {
			return
		}
		if interf[a] == nil {
			interf[a] = make(map[*ir.Instr]bool)
		}
		if interf[b] == nil {
			interf[b] = make(map[*ir.Instr]bool)
		}
		interf[a][b] = true
		interf[b][a] = true
	}
	for _, b := range f.Blocks {
		live := make(map[*ir.Instr]bool)
		for vid := range lv.LiveOut[b.Index] {
			if tr := groupByID(groups, f, vid); tr != nil {
				live[tr] = true
			}
		}
		for k := len(b.Instrs) - 1; k >= 0; k-- {
			i := b.Instrs[k]
			if i.Op == ir.OpTranslate {
				for other := range live {
					addEdge(i, other)
				}
				delete(live, i)
			}
			for _, a := range i.Args {
				if tr := groups[a]; tr != nil {
					live[tr] = true
				}
			}
		}
	}

	// Greedy colouring in program order.
	maxColor := -1
	for _, tr := range translates {
		used := make(map[int]bool)
		for other := range interf[tr] {
			if other.Slot >= 0 {
				used[other.Slot] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		tr.Slot = c
		if c > maxColor {
			maxColor = c
		}
	}
	f.PinSetSize = maxColor + 1
	st.PinSlotsTotal += f.PinSetSize
	if f.PinSetSize > st.MaxPinSetSize {
		st.MaxPinSetSize = f.PinSetSize
	}
}

// insertSafepoints places poll points on loop back edges, at the entry of
// functions that translate handles, and before external calls (§4.1.3).
func insertSafepoints(m *ir.Module, f *ir.Func, st *Stats) {
	hasTranslate := false
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpTranslate || i.Op == ir.OpAlloc {
				hasTranslate = true
			}
		}
	}
	add := func(b *ir.Block, before *ir.Instr) {
		sp := f.NewRawInstr(ir.OpSafepoint)
		b.InsertBefore(sp, before)
		st.Safepoints++
	}
	// Function entry.
	if hasTranslate && len(f.Entry().Instrs) > 0 {
		add(f.Entry(), f.Entry().Instrs[0])
	}
	// Loop back edges: latch terminators.
	lf, _ := ir.BuildLoopForest(f)
	seen := make(map[*ir.Block]bool)
	var visit func(l *ir.Loop)
	visit = func(l *ir.Loop) {
		for _, latch := range l.Latches {
			if !seen[latch] {
				seen[latch] = true
				add(latch, latch.Instrs[len(latch.Instrs)-1])
			}
		}
		for _, c := range l.Children {
			visit(c)
		}
	}
	for _, l := range lf.Top {
		visit(l)
	}
	// Before external calls.
	for _, b := range f.Blocks {
		var ext []*ir.Instr
		for _, i := range b.Instrs {
			if i.Op == ir.OpCall && m.Lookup(i.Callee) == nil {
				ext = append(ext, i)
			}
		}
		for _, c := range ext {
			add(b, c)
		}
	}
}

// escapeHandling pins handles that escape into external (uncompiled) code:
// for each pointer argument of a call to a function outside the module, a
// translation is inserted before the call and the raw pointer is passed
// instead (§4.1.4).
func escapeHandling(m *ir.Module, f *ir.Func, st *Stats) error {
	for _, b := range f.Blocks {
		// Snapshot: we mutate the instruction list while iterating.
		instrs := append([]*ir.Instr(nil), b.Instrs...)
		for _, i := range instrs {
			if i.Op != ir.OpCall || m.Lookup(i.Callee) != nil {
				continue
			}
			for k, a := range i.Args {
				if a.Ty != ir.Ptr {
					continue
				}
				if a.Op == ir.OpTranslate {
					continue // already raw
				}
				l := newTranslate(f, a)
				b.InsertBefore(l, i)
				i.Args[k] = l
				st.EscapesPinned++
				st.Translates++
			}
		}
	}
	return nil
}
