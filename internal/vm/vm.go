// Package vm executes IR programs against either a plain allocator (the
// baseline) or the Alaska runtime (after the compiler transformation),
// counting simulated CPU cycles per instruction.
//
// The paper measures wall-clock overhead on an EPYC testbed; this
// reproduction measures cycle-count overhead under an explicit cost model.
// What carries over is the *structure* of the result: overhead is the
// number and placement of dynamic translations, pin-set stores, and
// safepoint polls relative to the work the program does — exactly what
// the interpreter counts. The translation costs follow Figure 5: a
// not-a-handle check costs two instructions (cmp + branch), a full
// translation six (check, shift, truncate, HTE load, add), plus one store
// to the stack pin set when tracking is enabled.
package vm

import (
	"fmt"

	"alaska/internal/handle"
	"alaska/internal/ir"
	"alaska/internal/mallocsim"
	"alaska/internal/mem"
	"alaska/internal/rt"
)

// CostModel assigns cycle costs to dynamic events.
type CostModel struct {
	Simple       int64 // ALU op, compare, GEP
	Load         int64 // memory load (L1-hit scale)
	Store        int64 // memory store
	Branch       int64 // taken/untaken branch
	CallOverhead int64 // call + return bookkeeping
	AllocCost    int64 // allocator fast path
	FreeCost     int64
	// TransPointer is the cost when the checked value is a raw pointer:
	// the cmp + branch of Figure 5.
	TransPointer int64
	// TransHandle is the full handle path of Figure 5: check, extract,
	// truncate, HTE load, add.
	TransHandle int64
	// PinStore is the store of the handle into the stack pin set.
	PinStore int64
	// Poll is the cost of one safepoint poll. The paper's polls are NOPs
	// that should be free, but §5.4 attributes residual tracking overhead
	// (nab, xz) to LLVM StackMaps backend effects; workloads model that
	// with a nonzero per-poll cost.
	Poll int64
	// FaultCheck is the extra per-translation cost of the optional
	// handle-fault ("swapping") check of §7.
	FaultCheck int64
}

// DefaultCosts is the cost model used throughout the evaluation.
var DefaultCosts = CostModel{
	Simple:       1,
	Load:         4,
	Store:        2,
	Branch:       1,
	CallOverhead: 8,
	AllocCost:    40,
	FreeCost:     24,
	TransPointer: 2,
	TransHandle:  8,
	PinStore:     1,
	Poll:         0,
	FaultCheck:   0,
}

// External is a host function callable from IR programs. Arguments arrive
// raw (escape handling has already translated pointer args).
type External func(m *Machine, args []uint64) (uint64, error)

// Machine interprets one module. It runs either in baseline mode (Malloc
// set) or Alaska mode (Runtime/Thread set) depending on how it was built.
type Machine struct {
	Space  *mem.Space
	Module *ir.Module
	Costs  CostModel

	// Baseline mode.
	Malloc *mallocsim.Allocator

	// Alaska mode.
	Runtime *rt.Runtime
	Thread  *rt.Thread

	// Cycles is the accumulated simulated cycle count.
	Cycles int64
	// DynInstrs counts interpreted instructions.
	DynInstrs int64
	// MaxSteps guards against runaway programs (0 = default limit).
	MaxSteps int64

	externals map[string]External
}

// NewBaseline builds a machine that runs the (untransformed) module with a
// conventional allocator and raw pointers.
func NewBaseline(m *ir.Module, costs CostModel) *Machine {
	space := mem.NewSpace()
	return &Machine{
		Space:     space,
		Module:    m,
		Costs:     costs,
		Malloc:    mallocsim.New(space),
		externals: builtinExternals(),
	}
}

// NewAlaska builds a machine that runs the (transformed) module against an
// Alaska runtime backed by the malloc service — the §5.4 overhead
// configuration.
func NewAlaska(m *ir.Module, costs CostModel) (*Machine, error) {
	space := mem.NewSpace()
	r, err := rt.New(space, mallocsim.NewService(space))
	if err != nil {
		return nil, err
	}
	return &Machine{
		Space:     space,
		Module:    m,
		Costs:     costs,
		Runtime:   r,
		Thread:    r.NewThread(),
		externals: builtinExternals(),
	}, nil
}

// NewAlaskaWithRuntime builds a machine on an existing runtime (used by
// defragmentation experiments where a service is attached).
func NewAlaskaWithRuntime(m *ir.Module, costs CostModel, r *rt.Runtime) *Machine {
	return &Machine{
		Space:     r.Space,
		Module:    m,
		Costs:     costs,
		Runtime:   r,
		Thread:    r.NewThread(),
		externals: builtinExternals(),
	}
}

// RegisterExternal installs a host function.
func (m *Machine) RegisterExternal(name string, fn External) {
	m.externals[name] = fn
}

// Run executes the named function with the given arguments and returns its
// result.
func (m *Machine) Run(fnName string, args ...uint64) (uint64, error) {
	f := m.Module.Lookup(fnName)
	if f == nil {
		return 0, fmt.Errorf("vm: no function %q", fnName)
	}
	limit := m.MaxSteps
	if limit == 0 {
		limit = 2_000_000_000
	}
	st := &state{m: m, limit: limit}
	v, err := st.call(f, args)
	if err != nil {
		return 0, fmt.Errorf("vm: %s: %w", fnName, err)
	}
	return v, nil
}

// state is the per-run interpreter state.
type state struct {
	m     *Machine
	limit int64
	depth int
}

const maxDepth = 256

// call interprets one function invocation.
func (st *state) call(f *ir.Func, args []uint64) (uint64, error) {
	m := st.m
	st.depth++
	if st.depth > maxDepth {
		return 0, fmt.Errorf("call depth exceeded")
	}
	defer func() { st.depth-- }()

	m.Cycles += m.Costs.CallOverhead
	regs := make([]uint64, f.NumValues())

	// Push this invocation's pin set (free at runtime: a stack array).
	tracked := m.Thread != nil && f.PinSetSize > 0
	if tracked {
		m.Thread.PushFrame(f.PinSetSize)
		defer m.Thread.PopFrame()
	}

	blk := f.Entry()
	var prev *ir.Block
	for {
		// Resolve phis first (all at block head, in parallel).
		if prev != nil {
			predIdx := -1
			for k, p := range blk.Preds {
				if p == prev {
					predIdx = k
					break
				}
			}
			var phiVals []uint64
			var phis []*ir.Instr
			for _, i := range blk.Instrs {
				if i.Op != ir.OpPhi {
					break
				}
				if predIdx < 0 || predIdx >= len(i.Args) {
					return 0, fmt.Errorf("phi in %s has no incoming for pred", blk.Name)
				}
				phis = append(phis, i)
				phiVals = append(phiVals, regs[i.Args[predIdx].ID])
			}
			for k, i := range phis {
				regs[i.ID] = phiVals[k]
			}
		}

		for _, i := range blk.Instrs {
			if i.Op == ir.OpPhi {
				continue
			}
			m.DynInstrs++
			if m.DynInstrs > st.limit {
				return 0, fmt.Errorf("step limit exceeded (%d)", st.limit)
			}
			switch i.Op {
			case ir.OpConst:
				regs[i.ID] = uint64(i.Const)
				m.Cycles += m.Costs.Simple
			case ir.OpParam:
				n := int(i.Const)
				if n >= len(args) {
					return 0, fmt.Errorf("param %d of %d", n, len(args))
				}
				regs[i.ID] = args[n]
			case ir.OpBin:
				a, b := regs[i.Args[0].ID], regs[i.Args[1].ID]
				v, err := evalBin(i.Sub, a, b)
				if err != nil {
					return 0, err
				}
				regs[i.ID] = v
				m.Cycles += m.Costs.Simple
			case ir.OpCmp:
				a, b := int64(regs[i.Args[0].ID]), int64(regs[i.Args[1].ID])
				regs[i.ID] = boolToU64(evalCmp(i.Sub, a, b))
				m.Cycles += m.Costs.Simple
			case ir.OpGEP:
				base := regs[i.Args[0].ID]
				off := int64(regs[i.Args[1].ID])
				h := handle.Handle(base)
				if h.IsHandle() {
					regs[i.ID] = uint64(h.Add(off))
				} else {
					regs[i.ID] = uint64(int64(base) + off)
				}
				m.Cycles += m.Costs.Simple
			case ir.OpLoad:
				addr := regs[i.Args[0].ID]
				v, err := m.loadWord(addr)
				if err != nil {
					return 0, err
				}
				regs[i.ID] = v
				m.Cycles += m.Costs.Load
			case ir.OpStore:
				addr := regs[i.Args[0].ID]
				if err := m.storeWord(addr, regs[i.Args[1].ID]); err != nil {
					return 0, err
				}
				m.Cycles += m.Costs.Store
			case ir.OpAlloc:
				size := regs[i.Args[0].ID]
				v, err := m.alloc(i.Sub == 1, size)
				if err != nil {
					return 0, err
				}
				regs[i.ID] = v
				m.Cycles += m.Costs.AllocCost
			case ir.OpFree:
				if err := m.free(i.Sub == 1, regs[i.Args[0].ID]); err != nil {
					return 0, err
				}
				m.Cycles += m.Costs.FreeCost
			case ir.OpTranslate:
				v, err := m.translate(regs[i.Args[0].ID], i.Slot)
				if err != nil {
					return 0, err
				}
				regs[i.ID] = v
			case ir.OpSafepoint:
				if m.Thread != nil {
					m.Thread.Safepoint()
				}
				m.Cycles += m.Costs.Poll
			case ir.OpCall:
				v, err := st.dispatchCall(i, regs)
				if err != nil {
					return 0, err
				}
				regs[i.ID] = v
			case ir.OpRet:
				m.Cycles += m.Costs.Branch
				if len(i.Args) > 0 {
					return regs[i.Args[0].ID], nil
				}
				return 0, nil
			case ir.OpBr:
				m.Cycles += m.Costs.Branch
				prev, blk = blk, i.Targets[0]
			case ir.OpCondBr:
				m.Cycles += m.Costs.Branch
				if regs[i.Args[0].ID] != 0 {
					prev, blk = blk, i.Targets[0]
				} else {
					prev, blk = blk, i.Targets[1]
				}
			case ir.OpRelease:
				// Removed by the compiler; a no-op if present (tests).
			default:
				return 0, fmt.Errorf("unknown op %v", i.Op)
			}
			if i.Op == ir.OpBr || i.Op == ir.OpCondBr {
				break
			}
		}
	}
}

// dispatchCall handles OpCall for both internal and external callees.
func (st *state) dispatchCall(i *ir.Instr, regs []uint64) (uint64, error) {
	m := st.m
	callArgs := make([]uint64, len(i.Args))
	for k, a := range i.Args {
		callArgs[k] = regs[a.ID]
	}
	m.Cycles += m.Costs.CallOverhead
	if callee := m.Module.Lookup(i.Callee); callee != nil {
		return st.call(callee, callArgs)
	}
	ext := m.externals[i.Callee]
	if ext == nil {
		return 0, fmt.Errorf("call to unknown external %q", i.Callee)
	}
	if m.Thread != nil {
		m.Thread.EnterExternal()
		defer m.Thread.ExitExternal()
	}
	return ext(m, callArgs)
}

// translate implements OpTranslate with Figure 5's cost split.
func (m *Machine) translate(v uint64, slot int) (uint64, error) {
	h := handle.Handle(v)
	m.Cycles += m.Costs.FaultCheck
	if !h.IsHandle() {
		m.Cycles += m.Costs.TransPointer
		return v, nil
	}
	m.Cycles += m.Costs.TransHandle
	if m.Thread == nil {
		return 0, fmt.Errorf("translate of handle %v outside Alaska mode", h)
	}
	if slot >= 0 {
		m.Cycles += m.Costs.PinStore
		a, err := m.Thread.TranslateAndPin(h, slot)
		return uint64(a), err
	}
	a, err := m.Thread.Translate(h)
	return uint64(a), err
}

// loadWord reads 8 bytes at addr; untranslated handles fault naturally
// (the address has the top bit set and is unmapped — footnote 5).
func (m *Machine) loadWord(addr uint64) (uint64, error) {
	return m.Space.ReadU64(mem.Addr(addr))
}

func (m *Machine) storeWord(addr, v uint64) error {
	return m.Space.WriteU64(mem.Addr(addr), v)
}

// alloc dispatches to halloc or malloc per the instruction's mode bit.
func (m *Machine) alloc(handleMode bool, size uint64) (uint64, error) {
	if handleMode {
		if m.Runtime == nil {
			return 0, fmt.Errorf("halloc in baseline machine")
		}
		h, err := m.Runtime.Halloc(size)
		return uint64(h), err
	}
	if m.Malloc == nil {
		return 0, fmt.Errorf("malloc in Alaska machine (module not transformed?)")
	}
	a, err := m.Malloc.Alloc(size)
	return uint64(a), err
}

func (m *Machine) free(handleMode bool, v uint64) error {
	if handleMode {
		if m.Runtime == nil {
			return fmt.Errorf("hfree in baseline machine")
		}
		return m.Runtime.Hfree(handle.Handle(v))
	}
	if m.Malloc == nil {
		return fmt.Errorf("free in Alaska machine")
	}
	return m.Malloc.Free(mem.Addr(v))
}

// Close releases runtime resources.
func (m *Machine) Close() error {
	if m.Thread != nil {
		if err := m.Thread.Destroy(); err != nil {
			return err
		}
		m.Thread = nil
	}
	if m.Runtime != nil {
		return m.Runtime.Close()
	}
	return nil
}

func evalBin(sub int, a, b uint64) (uint64, error) {
	switch sub {
	case ir.BinAdd:
		return a + b, nil
	case ir.BinSub:
		return a - b, nil
	case ir.BinMul:
		return a * b, nil
	case ir.BinDiv:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return uint64(int64(a) / int64(b)), nil
	case ir.BinRem:
		if b == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		return uint64(int64(a) % int64(b)), nil
	case ir.BinAnd:
		return a & b, nil
	case ir.BinOr:
		return a | b, nil
	case ir.BinXor:
		return a ^ b, nil
	case ir.BinShl:
		return a << (b & 63), nil
	case ir.BinShr:
		return a >> (b & 63), nil
	}
	return 0, fmt.Errorf("unknown binop %d", sub)
}

func evalCmp(sub int, a, b int64) bool {
	switch sub {
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	case ir.CmpLT:
		return a < b
	case ir.CmpLE:
		return a <= b
	case ir.CmpGT:
		return a > b
	case ir.CmpGE:
		return a >= b
	}
	return false
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// builtinExternals returns the default host-function set used by the
// workload models to exercise escape handling.
func builtinExternals() map[string]External {
	return map[string]External{
		// ext_sink consumes a value; models write(2)-style syscall sinks.
		"ext_sink": func(m *Machine, args []uint64) (uint64, error) {
			m.Cycles += 20
			return 0, nil
		},
		// ext_fill(ptr, n) writes n bytes of a pattern at raw ptr.
		"ext_fill": func(m *Machine, args []uint64) (uint64, error) {
			if len(args) < 2 {
				return 0, fmt.Errorf("ext_fill needs (ptr, n)")
			}
			n := args[1]
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(i)
			}
			m.Cycles += int64(n) / 8
			return 0, m.Space.Write(mem.Addr(args[0]), buf)
		},
		// ext_sum(ptr, n) reads and sums n bytes at raw ptr.
		"ext_sum": func(m *Machine, args []uint64) (uint64, error) {
			if len(args) < 2 {
				return 0, fmt.Errorf("ext_sum needs (ptr, n)")
			}
			buf := make([]byte, args[1])
			if err := m.Space.Read(mem.Addr(args[0]), buf); err != nil {
				return 0, err
			}
			var s uint64
			for _, b := range buf {
				s += uint64(b)
			}
			m.Cycles += int64(args[1]) / 8
			return s, nil
		},
	}
}
