package vm

import (
	"testing"

	"alaska/internal/compiler"
	"alaska/internal/ir"
)

// sumArrayMem builds: allocate n*8 bytes, fill a[i]=i, then sum it,
// accumulating into a scratch allocation.
func sumArrayMem(n int64) *ir.Module {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	size := b.Const(n * 8)
	base := b.Alloc(size)
	scratch := b.Alloc(b.Const(8))
	zero := b.Const(0)
	end := b.Const(n)
	one := b.Const(1)
	eight := b.Const(8)

	fill := b.Loop("fill", zero, end, one)
	off := b.Mul(fill.IndVar, eight)
	addr := b.GEP(base, off)
	b.Store(addr, fill.IndVar)
	b.Close(fill)

	b.Store(scratch, zero)
	sum := b.Loop("sum", zero, end, one)
	soff := b.Mul(sum.IndVar, eight)
	saddr := b.GEP(base, soff)
	v := b.Load(saddr, ir.Int)
	cur := b.Load(scratch, ir.Int)
	nv := b.Add(cur, v)
	b.Store(scratch, nv)
	b.Close(sum)
	res := b.Load(scratch, ir.Int)
	b.Free(base)
	b.Free(scratch)
	b.Ret(res)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}

// linkedList builds an n-node list (node = [next, value]) then walks it
// summing values — the pointer-chasing archetype.
func linkedList(n int64) *ir.Module {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	zero := b.Const(0)
	one := b.Const(1)
	n16 := b.Const(16)
	end := b.Const(n)
	eight := b.Const(8)

	// head slot in scratch memory so the build loop can prepend.
	scratch := b.Alloc(eight)
	b.Store(scratch, zero)

	build := b.Loop("build", zero, end, one)
	node := b.Alloc(n16)
	oldHead := b.Load(scratch, ir.Ptr)
	b.Store(node, oldHead) // node.next = head
	valAddr := b.GEP(node, eight)
	b.Store(valAddr, build.IndVar) // node.value = i
	b.Store(scratch, node)         // head = node
	b.Close(build)

	// Walk.
	acc := b.Alloc(eight)
	b.Store(acc, zero)
	head := b.Load(scratch, ir.Ptr)

	loopB := b.NewBlock("walk")
	bodyB := b.NewBlock("walkbody")
	exitB := b.NewBlock("walkexit")
	b.Br(loopB)
	b.SetBlock(loopB)
	cur := b.Phi(ir.Ptr, head, nil)
	cond := b.Cmp(ir.CmpNE, cur, zero)
	b.CondBr(cond, bodyB, exitB)
	b.SetBlock(bodyB)
	va := b.GEP(cur, eight)
	v := b.Load(va, ir.Int)
	a0 := b.Load(acc, ir.Int)
	a1 := b.Add(a0, v)
	b.Store(acc, a1)
	next := b.Load(cur, ir.Ptr)
	b.Br(loopB)
	cur.Args[1] = next
	b.SetBlock(exitB)
	res := b.Load(acc, ir.Int)
	b.Ret(res)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}

func runBoth(t *testing.T, build func() *ir.Module, opt compiler.Options) (baseCycles, alaskaCycles int64, baseV, alaskaV uint64) {
	t.Helper()
	base := build()
	mb := NewBaseline(base, DefaultCosts)
	bv, err := mb.Run("main")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	mod := build()
	if _, err := compiler.Transform(mod, opt); err != nil {
		t.Fatalf("transform: %v", err)
	}
	ma, err := NewAlaska(mod, DefaultCosts)
	if err != nil {
		t.Fatal(err)
	}
	av, err := ma.Run("main")
	if err != nil {
		t.Fatalf("alaska: %v", err)
	}
	if err := ma.Close(); err != nil {
		t.Fatal(err)
	}
	return mb.Cycles, ma.Cycles, bv, av
}

func TestSumArraySemanticsPreserved(t *testing.T) {
	bc, ac, bv, av := runBoth(t, func() *ir.Module { return sumArrayMem(100) }, compiler.DefaultOptions)
	want := uint64(100 * 99 / 2)
	if bv != want {
		t.Errorf("baseline result = %d, want %d", bv, want)
	}
	if av != want {
		t.Errorf("alaska result = %d, want %d", av, want)
	}
	if ac <= bc {
		t.Errorf("alaska cycles %d <= baseline %d; handles cannot be free", ac, bc)
	}
	// Hoisted translations amortize: overhead must be modest (< 30%).
	over := float64(ac-bc) / float64(bc)
	if over > 0.30 {
		t.Errorf("hoistable workload overhead = %.1f%%, want < 30%%", over*100)
	}
}

func TestLinkedListSemanticsPreserved(t *testing.T) {
	bc, ac, bv, av := runBoth(t, func() *ir.Module { return linkedList(200) }, compiler.DefaultOptions)
	want := uint64(200 * 199 / 2)
	if bv != want {
		t.Errorf("baseline result = %d, want %d", bv, want)
	}
	if av != want {
		t.Errorf("alaska result = %d, want %d", av, want)
	}
	if ac <= bc {
		t.Error("pointer chasing should cost more under handles")
	}
}

func TestPointerChasingCostsMoreThanGrid(t *testing.T) {
	_, gridA, _, _ := runBoth(t, func() *ir.Module { return sumArrayMem(500) }, compiler.DefaultOptions)
	gridB := NewBaseline(sumArrayMem(500), DefaultCosts)
	if _, err := gridB.Run("main"); err != nil {
		t.Fatal(err)
	}
	gridOver := float64(gridA-gridB.Cycles) / float64(gridB.Cycles)

	listB := NewBaseline(linkedList(500), DefaultCosts)
	if _, err := listB.Run("main"); err != nil {
		t.Fatal(err)
	}
	listMod := linkedList(500)
	if _, err := compiler.Transform(listMod, compiler.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	listM, err := NewAlaska(listMod, DefaultCosts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := listM.Run("main"); err != nil {
		t.Fatal(err)
	}
	listOver := float64(listM.Cycles-listB.Cycles) / float64(listB.Cycles)

	if listOver <= gridOver {
		t.Errorf("list overhead %.1f%% <= grid overhead %.1f%%; Figure 7's shape requires pointer chasing to suffer more",
			listOver*100, gridOver*100)
	}
}

func TestNoHoistingDoublesGridOverhead(t *testing.T) {
	base := NewBaseline(sumArrayMem(500), DefaultCosts)
	if _, err := base.Run("main"); err != nil {
		t.Fatal(err)
	}

	over := func(opt compiler.Options) float64 {
		mod := sumArrayMem(500)
		if _, err := compiler.Transform(mod, opt); err != nil {
			t.Fatal(err)
		}
		m, err := NewAlaska(mod, DefaultCosts)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := m.Run("main"); err != nil || v != 500*499/2 {
			t.Fatalf("run: v=%d err=%v", v, err)
		}
		return float64(m.Cycles-base.Cycles) / float64(base.Cycles)
	}
	hoisted := over(compiler.DefaultOptions)
	noHoist := over(compiler.Options{Hoisting: false, Tracking: true})
	if noHoist <= hoisted*1.5 {
		t.Errorf("nohoisting overhead %.1f%% not substantially above hoisted %.1f%% (Figure 8 shape)",
			noHoist*100, hoisted*100)
	}
}

func TestNoTrackingCheaperThanTracking(t *testing.T) {
	run := func(opt compiler.Options, poll int64) int64 {
		mod := linkedList(300)
		if _, err := compiler.Transform(mod, opt); err != nil {
			t.Fatal(err)
		}
		costs := DefaultCosts
		costs.Poll = poll
		m, err := NewAlaska(mod, costs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run("main"); err != nil {
			t.Fatal(err)
		}
		return m.Cycles
	}
	tracked := run(compiler.DefaultOptions, 1)
	untracked := run(compiler.Options{Hoisting: true, Tracking: false}, 1)
	if untracked >= tracked {
		t.Errorf("notracking cycles %d >= tracking %d", untracked, tracked)
	}
}

func TestExternalCallEscapes(t *testing.T) {
	build := func() *ir.Module {
		f := ir.NewFunc("main", 0)
		b := ir.NewBuilder(f)
		sz := b.Const(64)
		p := b.Alloc(sz)
		b.Call("ext_fill", ir.Int, p, sz)
		v := b.Call("ext_sum", ir.Int, p, sz)
		b.Ret(v)
		f.Finish()
		return &ir.Module{Funcs: []*ir.Func{f}}
	}
	// Bytes 0..63 sum to 2016.
	mb := NewBaseline(build(), DefaultCosts)
	bv, err := mb.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	mod := build()
	if _, err := compiler.Transform(mod, compiler.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	ma, err := NewAlaska(mod, DefaultCosts)
	if err != nil {
		t.Fatal(err)
	}
	av, err := ma.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if bv != 2016 || av != 2016 {
		t.Errorf("results: baseline %d, alaska %d, want 2016", bv, av)
	}
}

func TestUntranslatedHandleAccessFaults(t *testing.T) {
	// A transformed module run WITHOUT translation (notracking still
	// translates; so hand-build a load of a raw handle) must fault like
	// footnote 5 says.
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(b.Const(8))
	v := b.Load(p, ir.Int) // load straight through the handle
	b.Ret(v)
	f.Finish()
	m := &ir.Module{Funcs: []*ir.Func{f}}
	// Mark the alloc as halloc without running translation insertion.
	for _, blk := range f.Blocks {
		for _, i := range blk.Instrs {
			if i.Op == ir.OpAlloc {
				i.Sub = 1
			}
		}
	}
	ma, err := NewAlaska(m, DefaultCosts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ma.Run("main"); err == nil {
		t.Error("dereferencing an untranslated handle did not fault")
	}
}

func TestInternalCallAcrossFunctions(t *testing.T) {
	build := func() *ir.Module {
		callee := ir.NewFunc("double", 1)
		cb := ir.NewBuilder(callee)
		arg := cb.Param(0, ir.Ptr)
		v := cb.Load(arg, ir.Int)
		two := cb.Const(2)
		d := cb.Mul(v, two)
		cb.Store(arg, d)
		cb.Ret(d)
		callee.Finish()

		f := ir.NewFunc("main", 0)
		b := ir.NewBuilder(f)
		p := b.Alloc(b.Const(8))
		c21 := b.Const(21)
		b.Store(p, c21)
		r := b.Call("double", ir.Int, p)
		b.Ret(r)
		f.Finish()
		return &ir.Module{Funcs: []*ir.Func{f, callee}}
	}
	bc, ac, bv, av := runBoth(t, build, compiler.DefaultOptions)
	if bv != 42 || av != 42 {
		t.Errorf("results: baseline %d alaska %d, want 42", bv, av)
	}
	_ = bc
	_ = ac
}

func TestDivByZeroTrapped(t *testing.T) {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	one := b.Const(1)
	zero := b.Const(0)
	d := b.Bin(ir.BinDiv, one, zero)
	b.Ret(d)
	f.Finish()
	m := NewBaseline(&ir.Module{Funcs: []*ir.Func{f}}, DefaultCosts)
	if _, err := m.Run("main"); err == nil {
		t.Error("division by zero did not error")
	}
}

func TestStepLimit(t *testing.T) {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	loop := b.NewBlock("spin")
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop) // infinite
	f.Finish()
	m := NewBaseline(&ir.Module{Funcs: []*ir.Func{f}}, DefaultCosts)
	m.MaxSteps = 10_000
	if _, err := m.Run("main"); err == nil {
		t.Error("infinite loop not stopped by step limit")
	}
}

func TestRunUnknownFunction(t *testing.T) {
	m := NewBaseline(&ir.Module{}, DefaultCosts)
	if _, err := m.Run("nope"); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestHandleFaultCheckCost(t *testing.T) {
	mod := sumArrayMem(200)
	if _, err := compiler.Transform(mod, compiler.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	m1, err := NewAlaska(mod, DefaultCosts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Run("main"); err != nil {
		t.Fatal(err)
	}

	mod2 := sumArrayMem(200)
	if _, err := compiler.Transform(mod2, compiler.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	costs := DefaultCosts
	costs.FaultCheck = 1
	m2, err := NewAlaska(mod2, costs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run("main"); err != nil {
		t.Fatal(err)
	}
	if m2.Cycles <= m1.Cycles {
		t.Error("fault-check configuration should cost slightly more")
	}
	// §7 claims ~1-2% extra; at minimum it must stay under 5% here.
	extra := float64(m2.Cycles-m1.Cycles) / float64(m1.Cycles)
	if extra > 0.05 {
		t.Errorf("fault-check overhead = %.2f%%, want small", extra*100)
	}
}
