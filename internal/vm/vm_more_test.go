package vm

import (
	"testing"

	"alaska/internal/compiler"
	"alaska/internal/ir"
)

// runMain builds and runs a module in baseline mode.
func runMain(t *testing.T, build func(b *ir.Builder)) uint64 {
	t.Helper()
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	build(b)
	f.Finish()
	m := NewBaseline(&ir.Module{Funcs: []*ir.Func{f}}, DefaultCosts)
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAllBinaryOperators(t *testing.T) {
	cases := []struct {
		op   int
		a, b int64
		want uint64
	}{
		{ir.BinAdd, 7, 5, 12},
		{ir.BinSub, 7, 5, 2},
		{ir.BinMul, 7, 5, 35},
		{ir.BinDiv, 38, 5, 7},
		{ir.BinDiv, -38, 5, ^uint64(6)},
		{ir.BinRem, 38, 5, 3},
		{ir.BinAnd, 0b1100, 0b1010, 0b1000},
		{ir.BinOr, 0b1100, 0b1010, 0b1110},
		{ir.BinXor, 0b1100, 0b1010, 0b0110},
		{ir.BinShl, 3, 4, 48},
		{ir.BinShr, 48, 4, 3},
	}
	for _, c := range cases {
		got := runMain(t, func(b *ir.Builder) {
			r := b.Bin(c.op, b.Const(c.a), b.Const(c.b))
			b.Ret(r)
		})
		if got != c.want {
			t.Errorf("op %d (%d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestAllComparisons(t *testing.T) {
	cases := []struct {
		pred int
		a, b int64
		want uint64
	}{
		{ir.CmpEQ, 3, 3, 1}, {ir.CmpEQ, 3, 4, 0},
		{ir.CmpNE, 3, 4, 1}, {ir.CmpNE, 3, 3, 0},
		{ir.CmpLT, -1, 1, 1}, {ir.CmpLT, 1, 1, 0},
		{ir.CmpLE, 1, 1, 1}, {ir.CmpLE, 2, 1, 0},
		{ir.CmpGT, 2, 1, 1}, {ir.CmpGT, 1, 2, 0},
		{ir.CmpGE, 1, 1, 1}, {ir.CmpGE, 0, 1, 0},
	}
	for _, c := range cases {
		got := runMain(t, func(b *ir.Builder) {
			r := b.Cmp(c.pred, b.Const(c.a), b.Const(c.b))
			b.Ret(r)
		})
		if got != c.want {
			t.Errorf("pred %d (%d, %d) = %d, want %d", c.pred, c.a, c.b, got, c.want)
		}
	}
}

func TestGEPNegativeOffsetOnHandle(t *testing.T) {
	// Under Alaska, interior handles support negative GEPs back toward
	// the base (Handle.Add semantics).
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(b.Const(32))
	eight := b.Const(8)
	interior := b.GEP(p, b.Const(16))
	back := b.GEP(interior, b.Sub(b.Const(0), eight)) // -8 -> offset 8
	c7 := b.Const(7)
	b.Store(back, c7)
	v := b.Load(b.GEP(p, eight), ir.Int)
	b.Ret(v)
	f.Finish()
	m := &ir.Module{Funcs: []*ir.Func{f}}
	if _, err := compiler.Transform(m, compiler.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	ma, err := NewAlaska(m, DefaultCosts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ma.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("negative GEP result = %d, want 7", got)
	}
}

func TestFunctionArguments(t *testing.T) {
	callee := ir.NewFunc("addmul", 3)
	cb := ir.NewBuilder(callee)
	x := cb.Param(0, ir.Int)
	y := cb.Param(1, ir.Int)
	z := cb.Param(2, ir.Int)
	cb.Ret(cb.Add(cb.Mul(x, y), z))
	callee.Finish()

	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	r := b.Call("addmul", ir.Int, b.Const(3), b.Const(4), b.Const(5))
	b.Ret(r)
	f.Finish()
	m := NewBaseline(&ir.Module{Funcs: []*ir.Func{f, callee}}, DefaultCosts)
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 17 {
		t.Errorf("addmul = %d, want 17", v)
	}
}

func TestRecursionDepthGuard(t *testing.T) {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	r := b.Call("main", ir.Int) // infinite recursion
	b.Ret(r)
	f.Finish()
	m := NewBaseline(&ir.Module{Funcs: []*ir.Func{f}}, DefaultCosts)
	if _, err := m.Run("main"); err == nil {
		t.Error("infinite recursion not trapped")
	}
}

func TestRunWithTopLevelArgs(t *testing.T) {
	f := ir.NewFunc("main", 2)
	b := ir.NewBuilder(f)
	x := b.Param(0, ir.Int)
	y := b.Param(1, ir.Int)
	b.Ret(b.Add(x, y))
	f.Finish()
	m := NewBaseline(&ir.Module{Funcs: []*ir.Func{f}}, DefaultCosts)
	v, err := m.Run("main", 30, 12)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("main(30,12) = %d", v)
	}
}

func TestMissingParamErrors(t *testing.T) {
	f := ir.NewFunc("main", 1)
	b := ir.NewBuilder(f)
	x := b.Param(0, ir.Int)
	b.Ret(x)
	f.Finish()
	m := NewBaseline(&ir.Module{Funcs: []*ir.Func{f}}, DefaultCosts)
	if _, err := m.Run("main"); err == nil {
		t.Error("missing argument not reported")
	}
}

func TestCustomExternal(t *testing.T) {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	r := b.Call("my_ext", ir.Int, b.Const(21))
	b.Ret(r)
	f.Finish()
	m := NewBaseline(&ir.Module{Funcs: []*ir.Func{f}}, DefaultCosts)
	m.RegisterExternal("my_ext", func(m *Machine, args []uint64) (uint64, error) {
		return args[0] * 2, nil
	})
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("my_ext = %d", v)
	}
}

func TestUnknownExternalErrors(t *testing.T) {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	b.Call("nonexistent", ir.Int)
	b.Ret(nil)
	f.Finish()
	m := NewBaseline(&ir.Module{Funcs: []*ir.Func{f}}, DefaultCosts)
	if _, err := m.Run("main"); err == nil {
		t.Error("unknown external not reported")
	}
}

func TestUseAfterFreeFaults(t *testing.T) {
	// With hoisting, the translation sits above the free and a UAF is
	// undefined behaviour exactly as in the paper's (3.2) contract. With
	// per-access translation (hoisting off), the freed HTE is consulted
	// at the access and the UAF is caught.
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(b.Const(8))
	b.Free(p)
	v := b.Load(p, ir.Int)
	b.Ret(v)
	f.Finish()
	m := &ir.Module{Funcs: []*ir.Func{f}}
	if _, err := compiler.Transform(m, compiler.Options{Hoisting: false, Tracking: true}); err != nil {
		t.Fatal(err)
	}
	ma, err := NewAlaska(m, DefaultCosts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ma.Run("main"); err == nil {
		t.Error("use-after-free not detected — freed HTE translated")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(b.Const(8))
	b.Free(p)
	b.Free(p)
	b.Ret(nil)
	f.Finish()
	m := &ir.Module{Funcs: []*ir.Func{f}}
	if _, err := compiler.Transform(m, compiler.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	ma, err := NewAlaska(m, DefaultCosts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ma.Run("main"); err == nil {
		t.Error("double free not detected")
	}
}

func TestCycleAccountingMonotone(t *testing.T) {
	m := NewBaseline(sumArrayMem(50), DefaultCosts)
	before := m.Cycles
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	if m.Cycles <= before {
		t.Error("no cycles charged")
	}
	if m.DynInstrs == 0 {
		t.Error("no instructions counted")
	}
}

func TestPinFramesBalancedAcrossCalls(t *testing.T) {
	// After a transformed program with nested calls runs, the thread's
	// pin stack must be empty (frames popped on every return path).
	callee := ir.NewFunc("touch", 1)
	cb := ir.NewBuilder(callee)
	p := cb.Param(0, ir.Ptr)
	v := cb.Load(p, ir.Int)
	cb.Ret(v)
	callee.Finish()

	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	obj := b.Alloc(b.Const(8))
	c5 := b.Const(5)
	zero := b.Const(0)
	ten := b.Const(10)
	one := b.Const(1)
	pt := b.GEP(obj, zero)
	b.Store(pt, c5)
	l := b.Loop("l", zero, ten, one)
	b.Call("touch", ir.Int, obj)
	b.Close(l)
	b.Ret(nil)
	f.Finish()
	m := &ir.Module{Funcs: []*ir.Func{f, callee}}
	if _, err := compiler.Transform(m, compiler.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	ma, err := NewAlaska(m, DefaultCosts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ma.Run("main"); err != nil {
		t.Fatal(err)
	}
	if d := ma.Thread.FrameDepth(); d != 0 {
		t.Errorf("pin stack depth after run = %d, want 0", d)
	}
	if err := ma.Close(); err != nil {
		t.Fatal(err)
	}
}
