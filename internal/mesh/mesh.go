// Package mesh implements a Mesh-style compacting allocator (Powers et
// al., PLDI '19), the paper's closest related work and a comparator in its
// Figure 9/11 experiments.
//
// Mesh cannot move objects (virtual addresses are forever); instead it
// places same-size-class objects on page-sized spans with randomized slot
// choice, then finds pairs of spans whose occupancy bitmaps are disjoint
// and "meshes" them: both virtual pages are remapped to one physical page,
// halving their resident cost. This reproduction performs the same
// randomized pairing over real occupancy bitmaps and enforces the
// disjointness precondition, but models the physical sharing at the
// accounting level: data stays at its unchanged virtual address (exactly
// what real Mesh guarantees the application sees) and RSS() counts each
// meshed group once. That is the quantity Figure 9 plots.
package mesh

import (
	"fmt"
	"math/rand"

	"alaska/internal/mem"
)

// classes are the supported size classes (one span holds one class).
var classes = []uint64{16, 32, 64, 128, 256, 512, 1024, 2048}

const spanSize = mem.PageSize

// physGroup is a set of spans sharing one physical page after meshing.
type physGroup struct {
	spans []*span
}

// used reports whether any span in the group holds live objects.
func (g *physGroup) used() bool {
	for _, s := range g.spans {
		if s.nUsed > 0 {
			return true
		}
	}
	return false
}

// span is one virtual page serving a single size class.
type span struct {
	base  mem.Addr
	class int
	slots int
	used  []bool
	nUsed int
	group *physGroup
}

// disjoint reports whether two spans' occupancy bitmaps do not collide —
// the meshing precondition.
func disjoint(a, b *span) bool {
	for i := range a.used {
		if a.used[i] && b.used[i] {
			return false
		}
	}
	return true
}

// Allocator is the Mesh-style allocator.
type Allocator struct {
	space *mem.Space
	rng   *rand.Rand

	spans   [][]*span // per class
	bySpan  map[mem.Addr]*span
	large   map[mem.Addr]*mem.Region
	largeSz map[mem.Addr]uint64
	sizes   map[mem.Addr]uint64

	active uint64
	// MeshCount is the number of successful meshes performed.
	MeshCount int64
	// MaxHeap optionally caps the number of spans (modelling the 64 GiB
	// limit the paper had to patch out of Mesh for Figure 11); 0 = none.
	MaxHeap uint64
}

// New returns a Mesh allocator over space with a deterministic seed.
func New(space *mem.Space, seed int64) *Allocator {
	return &Allocator{
		space:   space,
		rng:     rand.New(rand.NewSource(seed)),
		spans:   make([][]*span, len(classes)),
		bySpan:  make(map[mem.Addr]*span),
		large:   make(map[mem.Addr]*mem.Region),
		largeSz: make(map[mem.Addr]uint64),
		sizes:   make(map[mem.Addr]uint64),
	}
}

func classFor(size uint64) int {
	for i, c := range classes {
		if size <= c {
			return i
		}
	}
	return -1
}

// Alloc returns a block of at least size bytes. Slot choice within a span
// is randomized, as Mesh requires for its meshing probability guarantees.
func (a *Allocator) Alloc(size uint64) (mem.Addr, error) {
	if size == 0 {
		size = 1
	}
	ci := classFor(size)
	if ci < 0 {
		r, err := a.space.Map(size)
		if err != nil {
			return 0, err
		}
		a.large[r.Base()] = r
		a.largeSz[r.Base()] = size
		a.active += size
		return r.Base(), nil
	}
	// Find a span with a free slot. Meshed spans (group size > 1) are
	// retired from allocation: their free slots are occupied on the shared
	// physical page by their mesh partners.
	var sp *span
	for _, s := range a.spans[ci] {
		if s.nUsed < s.slots && len(s.group.spans) == 1 {
			sp = s
			break
		}
	}
	if sp == nil {
		if a.MaxHeap > 0 && a.SpanBytes() >= a.MaxHeap {
			return 0, fmt.Errorf("mesh: heap cap %d bytes reached", a.MaxHeap)
		}
		r, err := a.space.Map(spanSize)
		if err != nil {
			return 0, err
		}
		n := int(spanSize / classes[ci])
		sp = &span{base: r.Base(), class: ci, slots: n, used: make([]bool, n)}
		sp.group = &physGroup{spans: []*span{sp}}
		a.spans[ci] = append(a.spans[ci], sp)
		a.bySpan[sp.base] = sp
	}
	// Random free slot.
	k := a.rng.Intn(sp.slots - sp.nUsed)
	slot := -1
	for i, u := range sp.used {
		if !u {
			if k == 0 {
				slot = i
				break
			}
			k--
		}
	}
	sp.used[slot] = true
	sp.nUsed++
	addr := sp.base + mem.Addr(uint64(slot)*classes[sp.class])
	a.sizes[addr] = size
	a.active += size
	return addr, nil
}

// Free releases the block at addr.
func (a *Allocator) Free(addr mem.Addr) error {
	if r, ok := a.large[addr]; ok {
		a.active -= a.largeSz[addr]
		delete(a.large, addr)
		delete(a.largeSz, addr)
		return a.space.Unmap(r)
	}
	size, ok := a.sizes[addr]
	if !ok {
		return fmt.Errorf("mesh: free of unknown address %#x", addr)
	}
	base := addr &^ (spanSize - 1)
	sp := a.bySpan[base]
	if sp == nil {
		return fmt.Errorf("mesh: address %#x has no span", addr)
	}
	slot := int(uint64(addr-base) / classes[sp.class])
	if !sp.used[slot] {
		return fmt.Errorf("mesh: double free at %#x", addr)
	}
	sp.used[slot] = false
	sp.nUsed--
	delete(a.sizes, addr)
	a.active -= size
	if sp.nUsed == 0 {
		// Empty page: return it to the kernel (Mesh purges empty spans).
		_ = a.space.DontNeed(sp.base, spanSize)
	}
	return nil
}

// Mesh runs one randomized meshing round per class: up to `probes` random
// span pairs are tested for bitmap disjointness and merged when
// compatible. Returns the number of pages freed.
func (a *Allocator) Mesh(probes int) int {
	freed := 0
	for ci := range classes {
		list := a.spans[ci]
		if len(list) < 2 {
			continue
		}
		for p := 0; p < probes; p++ {
			x := list[a.rng.Intn(len(list))]
			y := list[a.rng.Intn(len(list))]
			if x == y || x.group == y.group {
				continue
			}
			if x.nUsed == 0 || y.nUsed == 0 {
				continue // empty spans are already purged
			}
			// Meshing requires pairwise disjointness across the whole
			// groups (every page sharing the physical frame).
			ok := true
			for _, sx := range x.group.spans {
				for _, sy := range y.group.spans {
					if !disjoint(sx, sy) {
						ok = false
					}
				}
			}
			if !ok {
				continue
			}
			// Merge y's group into x's: one physical page now backs all.
			merged := append(x.group.spans, y.group.spans...)
			g := &physGroup{spans: merged}
			for _, s := range merged {
				s.group = g
			}
			a.MeshCount++
			freed++
		}
	}
	return freed
}

// RSS returns the resident bytes under Mesh's page-sharing accounting:
// each physical group with live data costs one page; large objects cost
// their mapped size.
func (a *Allocator) RSS() uint64 {
	seen := make(map[*physGroup]bool)
	var pages uint64
	for _, list := range a.spans {
		for _, s := range list {
			if s.group != nil && !seen[s.group] {
				seen[s.group] = true
				if s.group.used() {
					pages++
				}
			}
		}
	}
	var largeBytes uint64
	for _, r := range a.large {
		largeBytes += r.Size()
	}
	return pages*mem.PageSize + largeBytes
}

// SpanBytes returns the virtual bytes held in spans.
func (a *Allocator) SpanBytes() uint64 {
	var n uint64
	for _, list := range a.spans {
		n += uint64(len(list)) * spanSize
	}
	return n
}

// ActiveBytes returns live requested bytes.
func (a *Allocator) ActiveBytes() uint64 { return a.active }

// UsableSize returns the class size of the block at addr.
func (a *Allocator) UsableSize(addr mem.Addr) uint64 {
	if s, ok := a.largeSz[addr]; ok {
		return s
	}
	base := addr &^ (spanSize - 1)
	if sp := a.bySpan[base]; sp != nil {
		return classes[sp.class]
	}
	return 0
}
