package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"alaska/internal/mem"
)

func TestAllocFreeRoundTrip(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	p, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteU64(p, 77); err != nil {
		t.Fatal(err)
	}
	v, _ := s.ReadU64(p)
	if v != 77 {
		t.Errorf("read %d", v)
	}
	if a.UsableSize(p) != 128 {
		t.Errorf("UsableSize = %d, want 128", a.UsableSize(p))
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free accepted")
	}
}

func TestEmptySpanPurged(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	var ptrs []mem.Addr
	for i := 0; i < 4; i++ { // one 1024-class span holds 4
		p, _ := a.Alloc(1024)
		ptrs = append(ptrs, p)
	}
	if a.RSS() == 0 {
		t.Fatal("no RSS for live span")
	}
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if a.RSS() != 0 {
		t.Errorf("RSS after emptying = %d, want 0", a.RSS())
	}
}

// The headline Mesh behaviour: fragmented spans with disjoint bitmaps mesh
// and RSS drops without any virtual address changing.
func TestMeshingReducesRSS(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 7)
	// Allocate many 512-byte objects (8 per span), then free most to
	// leave sparse spans.
	var ptrs []mem.Addr
	for i := 0; i < 512; i++ {
		p, err := a.Alloc(512)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteU64(p, uint64(p)); err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	rng := rand.New(rand.NewSource(3))
	var live []mem.Addr
	for _, p := range ptrs {
		if rng.Intn(8) == 0 {
			live = append(live, p)
			continue
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	before := a.RSS()
	for i := 0; i < 50; i++ {
		a.Mesh(64)
	}
	after := a.RSS()
	if a.MeshCount == 0 {
		t.Fatal("no meshes happened on a sparse heap")
	}
	if after >= before {
		t.Errorf("meshing did not reduce RSS: %d -> %d", before, after)
	}
	// Virtual addresses unchanged; contents intact.
	for _, p := range live {
		v, err := s.ReadU64(p)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(p) {
			t.Errorf("object at %#x corrupted after meshing", p)
		}
	}
}

func TestMeshRequiresDisjointBitmaps(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 99)
	// Fill two full spans of the same class: bitmaps fully overlap, so no
	// mesh is possible.
	for i := 0; i < 8; i++ {
		if _, err := a.Alloc(512); err != nil {
			t.Fatal(err)
		}
	}
	before := a.RSS()
	a.Mesh(256)
	if a.MeshCount != 0 {
		t.Error("meshed overlapping spans")
	}
	if a.RSS() != before {
		t.Error("RSS changed without meshing")
	}
}

func TestMeshedGroupOccupancyInvariant(t *testing.T) {
	// After any meshing sequence, every group's spans must remain
	// pairwise disjoint (one physical page can hold them all).
	s := mem.NewSpace()
	a := New(s, 5)
	rng := rand.New(rand.NewSource(11))
	var live []mem.Addr
	for step := 0; step < 2000; step++ {
		switch {
		case len(live) > 0 && rng.Intn(3) == 0:
			k := rng.Intn(len(live))
			if err := a.Free(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		case rng.Intn(50) == 0:
			a.Mesh(16)
		default:
			p, err := a.Alloc(uint64(16 + rng.Intn(1500)))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		}
	}
	seen := make(map[*physGroup]bool)
	for _, list := range a.spans {
		for _, sp := range list {
			g := sp.group
			if seen[g] {
				continue
			}
			seen[g] = true
			for i := 0; i < len(g.spans); i++ {
				for j := i + 1; j < len(g.spans); j++ {
					if !disjoint(g.spans[i], g.spans[j]) {
						t.Fatal("meshed group has colliding occupancy")
					}
				}
			}
		}
	}
}

func TestHeapCap(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	a.MaxHeap = 4 * mem.PageSize
	var err error
	for i := 0; i < 1000; i++ {
		if _, err = a.Alloc(2048); err != nil {
			break
		}
	}
	if err == nil {
		t.Error("heap cap never enforced")
	}
}

func TestLargeObjects(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	p, err := a.Alloc(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.UsableSize(p) != 100_000 {
		t.Errorf("UsableSize = %d", a.UsableSize(p))
	}
	if a.RSS() < 100_000 {
		t.Errorf("RSS %d does not include large object", a.RSS())
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if a.RSS() != 0 {
		t.Errorf("RSS after large free = %d", a.RSS())
	}
}

// Property: active-byte accounting matches the live set under random
// workloads with interleaved meshing.
func TestAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := mem.NewSpace()
		a := New(s, seed)
		live := make(map[mem.Addr]uint64)
		var want uint64
		for i := 0; i < 300; i++ {
			switch {
			case len(live) > 0 && rng.Intn(3) == 0:
				for p, sz := range live {
					if a.Free(p) != nil {
						return false
					}
					want -= sz
					delete(live, p)
					break
				}
			case rng.Intn(20) == 0:
				a.Mesh(8)
			default:
				sz := uint64(1 + rng.Intn(2048))
				p, err := a.Alloc(sz)
				if err != nil {
					return false
				}
				if _, dup := live[p]; dup {
					return false // address handed out twice
				}
				live[p] = sz
				want += sz
			}
		}
		return a.ActiveBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
