package swap

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"alaska/internal/anchorage"
	"alaska/internal/handle"
	"alaska/internal/mem"
	"alaska/internal/rt"
)

func newSwapRuntime(t *testing.T, compress bool) (*rt.Runtime, *Swapper, *mem.Space) {
	t.Helper()
	space := mem.NewSpace()
	svc := anchorage.NewService(space, anchorage.DefaultConfig())
	var sw *Swapper
	r, err := rt.New(space, svc, rt.WithFaultHandler(func(r *rt.Runtime, id uint32) error {
		return sw.SwapIn(id)
	}))
	if err != nil {
		t.Fatal(err)
	}
	sw = New(r, NewMemStore(compress))
	return r, sw, space
}

func TestMemStoreRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		m := NewMemStore(compress)
		data := bytes.Repeat([]byte("abcdef"), 100)
		if err := m.Put(7, data); err != nil {
			t.Fatal(err)
		}
		got, err := m.Get(7)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("compress=%v: round trip mismatch", compress)
		}
		if compress && m.Bytes() >= uint64(len(data)) {
			t.Errorf("compressible data did not shrink: %d >= %d", m.Bytes(), len(data))
		}
		m.Delete(7)
		if m.Bytes() != 0 {
			t.Errorf("Bytes after delete = %d", m.Bytes())
		}
		if _, err := m.Get(7); err == nil {
			t.Error("Get after delete succeeded")
		}
	}
}

func TestSwapOutAndFaultBackIn(t *testing.T) {
	r, sw, space := newSwapRuntime(t, true)
	th := r.NewThread()
	h, err := r.Halloc(256)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := th.Translate(h)
	payload := bytes.Repeat([]byte{0xAB}, 256)
	if err := space.Write(addr, payload); err != nil {
		t.Fatal(err)
	}

	r.Barrier(th, func(scope *rt.BarrierScope) {
		if err := sw.SwapOut(scope, h.ID()); err != nil {
			t.Errorf("SwapOut: %v", err)
		}
	})
	if !sw.Swapped(h.ID()) {
		t.Fatal("object not marked swapped")
	}
	// The next translation faults and transparently swaps back in.
	newAddr, err := th.Translate(h)
	if err != nil {
		t.Fatalf("translate after swap: %v", err)
	}
	got := make([]byte, 256)
	if err := space.Read(newAddr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("contents corrupted across swap")
	}
	if sw.Swapped(h.ID()) {
		t.Error("object still marked swapped after fault")
	}
	if sw.SwappedOut != 1 || sw.SwappedIn != 1 {
		t.Errorf("stats: out=%d in=%d", sw.SwappedOut, sw.SwappedIn)
	}
	if r.Stats().Faults.Load() != 1 {
		t.Errorf("runtime faults = %d, want 1", r.Stats().Faults.Load())
	}
}

func TestSwapOutRefusesPinned(t *testing.T) {
	r, sw, _ := newSwapRuntime(t, false)
	th := r.NewThread()
	h, _ := r.Halloc(64)
	_, unpin, err := th.Pin(h)
	if err != nil {
		t.Fatal(err)
	}
	defer unpin()
	r.Barrier(th, func(scope *rt.BarrierScope) {
		if err := sw.SwapOut(scope, h.ID()); err == nil {
			t.Error("SwapOut of pinned object succeeded")
		}
	})
}

func TestDoubleSwapOutRejected(t *testing.T) {
	r, sw, _ := newSwapRuntime(t, false)
	th := r.NewThread()
	h, _ := r.Halloc(64)
	r.Barrier(th, func(scope *rt.BarrierScope) {
		if err := sw.SwapOut(scope, h.ID()); err != nil {
			t.Errorf("first SwapOut: %v", err)
		}
		if err := sw.SwapOut(scope, h.ID()); err == nil {
			t.Error("second SwapOut succeeded")
		}
	})
}

func TestSwapInOfUnswappedFails(t *testing.T) {
	r, sw, _ := newSwapRuntime(t, false)
	_ = r
	if err := sw.SwapIn(12345); err == nil {
		t.Error("SwapIn of never-swapped object succeeded")
	}
}

// Swapping out cold objects frees backing memory (the whole point).
func TestSwapOutReducesActiveBytes(t *testing.T) {
	r, sw, _ := newSwapRuntime(t, true)
	th := r.NewThread()
	var hs []handle.Handle
	for i := 0; i < 64; i++ {
		h, err := r.Halloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	before := r.Service().ActiveBytes()
	r.Barrier(th, func(scope *rt.BarrierScope) {
		for _, h := range hs[:32] {
			if err := sw.SwapOut(scope, h.ID()); err != nil {
				t.Fatalf("SwapOut: %v", err)
			}
		}
	})
	after := r.Service().ActiveBytes()
	if after >= before {
		t.Errorf("active bytes did not drop: %d -> %d", before, after)
	}
	if sw.BytesOut != 32*1024 {
		t.Errorf("BytesOut = %d", sw.BytesOut)
	}
}

// Property: any interleaving of writes, swaps, and faulting reads
// preserves every object's contents.
func TestSwapIntegrityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		space := mem.NewSpace()
		svc := anchorage.NewService(space, anchorage.DefaultConfig())
		var sw *Swapper
		r, err := rt.New(space, svc, rt.WithFaultHandler(func(r *rt.Runtime, id uint32) error {
			return sw.SwapIn(id)
		}))
		if err != nil {
			return false
		}
		sw = New(r, NewMemStore(rng.Intn(2) == 0))
		th := r.NewThread()
		type obj struct {
			h   handle.Handle
			tag byte
		}
		var objs []obj
		for i := 0; i < 40; i++ {
			h, err := r.Halloc(uint64(64 + rng.Intn(512)))
			if err != nil {
				return false
			}
			tag := byte(rng.Intn(256))
			a, err := th.Translate(h)
			if err != nil {
				return false
			}
			size, _ := r.SizeOf(h)
			if space.Write(a, bytes.Repeat([]byte{tag}, int(size))) != nil {
				return false
			}
			objs = append(objs, obj{h, tag})
		}
		for step := 0; step < 100; step++ {
			o := objs[rng.Intn(len(objs))]
			if rng.Intn(2) == 0 {
				r.Barrier(th, func(scope *rt.BarrierScope) {
					_ = sw.SwapOut(scope, o.h.ID()) // may fail if already out
				})
			} else {
				a, err := th.Translate(o.h) // faults back in if swapped
				if err != nil {
					return false
				}
				v, err := space.ReadU8(a)
				if err != nil || v != o.tag {
					return false
				}
			}
		}
		// Final check: every object intact (faulting in as needed).
		for _, o := range objs {
			a, err := th.Translate(o.h)
			if err != nil {
				return false
			}
			size, _ := r.SizeOf(o.h)
			buf := make([]byte, size)
			if space.Read(a, buf) != nil {
				return false
			}
			for _, b := range buf {
				if b != o.tag {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
