// Package swap implements the §7 extension the paper sketches: object-
// granularity swapping built on "handle faults". A service marks a cold
// object's handle table entry invalid, compresses the object's bytes to a
// backing store, and frees its memory; the next translation of the handle
// traps to the runtime, which swaps the object back in and retries — the
// handle-table analogue of a page fault, at object granularity.
//
// The paper reports that enabling the fault check costs ~1-2% (modelled by
// vm.CostModel.FaultCheck); this package supplies the service half and is
// exercised by examples/faults and the swap benchmarks.
package swap

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"

	"alaska/internal/handle"
	"alaska/internal/rt"
)

// Store is the cold-object backing store ("disk"). Implementations must be
// safe for concurrent use.
type Store interface {
	Put(id uint32, data []byte) error
	Get(id uint32) ([]byte, error)
	Delete(id uint32)
	// Bytes reports the store's current footprint.
	Bytes() uint64
}

// MemStore is an in-memory compressed store — the simulation's disk.
type MemStore struct {
	mu       sync.Mutex
	blobs    map[uint32][]byte
	compress bool
	bytes    uint64
}

// NewMemStore returns a store; with compress, blobs are DEFLATE-packed
// (the paper mentions compression as one use of the swap mechanism).
func NewMemStore(compress bool) *MemStore {
	return &MemStore{blobs: make(map[uint32][]byte), compress: compress}
}

// Put implements Store.
func (m *MemStore) Put(id uint32, data []byte) error {
	blob := data
	if m.compress {
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		blob = buf.Bytes()
	} else {
		blob = append([]byte(nil), data...)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.blobs[id]; ok {
		m.bytes -= uint64(len(old))
	}
	m.blobs[id] = blob
	m.bytes += uint64(len(blob))
	return nil
}

// Get implements Store.
func (m *MemStore) Get(id uint32) ([]byte, error) {
	m.mu.Lock()
	blob, ok := m.blobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("swap: object %d not in store", id)
	}
	if !m.compress {
		return append([]byte(nil), blob...), nil
	}
	r := flate.NewReader(bytes.NewReader(blob))
	defer r.Close()
	return io.ReadAll(r)
}

// Delete implements Store.
func (m *MemStore) Delete(id uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.blobs[id]; ok {
		m.bytes -= uint64(len(old))
		delete(m.blobs, id)
	}
}

// Bytes implements Store.
func (m *MemStore) Bytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Swapper adds swap-out/swap-in on top of any backing service. It is not
// itself an rt.Service; it wraps the runtime a service is attached to.
type Swapper struct {
	mu    sync.Mutex
	rt    *rt.Runtime
	store Store
	// sizes remembers swapped objects' sizes (the HTE keeps the size, but
	// keeping our own copy lets us sanity-check the restore).
	sizes map[uint32]uint64

	// Stats.
	SwappedOut, SwappedIn int64
	BytesOut, BytesIn     int64
}

// New creates a Swapper for the runtime using the given store.
func New(r *rt.Runtime, store Store) *Swapper {
	return &Swapper{rt: r, store: store, sizes: make(map[uint32]uint64)}
}

// Handler returns the rt.FaultHandler to install via rt.WithFaultHandler
// (or Runtime configuration) so faulting translations swap objects back
// in transparently.
func (s *Swapper) Handler() rt.FaultHandler {
	return func(r *rt.Runtime, id uint32) error {
		return s.SwapIn(id)
	}
}

// SwapOut evicts the object behind id: its bytes go to the store, its
// backing memory is freed, and its HTE is invalidated. It must only be
// called for unpinned objects — use it from within a barrier, or on
// objects the caller knows are cold. The object keeps its handle; users
// notice nothing except latency on next access.
func (s *Swapper) SwapOut(scope *rt.BarrierScope, id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if scope.Pinned(id) {
		return fmt.Errorf("swap: object %d is pinned", id)
	}
	e, err := s.rt.Table.Get(id)
	if err != nil {
		return err
	}
	if e.Flags&handle.FlagInvalid != 0 {
		return fmt.Errorf("swap: object %d already swapped", id)
	}
	buf := make([]byte, e.Size)
	if err := s.rt.Space.Read(e.Backing, buf); err != nil {
		return err
	}
	if err := s.store.Put(id, buf); err != nil {
		return err
	}
	if err := s.rt.Table.SetInvalid(id, true); err != nil {
		return err
	}
	if err := s.rt.Service().Free(id, e.Backing, e.Size); err != nil {
		return err
	}
	s.sizes[id] = e.Size
	s.SwappedOut++
	s.BytesOut += int64(e.Size)
	return nil
}

// SwapIn restores the object behind id: fresh backing memory is allocated
// from the service, the stored bytes are copied back, and the HTE is
// revalidated. Called from the runtime's fault path.
func (s *Swapper) SwapIn(id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	size, ok := s.sizes[id]
	if !ok {
		return fmt.Errorf("swap: fault on object %d that was never swapped", id)
	}
	data, err := s.store.Get(id)
	if err != nil {
		return err
	}
	if uint64(len(data)) != size {
		return fmt.Errorf("swap: object %d restored %d bytes, want %d", id, len(data), size)
	}
	addr, err := s.rt.Service().Alloc(id, size)
	if err != nil {
		return err
	}
	if err := s.rt.Space.Write(addr, data); err != nil {
		return err
	}
	if err := s.rt.Table.SetBacking(id, addr); err != nil {
		return err
	}
	if err := s.rt.Table.SetInvalid(id, false); err != nil {
		return err
	}
	s.store.Delete(id)
	delete(s.sizes, id)
	s.SwappedIn++
	s.BytesIn += int64(size)
	return nil
}

// Swapped reports whether id is currently swapped out.
func (s *Swapper) Swapped(id uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sizes[id]
	return ok
}
