// LockedTable preserves the seed's single-RWMutex handle table as an
// ablation baseline. Every operation — including the hot Translate path —
// serializes on one global lock, so it cannot scale past one core; the
// root BenchmarkTranslateParallel / BenchmarkAllocFreeParallel benchmarks
// run it head-to-head against the sharded table to quantify what sharding
// and atomic publication buy. It is not used by the runtime.
package handle

import (
	"fmt"
	"sync"

	"alaska/internal/mem"
)

// LockedTable is the original single-level, single-mutex handle table.
type LockedTable struct {
	mu      sync.RWMutex
	entries []Entry
	free    []uint32 // LIFO free list of recycled IDs
	bump    uint32   // next never-used ID
	live    int
	peak    int
}

// NewLockedTable returns an empty single-mutex handle table.
func NewLockedTable() *LockedTable {
	return &LockedTable{entries: make([]Entry, 0, 1024)}
}

// Alloc reserves a handle ID and initializes its entry. The free list is
// consulted before bump allocation (§4.2.1).
func (t *LockedTable) Alloc(backing mem.Addr, size uint64) (uint32, error) {
	if size > MaxObjectSize {
		return 0, fmt.Errorf("handle: object of %d bytes exceeds 4 GiB handle limit", size)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var id uint32
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		if t.bump > MaxID {
			return 0, ErrTableFull
		}
		id = t.bump
		t.bump++
		for uint32(len(t.entries)) <= id {
			t.entries = append(t.entries, Entry{})
		}
	}
	t.entries[id] = Entry{Backing: backing, Size: size, Flags: FlagAllocated}
	t.live++
	if t.live > t.peak {
		t.peak = t.live
	}
	return id, nil
}

// Free releases an entry back to the free list.
func (t *LockedTable) Free(id uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.entries) || t.entries[id].Flags&FlagAllocated == 0 {
		return &ErrBadHandle{Make(id, 0), "free of unallocated handle"}
	}
	t.entries[id] = Entry{}
	t.free = append(t.free, id)
	t.live--
	return nil
}

// Translate resolves a handle word under the table's read lock.
func (t *LockedTable) Translate(h Handle) (mem.Addr, error) {
	if !h.IsHandle() {
		return mem.Addr(h), nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := h.ID()
	if int(id) >= len(t.entries) {
		return 0, &ErrBadHandle{h, "id out of range"}
	}
	e := &t.entries[id]
	if e.Flags&FlagAllocated == 0 {
		return 0, &ErrBadHandle{h, "translate of freed handle"}
	}
	if e.Flags&FlagInvalid != 0 {
		return 0, ErrHandleFault
	}
	if uint64(h.Offset()) >= e.Size {
		return 0, &ErrBadHandle{h, fmt.Sprintf("offset %d outside %d-byte object", h.Offset(), e.Size)}
	}
	return e.Backing + mem.Addr(h.Offset()), nil
}

// Live returns the number of allocated entries.
func (t *LockedTable) Live() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}
