// Sharded, read-lock-free handle table.
//
// The seed implementation serialized every Translate/Alloc/Free behind one
// global sync.RWMutex, so the hot path of the whole system — handle→address
// translation (§4.1.2) — could not scale past one core. This file replaces
// it with the design the paper's low overhead actually depends on:
//
//   - The table is split into ShardCount power-of-two shards. A handle ID
//     encodes its shard in its low bits (id = local<<shardBits | shard), so
//     consecutive bump-allocated IDs land on consecutive shards and
//     allocation-heavy threads spread naturally across shard locks.
//   - Each live entry is published through an atomic.Pointer[Entry]. The
//     Entry value is immutable once published; every mutation (SetBacking,
//     the §7 speculative-move/revalidate protocol, SetInvalid) builds a new
//     Entry and installs it with a compare-and-swap. Translate is therefore
//     a pure atomic load chain — no lock, no write to shared state — which
//     is the software analogue of the paper's six-instruction translation
//     sequence (Figure 5).
//   - Entry storage grows in fixed-size chunks reached through a per-shard
//     chunk directory that is itself published atomically. Chunks never
//     move once allocated, so readers can hold *slot pointers without any
//     lifetime coordination; growth copies only the (small) directory of
//     chunk pointers, mirroring the paper's mmap-then-demand-page table.
//   - Per-shard free lists recycle IDs (free list before bump, §4.2.1).
//     Shard mutexes guard only allocation bookkeeping (free list + bump +
//     growth); they are never taken on the translation path.
//
// The speculative-move protocol of §7 becomes exactly the CAS it is in the
// paper: BeginSpeculativeMove CASes a valid entry to an invalid ("moving")
// one; a concurrent accessor that faults CASes it back (Revalidate, the
// abort); CommitSpeculativeMove CASes the moving entry to a valid one at
// the new address and observes defeat when the accessor won.
package handle

import (
	"fmt"
	"sync"
	"sync/atomic"

	"alaska/internal/mem"
)

const (
	// shardBits selects the number of shards; the shard index lives in the
	// low bits of the handle ID.
	shardBits = 5
	// ShardCount is the number of independent table shards.
	ShardCount = 1 << shardBits
	shardMask  = ShardCount - 1

	// chunkBits selects the number of entry slots per storage chunk.
	chunkBits = 9
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1

	// maxLocal is the largest per-shard local index: all 2^31 IDs are
	// representable, ShardCount × (maxLocal+1) = 2^31.
	maxLocal = MaxID >> shardBits
)

// slot is the in-memory home of one handle table entry. The published
// entry is reached through an atomic pointer; the pin count (CountedPins
// ablation only) is a plain atomic so the pin path never copies entries.
type slot struct {
	e    atomic.Pointer[Entry]
	pins atomic.Int32
}

// chunk is a fixed, never-moved block of slots.
type chunk [chunkSize]slot

// tableShard is one shard: lock-free entry storage plus mutex-guarded
// allocation bookkeeping.
type tableShard struct {
	mu sync.Mutex
	// dir is the atomically-published chunk directory. Readers only ever
	// Load it; growth (under mu) copies the pointer slice, appends the new
	// chunk, and Stores the result.
	dir  atomic.Pointer[[]*chunk]
	free []uint32 // LIFO free list of recycled local indices
	bump uint32   // next never-used local index
	// nfree mirrors len(free) so the Alloc probe can skip empty shards
	// with one atomic load instead of taking every shard's mutex.
	nfree atomic.Int32
}

// slotAt returns the slot for a local index, or nil if the index is beyond
// the shard's published storage. Lock-free.
func (sh *tableShard) slotAt(local uint32) *slot {
	dirp := sh.dir.Load()
	if dirp == nil {
		return nil
	}
	dir := *dirp
	ci := int(local >> chunkBits)
	if ci >= len(dir) {
		return nil
	}
	return &dir[ci][local&chunkMask]
}

// growTo ensures storage exists for local and returns its slot. Caller
// holds sh.mu.
func (sh *tableShard) growTo(local uint32) *slot {
	ci := int(local >> chunkBits)
	var dir []*chunk
	if dirp := sh.dir.Load(); dirp != nil {
		dir = *dirp
	}
	if ci < len(dir) {
		return &dir[ci][local&chunkMask]
	}
	ndir := make([]*chunk, ci+1)
	copy(ndir, dir)
	for j := len(dir); j <= ci; j++ {
		ndir[j] = new(chunk)
	}
	sh.dir.Store(&ndir)
	return &ndir[ci][local&chunkMask]
}

// ShardedTable is the sharded, read-lock-free handle table. The zero value
// is not usable; call NewShardedTable (or NewTable).
type ShardedTable struct {
	shards [ShardCount]tableShard
	// rr is the round-robin allocation cursor: it spreads both the shard
	// locks and the resulting IDs across shards, and — because the shard
	// index is the ID's low bits — keeps single-threaded ID sequences
	// identical to the seed's bump allocator (0, 1, 2, …).
	rr atomic.Uint32
	// nfree is an over-approximation-free count of recycled IDs across all
	// shards, letting Alloc skip the free-list probe entirely in the common
	// nothing-recycled case.
	nfree atomic.Int64
	// freeHint names the shard that most recently gained a recycled ID, so
	// the alloc/free ping-pong pattern (malloc churn) finds its ID again
	// with one probe instead of a scan.
	freeHint atomic.Uint32
	live     atomic.Int64
	peak     atomic.Int64
}

// NewShardedTable returns an empty sharded handle table.
func NewShardedTable() *ShardedTable { return &ShardedTable{} }

// locate splits an ID into its shard and slot; slot is nil if the ID has
// never been allocated.
func (t *ShardedTable) locate(id uint32) (*tableShard, *slot) {
	sh := &t.shards[id&shardMask]
	return sh, sh.slotAt(id >> shardBits)
}

// makeID reassembles a handle ID from shard and local index.
func makeID(shard, local uint32) uint32 { return local<<shardBits | shard }

// publish installs a fresh entry and maintains live/peak accounting.
func (t *ShardedTable) publish(s *slot, backing mem.Addr, size uint64) {
	s.pins.Store(0)
	s.e.Store(&Entry{Backing: backing, Size: size, Flags: FlagAllocated})
	l := t.live.Add(1)
	for {
		p := t.peak.Load()
		if l <= p || t.peak.CompareAndSwap(p, l) {
			return
		}
	}
}

// Alloc reserves a handle ID and publishes its entry. Recycled IDs are
// preferred over bump allocation (§4.2.1); the probe starts at the
// round-robin cursor so concurrent allocators fan out across shards.
func (t *ShardedTable) Alloc(backing mem.Addr, size uint64) (uint32, error) {
	if size > MaxObjectSize {
		return 0, fmt.Errorf("handle: object of %d bytes exceeds 4 GiB handle limit", size)
	}
	start := t.rr.Add(1) - 1
	// Free-list pass: only entered when something has actually been freed.
	// The hinted shard is probed first, then the rest round-robin.
	if t.nfree.Load() > 0 {
		hint := t.freeHint.Load()
		for i := uint32(0); i <= ShardCount; i++ {
			shard := (start + i - 1) & shardMask
			if i == 0 {
				shard = hint & shardMask
			}
			sh := &t.shards[shard]
			if sh.nfree.Load() == 0 {
				continue
			}
			sh.mu.Lock()
			if n := len(sh.free); n > 0 {
				local := sh.free[n-1]
				sh.free = sh.free[:n-1]
				sh.nfree.Add(-1)
				s := sh.slotAt(local)
				sh.mu.Unlock()
				t.nfree.Add(-1)
				t.publish(s, backing, size)
				return makeID(shard, local), nil
			}
			sh.mu.Unlock()
		}
	}
	// Bump pass: take a never-used index from the first non-full shard.
	for i := uint32(0); i < ShardCount; i++ {
		shard := (start + i) & shardMask
		sh := &t.shards[shard]
		sh.mu.Lock()
		if sh.bump > maxLocal {
			sh.mu.Unlock()
			continue
		}
		local := sh.bump
		sh.bump++
		s := sh.growTo(local)
		sh.mu.Unlock()
		t.publish(s, backing, size)
		return makeID(shard, local), nil
	}
	return 0, ErrTableFull
}

// Free unpublishes an entry and recycles its ID. The unpublish is a CAS to
// nil so a concurrent double-free is detected rather than corrupting the
// free list.
func (t *ShardedTable) Free(id uint32) error {
	sh, s := t.locate(id)
	if s == nil {
		return &ErrBadHandle{Make(id, 0), "free of unallocated handle"}
	}
	for {
		old := s.e.Load()
		if old == nil {
			return &ErrBadHandle{Make(id, 0), "free of unallocated handle"}
		}
		if s.e.CompareAndSwap(old, nil) {
			break
		}
	}
	s.pins.Store(0)
	sh.mu.Lock()
	sh.free = append(sh.free, id>>shardBits)
	sh.nfree.Add(1)
	sh.mu.Unlock()
	t.freeHint.Store(id & shardMask)
	t.nfree.Add(1)
	t.live.Add(-1)
	return nil
}

// Translate resolves a handle word to a raw simulated address with a pure
// atomic load chain: shard → chunk directory → slot → entry. Raw pointers
// pass through unchanged (§4.1.2). FlagInvalid yields ErrHandleFault so
// the runtime can run the §7 fault path.
func (t *ShardedTable) Translate(h Handle) (mem.Addr, error) {
	if !h.IsHandle() {
		return mem.Addr(h), nil
	}
	_, s := t.locate(h.ID())
	if s == nil {
		return 0, &ErrBadHandle{h, "id out of range"}
	}
	e := s.e.Load()
	if e == nil {
		return 0, &ErrBadHandle{h, "translate of freed handle"}
	}
	if e.Flags&FlagInvalid != 0 {
		return 0, ErrHandleFault
	}
	if uint64(h.Offset()) >= e.Size {
		return 0, &ErrBadHandle{h, fmt.Sprintf("offset %d outside %d-byte object", h.Offset(), e.Size)}
	}
	return e.Backing + mem.Addr(h.Offset()), nil
}

// Get returns a copy of the entry for id (with the live pin count folded
// in, for the CountedPins ablation).
func (t *ShardedTable) Get(id uint32) (Entry, error) {
	_, s := t.locate(id)
	if s == nil {
		return Entry{}, &ErrBadHandle{Make(id, 0), "get of unallocated handle"}
	}
	e := s.e.Load()
	if e == nil {
		return Entry{}, &ErrBadHandle{Make(id, 0), "get of unallocated handle"}
	}
	out := *e
	out.Pins = s.pins.Load()
	return out, nil
}

// update CASes a mutated copy of the published entry into place. fn returns
// an error to abort, or mutates the copy. Retries on CAS contention.
func (t *ShardedTable) update(id uint32, what string, fn func(*Entry) error) error {
	_, s := t.locate(id)
	if s == nil {
		return &ErrBadHandle{Make(id, 0), what + " of unallocated handle"}
	}
	for {
		old := s.e.Load()
		if old == nil {
			return &ErrBadHandle{Make(id, 0), what + " of unallocated handle"}
		}
		next := *old
		if err := fn(&next); err != nil {
			return err
		}
		if s.e.CompareAndSwap(old, &next) {
			return nil
		}
	}
}

// SetBacking points the entry's backing storage at a new address — the
// O(1) relocation update, now a CAS instead of a locked store.
func (t *ShardedTable) SetBacking(id uint32, backing mem.Addr) error {
	return t.update(id, "SetBacking", func(e *Entry) error {
		e.Backing = backing
		return nil
	})
}

// SetInvalid sets or clears the handle-fault bit on an entry.
func (t *ShardedTable) SetInvalid(id uint32, invalid bool) error {
	return t.update(id, "SetInvalid", func(e *Entry) error {
		if invalid {
			e.Flags |= FlagInvalid
		} else {
			e.Flags &^= FlagInvalid
		}
		return nil
	})
}

// BeginSpeculativeMove CASes a valid entry into the invalid ("moving")
// state and returns a snapshot of the pre-move entry — the first step of
// the §7 concurrent relocation protocol. It fails if the entry is free or
// already moving.
func (t *ShardedTable) BeginSpeculativeMove(id uint32) (Entry, error) {
	_, s := t.locate(id)
	if s == nil {
		return Entry{}, &ErrBadHandle{Make(id, 0), "speculative move of unallocated handle"}
	}
	for {
		old := s.e.Load()
		if old == nil {
			return Entry{}, &ErrBadHandle{Make(id, 0), "speculative move of unallocated handle"}
		}
		if old.Flags&FlagInvalid != 0 {
			return Entry{}, &ErrBadHandle{Make(id, 0), "entry already moving/invalid"}
		}
		next := *old
		next.Flags |= FlagInvalid
		if s.e.CompareAndSwap(old, &next) {
			return *old, nil
		}
	}
}

// CommitSpeculativeMove attempts the protocol's closing CAS: if the entry
// is still in the moving state it is swung to newAddr and revalidated in
// one atomic publication, returning true. If a concurrent accessor already
// revalidated it (the abort path), it returns false and the entry — which
// the accessor restored to its original backing — is left untouched.
func (t *ShardedTable) CommitSpeculativeMove(id uint32, newAddr mem.Addr) bool {
	_, s := t.locate(id)
	if s == nil {
		return false
	}
	for {
		old := s.e.Load()
		if old == nil {
			return false // freed mid-move
		}
		if old.Flags&FlagInvalid == 0 {
			return false // revalidated by an accessor: move aborted
		}
		next := *old
		next.Backing = newAddr
		next.Flags &^= FlagInvalid
		if s.e.CompareAndSwap(old, &next) {
			return true
		}
	}
}

// Revalidate CASes a moving entry back to valid with its original backing —
// the accessor's side of the §7 protocol (run from the handle-fault
// handler). It returns true if this call performed the transition (thereby
// aborting any in-flight move), false if the entry was already valid.
func (t *ShardedTable) Revalidate(id uint32) (bool, error) {
	_, s := t.locate(id)
	if s == nil {
		return false, &ErrBadHandle{Make(id, 0), "revalidate of unallocated handle"}
	}
	for {
		old := s.e.Load()
		if old == nil {
			return false, &ErrBadHandle{Make(id, 0), "revalidate of unallocated handle"}
		}
		if old.Flags&FlagInvalid == 0 {
			return false, nil
		}
		next := *old
		next.Flags &^= FlagInvalid
		if s.e.CompareAndSwap(old, &next) {
			return true, nil
		}
	}
}

// AddPin adjusts the per-entry atomic pin count (the CountedPins ablation
// path). With the sharded table this is the naïve design's true cost — one
// contended atomic RMW — rather than that plus a global table lock.
func (t *ShardedTable) AddPin(id uint32, delta int32) error {
	_, s := t.locate(id)
	if s == nil || s.e.Load() == nil {
		return &ErrBadHandle{Make(id, 0), "pin of unallocated handle"}
	}
	if s.pins.Add(delta) < 0 {
		return &ErrBadHandle{Make(id, 0), "pin count underflow"}
	}
	return nil
}

// PinCount returns the per-entry pin count (ablation path only).
func (t *ShardedTable) PinCount(id uint32) int32 {
	_, s := t.locate(id)
	if s == nil {
		return 0
	}
	return s.pins.Load()
}

// Live returns the number of allocated entries.
func (t *ShardedTable) Live() int { return int(t.live.Load()) }

// Peak returns the high-water mark of live entries.
func (t *ShardedTable) Peak() int { return int(t.peak.Load()) }

// Extent returns how many IDs the bump allocators have ever handed out;
// the table's memory overhead is Extent() HTEs regardless of recycling.
func (t *ShardedTable) Extent() uint32 {
	var n uint32
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += sh.bump
		sh.mu.Unlock()
	}
	return n
}

// ForEachLive calls fn for every allocated entry. Iteration is lock-free
// and weakly consistent: entries allocated or freed concurrently may or
// may not be observed, and IDs are visited in per-shard (not global
// numeric) order. Callers needing a stable view run inside a barrier,
// where the world is stopped.
func (t *ShardedTable) ForEachLive(fn func(id uint32, e Entry)) {
	for shard := uint32(0); shard < ShardCount; shard++ {
		sh := &t.shards[shard]
		dirp := sh.dir.Load()
		if dirp == nil {
			continue
		}
		for ci, c := range *dirp {
			for k := range c {
				e := c[k].e.Load()
				if e == nil || e.Flags&FlagAllocated == 0 {
					continue
				}
				out := *e
				out.Pins = c[k].pins.Load()
				fn(makeID(shard, uint32(ci)<<chunkBits|uint32(k)), out)
			}
		}
	}
}
