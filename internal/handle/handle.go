// Package handle implements Alaska's handle representation and the
// single-level handle table (§3.3 and §4.2.1 of the paper).
//
// A handle is a 64-bit word that coexists with raw pointers in the same
// values: bit 63 distinguishes the two (1 = handle, 0 = pointer). Bits
// 62..32 hold a 31-bit handle ID that indexes the handle table, and bits
// 31..0 hold a byte offset into the object, capping object size at 4 GiB —
// exactly the layout of the paper's Figure 4. Because any real (simulated)
// virtual address in this repository is far below 2^63, an un-translated
// handle dereferenced as an address faults, as footnote 5 of the paper
// intends.
//
// The handle table is a flat array of fixed-size entries (HTEs), one per
// live object, so translation is a single load: table[id].Backing + offset.
// Entries are allocated with a bump pointer and recycled through a free
// list (free list consulted first), matching §4.2.1.
package handle

import (
	"fmt"
	"sync"

	"alaska/internal/mem"
)

// Handle is a 64-bit value that is either a raw pointer (top bit clear) or
// an encoded handle (top bit set).
type Handle uint64

const (
	// TopBit marks a word as a handle rather than a raw pointer.
	TopBit Handle = 1 << 63
	// idBits is the width of the handle ID field.
	idBits = 31
	// offsetBits is the width of the intra-object offset field.
	offsetBits = 32
	// MaxID is the largest representable handle ID (2^31 - 1).
	MaxID = 1<<idBits - 1
	// MaxObjectSize is the largest object addressable through a handle
	// (4 GiB); the paper argues larger objects are better served by paging.
	MaxObjectSize = uint64(1) << offsetBits
)

// Make builds a handle word from an ID and an intra-object offset.
func Make(id uint32, offset uint32) Handle {
	return TopBit | Handle(id&MaxID)<<offsetBits | Handle(offset)
}

// IsHandle reports whether the word has the handle bit set.
func (h Handle) IsHandle() bool { return h&TopBit != 0 }

// ID extracts the 31-bit handle table index.
func (h Handle) ID() uint32 { return uint32(h>>offsetBits) & MaxID }

// Offset extracts the 32-bit intra-object byte offset.
func (h Handle) Offset() uint32 { return uint32(h) }

// Add returns the handle displaced by delta bytes. This is what pointer
// arithmetic (getelementptr) on a handle compiles to: only the low 32 bits
// change, so the identity of the object is preserved. Callers may produce
// offsets outside the allocation; per §3.2 such programs are out of
// contract and translation of the result is unspecified (we fault).
func (h Handle) Add(delta int64) Handle {
	return (h &^ Handle(MaxObjectSize-1)) | Handle(uint32(int64(h.Offset())+delta))
}

// String formats the handle for diagnostics.
func (h Handle) String() string {
	if !h.IsHandle() {
		return fmt.Sprintf("ptr(%#x)", uint64(h))
	}
	return fmt.Sprintf("handle(id=%d, off=%d)", h.ID(), h.Offset())
}

// Entry flag bits.
const (
	// FlagAllocated marks a live HTE.
	FlagAllocated uint8 = 1 << iota
	// FlagInvalid marks a "handle fault" entry (§7): translation must trap
	// to the runtime so a service can swap the object back in.
	FlagInvalid
)

// Entry is a handle table entry (HTE). The paper's HTE is eight bytes (just
// the backing pointer); we carry the object size and flags alongside
// because the simulation has no out-of-band allocator metadata to consult.
type Entry struct {
	// Backing is the current address of the object's storage. The runtime
	// updates it when a service moves the object; that single store is the
	// O(1) relocation step handles exist to enable.
	Backing mem.Addr
	// Size is the object's allocation size in bytes.
	Size uint64
	// Pins is used only by the CountedPins tracking variant (the "naïve
	// atomic pin_count" design of §3.4, kept for the ablation benchmark).
	Pins int32
	// Flags holds FlagAllocated / FlagInvalid.
	Flags uint8
}

// ErrTableFull is returned when all 2^31 handle IDs are in use.
var ErrTableFull = fmt.Errorf("handle: table full (2^31 entries)")

// ErrBadHandle is returned for operations on words that are not live
// handles.
type ErrBadHandle struct {
	H      Handle
	Reason string
}

func (e *ErrBadHandle) Error() string {
	return fmt.Sprintf("handle: %v: %s", e.H, e.Reason)
}

// Table is the single-level handle table. It is virtually sized for all
// 2^31 entries but, like the paper's mmap-then-demand-page design, only
// grows its storage as the bump pointer advances.
type Table struct {
	mu      sync.RWMutex
	entries []Entry
	free    []uint32 // LIFO free list of recycled IDs
	bump    uint32   // next never-used ID
	live    int
	// peak tracks the high-water mark of live entries, used by tests and
	// the HTE-density statistic in EXPERIMENTS.md.
	peak int
}

// NewTable returns an empty handle table.
func NewTable() *Table {
	return &Table{entries: make([]Entry, 0, 1024)}
}

// Alloc reserves a handle ID and initializes its entry. The free list is
// consulted before bump allocation (§4.2.1).
func (t *Table) Alloc(backing mem.Addr, size uint64) (uint32, error) {
	if size > MaxObjectSize {
		return 0, fmt.Errorf("handle: object of %d bytes exceeds 4 GiB handle limit", size)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var id uint32
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		if t.bump > MaxID {
			return 0, ErrTableFull
		}
		id = t.bump
		t.bump++
		for uint32(len(t.entries)) <= id {
			t.entries = append(t.entries, Entry{})
		}
	}
	t.entries[id] = Entry{Backing: backing, Size: size, Flags: FlagAllocated}
	t.live++
	if t.live > t.peak {
		t.peak = t.live
	}
	return id, nil
}

// Free releases an entry back to the free list.
func (t *Table) Free(id uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.entries) || t.entries[id].Flags&FlagAllocated == 0 {
		return &ErrBadHandle{Make(id, 0), "free of unallocated handle"}
	}
	t.entries[id] = Entry{}
	t.free = append(t.free, id)
	t.live--
	return nil
}

// Translate resolves a handle word to a raw simulated address:
// table[id].Backing + offset. Raw pointers pass through unchanged, matching
// the paper's translation function (§4.1.2). If the entry carries
// FlagInvalid, ErrHandleFault is returned so the runtime can dispatch a
// handle fault (§7).
func (t *Table) Translate(h Handle) (mem.Addr, error) {
	if !h.IsHandle() {
		return mem.Addr(h), nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := h.ID()
	if int(id) >= len(t.entries) {
		return 0, &ErrBadHandle{h, "id out of range"}
	}
	e := &t.entries[id]
	if e.Flags&FlagAllocated == 0 {
		return 0, &ErrBadHandle{h, "translate of freed handle"}
	}
	if e.Flags&FlagInvalid != 0 {
		return 0, ErrHandleFault
	}
	if uint64(h.Offset()) >= e.Size {
		return 0, &ErrBadHandle{h, fmt.Sprintf("offset %d outside %d-byte object", h.Offset(), e.Size)}
	}
	return e.Backing + mem.Addr(h.Offset()), nil
}

// ErrHandleFault signals that a translation hit an invalidated entry and
// the runtime's fault path must run.
var ErrHandleFault = fmt.Errorf("handle: fault (entry invalid)")

// Get returns a copy of the entry for id.
func (t *Table) Get(id uint32) (Entry, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) >= len(t.entries) || t.entries[id].Flags&FlagAllocated == 0 {
		return Entry{}, &ErrBadHandle{Make(id, 0), "get of unallocated handle"}
	}
	return t.entries[id], nil
}

// SetBacking points the entry's backing storage at a new address — the
// O(1) relocation update.
func (t *Table) SetBacking(id uint32, backing mem.Addr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.entries) || t.entries[id].Flags&FlagAllocated == 0 {
		return &ErrBadHandle{Make(id, 0), "SetBacking of unallocated handle"}
	}
	t.entries[id].Backing = backing
	return nil
}

// SetInvalid sets or clears the handle-fault bit on an entry.
func (t *Table) SetInvalid(id uint32, invalid bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.entries) || t.entries[id].Flags&FlagAllocated == 0 {
		return &ErrBadHandle{Make(id, 0), "SetInvalid of unallocated handle"}
	}
	if invalid {
		t.entries[id].Flags |= FlagInvalid
	} else {
		t.entries[id].Flags &^= FlagInvalid
	}
	return nil
}

// BeginSpeculativeMove transitions a valid entry to the invalid ("moving")
// state and returns a snapshot of it — the first step of the §7 concurrent
// relocation protocol. It fails if the entry is free or already moving.
func (t *Table) BeginSpeculativeMove(id uint32) (Entry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.entries) || t.entries[id].Flags&FlagAllocated == 0 {
		return Entry{}, &ErrBadHandle{Make(id, 0), "speculative move of unallocated handle"}
	}
	if t.entries[id].Flags&FlagInvalid != 0 {
		return Entry{}, &ErrBadHandle{Make(id, 0), "entry already moving/invalid"}
	}
	t.entries[id].Flags |= FlagInvalid
	return t.entries[id], nil
}

// CommitSpeculativeMove atomically completes a speculative move: if the
// entry is still in the moving state, its backing is swung to newAddr and
// it is revalidated (the protocol's successful CAS), returning true. If a
// concurrent accessor already revalidated the entry (the abort path), it
// returns false and the entry is untouched.
func (t *Table) CommitSpeculativeMove(id uint32, newAddr mem.Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.entries) || t.entries[id].Flags&FlagAllocated == 0 {
		return false
	}
	if t.entries[id].Flags&FlagInvalid == 0 {
		return false // revalidated by an accessor: move aborted
	}
	t.entries[id].Backing = newAddr
	t.entries[id].Flags &^= FlagInvalid
	return true
}

// Revalidate transitions a moving entry back to valid with its original
// backing — the accessor's side of the §7 protocol (run from the handle-
// fault handler). It returns true if this call performed the transition
// (thereby aborting any in-flight move), false if the entry was already
// valid.
func (t *Table) Revalidate(id uint32) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.entries) || t.entries[id].Flags&FlagAllocated == 0 {
		return false, &ErrBadHandle{Make(id, 0), "revalidate of unallocated handle"}
	}
	if t.entries[id].Flags&FlagInvalid == 0 {
		return false, nil
	}
	t.entries[id].Flags &^= FlagInvalid
	return true, nil
}

// AddPin adjusts the per-entry atomic pin count (ablation path only).
func (t *Table) AddPin(id uint32, delta int32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.entries) || t.entries[id].Flags&FlagAllocated == 0 {
		return &ErrBadHandle{Make(id, 0), "pin of unallocated handle"}
	}
	t.entries[id].Pins += delta
	if t.entries[id].Pins < 0 {
		return &ErrBadHandle{Make(id, 0), "pin count underflow"}
	}
	return nil
}

// PinCount returns the per-entry pin count (ablation path only).
func (t *Table) PinCount(id uint32) int32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) >= len(t.entries) {
		return 0
	}
	return t.entries[id].Pins
}

// Live returns the number of allocated entries.
func (t *Table) Live() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Peak returns the high-water mark of live entries.
func (t *Table) Peak() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.peak
}

// Extent returns how many IDs the bump allocator has ever handed out; the
// table's memory overhead is Extent() HTEs regardless of recycling.
func (t *Table) Extent() uint32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bump
}

// ForEachLive calls fn for every allocated entry. The table lock is held
// for the duration; fn must not call back into the table.
func (t *Table) ForEachLive(fn func(id uint32, e Entry)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id := uint32(0); id < uint32(len(t.entries)); id++ {
		if t.entries[id].Flags&FlagAllocated != 0 {
			fn(id, t.entries[id])
		}
	}
}
