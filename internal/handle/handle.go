// Package handle implements Alaska's handle representation and the
// single-level handle table (§3.3 and §4.2.1 of the paper).
//
// A handle is a 64-bit word that coexists with raw pointers in the same
// values: bit 63 distinguishes the two (1 = handle, 0 = pointer). Bits
// 62..32 hold a 31-bit handle ID that indexes the handle table, and bits
// 31..0 hold a byte offset into the object, capping object size at 4 GiB —
// exactly the layout of the paper's Figure 4. Because any real (simulated)
// virtual address in this repository is far below 2^63, an un-translated
// handle dereferenced as an address faults, as footnote 5 of the paper
// intends.
//
// The handle table is an array of fixed-size entries (HTEs), one per live
// object, so translation is a load chain: table[id].Backing + offset.
// Entries are allocated with per-shard bump pointers and recycled through
// free lists (free list consulted first), matching §4.2.1. See sharded.go
// for the sharded, read-lock-free implementation; locked.go preserves the
// original single-RWMutex design as an ablation baseline.
package handle

import (
	"fmt"

	"alaska/internal/mem"
)

// Handle is a 64-bit value that is either a raw pointer (top bit clear) or
// an encoded handle (top bit set).
type Handle uint64

const (
	// TopBit marks a word as a handle rather than a raw pointer.
	TopBit Handle = 1 << 63
	// idBits is the width of the handle ID field.
	idBits = 31
	// offsetBits is the width of the intra-object offset field.
	offsetBits = 32
	// MaxID is the largest representable handle ID (2^31 - 1).
	MaxID = 1<<idBits - 1
	// MaxObjectSize is the largest object addressable through a handle
	// (4 GiB); the paper argues larger objects are better served by paging.
	MaxObjectSize = uint64(1) << offsetBits
)

// Make builds a handle word from an ID and an intra-object offset.
func Make(id uint32, offset uint32) Handle {
	return TopBit | Handle(id&MaxID)<<offsetBits | Handle(offset)
}

// IsHandle reports whether the word has the handle bit set.
func (h Handle) IsHandle() bool { return h&TopBit != 0 }

// ID extracts the 31-bit handle table index.
func (h Handle) ID() uint32 { return uint32(h>>offsetBits) & MaxID }

// Offset extracts the 32-bit intra-object byte offset.
func (h Handle) Offset() uint32 { return uint32(h) }

// Add returns the handle displaced by delta bytes. This is what pointer
// arithmetic (getelementptr) on a handle compiles to: only the low 32 bits
// change, so the identity of the object is preserved. Callers may produce
// offsets outside the allocation; per §3.2 such programs are out of
// contract and translation of the result is unspecified (we fault).
func (h Handle) Add(delta int64) Handle {
	return (h &^ Handle(MaxObjectSize-1)) | Handle(uint32(int64(h.Offset())+delta))
}

// String formats the handle for diagnostics.
func (h Handle) String() string {
	if !h.IsHandle() {
		return fmt.Sprintf("ptr(%#x)", uint64(h))
	}
	return fmt.Sprintf("handle(id=%d, off=%d)", h.ID(), h.Offset())
}

// Entry flag bits.
const (
	// FlagAllocated marks a live HTE.
	FlagAllocated uint8 = 1 << iota
	// FlagInvalid marks a "handle fault" entry (§7): translation must trap
	// to the runtime so a service can swap the object back in.
	FlagInvalid
)

// Entry is a handle table entry (HTE). The paper's HTE is eight bytes (just
// the backing pointer); we carry the object size and flags alongside
// because the simulation has no out-of-band allocator metadata to consult.
type Entry struct {
	// Backing is the current address of the object's storage. The runtime
	// updates it when a service moves the object; that single store is the
	// O(1) relocation step handles exist to enable.
	Backing mem.Addr
	// Size is the object's allocation size in bytes.
	Size uint64
	// Pins is used only by the CountedPins tracking variant (the "naïve
	// atomic pin_count" design of §3.4, kept for the ablation benchmark).
	Pins int32
	// Flags holds FlagAllocated / FlagInvalid.
	Flags uint8
}

// ErrTableFull is returned when all 2^31 handle IDs are in use.
var ErrTableFull = fmt.Errorf("handle: table full (2^31 entries)")

// ErrBadHandle is returned for operations on words that are not live
// handles.
type ErrBadHandle struct {
	H      Handle
	Reason string
}

func (e *ErrBadHandle) Error() string {
	return fmt.Sprintf("handle: %v: %s", e.H, e.Reason)
}

// ErrHandleFault signals that a translation hit an invalidated entry and
// the runtime's fault path must run.
var ErrHandleFault = fmt.Errorf("handle: fault (entry invalid)")

// Table is the handle table type the rest of the repository programs
// against. It is an alias for the sharded, read-lock-free implementation
// (sharded.go), kept so the seed's call sites — which predate sharding —
// migrate without source changes. New code may use ShardedTable directly;
// the original single-RWMutex design survives as LockedTable (locked.go)
// for the scaling ablation.
type Table = ShardedTable

// NewTable returns an empty handle table.
func NewTable() *Table { return NewShardedTable() }
