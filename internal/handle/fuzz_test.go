package handle

import "testing"

// FuzzHandleRoundTrip fuzzes the handle word encoding of Figure 4: for any
// (id, offset, delta), Make must round-trip through ID/Offset, keep the
// top bit set, and Add must displace only the offset field — including at
// the TopBit/MaxID boundaries and across offset overflow, where wraparound
// must stay confined to the low 32 bits (an out-of-contract offset per
// §3.2, but one that must never corrupt the object's identity).
func FuzzHandleRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), int64(0))
	f.Add(uint32(MaxID), uint32(0xffffffff), int64(1))          // all fields saturated, offset wraps
	f.Add(uint32(MaxID+1), uint32(7), int64(-8))                // id beyond MaxID must be masked
	f.Add(uint32(1), uint32(0), int64(-1))                      // offset underflow
	f.Add(uint32(42), uint32(0x7fffffff), int64(1<<32))         // delta wider than the offset field
	f.Add(uint32(0x40000000), uint32(0x80000000), int64(1<<31)) // high bits everywhere
	f.Fuzz(func(t *testing.T, id uint32, off uint32, delta int64) {
		masked := id & MaxID
		h := Make(id, off)
		if !h.IsHandle() {
			t.Fatalf("Make(%#x, %#x) lost TopBit", id, off)
		}
		if h.ID() != masked {
			t.Fatalf("ID() = %#x, want %#x", h.ID(), masked)
		}
		if h.Offset() != off {
			t.Fatalf("Offset() = %#x, want %#x", h.Offset(), off)
		}
		// Add displaces the offset with 32-bit wraparound and never touches
		// identity or the handle bit.
		d := h.Add(delta)
		if !d.IsHandle() || d.ID() != masked {
			t.Fatalf("Add(%d) corrupted identity: %v -> %v", delta, h, d)
		}
		if want := uint32(int64(off) + delta); d.Offset() != want {
			t.Fatalf("Add(%d).Offset() = %#x, want %#x", delta, d.Offset(), want)
		}
		// Displacing back must restore the original word exactly.
		if back := d.Add(-delta); back != h {
			t.Fatalf("Add(%d).Add(%d) = %v, want %v", delta, -delta, back, h)
		}
		// A raw pointer (TopBit clear) must never classify as a handle.
		if p := Handle(uint64(h) &^ uint64(TopBit)); p.IsHandle() {
			t.Fatalf("cleared-TopBit word %#x still a handle", uint64(p))
		}
	})
}
