package handle

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"alaska/internal/mem"
)

// TestShardedIDLayout pins the shard encoding: sequential single-threaded
// allocation must reproduce the seed's ID sequence (0, 1, 2, …) even
// though the shard index lives in the low bits.
func TestShardedIDLayout(t *testing.T) {
	tb := NewShardedTable()
	for want := uint32(0); want < 3*ShardCount; want++ {
		id, err := tb.Alloc(mem.Addr(0x1000+want), 16)
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("alloc #%d gave id %d", want, id)
		}
	}
	if got := tb.Extent(); got != 3*ShardCount {
		t.Fatalf("Extent = %d, want %d", got, 3*ShardCount)
	}
}

// TestShardedFreeReuseAcrossShards verifies the free-list-before-bump rule
// holds globally: a recycled ID parked on a distant shard is found before
// any shard bumps a fresh one.
func TestShardedFreeReuseAcrossShards(t *testing.T) {
	tb := NewShardedTable()
	var ids []uint32
	for i := 0; i < 2*ShardCount; i++ {
		id, err := tb.Alloc(0x1000, 16)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := tb.Free(ids[3]); err != nil {
		t.Fatal(err)
	}
	got, err := tb.Alloc(0x2000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got != ids[3] {
		t.Fatalf("recycled id = %d, want %d", got, ids[3])
	}
	if tb.Extent() != 2*ShardCount {
		t.Fatalf("Extent = %d, want %d (reuse must not bump)", tb.Extent(), 2*ShardCount)
	}
}

// TestShardedTableRace hammers every table operation from many goroutines
// at once; run under `go test -race`. Each worker owns a private set of
// handles for alloc/free/translate integrity checks while also translating
// other workers' handles and driving the speculative-move protocol against
// a shared victim set, so the CAS paths race against frees, backing swings,
// and each other.
func TestShardedTableRace(t *testing.T) {
	tb := NewShardedTable()
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	const opsPerWorker = 20000

	// Shared victims for the speculative-move/revalidate/translate race.
	const nVictims = 64
	victims := make([]uint32, nVictims)
	for i := range victims {
		id, err := tb.Alloc(mem.Addr(0x100000+uint64(i)*256), 256)
		if err != nil {
			t.Fatal(err)
		}
		victims[i] = id
	}

	var wg sync.WaitGroup
	var translations, commits, aborts atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			type obj struct {
				id      uint32
				backing mem.Addr
			}
			var mine []obj
			for op := 0; op < opsPerWorker; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2: // alloc
					backing := mem.Addr(0x1000000 + uint64(w)<<32 + uint64(op)*512)
					id, err := tb.Alloc(backing, 512)
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, obj{id, backing})
				case 3: // free
					if len(mine) == 0 {
						continue
					}
					k := rng.Intn(len(mine))
					if err := tb.Free(mine[k].id); err != nil {
						t.Error(err)
						return
					}
					mine = append(mine[:k], mine[k+1:]...)
				case 4, 5, 6: // translate own: must resolve exactly
					if len(mine) == 0 {
						continue
					}
					o := mine[rng.Intn(len(mine))]
					a, err := tb.Translate(Make(o.id, 8))
					if err != nil {
						t.Errorf("translate of live private handle: %v", err)
						return
					}
					if a != o.backing+8 {
						t.Errorf("translate = %#x, want %#x", a, o.backing+8)
						return
					}
					translations.Add(1)
				case 7: // translate a shared victim: any protocol outcome is legal
					id := victims[rng.Intn(nVictims)]
					_, err := tb.Translate(Make(id, 0))
					if err != nil && errors.Is(err, ErrHandleFault) {
						// Accessor side of §7: revalidate in place, abort the move.
						if _, rerr := tb.Revalidate(id); rerr != nil {
							t.Error(rerr)
							return
						}
					}
				case 8: // mover side of §7 on a shared victim
					id := victims[rng.Intn(nVictims)]
					entry, err := tb.BeginSpeculativeMove(id)
					if err != nil {
						continue // already moving — another mover won
					}
					dst := entry.Backing ^ 0x8000000
					if tb.CommitSpeculativeMove(id, dst) {
						commits.Add(1)
						// Swing it back so victim backings stay in a known set.
						if err := tb.SetBacking(id, entry.Backing); err != nil {
							t.Error(err)
							return
						}
					} else {
						aborts.Add(1)
					}
				case 9: // pins (CountedPins ablation path)
					id := victims[rng.Intn(nVictims)]
					if err := tb.AddPin(id, 1); err != nil {
						t.Error(err)
						return
					}
					if err := tb.AddPin(id, -1); err != nil {
						t.Error(err)
						return
					}
				}
			}
			for _, o := range mine {
				if err := tb.Free(o.id); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if tb.Live() != nVictims {
		t.Errorf("Live = %d after teardown, want %d", tb.Live(), nVictims)
	}
	// Every victim must have ended valid with its original backing.
	for i, id := range victims {
		a, err := tb.Translate(Make(id, 0))
		if err != nil {
			t.Errorf("victim %d: %v", i, err)
			continue
		}
		if want := mem.Addr(0x100000 + uint64(i)*256); a != want {
			t.Errorf("victim %d backing = %#x, want %#x", i, a, want)
		}
	}
	t.Logf("%d workers: %d private translations, %d move commits, %d move aborts",
		workers, translations.Load(), commits.Load(), aborts.Load())
}

// TestShardedAllocFreeChurnRace drives pure alloc/free churn so ID
// recycling races bump allocation across shards; the invariant is that no
// two live objects ever share an ID (checked via translation integrity).
func TestShardedAllocFreeChurnRace(t *testing.T) {
	tb := NewShardedTable()
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct backing per (worker, slot) proves ID exclusivity: if
			// two workers ever held the same ID, one's translation would
			// resolve to the other's backing.
			const slots = 32
			ids := make([]uint32, slots)
			backs := make([]mem.Addr, slots)
			alive := make([]bool, slots)
			rng := rand.New(rand.NewSource(int64(w) + 99))
			for op := 0; op < 30000; op++ {
				k := rng.Intn(slots)
				if alive[k] {
					a, err := tb.Translate(Make(ids[k], 0))
					if err != nil || a != backs[k] {
						t.Errorf("worker %d slot %d: got %#x,%v want %#x", w, k, a, err, backs[k])
						return
					}
					if err := tb.Free(ids[k]); err != nil {
						t.Error(err)
						return
					}
					alive[k] = false
				} else {
					backs[k] = mem.Addr(0x10000 + uint64(w)<<40 + uint64(op)<<8)
					id, err := tb.Alloc(backs[k], 64)
					if err != nil {
						t.Error(err)
						return
					}
					ids[k] = id
					alive[k] = true
				}
			}
			for k := range ids {
				if alive[k] {
					_ = tb.Free(ids[k])
				}
			}
		}(w)
	}
	wg.Wait()
	if tb.Live() != 0 {
		t.Errorf("Live = %d after churn, want 0", tb.Live())
	}
}
