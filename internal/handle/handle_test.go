package handle

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"alaska/internal/mem"
)

func TestEncodingLayout(t *testing.T) {
	h := Make(0x7fffffff, 0xffffffff)
	if !h.IsHandle() {
		t.Fatal("Make produced a non-handle word")
	}
	if h.ID() != 0x7fffffff {
		t.Errorf("ID = %#x, want 0x7fffffff", h.ID())
	}
	if h.Offset() != 0xffffffff {
		t.Errorf("Offset = %#x, want 0xffffffff", h.Offset())
	}
	if uint64(h) != 0xffffffffffffffff {
		t.Errorf("word = %#x, want all ones", uint64(h))
	}
}

func TestPointerIsNotHandle(t *testing.T) {
	p := Handle(0x0000_7fff_1234_0000)
	if p.IsHandle() {
		t.Error("address with clear top bit classified as handle")
	}
}

func TestEncodingRoundTripProperty(t *testing.T) {
	f := func(id uint32, off uint32) bool {
		id &= MaxID
		h := Make(id, off)
		return h.IsHandle() && h.ID() == id && h.Offset() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddPreservesIdentity(t *testing.T) {
	h := Make(42, 100)
	h2 := h.Add(28)
	if h2.ID() != 42 || h2.Offset() != 128 {
		t.Errorf("Add(28) = %v", h2)
	}
	h3 := h2.Add(-128)
	if h3.ID() != 42 || h3.Offset() != 0 {
		t.Errorf("Add(-128) = %v", h3)
	}
}

func TestAddArithmeticProperty(t *testing.T) {
	f := func(id uint32, off uint32, d1, d2 int32) bool {
		id &= MaxID
		h := Make(id, off)
		// Associativity of displacement and identity preservation.
		a := h.Add(int64(d1)).Add(int64(d2))
		b := h.Add(int64(d1) + int64(d2))
		return a == b && a.ID() == id && a.IsHandle()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableAllocFreeReuse(t *testing.T) {
	tb := NewTable()
	id1, err := tb.Alloc(0x1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := tb.Alloc(0x2000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("duplicate IDs")
	}
	if id1 != 0 || id2 != 1 {
		t.Errorf("bump allocation gave %d,%d, want 0,1", id1, id2)
	}
	if err := tb.Free(id1); err != nil {
		t.Fatal(err)
	}
	// Free list consulted before bump (§4.2.1).
	id3, err := tb.Alloc(0x3000, 32)
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 {
		t.Errorf("recycled ID = %d, want %d", id3, id1)
	}
	if tb.Extent() != 2 {
		t.Errorf("Extent = %d, want 2", tb.Extent())
	}
}

func TestTranslate(t *testing.T) {
	tb := NewTable()
	id, err := tb.Alloc(0x4000, 256)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tb.Translate(Make(id, 16))
	if err != nil {
		t.Fatal(err)
	}
	if a != 0x4010 {
		t.Errorf("Translate = %#x, want 0x4010", a)
	}
	// Raw pointers pass through.
	a, err = tb.Translate(Handle(0x9999))
	if err != nil || a != 0x9999 {
		t.Errorf("pointer passthrough = %#x, %v", a, err)
	}
}

func TestTranslateErrors(t *testing.T) {
	tb := NewTable()
	id, _ := tb.Alloc(0x4000, 64)
	var bad *ErrBadHandle
	if _, err := tb.Translate(Make(id+1, 0)); !errors.As(err, &bad) {
		t.Errorf("out-of-range translate = %v", err)
	}
	if _, err := tb.Translate(Make(id, 64)); !errors.As(err, &bad) {
		t.Errorf("out-of-bounds offset translate = %v, want error", err)
	}
	if err := tb.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Translate(Make(id, 0)); !errors.As(err, &bad) {
		t.Errorf("freed translate = %v, want error", err)
	}
	if err := tb.Free(id); !errors.As(err, &bad) {
		t.Errorf("double free = %v, want error", err)
	}
}

func TestSetBackingMovesObject(t *testing.T) {
	tb := NewTable()
	id, _ := tb.Alloc(0x4000, 64)
	if err := tb.SetBacking(id, 0x8000); err != nil {
		t.Fatal(err)
	}
	a, err := tb.Translate(Make(id, 8))
	if err != nil || a != 0x8008 {
		t.Errorf("after move Translate = %#x, %v; want 0x8008", a, err)
	}
}

func TestHandleFaultFlag(t *testing.T) {
	tb := NewTable()
	id, _ := tb.Alloc(0x4000, 64)
	if err := tb.SetInvalid(id, true); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Translate(Make(id, 0)); !errors.Is(err, ErrHandleFault) {
		t.Errorf("invalid translate = %v, want ErrHandleFault", err)
	}
	if err := tb.SetInvalid(id, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Translate(Make(id, 0)); err != nil {
		t.Errorf("revalidated translate = %v", err)
	}
}

func TestOversizeAllocRejected(t *testing.T) {
	tb := NewTable()
	if _, err := tb.Alloc(0x1000, MaxObjectSize+1); err == nil {
		t.Error("alloc beyond 4 GiB succeeded")
	}
}

func TestPinCounts(t *testing.T) {
	tb := NewTable()
	id, _ := tb.Alloc(0x1000, 8)
	if err := tb.AddPin(id, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddPin(id, 1); err != nil {
		t.Fatal(err)
	}
	if got := tb.PinCount(id); got != 2 {
		t.Errorf("PinCount = %d, want 2", got)
	}
	if err := tb.AddPin(id, -2); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddPin(id, -1); err == nil {
		t.Error("pin underflow not detected")
	}
}

func TestLivePeakAndForEach(t *testing.T) {
	tb := NewTable()
	var ids []uint32
	for i := 0; i < 10; i++ {
		id, err := tb.Alloc(mem.Addr(0x1000+i*64), 64)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:5] {
		if err := tb.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Live() != 5 || tb.Peak() != 10 {
		t.Errorf("Live=%d Peak=%d, want 5, 10", tb.Live(), tb.Peak())
	}
	n := 0
	tb.ForEachLive(func(id uint32, e Entry) { n++ })
	if n != 5 {
		t.Errorf("ForEachLive visited %d, want 5", n)
	}
}

// Property: a random interleaving of allocs and frees never hands out the
// same ID to two live objects, and translation of a live handle always
// resolves to its own backing.
func TestTableAliasingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable()
		type obj struct {
			id      uint32
			backing mem.Addr
		}
		var live []obj
		for i := 0; i < 300; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(live))
				if tb.Free(live[k].id) != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			} else {
				backing := mem.Addr(0x10000 + uint64(i)*128)
				id, err := tb.Alloc(backing, 128)
				if err != nil {
					return false
				}
				for _, o := range live {
					if o.id == id {
						return false // duplicate live ID
					}
				}
				live = append(live, obj{id, backing})
			}
		}
		for _, o := range live {
			a, err := tb.Translate(Make(o.id, 7))
			if err != nil || a != o.backing+7 {
				return false
			}
		}
		return tb.Live() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
