package kv

// StatsSnapshot is a point-in-time view of a store's operation counters
// and memory footprint — the payload of alaskad's `stats` command and the
// experiment harnesses' progress reports.
type StatsSnapshot struct {
	// Operation counters.
	Sets, Gets int64
	// Hits and Misses partition Gets.
	Hits, Misses int64
	// DeleteHits and DeleteMisses partition deletes.
	DeleteHits, DeleteMisses int64
	// Evictions counts live entries removed under memory pressure.
	// Reclaimed counts dead (expired / flush_all-epoch) entries the
	// eviction walk removed instead — pressure finding garbage is
	// reclamation, not eviction. EvictedUnfetched counts evictions of
	// entries never fetched since they were stored.
	Evictions        int64
	Reclaimed        int64
	EvictedUnfetched int64
	// Expired counts entries reclaimed past their deadline, whether by
	// lazy expiry on access or by the Maintain sweep. ExpirySweeps counts
	// sweep rounds run.
	Expired, ExpirySweeps int64
	// CasHits/CasBadval/CasMisses partition compare-and-swap outcomes:
	// matched, mismatched unique, absent key.
	CasHits, CasBadval, CasMisses int64
	// IncrHits/IncrMisses and the decr pair partition incr/decr by key
	// presence.
	IncrHits, IncrMisses int64
	DecrHits, DecrMisses int64
	// TouchHits/TouchMisses partition touch/gat deadline updates.
	TouchHits, TouchMisses int64
	// Keys is the current live-key count.
	Keys int
	// Bytes is the charged item-byte total (value + key + EntryOverhead
	// per entry — memcached's `bytes`); LimitMaxbytes is the memory
	// ceiling it is held under (0 = unlimited).
	Bytes, LimitMaxbytes uint64
	// Used is the allocator-level live-byte count (used_memory); RSS is
	// the backend's resident set.
	Used, RSS uint64
}
