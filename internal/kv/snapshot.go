package kv

// StatsSnapshot is a point-in-time view of a store's operation counters
// and memory footprint — the payload of alaskad's `stats` command and the
// experiment harnesses' progress reports.
type StatsSnapshot struct {
	// Operation counters.
	Sets, Gets int64
	// Hits and Misses partition Gets.
	Hits, Misses int64
	// DeleteHits and DeleteMisses partition deletes.
	DeleteHits, DeleteMisses int64
	// Evictions counts LRU evictions.
	Evictions int64
	// Expired counts entries reclaimed past their deadline, whether by
	// lazy expiry on access or by the Maintain sweep. ExpirySweeps counts
	// sweep rounds run.
	Expired, ExpirySweeps int64
	// CasHits/CasBadval/CasMisses partition compare-and-swap outcomes:
	// matched, mismatched unique, absent key.
	CasHits, CasBadval, CasMisses int64
	// IncrHits/IncrMisses and the decr pair partition incr/decr by key
	// presence.
	IncrHits, IncrMisses int64
	DecrHits, DecrMisses int64
	// TouchHits/TouchMisses partition touch/gat deadline updates.
	TouchHits, TouchMisses int64
	// Keys is the current live-key count.
	Keys int
	// Used is the allocator-level live-byte count (used_memory); RSS is
	// the backend's resident set.
	Used, RSS uint64
}
