package kv

// StatsSnapshot is a point-in-time view of a store's operation counters
// and memory footprint — the payload of alaskad's `stats` command and the
// experiment harnesses' progress reports.
type StatsSnapshot struct {
	// Operation counters.
	Sets, Gets int64
	// Hits and Misses partition Gets.
	Hits, Misses int64
	// DeleteHits and DeleteMisses partition deletes.
	DeleteHits, DeleteMisses int64
	// Evictions counts LRU evictions.
	Evictions int64
	// Keys is the current live-key count.
	Keys int
	// Used is the allocator-level live-byte count (used_memory); RSS is
	// the backend's resident set.
	Used, RSS uint64
}
