package kv

// flush_all at the store layer: the store-wide epoch is honored lazily
// on access, entries stored after the epoch are untouched, and Maintain's
// sweep reclaims the casualties without any further access — on both the
// sharded concurrent store and the single-threaded one.

import (
	"fmt"
	"testing"
	"time"
)

func TestShardedStoreFlushAll(t *testing.T) {
	clk := newManualClock()
	st := NewShardedStore(NewMallocBackend(), 4, 0)
	st.Clock = clk.Now
	sess := st.NewSession()
	defer sess.Close()

	const n = 50
	for i := 0; i < n; i++ {
		if err := st.Set(sess, fmt.Sprintf("k%02d", i), []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	st.FlushAll(clk.Now()) // immediate epoch

	// Lazy path: an access sees the key as gone.
	if v, err := st.Get(sess, "k00"); err != nil || v != nil {
		t.Fatalf("get after flush: %q err=%v, want miss", v, err)
	}
	// Values stored after the epoch are untouched.
	if err := st.Set(sess, "fresh", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	// Sweep path: the remaining n-1 doomed keys are reclaimed with no
	// further access — one full scan per shard, then back to normal.
	reclaimed := st.SweepExpired(sweepBudgetPerShard)
	if reclaimed != n-1 {
		t.Errorf("sweep reclaimed %d, want %d", reclaimed, n-1)
	}
	snap := st.Snapshot()
	if snap.Keys != 1 {
		t.Errorf("keys after flush sweep = %d, want 1 (fresh)", snap.Keys)
	}
	if snap.Expired != n {
		t.Errorf("expired = %d, want %d", snap.Expired, n)
	}
	if v, err := st.Get(sess, "fresh"); err != nil || string(v) != "alive" {
		t.Fatalf("fresh damaged by flush: %q err=%v", v, err)
	}
	// The epoch is spent: a second sweep finds nothing and the fresh
	// TTL-free key costs nothing to skip.
	if again := st.SweepExpired(sweepBudgetPerShard); again != 0 {
		t.Errorf("second sweep reclaimed %d, want 0", again)
	}
}

func TestShardedStoreFlushAllPendingEpoch(t *testing.T) {
	clk := newManualClock()
	st := NewShardedStore(NewMallocBackend(), 4, 0)
	st.Clock = clk.Now
	sess := st.NewSession()
	defer sess.Close()

	if err := st.Set(sess, "old", []byte("v")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	st.FlushAll(clk.Now().Add(5 * time.Second)) // epoch in the future

	// Nothing dies before the epoch — by access or by sweep.
	if v, err := st.Get(sess, "old"); err != nil || v == nil {
		t.Fatalf("get before pending epoch: %q err=%v", v, err)
	}
	if r := st.SweepExpired(sweepBudgetPerShard); r != 0 {
		t.Errorf("sweep before epoch reclaimed %d, want 0", r)
	}
	// A value stored before the epoch arrives is doomed with the rest.
	clk.Advance(time.Second)
	if err := st.Set(sess, "mid", []byte("w")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(4 * time.Second) // the epoch arrives
	if r := st.SweepExpired(sweepBudgetPerShard); r != 2 {
		t.Errorf("sweep at epoch reclaimed %d, want 2 (old, mid)", r)
	}
	if st.Len() != 0 {
		t.Errorf("len after epoch sweep = %d, want 0", st.Len())
	}
}

func TestStoreFlushAll(t *testing.T) {
	clk := newManualClock()
	st := NewStore(NewMallocBackend(), 0)
	st.Clock = clk.Now

	const n = 30
	for i := 0; i < n; i++ {
		if err := st.Set(fmt.Sprintf("k%02d", i), []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	st.FlushAll(clk.Now())

	// The flush sweep runs even though no entry carries a TTL (the
	// ttlEntries==0 fast path must not skip it).
	if reclaimed := st.SweepExpired(sweepBudgetPerShard); reclaimed != n {
		t.Errorf("sweep reclaimed %d, want %d", reclaimed, n)
	}
	if st.Len() != 0 {
		t.Errorf("len after flush sweep = %d, want 0", st.Len())
	}
	// Post-epoch values survive both access and further sweeps.
	if err := st.Set("fresh", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if r := st.SweepExpired(sweepBudgetPerShard); r != 0 {
		t.Errorf("spent-epoch sweep reclaimed %d, want 0", r)
	}
	if v, err := st.Get("fresh"); err != nil || string(v) != "alive" {
		t.Fatalf("fresh damaged by flush: %q err=%v", v, err)
	}
	if snap := st.Snapshot(); snap.Expired != int64(n) {
		t.Errorf("expired = %d, want %d", snap.Expired, n)
	}
}
