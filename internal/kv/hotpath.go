package kv

import "unsafe"

// This file holds the two tiny helpers the allocation-free request path
// is built on: scratch-buffer growth and the string→[]byte view that
// lets the legacy string-keyed API share the byte-keyed core.

// growBytes returns a slice of length n, reusing b's storage when it is
// large enough and allocating (with headroom, so jittered value sizes
// converge instead of reallocating every near-miss) when it is not.
func growBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	c := 2 * cap(b)
	if c < n {
		c = n
	}
	return make([]byte, n, c)
}

// unsafeKeyBytes views a string's bytes as a []byte without copying.
// The result must never be written through — every core path only
// hashes the key, looks it up in a map, or re-interns it with an
// explicit string(key) copy — and must not outlive the string. It
// exists so the string-keyed wrappers (Get, SetEx, Apply, …) reuse the
// byte-keyed hot path without paying a conversion allocation per call.
func unsafeKeyBytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// emptyValue keeps zero-length hits distinguishable from misses on the
// nil-means-miss legacy Get surface.
var emptyValue = []byte{}
