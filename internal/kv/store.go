package kv

import (
	"container/list"
	"fmt"
	"time"
)

// Store is the Redis-like single-threaded store: a key index over
// heap-allocated values, a maxmemory limit, and LRU eviction. Keys live in
// the Go-side index (modelling Redis's dict; the paper notes "Redis'
// internal datastructures provide some overhead" — we track value storage,
// which is what the fragmentation experiments churn).
type Store struct {
	backend Backend
	session Session
	// MaxMemory is the eviction threshold over UsedBytes (0 = unlimited).
	MaxMemory uint64

	index map[string]*entry
	lru   *list.List // front = most recently used

	// Evictions counts LRU evictions.
	Evictions int64
	// Sets and Gets count operations; Hits/Misses partition Gets and
	// DeleteHits/DeleteMisses partition Dels.
	Sets, Gets               int64
	Hits, Misses             int64
	DeleteHits, DeleteMisses int64
}

type entry struct {
	key  string
	ref  Ref
	size uint64
	el   *list.Element
}

// NewStore builds a store over the backend. For the Anchorage backend the
// primary session is used so that Maintain can initiate barriers while the
// store's thread is considered safe.
func NewStore(b Backend, maxMemory uint64) *Store {
	var s Session
	if ab, ok := b.(*AnchorageBackend); ok {
		s = ab.PrimarySession()
	} else {
		s = b.NewSession()
	}
	st := &Store{
		backend:   b,
		session:   s,
		MaxMemory: maxMemory,
		index:     make(map[string]*entry),
		lru:       list.New(),
	}
	if ad, ok := b.(*ActiveDefragBackend); ok {
		ad.Iterator = st.iterateRefs
	}
	return st
}

// Backend returns the store's backend.
func (s *Store) Backend() Backend { return s.backend }

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.index) }

// Set inserts or replaces key with value, evicting LRU entries as needed
// to respect MaxMemory.
func (s *Store) Set(key string, value []byte) error {
	s.Sets++
	if old, ok := s.index[key]; ok {
		s.removeEntry(old)
	}
	// Evict-before-insert until the new value fits (Redis's
	// freeMemoryIfNeeded).
	if s.MaxMemory > 0 {
		for s.backend.UsedBytes()+uint64(len(value)) > s.MaxMemory {
			if !s.evictLRU() {
				break
			}
		}
	}
	ref, err := s.backend.Alloc(uint64(len(value)))
	if err != nil {
		return fmt.Errorf("kv: set %q: %w", key, err)
	}
	if err := s.session.Write(ref, 0, value); err != nil {
		_ = s.backend.Free(ref, uint64(len(value)))
		return err
	}
	e := &entry{key: key, ref: ref, size: uint64(len(value))}
	e.el = s.lru.PushFront(e)
	s.index[key] = e
	return nil
}

// Get returns a copy of key's value, or nil if absent.
func (s *Store) Get(key string) ([]byte, error) {
	s.Gets++
	e, ok := s.index[key]
	if !ok {
		s.Misses++
		return nil, nil
	}
	s.Hits++
	buf := make([]byte, e.size)
	if err := s.session.Read(e.ref, 0, buf); err != nil {
		return nil, err
	}
	s.lru.MoveToFront(e.el)
	return buf, nil
}

// Del removes key, returning whether it existed.
func (s *Store) Del(key string) (bool, error) {
	e, ok := s.index[key]
	if !ok {
		s.DeleteMisses++
		return false, nil
	}
	s.DeleteHits++
	s.removeEntry(e)
	return true, nil
}

// Snapshot returns the store's counters and memory metrics.
func (s *Store) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Sets:         s.Sets,
		Gets:         s.Gets,
		Hits:         s.Hits,
		Misses:       s.Misses,
		DeleteHits:   s.DeleteHits,
		DeleteMisses: s.DeleteMisses,
		Evictions:    s.Evictions,
		Keys:         len(s.index),
		Used:         s.backend.UsedBytes(),
		RSS:          s.backend.RSS(),
	}
}

// removeEntry frees the entry's storage and unlinks it.
func (s *Store) removeEntry(e *entry) {
	_ = s.backend.Free(e.ref, e.size)
	s.lru.Remove(e.el)
	delete(s.index, e.key)
}

// evictLRU removes the least-recently-used entry; returns false when
// nothing is left to evict.
func (s *Store) evictLRU() bool {
	back := s.lru.Back()
	if back == nil {
		return false
	}
	s.removeEntry(back.Value.(*entry))
	s.Evictions++
	return true
}

// Maintain advances the backend's background machinery to simulated time
// now, returning pause time incurred. Call between operations.
func (s *Store) Maintain(now time.Duration) time.Duration {
	s.session.Safepoint()
	return s.backend.Maintain(now)
}

// UsedBytes and RSS expose the backend metrics.
func (s *Store) UsedBytes() uint64 { return s.backend.UsedBytes() }

// RSS returns the backend's resident set size.
func (s *Store) RSS() uint64 { return s.backend.RSS() }

// iterateRefs is the application half of the activedefrag protocol: it
// walks every live entry and lets the allocator relocate it, rewriting the
// store's own reference. This function is the (mercifully small) Go
// equivalent of the invasive pointer bookkeeping Redis had to add.
func (s *Store) iterateRefs(visit func(ref Ref, size uint64, update func(Ref))) {
	for _, e := range s.index {
		e := e
		visit(e.ref, e.size, func(n Ref) { e.ref = n })
	}
}
