package kv

import (
	"fmt"
	"time"
)

// Store is the Redis-like single-threaded store: a key index over
// heap-allocated values, a maxmemory limit, and LRU eviction. Keys live in
// the Go-side index (modelling Redis's dict; the paper notes "Redis'
// internal datastructures provide some overhead" — we track value storage,
// which is what the fragmentation experiments churn).
type Store struct {
	backend Backend
	session Session
	// MaxMemory caps the store's charged bytes — Σ per-entry cost
	// (value + key + EntryOverhead), memcached's `bytes` accounting —
	// with LRU eviction applied under pressure (0 = unlimited).
	MaxMemory uint64
	// Clock supplies the wall-clock time used for expiry decisions; nil
	// means time.Now. Swap in a fake for deterministic TTL tests.
	Clock func() time.Time

	index map[string]*entry
	lru   lruList // front = most recently used
	free  entryFreeList
	// used is the charged byte total over all live entries.
	used uint64

	// Evictions counts live entries removed under memory pressure;
	// Reclaimed counts dead (expired / flushed) entries the eviction walk
	// removed instead — freeing those is reclamation, not eviction.
	// EvictedUnfetched counts evictions of entries never fetched since
	// they were stored (memcached's evicted_unfetched).
	Evictions        int64
	Reclaimed        int64
	EvictedUnfetched int64
	// Sets and Gets count operations; Hits/Misses partition Gets and
	// DeleteHits/DeleteMisses partition Dels.
	Sets, Gets               int64
	Hits, Misses             int64
	DeleteHits, DeleteMisses int64
	// rmw holds the expiry and read-modify-write counters (Expired,
	// CasHits, …) that Apply and the expiry paths bump.
	rmw StatsSnapshot
	// ttlEntries counts live entries carrying a deadline, so Maintain —
	// which the figure/YCSB harnesses call once per simulated op — can
	// skip the sweep entirely for TTL-free workloads.
	ttlEntries int
	// flushAt is the flush_all epoch (zero = none): every entry stored
	// before it is dead once the clock reaches it. flushSwept records
	// whether SweepExpired has reclaimed that epoch's casualties yet.
	flushAt    time.Time
	flushSwept bool
}

type entry struct {
	key  string
	ref  Ref
	size uint64
	// expireAt is the absolute expiry deadline; the zero time means the
	// entry never expires.
	expireAt time.Time
	// storedAt is when the value was stored — the timestamp flush_all's
	// store-wide epoch compares against (touch moves expireAt only, so a
	// touched value cannot escape a flush).
	storedAt time.Time
	// prev/next link the entry into its LRU list (lru.go); next doubles
	// as the free-list chain once the entry is recycled.
	prev, next *entry
	// fetched records whether the value has been read since it was last
	// stored — evicting a never-fetched entry counts as evicted_unfetched.
	fetched bool
	// lastUsed is the unixnano of the entry's last store or LRU touch;
	// the sharded store publishes its tail's stamp for coldest-shard
	// eviction spill.
	lastUsed int64
}

// NewStore builds a store over the backend. For the Anchorage backend the
// primary session is used so that Maintain can initiate barriers while the
// store's thread is considered safe.
func NewStore(b Backend, maxMemory uint64) *Store {
	var s Session
	if ab, ok := b.(*AnchorageBackend); ok {
		s = ab.PrimarySession()
	} else {
		s = b.NewSession()
	}
	st := &Store{
		backend:   b,
		session:   s,
		MaxMemory: maxMemory,
		index:     make(map[string]*entry),
	}
	if ad, ok := b.(*ActiveDefragBackend); ok {
		ad.Iterator = st.iterateRefs
	}
	return st
}

// Backend returns the store's backend.
func (s *Store) Backend() Backend { return s.backend }

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.index) }

func (s *Store) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// deadAt reports whether e is dead at now: past its own deadline, or
// stored before a flush_all epoch the clock has reached.
func (s *Store) deadAt(e *entry, now time.Time) bool {
	if e.expiredAt(now) {
		return true
	}
	return !s.flushAt.IsZero() && !now.Before(s.flushAt) && e.storedAt.Before(s.flushAt)
}

// FlushAll marks every entry stored before at as expired once the clock
// reaches at — memcached's flush_all [delay]. Entries stored after the
// epoch (even while it is still pending) are untouched; entries stored
// before it die at the epoch, honored lazily on access plus one
// reclamation sweep.
func (s *Store) FlushAll(at time.Time) {
	s.flushAt = at
	s.flushSwept = false
}

// lookup returns key's entry after lazy expiry: an entry past its
// deadline (or behind a reached flush_all epoch) is reclaimed on the
// spot and reported absent.
func (s *Store) lookup(key string) (*entry, bool) {
	e, ok := s.index[key]
	if !ok {
		return nil, false
	}
	if s.deadAt(e, s.now()) {
		s.removeEntry(e)
		s.rmw.Expired++
		return nil, false
	}
	return e, true
}

// Set inserts or replaces key with value, evicting LRU entries as needed
// to respect MaxMemory.
func (s *Store) Set(key string, value []byte) error {
	return s.SetEx(key, value, time.Time{})
}

// SetEx is Set with an absolute expiry deadline (zero = never expires).
func (s *Store) SetEx(key string, value []byte, expireAt time.Time) error {
	s.Sets++
	return s.insert(key, value, expireAt)
}

// insert is the uncounted store path shared by SetEx and Apply (RMW
// write-backs are not `set` commands, so they skip the Sets counter).
func (s *Store) insert(key string, value []byte, expireAt time.Time) error {
	newCost := entryCost(len(key), len(value))
	if s.MaxMemory > 0 {
		// An item costing more than the entire budget can never fit:
		// reject it up front with the LRU untouched, rather than evicting
		// the whole store and then storing it over the cap anyway.
		if newCost > s.MaxMemory {
			return fmt.Errorf("kv: set %q: %w", key, ErrTooLarge)
		}
		// Evict until the new value fits (Redis's freeMemoryIfNeeded). The
		// replaced entry's bytes are discounted — an in-place overwrite needs
		// no net room — but its actual removal is deferred until the new
		// value is durably written, so a failed store (in particular a failed
		// Apply write-back) leaves the previous value intact. The old entry
		// is re-looked-up each round because the LRU walk may evict it.
		for {
			used := s.used
			if old, ok := s.index[key]; ok {
				used -= old.cost()
			}
			if used+newCost <= s.MaxMemory {
				break
			}
			if !s.evictOne() {
				break
			}
		}
	}
	ref, err := s.backend.Alloc(uint64(len(value)))
	if err != nil {
		return fmt.Errorf("kv: set %q: %w", key, err)
	}
	if err := s.session.Write(ref, 0, value); err != nil {
		_ = s.backend.Free(ref, uint64(len(value)))
		return err
	}
	if old, ok := s.index[key]; ok {
		s.removeEntry(old)
	}
	e := s.free.get()
	if e == nil {
		e = &entry{}
	}
	now := s.now()
	e.key, e.ref, e.size = key, ref, uint64(len(value))
	e.expireAt, e.storedAt = expireAt, now
	e.lastUsed = now.UnixNano()
	s.lru.pushFront(e)
	s.index[key] = e
	s.used += newCost
	if !expireAt.IsZero() {
		s.ttlEntries++
	}
	return nil
}

// Get returns a copy of key's value, or nil if absent or expired.
func (s *Store) Get(key string) ([]byte, error) {
	v, hit, err := s.GetInto(key, nil)
	if !hit {
		return nil, err
	}
	if v == nil {
		v = emptyValue // zero-length hit must stay distinguishable from a miss
	}
	return v, err
}

// GetInto reads key's value into the caller's scratch buffer, growing
// it only when the value doesn't fit — the allocation-free read path
// (see ShardedStore.GetInto). It returns the value (aliasing buf's
// storage), whether the key was present, and any read error.
func (s *Store) GetInto(key string, buf []byte) ([]byte, bool, error) {
	s.Gets++
	e, ok := s.lookup(key)
	if !ok {
		s.Misses++
		return buf, false, nil
	}
	s.Hits++
	buf = growBytes(buf, int(e.size))
	out := buf[:e.size]
	if err := s.session.Read(e.ref, 0, out); err != nil {
		return buf, false, err
	}
	e.fetched = true
	e.lastUsed = s.now().UnixNano()
	s.lru.moveToFront(e)
	return out, true, nil
}

// Del removes key, returning whether it existed (a dead entry is
// reclaimed but reported as a miss).
func (s *Store) Del(key string) (bool, error) {
	e, ok := s.lookup(key)
	if !ok {
		s.DeleteMisses++
		return false, nil
	}
	s.DeleteHits++
	s.removeEntry(e)
	return true, nil
}

// Apply runs a read-modify-write on key: fn sees a copy of the current
// value (old == nil, found == false when absent or expired) and decides
// the outcome. The single-threaded analogue of ShardedStore.Apply — no
// lock to hold, but the same decision surface so the protocol layer can
// target either store.
func (s *Store) Apply(key string, fn func(old []byte, found bool) ApplyOp) error {
	_, err := s.applyInto(key, true, nil, fn)
	return err
}

// ApplyInto is Apply with the old-value copy-out landing in the
// caller's scratch buffer instead of a fresh allocation; it returns the
// (possibly grown) scratch for reuse (see ShardedStore.ApplyInto).
func (s *Store) ApplyInto(key string, scratch []byte, fn func(old []byte, found bool) ApplyOp) ([]byte, error) {
	return s.applyInto(key, true, scratch, fn)
}

// apply is Apply with the value copy-out optional (Touch never looks at
// the bytes).
func (s *Store) apply(key string, needValue bool, fn func(old []byte, found bool) ApplyOp) error {
	_, err := s.applyInto(key, needValue, nil, fn)
	return err
}

func (s *Store) applyInto(key string, needValue bool, scratch []byte, fn func(old []byte, found bool) ApplyOp) ([]byte, error) {
	e, found := s.lookup(key)
	var old []byte
	if found && needValue {
		scratch = growBytes(scratch, int(e.size))
		old = scratch[:e.size]
		if err := s.session.Read(e.ref, 0, old); err != nil {
			return scratch, err
		}
		e.fetched = true // an RMW read counts as a fetch, like memcached's
	}
	op := fn(old, found)
	// Bump only once the verdict has taken effect (see ShardedStore).
	switch op.Verdict {
	case ApplyNone:
	case ApplyDelete:
		if found {
			s.removeEntry(e)
		}
	case ApplyTouch:
		if found {
			s.setDeadline(e, op.Expire)
			e.lastUsed = s.now().UnixNano()
			s.lru.moveToFront(e)
		}
	case ApplyStore:
		expire := op.Expire
		if op.KeepExpire && found {
			expire = e.expireAt
		}
		if err := s.insert(key, op.Value, expire); err != nil {
			return scratch, err
		}
	default:
		return scratch, fmt.Errorf("kv: apply %q: bad verdict %d", key, op.Verdict)
	}
	s.rmw.bump(op.Stat)
	return scratch, nil
}

// CompareAndSwap stores next only if the current value is byte-equal to
// expected, reporting whether the swap happened and whether the key was
// present at all.
func (s *Store) CompareAndSwap(key string, expected, next []byte) (swapped, found bool, err error) {
	err = s.Apply(key, casApply(expected, next, &swapped, &found))
	return swapped, found, err
}

// Touch replaces key's expiry deadline, reporting whether the key was
// present and alive.
func (s *Store) Touch(key string, expireAt time.Time) (found bool, err error) {
	err = s.apply(key, false, touchApply(expireAt, &found))
	return found, err
}

// SweepExpired scans up to budget entries and reclaims those past their
// deadline, returning the number reclaimed. A TTL-free store skips the
// scan (and the counter) outright. A reached flush_all epoch triggers
// one full scan — flushes are rare admin events, and afterwards the
// store drops back to the budget-bounded crawl.
func (s *Store) SweepExpired(budget int) int {
	now := s.now()
	if !s.flushSwept && !s.flushAt.IsZero() && !now.Before(s.flushAt) {
		reclaimed := 0
		for _, e := range s.index {
			if s.deadAt(e, now) {
				s.removeEntry(e)
				s.rmw.Expired++
				reclaimed++
			}
		}
		s.flushSwept = true
		s.rmw.ExpirySweeps++
		return reclaimed
	}
	if s.ttlEntries == 0 {
		return 0
	}
	reclaimed, scanned := 0, 0
	for _, e := range s.index {
		if scanned >= budget {
			break
		}
		scanned++
		if s.deadAt(e, now) {
			s.removeEntry(e)
			s.rmw.Expired++
			reclaimed++
		}
	}
	s.rmw.ExpirySweeps++
	return reclaimed
}

// Snapshot returns the store's counters and memory metrics.
func (s *Store) Snapshot() StatsSnapshot {
	out := s.rmw
	out.Sets = s.Sets
	out.Gets = s.Gets
	out.Hits = s.Hits
	out.Misses = s.Misses
	out.DeleteHits = s.DeleteHits
	out.DeleteMisses = s.DeleteMisses
	out.Evictions = s.Evictions
	out.Reclaimed = s.Reclaimed
	out.EvictedUnfetched = s.EvictedUnfetched
	out.Keys = len(s.index)
	out.Bytes = s.used
	out.LimitMaxbytes = s.MaxMemory
	out.Used = s.backend.UsedBytes()
	out.RSS = s.backend.RSS()
	return out
}

// ResetStats zeroes the operation counters — memcached's `stats reset`.
// Live-entry state (index, LRU, charged bytes) is untouched.
func (s *Store) ResetStats() {
	s.Sets, s.Gets = 0, 0
	s.Hits, s.Misses = 0, 0
	s.DeleteHits, s.DeleteMisses = 0, 0
	s.Evictions, s.Reclaimed, s.EvictedUnfetched = 0, 0, 0
	s.rmw = StatsSnapshot{}
}

// removeEntry frees the entry's storage, refunds its charged bytes, and
// unlinks it; the struct goes to the free list for reuse.
func (s *Store) removeEntry(e *entry) {
	s.used -= e.cost()
	_ = s.backend.Free(e.ref, e.size)
	s.lru.remove(e)
	delete(s.index, e.key)
	if !e.expireAt.IsZero() {
		s.ttlEntries--
	}
	s.free.put(e)
}

// setDeadline rewrites e's deadline, keeping the ttlEntries count exact.
func (s *Store) setDeadline(e *entry, expireAt time.Time) {
	if e.expireAt.IsZero() != expireAt.IsZero() {
		if expireAt.IsZero() {
			s.ttlEntries--
		} else {
			s.ttlEntries++
		}
	}
	e.expireAt = expireAt
}

// evictOne removes the least-recently-used entry; returns false when
// nothing is left to evict. Removing a dead entry (expired, or behind a
// reached flush_all epoch) is reclamation, not eviction — memory
// pressure merely found garbage first.
func (s *Store) evictOne() bool {
	victim := s.lru.back()
	if victim == nil {
		return false
	}
	if s.deadAt(victim, s.now()) {
		s.Reclaimed++
	} else {
		s.Evictions++
		if !victim.fetched {
			s.EvictedUnfetched++
		}
	}
	s.removeEntry(victim)
	return true
}

// Maintain advances the backend's background machinery to simulated time
// now and runs one expiry-sweep increment, returning pause time incurred.
// Call between operations.
func (s *Store) Maintain(now time.Duration) time.Duration {
	s.session.Safepoint()
	pause := s.backend.Maintain(now)
	s.SweepExpired(sweepBudgetPerShard)
	return pause
}

// UsedBytes and RSS expose the backend metrics.
func (s *Store) UsedBytes() uint64 { return s.backend.UsedBytes() }

// RSS returns the backend's resident set size.
func (s *Store) RSS() uint64 { return s.backend.RSS() }

// iterateRefs is the application half of the activedefrag protocol: it
// walks every live entry and lets the allocator relocate it, rewriting the
// store's own reference. This function is the (mercifully small) Go
// equivalent of the invasive pointer bookkeeping Redis had to add.
func (s *Store) iterateRefs(visit func(ref Ref, size uint64, update func(Ref))) {
	for _, e := range s.index {
		e := e
		visit(e.ref, e.size, func(n Ref) { e.ref = n })
	}
}
