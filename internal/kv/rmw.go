package kv

import (
	"bytes"
	"time"
)

// This file defines the read-modify-write primitive shared by Store and
// ShardedStore. Memcached's cas/incr/decr/append/prepend commands all
// read a value, compute, and write back — exactly the access pattern
// most exposed to a concurrent mover relocating the block in between.
// Apply closes that window by running the whole cycle as one critical
// section (the shard lock on ShardedStore), so the protocol layer gets
// linearizable RMW without knowing anything about locks or relocation.

// ApplyVerdict selects what Apply does after the callback has inspected
// the current value.
type ApplyVerdict int

const (
	// ApplyNone leaves the entry untouched (cas mismatch, incr on a
	// non-numeric value).
	ApplyNone ApplyVerdict = iota
	// ApplyStore replaces — or, when the key was absent, inserts — the
	// value.
	ApplyStore
	// ApplyTouch keeps the stored bytes and replaces only the expiry
	// deadline (memcached `touch`).
	ApplyTouch
	// ApplyDelete removes the entry.
	ApplyDelete
)

// RMWStat names a StatsSnapshot counter for Apply (and Touch) to bump
// while still holding the shard lock, so protocol-level hit/miss
// accounting can never disagree with the outcome that produced it.
type RMWStat int

const (
	// StatNone bumps nothing.
	StatNone RMWStat = iota
	// StatCasHit … StatCasMiss partition memcached `cas` outcomes.
	StatCasHit
	StatCasBadval
	StatCasMiss
	// StatIncrHit/StatIncrMiss and the decr pair partition incr/decr.
	StatIncrHit
	StatIncrMiss
	StatDecrHit
	StatDecrMiss
	// StatTouchHit/StatTouchMiss partition touch (and gat's touch half).
	StatTouchHit
	StatTouchMiss
)

// ApplyOp is the outcome an Apply callback returns.
type ApplyOp struct {
	Verdict ApplyVerdict
	// Value is stored under ApplyStore.
	Value []byte
	// Expire is the new deadline under ApplyStore and ApplyTouch; the
	// zero time means "never expires".
	Expire time.Time
	// KeepExpire retains the entry's current deadline under ApplyStore —
	// incr/decr/append/prepend mutate the value without touching its TTL.
	KeepExpire bool
	// Stat is the counter to bump, whatever the verdict.
	Stat RMWStat
}

// casApply builds the Apply callback both stores' CompareAndSwap share:
// swap in next only if the current value is byte-equal to expected,
// keeping the deadline and bumping the matching cas counter. The
// outcome flags are written through the pointers while the callback
// still holds whatever lock Apply holds.
func casApply(expected, next []byte, swapped, found *bool) func(old []byte, ok bool) ApplyOp {
	return func(old []byte, ok bool) ApplyOp {
		*found = ok
		if !ok {
			return ApplyOp{Stat: StatCasMiss}
		}
		if !bytes.Equal(old, expected) {
			return ApplyOp{Stat: StatCasBadval}
		}
		*swapped = true
		return ApplyOp{Verdict: ApplyStore, Value: next, KeepExpire: true, Stat: StatCasHit}
	}
}

// touchApply builds the Apply callback both stores' Touch share: update
// the deadline on a live entry, count the hit/miss either way.
func touchApply(expireAt time.Time, found *bool) func(old []byte, ok bool) ApplyOp {
	return func(_ []byte, ok bool) ApplyOp {
		*found = ok
		if !ok {
			return ApplyOp{Stat: StatTouchMiss}
		}
		return ApplyOp{Verdict: ApplyTouch, Expire: expireAt, Stat: StatTouchHit}
	}
}

// bump increments the counter named by stat.
func (st *StatsSnapshot) bump(stat RMWStat) {
	switch stat {
	case StatCasHit:
		st.CasHits++
	case StatCasBadval:
		st.CasBadval++
	case StatCasMiss:
		st.CasMisses++
	case StatIncrHit:
		st.IncrHits++
	case StatIncrMiss:
		st.IncrMisses++
	case StatDecrHit:
		st.DecrHits++
	case StatDecrMiss:
		st.DecrMisses++
	case StatTouchHit:
		st.TouchHits++
	case StatTouchMiss:
		st.TouchMisses++
	}
}

// expiredAt reports whether the entry's deadline has passed at now; a
// zero deadline never expires. Memcached semantics: an item is dead the
// moment now reaches the deadline.
func (e *entry) expiredAt(now time.Time) bool {
	return !e.expireAt.IsZero() && !now.Before(e.expireAt)
}

// sweepBudgetPerShard bounds how many entries one Maintain tick examines
// per shard looking for expired items. Go's randomized map iteration
// order makes repeated bounded scans a probabilistic crawler over the
// whole keyspace — the same shape as memcached's LRU crawler and Redis's
// activeExpireCycle — so memory held by dead items is reclaimed even if
// they are never touched again.
const sweepBudgetPerShard = 64
