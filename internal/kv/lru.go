package kv

import "errors"

// This file holds the memory-ceiling bookkeeping shared by Store and
// ShardedStore: the charged cost of an entry (memcached's `bytes`
// accounting — value + key + per-item overhead, not allocator-level
// bytes), the intrusive LRU list both stores link entries into, and the
// free list evicted entry structs are recycled through so eviction churn
// under a fixed `-m` ceiling stays allocation-free on the set path.

// EntryOverhead is the per-entry bookkeeping charge added to key+value
// bytes when an item is costed against the memory ceiling — the moral
// equivalent of memcached's item-header overhead. It keeps `bytes`
// honest about index/LRU footprint, so a million tiny values cannot
// blow past `-m` on bookkeeping alone.
const EntryOverhead = 64

// ErrTooLarge reports a value whose charged cost exceeds the store's
// entire memory ceiling: no amount of eviction could make it fit, so it
// is rejected up front with the LRU untouched (memcached's "SERVER_ERROR
// object too large for cache").
var ErrTooLarge = errors.New("object too large for cache")

// ErrNoRoom reports that the budget could not be reserved even after
// exhausting every evictable entry — transiently possible when
// concurrent inserts hold reservations on every spare byte.
var ErrNoRoom = errors.New("out of memory storing object")

// entryCost is the charged cost of an item against the memory ceiling.
func entryCost(keyLen, valLen int) uint64 {
	return uint64(keyLen) + uint64(valLen) + EntryOverhead
}

// cost is the entry's charged cost (see entryCost).
func (e *entry) cost() uint64 { return entryCost(len(e.key), int(e.size)) }

// lruList is an intrusive doubly-linked LRU over entry structs
// (front = most recently used). Intrusive rather than container/list so
// that linking, unlinking, and moving never allocate a node — an entry
// recycled off the free list re-enters the LRU with zero allocations.
type lruList struct {
	head, tail *entry
}

// pushFront links e at the MRU end. e must be unlinked.
func (l *lruList) pushFront(e *entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	} else {
		l.tail = e
	}
	l.head = e
}

// remove unlinks e. e must be linked.
func (l *lruList) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront makes e the MRU entry.
func (l *lruList) moveToFront(e *entry) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

// back returns the LRU entry (eviction victim), nil when empty.
func (l *lruList) back() *entry { return l.tail }

// freeListMax bounds how many evicted entry structs a free list retains
// for reuse; beyond it, evicted entries are left to the garbage
// collector so an emptied store does not pin its high-water bookkeeping.
const freeListMax = 256

// entryFreeList recycles evicted/removed entry structs so that
// eviction-pressure sets (evict one, insert one, forever) reuse structs
// instead of allocating. The next pointer chains free entries.
type entryFreeList struct {
	head *entry
	n    int
}

// put offers e for reuse. The entry is scrubbed so the free list pins
// neither the key string nor a stale ref.
func (f *entryFreeList) put(e *entry) {
	if f.n >= freeListMax {
		return
	}
	*e = entry{next: f.head}
	f.head = e
	f.n++
}

// get returns a zeroed entry, or nil when the list is empty.
func (f *entryFreeList) get() *entry {
	e := f.head
	if e == nil {
		return nil
	}
	f.head = e.next
	e.next = nil
	f.n--
	return e
}
