package kv

// Memory-ceiling battery: real memcached `-m` semantics over both
// stores. The ceiling is a budget of charged bytes (value + key +
// EntryOverhead) — global across shards for ShardedStore — enforced by
// LRU eviction with spill to the coldest shards, never exceeded even
// transiently, with oversized values rejected up front and dead
// victims classified as reclaims rather than evictions.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/rt"
)

// flakyBackend wraps a backend so tests can make session writes fail on
// demand — the only way to exercise the failed-store path, which must
// leave the old value intact and refund its budget reservation.
type flakyBackend struct {
	Backend
	failWrites atomic.Bool
}

func (f *flakyBackend) NewSession() Session {
	return &flakySession{Session: f.Backend.NewSession(), b: f}
}

type flakySession struct {
	Session
	b *flakyBackend
}

func (s *flakySession) Write(ref Ref, off uint64, b []byte) error {
	if s.b.failWrites.Load() {
		return errors.New("injected write failure")
	}
	return s.Session.Write(ref, off, b)
}

// TestOversizedValueRejected: a value whose charged cost exceeds the
// whole ceiling must be refused up front — previously both stores
// evicted the entire LRU and then stored it over the cap anyway.
func TestOversizedValueRejected(t *testing.T) {
	const keyLen = 2 // "kN"
	cap4 := 4 * entryCost(keyLen, 100)
	small := make([]byte, 100)
	huge := make([]byte, int(cap4)) // cost > cap even before key+overhead

	t.Run("store", func(t *testing.T) {
		s := NewStore(NewMallocBackend(), cap4)
		for i := 0; i < 4; i++ {
			if err := s.Set(fmt.Sprintf("k%d", i), small); err != nil {
				t.Fatal(err)
			}
		}
		err := s.Set("kX", huge)
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("oversized set: err = %v, want ErrTooLarge", err)
		}
		if s.Evictions != 0 || s.Reclaimed != 0 {
			t.Errorf("oversized set evicted: evictions=%d reclaimed=%d, want 0", s.Evictions, s.Reclaimed)
		}
		for i := 0; i < 4; i++ {
			if v, _ := s.Get(fmt.Sprintf("k%d", i)); v == nil {
				t.Errorf("k%d lost to an oversized set", i)
			}
		}
		if snap := s.Snapshot(); snap.Bytes != cap4 {
			t.Errorf("Bytes = %d, want %d (unchanged full store)", snap.Bytes, cap4)
		}
	})

	t.Run("sharded", func(t *testing.T) {
		s := NewShardedStore(NewMallocBackend(), 4, cap4)
		sess := s.NewSession()
		defer sess.Close()
		for i := 0; i < 4; i++ {
			if err := s.Set(sess, fmt.Sprintf("k%d", i), small); err != nil {
				t.Fatal(err)
			}
		}
		err := s.Set(sess, "kX", huge)
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("oversized set: err = %v, want ErrTooLarge", err)
		}
		snap := s.Snapshot()
		if snap.Evictions != 0 || snap.Reclaimed != 0 {
			t.Errorf("oversized set evicted: evictions=%d reclaimed=%d, want 0", snap.Evictions, snap.Reclaimed)
		}
		if snap.Bytes != cap4 {
			t.Errorf("Bytes = %d, want %d (unchanged full store)", snap.Bytes, cap4)
		}
		for i := 0; i < 4; i++ {
			if v, _ := s.Get(sess, fmt.Sprintf("k%d", i)); v == nil {
				t.Errorf("k%d lost to an oversized set", i)
			}
		}
	})
}

// TestCeilingSmallerThanShardCount: regression for the alaskad
// `maxMem/shards` truncation — a cap below the shard count used to
// become 0 = unlimited per shard. Under global semantics any positive
// cap limits, no matter how many shards.
func TestCeilingSmallerThanShardCount(t *testing.T) {
	ceiling := entryCost(3, 8) // room for exactly one tiny entry
	s := NewShardedStore(NewMallocBackend(), 32, ceiling)
	sess := s.NewSession()
	defer sess.Close()
	val := make([]byte, 8)
	for i := 0; i < 10; i++ {
		if err := s.Set(sess, fmt.Sprintf("k%02d", i), val); err != nil {
			t.Fatal(err)
		}
		if snap := s.Snapshot(); snap.Bytes > snap.LimitMaxbytes {
			t.Fatalf("bytes %d exceeds limit_maxbytes %d", snap.Bytes, snap.LimitMaxbytes)
		}
	}
	if got := s.Len(); got != 1 {
		t.Errorf("Len = %d, want 1 (every insert must evict the previous entry)", got)
	}
	if snap := s.Snapshot(); snap.Evictions != 9 {
		t.Errorf("evictions = %d, want 9", snap.Evictions)
	}
}

// shardKeys buckets generated keys by the shard they hash to, so tests
// can aim inserts at specific shards.
func shardKeys(s *ShardedStore, prefix string, want, perShard int) map[int][]string {
	out := make(map[int][]string)
	for i := 0; len(out) < want || shortest(out, want) < perShard; i++ {
		key := fmt.Sprintf("%s%04d", prefix, i)
		sh := s.shardForB([]byte(key))
		for idx, cand := range s.shards {
			if cand == sh {
				if len(out[idx]) < perShard {
					out[idx] = append(out[idx], key)
				}
				break
			}
		}
	}
	return out
}

func shortest(m map[int][]string, want int) int {
	n := -1
	for _, ks := range m {
		if n == -1 || len(ks) < n {
			n = len(ks)
		}
	}
	if len(m) < want {
		return 0
	}
	return n
}

// TestEvictionSpillsToOtherShards: when the inserting shard's own LRU
// runs dry, pressure must spill to other shards instead of blowing the
// global budget — the hot-shard-starves-while-cold-shards-idle bug.
func TestEvictionSpillsToOtherShards(t *testing.T) {
	const valLen = 64
	s := NewShardedStore(NewMallocBackend(), 4, 0) // cap set below, after costing keys
	keys := shardKeys(s, "spill", 4, 8)
	keyLen := len(keys[0][0])
	ceiling := 8 * entryCost(keyLen, valLen)
	s.maxMemory = ceiling

	sess := s.NewSession()
	defer sess.Close()
	val := make([]byte, valLen)
	// Fill the budget entirely with shard 0's keys.
	for _, k := range keys[0] {
		if err := s.Set(sess, k, val); err != nil {
			t.Fatal(err)
		}
	}
	if snap := s.Snapshot(); snap.Bytes != ceiling {
		t.Fatalf("Bytes = %d, want full ceiling %d", snap.Bytes, ceiling)
	}
	// Now insert through each of the other shards: local pressure comes
	// first, so each insert goes through a shard whose own LRU is empty
	// — the only way to make room is evicting shard 0's coldest entries.
	for _, k := range []string{keys[1][0], keys[2][0], keys[3][0]} {
		if err := s.Set(sess, k, val); err != nil {
			t.Fatal(err)
		}
		if snap := s.Snapshot(); snap.Bytes > ceiling {
			t.Fatalf("bytes %d exceeds ceiling %d after spill insert", snap.Bytes, ceiling)
		}
	}
	snap := s.Snapshot()
	if snap.Evictions != 3 {
		t.Errorf("evictions = %d, want 3 spills", snap.Evictions)
	}
	// Spill must take shard 0's LRU order: its three oldest keys die.
	for i, k := range keys[0] {
		v, err := s.Get(sess, k)
		if err != nil {
			t.Fatal(err)
		}
		if i < 3 && v != nil {
			t.Errorf("%s survived; spill should evict shard 0's coldest first", k)
		}
		if i >= 3 && v == nil {
			t.Errorf("%s evicted; spill took more than needed", k)
		}
	}
}

// TestEvictionClassifiesDeadAsReclaimed: the eviction walk removing an
// expired (or flushed) entry is reclamation — it must not count as an
// eviction of live data.
func TestEvictionClassifiesDeadAsReclaimed(t *testing.T) {
	base := time.Unix(1700000000, 0)
	now := base
	clock := func() time.Time { return now }
	const keyLen = 2
	cap2 := 2 * entryCost(keyLen, 64)
	val := make([]byte, 64)

	t.Run("store", func(t *testing.T) {
		now = base
		s := NewStore(NewMallocBackend(), cap2)
		s.Clock = clock
		for i := 0; i < 2; i++ {
			if err := s.SetEx(fmt.Sprintf("d%d", i), val, now.Add(time.Second)); err != nil {
				t.Fatal(err)
			}
		}
		now = now.Add(2 * time.Second) // both entries are now dead
		for i := 0; i < 2; i++ {
			if err := s.Set(fmt.Sprintf("n%d", i), val); err != nil {
				t.Fatal(err)
			}
		}
		if s.Reclaimed != 2 || s.Evictions != 0 {
			t.Errorf("reclaimed=%d evictions=%d, want 2/0: dead victims are reclaims", s.Reclaimed, s.Evictions)
		}
	})

	t.Run("sharded", func(t *testing.T) {
		now = base
		s := NewShardedStore(NewMallocBackend(), 1, cap2)
		s.Clock = clock
		sess := s.NewSession()
		defer sess.Close()
		for i := 0; i < 2; i++ {
			if _, err := s.SetEx(sess, fmt.Sprintf("d%d", i), val, SetAlways, now.Add(time.Second)); err != nil {
				t.Fatal(err)
			}
		}
		now = now.Add(2 * time.Second)
		for i := 0; i < 2; i++ {
			if err := s.Set(sess, fmt.Sprintf("n%d", i), val); err != nil {
				t.Fatal(err)
			}
		}
		snap := s.Snapshot()
		if snap.Reclaimed != 2 || snap.Evictions != 0 {
			t.Errorf("reclaimed=%d evictions=%d, want 2/0: dead victims are reclaims", snap.Reclaimed, snap.Evictions)
		}
	})
}

// TestEvictedUnfetchedCounter: evicting an entry that was never read
// since it was stored bumps evicted_unfetched; a fetched victim doesn't.
func TestEvictedUnfetchedCounter(t *testing.T) {
	const keyLen = 2
	cap2 := 2 * entryCost(keyLen, 64)
	val := make([]byte, 64)
	s := NewShardedStore(NewMallocBackend(), 1, cap2)
	sess := s.NewSession()
	defer sess.Close()
	for _, k := range []string{"ka", "kb"} {
		if err := s.Set(sess, k, val); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get(sess, "ka"); err != nil { // ka fetched; kb now the LRU tail
		t.Fatal(err)
	}
	if err := s.Set(sess, "kc", val); err != nil { // evicts kb (never fetched)
		t.Fatal(err)
	}
	if err := s.Set(sess, "kd", val); err != nil { // evicts ka (fetched)
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", snap.Evictions)
	}
	if snap.EvictedUnfetched != 1 {
		t.Errorf("evicted_unfetched = %d, want 1 (only kb was never read)", snap.EvictedUnfetched)
	}
}

// TestOverwriteDiscountsReplacedBytes: re-setting a live key needs no
// net room — the replaced entry's cost is credited, so a full store
// survives same-size overwrites with zero evictions.
func TestOverwriteDiscountsReplacedBytes(t *testing.T) {
	const keyLen = 2
	cap2 := 2 * entryCost(keyLen, 64)
	val := make([]byte, 64)
	s := NewShardedStore(NewMallocBackend(), 2, cap2)
	sess := s.NewSession()
	defer sess.Close()
	for _, k := range []string{"ka", "kb"} {
		if err := s.Set(sess, k, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := s.Set(sess, "ka", val); err != nil {
			t.Fatal(err)
		}
		snap := s.Snapshot()
		if snap.Bytes != cap2 {
			t.Fatalf("Bytes = %d, want %d after overwrite %d", snap.Bytes, cap2, i)
		}
		if snap.Evictions != 0 || snap.Reclaimed != 0 {
			t.Fatalf("overwrite evicted: evictions=%d reclaimed=%d", snap.Evictions, snap.Reclaimed)
		}
	}
	if v, _ := s.Get(sess, "kb"); v == nil {
		t.Error("kb evicted by a same-size overwrite of ka")
	}
}

// TestFailedStoreLeavesOldValueAndBudget: a write failure mid-store must
// keep the previous value readable and refund the budget reservation —
// a leak here would strangle the ceiling one failed set at a time.
func TestFailedStoreLeavesOldValueAndBudget(t *testing.T) {
	const keyLen = 2
	cap4 := 4 * entryCost(keyLen, 64)
	v1 := bytes.Repeat([]byte{0xAA}, 64)
	v2 := bytes.Repeat([]byte{0xBB}, 64)

	t.Run("store", func(t *testing.T) {
		fb := &flakyBackend{Backend: NewMallocBackend()}
		s := NewStore(fb, cap4)
		if err := s.Set("k0", v1); err != nil {
			t.Fatal(err)
		}
		before := s.Snapshot().Bytes
		fb.failWrites.Store(true)
		if err := s.Set("k0", v2); err == nil {
			t.Fatal("set succeeded despite injected write failure")
		}
		fb.failWrites.Store(false)
		got, err := s.Get("k0")
		if err != nil || !bytes.Equal(got, v1) {
			t.Errorf("k0 = %v, %v; want old value intact", got, err)
		}
		if after := s.Snapshot().Bytes; after != before {
			t.Errorf("Bytes %d -> %d across failed store; reservation leaked", before, after)
		}
	})

	t.Run("sharded", func(t *testing.T) {
		fb := &flakyBackend{Backend: NewMallocBackend()}
		s := NewShardedStore(fb, 2, cap4)
		sess := s.NewSession()
		defer sess.Close()
		if err := s.Set(sess, "k0", v1); err != nil {
			t.Fatal(err)
		}
		before := s.Snapshot().Bytes
		fb.failWrites.Store(true)
		if err := s.Set(sess, "k0", v2); err == nil {
			t.Fatal("set succeeded despite injected write failure")
		}
		// A brand-new key must also refund its (full-cost) reservation.
		if err := s.Set(sess, "k1", v2); err == nil {
			t.Fatal("set succeeded despite injected write failure")
		}
		fb.failWrites.Store(false)
		got, err := s.Get(sess, "k0")
		if err != nil || !bytes.Equal(got, v1) {
			t.Errorf("k0 = %v, %v; want old value intact", got, err)
		}
		if after := s.Snapshot().Bytes; after != before {
			t.Errorf("Bytes %d -> %d across failed stores; reservation leaked", before, after)
		}
		// The refunded budget must still be fully usable.
		for i := 0; i < 3; i++ {
			if err := s.Set(sess, fmt.Sprintf("f%d", i), v2); err != nil {
				t.Fatalf("post-failure set %d: %v", i, err)
			}
		}
		if snap := s.Snapshot(); snap.Evictions != 0 {
			t.Errorf("evictions = %d filling to the cap after refunds, want 0", snap.Evictions)
		}
	})
}

// TestLRUOrderAcrossTouches: get, touch, and RMW reads all refresh
// recency, so the eviction victim is always the least-recently-touched
// entry, not merely the least-recently-stored.
func TestLRUOrderAcrossTouches(t *testing.T) {
	const keyLen = 2
	cap3 := 3 * entryCost(keyLen, 64)
	val := make([]byte, 64)
	s := NewShardedStore(NewMallocBackend(), 1, cap3)
	sess := s.NewSession()
	defer sess.Close()
	for _, k := range []string{"ka", "kb", "kc"} {
		if err := s.Set(sess, k, val); err != nil {
			t.Fatal(err)
		}
	}
	// Recency now kc > kb > ka. Refresh ka (get) then kb (touch): the
	// victim must be kc.
	if _, err := s.Get(sess, "ka"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Touch(sess, "kb", time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(sess, "kd", val); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(sess, "kc"); v != nil {
		t.Error("kc survived; it was the least-recently-touched entry")
	}
	for _, k := range []string{"ka", "kb", "kd"} {
		if v, _ := s.Get(sess, k); v == nil {
			t.Errorf("%s evicted despite recent touch", k)
		}
	}
	// An RMW read (CompareAndSwap's lookup) refreshes too: ka is oldest
	// again after the loop above; CAS it, then kb must be the victim.
	if _, _, err := s.CompareAndSwap(sess, "ka", val, val); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(sess, "ke", val); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(sess, "kb"); v != nil {
		t.Error("kb survived; the CAS read should have refreshed ka past it")
	}
	if v, _ := s.Get(sess, "ka"); v == nil {
		t.Error("ka evicted despite the CAS read refreshing it")
	}
}

// TestChargedBytesReturnToZero: every charge path has a refund path —
// deleting everything must land the accounting exactly on zero.
func TestChargedBytesReturnToZero(t *testing.T) {
	s := NewShardedStore(NewMallocBackend(), 4, 1<<20)
	sess := s.NewSession()
	defer sess.Close()
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("z%03d", i)
		keys = append(keys, k)
		val := make([]byte, 1+rng.Intn(700))
		if err := s.Set(sess, k, val); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys[:32] { // overwrite half with different sizes
		val := make([]byte, 1+rng.Intn(700))
		if err := s.Set(sess, k, val); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if _, err := s.Del(sess, k); err != nil {
			t.Fatal(err)
		}
	}
	if snap := s.Snapshot(); snap.Bytes != 0 {
		t.Errorf("Bytes = %d after deleting every key, want 0", snap.Bytes)
	}
}

// TestEvictionPressureDefragRace hammers eviction-pressure sets — every
// insert over the ceiling evicts, spilling across shards — against the
// §7 pause-free ConcurrentDefragPass relocating blocks underneath. Run
// under `go test -race ./internal/kv`.
func TestEvictionPressureDefragRace(t *testing.T) {
	acfg := anchorage.DefaultConfig()
	acfg.SubHeapSize = 128 * 1024
	backend, err := NewAnchorageBackend(acfg, rt.WithPinMode(rt.CountedPins))
	if err != nil {
		t.Fatal(err)
	}
	const ceiling = 192 * 1024
	store := NewShardedStore(backend, 8, ceiling)

	ops := 2000
	if testing.Short() {
		ops = 500
	}
	stop := make(chan struct{})
	var defragWG sync.WaitGroup
	defragWG.Add(1)
	go func() {
		defer defragWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			backend.Svc.ConcurrentDefragPass(64 << 10)
			backend.Svc.DrainDeferred()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	workers := 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := store.NewSession()
			defer sess.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for op := 0; op < ops; op++ {
				sess.Safepoint()
				// Keyspace far larger than the ceiling holds, so most
				// sets evict; values are derived from the key so any
				// worker can verify any key's bytes.
				id := rng.Intn(2048)
				key := fmt.Sprintf("race-%04d", id)
				if rng.Intn(4) == 0 {
					got, err := store.Get(sess, key)
					if err != nil {
						t.Errorf("worker %d get %s: %v", w, key, err)
						return
					}
					if got != nil && (len(got) != 128+id%512 || got[0] != byte(id)) {
						t.Errorf("worker %d get %s: torn value (%d bytes, lead %#x)", w, key, len(got), got[0])
						return
					}
					continue
				}
				val := make([]byte, 128+id%512)
				for i := range val {
					val[i] = byte(id)
				}
				if err := store.Set(sess, key, val); err != nil {
					t.Errorf("worker %d set %s: %v", w, key, err)
					return
				}
				if snap := store.Snapshot(); snap.Bytes > ceiling {
					t.Errorf("bytes %d exceeds ceiling %d mid-churn", snap.Bytes, ceiling)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	defragWG.Wait()

	snap := store.Snapshot()
	if snap.Evictions == 0 {
		t.Error("no evictions; the churn raced nothing")
	}
	if snap.Bytes > ceiling {
		t.Errorf("final bytes %d exceeds ceiling %d", snap.Bytes, ceiling)
	}
	t.Logf("defrag-vs-eviction churn: %d evictions, %d reclaimed, bytes %d/%d, %d keys",
		snap.Evictions, snap.Reclaimed, snap.Bytes, ceiling, snap.Keys)
}
