package kv

// Race-detector stress test for the memcached-like sharded store over the
// full Alaska stack: worker goroutines set/get concurrently — each through
// its own runtime thread with pin sets and safepoint polls — while the
// Anchorage controller stops the world and compacts underneath them. Every
// translation in every session races relocation through the sharded
// lock-free handle table. Run under `go test -race ./internal/kv`.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"alaska/internal/anchorage"
)

func TestShardedStoreConcurrentDefragRace(t *testing.T) {
	cfg := anchorage.DefaultConfig()
	cfg.SubHeapSize = 256 * 1024
	cfg.FragHigh = 1.1 // defragment eagerly so barriers actually fire
	cfg.FragLow = 1.05
	cfg.WakeInterval = time.Millisecond
	backend, err := NewAnchorageBackend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := NewShardedStore(backend, 8, 0)

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	ops := 3000
	if testing.Short() {
		ops = 600
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Maintenance goroutine: drives the §4.3 controller with a synthetic
	// clock so it defragments (with stop-the-world barriers) throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		now := time.Duration(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			backend.Maintain(now)
			now += 2 * time.Millisecond
			// Yield between barriers so workers make progress; thousands of
			// back-to-back stop-the-worlds test nothing extra.
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var mwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		mwg.Add(1)
		go func(w int) {
			defer mwg.Done()
			sess := store.NewSession()
			defer sess.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			// Each worker owns a private key range, so a Get must return
			// exactly what this worker last Set (no cross-worker dels).
			want := make(map[string]byte)
			for op := 0; op < ops; op++ {
				sess.Safepoint()
				key := fmt.Sprintf("w%d-k%03d", w, rng.Intn(64))
				if v, ok := want[key]; ok && rng.Intn(2) == 0 {
					got, err := store.Get(sess, key)
					if err != nil {
						t.Error(err)
						return
					}
					if len(got) == 0 || got[0] != v {
						t.Errorf("worker %d: %s = %v, want leading byte %#x", w, key, got, v)
						return
					}
					continue
				}
				val := make([]byte, 32+rng.Intn(480))
				tag := byte(op)
				for i := range val {
					val[i] = tag
				}
				if err := store.Set(sess, key, val); err != nil {
					t.Error(err)
					return
				}
				want[key] = tag
			}
		}(w)
	}
	mwg.Wait()
	close(stop)
	wg.Wait()

	if store.Len() == 0 {
		t.Error("store empty after stress")
	}
	if backend.Svc.Passes == 0 {
		t.Error("controller never ran a defrag pass; the test raced nothing")
	}
	t.Logf("%d workers × %d ops over %d keys: %d defrag passes, %d bytes moved, frag %.3f",
		workers, ops, store.Len(), backend.Svc.Passes, backend.Svc.MovedBytes, backend.Svc.Fragmentation())
}
