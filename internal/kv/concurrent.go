package kv

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"
)

// ShardedStore is the memcached-like concurrent store used by the
// Figure 12 experiment: a fixed set of mutex-protected shards, accessed by
// worker goroutines that each hold their own Session (and, under Alaska,
// their own runtime thread with pin sets and safepoints).
type ShardedStore struct {
	backend Backend
	shards  []*shard
	// MaxMemoryPerShard caps each shard's byte usage (0 = unlimited).
	MaxMemoryPerShard uint64
}

type shard struct {
	mu    sync.Mutex
	index map[string]*entry
	lru   *list.List
	used  uint64
}

// NewShardedStore builds a store with n shards.
func NewShardedStore(b Backend, n int, maxPerShard uint64) *ShardedStore {
	st := &ShardedStore{backend: b, MaxMemoryPerShard: maxPerShard}
	for i := 0; i < n; i++ {
		st.shards = append(st.shards, &shard{index: make(map[string]*entry), lru: list.New()})
	}
	return st
}

// Backend returns the underlying backend.
func (s *ShardedStore) Backend() Backend { return s.backend }

// NewSession opens a worker session.
func (s *ShardedStore) NewSession() Session { return s.backend.NewSession() }

func (s *ShardedStore) shardFor(key string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Set stores key=value through the worker's session.
func (s *ShardedStore) Set(sess Session, key string, value []byte) error {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.index[key]; ok {
		sh.used -= old.size
		_ = s.backend.Free(old.ref, old.size)
		sh.lru.Remove(old.el)
		delete(sh.index, key)
	}
	if s.MaxMemoryPerShard > 0 {
		for sh.used+uint64(len(value)) > s.MaxMemoryPerShard {
			back := sh.lru.Back()
			if back == nil {
				break
			}
			e := back.Value.(*entry)
			sh.used -= e.size
			_ = s.backend.Free(e.ref, e.size)
			sh.lru.Remove(e.el)
			delete(sh.index, e.key)
		}
	}
	ref, err := s.backend.Alloc(uint64(len(value)))
	if err != nil {
		return fmt.Errorf("kv: sharded set %q: %w", key, err)
	}
	if err := sess.Write(ref, 0, value); err != nil {
		return err
	}
	e := &entry{key: key, ref: ref, size: uint64(len(value))}
	e.el = sh.lru.PushFront(e)
	sh.index[key] = e
	sh.used += e.size
	return nil
}

// Get reads key through the worker's session; nil if absent.
func (s *ShardedStore) Get(sess Session, key string) ([]byte, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.index[key]
	if !ok {
		sh.mu.Unlock()
		return nil, nil
	}
	ref, size := e.ref, e.size
	sh.lru.MoveToFront(e.el)
	sh.mu.Unlock()
	// The read happens outside the shard lock; under Alaska the session
	// pins the handle for the copy, so a concurrent barrier cannot move
	// the object mid-read. (A concurrent Del could free it — memcached
	// item references solve this; our workloads never delete keys they
	// concurrently read.)
	buf := make([]byte, size)
	if err := sess.Read(ref, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Len returns the total number of keys.
func (s *ShardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}
