package kv

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"
)

// ShardedStore is the memcached-like concurrent store used by the
// Figure 12 experiment and the alaskad server: a fixed set of
// mutex-protected shards, accessed by worker goroutines that each hold
// their own Session (and, under Alaska, their own runtime thread with pin
// sets and safepoints).
type ShardedStore struct {
	backend Backend
	shards  []*shard
	// MaxMemoryPerShard caps each shard's byte usage (0 = unlimited).
	MaxMemoryPerShard uint64
}

type shard struct {
	mu    sync.Mutex
	index map[string]*entry
	lru   *list.List
	used  uint64
	stats StatsSnapshot // per-shard counters, aggregated by Snapshot
}

// SetMode selects the conditional-store semantics of SetWith, mirroring
// the memcached storage commands.
type SetMode int

const (
	// SetAlways stores unconditionally (memcached `set`).
	SetAlways SetMode = iota
	// SetAdd stores only if the key is absent (memcached `add`).
	SetAdd
	// SetReplace stores only if the key is present (memcached `replace`).
	SetReplace
)

// NewShardedStore builds a store with n shards.
func NewShardedStore(b Backend, n int, maxPerShard uint64) *ShardedStore {
	st := &ShardedStore{backend: b, MaxMemoryPerShard: maxPerShard}
	for i := 0; i < n; i++ {
		st.shards = append(st.shards, &shard{index: make(map[string]*entry), lru: list.New()})
	}
	return st
}

// Backend returns the underlying backend.
func (s *ShardedStore) Backend() Backend { return s.backend }

// NewSession opens a worker session.
func (s *ShardedStore) NewSession() Session { return s.backend.NewSession() }

func (s *ShardedStore) shardFor(key string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// removeLocked frees e's storage and unlinks it. Caller holds sh.mu.
func (s *ShardedStore) removeLocked(sh *shard, e *entry) {
	sh.used -= e.size
	_ = s.backend.Free(e.ref, e.size)
	sh.lru.Remove(e.el)
	delete(sh.index, e.key)
}

// Set stores key=value through the worker's session.
func (s *ShardedStore) Set(sess Session, key string, value []byte) error {
	_, err := s.SetWith(sess, key, value, SetAlways)
	return err
}

// SetWith stores key=value under the given conditional mode, reporting
// whether the value was stored. The existence check and the store are one
// critical section, so concurrent add/replace races resolve like
// memcached's: exactly one concurrent `add` of a key wins.
func (s *ShardedStore) SetWith(sess Session, key string, value []byte, mode SetMode) (bool, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.Sets++
	_, exists := sh.index[key]
	switch mode {
	case SetAdd:
		if exists {
			return false, nil
		}
	case SetReplace:
		if !exists {
			return false, nil
		}
	}
	// Make room counting the old value as gone-to-be: it is only actually
	// removed once the new value is durably written, so a failed store
	// leaves the previous value intact. (The LRU walk may evict the old
	// entry itself under a tight cap; the post-write removal re-checks.)
	if s.MaxMemoryPerShard > 0 {
		for sh.used+uint64(len(value)) > s.MaxMemoryPerShard {
			back := sh.lru.Back()
			if back == nil {
				break
			}
			s.removeLocked(sh, back.Value.(*entry))
			sh.stats.Evictions++
		}
	}
	ref, err := s.backend.Alloc(uint64(len(value)))
	if err != nil {
		return false, fmt.Errorf("kv: sharded set %q: %w", key, err)
	}
	if err := sess.Write(ref, 0, value); err != nil {
		_ = s.backend.Free(ref, uint64(len(value)))
		return false, err
	}
	if old, ok := sh.index[key]; ok {
		s.removeLocked(sh, old)
	}
	e := &entry{key: key, ref: ref, size: uint64(len(value))}
	e.el = sh.lru.PushFront(e)
	sh.index[key] = e
	sh.used += e.size
	return true, nil
}

// Get reads key through the worker's session; nil if absent.
//
// The copy-out happens under the shard lock: with `delete` (and same-key
// `set`, which frees the old value) now arriving from untrusted network
// clients, a reference held outside the lock could be freed — and its
// block recycled to another key — mid-read, silently returning another
// object's bytes. Holding the lock for the copy is the memcached
// item-reference discipline reduced to its simplest correct form; under
// Alaska the session additionally pins the handle so a concurrent
// relocation pass cannot move the object mid-copy.
func (s *ShardedStore) Get(sess Session, key string) ([]byte, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.Gets++
	e, ok := sh.index[key]
	if !ok {
		sh.stats.Misses++
		return nil, nil
	}
	sh.stats.Hits++
	sh.lru.MoveToFront(e.el)
	buf := make([]byte, e.size)
	if err := sess.Read(e.ref, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Del removes key through the worker's session, reporting whether it
// existed.
func (s *ShardedStore) Del(sess Session, key string) (bool, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.index[key]
	if !ok {
		sh.stats.DeleteMisses++
		return false, nil
	}
	sh.stats.DeleteHits++
	s.removeLocked(sh, e)
	return true, nil
}

// Len returns the total number of keys.
func (s *ShardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// Snapshot aggregates the per-shard counters with the backend's memory
// metrics. Counters are read under each shard's lock in turn, so the
// result is per-shard consistent (not a global atomic cut — the same
// guarantee memcached's `stats` gives).
func (s *ShardedStore) Snapshot() StatsSnapshot {
	var out StatsSnapshot
	for _, sh := range s.shards {
		sh.mu.Lock()
		out.Sets += sh.stats.Sets
		out.Gets += sh.stats.Gets
		out.Hits += sh.stats.Hits
		out.Misses += sh.stats.Misses
		out.DeleteHits += sh.stats.DeleteHits
		out.DeleteMisses += sh.stats.DeleteMisses
		out.Evictions += sh.stats.Evictions
		out.Keys += len(sh.index)
		sh.mu.Unlock()
	}
	out.Used = s.backend.UsedBytes()
	out.RSS = s.backend.RSS()
	return out
}
