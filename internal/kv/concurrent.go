package kv

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedStore is the memcached-like concurrent store used by the
// Figure 12 experiment and the alaskad server: a fixed set of
// mutex-protected shards, accessed by worker goroutines that each hold
// their own Session (and, under Alaska, their own runtime thread with pin
// sets and safepoints).
//
// The request path is allocation-free in steady state: keys arrive as
// []byte slices into network buffers (GetInto, SetExBytes, ApplyInto)
// and are interned to strings only when a brand-new entry is created;
// value copy-out lands in caller-owned scratch buffers; an overwrite of
// a live key reuses its entry and LRU node in place; and the per-shard
// counters are atomics, so Snapshot never takes a shard lock.
type ShardedStore struct {
	backend Backend
	shards  []*shard
	// MaxMemoryPerShard caps each shard's byte usage (0 = unlimited).
	MaxMemoryPerShard uint64
	// Clock supplies the wall-clock time used for expiry decisions; nil
	// means time.Now. Swap in a fake before serving traffic to make TTL
	// behavior deterministic in tests.
	Clock func() time.Time

	sweeps atomic.Int64 // expiry sweep rounds run
	// flushAt is the flush_all epoch in Clock unixnanos (0 = none):
	// every entry stored strictly before it is dead once the clock
	// reaches it. An atomic so FlushAll is O(1) and lock-free while the
	// per-entry check rides the existing lazy-expiry paths.
	flushAt atomic.Int64
}

// shardCounters are the per-shard operation counters, all atomics:
// writers bump them while already holding the shard lock for the data,
// but readers (Snapshot, the stats command under load) never have to
// take that lock — hot-path counting never waits on a stats poll.
type shardCounters struct {
	sets, gets               atomic.Int64
	hits, misses             atomic.Int64
	deleteHits, deleteMisses atomic.Int64
	evictions, expired       atomic.Int64
	casHits                  atomic.Int64
	casBadval, casMisses     atomic.Int64
	incrHits, incrMisses     atomic.Int64
	decrHits, decrMisses     atomic.Int64
	touchHits, touchMisses   atomic.Int64
	keys                     atomic.Int64
}

// bump increments the counter named by stat.
func (c *shardCounters) bump(stat RMWStat) {
	switch stat {
	case StatCasHit:
		c.casHits.Add(1)
	case StatCasBadval:
		c.casBadval.Add(1)
	case StatCasMiss:
		c.casMisses.Add(1)
	case StatIncrHit:
		c.incrHits.Add(1)
	case StatIncrMiss:
		c.incrMisses.Add(1)
	case StatDecrHit:
		c.decrHits.Add(1)
	case StatDecrMiss:
		c.decrMisses.Add(1)
	case StatTouchHit:
		c.touchHits.Add(1)
	case StatTouchMiss:
		c.touchMisses.Add(1)
	}
}

// addTo folds the counters into a snapshot.
func (c *shardCounters) addTo(out *StatsSnapshot) {
	out.Sets += c.sets.Load()
	out.Gets += c.gets.Load()
	out.Hits += c.hits.Load()
	out.Misses += c.misses.Load()
	out.DeleteHits += c.deleteHits.Load()
	out.DeleteMisses += c.deleteMisses.Load()
	out.Evictions += c.evictions.Load()
	out.Expired += c.expired.Load()
	out.CasHits += c.casHits.Load()
	out.CasBadval += c.casBadval.Load()
	out.CasMisses += c.casMisses.Load()
	out.IncrHits += c.incrHits.Load()
	out.IncrMisses += c.incrMisses.Load()
	out.DecrHits += c.decrHits.Load()
	out.DecrMisses += c.decrMisses.Load()
	out.TouchHits += c.touchHits.Load()
	out.TouchMisses += c.touchMisses.Load()
	out.Keys += int(c.keys.Load())
}

type shard struct {
	mu    sync.Mutex
	index map[string]*entry
	lru   *list.List
	used  uint64
	// ttl counts live entries carrying a deadline, so the sweep can skip
	// the shard outright for TTL-free workloads.
	ttl   int
	stats shardCounters
	// flushedFor is the flush_all epoch this shard has been fully swept
	// for, so each flush costs exactly one full scan per shard.
	flushedFor int64
}

// setDeadline rewrites e's deadline, keeping the shard's ttl-entry count
// exact. Caller holds sh.mu.
func (sh *shard) setDeadline(e *entry, expireAt time.Time) {
	if e.expireAt.IsZero() != expireAt.IsZero() {
		if expireAt.IsZero() {
			sh.ttl--
		} else {
			sh.ttl++
		}
	}
	e.expireAt = expireAt
}

// SetMode selects the conditional-store semantics of SetWith, mirroring
// the memcached storage commands.
type SetMode int

const (
	// SetAlways stores unconditionally (memcached `set`).
	SetAlways SetMode = iota
	// SetAdd stores only if the key is absent (memcached `add`).
	SetAdd
	// SetReplace stores only if the key is present (memcached `replace`).
	SetReplace
)

// NewShardedStore builds a store with n shards.
func NewShardedStore(b Backend, n int, maxPerShard uint64) *ShardedStore {
	st := &ShardedStore{backend: b, MaxMemoryPerShard: maxPerShard}
	for i := 0; i < n; i++ {
		st.shards = append(st.shards, &shard{index: make(map[string]*entry), lru: list.New()})
	}
	return st
}

// Backend returns the underlying backend.
func (s *ShardedStore) Backend() Backend { return s.backend }

// NewSession opens a worker session.
func (s *ShardedStore) NewSession() Session { return s.backend.NewSession() }

func (s *ShardedStore) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// FNV-1a, inlined: hashing a key must not construct a hash.Hash32 or
// convert the key to a fresh []byte — on the request path every get and
// set passes through here.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func (s *ShardedStore) shardFor(key string) *shard {
	return s.shardForB(unsafeKeyBytes(key))
}

func (s *ShardedStore) shardForB(key []byte) *shard {
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return s.shards[h%uint32(len(s.shards))]
}

// removeLocked frees e's storage and unlinks it. Caller holds sh.mu.
func (s *ShardedStore) removeLocked(sh *shard, e *entry) {
	sh.used -= e.size
	_ = s.backend.Free(e.ref, e.size)
	sh.lru.Remove(e.el)
	delete(sh.index, e.key)
	sh.stats.keys.Add(-1)
	if !e.expireAt.IsZero() {
		sh.ttl--
	}
}

// deadAt reports whether e is dead at now: past its own deadline, or
// stored before a flush_all epoch the clock has reached.
func (s *ShardedStore) deadAt(e *entry, now time.Time) bool {
	if e.expiredAt(now) {
		return true
	}
	fa := s.flushAt.Load()
	return fa != 0 && now.UnixNano() >= fa && e.storedAt.UnixNano() < fa
}

// FlushAll marks every entry stored before at as expired once the clock
// reaches at — memcached's flush_all [delay]: a store-wide epoch honored
// by the same lazy-expiry paths as per-entry TTLs, plus one full
// reclamation sweep per shard by Maintain after the epoch passes.
// Entries stored after the epoch (even while it is still pending) are
// untouched. O(1) no matter how many items are live.
func (s *ShardedStore) FlushAll(at time.Time) { s.flushAt.Store(at.UnixNano()) }

// liveLocked applies lazy expiry to a looked-up entry: a dead one is
// reclaimed on the spot (counted in Expired) and reported absent —
// memcached's expire-on-access. Caller holds sh.mu.
func (s *ShardedStore) liveLocked(sh *shard, e *entry, ok bool, now time.Time) (*entry, bool) {
	if !ok {
		return nil, false
	}
	if s.deadAt(e, now) {
		s.removeLocked(sh, e)
		sh.stats.expired.Add(1)
		return nil, false
	}
	return e, true
}

// lookupLocked returns key's entry after lazy expiry. Caller holds sh.mu.
func (s *ShardedStore) lookupLocked(sh *shard, key string, now time.Time) (*entry, bool) {
	e, ok := sh.index[key]
	return s.liveLocked(sh, e, ok, now)
}

// lookupLockedB is lookupLocked for a byte-slice key; the map access
// compiles to a no-copy lookup. Caller holds sh.mu.
func (s *ShardedStore) lookupLockedB(sh *shard, key []byte, now time.Time) (*entry, bool) {
	e, ok := sh.index[string(key)]
	return s.liveLocked(sh, e, ok, now)
}

// insertLocked allocates, writes, and links key's new value. Room is
// made first: LRU entries are evicted until the new value fits, with the
// replaced entry's bytes discounted (an in-place overwrite needs no net
// room) but its removal deferred until the new value is durably written,
// so a failed store leaves the previous value intact. The old entry is
// re-looked-up each round (and again after the write) because the
// eviction walk may evict it.
//
// An overwrite of a surviving entry is performed in place — the entry
// struct, its LRU node, and its interned key string are all reused — so
// the steady-state set path allocates nothing; only a brand-new key
// interns a string and links fresh nodes. Caller holds sh.mu.
func (s *ShardedStore) insertLocked(sh *shard, sess Session, key []byte, value []byte, expireAt time.Time) error {
	if s.MaxMemoryPerShard > 0 {
		for {
			used := sh.used
			if old, ok := sh.index[string(key)]; ok {
				used -= old.size
			}
			if used+uint64(len(value)) <= s.MaxMemoryPerShard {
				break
			}
			back := sh.lru.Back()
			if back == nil {
				break
			}
			s.removeLocked(sh, back.Value.(*entry))
			sh.stats.evictions.Add(1)
		}
	}
	ref, err := s.backend.Alloc(uint64(len(value)))
	if err != nil {
		return fmt.Errorf("kv: sharded store %q: %w", string(key), err)
	}
	if err := sess.Write(ref, 0, value); err != nil {
		_ = s.backend.Free(ref, uint64(len(value)))
		return err
	}
	if old, ok := sh.index[string(key)]; ok {
		// In-place overwrite: free the replaced bytes, rewrite the entry.
		sh.used -= old.size
		_ = s.backend.Free(old.ref, old.size)
		old.ref = ref
		old.size = uint64(len(value))
		old.storedAt = s.now()
		sh.setDeadline(old, expireAt)
		sh.lru.MoveToFront(old.el)
		sh.used += old.size
		return nil
	}
	e := &entry{key: string(key), ref: ref, size: uint64(len(value)), expireAt: expireAt, storedAt: s.now()}
	e.el = sh.lru.PushFront(e)
	sh.index[e.key] = e
	sh.stats.keys.Add(1)
	sh.used += e.size
	if !expireAt.IsZero() {
		sh.ttl++
	}
	return nil
}

// Set stores key=value through the worker's session.
func (s *ShardedStore) Set(sess Session, key string, value []byte) error {
	_, err := s.SetWith(sess, key, value, SetAlways)
	return err
}

// SetWith stores key=value with no expiry deadline under the given
// conditional mode.
func (s *ShardedStore) SetWith(sess Session, key string, value []byte, mode SetMode) (bool, error) {
	return s.SetEx(sess, key, value, mode, time.Time{})
}

// SetEx stores key=value under the given conditional mode with an
// absolute expiry deadline (zero = never expires), reporting whether the
// value was stored. The existence check and the store are one critical
// section, so concurrent add/replace races resolve like memcached's:
// exactly one concurrent `add` of a key wins. An entry past its deadline
// counts as absent — `add` succeeds over a dead value, `replace` does
// not revive one.
func (s *ShardedStore) SetEx(sess Session, key string, value []byte, mode SetMode, expireAt time.Time) (bool, error) {
	return s.setEx(sess, s.shardFor(key), unsafeKeyBytes(key), value, mode, expireAt)
}

// SetExBytes is SetEx for a key arriving as bytes out of a network
// buffer: the key is interned to a string only if a brand-new entry is
// created. The caller may reuse both key and value the moment the call
// returns (the store copies the value into its heap under the lock).
func (s *ShardedStore) SetExBytes(sess Session, key, value []byte, mode SetMode, expireAt time.Time) (bool, error) {
	return s.setEx(sess, s.shardForB(key), key, value, mode, expireAt)
}

func (s *ShardedStore) setEx(sess Session, sh *shard, key, value []byte, mode SetMode, expireAt time.Time) (bool, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.sets.Add(1)
	_, exists := s.lookupLockedB(sh, key, s.now())
	switch mode {
	case SetAdd:
		if exists {
			return false, nil
		}
	case SetReplace:
		if !exists {
			return false, nil
		}
	}
	if err := s.insertLocked(sh, sess, key, value, expireAt); err != nil {
		return false, err
	}
	return true, nil
}

// Apply runs a read-modify-write on key as one critical section: fn sees
// a copy of the current value (old == nil, found == false when the key is
// absent or expired) and decides the outcome — store a new value, touch
// the deadline, delete, or do nothing. The shard lock is held from the
// read through the write-back, so a concurrent set/delete/defrag pass can
// never interleave: this is the primitive behind cas, incr/decr, and
// append/prepend, and the access pattern most exposed to a concurrent
// mover. fn must be fast and must not call back into the store. The old
// slice is only valid for the duration of fn.
func (s *ShardedStore) Apply(sess Session, key string, fn func(old []byte, found bool) ApplyOp) error {
	_, err := s.apply(sess, s.shardFor(key), unsafeKeyBytes(key), true, nil, fn)
	return err
}

// ApplyInto is Apply for a byte-slice key, with the old-value copy-out
// landing in the caller's scratch buffer instead of a fresh allocation.
// It returns the (possibly grown) scratch for the caller to keep for the
// next call; fn's ApplyOp.Value may alias that scratch. A nil scratch is
// fine — the first call sizes it.
func (s *ShardedStore) ApplyInto(sess Session, key []byte, scratch []byte, fn func(old []byte, found bool) ApplyOp) ([]byte, error) {
	return s.apply(sess, s.shardForB(key), key, true, scratch, fn)
}

// apply is the shared RMW core; needValue false skips the copy-out
// (Touch's callback never looks at the bytes — a touch of a large value
// must not copy it under the shard lock).
func (s *ShardedStore) apply(sess Session, sh *shard, key []byte, needValue bool, scratch []byte, fn func(old []byte, found bool) ApplyOp) ([]byte, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, found := s.lookupLockedB(sh, key, s.now())
	var old []byte
	if found && needValue {
		scratch = growBytes(scratch, int(e.size))
		old = scratch[:e.size]
		if err := sess.Read(e.ref, 0, old); err != nil {
			return scratch, err
		}
	}
	op := fn(old, found)
	// The counter is bumped only once the verdict has actually taken
	// effect: a hit whose write-back fails must not inflate cas_hits
	// past the number of successful replies.
	switch op.Verdict {
	case ApplyNone:
	case ApplyDelete:
		if found {
			s.removeLocked(sh, e)
		}
	case ApplyTouch:
		if found {
			sh.setDeadline(e, op.Expire)
			sh.lru.MoveToFront(e.el)
		}
	case ApplyStore:
		expire := op.Expire
		if op.KeepExpire && found {
			expire = e.expireAt
		}
		if err := s.insertLocked(sh, sess, key, op.Value, expire); err != nil {
			return scratch, err
		}
	default:
		return scratch, fmt.Errorf("kv: apply %q: bad verdict %d", string(key), op.Verdict)
	}
	sh.stats.bump(op.Stat)
	return scratch, nil
}

// CompareAndSwap stores next only if the current value is byte-equal to
// expected, as one critical section. It reports whether the swap
// happened and whether the key was present at all — the kv-level
// analogue of memcached's cas (which compares uniques the protocol layer
// keeps inside the value).
func (s *ShardedStore) CompareAndSwap(sess Session, key string, expected, next []byte) (swapped, found bool, err error) {
	err = s.Apply(sess, key, casApply(expected, next, &swapped, &found))
	return swapped, found, err
}

// Touch replaces key's expiry deadline (zero = never expires), reporting
// whether the key was present and alive. Implemented over apply so the
// touch semantics live in exactly one place per store.
func (s *ShardedStore) Touch(sess Session, key string, expireAt time.Time) (found bool, err error) {
	_, err = s.apply(sess, s.shardFor(key), unsafeKeyBytes(key), false, nil, touchApply(expireAt, &found))
	return found, err
}

// TouchBytes is Touch for a byte-slice key.
func (s *ShardedStore) TouchBytes(sess Session, key []byte, expireAt time.Time) (found bool, err error) {
	_, err = s.apply(sess, s.shardForB(key), key, false, nil, touchApply(expireAt, &found))
	return found, err
}

// Get reads key through the worker's session; nil if absent or expired.
// The returned slice is freshly allocated and owned by the caller; the
// allocation-free variant is GetInto.
func (s *ShardedStore) Get(sess Session, key string) ([]byte, error) {
	v, hit, err := s.getInto(sess, s.shardFor(key), unsafeKeyBytes(key), false, time.Time{}, nil)
	if !hit {
		return nil, err
	}
	if v == nil {
		v = emptyValue // zero-length hit must stay distinguishable from a miss
	}
	return v, err
}

// GetAndTouch is Get plus a deadline update on a hit, as one critical
// section (memcached `gat`/`gats`). It bumps both the get and the touch
// counters, like memcached.
func (s *ShardedStore) GetAndTouch(sess Session, key string, expireAt time.Time) ([]byte, error) {
	v, hit, err := s.getInto(sess, s.shardFor(key), unsafeKeyBytes(key), true, expireAt, nil)
	if !hit {
		return nil, err
	}
	if v == nil {
		v = emptyValue
	}
	return v, err
}

// GetInto reads key's value into the caller's scratch buffer, growing it
// only when the value doesn't fit: the copy-out from the shard-lock
// critical section lands directly in a buffer the caller reuses across
// requests, so a cache hit allocates nothing. It returns the value
// (aliasing buf's storage), whether the key was present, and any read
// error. The value is only valid until the caller's next use of buf.
func (s *ShardedStore) GetInto(sess Session, key []byte, buf []byte) ([]byte, bool, error) {
	return s.getInto(sess, s.shardForB(key), key, false, time.Time{}, buf)
}

// GetAndTouchInto is GetInto plus a deadline update on a hit.
func (s *ShardedStore) GetAndTouchInto(sess Session, key []byte, expireAt time.Time, buf []byte) ([]byte, bool, error) {
	return s.getInto(sess, s.shardForB(key), key, true, expireAt, buf)
}

// getInto is the copy-out core shared by every retrieval path.
//
// The copy-out happens under the shard lock: with `delete` (and same-key
// `set`, which frees the old value) arriving from untrusted network
// clients, a reference held outside the lock could be freed — and its
// block recycled to another key — mid-read, silently returning another
// object's bytes. Holding the lock for the copy is the memcached
// item-reference discipline reduced to its simplest correct form; under
// Alaska the session additionally pins the handle so a concurrent
// relocation pass cannot move the object mid-copy.
func (s *ShardedStore) getInto(sess Session, sh *shard, key []byte, touch bool, expireAt time.Time, buf []byte) ([]byte, bool, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.gets.Add(1)
	e, ok := s.lookupLockedB(sh, key, s.now())
	if !ok {
		sh.stats.misses.Add(1)
		if touch {
			sh.stats.touchMisses.Add(1)
		}
		return buf, false, nil
	}
	sh.stats.hits.Add(1)
	sh.lru.MoveToFront(e.el)
	buf = growBytes(buf, int(e.size))
	out := buf[:e.size]
	if err := sess.Read(e.ref, 0, out); err != nil {
		return buf, false, err
	}
	// The deadline moves only after the read succeeded: a failed gat
	// must not extend — or, with a negative exptime, destroy — a value
	// the client never received.
	if touch {
		sh.stats.touchHits.Add(1)
		sh.setDeadline(e, expireAt)
	}
	return out, true, nil
}

// Del removes key through the worker's session, reporting whether it
// existed. A dead (expired) entry is reclaimed but reported as a miss,
// like memcached's delete of an expired item.
func (s *ShardedStore) Del(sess Session, key string) (bool, error) {
	return s.del(s.shardFor(key), unsafeKeyBytes(key))
}

// DelBytes is Del for a byte-slice key.
func (s *ShardedStore) DelBytes(sess Session, key []byte) (bool, error) {
	return s.del(s.shardForB(key), key)
}

func (s *ShardedStore) del(sh *shard, key []byte) (bool, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := s.lookupLockedB(sh, key, s.now())
	if !ok {
		sh.stats.deleteMisses.Add(1)
		return false, nil
	}
	sh.stats.deleteHits.Add(1)
	s.removeLocked(sh, e)
	return true, nil
}

// SweepExpired scans up to budget entries per shard and reclaims those
// past their deadline, returning the number reclaimed. Bounded scans over
// Go's randomized map iteration order make repeated calls a probabilistic
// crawler over the whole keyspace, so dead items release heap even if
// never accessed again — which matters here more than in stock memcached,
// because unreclaimed bytes hold their sub-heaps hostage against the
// defrag controller's truncation.
func (s *ShardedStore) SweepExpired(budget int) int {
	now := s.now()
	fa := s.flushAt.Load()
	flushDue := fa != 0 && now.UnixNano() >= fa
	reclaimed := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		if flushDue && sh.flushedFor < fa {
			// A flush_all epoch has passed that this shard hasn't been
			// swept for: one full scan reclaims everything the epoch
			// killed (a flush is a rare admin event; one O(shard) walk is
			// the whole cost), then the shard drops back to the
			// budget-bounded crawl.
			for _, e := range sh.index {
				if s.deadAt(e, now) {
					s.removeLocked(sh, e)
					sh.stats.expired.Add(1)
					reclaimed++
				}
			}
			sh.flushedFor = fa
			sh.mu.Unlock()
			continue
		}
		// TTL-free shards are skipped outright, so workloads that never
		// set an exptime pay nothing for the sweep.
		if sh.ttl == 0 {
			sh.mu.Unlock()
			continue
		}
		scanned := 0
		for _, e := range sh.index {
			if scanned >= budget {
				break
			}
			scanned++
			if s.deadAt(e, now) {
				s.removeLocked(sh, e)
				sh.stats.expired.Add(1)
				reclaimed++
			}
		}
		sh.mu.Unlock()
	}
	s.sweeps.Add(1)
	return reclaimed
}

// Maintain advances the backend's background machinery to simulated time
// now and runs one expiry-sweep increment, returning pause time incurred.
func (s *ShardedStore) Maintain(now time.Duration) time.Duration {
	pause := s.backend.Maintain(now)
	s.SweepExpired(sweepBudgetPerShard)
	return pause
}

// Len returns the total number of keys.
func (s *ShardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += int(sh.stats.keys.Load())
	}
	return n
}

// Snapshot aggregates the per-shard counters with the backend's memory
// metrics. The counters are atomics, so the aggregation takes no shard
// lock and never stalls the request path; the result is a relaxed cut —
// the same guarantee memcached's `stats` gives.
func (s *ShardedStore) Snapshot() StatsSnapshot {
	var out StatsSnapshot
	for _, sh := range s.shards {
		sh.stats.addTo(&out)
	}
	out.ExpirySweeps = s.sweeps.Load()
	out.Used = s.backend.UsedBytes()
	out.RSS = s.backend.RSS()
	return out
}
