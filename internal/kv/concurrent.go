package kv

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedStore is the memcached-like concurrent store used by the
// Figure 12 experiment and the alaskad server: a fixed set of
// mutex-protected shards, accessed by worker goroutines that each hold
// their own Session (and, under Alaska, their own runtime thread with pin
// sets and safepoints).
type ShardedStore struct {
	backend Backend
	shards  []*shard
	// MaxMemoryPerShard caps each shard's byte usage (0 = unlimited).
	MaxMemoryPerShard uint64
	// Clock supplies the wall-clock time used for expiry decisions; nil
	// means time.Now. Swap in a fake before serving traffic to make TTL
	// behavior deterministic in tests.
	Clock func() time.Time

	sweeps atomic.Int64 // expiry sweep rounds run
	// flushAt is the flush_all epoch in Clock unixnanos (0 = none):
	// every entry stored strictly before it is dead once the clock
	// reaches it. An atomic so FlushAll is O(1) and lock-free while the
	// per-entry check rides the existing lazy-expiry paths.
	flushAt atomic.Int64
}

type shard struct {
	mu    sync.Mutex
	index map[string]*entry
	lru   *list.List
	used  uint64
	// ttl counts live entries carrying a deadline, so the sweep can skip
	// the shard outright for TTL-free workloads.
	ttl   int
	stats StatsSnapshot // per-shard counters, aggregated by Snapshot
	// flushedFor is the flush_all epoch this shard has been fully swept
	// for, so each flush costs exactly one full scan per shard.
	flushedFor int64
}

// setDeadline rewrites e's deadline, keeping the shard's ttl-entry count
// exact. Caller holds sh.mu.
func (sh *shard) setDeadline(e *entry, expireAt time.Time) {
	if e.expireAt.IsZero() != expireAt.IsZero() {
		if expireAt.IsZero() {
			sh.ttl--
		} else {
			sh.ttl++
		}
	}
	e.expireAt = expireAt
}

// SetMode selects the conditional-store semantics of SetWith, mirroring
// the memcached storage commands.
type SetMode int

const (
	// SetAlways stores unconditionally (memcached `set`).
	SetAlways SetMode = iota
	// SetAdd stores only if the key is absent (memcached `add`).
	SetAdd
	// SetReplace stores only if the key is present (memcached `replace`).
	SetReplace
)

// NewShardedStore builds a store with n shards.
func NewShardedStore(b Backend, n int, maxPerShard uint64) *ShardedStore {
	st := &ShardedStore{backend: b, MaxMemoryPerShard: maxPerShard}
	for i := 0; i < n; i++ {
		st.shards = append(st.shards, &shard{index: make(map[string]*entry), lru: list.New()})
	}
	return st
}

// Backend returns the underlying backend.
func (s *ShardedStore) Backend() Backend { return s.backend }

// NewSession opens a worker session.
func (s *ShardedStore) NewSession() Session { return s.backend.NewSession() }

func (s *ShardedStore) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

func (s *ShardedStore) shardFor(key string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// removeLocked frees e's storage and unlinks it. Caller holds sh.mu.
func (s *ShardedStore) removeLocked(sh *shard, e *entry) {
	sh.used -= e.size
	_ = s.backend.Free(e.ref, e.size)
	sh.lru.Remove(e.el)
	delete(sh.index, e.key)
	if !e.expireAt.IsZero() {
		sh.ttl--
	}
}

// deadAt reports whether e is dead at now: past its own deadline, or
// stored before a flush_all epoch the clock has reached.
func (s *ShardedStore) deadAt(e *entry, now time.Time) bool {
	if e.expiredAt(now) {
		return true
	}
	fa := s.flushAt.Load()
	return fa != 0 && now.UnixNano() >= fa && e.storedAt.UnixNano() < fa
}

// FlushAll marks every entry stored before at as expired once the clock
// reaches at — memcached's flush_all [delay]: a store-wide epoch honored
// by the same lazy-expiry paths as per-entry TTLs, plus one full
// reclamation sweep per shard by Maintain after the epoch passes.
// Entries stored after the epoch (even while it is still pending) are
// untouched. O(1) no matter how many items are live.
func (s *ShardedStore) FlushAll(at time.Time) { s.flushAt.Store(at.UnixNano()) }

// lookupLocked returns key's entry after lazy expiry: an entry whose
// deadline has passed (or that sits behind a reached flush_all epoch) is
// reclaimed on the spot (counted in Expired) and reported absent —
// memcached's expire-on-access. Caller holds sh.mu.
func (s *ShardedStore) lookupLocked(sh *shard, key string, now time.Time) (*entry, bool) {
	e, ok := sh.index[key]
	if !ok {
		return nil, false
	}
	if s.deadAt(e, now) {
		s.removeLocked(sh, e)
		sh.stats.Expired++
		return nil, false
	}
	return e, true
}

// insertLocked allocates, writes, and links a fresh entry, replacing any
// survivor under key. Room is made first: LRU entries are evicted until
// the new value fits, with the replaced entry's bytes discounted (an
// in-place overwrite needs no net room) but its removal deferred until
// the new value is durably written, so a failed store leaves the
// previous value intact. The old entry is re-looked-up each round (and
// again after the write) because the eviction walk may evict it. Caller
// holds sh.mu.
func (s *ShardedStore) insertLocked(sh *shard, sess Session, key string, value []byte, expireAt time.Time) error {
	if s.MaxMemoryPerShard > 0 {
		for {
			used := sh.used
			if old, ok := sh.index[key]; ok {
				used -= old.size
			}
			if used+uint64(len(value)) <= s.MaxMemoryPerShard {
				break
			}
			back := sh.lru.Back()
			if back == nil {
				break
			}
			s.removeLocked(sh, back.Value.(*entry))
			sh.stats.Evictions++
		}
	}
	ref, err := s.backend.Alloc(uint64(len(value)))
	if err != nil {
		return fmt.Errorf("kv: sharded store %q: %w", key, err)
	}
	if err := sess.Write(ref, 0, value); err != nil {
		_ = s.backend.Free(ref, uint64(len(value)))
		return err
	}
	if old, ok := sh.index[key]; ok {
		s.removeLocked(sh, old)
	}
	e := &entry{key: key, ref: ref, size: uint64(len(value)), expireAt: expireAt, storedAt: s.now()}
	e.el = sh.lru.PushFront(e)
	sh.index[key] = e
	sh.used += e.size
	if !expireAt.IsZero() {
		sh.ttl++
	}
	return nil
}

// Set stores key=value through the worker's session.
func (s *ShardedStore) Set(sess Session, key string, value []byte) error {
	_, err := s.SetWith(sess, key, value, SetAlways)
	return err
}

// SetWith stores key=value with no expiry deadline under the given
// conditional mode.
func (s *ShardedStore) SetWith(sess Session, key string, value []byte, mode SetMode) (bool, error) {
	return s.SetEx(sess, key, value, mode, time.Time{})
}

// SetEx stores key=value under the given conditional mode with an
// absolute expiry deadline (zero = never expires), reporting whether the
// value was stored. The existence check and the store are one critical
// section, so concurrent add/replace races resolve like memcached's:
// exactly one concurrent `add` of a key wins. An entry past its deadline
// counts as absent — `add` succeeds over a dead value, `replace` does
// not revive one.
func (s *ShardedStore) SetEx(sess Session, key string, value []byte, mode SetMode, expireAt time.Time) (bool, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.Sets++
	_, exists := s.lookupLocked(sh, key, s.now())
	switch mode {
	case SetAdd:
		if exists {
			return false, nil
		}
	case SetReplace:
		if !exists {
			return false, nil
		}
	}
	if err := s.insertLocked(sh, sess, key, value, expireAt); err != nil {
		return false, err
	}
	return true, nil
}

// Apply runs a read-modify-write on key as one critical section: fn sees
// a copy of the current value (old == nil, found == false when the key is
// absent or expired) and decides the outcome — store a new value, touch
// the deadline, delete, or do nothing. The shard lock is held from the
// read through the write-back, so a concurrent set/delete/defrag pass can
// never interleave: this is the primitive behind cas, incr/decr, and
// append/prepend, and the access pattern most exposed to a concurrent
// mover. fn must be fast and must not call back into the store.
func (s *ShardedStore) Apply(sess Session, key string, fn func(old []byte, found bool) ApplyOp) error {
	return s.apply(sess, key, true, fn)
}

// apply is Apply with the value copy-out optional: Touch's callback never
// looks at the bytes, so it skips the read entirely (a touch of a large
// value must not copy it under the shard lock).
func (s *ShardedStore) apply(sess Session, key string, needValue bool, fn func(old []byte, found bool) ApplyOp) error {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, found := s.lookupLocked(sh, key, s.now())
	var old []byte
	if found && needValue {
		old = make([]byte, e.size)
		if err := sess.Read(e.ref, 0, old); err != nil {
			return err
		}
	}
	op := fn(old, found)
	// The counter is bumped only once the verdict has actually taken
	// effect: a hit whose write-back fails must not inflate cas_hits
	// past the number of successful replies.
	switch op.Verdict {
	case ApplyNone:
	case ApplyDelete:
		if found {
			s.removeLocked(sh, e)
		}
	case ApplyTouch:
		if found {
			sh.setDeadline(e, op.Expire)
			sh.lru.MoveToFront(e.el)
		}
	case ApplyStore:
		expire := op.Expire
		if op.KeepExpire && found {
			expire = e.expireAt
		}
		if err := s.insertLocked(sh, sess, key, op.Value, expire); err != nil {
			return err
		}
	default:
		return fmt.Errorf("kv: apply %q: bad verdict %d", key, op.Verdict)
	}
	sh.stats.bump(op.Stat)
	return nil
}

// CompareAndSwap stores next only if the current value is byte-equal to
// expected, as one critical section. It reports whether the swap
// happened and whether the key was present at all — the kv-level
// analogue of memcached's cas (which compares uniques the protocol layer
// keeps inside the value).
func (s *ShardedStore) CompareAndSwap(sess Session, key string, expected, next []byte) (swapped, found bool, err error) {
	err = s.Apply(sess, key, casApply(expected, next, &swapped, &found))
	return swapped, found, err
}

// Touch replaces key's expiry deadline (zero = never expires), reporting
// whether the key was present and alive. Implemented over Apply so the
// touch semantics live in exactly one place per store.
func (s *ShardedStore) Touch(sess Session, key string, expireAt time.Time) (found bool, err error) {
	err = s.apply(sess, key, false, touchApply(expireAt, &found))
	return found, err
}

// Get reads key through the worker's session; nil if absent or expired.
//
// The copy-out happens under the shard lock: with `delete` (and same-key
// `set`, which frees the old value) now arriving from untrusted network
// clients, a reference held outside the lock could be freed — and its
// block recycled to another key — mid-read, silently returning another
// object's bytes. Holding the lock for the copy is the memcached
// item-reference discipline reduced to its simplest correct form; under
// Alaska the session additionally pins the handle so a concurrent
// relocation pass cannot move the object mid-copy.
func (s *ShardedStore) Get(sess Session, key string) ([]byte, error) {
	return s.get(sess, key, false, time.Time{})
}

// GetAndTouch is Get plus a deadline update on a hit, as one critical
// section (memcached `gat`/`gats`). It bumps both the get and the touch
// counters, like memcached.
func (s *ShardedStore) GetAndTouch(sess Session, key string, expireAt time.Time) ([]byte, error) {
	return s.get(sess, key, true, expireAt)
}

func (s *ShardedStore) get(sess Session, key string, touch bool, expireAt time.Time) ([]byte, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.Gets++
	e, ok := s.lookupLocked(sh, key, s.now())
	if !ok {
		sh.stats.Misses++
		if touch {
			sh.stats.TouchMisses++
		}
		return nil, nil
	}
	sh.stats.Hits++
	sh.lru.MoveToFront(e.el)
	buf := make([]byte, e.size)
	if err := sess.Read(e.ref, 0, buf); err != nil {
		return nil, err
	}
	// The deadline moves only after the read succeeded: a failed gat
	// must not extend — or, with a negative exptime, destroy — a value
	// the client never received.
	if touch {
		sh.stats.TouchHits++
		sh.setDeadline(e, expireAt)
	}
	return buf, nil
}

// Del removes key through the worker's session, reporting whether it
// existed. A dead (expired) entry is reclaimed but reported as a miss,
// like memcached's delete of an expired item.
func (s *ShardedStore) Del(sess Session, key string) (bool, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := s.lookupLocked(sh, key, s.now())
	if !ok {
		sh.stats.DeleteMisses++
		return false, nil
	}
	sh.stats.DeleteHits++
	s.removeLocked(sh, e)
	return true, nil
}

// SweepExpired scans up to budget entries per shard and reclaims those
// past their deadline, returning the number reclaimed. Bounded scans over
// Go's randomized map iteration order make repeated calls a probabilistic
// crawler over the whole keyspace, so dead items release heap even if
// never accessed again — which matters here more than in stock memcached,
// because unreclaimed bytes hold their sub-heaps hostage against the
// defrag controller's truncation.
func (s *ShardedStore) SweepExpired(budget int) int {
	now := s.now()
	fa := s.flushAt.Load()
	flushDue := fa != 0 && now.UnixNano() >= fa
	reclaimed := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		if flushDue && sh.flushedFor < fa {
			// A flush_all epoch has passed that this shard hasn't been
			// swept for: one full scan reclaims everything the epoch
			// killed (a flush is a rare admin event; one O(shard) walk is
			// the whole cost), then the shard drops back to the
			// budget-bounded crawl.
			for _, e := range sh.index {
				if s.deadAt(e, now) {
					s.removeLocked(sh, e)
					sh.stats.Expired++
					reclaimed++
				}
			}
			sh.flushedFor = fa
			sh.mu.Unlock()
			continue
		}
		// TTL-free shards are skipped outright, so workloads that never
		// set an exptime pay nothing for the sweep.
		if sh.ttl == 0 {
			sh.mu.Unlock()
			continue
		}
		scanned := 0
		for _, e := range sh.index {
			if scanned >= budget {
				break
			}
			scanned++
			if s.deadAt(e, now) {
				s.removeLocked(sh, e)
				sh.stats.Expired++
				reclaimed++
			}
		}
		sh.mu.Unlock()
	}
	s.sweeps.Add(1)
	return reclaimed
}

// Maintain advances the backend's background machinery to simulated time
// now and runs one expiry-sweep increment, returning pause time incurred.
func (s *ShardedStore) Maintain(now time.Duration) time.Duration {
	pause := s.backend.Maintain(now)
	s.SweepExpired(sweepBudgetPerShard)
	return pause
}

// Len returns the total number of keys.
func (s *ShardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// Snapshot aggregates the per-shard counters with the backend's memory
// metrics. Counters are read under each shard's lock in turn, so the
// result is per-shard consistent (not a global atomic cut — the same
// guarantee memcached's `stats` gives).
func (s *ShardedStore) Snapshot() StatsSnapshot {
	var out StatsSnapshot
	for _, sh := range s.shards {
		sh.mu.Lock()
		out.Sets += sh.stats.Sets
		out.Gets += sh.stats.Gets
		out.Hits += sh.stats.Hits
		out.Misses += sh.stats.Misses
		out.DeleteHits += sh.stats.DeleteHits
		out.DeleteMisses += sh.stats.DeleteMisses
		out.Evictions += sh.stats.Evictions
		out.Expired += sh.stats.Expired
		out.CasHits += sh.stats.CasHits
		out.CasBadval += sh.stats.CasBadval
		out.CasMisses += sh.stats.CasMisses
		out.IncrHits += sh.stats.IncrHits
		out.IncrMisses += sh.stats.IncrMisses
		out.DecrHits += sh.stats.DecrHits
		out.DecrMisses += sh.stats.DecrMisses
		out.TouchHits += sh.stats.TouchHits
		out.TouchMisses += sh.stats.TouchMisses
		out.Keys += len(sh.index)
		sh.mu.Unlock()
	}
	out.ExpirySweeps = s.sweeps.Load()
	out.Used = s.backend.UsedBytes()
	out.RSS = s.backend.RSS()
	return out
}
