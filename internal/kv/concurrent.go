package kv

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedStore is the memcached-like concurrent store used by the
// Figure 12 experiment and the alaskad server: a fixed set of
// mutex-protected shards, accessed by worker goroutines that each hold
// their own Session (and, under Alaska, their own runtime thread with pin
// sets and safepoints).
//
// The request path is allocation-free in steady state: keys arrive as
// []byte slices into network buffers (GetInto, SetExBytes, ApplyInto)
// and are interned to strings only when a brand-new entry is created;
// value copy-out lands in caller-owned scratch buffers; an overwrite of
// a live key reuses its entry and LRU node in place; and the per-shard
// counters are atomics, so Snapshot never takes a shard lock.
type ShardedStore struct {
	backend Backend
	shards  []*shard
	// maxMemory is the store-wide charged-byte ceiling — memcached's -m,
	// global across shards (0 = unlimited). used is the charged total
	// (Σ value + key + EntryOverhead per live entry, plus in-flight
	// reservations); inserts reserve against it with a CAS before
	// linking, so `bytes` can never exceed `limit_maxbytes`, not even
	// transiently between concurrent inserts.
	maxMemory uint64
	used      atomic.Int64
	// Clock supplies the wall-clock time used for expiry decisions; nil
	// means time.Now. Swap in a fake before serving traffic to make TTL
	// behavior deterministic in tests.
	Clock func() time.Time

	sweeps atomic.Int64 // expiry sweep rounds run
	// flushAt is the flush_all epoch in Clock unixnanos (0 = none):
	// every entry stored strictly before it is dead once the clock
	// reaches it. An atomic so FlushAll is O(1) and lock-free while the
	// per-entry check rides the existing lazy-expiry paths.
	flushAt atomic.Int64

	// mlog, when non-nil, receives every state-changing mutation for
	// persistence (see MutationLog / SetMutationLog). Read without
	// synchronization on the hot path; set before serving traffic.
	mlog MutationLog
}

// shardCounters are the per-shard operation counters, all atomics:
// writers bump them while already holding the shard lock for the data,
// but readers (Snapshot, the stats command under load) never have to
// take that lock — hot-path counting never waits on a stats poll.
type shardCounters struct {
	sets, gets               atomic.Int64
	hits, misses             atomic.Int64
	deleteHits, deleteMisses atomic.Int64
	evictions, expired       atomic.Int64
	// reclaimed counts dead entries the eviction walk removed under
	// pressure; evictedUnfetched counts evictions of never-fetched
	// entries (see StatsSnapshot).
	reclaimed, evictedUnfetched atomic.Int64
	casHits                     atomic.Int64
	casBadval, casMisses        atomic.Int64
	incrHits, incrMisses        atomic.Int64
	decrHits, decrMisses        atomic.Int64
	touchHits, touchMisses      atomic.Int64
	keys                        atomic.Int64
}

// bump increments the counter named by stat.
func (c *shardCounters) bump(stat RMWStat) {
	switch stat {
	case StatCasHit:
		c.casHits.Add(1)
	case StatCasBadval:
		c.casBadval.Add(1)
	case StatCasMiss:
		c.casMisses.Add(1)
	case StatIncrHit:
		c.incrHits.Add(1)
	case StatIncrMiss:
		c.incrMisses.Add(1)
	case StatDecrHit:
		c.decrHits.Add(1)
	case StatDecrMiss:
		c.decrMisses.Add(1)
	case StatTouchHit:
		c.touchHits.Add(1)
	case StatTouchMiss:
		c.touchMisses.Add(1)
	}
}

// reset zeroes the operation counters — the `stats reset` surface. The
// keys gauge is the shard's live-entry count, not a statistic, and is
// left intact. Plain stores racing the reset may land a bump before or
// after their counter is zeroed; either order is a legal relaxed cut.
func (c *shardCounters) reset() {
	c.sets.Store(0)
	c.gets.Store(0)
	c.hits.Store(0)
	c.misses.Store(0)
	c.deleteHits.Store(0)
	c.deleteMisses.Store(0)
	c.evictions.Store(0)
	c.expired.Store(0)
	c.reclaimed.Store(0)
	c.evictedUnfetched.Store(0)
	c.casHits.Store(0)
	c.casBadval.Store(0)
	c.casMisses.Store(0)
	c.incrHits.Store(0)
	c.incrMisses.Store(0)
	c.decrHits.Store(0)
	c.decrMisses.Store(0)
	c.touchHits.Store(0)
	c.touchMisses.Store(0)
}

// addTo folds the counters into a snapshot.
func (c *shardCounters) addTo(out *StatsSnapshot) {
	out.Sets += c.sets.Load()
	out.Gets += c.gets.Load()
	out.Hits += c.hits.Load()
	out.Misses += c.misses.Load()
	out.DeleteHits += c.deleteHits.Load()
	out.DeleteMisses += c.deleteMisses.Load()
	out.Evictions += c.evictions.Load()
	out.Reclaimed += c.reclaimed.Load()
	out.EvictedUnfetched += c.evictedUnfetched.Load()
	out.Expired += c.expired.Load()
	out.CasHits += c.casHits.Load()
	out.CasBadval += c.casBadval.Load()
	out.CasMisses += c.casMisses.Load()
	out.IncrHits += c.incrHits.Load()
	out.IncrMisses += c.incrMisses.Load()
	out.DecrHits += c.decrHits.Load()
	out.DecrMisses += c.decrMisses.Load()
	out.TouchHits += c.touchHits.Load()
	out.TouchMisses += c.touchMisses.Load()
	out.Keys += int(c.keys.Load())
}

type shard struct {
	mu    sync.Mutex
	index map[string]*entry
	lru   lruList
	free  entryFreeList
	// used is the shard's charged byte total (Σ entry cost).
	used uint64
	// ttl counts live entries carrying a deadline, so the sweep can skip
	// the shard outright for TTL-free workloads.
	ttl   int
	stats shardCounters
	// flushedFor is the flush_all epoch this shard has been fully swept
	// for, so each flush costs exactly one full scan per shard.
	flushedFor int64
	// tailStamp is the lastUsed unixnano of the LRU tail (MaxInt64 when
	// the shard is empty), republished under sh.mu whenever the tail
	// changes. Other shards read it lock-free to pick the globally
	// coldest victim when their own LRU runs dry under the global
	// ceiling.
	tailStamp atomic.Int64
}

// noteTail republishes the LRU tail's recency stamp. Caller holds sh.mu
// and must invoke it after any mutation that can change the tail.
func (sh *shard) noteTail() {
	if tail := sh.lru.back(); tail != nil {
		sh.tailStamp.Store(tail.lastUsed)
	} else {
		sh.tailStamp.Store(math.MaxInt64)
	}
}

// setDeadline rewrites e's deadline, keeping the shard's ttl-entry count
// exact. Caller holds sh.mu.
func (sh *shard) setDeadline(e *entry, expireAt time.Time) {
	if e.expireAt.IsZero() != expireAt.IsZero() {
		if expireAt.IsZero() {
			sh.ttl--
		} else {
			sh.ttl++
		}
	}
	e.expireAt = expireAt
}

// SetMode selects the conditional-store semantics of SetWith, mirroring
// the memcached storage commands.
type SetMode int

const (
	// SetAlways stores unconditionally (memcached `set`).
	SetAlways SetMode = iota
	// SetAdd stores only if the key is absent (memcached `add`).
	SetAdd
	// SetReplace stores only if the key is present (memcached `replace`).
	SetReplace
)

// NewShardedStore builds a store with n shards under one store-wide
// memory ceiling of maxMemory charged bytes (0 = unlimited) — memcached
// -m semantics, not a per-shard split, so a cap below the shard count
// still limits and zipfian traffic cannot evict hot shards while cold
// shards idle under budget.
func NewShardedStore(b Backend, n int, maxMemory uint64) *ShardedStore {
	st := &ShardedStore{backend: b, maxMemory: maxMemory}
	for i := 0; i < n; i++ {
		sh := &shard{index: make(map[string]*entry)}
		sh.tailStamp.Store(math.MaxInt64)
		st.shards = append(st.shards, sh)
	}
	return st
}

// MaxMemory returns the store-wide charged-byte ceiling (0 = unlimited).
func (s *ShardedStore) MaxMemory() uint64 { return s.maxMemory }

// Backend returns the underlying backend.
func (s *ShardedStore) Backend() Backend { return s.backend }

// NewSession opens a worker session.
func (s *ShardedStore) NewSession() Session { return s.backend.NewSession() }

func (s *ShardedStore) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// FNV-1a, inlined: hashing a key must not construct a hash.Hash32 or
// convert the key to a fresh []byte — on the request path every get and
// set passes through here.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func (s *ShardedStore) shardFor(key string) *shard {
	return s.shardForB(unsafeKeyBytes(key))
}

func (s *ShardedStore) shardForB(key []byte) *shard {
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return s.shards[h%uint32(len(s.shards))]
}

// removeLocked frees e's storage, refunds its charged bytes (shard and
// store-wide), and unlinks it; the struct goes to the shard's free list
// for reuse. Caller holds sh.mu.
func (s *ShardedStore) removeLocked(sh *shard, e *entry) {
	cost := e.cost()
	sh.used -= cost
	s.used.Add(-int64(cost))
	_ = s.backend.Free(e.ref, e.size)
	sh.lru.remove(e)
	delete(sh.index, e.key)
	sh.stats.keys.Add(-1)
	if !e.expireAt.IsZero() {
		sh.ttl--
	}
	sh.free.put(e)
	sh.noteTail()
}

// deadAt reports whether e is dead at now: past its own deadline, or
// stored before a flush_all epoch the clock has reached.
func (s *ShardedStore) deadAt(e *entry, now time.Time) bool {
	if e.expiredAt(now) {
		return true
	}
	fa := s.flushAt.Load()
	return fa != 0 && now.UnixNano() >= fa && e.storedAt.UnixNano() < fa
}

// FlushAll marks every entry stored before at as expired once the clock
// reaches at — memcached's flush_all [delay]: a store-wide epoch honored
// by the same lazy-expiry paths as per-entry TTLs, plus one full
// reclamation sweep per shard by Maintain after the epoch passes.
// Entries stored after the epoch (even while it is still pending) are
// untouched. O(1) no matter how many items are live.
func (s *ShardedStore) FlushAll(at time.Time) {
	s.flushAt.Store(at.UnixNano())
	if s.mlog != nil {
		s.mlog.LogFlushAll(at)
	}
}

// liveLocked applies lazy expiry to a looked-up entry: a dead one is
// reclaimed on the spot (counted in Expired) and reported absent —
// memcached's expire-on-access. Caller holds sh.mu.
func (s *ShardedStore) liveLocked(sh *shard, e *entry, ok bool, now time.Time) (*entry, bool) {
	if !ok {
		return nil, false
	}
	if s.deadAt(e, now) {
		s.removeLocked(sh, e)
		sh.stats.expired.Add(1)
		return nil, false
	}
	return e, true
}

// lookupLocked returns key's entry after lazy expiry. Caller holds sh.mu.
func (s *ShardedStore) lookupLocked(sh *shard, key string, now time.Time) (*entry, bool) {
	e, ok := sh.index[key]
	return s.liveLocked(sh, e, ok, now)
}

// lookupLockedB is lookupLocked for a byte-slice key; the map access
// compiles to a no-copy lookup. Caller holds sh.mu.
func (s *ShardedStore) lookupLockedB(sh *shard, key []byte, now time.Time) (*entry, bool) {
	e, ok := sh.index[string(key)]
	return s.liveLocked(sh, e, ok, now)
}

// insertLocked allocates, writes, and links key's new value. Under a
// ceiling, room is reserved first (makeRoomLocked): the budget delta is
// claimed with a CAS before the write, while the replaced entry's
// removal is still deferred until the new value is durably written — so
// a failed store leaves the previous value intact AND refunds its
// reservation, and the charged total never exceeds the ceiling even
// transiently.
//
// An overwrite of a surviving entry is performed in place — the entry
// struct, its LRU links, and its interned key string are all reused —
// and a brand-new key reuses an evicted entry struct off the shard's
// free list, so the steady-state set path (including eviction churn at
// the ceiling) allocates nothing; only a brand-new key interns a
// string. Caller holds sh.mu.
//
// storedAt is the store timestamp recorded on the entry: zero means
// "now" (every live path); WAL replay passes the record's original
// timestamp so the flush_all-epoch check stays correct across a
// restart. record=false suppresses the mutation-log hook — replay must
// not re-log the records it is applying.
func (s *ShardedStore) insertLocked(sh *shard, sess Session, key []byte, value []byte, expireAt, storedAt time.Time, record bool) error {
	now := s.now()
	at := storedAt
	if at.IsZero() {
		at = now
	}
	newCost := entryCost(len(key), len(value))
	var reserved uint64
	if s.maxMemory > 0 {
		if newCost > s.maxMemory {
			// Can never fit: reject with the LRU untouched rather than
			// evicting the whole store and storing over the cap anyway.
			return fmt.Errorf("kv: sharded store %q: %w", string(key), ErrTooLarge)
		}
		var err error
		if reserved, err = s.makeRoomLocked(sh, key, newCost, now); err != nil {
			return fmt.Errorf("kv: sharded store %q: %w", string(key), err)
		}
	}
	ref, err := s.backend.Alloc(uint64(len(value)))
	if err != nil {
		s.used.Add(-int64(reserved))
		return fmt.Errorf("kv: sharded store %q: %w", string(key), err)
	}
	if err := sess.Write(ref, 0, value); err != nil {
		_ = s.backend.Free(ref, uint64(len(value)))
		s.used.Add(-int64(reserved))
		return err
	}
	if old, ok := sh.index[string(key)]; ok {
		// In-place overwrite: free the replaced bytes, rewrite the entry.
		oldCost := old.cost()
		sh.used += newCost - oldCost
		// Settle the global counter: the net change is newCost-oldCost,
		// of which `reserved` was already added by makeRoomLocked.
		s.used.Add(int64(newCost) - int64(oldCost) - int64(reserved))
		_ = s.backend.Free(old.ref, old.size)
		old.ref = ref
		old.size = uint64(len(value))
		old.storedAt = at
		old.fetched = false
		old.lastUsed = now.UnixNano()
		sh.setDeadline(old, expireAt)
		sh.lru.moveToFront(old)
		sh.noteTail()
		if record && s.mlog != nil {
			s.mlog.LogSet(key, value, expireAt, at)
		}
		return nil
	}
	e := sh.free.get()
	if e == nil {
		e = &entry{}
	}
	e.key, e.ref, e.size = string(key), ref, uint64(len(value))
	e.expireAt, e.storedAt = expireAt, at
	e.lastUsed = now.UnixNano()
	sh.lru.pushFront(e)
	sh.index[e.key] = e
	sh.stats.keys.Add(1)
	sh.used += newCost
	s.used.Add(int64(newCost) - int64(reserved))
	if !expireAt.IsZero() {
		sh.ttl++
	}
	sh.noteTail()
	if record && s.mlog != nil {
		s.mlog.LogSet(key, value, expireAt, at)
	}
	return nil
}

// tryReserve CASes n bytes out of the global budget, failing when the
// ceiling would be exceeded.
func (s *ShardedStore) tryReserve(n uint64) bool {
	for {
		u := s.used.Load()
		if uint64(u)+n > s.maxMemory {
			return false
		}
		if s.used.CompareAndSwap(u, u+int64(n)) {
			return true
		}
	}
}

// spillRounds bounds how many consecutive no-progress rounds
// makeRoomLocked tolerates before giving up with ErrNoRoom. Rounds that
// evict something reset the count, so this only limits pathological
// spinning when every other shard is empty or lock-contended while
// concurrent reservations hold the budget.
const spillRounds = 64

// makeRoomLocked reserves the global-budget delta a newCost-byte insert
// of key needs, evicting until the reservation succeeds: the inserting
// shard's own LRU first, then — when it runs dry — the globally coldest
// other shards (best-effort, via their lock-free tail stamps and
// TryLock, so two inserting shards can never deadlock on each other).
// The replaced entry's cost is discounted but the entry itself is left
// in place for insertLocked to settle after a durable write. Returns
// the bytes reserved. Caller holds sh.mu.
func (s *ShardedStore) makeRoomLocked(sh *shard, key []byte, newCost uint64, now time.Time) (uint64, error) {
	stuck := 0
	for {
		credit := uint64(0)
		if old, ok := sh.index[string(key)]; ok {
			// Only this lock-holder can evict from sh, so the credit
			// cannot be invalidated between here and the reservation.
			credit = old.cost()
		}
		if newCost <= credit {
			return 0, nil
		}
		need := newCost - credit
		if s.tryReserve(need) {
			return need, nil
		}
		if s.evictOneLocked(sh, now) || s.evictColdest(sh, now) {
			stuck = 0
			continue
		}
		if stuck++; stuck >= spillRounds {
			return 0, ErrNoRoom
		}
	}
}

// evictOneLocked removes sh's LRU tail, classifying the removal: a dead
// victim (expired / flushed) is a reclaim, a live one an eviction (and
// evicted_unfetched if never read). Caller holds sh.mu. Returns false
// when the shard is empty.
func (s *ShardedStore) evictOneLocked(sh *shard, now time.Time) bool {
	victim := sh.lru.back()
	if victim == nil {
		return false
	}
	if s.deadAt(victim, now) {
		sh.stats.reclaimed.Add(1)
	} else {
		sh.stats.evictions.Add(1)
		if !victim.fetched {
			sh.stats.evictedUnfetched.Add(1)
		}
	}
	s.removeLocked(sh, victim)
	return true
}

// evictColdest evicts one entry from the globally coldest shard other
// than me (the shard whose LRU tail is stalest, per the lock-free tail
// stamps). Victim shards are TryLocked — me's lock is already held, and
// blocking here could deadlock two spilling inserters — so under
// contention the next-best shard is taken instead. Returns whether
// anything was evicted.
func (s *ShardedStore) evictColdest(me *shard, now time.Time) bool {
	var coldest *shard
	coldestTS := int64(math.MaxInt64)
	for _, cand := range s.shards {
		if cand == me {
			continue
		}
		if ts := cand.tailStamp.Load(); ts < coldestTS {
			coldestTS, coldest = ts, cand
		}
	}
	if coldest != nil && coldest.mu.TryLock() {
		ok := s.evictOneLocked(coldest, now)
		coldest.mu.Unlock()
		if ok {
			return true
		}
	}
	// Coldest shard contended or raced empty: take any other shard we
	// can get rather than stalling the insert.
	for _, cand := range s.shards {
		if cand == me || cand == coldest || !cand.mu.TryLock() {
			continue
		}
		ok := s.evictOneLocked(cand, now)
		cand.mu.Unlock()
		if ok {
			return true
		}
	}
	return false
}

// Set stores key=value through the worker's session.
func (s *ShardedStore) Set(sess Session, key string, value []byte) error {
	_, err := s.SetWith(sess, key, value, SetAlways)
	return err
}

// SetWith stores key=value with no expiry deadline under the given
// conditional mode.
func (s *ShardedStore) SetWith(sess Session, key string, value []byte, mode SetMode) (bool, error) {
	return s.SetEx(sess, key, value, mode, time.Time{})
}

// SetEx stores key=value under the given conditional mode with an
// absolute expiry deadline (zero = never expires), reporting whether the
// value was stored. The existence check and the store are one critical
// section, so concurrent add/replace races resolve like memcached's:
// exactly one concurrent `add` of a key wins. An entry past its deadline
// counts as absent — `add` succeeds over a dead value, `replace` does
// not revive one.
func (s *ShardedStore) SetEx(sess Session, key string, value []byte, mode SetMode, expireAt time.Time) (bool, error) {
	return s.setEx(sess, s.shardFor(key), unsafeKeyBytes(key), value, mode, expireAt)
}

// SetExBytes is SetEx for a key arriving as bytes out of a network
// buffer: the key is interned to a string only if a brand-new entry is
// created. The caller may reuse both key and value the moment the call
// returns (the store copies the value into its heap under the lock).
func (s *ShardedStore) SetExBytes(sess Session, key, value []byte, mode SetMode, expireAt time.Time) (bool, error) {
	return s.setEx(sess, s.shardForB(key), key, value, mode, expireAt)
}

func (s *ShardedStore) setEx(sess Session, sh *shard, key, value []byte, mode SetMode, expireAt time.Time) (bool, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.sets.Add(1)
	_, exists := s.lookupLockedB(sh, key, s.now())
	switch mode {
	case SetAdd:
		if exists {
			return false, nil
		}
	case SetReplace:
		if !exists {
			return false, nil
		}
	}
	if err := s.insertLocked(sh, sess, key, value, expireAt, time.Time{}, true); err != nil {
		return false, err
	}
	return true, nil
}

// Apply runs a read-modify-write on key as one critical section: fn sees
// a copy of the current value (old == nil, found == false when the key is
// absent or expired) and decides the outcome — store a new value, touch
// the deadline, delete, or do nothing. The shard lock is held from the
// read through the write-back, so a concurrent set/delete/defrag pass can
// never interleave: this is the primitive behind cas, incr/decr, and
// append/prepend, and the access pattern most exposed to a concurrent
// mover. fn must be fast and must not call back into the store. The old
// slice is only valid for the duration of fn.
func (s *ShardedStore) Apply(sess Session, key string, fn func(old []byte, found bool) ApplyOp) error {
	_, err := s.apply(sess, s.shardFor(key), unsafeKeyBytes(key), true, nil, fn)
	return err
}

// ApplyInto is Apply for a byte-slice key, with the old-value copy-out
// landing in the caller's scratch buffer instead of a fresh allocation.
// It returns the (possibly grown) scratch for the caller to keep for the
// next call; fn's ApplyOp.Value may alias that scratch. A nil scratch is
// fine — the first call sizes it.
func (s *ShardedStore) ApplyInto(sess Session, key []byte, scratch []byte, fn func(old []byte, found bool) ApplyOp) ([]byte, error) {
	return s.apply(sess, s.shardForB(key), key, true, scratch, fn)
}

// apply is the shared RMW core; needValue false skips the copy-out
// (Touch's callback never looks at the bytes — a touch of a large value
// must not copy it under the shard lock).
func (s *ShardedStore) apply(sess Session, sh *shard, key []byte, needValue bool, scratch []byte, fn func(old []byte, found bool) ApplyOp) ([]byte, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, found := s.lookupLockedB(sh, key, s.now())
	var old []byte
	if found && needValue {
		scratch = growBytes(scratch, int(e.size))
		old = scratch[:e.size]
		if err := sess.Read(e.ref, 0, old); err != nil {
			return scratch, err
		}
		e.fetched = true // an RMW read counts as a fetch, like memcached's
	}
	op := fn(old, found)
	// The counter is bumped only once the verdict has actually taken
	// effect: a hit whose write-back fails must not inflate cas_hits
	// past the number of successful replies.
	switch op.Verdict {
	case ApplyNone:
	case ApplyDelete:
		if found {
			s.removeLocked(sh, e)
			if s.mlog != nil {
				s.mlog.LogDelete(key)
			}
		}
	case ApplyTouch:
		if found {
			sh.setDeadline(e, op.Expire)
			e.lastUsed = s.now().UnixNano()
			sh.lru.moveToFront(e)
			sh.noteTail()
			if s.mlog != nil {
				s.mlog.LogTouch(key, op.Expire)
			}
		}
	case ApplyStore:
		expire := op.Expire
		if op.KeepExpire && found {
			expire = e.expireAt
		}
		if err := s.insertLocked(sh, sess, key, op.Value, expire, time.Time{}, true); err != nil {
			return scratch, err
		}
	default:
		return scratch, fmt.Errorf("kv: apply %q: bad verdict %d", string(key), op.Verdict)
	}
	sh.stats.bump(op.Stat)
	return scratch, nil
}

// CompareAndSwap stores next only if the current value is byte-equal to
// expected, as one critical section. It reports whether the swap
// happened and whether the key was present at all — the kv-level
// analogue of memcached's cas (which compares uniques the protocol layer
// keeps inside the value).
func (s *ShardedStore) CompareAndSwap(sess Session, key string, expected, next []byte) (swapped, found bool, err error) {
	err = s.Apply(sess, key, casApply(expected, next, &swapped, &found))
	return swapped, found, err
}

// Touch replaces key's expiry deadline (zero = never expires), reporting
// whether the key was present and alive. Implemented over apply so the
// touch semantics live in exactly one place per store.
func (s *ShardedStore) Touch(sess Session, key string, expireAt time.Time) (found bool, err error) {
	_, err = s.apply(sess, s.shardFor(key), unsafeKeyBytes(key), false, nil, touchApply(expireAt, &found))
	return found, err
}

// TouchBytes is Touch for a byte-slice key.
func (s *ShardedStore) TouchBytes(sess Session, key []byte, expireAt time.Time) (found bool, err error) {
	_, err = s.apply(sess, s.shardForB(key), key, false, nil, touchApply(expireAt, &found))
	return found, err
}

// Get reads key through the worker's session; nil if absent or expired.
// The returned slice is freshly allocated and owned by the caller; the
// allocation-free variant is GetInto.
func (s *ShardedStore) Get(sess Session, key string) ([]byte, error) {
	v, hit, err := s.getInto(sess, s.shardFor(key), unsafeKeyBytes(key), false, time.Time{}, nil)
	if !hit {
		return nil, err
	}
	if v == nil {
		v = emptyValue // zero-length hit must stay distinguishable from a miss
	}
	return v, err
}

// GetAndTouch is Get plus a deadline update on a hit, as one critical
// section (memcached `gat`/`gats`). It bumps both the get and the touch
// counters, like memcached.
func (s *ShardedStore) GetAndTouch(sess Session, key string, expireAt time.Time) ([]byte, error) {
	v, hit, err := s.getInto(sess, s.shardFor(key), unsafeKeyBytes(key), true, expireAt, nil)
	if !hit {
		return nil, err
	}
	if v == nil {
		v = emptyValue
	}
	return v, err
}

// GetInto reads key's value into the caller's scratch buffer, growing it
// only when the value doesn't fit: the copy-out from the shard-lock
// critical section lands directly in a buffer the caller reuses across
// requests, so a cache hit allocates nothing. It returns the value
// (aliasing buf's storage), whether the key was present, and any read
// error. The value is only valid until the caller's next use of buf.
func (s *ShardedStore) GetInto(sess Session, key []byte, buf []byte) ([]byte, bool, error) {
	return s.getInto(sess, s.shardForB(key), key, false, time.Time{}, buf)
}

// GetAndTouchInto is GetInto plus a deadline update on a hit.
func (s *ShardedStore) GetAndTouchInto(sess Session, key []byte, expireAt time.Time, buf []byte) ([]byte, bool, error) {
	return s.getInto(sess, s.shardForB(key), key, true, expireAt, buf)
}

// getInto is the copy-out core shared by every retrieval path.
//
// The copy-out happens under the shard lock: with `delete` (and same-key
// `set`, which frees the old value) arriving from untrusted network
// clients, a reference held outside the lock could be freed — and its
// block recycled to another key — mid-read, silently returning another
// object's bytes. Holding the lock for the copy is the memcached
// item-reference discipline reduced to its simplest correct form; under
// Alaska the session additionally pins the handle so a concurrent
// relocation pass cannot move the object mid-copy.
func (s *ShardedStore) getInto(sess Session, sh *shard, key []byte, touch bool, expireAt time.Time, buf []byte) ([]byte, bool, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.gets.Add(1)
	now := s.now()
	e, ok := s.lookupLockedB(sh, key, now)
	if !ok {
		sh.stats.misses.Add(1)
		if touch {
			sh.stats.touchMisses.Add(1)
		}
		return buf, false, nil
	}
	sh.stats.hits.Add(1)
	e.fetched = true
	e.lastUsed = now.UnixNano()
	sh.lru.moveToFront(e)
	sh.noteTail()
	buf = growBytes(buf, int(e.size))
	out := buf[:e.size]
	if err := sess.Read(e.ref, 0, out); err != nil {
		return buf, false, err
	}
	// The deadline moves only after the read succeeded: a failed gat
	// must not extend — or, with a negative exptime, destroy — a value
	// the client never received.
	if touch {
		sh.stats.touchHits.Add(1)
		sh.setDeadline(e, expireAt)
		if s.mlog != nil {
			s.mlog.LogTouch(key, expireAt)
		}
	}
	return out, true, nil
}

// Del removes key through the worker's session, reporting whether it
// existed. A dead (expired) entry is reclaimed but reported as a miss,
// like memcached's delete of an expired item.
func (s *ShardedStore) Del(sess Session, key string) (bool, error) {
	return s.del(s.shardFor(key), unsafeKeyBytes(key))
}

// DelBytes is Del for a byte-slice key.
func (s *ShardedStore) DelBytes(sess Session, key []byte) (bool, error) {
	return s.del(s.shardForB(key), key)
}

func (s *ShardedStore) del(sh *shard, key []byte) (bool, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := s.lookupLockedB(sh, key, s.now())
	if !ok {
		sh.stats.deleteMisses.Add(1)
		return false, nil
	}
	sh.stats.deleteHits.Add(1)
	s.removeLocked(sh, e)
	if s.mlog != nil {
		s.mlog.LogDelete(key)
	}
	return true, nil
}

// SweepExpired scans up to budget entries per shard and reclaims those
// past their deadline, returning the number reclaimed. Bounded scans over
// Go's randomized map iteration order make repeated calls a probabilistic
// crawler over the whole keyspace, so dead items release heap even if
// never accessed again — which matters here more than in stock memcached,
// because unreclaimed bytes hold their sub-heaps hostage against the
// defrag controller's truncation.
func (s *ShardedStore) SweepExpired(budget int) int {
	now := s.now()
	fa := s.flushAt.Load()
	flushDue := fa != 0 && now.UnixNano() >= fa
	reclaimed := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		if flushDue && sh.flushedFor < fa {
			// A flush_all epoch has passed that this shard hasn't been
			// swept for: one full scan reclaims everything the epoch
			// killed (a flush is a rare admin event; one O(shard) walk is
			// the whole cost), then the shard drops back to the
			// budget-bounded crawl.
			for _, e := range sh.index {
				if s.deadAt(e, now) {
					s.removeLocked(sh, e)
					sh.stats.expired.Add(1)
					reclaimed++
				}
			}
			sh.flushedFor = fa
			sh.mu.Unlock()
			continue
		}
		// TTL-free shards are skipped outright, so workloads that never
		// set an exptime pay nothing for the sweep.
		if sh.ttl == 0 {
			sh.mu.Unlock()
			continue
		}
		scanned := 0
		for _, e := range sh.index {
			if scanned >= budget {
				break
			}
			scanned++
			if s.deadAt(e, now) {
				s.removeLocked(sh, e)
				sh.stats.expired.Add(1)
				reclaimed++
			}
		}
		sh.mu.Unlock()
	}
	s.sweeps.Add(1)
	return reclaimed
}

// Maintain advances the backend's background machinery to simulated time
// now and runs one expiry-sweep increment, returning pause time incurred.
func (s *ShardedStore) Maintain(now time.Duration) time.Duration {
	pause := s.backend.Maintain(now)
	s.SweepExpired(sweepBudgetPerShard)
	return pause
}

// Len returns the total number of keys.
func (s *ShardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += int(sh.stats.keys.Load())
	}
	return n
}

// Snapshot aggregates the per-shard counters with the backend's memory
// metrics. The counters are atomics, so the aggregation takes no shard
// lock and never stalls the request path; the result is a relaxed cut —
// the same guarantee memcached's `stats` gives.
func (s *ShardedStore) Snapshot() StatsSnapshot {
	var out StatsSnapshot
	for _, sh := range s.shards {
		sh.stats.addTo(&out)
	}
	out.ExpirySweeps = s.sweeps.Load()
	out.Bytes = uint64(s.used.Load())
	out.LimitMaxbytes = s.maxMemory
	out.Used = s.backend.UsedBytes()
	out.RSS = s.backend.RSS()
	return out
}

// ResetStats zeroes the operation counters on every shard plus the
// sweep count — memcached's `stats reset`. Gauges (live keys, charged
// bytes, the ceiling) are state, not statistics, and are untouched.
func (s *ShardedStore) ResetStats() {
	for _, sh := range s.shards {
		sh.stats.reset()
	}
	s.sweeps.Store(0)
}

// ItemsStats is one shard's row set for the `stats items`-style
// per-state accounting: live-item counts and bytes alongside the
// pressure counters, plus the age of the LRU tail.
type ItemsStats struct {
	// Number is the live-entry count; Bytes their charged total.
	Number int
	Bytes  uint64
	// AgeSeconds is how long the LRU tail has gone untouched (0 when
	// the shard is empty).
	AgeSeconds float64
	// NumberWithTTL counts live entries carrying a deadline;
	// NumberFetched counts live entries read at least once since stored.
	NumberWithTTL int
	NumberFetched int
	// Pressure and expiry counters, per shard (see StatsSnapshot).
	Evictions        int64
	Reclaimed        int64
	EvictedUnfetched int64
	Expired          int64
}

// ItemsSnapshot returns per-shard item accounting — the payload of the
// server's `stats items`. Each shard is locked briefly to read a
// consistent row; the live-entry walk for the fetched count is bounded
// by the shard's size (stats items is an admin command, not a hot
// path).
func (s *ShardedStore) ItemsSnapshot() []ItemsStats {
	now := s.now()
	out := make([]ItemsStats, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		row := ItemsStats{
			Number:           len(sh.index),
			Bytes:            sh.used,
			NumberWithTTL:    sh.ttl,
			Evictions:        sh.stats.evictions.Load(),
			Reclaimed:        sh.stats.reclaimed.Load(),
			EvictedUnfetched: sh.stats.evictedUnfetched.Load(),
			Expired:          sh.stats.expired.Load(),
		}
		if tail := sh.lru.back(); tail != nil {
			row.AgeSeconds = now.Sub(time.Unix(0, tail.lastUsed)).Seconds()
		}
		for _, e := range sh.index {
			if e.fetched {
				row.NumberFetched++
			}
		}
		sh.mu.Unlock()
		out[i] = row
	}
	return out
}
