// Package kv implements the in-memory key-value store the paper's
// defragmentation experiments run against: a Redis-like single-threaded
// store with a maxmemory limit and LRU eviction (Figures 9, 10, 11), and a
// memcached-like sharded concurrent mode (Figure 12).
//
// The store allocates every value from a pluggable Backend so the same
// workload can run over the baseline allocator, Redis-style activedefrag,
// Mesh, or Alaska+Anchorage — the four curves of Figure 9.
package kv

import (
	"sync"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/handle"
	"alaska/internal/mallocsim"
	"alaska/internal/mem"
	"alaska/internal/mesh"
	"alaska/internal/rt"
)

// Ref is an opaque reference to a stored block: a raw simulated address
// for conventional backends or a handle word for Anchorage.
type Ref uint64

// Session is a per-thread access context. Conventional backends need no
// state; the Anchorage backend carries an rt.Thread so reads and writes
// pin the handle for their duration.
type Session interface {
	// Read copies len(b) bytes at off within the block.
	Read(ref Ref, off uint64, b []byte) error
	// Write copies b to off within the block.
	Write(ref Ref, off uint64, b []byte) error
	// Safepoint polls for a runtime barrier (no-op outside Alaska).
	Safepoint()
	// EnterIdle marks the session's thread as blocked outside instrumented
	// code — e.g. waiting on a socket — so a stop-the-world barrier does
	// not wait for it (the external-thread rule of §4.1.3). The caller
	// must not touch the store between EnterIdle and ExitIdle. No-op
	// outside Alaska.
	EnterIdle()
	// ExitIdle returns the thread to instrumented code, parking first if a
	// barrier is in flight. No-op outside Alaska.
	ExitIdle()
	// Close releases the session.
	Close() error
}

// Backend is a heap implementation the store can run on.
type Backend interface {
	Name() string
	NewSession() Session
	Alloc(size uint64) (Ref, error)
	Free(ref Ref, size uint64) error
	// UsedBytes is the allocator-level live-byte count — what Redis calls
	// used_memory and compares against maxmemory.
	UsedBytes() uint64
	// RSS is the resident set under this backend — what Figure 9 plots.
	RSS() uint64
	// Maintain runs the backend's background machinery (defrag
	// controller, meshing, activedefrag cycle) up to simulated time now,
	// returning any stop-the-world pause incurred.
	Maintain(now time.Duration) time.Duration
}

// ---------------------------------------------------------------------------
// Baseline: conventional non-moving allocator, no background work.

// MallocBackend is the baseline backend.
type MallocBackend struct {
	Space *mem.Space
	A     *mallocsim.Allocator
}

// NewMallocBackend returns a baseline backend on a fresh space.
func NewMallocBackend() *MallocBackend {
	s := mem.NewSpace()
	return &MallocBackend{Space: s, A: mallocsim.New(s)}
}

// Name implements Backend.
func (b *MallocBackend) Name() string { return "baseline" }

// NewSession implements Backend.
func (b *MallocBackend) NewSession() Session { return rawSession{b.Space} }

// Alloc implements Backend.
func (b *MallocBackend) Alloc(size uint64) (Ref, error) {
	a, err := b.A.Alloc(size)
	return Ref(a), err
}

// Free implements Backend.
func (b *MallocBackend) Free(ref Ref, _ uint64) error { return b.A.Free(mem.Addr(ref)) }

// UsedBytes implements Backend.
func (b *MallocBackend) UsedBytes() uint64 { return b.A.ActiveBytes() }

// RSS implements Backend.
func (b *MallocBackend) RSS() uint64 { return b.Space.RSS() }

// Maintain implements Backend (no background work in the baseline).
func (b *MallocBackend) Maintain(time.Duration) time.Duration { return 0 }

// rawSession accesses raw addresses directly.
type rawSession struct{ space *mem.Space }

func (s rawSession) Read(ref Ref, off uint64, b []byte) error {
	return s.space.Read(mem.Addr(ref)+mem.Addr(off), b)
}
func (s rawSession) Write(ref Ref, off uint64, b []byte) error {
	return s.space.Write(mem.Addr(ref)+mem.Addr(off), b)
}
func (s rawSession) Safepoint()   {}
func (s rawSession) EnterIdle()   {}
func (s rawSession) ExitIdle()    {}
func (s rawSession) Close() error { return nil }

// ---------------------------------------------------------------------------
// activedefrag: the same allocator plus the Redis-style application-
// assisted defragmentation protocol.

// ActiveDefragBackend models Redis's activedefrag: on each maintenance
// cycle the *application* walks its own objects, asks the allocator for
// placement hints, reallocates hinted objects, rewrites its own pointers,
// and frees the originals. The Iterator field is that application
// knowledge — the "thousands of lines" Alaska makes unnecessary.
type ActiveDefragBackend struct {
	*MallocBackend
	// Iterator is supplied by the store; visit's update callback rewrites
	// the owning pointer.
	Iterator func(visit func(ref Ref, size uint64, update func(Ref)))
	// CycleInterval is how often a defrag cycle runs (Redis: ~100 ms
	// increments driven from serverCron, fragmentation polled at 1 Hz).
	CycleInterval time.Duration
	// Effort caps objects examined per cycle (CPU budget).
	Effort int
	// MinFrag gates defragmentation like Redis's
	// active-defrag-threshold-lower.
	MinFrag float64
	// MoveBandwidth converts moved bytes into pause time.
	MoveBandwidth float64

	nextCycle time.Duration
	// Moved counts relocated objects.
	Moved int64
}

// NewActiveDefragBackend wraps a fresh baseline backend with the
// activedefrag protocol.
func NewActiveDefragBackend() *ActiveDefragBackend {
	return &ActiveDefragBackend{
		MallocBackend: NewMallocBackend(),
		CycleInterval: 100 * time.Millisecond,
		Effort:        20000,
		MinFrag:       1.1,
		MoveBandwidth: 4 << 30,
	}
}

// Name implements Backend.
func (b *ActiveDefragBackend) Name() string { return "activedefrag" }

// Maintain implements Backend: one incremental defrag cycle.
func (b *ActiveDefragBackend) Maintain(now time.Duration) time.Duration {
	if b.Iterator == nil || now < b.nextCycle {
		return 0
	}
	b.nextCycle = now + b.CycleInterval
	active := b.A.ActiveBytes()
	if active == 0 {
		return 0
	}
	frag := float64(b.Space.RSS()) / float64(active)
	if frag < b.MinFrag {
		return 0
	}
	examined := 0
	var movedBytes uint64
	b.Iterator(func(ref Ref, size uint64, update func(Ref)) {
		if examined >= b.Effort {
			return
		}
		examined++
		old := mem.Addr(ref)
		if !b.A.DefragHint(old) {
			return
		}
		na, err := b.A.Alloc(size)
		if err != nil {
			return
		}
		buf := make([]byte, size)
		if b.Space.Read(old, buf) != nil {
			_ = b.A.Free(na)
			return
		}
		if b.Space.Write(na, buf) != nil {
			_ = b.A.Free(na)
			return
		}
		update(Ref(na))
		_ = b.A.Free(old)
		b.Moved++
		movedBytes += size
	})
	// activedefrag runs incrementally on the event loop: the "pause" is
	// the copy time for this cycle's batch.
	return time.Duration(float64(movedBytes) / b.MoveBandwidth * float64(time.Second))
}

// ---------------------------------------------------------------------------
// Mesh backend.

// MeshBackend runs the store over the Mesh allocator with periodic
// meshing rounds.
type MeshBackend struct {
	Space *mem.Space
	A     *mesh.Allocator
	// MeshInterval is how often a meshing round runs.
	MeshInterval time.Duration
	// Probes per round per size class.
	Probes int

	// mu serializes access to A: unlike mallocsim, the mesh allocator has
	// no internal locking (the figure experiments drive it from one
	// thread), and alaskad's connection goroutines alloc/free it
	// concurrently with the maintenance goroutine's meshing rounds.
	mu   sync.Mutex
	next time.Duration
}

// NewMeshBackend returns a Mesh backend on a fresh space.
func NewMeshBackend(seed int64) *MeshBackend {
	s := mem.NewSpace()
	return &MeshBackend{Space: s, A: mesh.New(s, seed), MeshInterval: 100 * time.Millisecond, Probes: 64}
}

// Name implements Backend.
func (b *MeshBackend) Name() string { return "mesh" }

// NewSession implements Backend.
func (b *MeshBackend) NewSession() Session { return rawSession{b.Space} }

// Alloc implements Backend.
func (b *MeshBackend) Alloc(size uint64) (Ref, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a, err := b.A.Alloc(size)
	return Ref(a), err
}

// Free implements Backend.
func (b *MeshBackend) Free(ref Ref, _ uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.A.Free(mem.Addr(ref))
}

// UsedBytes implements Backend.
func (b *MeshBackend) UsedBytes() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.A.ActiveBytes()
}

// RSS implements Backend (Mesh's page-sharing accounting).
func (b *MeshBackend) RSS() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.A.RSS()
}

// Maintain implements Backend: periodic meshing.
func (b *MeshBackend) Maintain(now time.Duration) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now < b.next {
		return 0
	}
	b.next = now + b.MeshInterval
	b.A.Mesh(b.Probes)
	return 0 // meshing is metadata-only; no copy pause
}

// ---------------------------------------------------------------------------
// Alaska + Anchorage backend.

// AnchorageBackend runs the store on handles over the Anchorage service
// with the §4.3 control algorithm.
type AnchorageBackend struct {
	Space   *mem.Space
	Runtime *rt.Runtime
	Svc     *anchorage.Service
	Ctl     *anchorage.Controller

	// primary is the thread used as barrier initiator in single-threaded
	// simulations (Maintain is called between ops on the app thread).
	primary *rt.Thread
}

// NewAnchorageBackend builds the full Alaska stack with an Anchorage
// service. The §7 revalidate fault handler is installed by default so the
// service's pause-free ConcurrentDefragPass can run against the backend;
// extra runtime options (e.g. rt.WithPinMode(rt.CountedPins), required
// when writers run concurrently with that pass — see alaskad) are
// appended and may override the defaults.
func NewAnchorageBackend(cfg anchorage.Config, opts ...rt.Option) (*AnchorageBackend, error) {
	space := mem.NewSpace()
	svc := anchorage.NewService(space, cfg)
	r, err := rt.New(space, svc,
		append([]rt.Option{rt.WithFaultHandler(anchorage.RevalidateFaultHandler())}, opts...)...)
	if err != nil {
		return nil, err
	}
	b := &AnchorageBackend{
		Space:   space,
		Runtime: r,
		Svc:     svc,
		Ctl:     anchorage.NewController(svc),
	}
	b.primary = r.NewThread()
	// The primary thread never executes instrumented code concurrently
	// with a barrier: it is either the barrier initiator (single-threaded
	// simulations, where it is the only mutator) or idle (concurrent
	// experiments, where workers run their own sessions). Marking it
	// external lets detached initiators stop the world without waiting
	// for a thread that polls no safepoints.
	b.primary.EnterExternal()
	return b, nil
}

// Name implements Backend.
func (b *AnchorageBackend) Name() string { return "anchorage" }

// NewSession implements Backend.
func (b *AnchorageBackend) NewSession() Session {
	return &handleSession{space: b.Space, th: b.Runtime.NewThread()}
}

// PrimarySession returns a session bound to the backend's primary thread
// (the barrier initiator for single-threaded simulations).
func (b *AnchorageBackend) PrimarySession() Session {
	return &handleSession{space: b.Space, th: b.primary, keep: true}
}

// Alloc implements Backend.
func (b *AnchorageBackend) Alloc(size uint64) (Ref, error) {
	h, err := b.Runtime.Halloc(size)
	return Ref(h), err
}

// Free implements Backend.
func (b *AnchorageBackend) Free(ref Ref, _ uint64) error {
	return b.Runtime.Hfree(handle.Handle(ref))
}

// UsedBytes implements Backend.
func (b *AnchorageBackend) UsedBytes() uint64 { return b.Svc.ActiveBytes() }

// RSS implements Backend.
func (b *AnchorageBackend) RSS() uint64 { return b.Space.RSS() }

// Maintain implements Backend: steps the Anchorage control algorithm,
// initiating barriers from the primary thread.
func (b *AnchorageBackend) Maintain(now time.Duration) time.Duration {
	return b.Ctl.Step(now, b.Runtime, b.primary)
}

// handleSession pins handles around each access.
type handleSession struct {
	space *mem.Space
	th    *rt.Thread
	keep  bool // primary thread is owned by the backend, not the session
}

func (s *handleSession) Read(ref Ref, off uint64, b []byte) error {
	a, unpin, err := s.th.Pin(handle.Handle(ref).Add(int64(off)))
	if err != nil {
		return err
	}
	defer unpin()
	return s.space.Read(a, b)
}

func (s *handleSession) Write(ref Ref, off uint64, b []byte) error {
	a, unpin, err := s.th.Pin(handle.Handle(ref).Add(int64(off)))
	if err != nil {
		return err
	}
	defer unpin()
	return s.space.Write(a, b)
}

func (s *handleSession) Safepoint() { s.th.Safepoint() }
func (s *handleSession) EnterIdle() { s.th.EnterExternal() }
func (s *handleSession) ExitIdle()  { s.th.ExitExternal() }

func (s *handleSession) Close() error {
	if s.keep {
		return nil
	}
	return s.th.Destroy()
}
