package kv

import "time"

// MutationLog receives every state-changing mutation the sharded store
// applies — the hook the persistence layer (internal/wal) hangs off.
// Calls are made with the owning shard's lock held, immediately after
// the mutation took effect, so the per-key record order on the log is
// exactly the apply order. Implementations must be fast, must not
// block, must not allocate (the hot-path 0 allocs/op invariant covers
// the hook call), and must not call back into the store. The key and
// value slices are only valid for the duration of the call.
//
// Lazy-expiry removals and ceiling evictions are deliberately NOT
// logged: expiry is deterministic from the absolute deadlines already
// on the log, and a resurrected evictee replays through the same
// ceiling-enforced insert path that evicted it.
type MutationLog interface {
	// LogSet records key=value stored with the given absolute expiry
	// deadline (zero = never) at storedAt. The value is the full stored
	// payload (for alaskad that includes the protocol header, so replay
	// restores flags and cas state byte-exactly).
	LogSet(key, value []byte, expireAt, storedAt time.Time)
	// LogDelete records an explicit, successful deletion of key.
	LogDelete(key []byte)
	// LogTouch records key's deadline moving to expireAt (zero = never).
	LogTouch(key []byte, expireAt time.Time)
	// LogFlushAll records the flush_all epoch moving to at — including
	// future-dated epochs from `flush_all <delay>`, so a scheduled flush
	// survives a restart.
	LogFlushAll(at time.Time)
}

// SetMutationLog attaches l to the store. Attach before serving traffic
// (after replay): the field is read without synchronization on the hot
// path.
func (s *ShardedStore) SetMutationLog(l MutationLog) { s.mlog = l }

// FlushEpoch returns the current flush_all epoch (zero time = none).
func (s *ShardedStore) FlushEpoch() time.Time {
	if fa := s.flushAt.Load(); fa != 0 {
		return time.Unix(0, fa)
	}
	return time.Time{}
}

// RestoreBytes is the replay entry point for a set record: it inserts
// key=value preserving the record's original storedAt (the flush_all
// epoch check compares against it) without logging the insert again and
// without touching the op counters. The ceiling is still enforced —
// replaying onto a smaller -max-memory just re-evicts.
func (s *ShardedStore) RestoreBytes(sess Session, key, value []byte, expireAt, storedAt time.Time) error {
	sh := s.shardForB(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.insertLocked(sh, sess, key, value, expireAt, storedAt, false)
}

// RestoreDeleteBytes is the replay entry point for a delete record:
// remove key if present (dead or alive), without logging or counting.
func (s *ShardedStore) RestoreDeleteBytes(key []byte) bool {
	sh := s.shardForB(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.index[string(key)]
	if !ok {
		return false
	}
	s.removeLocked(sh, e)
	return true
}

// RestoreTouchBytes is the replay entry point for a touch record: move
// key's deadline to expireAt if the entry is (still) live, without
// logging or counting.
func (s *ShardedStore) RestoreTouchBytes(key []byte, expireAt time.Time) bool {
	sh := s.shardForB(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.index[string(key)]
	if !ok || s.deadAt(e, s.now()) {
		return false
	}
	sh.setDeadline(e, expireAt)
	return true
}

// RestoreFlushEpoch is the replay entry point for a flush-epoch record.
func (s *ShardedStore) RestoreFlushEpoch(at time.Time) {
	if at.IsZero() {
		s.flushAt.Store(0)
		return
	}
	s.flushAt.Store(at.UnixNano())
}

// dumpMeta carries one entry's metadata from inside the shard lock to
// the emit call outside it.
type dumpMeta struct {
	key                string
	off, n             int
	expireAt, storedAt time.Time
}

// Dump streams every live entry through emit — the WAL compactor's
// source of truth when it rewrites the log to the live set. Per shard it
// copies the values into a reusable arena under the shard lock (the
// same item-reference discipline as getInto: a ref used outside the
// lock could be freed mid-read), then emits outside the lock and polls
// a safepoint, so a dump of a large shard never blocks a concurrent
// defrag barrier for long. The key/value slices passed to emit are only
// valid for the duration of the call. Entries dead at the start of the
// dump (expired, or killed by a reached flush epoch) are skipped.
func (s *ShardedStore) Dump(sess Session, emit func(key, value []byte, expireAt, storedAt time.Time) error) error {
	now := s.now()
	var vals []byte
	var metas []dumpMeta
	for _, sh := range s.shards {
		vals, metas = vals[:0], metas[:0]
		sh.mu.Lock()
		for _, e := range sh.index {
			if s.deadAt(e, now) {
				continue
			}
			off := len(vals)
			need := off + int(e.size)
			if cap(vals) < need {
				nv := make([]byte, need, 2*need)
				copy(nv, vals)
				vals = nv
			} else {
				vals = vals[:need]
			}
			if err := sess.Read(e.ref, 0, vals[off:need]); err != nil {
				sh.mu.Unlock()
				return err
			}
			metas = append(metas, dumpMeta{e.key, off, int(e.size), e.expireAt, e.storedAt})
		}
		sh.mu.Unlock()
		for i := range metas {
			m := &metas[i]
			if err := emit(unsafeKeyBytes(m.key), vals[m.off:m.off+m.n], m.expireAt, m.storedAt); err != nil {
				return err
			}
		}
		sess.Safepoint()
	}
	return nil
}
