package kv

import (
	"bytes"
	"testing"

	"alaska/internal/anchorage"
)

// TestShardedStoreDelAndModes exercises the memcached-shaped API the
// alaskad server depends on: delete, add, replace, and the counters.
func TestShardedStoreDelAndModes(t *testing.T) {
	backend, err := NewAnchorageBackend(anchorage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := NewShardedStore(backend, 4, 0)
	sess := st.NewSession()
	defer sess.Close()

	// add on a fresh key stores; add again does not.
	if stored, err := st.SetWith(sess, "k", []byte("v1"), SetAdd); err != nil || !stored {
		t.Fatalf("add fresh: stored=%v err=%v", stored, err)
	}
	if stored, err := st.SetWith(sess, "k", []byte("v2"), SetAdd); err != nil || stored {
		t.Fatalf("add existing: stored=%v err=%v", stored, err)
	}
	if v, _ := st.Get(sess, "k"); !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("value after failed add = %q, want v1", v)
	}

	// replace on an existing key stores; on a missing key does not.
	if stored, err := st.SetWith(sess, "k", []byte("v3"), SetReplace); err != nil || !stored {
		t.Fatalf("replace existing: stored=%v err=%v", stored, err)
	}
	if stored, err := st.SetWith(sess, "nope", []byte("x"), SetReplace); err != nil || stored {
		t.Fatalf("replace missing: stored=%v err=%v", stored, err)
	}
	if v, _ := st.Get(sess, "k"); !bytes.Equal(v, []byte("v3")) {
		t.Fatalf("value after replace = %q, want v3", v)
	}

	// delete: hit then miss; memory is returned.
	usedBefore := backend.UsedBytes()
	if ok, err := st.Del(sess, "k"); err != nil || !ok {
		t.Fatalf("del existing: ok=%v err=%v", ok, err)
	}
	if ok, err := st.Del(sess, "k"); err != nil || ok {
		t.Fatalf("del missing: ok=%v err=%v", ok, err)
	}
	if v, _ := st.Get(sess, "k"); v != nil {
		t.Fatalf("get after del = %q, want nil", v)
	}
	if used := backend.UsedBytes(); used >= usedBefore {
		t.Errorf("used bytes %d -> %d after del, want a decrease", usedBefore, used)
	}

	snap := st.Snapshot()
	if snap.Sets != 4 { // two adds + two replaces all count as set attempts
		t.Errorf("Sets = %d, want 4", snap.Sets)
	}
	if snap.Gets != 3 || snap.Hits != 2 || snap.Misses != 1 {
		t.Errorf("Gets/Hits/Misses = %d/%d/%d, want 3/2/1", snap.Gets, snap.Hits, snap.Misses)
	}
	if snap.DeleteHits != 1 || snap.DeleteMisses != 1 {
		t.Errorf("DeleteHits/Misses = %d/%d, want 1/1", snap.DeleteHits, snap.DeleteMisses)
	}
	if snap.Keys != 0 {
		t.Errorf("Keys = %d, want 0", snap.Keys)
	}
}

// TestShardedStoreEvictionCounter checks evictions are counted in the
// snapshot when MaxMemoryPerShard forces LRU eviction.
func TestShardedStoreEvictionCounter(t *testing.T) {
	st := NewShardedStore(NewMallocBackend(), 1, 4096)
	sess := st.NewSession()
	defer sess.Close()
	val := make([]byte, 1024)
	for i := 0; i < 16; i++ {
		if err := st.Set(sess, string(rune('a'+i)), val); err != nil {
			t.Fatal(err)
		}
	}
	snap := st.Snapshot()
	if snap.Evictions == 0 {
		t.Error("no evictions counted under a 4 KiB shard cap")
	}
	if snap.Used > 4096 {
		t.Errorf("used %d exceeds shard cap", snap.Used)
	}
}

// TestStoreSnapshot checks the single-threaded store's counters.
func TestStoreSnapshot(t *testing.T) {
	st := NewStore(NewMallocBackend(), 0)
	if err := st.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Del("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Del("a"); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.Sets != 1 || snap.Hits != 1 || snap.Misses != 1 ||
		snap.DeleteHits != 1 || snap.DeleteMisses != 1 || snap.Keys != 0 {
		t.Errorf("snapshot = %+v", snap)
	}
}

// TestRMWStatBumpParity guards the two RMWStat switches — the plain
// StatsSnapshot.bump (Store) and the atomic shardCounters.bump +
// shardCounters.addTo (ShardedStore) — against drifting apart: a stat
// wired into one but not the other would silently under-report. Every
// stat is bumped through both paths and the resulting snapshots must be
// identical, and every stat except StatNone must move exactly one
// counter by exactly one.
func TestRMWStatBumpParity(t *testing.T) {
	allStats := []RMWStat{
		StatNone, StatCasHit, StatCasBadval, StatCasMiss,
		StatIncrHit, StatIncrMiss, StatDecrHit, StatDecrMiss,
		StatTouchHit, StatTouchMiss,
	}
	total := func(s StatsSnapshot) int64 {
		return s.CasHits + s.CasBadval + s.CasMisses +
			s.IncrHits + s.IncrMisses + s.DecrHits + s.DecrMisses +
			s.TouchHits + s.TouchMisses
	}
	for _, stat := range allStats {
		var plain StatsSnapshot
		plain.bump(stat)
		var atomicC shardCounters
		atomicC.bump(stat)
		var viaAtomic StatsSnapshot
		atomicC.addTo(&viaAtomic)
		if plain != viaAtomic {
			t.Errorf("stat %d: StatsSnapshot.bump and shardCounters.bump/addTo disagree:\n plain  %+v\n atomic %+v",
				stat, plain, viaAtomic)
		}
		want := int64(1)
		if stat == StatNone {
			want = 0
		}
		if got := total(plain); got != want {
			t.Errorf("stat %d: bump moved %d counters, want %d", stat, got, want)
		}
	}
}
