package kv

import (
	"bytes"
	"testing"
	"time"

	"alaska/internal/anchorage"
)

func TestSessionOffsetAccess(t *testing.T) {
	anch, err := NewAnchorageBackend(anchorage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range map[string]Backend{
		"baseline": NewMallocBackend(), "mesh": NewMeshBackend(3), "anchorage": anch,
	} {
		t.Run(name, func(t *testing.T) {
			sess := b.NewSession()
			defer sess.Close()
			ref, err := b.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.Write(ref, 16, []byte("hello")); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 5)
			if err := sess.Read(ref, 16, got); err != nil {
				t.Fatal(err)
			}
			if string(got) != "hello" {
				t.Errorf("read %q", got)
			}
			// Offset 0 unaffected by offset-16 write beyond byte ranges.
			head := make([]byte, 16)
			if err := sess.Read(ref, 0, head); err != nil {
				t.Fatal(err)
			}
			for _, c := range head {
				if c != 0 {
					t.Errorf("head byte %d nonzero", c)
				}
			}
			if err := b.Free(ref, 64); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAnchorageSessionOutOfBoundsRejected(t *testing.T) {
	anch, err := NewAnchorageBackend(anchorage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess := anch.NewSession()
	defer sess.Close()
	ref, err := anch.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	// The pin path checks the intra-object offset against the HTE size —
	// the §3.2 in-bounds assumption, enforced.
	if err := sess.Write(ref, 64, []byte{1}); err == nil {
		t.Error("out-of-bounds session write accepted")
	}
}

func TestBackendNames(t *testing.T) {
	anch, err := NewAnchorageBackend(anchorage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for want, b := range map[string]Backend{
		"baseline":     NewMallocBackend(),
		"activedefrag": NewActiveDefragBackend(),
		"mesh":         NewMeshBackend(1),
		"anchorage":    anch,
	} {
		if got := b.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestActiveDefragNeedsIterator(t *testing.T) {
	b := NewActiveDefragBackend()
	// Without an application iterator nothing can move: Maintain is a
	// no-op — the point of the activedefrag comparison.
	if p := b.Maintain(time.Second); p != 0 {
		t.Errorf("Maintain without iterator paused %v", p)
	}
	if b.Moved != 0 {
		t.Error("moved objects without application knowledge")
	}
}

func TestActiveDefragHonoursMinFrag(t *testing.T) {
	b := NewActiveDefragBackend()
	b.MinFrag = 1000 // never triggers
	s := NewStore(b, 0)
	for i := 0; i < 100; i++ {
		if err := s.Set(string(rune('a'+i%26))+string(rune('0'+i/26)), bytes.Repeat([]byte{1}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	b.Maintain(time.Second)
	if b.Moved != 0 {
		t.Error("defragged below the fragmentation threshold")
	}
}

func TestMeshBackendMaintainMeshes(t *testing.T) {
	b := NewMeshBackend(11)
	s := NewStore(b, 0)
	// Create sparse spans.
	var keys []string
	for i := 0; i < 512; i++ {
		k := string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		if err := s.Set(k, bytes.Repeat([]byte{byte(i)}, 512)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	for i, k := range keys {
		if i%8 != 0 {
			if _, err := s.Del(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := b.RSS()
	var now time.Duration
	for i := 0; i < 50; i++ {
		now += b.MeshInterval
		b.Maintain(now)
	}
	if b.A.MeshCount == 0 {
		t.Error("maintain never meshed")
	}
	if b.RSS() >= before {
		t.Errorf("RSS %d -> %d after meshing", before, b.RSS())
	}
}

func TestAnchorageBackendMaintainDrivesController(t *testing.T) {
	cfg := anchorage.DefaultConfig()
	cfg.SubHeapSize = 64 * 1024
	cfg.FragHigh = 1.3
	cfg.FragLow = 1.05
	b, err := NewAnchorageBackend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(b, 0)
	// Fragment.
	var keys []string
	for i := 0; i < 2000; i++ {
		k := string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		if err := s.Set(k, bytes.Repeat([]byte{byte(i)}, 400)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	for i, k := range keys {
		if i%5 != 0 {
			if _, err := s.Del(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	var now time.Duration
	var paused time.Duration
	for i := 0; i < 100; i++ {
		now += 200 * time.Millisecond
		paused += s.Maintain(now)
	}
	if b.Svc.Passes == 0 {
		t.Error("controller never ran a pass")
	}
	if paused == 0 {
		t.Error("no pause time recorded")
	}
	// Survivors intact.
	for i, k := range keys {
		if i%5 != 0 {
			continue
		}
		v, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			t.Fatalf("key %q lost", k)
		}
		for _, c := range v {
			if c != byte(i) {
				t.Fatalf("key %q corrupted", k)
			}
		}
	}
}

func TestStoreUsedBytesTracksBackend(t *testing.T) {
	s := NewStore(NewMallocBackend(), 0)
	if err := s.Set("a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("b", make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	if got := s.UsedBytes(); got != 300 {
		t.Errorf("UsedBytes = %d, want 300", got)
	}
	if _, err := s.Del("a"); err != nil {
		t.Fatal(err)
	}
	if got := s.UsedBytes(); got != 200 {
		t.Errorf("UsedBytes = %d, want 200", got)
	}
}
