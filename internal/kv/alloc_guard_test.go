//go:build !race

package kv

// Allocation guard for the eviction path: churning sets against a full
// memory ceiling — every insert evicts a victim, often spilling across
// shards — must stay allocation-free apart from interning the brand-new
// key, because evicted entry structs are recycled through the shard
// free lists and the intrusive LRU links without node allocations.
// (Excluded under -race: the detector's instrumentation allocates.)

import (
	"strconv"
	"testing"
	"time"
)

func TestAllocEvictionChurnSet(t *testing.T) {
	const valLen = 256
	keys := make([][]byte, 4096)
	for i := range keys {
		keys[i] = []byte("churn" + strconv.Itoa(10000+i))
	}
	ceiling := 64 * entryCost(len(keys[0]), valLen)
	s := NewShardedStore(NewMallocBackend(), 8, ceiling)
	sess := s.NewSession()
	defer sess.Close()
	val := make([]byte, valLen)
	// Warm past the fill phase so every measured set runs under pressure.
	for i := 0; i < 512; i++ {
		if _, err := s.SetExBytes(sess, keys[i%len(keys)], val, SetAlways, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	i := 512
	avg := testing.AllocsPerRun(2000, func() {
		if _, err := s.SetExBytes(sess, keys[i%len(keys)], val, SetAlways, time.Time{}); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// The single permitted allocation is the new key's string intern.
	if avg > 1 {
		t.Fatalf("eviction-churn set allocates %.2f allocs/op, want <= 1 (key intern only)", avg)
	}
	if snap := s.Snapshot(); snap.Evictions == 0 {
		t.Fatal("no evictions; the guard measured an unpressured store")
	}
}
