package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/rt"
)

func backends(t *testing.T) map[string]Backend {
	t.Helper()
	anch, err := NewAnchorageBackend(anchorage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{
		"baseline":     NewMallocBackend(),
		"activedefrag": NewActiveDefragBackend(),
		"mesh":         NewMeshBackend(1),
		"anchorage":    anch,
	}
}

func TestSetGetDelAllBackends(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := NewStore(b, 0)
			if err := s.Set("k1", []byte("hello world")); err != nil {
				t.Fatal(err)
			}
			v, err := s.Get("k1")
			if err != nil {
				t.Fatal(err)
			}
			if string(v) != "hello world" {
				t.Errorf("Get = %q", v)
			}
			if v, _ := s.Get("missing"); v != nil {
				t.Error("missing key returned a value")
			}
			ok, err := s.Del("k1")
			if err != nil || !ok {
				t.Errorf("Del = %v, %v", ok, err)
			}
			if v, _ := s.Get("k1"); v != nil {
				t.Error("deleted key still readable")
			}
			if ok, _ := s.Del("k1"); ok {
				t.Error("double delete reported success")
			}
		})
	}
}

func TestOverwriteReplacesValue(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := NewStore(b, 0)
			if err := s.Set("k", []byte("old-value-that-is-long")); err != nil {
				t.Fatal(err)
			}
			if err := s.Set("k", []byte("new")); err != nil {
				t.Fatal(err)
			}
			v, _ := s.Get("k")
			if string(v) != "new" {
				t.Errorf("Get after overwrite = %q", v)
			}
			if s.Len() != 1 {
				t.Errorf("Len = %d", s.Len())
			}
			if got := s.UsedBytes(); got != 3 {
				t.Errorf("UsedBytes = %d, want 3", got)
			}
		})
	}
}

func TestLRUEvictionUnderMaxMemory(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := NewStore(b, 10*1024)
			val := make([]byte, 1024)
			for i := 0; i < 20; i++ {
				if err := s.Set(fmt.Sprintf("key%02d", i), val); err != nil {
					t.Fatal(err)
				}
			}
			if s.UsedBytes() > 10*1024 {
				t.Errorf("UsedBytes %d exceeds maxmemory", s.UsedBytes())
			}
			if s.Evictions == 0 {
				t.Error("no evictions")
			}
			// Oldest keys evicted, newest retained.
			if v, _ := s.Get("key00"); v != nil {
				t.Error("LRU key survived")
			}
			if v, _ := s.Get("key19"); v == nil {
				t.Error("MRU key evicted")
			}
		})
	}
}

func TestGetRefreshesLRU(t *testing.T) {
	// Budget for exactly three entries of charged cost (value + 2-byte
	// key + EntryOverhead each).
	s := NewStore(NewMallocBackend(), 3*entryCost(2, 100))
	val := make([]byte, 100)
	for i := 0; i < 3; i++ {
		if err := s.Set(fmt.Sprintf("k%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 becomes LRU.
	if _, err := s.Get("k0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("k3", val); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k0"); v == nil {
		t.Error("recently-read key was evicted")
	}
	if v, _ := s.Get("k1"); v != nil {
		t.Error("LRU key survived")
	}
}

// Fragmentation-and-defrag integration: churn all four backends the same
// way; verify values; anchorage and activedefrag must end with lower RSS
// than baseline.
func TestDefragBackendsBeatBaseline(t *testing.T) {
	results := make(map[string]uint64)
	finals := make(map[string]*Store)
	for name, b := range backends(t) {
		s := NewStore(b, 4<<20) // 4 MiB maxmemory
		rng := rand.New(rand.NewSource(5))
		now := time.Duration(0)
		// Insert 3x the limit; every 20th key is "hot" and re-read
		// periodically so it survives LRU eviction. Hot survivors scatter
		// across the heap and pin pages a non-moving allocator can never
		// reclaim (the Redis-as-cache pattern behind Figure 9).
		var hot []string
		for i := 0; i < 24000; i++ {
			size := 200 + rng.Intn(400)
			if i > 12000 {
				size = 64 + rng.Intn(64)
			}
			key := fmt.Sprintf("key%07d", i)
			val := bytes.Repeat([]byte{byte(i)}, size)
			if err := s.Set(key, val); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if i%20 == 0 {
				hot = append(hot, key)
			}
			if i%500 == 499 {
				for _, k := range hot {
					if _, err := s.Get(k); err != nil {
						t.Fatalf("%s: hot get: %v", name, err)
					}
				}
			}
			now += 50 * time.Microsecond
			s.Maintain(now)
		}
		// Let maintenance settle.
		for i := 0; i < 100; i++ {
			now += 100 * time.Millisecond
			s.Maintain(now)
		}
		results[name] = s.RSS()
		finals[name] = s
	}
	if results["anchorage"] >= results["baseline"] {
		t.Errorf("anchorage RSS %d not below baseline %d", results["anchorage"], results["baseline"])
	}
	if results["activedefrag"] >= results["baseline"] {
		t.Errorf("activedefrag RSS %d not below baseline %d", results["activedefrag"], results["baseline"])
	}
	// Spot-check value integrity after all the moving.
	for name, s := range finals {
		checked := 0
		for i := 23999; i >= 0 && checked < 50; i-- {
			v, err := s.Get(fmt.Sprintf("key%07d", i))
			if err != nil {
				t.Fatalf("%s: get: %v", name, err)
			}
			if v == nil {
				continue
			}
			checked++
			for _, c := range v {
				if c != byte(i) {
					t.Fatalf("%s: key%07d corrupted", name, i)
				}
			}
		}
		if checked == 0 {
			t.Errorf("%s: no keys survived to check", name)
		}
	}
}

func TestShardedStoreConcurrent(t *testing.T) {
	anch, err := NewAnchorageBackend(anchorage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range map[string]Backend{"baseline": NewMallocBackend(), "anchorage": anch} {
		t.Run(name, func(t *testing.T) {
			st := NewShardedStore(b, 8, 0)
			const nWorkers = 4
			var wg sync.WaitGroup
			for w := 0; w < nWorkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sess := st.NewSession()
					defer sess.Close()
					for i := 0; i < 500; i++ {
						key := fmt.Sprintf("w%d-k%d", w, i%50)
						val := []byte(fmt.Sprintf("value-%d-%d", w, i))
						if err := st.Set(sess, key, val); err != nil {
							t.Errorf("set: %v", err)
							return
						}
						got, err := st.Get(sess, key)
						if err != nil {
							t.Errorf("get: %v", err)
							return
						}
						if !bytes.Equal(got, val) {
							t.Errorf("read back %q, want %q", got, val)
							return
						}
						sess.Safepoint()
					}
				}(w)
			}
			wg.Wait()
			if st.Len() != nWorkers*50 {
				t.Errorf("Len = %d, want %d", st.Len(), nWorkers*50)
			}
		})
	}
}

// Concurrent workers + periodic relocation barriers: reads must never see
// torn or stale data.
func TestShardedStoreWithConcurrentDefrag(t *testing.T) {
	anch, err := NewAnchorageBackend(anchorage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := NewShardedStore(anch, 8, 0)
	quit := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := st.NewSession()
			defer sess.Close()
			for i := 0; ; i++ {
				select {
				case <-quit:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", w, i%100)
				want := []byte(fmt.Sprintf("stable-value-%d-%d", w, i%100))
				if err := st.Set(sess, key, want); err != nil {
					t.Errorf("set: %v", err)
					return
				}
				got, err := st.Get(sess, key)
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if got != nil && !bytes.Equal(got, want) {
					t.Errorf("torn read: %q vs %q", got, want)
					return
				}
				sess.Safepoint()
			}
		}(w)
	}
	// Pauser: relocate up to 64 KiB every few hundred microseconds. The
	// primary thread never runs mutator code here, so it initiates.
	for i := 0; i < 50; i++ {
		anch.Runtime.Barrier(anch.primary, func(scope *rt.BarrierScope) {
			anch.Svc.DefragPass(scope, 64<<10)
		})
		time.Sleep(200 * time.Microsecond)
	}
	close(quit)
	wg.Wait()
}
