package kv

// Tests for the read-modify-write primitive (Apply/CompareAndSwap) and
// TTL machinery (lazy expiry, Touch, SweepExpired) on both stores, across
// every backend.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// manualClock is a settable clock for deterministic expiry tests.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestShardedApplyRMW(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			st := NewShardedStore(b, 4, 0)
			sess := st.NewSession()
			defer sess.Close()

			// Apply on a missing key sees found == false.
			called := false
			if err := st.Apply(sess, "k", func(old []byte, found bool) ApplyOp {
				called = true
				if found || old != nil {
					t.Errorf("missing key: found=%v old=%v", found, old)
				}
				return ApplyOp{}
			}); err != nil || !called {
				t.Fatalf("apply miss: called=%v err=%v", called, err)
			}

			// ApplyStore inserts, then mutates in place.
			if err := st.Set(sess, "k", []byte("abc")); err != nil {
				t.Fatal(err)
			}
			if err := st.Apply(sess, "k", func(old []byte, found bool) ApplyOp {
				if !found || string(old) != "abc" {
					t.Errorf("apply read: found=%v old=%q", found, old)
				}
				return ApplyOp{Verdict: ApplyStore, Value: append(old, 'd')}
			}); err != nil {
				t.Fatal(err)
			}
			if v, _ := st.Get(sess, "k"); string(v) != "abcd" {
				t.Errorf("after apply: %q", v)
			}

			// ApplyDelete removes; ApplyNone leaves untouched.
			if err := st.Apply(sess, "k", func([]byte, bool) ApplyOp {
				return ApplyOp{Verdict: ApplyDelete}
			}); err != nil {
				t.Fatal(err)
			}
			if v, _ := st.Get(sess, "k"); v != nil {
				t.Errorf("after apply-delete: %q", v)
			}
		})
	}
}

func TestShardedCompareAndSwap(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			st := NewShardedStore(b, 4, 0)
			sess := st.NewSession()
			defer sess.Close()
			if _, found, err := st.CompareAndSwap(sess, "k", []byte("x"), []byte("y")); err != nil || found {
				t.Fatalf("cas on missing: found=%v err=%v", found, err)
			}
			if err := st.Set(sess, "k", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if swapped, _, _ := st.CompareAndSwap(sess, "k", []byte("stale"), []byte("v2")); swapped {
				t.Error("cas with stale expected value swapped")
			}
			if v, _ := st.Get(sess, "k"); string(v) != "v1" {
				t.Errorf("after failed cas: %q", v)
			}
			if swapped, _, _ := st.CompareAndSwap(sess, "k", []byte("v1"), []byte("v2")); !swapped {
				t.Error("cas with matching expected value did not swap")
			}
			if v, _ := st.Get(sess, "k"); string(v) != "v2" {
				t.Errorf("after cas: %q", v)
			}
			snap := st.Snapshot()
			if snap.CasHits != 1 || snap.CasBadval != 1 || snap.CasMisses != 1 {
				t.Errorf("cas counters: hits=%d badval=%d misses=%d, want 1/1/1",
					snap.CasHits, snap.CasBadval, snap.CasMisses)
			}
		})
	}
}

// TestShardedCASContention: concurrent CompareAndSwap over one key must
// admit exactly one winner per generation — final value equals the
// total number of successful swaps.
func TestShardedCASContention(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			st := NewShardedStore(b, 4, 0)
			init := st.NewSession()
			if err := st.Set(init, "ctr", []byte("0")); err != nil {
				t.Fatal(err)
			}
			init.Close()

			workers, attempts := 8, 200
			if testing.Short() {
				attempts = 50
			}
			wins := make([]int64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sess := st.NewSession()
					defer sess.Close()
					for i := 0; i < attempts; i++ {
						cur, err := st.Get(sess, "ctr")
						if err != nil || cur == nil {
							t.Errorf("worker %d: get: %q %v", w, cur, err)
							return
						}
						var n int64
						fmt.Sscanf(string(cur), "%d", &n)
						next := []byte(fmt.Sprintf("%d", n+1))
						swapped, found, err := st.CompareAndSwap(sess, "ctr", cur, next)
						if err != nil || !found {
							t.Errorf("worker %d: cas: found=%v err=%v", w, found, err)
							return
						}
						if swapped {
							wins[w]++
						}
					}
				}(w)
			}
			wg.Wait()
			var total int64
			for _, n := range wins {
				total += n
			}
			sess := st.NewSession()
			defer sess.Close()
			final, _ := st.Get(sess, "ctr")
			var got int64
			fmt.Sscanf(string(final), "%d", &got)
			if got != total {
				t.Errorf("final counter %d != %d successful swaps (lost or duplicated generations)", got, total)
			}
		})
	}
}

func TestShardedExpiry(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			clk := newManualClock()
			st := NewShardedStore(b, 4, 0)
			st.Clock = clk.Now
			sess := st.NewSession()
			defer sess.Close()

			deadline := clk.Now().Add(5 * time.Second)
			if _, err := st.SetEx(sess, "k", []byte("v"), SetAlways, deadline); err != nil {
				t.Fatal(err)
			}
			if v, _ := st.Get(sess, "k"); string(v) != "v" {
				t.Fatalf("before deadline: %q", v)
			}
			clk.Advance(5 * time.Second) // exactly at the deadline = dead
			if v, _ := st.Get(sess, "k"); v != nil {
				t.Errorf("at deadline: still alive: %q", v)
			}
			snap := st.Snapshot()
			if snap.Expired != 1 {
				t.Errorf("Expired = %d, want 1", snap.Expired)
			}
			if snap.Keys != 0 {
				t.Errorf("Keys = %d after lazy expiry, want 0", snap.Keys)
			}

			// add resurrects an expired key; replace must not.
			if _, err := st.SetEx(sess, "k", []byte("v"), SetAlways, clk.Now().Add(time.Second)); err != nil {
				t.Fatal(err)
			}
			clk.Advance(2 * time.Second)
			if stored, _ := st.SetEx(sess, "k", []byte("r"), SetReplace, time.Time{}); stored {
				t.Error("replace revived an expired key")
			}
			if stored, _ := st.SetEx(sess, "k", []byte("a"), SetAdd, time.Time{}); !stored {
				t.Error("add refused over an expired key")
			}

			// Touch moves the deadline; Del of a dead key is a miss.
			if _, err := st.SetEx(sess, "t", []byte("v"), SetAlways, clk.Now().Add(time.Second)); err != nil {
				t.Fatal(err)
			}
			if ok, _ := st.Touch(sess, "t", clk.Now().Add(10*time.Second)); !ok {
				t.Error("touch on live key missed")
			}
			clk.Advance(5 * time.Second)
			if v, _ := st.Get(sess, "t"); string(v) != "v" {
				t.Errorf("touched key died early: %q", v)
			}
			clk.Advance(6 * time.Second)
			if existed, _ := st.Del(sess, "t"); existed {
				t.Error("delete of expired key reported a hit")
			}
			if ok, _ := st.Touch(sess, "t", time.Time{}); ok {
				t.Error("touch on dead key reported a hit")
			}
		})
	}
}

func TestShardedSweepReclaims(t *testing.T) {
	clk := newManualClock()
	b := NewMallocBackend()
	st := NewShardedStore(b, 4, 0)
	st.Clock = clk.Now
	sess := st.NewSession()
	defer sess.Close()

	const n = 200
	deadline := clk.Now().Add(time.Second)
	for i := 0; i < n; i++ {
		if _, err := st.SetEx(sess, fmt.Sprintf("k%03d", i), bytes.Repeat([]byte("x"), 64), SetAlways, deadline); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.SetEx(sess, "keeper", []byte("alive"), SetAlways, time.Time{}); err != nil {
		t.Fatal(err)
	}
	used := b.UsedBytes()
	clk.Advance(2 * time.Second)

	// No accesses: only the sweep may reclaim. The per-shard budget means
	// several rounds; bound them generously.
	reclaimed := 0
	for i := 0; i < 100 && reclaimed < n; i++ {
		reclaimed += st.SweepExpired(16)
	}
	if reclaimed != n {
		t.Fatalf("sweep reclaimed %d, want %d", reclaimed, n)
	}
	snap := st.Snapshot()
	if snap.Expired != n {
		t.Errorf("Expired = %d, want %d", snap.Expired, n)
	}
	if snap.ExpirySweeps == 0 {
		t.Error("ExpirySweeps = 0")
	}
	if snap.Keys != 1 {
		t.Errorf("Keys = %d, want 1 (the unexpiring keeper)", snap.Keys)
	}
	if b.UsedBytes() >= used {
		t.Errorf("sweep released no heap: used %d -> %d", used, b.UsedBytes())
	}
	if v, _ := st.Get(sess, "keeper"); string(v) != "alive" {
		t.Errorf("keeper damaged by sweep: %q", v)
	}
}

func TestStoreApplyAndExpiry(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			clk := newManualClock()
			s := NewStore(b, 0)
			s.Clock = clk.Now

			// Apply RMW on the single-threaded store.
			if err := s.Set("k", []byte("1")); err != nil {
				t.Fatal(err)
			}
			if err := s.Apply("k", func(old []byte, found bool) ApplyOp {
				if !found {
					t.Error("apply missed a live key")
				}
				return ApplyOp{Verdict: ApplyStore, Value: append(old, '2')}
			}); err != nil {
				t.Fatal(err)
			}
			if v, _ := s.Get("k"); string(v) != "12" {
				t.Errorf("after apply: %q", v)
			}
			if swapped, _, _ := s.CompareAndSwap("k", []byte("12"), []byte("3")); !swapped {
				t.Error("store cas did not swap")
			}

			// Expiry: lazy on get, eager via sweep (wired into Maintain).
			if err := s.SetEx("dead", []byte("x"), clk.Now().Add(time.Second)); err != nil {
				t.Fatal(err)
			}
			clk.Advance(2 * time.Second)
			s.Maintain(0)
			snap := s.Snapshot()
			if snap.Expired != 1 || snap.ExpirySweeps == 0 {
				t.Errorf("after Maintain: Expired=%d ExpirySweeps=%d", snap.Expired, snap.ExpirySweeps)
			}
			if v, _ := s.Get("dead"); v != nil {
				t.Errorf("dead key still readable: %q", v)
			}
			// KeepExpire: RMW preserves the deadline.
			if err := s.SetEx("ttl", []byte("5"), clk.Now().Add(10*time.Second)); err != nil {
				t.Fatal(err)
			}
			if err := s.Apply("ttl", func(old []byte, found bool) ApplyOp {
				return ApplyOp{Verdict: ApplyStore, Value: []byte("6"), KeepExpire: true}
			}); err != nil {
				t.Fatal(err)
			}
			clk.Advance(11 * time.Second)
			if v, _ := s.Get("ttl"); v != nil {
				t.Errorf("KeepExpire lost the deadline: %q survived", v)
			}
		})
	}
}
