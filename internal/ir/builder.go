package ir

// Builder provides a fluent construction API for IR functions, used by the
// workload models and tests. It appends instructions at the end of a
// current block.
type Builder struct {
	Fn  *Func
	cur *Block
}

// NewBuilder returns a builder positioned at the function's entry block.
func NewBuilder(f *Func) *Builder {
	return &Builder{Fn: f, cur: f.Entry()}
}

// Block returns the current insertion block.
func (bu *Builder) Block() *Block { return bu.cur }

// SetBlock moves the insertion point to the end of b.
func (bu *Builder) SetBlock(b *Block) { bu.cur = b }

// NewBlock creates a block and returns it without changing the insertion
// point.
func (bu *Builder) NewBlock(name string) *Block { return bu.Fn.NewBlock(name) }

// Const materializes the integer constant c.
func (bu *Builder) Const(c int64) *Instr {
	i := bu.Fn.newInstr(OpConst)
	i.Const = c
	return bu.cur.append(i)
}

// Param reads parameter n with type ty.
func (bu *Builder) Param(n int, ty Type) *Instr {
	i := bu.Fn.newInstr(OpParam)
	i.Const = int64(n)
	i.Ty = ty
	if n < len(bu.Fn.ParamTypes) {
		bu.Fn.ParamTypes[n] = ty
	}
	return bu.cur.append(i)
}

// Bin emits a binary ALU operation.
func (bu *Builder) Bin(op int, a, b *Instr) *Instr {
	i := bu.Fn.newInstr(OpBin)
	i.Sub = op
	i.Args = []*Instr{a, b}
	return bu.cur.append(i)
}

// Add emits a + b.
func (bu *Builder) Add(a, b *Instr) *Instr { return bu.Bin(BinAdd, a, b) }

// Sub emits a - b.
func (bu *Builder) Sub(a, b *Instr) *Instr { return bu.Bin(BinSub, a, b) }

// Mul emits a * b.
func (bu *Builder) Mul(a, b *Instr) *Instr { return bu.Bin(BinMul, a, b) }

// Cmp emits a comparison producing 0 or 1.
func (bu *Builder) Cmp(pred int, a, b *Instr) *Instr {
	i := bu.Fn.newInstr(OpCmp)
	i.Sub = pred
	i.Args = []*Instr{a, b}
	return bu.cur.append(i)
}

// Phi emits a phi node. Incoming values must be supplied in the order of
// the block's final predecessor list (fix up with SetPhiArgs if preds are
// wired later).
func (bu *Builder) Phi(ty Type, args ...*Instr) *Instr {
	i := bu.Fn.newInstr(OpPhi)
	i.Ty = ty
	i.Args = args
	return bu.cur.append(i)
}

// GEP displaces pointer base by off bytes.
func (bu *Builder) GEP(base, off *Instr) *Instr {
	i := bu.Fn.newInstr(OpGEP)
	i.Ty = Ptr
	i.Args = []*Instr{base, off}
	return bu.cur.append(i)
}

// Load reads a value of type ty from addr.
func (bu *Builder) Load(addr *Instr, ty Type) *Instr {
	i := bu.Fn.newInstr(OpLoad)
	i.Ty = ty
	i.Args = []*Instr{addr}
	return bu.cur.append(i)
}

// Store writes val to addr.
func (bu *Builder) Store(addr, val *Instr) *Instr {
	i := bu.Fn.newInstr(OpStore)
	i.Args = []*Instr{addr, val}
	return bu.cur.append(i)
}

// Alloc emits a heap allocation of size bytes.
func (bu *Builder) Alloc(size *Instr) *Instr {
	i := bu.Fn.newInstr(OpAlloc)
	i.Ty = Ptr
	i.Args = []*Instr{size}
	return bu.cur.append(i)
}

// Free emits a heap free of ptr.
func (bu *Builder) Free(ptr *Instr) *Instr {
	i := bu.Fn.newInstr(OpFree)
	i.Args = []*Instr{ptr}
	return bu.cur.append(i)
}

// Call emits a call to callee. ty is the result type.
func (bu *Builder) Call(callee string, ty Type, args ...*Instr) *Instr {
	i := bu.Fn.newInstr(OpCall)
	i.Callee = callee
	i.Ty = ty
	i.Args = args
	return bu.cur.append(i)
}

// Ret emits a return. val may be nil for a void return.
func (bu *Builder) Ret(val *Instr) *Instr {
	i := bu.Fn.newInstr(OpRet)
	if val != nil {
		i.Args = []*Instr{val}
	}
	return bu.cur.append(i)
}

// Br emits an unconditional branch.
func (bu *Builder) Br(target *Block) *Instr {
	i := bu.Fn.newInstr(OpBr)
	i.Targets = []*Block{target}
	return bu.cur.append(i)
}

// CondBr branches to then if cond != 0, else to els.
func (bu *Builder) CondBr(cond *Instr, then, els *Block) *Instr {
	i := bu.Fn.newInstr(OpCondBr)
	i.Args = []*Instr{cond}
	i.Targets = []*Block{then, els}
	return bu.cur.append(i)
}

// CountedLoop emits the canonical loop skeleton
//
//	preheader: br header
//	header:    i = phi [start, latchI] ; cond = i < end ; condbr body, exit
//	body:      ... (builder positioned here; body must Br to latch)
//	latch:     latchI = i + step ; br header
//	exit:      (returned)
//
// It returns the induction variable, the latch block, and the exit block.
// The caller emits the body at the current insertion point and must call
// CloseLoop(latch) when done.
type CountedLoop struct {
	IndVar *Instr
	Header *Block
	Body   *Block
	Latch  *Block
	Exit   *Block
	incr   *Instr
}

// Loop starts a counted loop from start to end (exclusive) with the given
// step. The builder is left positioned in the body block.
func (bu *Builder) Loop(name string, start, end, step *Instr) *CountedLoop {
	header := bu.NewBlock(name + ".header")
	body := bu.NewBlock(name + ".body")
	latch := bu.NewBlock(name + ".latch")
	exit := bu.NewBlock(name + ".exit")

	// Current block becomes the preheader.
	bu.Br(header)

	bu.SetBlock(header)
	iv := bu.Phi(Int, start, nil) // second arg patched below
	cond := bu.Cmp(CmpLT, iv, end)
	bu.CondBr(cond, body, exit)

	bu.SetBlock(latch)
	incr := bu.Add(iv, step)
	bu.Br(header)
	iv.Args[1] = incr

	bu.SetBlock(body)
	return &CountedLoop{IndVar: iv, Header: header, Body: body, Latch: latch, Exit: exit, incr: incr}
}

// Close terminates the loop body by branching to the latch and positions
// the builder at the loop exit.
func (bu *Builder) Close(l *CountedLoop) {
	bu.Br(l.Latch)
	bu.SetBlock(l.Exit)
}
