package ir

// This file implements the analyses Algorithm 1 consumes: dominator trees
// (Cooper–Harvey–Kennedy iterative algorithm), the natural-loop forest
// with preheaders (LLVM's canonical loop form, which the paper's pass
// requires via -loop-simplify), and per-block liveness for release
// insertion and pin-slot interference.

// DomTree is a dominator tree over a function's blocks.
type DomTree struct {
	fn *Func
	// idom[b.Index] is the immediate dominator; entry's idom is itself.
	idom []int
	// rpo order and positions for intersection.
	rpoPos []int
	// children of each block in the tree.
	children [][]int
}

// BuildDomTree computes the dominator tree. The function's CFG state must
// be current (call Finish after mutation).
func BuildDomTree(f *Func) *DomTree {
	f.Finish()
	n := len(f.Blocks)
	// Reverse postorder.
	visited := make([]bool, n)
	var order []int
	var dfs func(b *Block)
	dfs = func(b *Block) {
		visited[b.Index] = true
		for _, s := range b.Succs() {
			if !visited[s.Index] {
				dfs(s)
			}
		}
		order = append(order, b.Index)
	}
	dfs(f.Blocks[0])
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoPos := make([]int, n)
	for i := range rpoPos {
		rpoPos[i] = -1
	}
	for pos, b := range order {
		rpoPos[b] = pos
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0

	intersect := func(a, b int) int {
		for a != b {
			for rpoPos[a] > rpoPos[b] {
				a = idom[a]
			}
			for rpoPos[b] > rpoPos[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, bi := range order {
			if bi == 0 {
				continue
			}
			b := f.Blocks[bi]
			newIdom := -1
			for _, p := range b.Preds {
				pi := p.Index
				if rpoPos[pi] < 0 || idom[pi] < 0 {
					continue // unreachable or unprocessed predecessor
				}
				if newIdom < 0 {
					newIdom = pi
				} else {
					newIdom = intersect(pi, newIdom)
				}
			}
			if newIdom >= 0 && idom[bi] != newIdom {
				idom[bi] = newIdom
				changed = true
			}
		}
	}

	dt := &DomTree{fn: f, idom: idom, rpoPos: rpoPos, children: make([][]int, n)}
	for bi := 1; bi < n; bi++ {
		if idom[bi] >= 0 {
			dt.children[idom[bi]] = append(dt.children[idom[bi]], bi)
		}
	}
	return dt
}

// IDom returns the immediate dominator of b (b itself for the entry), or
// nil if b is unreachable.
func (dt *DomTree) IDom(b *Block) *Block {
	if dt.idom[b.Index] < 0 {
		return nil
	}
	return dt.fn.Blocks[dt.idom[b.Index]]
}

// Dominates reports whether a dominates b (reflexively).
func (dt *DomTree) Dominates(a, b *Block) bool {
	if dt.rpoPos[b.Index] < 0 {
		return false // unreachable
	}
	x := b.Index
	for {
		if x == a.Index {
			return true
		}
		if x == 0 {
			return false
		}
		nx := dt.idom[x]
		if nx < 0 || nx == x {
			return x == a.Index
		}
		x = nx
	}
}

// InstrDominates reports whether instruction a dominates instruction b:
// either a's block strictly dominates b's, or they share a block and a
// appears first. An instruction does not dominate itself here.
func (dt *DomTree) InstrDominates(a, b *Instr) bool {
	if a.Block == b.Block {
		for _, i := range a.Block.Instrs {
			if i == a {
				return true
			}
			if i == b {
				return false
			}
		}
		return false
	}
	return dt.Dominates(a.Block, b.Block)
}

// Loop is a natural loop.
type Loop struct {
	Header *Block
	// Blocks contains all blocks in the loop, including the header.
	Blocks map[*Block]bool
	// Parent is the immediately enclosing loop, or nil.
	Parent *Loop
	// Children are the directly nested loops.
	Children []*Loop
	// Preheader is the unique out-of-loop predecessor of the header. The
	// forest builder guarantees it exists (creating one if needed), which
	// is the property -loop-simplify provides to the paper's pass.
	Preheader *Block
	// Latches are in-loop predecessors of the header (back-edge sources).
	Latches []*Block
	// Depth is the nesting depth (outermost = 1).
	Depth int
}

// Contains reports whether the loop body contains block b.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// ContainsInstr reports whether the loop body contains instruction i.
func (l *Loop) ContainsInstr(i *Instr) bool { return i.Block != nil && l.Blocks[i.Block] }

// LoopForest is the loop nesting forest of a function.
type LoopForest struct {
	// Top holds the outermost loops.
	Top []*Loop
	// ByHeader maps header blocks to their loops.
	ByHeader map[*Block]*Loop
	// innermost[b.Index] is the innermost loop containing the block.
	innermost []*Loop
}

// InnermostContaining returns the innermost loop containing b, or nil.
func (lf *LoopForest) InnermostContaining(b *Block) *Loop {
	if b == nil || b.Index >= len(lf.innermost) {
		return nil
	}
	return lf.innermost[b.Index]
}

// BuildLoopForest identifies natural loops from back edges (edges whose
// target dominates their source), nests them, and ensures every loop has a
// dedicated preheader, splitting the header's out-of-loop edges through a
// fresh block when necessary. Because preheader creation mutates the CFG,
// the caller's dominator tree is invalidated; BuildLoopForest returns a
// fresh one.
func BuildLoopForest(f *Func) (*LoopForest, *DomTree) {
	dt := BuildDomTree(f)

	// Collect back edges and loop bodies.
	var loops []*Loop
	byHeader := make(map[*Block]*Loop)
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if dt.Dominates(s, b) {
				// b -> s is a back edge; s is a header.
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
					byHeader[s] = l
					loops = append(loops, l)
				}
				l.Latches = append(l.Latches, b)
				// Natural loop body: all blocks that reach the latch
				// without passing through the header.
				var stack []*Block
				if !l.Blocks[b] {
					l.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range x.Preds {
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}

	// Nest loops: parent = smallest strictly-containing loop.
	for _, l := range loops {
		var parent *Loop
		for _, m := range loops {
			if m == l || !m.Blocks[l.Header] {
				continue
			}
			if parent == nil || len(m.Blocks) < len(parent.Blocks) {
				parent = m
			}
		}
		l.Parent = parent
	}
	lf := &LoopForest{ByHeader: byHeader}
	for _, l := range loops {
		if l.Parent == nil {
			lf.Top = append(lf.Top, l)
		} else {
			l.Parent.Children = append(l.Parent.Children, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, l := range lf.Top {
		setDepth(l, 1)
	}

	// Ensure preheaders (canonical loop form).
	changed := false
	for _, l := range loops {
		var outside []*Block
		for _, p := range l.Header.Preds {
			if !l.Blocks[p] {
				outside = append(outside, p)
			}
		}
		if len(outside) == 1 && len(outside[0].Succs()) == 1 {
			l.Preheader = outside[0]
			continue
		}
		// Split: create a preheader all outside edges route through.
		ph := f.NewBlock(l.Header.Name + ".preheader")
		br := f.newInstr(OpBr)
		br.Targets = []*Block{l.Header}
		ph.append(br)
		for _, p := range outside {
			t := p.Term()
			for ti, tgt := range t.Targets {
				if tgt == l.Header {
					t.Targets[ti] = ph
				}
			}
		}
		// Phi nodes in the header need no rewrite in this IR: the header's
		// predecessor order changes, so rebuild phi argument alignment by
		// remembering the old mapping.
		remapPhis(l.Header, outside, ph)
		l.Preheader = ph
		changed = true
	}
	if changed {
		f.Finish()
		dt = BuildDomTree(f)
	}

	// innermost-loop table.
	lf.innermost = make([]*Loop, len(f.Blocks))
	var mark func(l *Loop)
	mark = func(l *Loop) {
		for b := range l.Blocks {
			cur := lf.innermost[b.Index]
			if cur == nil || len(l.Blocks) < len(cur.Blocks) {
				lf.innermost[b.Index] = l
			}
		}
		for _, c := range l.Children {
			mark(c)
		}
	}
	for _, l := range lf.Top {
		mark(l)
	}
	return lf, dt
}

// remapPhis fixes the header's phi argument order after its out-of-loop
// predecessors are replaced by a single preheader block. Phi arguments
// from the removed predecessors must collapse to one argument; this IR
// only supports that when all outside predecessors supplied the same
// value, which holds for builder-generated CFGs (a single preheader
// already existed or there is a unique incoming value).
func remapPhis(header *Block, outside []*Block, ph *Block) {
	oldPreds := append([]*Block(nil), header.Preds...)
	for _, i := range header.Instrs {
		if i.Op != OpPhi {
			break
		}
		newArgs := make([]*Instr, 0, len(oldPreds))
		var outsideVal *Instr
		insideArgs := make(map[*Block]*Instr)
		for k, p := range oldPreds {
			isOutside := false
			for _, o := range outside {
				if p == o {
					isOutside = true
					break
				}
			}
			if isOutside {
				outsideVal = i.Args[k]
			} else {
				insideArgs[p] = i.Args[k]
			}
		}
		// New predecessor order after Finish: recompute lazily — here we
		// order as (existing inside preds in original order, then ph).
		for _, p := range oldPreds {
			if v, ok := insideArgs[p]; ok {
				newArgs = append(newArgs, v)
			}
		}
		newArgs = append(newArgs, outsideVal)
		i.Args = newArgs
	}
	_ = ph
}

// Liveness holds per-block live-in/live-out sets of instruction IDs.
type Liveness struct {
	LiveIn  []map[int]bool
	LiveOut []map[int]bool
}

// BuildLiveness computes backward liveness over instruction values. Phi
// uses are attributed to the corresponding predecessor's live-out, per the
// usual SSA convention.
func BuildLiveness(f *Func) *Liveness {
	f.Finish()
	n := len(f.Blocks)
	lv := &Liveness{
		LiveIn:  make([]map[int]bool, n),
		LiveOut: make([]map[int]bool, n),
	}
	for i := 0; i < n; i++ {
		lv.LiveIn[i] = make(map[int]bool)
		lv.LiveOut[i] = make(map[int]bool)
	}
	// use[b], def[b]: upward-exposed uses and definitions. Phi args are
	// treated as used at the end of the predecessor.
	use := make([]map[int]bool, n)
	def := make([]map[int]bool, n)
	phiUse := make([]map[int]bool, n) // keyed by predecessor index
	for i := 0; i < n; i++ {
		use[i] = make(map[int]bool)
		def[i] = make(map[int]bool)
		phiUse[i] = make(map[int]bool)
	}
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op == OpPhi {
				for k, a := range i.Args {
					if k < len(b.Preds) {
						phiUse[b.Preds[k].Index][a.ID] = true
					}
				}
				def[b.Index][i.ID] = true
				continue
			}
			for _, a := range i.Args {
				if !def[b.Index][a.ID] {
					use[b.Index][a.ID] = true
				}
			}
			def[b.Index][i.ID] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for bi := n - 1; bi >= 0; bi-- {
			b := f.Blocks[bi]
			out := make(map[int]bool)
			for _, s := range b.Succs() {
				for v := range lv.LiveIn[s.Index] {
					out[v] = true
				}
			}
			for v := range phiUse[bi] {
				out[v] = true
			}
			in := make(map[int]bool)
			for v := range out {
				if !def[bi][v] {
					in[v] = true
				}
			}
			for v := range use[bi] {
				in[v] = true
			}
			if !sameSet(out, lv.LiveOut[bi]) || !sameSet(in, lv.LiveIn[bi]) {
				lv.LiveOut[bi] = out
				lv.LiveIn[bi] = in
				changed = true
			}
		}
	}
	return lv
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
